package classify

import (
	"math/rand"
	"testing"
)

// scanOracle is the reference: the linear ternary scan, returning the
// ascending indices of every matching rule.
func scanOracle(rules []Rule, vals []uint64) []int32 {
	var out []int32
	for i := range rules {
		match := true
		for c := range vals {
			if vals[c]&rules[i].Masks[c] != rules[i].Values[c]&rules[i].Masks[c] {
				match = false
				break
			}
		}
		if match {
			out = append(out, int32(i))
		}
	}
	return out
}

func assertEquivalent(t *testing.T, cols int, rules []Rule, c *Compiled, keys [][]uint64) {
	t.Helper()
	for _, k := range keys {
		got := c.Lookup(k)
		want := scanOracle(rules, k)
		if !equalList(got, want) {
			t.Fatalf("Lookup(%v) = %v, oracle says %v (cols=%d, %d rules)",
				k, got, want, cols, len(rules))
		}
	}
}

// ipPrefixRules builds n rules shaped like newton_init entries: distinct
// dst /24 prefixes, exact proto, wildcard everything else.
func ipPrefixRules(n int) []Rule {
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = Rule{
			Values: []uint64{0, 0x0A000000 | uint64(i)<<8, 6, 0, 0, 0},
			Masks:  []uint64{0, 0xFFFFFF00, 0xFF, 0, 0, 0},
		}
	}
	return rules
}

func TestCompilePrefixColumn(t *testing.T) {
	rules := ipPrefixRules(64)
	c := Compile(6, rules, Config{MinRules: 1})
	if c == nil {
		t.Fatal("prefix rule set did not compile")
	}
	var keys [][]uint64
	for i := 0; i < 64; i++ {
		keys = append(keys,
			[]uint64{9, 0x0A000000 | uint64(i)<<8 | 0x7F, 6, 1, 2, 0},  // hit
			[]uint64{9, 0x0A000000 | uint64(i)<<8 | 0x7F, 17, 1, 2, 0}, // wrong proto
			[]uint64{9, 0x0B000000 | uint64(i)<<8, 6, 1, 2, 0})         // miss prefix
	}
	keys = append(keys, []uint64{0, ^uint64(0), 6, 0, 0, 0}) // out-of-domain high bits
	assertEquivalent(t, 6, rules, c, keys)
	if st := c.Stats(); st.Dims != 2 || st.Leaves < 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestCompileNestedPrefixesOrdering(t *testing.T) {
	// Nested prefixes: /8, /16, /24, exact — a key inside all of them
	// must report every covering rule, in rule (match) order.
	mk := func(v, m uint64) Rule {
		return Rule{Values: []uint64{v}, Masks: []uint64{m}}
	}
	rules := []Rule{
		mk(0x0A0A0A0A, 0xFFFFFFFF),
		mk(0x0A0A0A00, 0xFFFFFF00),
		mk(0x0A0A0000, 0xFFFF0000),
		mk(0x0A000000, 0xFF000000),
		mk(0x0B000000, 0xFF000000),
		mk(0, 0), // default
	}
	c := Compile(1, rules, Config{MinRules: 1})
	if c == nil {
		t.Fatal("nested prefixes did not compile")
	}
	keys := [][]uint64{
		{0x0A0A0A0A}, {0x0A0A0A0B}, {0x0A0AFFFF}, {0x0AFF0000},
		{0x0B123456}, {0xCC000000}, {0}, {^uint64(0)},
	}
	assertEquivalent(t, 1, rules, c, keys)
	if got := c.Lookup([]uint64{0x0A0A0A0A}); len(got) != 5 {
		t.Fatalf("full nest should match 5 rules, got %v", got)
	}
}

func TestCompileDenseColumn(t *testing.T) {
	// Flag-style masks (non-prefix, small care): SYN bit, exact flags,
	// wildcard — the dense value-table strategy.
	rules := []Rule{
		{Values: []uint64{0x02}, Masks: []uint64{0x02}},
		{Values: []uint64{0x12}, Masks: []uint64{0xFF}},
		{Values: []uint64{0x01}, Masks: []uint64{0x03}},
		{Values: []uint64{0}, Masks: []uint64{0}},
	}
	c := Compile(1, rules, Config{MinRules: 1})
	if c == nil {
		t.Fatal("dense rule set did not compile")
	}
	if c.dims[0].kind != dimDense {
		t.Fatalf("expected dense dimension, got kind %d", c.dims[0].kind)
	}
	var keys [][]uint64
	for v := uint64(0); v < 256; v++ {
		keys = append(keys, []uint64{v})
	}
	keys = append(keys, []uint64{0x1202}, []uint64{^uint64(0)})
	assertEquivalent(t, 1, rules, c, keys)
}

func TestCompileUncompilableMasksFallBack(t *testing.T) {
	// A wide non-prefix mask (care > 16 bits, holes) fits no strategy.
	rules := []Rule{
		{Values: []uint64{0x00F0000000}, Masks: []uint64{0x00F000000F}},
		{Values: []uint64{0x1}, Masks: []uint64{0xFF00000000}},
	}
	if c := Compile(1, rules, Config{MinRules: 1}); c != nil {
		t.Fatal("mixed wide non-prefix masks should not compile")
	}
}

func TestCompileBudgetAborts(t *testing.T) {
	rules := ipPrefixRules(256)
	if c := Compile(6, rules, Config{MinRules: 1, MaxCells: 16}); c != nil {
		t.Fatal("cell budget exceeded but compile succeeded")
	}
	if c := Compile(6, rules, Config{MinRules: 1, MaxWork: 16}); c != nil {
		t.Fatal("work budget exceeded but compile succeeded")
	}
	if c := Compile(6, rules, Config{MinRules: 1}); c == nil {
		t.Fatal("default budget should fit 256 prefix rules")
	}
}

func TestCompileMinRules(t *testing.T) {
	rules := ipPrefixRules(4)
	if c := Compile(6, rules, Config{}); c != nil {
		t.Fatal("4 rules under default MinRules=8 should not compile")
	}
	if c := Compile(6, rules, Config{MinRules: 1}); c == nil {
		t.Fatal("MinRules=1 should compile 4 rules")
	}
}

func TestCompileAllWildcard(t *testing.T) {
	rules := []Rule{
		{Values: []uint64{0, 0}, Masks: []uint64{0, 0}},
		{Values: []uint64{5, 5}, Masks: []uint64{0, 0}},
	}
	c := Compile(2, rules, Config{MinRules: 1})
	if c == nil {
		t.Fatal("all-wildcard set should compile trivially")
	}
	got := c.Lookup([]uint64{123, 456})
	if !equalList(got, []int32{0, 1}) {
		t.Fatalf("all-wildcard lookup = %v, want [0 1]", got)
	}
}

func TestCompileArityMismatch(t *testing.T) {
	rules := []Rule{{Values: []uint64{1}, Masks: []uint64{1, 2}}}
	if c := Compile(1, rules, Config{MinRules: 1}); c != nil {
		t.Fatal("arity mismatch should not compile")
	}
}

// randomRules draws a rule set exercising every strategy: prefix masks
// (shifted runs ending at the column's care top), full-width exact,
// small dense masks, and wildcards.
func randomRules(rng *rand.Rand, cols, n int) []Rule {
	// Per-column style: 0 = prefix/exact over 32-bit values,
	// 1 = dense small masks, 2 = wildcard-heavy mix.
	styles := make([]int, cols)
	for c := range styles {
		styles[c] = rng.Intn(3)
	}
	rules := make([]Rule, n)
	for i := range rules {
		vals := make([]uint64, cols)
		masks := make([]uint64, cols)
		for c := 0; c < cols; c++ {
			switch styles[c] {
			case 0:
				switch rng.Intn(4) {
				case 0:
					masks[c] = 0xFFFFFFFF
				case 1:
					masks[c] = 0xFFFFFF00
				case 2:
					masks[c] = 0xFFFF0000
				default:
					masks[c] = 0
				}
				vals[c] = uint64(rng.Uint32())
			case 1:
				masks[c] = uint64(rng.Intn(256))
				vals[c] = uint64(rng.Intn(256))
			default:
				if rng.Intn(2) == 0 {
					masks[c] = 0xFFFF
					vals[c] = uint64(rng.Intn(1 << 16))
				}
			}
		}
		rules[i] = Rule{Values: vals, Masks: masks}
	}
	return rules
}

// TestCompiledEquivalenceRandom is the CI-sized deterministic variant
// of the fuzz harness: seeded random rule sets, full LookupAll ordering
// compared against the scan oracle, including keys biased toward rule
// values so hits are common.
func TestCompiledEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		cols := 1 + rng.Intn(3)
		n := 1 + rng.Intn(48)
		rules := randomRules(rng, cols, n)
		c := Compile(cols, rules, Config{MinRules: 1})
		if c == nil {
			// Strategy fallback: the scan oracle serves these — nothing
			// to verify, but make sure it stays rare for this generator.
			continue
		}
		keys := make([][]uint64, 0, 64)
		for k := 0; k < 48; k++ {
			vals := make([]uint64, cols)
			for ci := range vals {
				if rng.Intn(2) == 0 && n > 0 {
					r := rules[rng.Intn(n)]
					vals[ci] = r.Values[ci] ^ uint64(rng.Intn(4)) // near-hit
				} else {
					vals[ci] = uint64(rng.Uint32())
				}
			}
			keys = append(keys, vals)
		}
		assertEquivalent(t, cols, rules, c, keys)
	}
}

// TestLookupMatchOrder asserts the leaf lists are ascending — the match
// order contract the dataplane merge relies on.
func TestLookupMatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rules := randomRules(rng, 2, 40)
	c := Compile(2, rules, Config{MinRules: 1})
	if c == nil {
		t.Skip("generator produced an uncompilable set for this seed")
	}
	for k := 0; k < 200; k++ {
		vals := []uint64{uint64(rng.Uint32()), uint64(rng.Uint32())}
		got := c.Lookup(vals)
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("leaf not ascending: %v", got)
			}
		}
	}
}
