// Package orchestrator is the network-wide deployment pipeline that
// joins the repo's planning islands: resilient placement (§5.2) slices
// each prioritized intent into partitions, per-switch budget-checked
// admission (the §7 scheduling problem, generalized from one device to
// the fleet) degrades sketch widths down the accuracy ladder before
// rejecting, and controller.Remote's transactional deploy pushes the
// result to the switch agents — with expected telemetry contributors
// registered so merged epochs carry honest Partial/Missing provenance.
//
// Plan is a pure recompute: it never talks to agents. The typed Diff it
// returns against the recorded deployment is what Apply drives, so a
// topology or budget change (switch drained, envelope shrunk) touches
// only the delta — never a full redeploy. newton-ctl surfaces the same
// split as `plan` (inspect) and `apply` (commit).
package orchestrator

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/placement"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/topology"
)

// Intent is one prioritized monitoring request against the network.
type Intent struct {
	Query    *query.Query
	Priority int // higher admits first

	// MinWidth and MaxWidth bound the per-row register width (accuracy
	// ladder); zero values default like scheduler.WidthLadder.
	MinWidth, MaxWidth uint32

	// Accuracy, when enabled, puts the width under closed-loop control:
	// the intent starts frugal (MinWidth) and the Refiner widens or
	// narrows it — within [MinWidth, MaxWidth] — to track the declared
	// error budget against the observed stream. Disabled intents keep
	// the static ladder-walk provisioning.
	Accuracy query.Accuracy

	// Edges names the switches originating the monitored traffic. Empty
	// means every edge switch of the topology.
	Edges []string
}

// Config describes the fleet the orchestrator plans against. Budget map
// keys are switch names and must match both topology node names and the
// agent names controller.Remote was built with.
type Config struct {
	Topo    *topology.Topology
	Budgets map[string]scheduler.Budget

	// StagesPerSwitch is the partition size for cross-switch slicing.
	// Zero derives min(budget stages) - 2: partitions after the first
	// carry a two-stage K/H continuation prefix (modules.SliceProgram),
	// so slicing at the full stage count would produce programs that
	// cannot fit any device.
	StagesPerSwitch int
}

// QueryPlan is the planner's verdict for one intent.
type QueryPlan struct {
	Intent   Intent
	Admitted bool
	Reason   string // why rejected, or how degraded
	Width    uint32 // granted register width
	Stages   int    // compiled logical stage count
	M        int    // partition count (1 in single-switch mode)

	// Single-switch deploys replicate the full program on Targets;
	// otherwise Parts maps each switch name to its partition indices.
	Single  bool
	Targets []string
	Parts   map[string][]int
}

// Plan is one full recompute over the intent set.
type Plan struct {
	Queries   []QueryPlan
	StagesPer int
}

// Action classifies one diff entry.
type Action int

const (
	// ActionInstall deploys a query not currently on the network.
	ActionInstall Action = iota
	// ActionUpdate moves an existing placement deploy to a new
	// assignment, touching only the changed switches.
	ActionUpdate
	// ActionRemove uninstalls a deployed query (intent withdrawn, or the
	// replan rejected it).
	ActionRemove
	// ActionResize changes a deployed query's sketch width in place —
	// same qid, same switches — via the controller's resize path, so
	// consumers tracking the query survive the geometry change.
	ActionResize
)

// String names the action as `newton-ctl plan` prints it.
func (a Action) String() string {
	switch a {
	case ActionInstall:
		return "install"
	case ActionUpdate:
		return "update"
	case ActionRemove:
		return "remove"
	case ActionResize:
		return "resize"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Delta is one operation needed to move the network from the recorded
// deployment to the new plan.
type Delta struct {
	Query  string
	Action Action
	QID    int // the deployed qid (update/remove/resize)

	// FromWidth is the currently deployed width a resize moves away from.
	FromWidth uint32

	// Per-switch assignment movement for updates: partitions gained and
	// lost by each switch. Unlisted switches are untouched.
	Add, Drop map[string][]int

	// Target is the desired end state (install/update).
	Target QueryPlan
}

// Diff is the typed plan-vs-deployed delta the operator inspects before
// Apply commits it. Deltas are ordered removes, then resizes, then
// updates, then installs, so freed capacity is available to newcomers.
type Diff struct {
	Deltas []Delta
}

// Empty reports whether the deployment already matches the plan.
func (d Diff) Empty() bool { return len(d.Deltas) == 0 }

// String renders the diff for operators.
func (d Diff) String() string {
	if d.Empty() {
		return "no changes: deployment matches plan\n"
	}
	var b strings.Builder
	for _, dl := range d.Deltas {
		fmt.Fprintf(&b, "%-8s %s", dl.Action, dl.Query)
		switch dl.Action {
		case ActionRemove:
			fmt.Fprintf(&b, " (qid %d)", dl.QID)
		case ActionResize:
			fmt.Fprintf(&b, " (qid %d) width %d -> %d", dl.QID, dl.FromWidth, dl.Target.Width)
		case ActionInstall:
			if dl.Target.Single {
				fmt.Fprintf(&b, " width=%d on %s", dl.Target.Width, strings.Join(dl.Target.Targets, ","))
			} else {
				fmt.Fprintf(&b, " width=%d %d partitions over %d switches",
					dl.Target.Width, dl.Target.M, len(dl.Target.Parts))
			}
		case ActionUpdate:
			fmt.Fprintf(&b, " (qid %d)", dl.QID)
			for _, sw := range sortedKeys(dl.Drop) {
				fmt.Fprintf(&b, " -%s%v", sw, dl.Drop[sw])
			}
			for _, sw := range sortedKeys(dl.Add) {
				fmt.Fprintf(&b, " +%s%v", sw, dl.Add[sw])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deployedState records what Apply committed for one query.
type deployedState struct {
	qid  int
	plan QueryPlan
}

// Orchestrator owns the fleet's intent set and deployment record. All
// public methods are safe for concurrent use: the health monitor
// (health.go) and an operator shell may drive the same instance.
type Orchestrator struct {
	mu       sync.Mutex
	cfg      Config
	remote   *controller.Remote
	intents  []Intent
	drained  map[string]bool
	deployed map[string]*deployedState

	// widthCap is the refiner's per-query provisioning decision: the
	// width the next plan should grant an accuracy-driven intent,
	// clamped into the intent's [MinWidth, MaxWidth]. Absent means the
	// intent is unrefined yet — accuracy-enabled intents then start
	// frugal at MinWidth and grow only on observed error. The cap is
	// persistent floor memory: a narrow survives replans, so a query
	// narrowed for being over-provisioned does not snap back to max on
	// the next converge.
	widthCap map[string]uint32

	obs orchObs
}

// New builds an orchestrator over a remote controller's fleet.
func New(cfg Config, remote *controller.Remote) (*Orchestrator, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("orchestrator: nil topology")
	}
	if len(cfg.Budgets) == 0 {
		return nil, fmt.Errorf("orchestrator: empty fleet budget set")
	}
	for name := range cfg.Budgets {
		if id := cfg.Topo.NodeByName(name); id < 0 {
			return nil, fmt.Errorf("orchestrator: budget for unknown switch %q", name)
		} else if cfg.Topo.Node(id).Kind == topology.Host {
			return nil, fmt.Errorf("orchestrator: %q is a host, not a switch", name)
		}
	}
	return &Orchestrator{
		cfg: cfg, remote: remote,
		drained:  map[string]bool{},
		deployed: map[string]*deployedState{},
		widthCap: map[string]uint32{},
	}, nil
}

// SetWidthCap pins the width the next plan grants query name (clamped
// into its intent's ladder bounds). Zero clears the cap, returning the
// intent to its default provisioning. The refiner is the intended
// caller; operators can use it as a manual override.
func (o *Orchestrator) SetWidthCap(name string, w uint32) {
	o.mu.Lock()
	if w == 0 {
		delete(o.widthCap, name)
	} else {
		o.widthCap[name] = w
	}
	o.mu.Unlock()
}

// WidthCap returns the pinned width for a query name (0 when unset).
func (o *Orchestrator) WidthCap(name string) uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.widthCap[name]
}

// Intents returns a copy of the current intent set.
func (o *Orchestrator) Intents() []Intent {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Intent(nil), o.intents...)
}

// SetIntents replaces the intent set. The next Plan/Apply converges the
// network to it.
func (o *Orchestrator) SetIntents(intents []Intent) {
	o.mu.Lock()
	o.intents = append([]Intent(nil), intents...)
	o.mu.Unlock()
}

// Drain excludes a switch from future plans (maintenance, failure). Its
// installed partitions are removed by the next Apply.
func (o *Orchestrator) Drain(name string) {
	o.mu.Lock()
	o.drained[name] = true
	o.mu.Unlock()
}

// Undrain returns a switch to the plannable fleet.
func (o *Orchestrator) Undrain(name string) {
	o.mu.Lock()
	delete(o.drained, name)
	o.mu.Unlock()
}

// IsDrained reports whether a switch is currently excluded from plans.
func (o *Orchestrator) IsDrained(name string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.drained[name]
}

// Switches returns the fleet's switch names, sorted.
func (o *Orchestrator) Switches() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.cfg.Budgets))
	for name := range o.cfg.Budgets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetBudget adds or resizes one switch's envelope.
func (o *Orchestrator) SetBudget(name string, b scheduler.Budget) {
	o.mu.Lock()
	o.cfg.Budgets[name] = b
	o.mu.Unlock()
}

// stagesPer resolves the partition size (see Config.StagesPerSwitch).
func (o *Orchestrator) stagesPer() int {
	if o.cfg.StagesPerSwitch > 0 {
		return o.cfg.StagesPerSwitch
	}
	min := 0
	for _, b := range o.cfg.Budgets {
		s := scheduler.NewTracker(b).Budget().Stages
		if min == 0 || s < min {
			min = s
		}
	}
	if min > 2 {
		return min - 2
	}
	return min
}

// Plan recomputes placement and admission for every intent, in priority
// order, against fresh per-switch budget trackers — then diffs the
// result against the recorded deployment. It is pure: no agent is
// contacted until Apply.
func (o *Orchestrator) Plan() (*Plan, Diff, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.planLocked()
}

func (o *Orchestrator) planLocked() (*Plan, Diff, error) {
	o.obs.inc(&o.obs.plans)
	trackers := map[string]*scheduler.Tracker{}
	for name, b := range o.cfg.Budgets {
		if !o.drained[name] {
			trackers[name] = scheduler.NewTracker(b)
		}
	}
	if len(trackers) == 0 {
		return nil, Diff{}, fmt.Errorf("orchestrator: every switch is drained")
	}
	stagesPer := o.stagesPer()

	order := make([]int, len(o.intents))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return o.intents[order[a]].Priority > o.intents[order[b]].Priority
	})

	plans := make([]QueryPlan, len(o.intents))
	for _, idx := range order {
		qp := o.planIntent(o.intents[idx], trackers, stagesPer)
		if qp.Admitted {
			o.obs.inc(&o.obs.admissions)
		} else {
			o.obs.inc(&o.obs.rejections)
		}
		plans[idx] = qp
	}
	p := &Plan{Queries: plans, StagesPer: stagesPer}
	return p, o.diff(p), nil
}

// planIntent walks the width ladder for one intent: at each rung,
// compile, place, and tentatively admit against cloned trackers; the
// first rung every touched switch accepts is committed.
func (o *Orchestrator) planIntent(in Intent, trackers map[string]*scheduler.Tracker, stagesPer int) QueryPlan {
	qp := QueryPlan{Intent: in}
	ladder, err := scheduler.WidthLadder(in.MinWidth, in.MaxWidth)
	if err != nil {
		qp.Reason = err.Error()
		return qp
	}
	maxW := ladder[0]
	if cap, ok := o.widthCap[in.Query.Name]; ok {
		// The refiner (or an operator) pinned this query's width: bid for
		// that rung, degrading below it only under capacity pressure.
		ladder = capRungs(ladder, cap)
	} else if in.Accuracy.Enabled() {
		// Frugal start for unrefined accuracy intents: provision the
		// narrowest rung and let observed error earn any width above it.
		ladder = ladder[len(ladder)-1:]
	}

	edgeIDs, err := o.resolveEdges(in.Edges)
	if err != nil {
		qp.Reason = err.Error()
		return qp
	}

	for _, w := range ladder {
		opts := compiler.AllOpts()
		opts.QID = 1 // placeholder: admission accounting ignores the qid
		opts.Width = w
		p, err := compiler.Compile(in.Query, opts)
		if err != nil {
			qp.Reason = err.Error()
			return qp // compilation failure does not improve with width
		}
		stages := p.NumStages()

		single := true
		for _, id := range edgeIDs {
			name := o.cfg.Topo.Node(id).Name
			tr, live := trackers[name]
			if !live || stages > tr.Budget().Stages {
				single = false
				break
			}
		}

		var reason string
		var admitted *QueryPlan
		if single {
			admitted, reason = o.admitSingle(in, p, w, stages, edgeIDs, trackers)
		} else {
			admitted, reason = o.admitPartitioned(in, w, stages, stagesPer, edgeIDs, trackers, opts)
		}
		if admitted != nil {
			if w != maxW {
				admitted.Reason = fmt.Sprintf("degraded from %d to %d registers per row", maxW, w)
			}
			return *admitted
		}
		qp.Reason = reason
	}
	if qp.Reason == "" {
		qp.Reason = "does not fit at any acceptable width"
	}
	return qp
}

// capRungs restricts a ladder to the rungs at or below cap, keeping at
// least the narrowest rung so a cap below the ladder floor still plans.
func capRungs(ladder []uint32, cap uint32) []uint32 {
	var out []uint32
	for _, w := range ladder {
		if w <= cap {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return ladder[len(ladder)-1:]
	}
	return out
}

// resolveEdges maps intent edge names to topology IDs (all edge
// switches when empty).
func (o *Orchestrator) resolveEdges(names []string) ([]int, error) {
	if len(names) == 0 {
		ids := o.cfg.Topo.EdgeSwitches()
		if len(ids) == 0 {
			return nil, fmt.Errorf("orchestrator: topology has no edge switches")
		}
		return ids, nil
	}
	ids := make([]int, 0, len(names))
	for _, n := range names {
		id := o.cfg.Topo.NodeByName(n)
		if id < 0 {
			return nil, fmt.Errorf("orchestrator: unknown edge switch %q", n)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// admitSingle replicates the full program on every monitored edge
// switch, charging each one's tracker.
func (o *Orchestrator) admitSingle(in Intent, p *modules.Program, w uint32, stages int, edgeIDs []int, trackers map[string]*scheduler.Tracker) (*QueryPlan, string) {
	var targets []string
	clones := map[string]*scheduler.Tracker{}
	for _, id := range edgeIDs {
		name := o.cfg.Topo.Node(id).Name
		tr := trackers[name]
		c := tr.Clone()
		if ok, why := c.Fits(p); !ok {
			return nil, fmt.Sprintf("%s: %s", name, why)
		}
		c.Commit(p)
		clones[name] = c
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for name, c := range clones {
		trackers[name] = c
	}
	return &QueryPlan{
		Intent: in, Admitted: true, Width: w, Stages: stages,
		M: 1, Single: true, Targets: targets,
	}, ""
}

// admitPartitioned runs resilient placement over the full topology,
// restricts the assignment to the live fleet, and charges each switch's
// tracker for its partitions. Placement is computed on the whole graph —
// a switch outside the fleet simply cannot host its assignment, which
// loses redundancy but never correctness, except when partition 0 would
// vanish entirely (monitored traffic's first hop): that rejects.
func (o *Orchestrator) admitPartitioned(in Intent, w uint32, stages, stagesPer int, edgeIDs []int, trackers map[string]*scheduler.Tracker, opts compiler.Options) (*QueryPlan, string) {
	pl, m, err := placement.Place(o.cfg.Topo, edgeIDs, stages, stagesPer)
	if err != nil {
		return nil, err.Error()
	}

	// One sliced instance for admission accounting; Apply's installs
	// compile fresh per-switch copies inside controller.Remote.
	logical, err := compiler.Compile(in.Query, opts)
	if err != nil {
		return nil, err.Error()
	}
	partProgs, err := modules.SliceProgram(logical, stagesPer)
	if err != nil {
		return nil, err.Error()
	}

	parts := map[string][]int{}
	part0Hosted := false
	for sw, idxs := range pl {
		name := o.cfg.Topo.Node(sw).Name
		if _, live := trackers[name]; !live {
			continue // not in the fleet, or drained
		}
		parts[name] = append([]int(nil), idxs...)
		for _, k := range idxs {
			if k == 0 {
				part0Hosted = true
			}
		}
	}
	if len(parts) == 0 {
		return nil, "no live switch can host any partition"
	}
	if !part0Hosted {
		return nil, "no live switch hosts partition 0 (all monitored edge switches drained?)"
	}

	clones := map[string]*scheduler.Tracker{}
	for _, name := range sortedKeys(parts) {
		c := trackers[name].Clone()
		for _, k := range parts[name] {
			p := partProgs[k]
			if ok, why := c.Fits(p); !ok {
				return nil, fmt.Sprintf("%s (partition %d): %s", name, k, why)
			}
			c.Commit(p)
		}
		clones[name] = c
	}
	for name, c := range clones {
		trackers[name] = c
	}
	return &QueryPlan{
		Intent: in, Admitted: true, Width: w, Stages: stages,
		M: m, Parts: parts,
	}, ""
}

// diff compares a plan against the recorded deployment.
func (o *Orchestrator) diff(p *Plan) Diff {
	var removes, resizes, updates, installs []Delta
	seen := map[string]bool{}
	for _, qp := range p.Queries {
		name := qp.Intent.Query.Name
		seen[name] = true
		cur, deployed := o.deployed[name]
		switch {
		case !qp.Admitted && deployed:
			removes = append(removes, Delta{Query: name, Action: ActionRemove, QID: cur.qid})
		case !qp.Admitted:
			// rejected and not deployed: nothing to do
		case !deployed:
			installs = append(installs, Delta{Query: name, Action: ActionInstall, Target: qp})
		case samePlan(cur.plan, qp):
			// converged
		case sameShapeIgnoringWidth(cur.plan, qp):
			// Only the width moved: resize in place, keeping the qid.
			resizes = append(resizes, Delta{
				Query: name, Action: ActionResize, QID: cur.qid,
				FromWidth: cur.plan.Width, Target: qp,
			})
		case !cur.plan.Single && !qp.Single &&
			cur.plan.Width == qp.Width && cur.plan.M == qp.M:
			add, drop := partsDelta(cur.plan.Parts, qp.Parts)
			updates = append(updates, Delta{
				Query: name, Action: ActionUpdate, QID: cur.qid,
				Add: add, Drop: drop, Target: qp,
			})
		default:
			// Shape changed (mode or width or partition count): replace.
			removes = append(removes, Delta{Query: name, Action: ActionRemove, QID: cur.qid})
			installs = append(installs, Delta{Query: name, Action: ActionInstall, Target: qp})
		}
	}
	for name, cur := range o.deployed {
		if !seen[name] {
			removes = append(removes, Delta{Query: name, Action: ActionRemove, QID: cur.qid})
		}
	}
	sort.Slice(removes, func(i, j int) bool { return removes[i].Query < removes[j].Query })
	var d Diff
	d.Deltas = append(d.Deltas, removes...)
	d.Deltas = append(d.Deltas, resizes...)
	d.Deltas = append(d.Deltas, updates...)
	d.Deltas = append(d.Deltas, installs...)
	return d
}

// sameShapeIgnoringWidth reports whether a deployed plan matches its
// target on everything but width — the in-place resize precondition.
func sameShapeIgnoringWidth(a, b QueryPlan) bool {
	a.Width = b.Width
	return samePlan(a, b)
}

// samePlan reports whether a deployed query already matches its target.
func samePlan(a, b QueryPlan) bool {
	if a.Single != b.Single || a.Width != b.Width || a.M != b.M {
		return false
	}
	if a.Single {
		if len(a.Targets) != len(b.Targets) {
			return false
		}
		for i := range a.Targets {
			if a.Targets[i] != b.Targets[i] {
				return false
			}
		}
		return true
	}
	if len(a.Parts) != len(b.Parts) {
		return false
	}
	for sw, ap := range a.Parts {
		if !sameInts(ap, b.Parts[sw]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partsDelta computes per-switch partition gains and losses.
func partsDelta(old, new map[string][]int) (add, drop map[string][]int) {
	add, drop = map[string][]int{}, map[string][]int{}
	for sw, np := range new {
		op := old[sw]
		for _, k := range np {
			if !containsInt(op, k) {
				add[sw] = append(add[sw], k)
			}
		}
	}
	for sw, op := range old {
		np := new[sw]
		for _, k := range op {
			if !containsInt(np, k) {
				drop[sw] = append(drop[sw], k)
			}
		}
	}
	return add, drop
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Apply commits a diff through the remote controller's transactional
// deploy path, recording each success. It stops at the first error —
// already-applied deltas stay recorded, so a retry applies only the
// remainder.
func (o *Orchestrator) Apply(p *Plan, d Diff) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.applyLocked(p, d)
}

func (o *Orchestrator) applyLocked(p *Plan, d Diff) error {
	for _, dl := range d.Deltas {
		switch dl.Action {
		case ActionRemove:
			if err := o.remote.Remove(dl.QID); err != nil {
				return fmt.Errorf("orchestrator: remove %s: %w", dl.Query, err)
			}
			delete(o.deployed, dl.Query)
		case ActionResize:
			if _, err := o.remote.ResizeWidth(dl.QID, dl.Target.Width); err != nil {
				return fmt.Errorf("orchestrator: resize %s: %w", dl.Query, err)
			}
			o.deployed[dl.Query].plan = dl.Target
			o.obs.inc(&o.obs.resizes)
		case ActionUpdate:
			if err := o.remote.UpdatePlacement(dl.QID, dl.Target.Parts); err != nil {
				return fmt.Errorf("orchestrator: update %s: %w", dl.Query, err)
			}
			o.deployed[dl.Query].plan = dl.Target
		case ActionInstall:
			var qid int
			var err error
			if dl.Target.Single {
				qid, _, err = o.remote.Install(dl.Target.Intent.Query, dl.Target.Width, dl.Target.Targets)
			} else {
				qid, _, err = o.remote.InstallPlacement(dl.Target.Intent.Query, dl.Target.Width, p.StagesPer, dl.Target.Parts)
			}
			if err != nil {
				return fmt.Errorf("orchestrator: install %s: %w", dl.Query, err)
			}
			o.deployed[dl.Query] = &deployedState{qid: qid, plan: dl.Target}
		}
		o.obs.inc(&o.obs.deltas)
	}
	return nil
}

// Converge is Plan followed by Apply — the one-call path for callers
// that do not need to inspect the diff.
func (o *Orchestrator) Converge() (*Plan, Diff, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, d, err := o.planLocked()
	if err != nil {
		return nil, Diff{}, err
	}
	return p, d, o.applyLocked(p, d)
}

// Deployed returns the recorded deployment: query name to (qid, plan).
func (o *Orchestrator) Deployed() map[string]QueryPlan {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]QueryPlan, len(o.deployed))
	for name, st := range o.deployed {
		out[name] = st.plan
	}
	return out
}

// QID returns the deployed qid for a query name (0 if not deployed).
func (o *Orchestrator) QID(name string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if st, ok := o.deployed[name]; ok {
		return st.qid
	}
	return 0
}

// Summary renders a plan for operators, `scheduler.Summary`-style.
func Summary(p *Plan) string {
	var b strings.Builder
	for _, qp := range p.Queries {
		status := "REJECTED"
		detail := qp.Reason
		if qp.Admitted {
			status = "admitted"
			if qp.Single {
				detail = fmt.Sprintf("width=%d single-switch on %s", qp.Width, strings.Join(qp.Targets, ","))
			} else {
				detail = fmt.Sprintf("width=%d %d partitions over %d switches", qp.Width, qp.M, len(qp.Parts))
			}
			if qp.Reason != "" {
				detail += " (" + qp.Reason + ")"
			}
		}
		fmt.Fprintf(&b, "%-26s prio=%-3d %s  %s\n", qp.Intent.Query.Name, qp.Intent.Priority, status, detail)
	}
	return b.String()
}
