package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
)

// The report-batch payload is a sequence of runs. Consecutive reports
// sharing (SwitchID, QueryID, KeyMask) form one run — on a telemetry
// stream that is almost every report, since a batch drains one switch's
// ring and each query keeps one mask. Runs preserve batch order exactly
// (the analyzer's alert dedup is first-arrival-wins), and within a run
// the columns are packed separately: timestamps as zigzag deltas, each
// kept key field as its own varint column, then state and global
// columns. Concealed key fields are canonically zero — the data plane
// masks keys before mirroring, and the codec relies on that.
//
//	payload := uvarint(runs) run*
//	run     := string(switchID; ""=stream) uvarint(qid) mask uvarint(n)
//	           ts-column key-column* state-column global-column
//	mask    := uvarint(bitmap of nonzero entries) uvarint(entry)*
//	ts      := uvarint(first) zigzag(delta)*

// AppendReports encodes one batch. streamID is the hello-declared
// switch ID: reports carrying it (the common case — reports only cross
// switch IDs on relayed streams) omit the string per run.
func AppendReports(dst []byte, streamID string, rs []dataplane.Report) []byte {
	dst = binary.AppendUvarint(dst, uint64(countRuns(rs)))
	for start := 0; start < len(rs); {
		end := start + 1
		for end < len(rs) && sameRun(&rs[end], &rs[start]) {
			end++
		}
		dst = appendRun(dst, streamID, rs[start:end])
		start = end
	}
	return dst
}

func sameRun(a, b *dataplane.Report) bool {
	return a.SwitchID == b.SwitchID && a.QueryID == b.QueryID && a.KeyMask == b.KeyMask
}

func countRuns(rs []dataplane.Report) int {
	runs := 0
	for i := range rs {
		if i == 0 || !sameRun(&rs[i], &rs[i-1]) {
			runs++
		}
	}
	return runs
}

func appendRun(dst []byte, streamID string, rs []dataplane.Report) []byte {
	id := rs[0].SwitchID
	if id == streamID {
		id = ""
	}
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	dst = append(dst, id...)
	dst = binary.AppendUvarint(dst, uint64(rs[0].QueryID))
	dst = appendMask(dst, rs[0].KeyMask)
	dst = binary.AppendUvarint(dst, uint64(len(rs)))

	prevTS := uint64(0)
	for i := range rs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, rs[i].TS)
		} else {
			dst = binary.AppendUvarint(dst, zigzag(int64(rs[i].TS)-int64(prevTS)))
		}
		prevTS = rs[i].TS
	}
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if rs[0].KeyMask[id] == 0 {
			continue
		}
		for i := range rs {
			dst = binary.AppendUvarint(dst, rs[i].Keys[id])
		}
	}
	for i := range rs {
		dst = binary.AppendUvarint(dst, rs[i].State)
	}
	for i := range rs {
		dst = binary.AppendUvarint(dst, rs[i].Global)
	}
	return dst
}

// DecodeReports decodes one batch, resolving run-elided switch IDs to
// streamID.
func DecodeReports(payload []byte, streamID string) ([]dataplane.Report, error) {
	r := &reader{b: payload}
	runs := r.length()
	var out []dataplane.Report
	for i := 0; i < runs && r.err == nil; i++ {
		id := string(r.bytes(r.length()))
		if id == "" {
			id = streamID
		}
		qid := r.uvarint()
		mask := r.mask()
		n := r.length()
		base := len(out)
		for j := 0; j < n; j++ {
			out = append(out, dataplane.Report{SwitchID: id, QueryID: int(qid), KeyMask: mask})
		}
		prevTS := uint64(0)
		for j := 0; j < n; j++ {
			if j == 0 {
				prevTS = r.uvarint()
			} else {
				prevTS = uint64(int64(prevTS) + unzigzag(r.uvarint()))
			}
			out[base+j].TS = prevTS
		}
		for id := fields.ID(0); id < fields.NumFields; id++ {
			if mask[id] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[base+j].Keys[id] = r.uvarint()
			}
		}
		for j := 0; j < n; j++ {
			out[base+j].State = r.uvarint()
		}
		for j := 0; j < n; j++ {
			out[base+j].Global = r.uvarint()
		}
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("reports: %w", err)
	}
	return out, nil
}

// appendMask encodes a key mask as a bitmap of its nonzero entries
// followed by each nonzero entry's bit pattern (partial masks — derived
// keys like /24 prefixes — carry full 64-bit patterns).
func appendMask(dst []byte, m fields.Mask) []byte {
	bitmap := uint64(0)
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if m[id] != 0 {
			bitmap |= 1 << id
		}
	}
	dst = binary.AppendUvarint(dst, bitmap)
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if m[id] != 0 {
			dst = binary.AppendUvarint(dst, m[id])
		}
	}
	return dst
}

func (r *reader) mask() fields.Mask {
	var m fields.Mask
	bitmap := r.uvarint()
	if bitmap >= 1<<fields.NumFields {
		if r.err == nil {
			r.err = fmt.Errorf("%w: mask bitmap %#x", ErrMalformed, bitmap)
		}
		return m
	}
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if bitmap&(1<<id) != 0 {
			m[id] = r.uvarint()
			if m[id] == 0 && r.err == nil {
				r.err = fmt.Errorf("%w: zero mask entry for set bitmap bit", ErrMalformed)
			}
		}
	}
	return m
}
