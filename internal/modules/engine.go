package modules

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/sketch"
)

// Typed install/remove outcomes, so control planes retrying over lossy
// channels can recognize level-triggered states ("already there",
// "already gone") without string matching.
var (
	ErrAlreadyInstalled = errors.New("already installed")
	ErrNotInstalled     = errors.New("not installed")
)

// Engine executes the module layout over packets. It implements
// dataplane.Program, so a Layout plus an Engine is what "loading the
// Newton P4 program" yields; every query operation afterwards is a rule
// operation against the layout's tables.
//
// The engine is sharded into lanes (SetWorkers): each delivery worker
// owns one lane holding its dispatch cache, per-flow hash memos,
// execution counters, and sampled-latency histogram, so the per-packet
// path is lock-free under the Context.Lane single-writer discipline.
// State banks stay shared and linearizable by default (BankShared);
// BankPrivate gives gate-free sketch rows worker-private shards merged
// at epoch boundaries — see sharding.go.
type Engine struct {
	layout *Layout

	installed map[progKey]*Program

	// lanes holds the per-worker execution state; lanes[0] always exists
	// and serves sequential delivery. See engineLane in sharding.go.
	lanes []*engineLane

	// bankMode selects the state-bank sharding discipline (sharding.go).
	bankMode BankMode

	// mergeScratch is MergeWorkers' reusable snapshot buffer.
	mergeScratch []uint32

	// laneObs, when set via AttachObs, registers per-worker observability
	// series (sampled-latency histogram) for a lane; SetWorkers invokes
	// it for lanes created after attach.
	laneObs func(lane int) *obs.Histogram

	// onChange fires after every successful Install/Remove — how the obs
	// adapter keeps per-query resource gauges current without scraping
	// engine maps concurrently with rule updates.
	onChange func()
}

// progKey identifies an installed program: a switch may host several
// partitions of one cross-switch query.
type progKey struct{ qid, part int }

// NewEngine builds an engine over a loaded layout with one lane.
func NewEngine(l *Layout) *Engine {
	return &Engine{layout: l, installed: map[progKey]*Program{}, lanes: []*engineLane{new(engineLane)}}
}

// Layout returns the engine's layout.
func (e *Engine) Layout() *Layout { return e.layout }

// Installed returns the installed program for qid (its first partition,
// if partitioned), or nil.
func (e *Engine) Installed(qid int) *Program {
	var best *Program
	for key, p := range e.installed {
		if key.qid != qid {
			continue
		}
		if best == nil || key.part < best.Part {
			best = p
		}
	}
	return best
}

// maxDispatchEntries bounds the dispatch cache; overflowing flushes it
// (a full rebuild costs one classifier scan per live flow).
const maxDispatchEntries = 1 << 15

// dispatchKey is the newton_init classifier input — the packet's
// 5-tuple plus TCP flags — packed into two words (the fields' natural
// widths sum to 112 bits), so the cache probe hashes 16 bytes instead
// of 48.
type dispatchKey [2]uint64

// hashUnset marks a not-yet-recorded slot in a dispatch entry's hash
// memo. Memoized hash results are at most 32 bits wide (hash engines
// produce uint32, and direct-mode keys are drawn from ≤32-bit fields),
// so the all-ones word can never be a real result.
const hashUnset = ^uint64(0)

// dispatchEntry is one memoized classification: the newton_init matches
// for a classifier input, plus — for branches whose hash inputs are a
// pure function of that input — the recorded per-flow hash results, so
// steady-state packets of a flow skip key serialization and CRC/FNV
// computation entirely. hashes[i] is nil when branch i is not
// memoizable (impure or has no H ops); otherwise it has one slot per H
// op, lazily filled the first time each op executes for this flow.
type dispatchEntry struct {
	matches []*dataplane.Rule
	hashes  [][]uint64
}

// InstalledCount returns how many programs are installed.
func (e *Engine) InstalledCount() int { return len(e.installed) }

// Programs returns every installed program (all partitions), in no
// particular order. Callers must not mutate the programs.
func (e *Engine) Programs() []*Program {
	out := make([]*Program, 0, len(e.installed))
	for _, p := range e.installed {
		out = append(out, p)
	}
	return out
}

// execSampleMask selects which packets get a timed Execute: 1 in 64,
// cheap enough that time.Now on the sampled packet dominates the cost.
const execSampleMask = 63

// Counters returns the engine's execution counters summed across lanes:
// packets executed, dispatch-cache misses, and per-module-kind op
// executions.
func (e *Engine) Counters() (pkts, dispatchMisses uint64, execs [NumKinds]uint64) {
	for _, l := range e.lanes {
		pkts += atomic.LoadUint64(&l.pkts)
		dispatchMisses += atomic.LoadUint64(&l.dispatchMisses)
		for k := range execs {
			execs[k] += atomic.LoadUint64(&l.modExecs[k])
		}
	}
	return pkts, dispatchMisses, execs
}

// LaneCounters returns one lane's packet and dispatch-miss counters —
// the per-worker observability surface.
func (e *Engine) LaneCounters(lane int) (pkts, dispatchMisses uint64) {
	if lane < 0 || lane >= len(e.lanes) {
		return 0, 0
	}
	l := e.lanes[lane]
	return atomic.LoadUint64(&l.pkts), atomic.LoadUint64(&l.dispatchMisses)
}

// Install loads a compiled program: one newton_init entry per branch,
// one rule per module op, and register allocations for the stateful
// banks. On any failure the partial install is rolled back, leaving the
// data plane untouched — installs are all-or-nothing so a failed query
// can never disturb running ones.
func (e *Engine) Install(p *Program) (err error) {
	key := progKey{p.QID, p.Part}
	if _, dup := e.installed[key]; dup {
		return fmt.Errorf("modules: query %d part %d %w", p.QID, p.Part, ErrAlreadyInstalled)
	}
	defer func() {
		if err != nil {
			e.rollback(p)
		}
	}()
	for _, b := range p.Branches {
		prepareBranch(b)
	}
	// Pass 1: allocate registers for owning state banks.
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind != ModS || op.S == nil || op.S.PassThrough || op.S.CrossRead {
				continue
			}
			width := op.Width()
			off, aerr := e.layout.AllocRegisters(op.Stage, op.Set, width)
			if aerr != nil {
				return aerr
			}
			op.S.array = e.layout.ArrayAt(op.Stage, op.Set)
			op.S.offset, op.S.width = off, width
			e.allocLaneArrays(op.S)
		}
	}
	// Pass 2: bind cross-branch reads to the Row0 banks they target —
	// including the target's per-lane shards, so a private-mode cross
	// read observes what its own lane accumulated.
	for bi, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind != ModS || op.S == nil || !op.S.CrossRead {
				continue
			}
			target := e.findRow0(p, op.S.ReadBranch)
			if target == nil {
				return fmt.Errorf("modules: query %d branch %d reads Row0 of branch %d, which has none",
					p.QID, bi, op.S.ReadBranch)
			}
			op.S.array = target.array
			op.S.offset, op.S.width = target.offset, target.width
			op.S.laneArrays = target.laneArrays
		}
	}
	// Pass 3: install rules.
	for bi, b := range p.Branches {
		opKeyBase := uint64(p.QID)<<20 | uint64(p.Part)<<16 | uint64(bi)<<8
		for oi, op := range b.Ops {
			t := e.layout.ModuleTable(op.Stage, op.Set, op.Kind)
			if t == nil {
				return fmt.Errorf("modules: layout has no %v module at stage %d suite %d", op.Kind, op.Stage, op.Set)
			}
			id, terr := t.AddRule([]uint64{opKeyBase | uint64(oi)}, nil, 0, moduleRuleAction{op: op})
			if terr != nil {
				return terr
			}
			op.ruleID = id
		}
		vals := b.Init.Values[:]
		masks := b.Init.Masks[:]
		id, ierr := e.layout.Init.AddRule(vals, masks, 0, chainAction{prog: p, branch: b})
		if ierr != nil {
			return ierr
		}
		b.initRuleID = id
	}
	if _, ferr := e.layout.Fin.AddRule([]uint64{uint64(p.QID)<<4 | uint64(p.Part)}, nil, 0, finAction{}); ferr != nil {
		return ferr
	}
	e.installed[key] = p
	if e.onChange != nil {
		e.onChange()
	}
	return nil
}

// Remove uninstalls a query at runtime: its rules leave the tables and
// its register allocations return to the banks. Forwarding is never
// touched.
func (e *Engine) Remove(qid int) error {
	found := false
	for key, p := range e.installed {
		if key.qid != qid {
			continue
		}
		e.rollback(p)
		delete(e.installed, key)
		found = true
	}
	if !found {
		return fmt.Errorf("modules: query %d %w", qid, ErrNotInstalled)
	}
	if e.onChange != nil {
		e.onChange()
	}
	return nil
}

// pureKeyMask reports whether a key-selection mask keeps only fields of
// the dispatch key (the newton_init classifier input). Operation keys
// derived through such a mask — including prefix sub-keys — are a pure
// function of the classifier input, so hashes over them are constant
// per flow.
func pureKeyMask(m *fields.Mask) bool {
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if m[id] == 0 {
			continue
		}
		switch id {
		case fields.SrcIP, fields.DstIP, fields.Proto,
			fields.SrcPort, fields.DstPort, fields.TCPFlags:
		default:
			return false
		}
	}
	return true
}

// prepareBranch assigns each H op its memo ordinal and decides whether
// the branch's hash results may be memoized per flow. An H result is
// flow-pure only when a K op earlier in the same chain (same metadata
// set) has established the operation keys — so the H never reads keys
// left behind by another branch, whose execution prefix can vary with
// register state — and every such K mask keeps only dispatch-key
// fields.
//
// It also marks which state banks are lane-shardable under BankPrivate:
// a bank decomposes exactly across worker-private shards only when its
// ALU is commutative-mergeable (Add sums, Or unions) AND no result
// process runs earlier in the chain. An earlier R can stop the packet
// based on running state, making the bank's input stream depend on
// interleaving — such gated banks (and non-commutative Read/Write ALUs)
// stay on the shared linearizable array.
func prepareBranch(b *BranchProgram) {
	b.numH = 0
	b.hashPure = true
	var seenK, pureK [2]bool
	pureK[0], pureK[1] = true, true
	seenR := false
	for _, op := range b.Ops {
		set := op.Set & 1
		switch op.Kind {
		case ModK:
			seenK[set] = true
			if op.K == nil || !pureKeyMask(&op.K.Mask) {
				pureK[set] = false
			}
		case ModH:
			op.hIdx = b.numH
			b.numH++
			if !seenK[set] || !pureK[set] {
				b.hashPure = false
			}
		case ModS:
			if s := op.S; s != nil && !s.PassThrough && !s.CrossRead {
				s.shardable = !seenR &&
					(s.ALU == dataplane.OpAdd || s.ALU == dataplane.OpOr)
			}
		case ModR:
			seenR = true
		}
	}
}

// findRow0 locates the last reduce-row-0 state bank of a branch.
func (e *Engine) findRow0(p *Program, branch int) *SConfig {
	if branch < 0 || branch >= len(p.Branches) {
		return nil
	}
	var found *SConfig
	for _, op := range p.Branches[branch].Ops {
		if op.Kind == ModS && op.S != nil && op.S.Row0 && op.S.array != nil {
			found = op.S
		}
	}
	return found
}

// rollback removes whatever parts of p are currently installed.
func (e *Engine) rollback(p *Program) {
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.ruleID != 0 {
				if t := e.layout.ModuleTable(op.Stage, op.Set, op.Kind); t != nil {
					_ = t.RemoveRule(op.ruleID)
				}
				op.ruleID = 0
			}
			if op.Kind == ModS && op.S != nil && op.S.array != nil {
				if !op.S.CrossRead {
					e.layout.FreeRegisters(op.Stage, op.Set, op.S.offset, op.S.width)
				}
				op.S.array = nil
				op.S.laneArrays = nil
			}
		}
		if b.initRuleID != 0 {
			_ = e.layout.Init.RemoveRule(b.initRuleID)
			b.initRuleID = 0
		}
	}
	for _, r := range e.layout.Fin.Rules() {
		if r.Values[0] == uint64(p.QID)<<4|uint64(p.Part) {
			_ = e.layout.Fin.RemoveRule(r.ID)
		}
	}
}

type finAction struct{}

// ActionName implements dataplane.Action.
func (finAction) ActionName() string { return "snapshot" }

// Execute implements dataplane.Program: decode any inbound result
// snapshot, classify via newton_init, run every matching branch chain
// (partitioned programs run only at their partition cursor), and decide
// the outbound snapshot.
//
// Classification goes through the executing lane's dispatch cache:
// newton_init's LookupAll result is memoized per classifier input and
// invalidated whenever the classifier's rule set changes, so the
// steady-state per-packet path does one lock-free map probe instead of
// a ternary scan — and allocates nothing. The lane (Context.Lane) is
// single-writer by the delivery contract, so no locks anywhere on this
// path; all lane counters use store-after-load atomics, which are plain
// MOVs on x86-64 yet keep concurrent scrape reads exact.
func (e *Engine) Execute(ctx *dataplane.Context) {
	lane := e.lanes[0]
	if l := ctx.Lane; l > 0 && l < len(e.lanes) {
		lane = e.lanes[l]
	}
	nth := bump(&lane.pkts)
	var t0 time.Time
	timed := lane.execNS != nil && nth&execSampleMask == 0
	if timed {
		t0 = time.Now()
	}
	// Per-packet op tally, packed as four 16-bit lanes (one per module
	// kind) in a single word: the per-op cost is one shift+add, and the
	// flush is at most NumKinds counter adds per packet.
	var execs uint64

	curPart := 0
	if sp := ctx.Pkt.SP; sp != nil {
		Restore(&ctx.PHV, sp)
		curPart = int(sp.Part)
	}
	v := &ctx.PHV.Fields
	key := dispatchKey{
		v.Get(fields.SrcIP)<<32 | v.Get(fields.DstIP),
		v.Get(fields.SrcPort)<<32 | v.Get(fields.DstPort)<<16 |
			v.Get(fields.Proto)<<8 | v.Get(fields.TCPFlags)}
	version := e.layout.Init.Version()
	entry := lane.lookup(version, &key)
	if entry == nil {
		bump(&lane.dispatchMisses)
		vals := [6]uint64{
			v.Get(fields.SrcIP), v.Get(fields.DstIP), v.Get(fields.Proto),
			v.Get(fields.SrcPort), v.Get(fields.DstPort), v.Get(fields.TCPFlags)}
		matches := e.layout.Init.LookupAllAppend(nil, vals[:])
		entry = &dispatchEntry{matches: matches}
		if len(matches) > 0 {
			entry.hashes = make([][]uint64, len(matches))
			for i, m := range matches {
				ca, ok := m.Action.(chainAction)
				if !ok || !ca.branch.hashPure || ca.branch.numH == 0 {
					continue
				}
				hs := make([]uint64, ca.branch.numH)
				for j := range hs {
					hs[j] = hashUnset
				}
				entry.hashes[i] = hs
			}
		}
		lane.store(version, &key, entry)
	}
	var ranPart *Program
	stopped := false
	for i, m := range entry.matches {
		ca, ok := m.Action.(chainAction)
		if !ok {
			continue
		}
		if ca.prog.TotalParts > 1 {
			if ca.prog.Part != curPart {
				continue
			}
			if sp := ctx.Pkt.SP; sp != nil && int(sp.QID) != ca.prog.QID {
				continue
			}
			ranPart = ca.prog
		}
		ctx.PHV.QueryID = ca.prog.QID
		e.runBranch(ctx, ca.branch, entry.hashes[i], &execs)
		if ca.prog == ranPart {
			stopped = ctx.PHV.Stopped
		}
	}
	switch {
	case ranPart != nil && ranPart.Part+1 < ranPart.TotalParts && !stopped:
		ctx.OutSP = Snapshot(&ctx.PHV, ranPart.QID, ranPart.Part+1)
	case ranPart != nil:
		ctx.OutSP = nil // query completed (or stopped) here: strip
	default:
		ctx.OutSP = ctx.Pkt.SP // not our partition: forward untouched
	}
	if execs != 0 {
		for k := 0; k < int(NumKinds); k++ {
			n := (execs >> (uint(k) * 16)) & 0xFFFF
			if n == 0 {
				continue
			}
			add(&lane.modExecs[k], n)
		}
	}
	if timed {
		lane.execNS.Observe(uint64(time.Since(t0)))
	}
}

// runBranch executes one branch chain over the packet. The PHV's
// metadata sets may arrive pre-seeded from a result-snapshot header
// (cross-switch execution); chains always run front to back in stage
// order, which the composition algorithm guarantees is dependency-safe.
// hashes, when non-nil, is the flow's memoized hash results (one slot
// per H op, hashUnset until first recorded); see dispatchEntry.
func (e *Engine) runBranch(ctx *dataplane.Context, b *BranchProgram, hashes []uint64, execs *uint64) {
	phv := &ctx.PHV
	seq := ctx.Sequential()
	laneIdx := ctx.Lane
	phv.Stopped = false
	for _, op := range b.Ops {
		if phv.Stopped {
			return
		}
		*execs += 1 << (uint(op.Kind) * 16)
		set := &phv.Sets[op.Set&1]
		switch op.Kind {
		case ModK:
			set.OpKeyMask = op.K.Mask
			op.K.Mask.ApplyInto(&phv.Fields, &set.OpKeys)
		case ModH:
			if hashes != nil {
				if h := hashes[op.hIdx]; h != hashUnset {
					set.HashResult = h
				} else {
					e.execH(op.H, set, phv)
					hashes[op.hIdx] = set.HashResult
				}
			} else {
				e.execH(op.H, set, phv)
			}
		case ModS:
			e.execS(op.S, set, phv, seq, laneIdx)
		case ModR:
			e.execR(ctx, op.R, set, phv)
		}
	}
}

func (e *Engine) execH(h *HConfig, set *fields.MetadataSet, phv *fields.PHV) {
	if h.Direct != NoField {
		set.HashResult = set.OpKeys.Get(h.Direct)
		return
	}
	key := set.OpKeyMask.Bytes(&set.OpKeys, phv.KeyBuf[:0])
	raw := h.Algo.Sum(key, h.Seed)
	if h.Range > 0 {
		set.HashResult = uint64(sketch.Fold(raw, h.Range))
	} else {
		set.HashResult = uint64(raw)
	}
}

// ownerOf computes the key-sharding owner of the operation keys: a hash
// independent of the row hashes so every row of a multi-array sketch
// agrees on the owner.
func ownerOf(set *fields.MetadataSet, count uint32, phv *fields.PHV) uint32 {
	key := set.OpKeyMask.Bytes(&set.OpKeys, phv.KeyBuf[:0])
	return sketch.FNV1a.Sum(key, 0xBEEF) % count
}

func (e *Engine) execS(s *SConfig, set *fields.MetadataSet, phv *fields.PHV, seq bool, lane int) {
	if s.PassThrough {
		set.StateResult = set.HashResult
		return
	}
	if s.OwnerCount > 1 && ownerOf(set, s.OwnerCount, phv) != s.OwnerIndex {
		// Key-sharded cross-switch execution: another switch on the path
		// owns this key's state; this switch's monitoring of the packet
		// ends here and the owner reports instead.
		phv.Stopped = true
		return
	}
	arr, base := s.array, s.offset
	if lane > 0 && lane < len(s.laneArrays) {
		if la := s.laneArrays[lane]; la != nil {
			// BankPrivate: this lane owns a private shard of the bank
			// (allocated from offset 0), merged into the canonical bank at
			// epoch boundaries. Single-writer, so ExecSeq below is safe
			// even on the parallel path.
			arr, base, seq = la, 0, true
		}
	}
	if arr == nil {
		panic(fmt.Sprintf("modules: state bank op executed before install (qid rule missing)"))
	}
	idx := base + uint32(set.HashResult)%s.width
	var operand uint32
	switch s.Operand {
	case OperandConst:
		operand = s.Const
	case OperandField:
		operand = uint32(phv.Fields.Get(s.Field))
	case OperandHash:
		operand = uint32(set.HashResult)
	}
	if seq {
		set.StateResult = uint64(arr.ExecSeq(s.ALU, idx, operand))
	} else {
		set.StateResult = uint64(arr.Exec(s.ALU, idx, operand))
	}
}

func (e *Engine) execR(ctx *dataplane.Context, r *RConfig, set *fields.MetadataSet, phv *fields.PHV) {
	val := int64(set.StateResult)
	if r.OnGlobal {
		val = fields.GlobalSigned(phv.GlobalResult)
	}
	for _, entry := range r.Entries {
		if val < entry.Lo || val > entry.Hi {
			continue
		}
		for _, act := range entry.Actions {
			switch act.Kind {
			case RActReport:
				ctx.Mirror(dataplane.Report{
					QueryID: phv.QueryID,
					Keys:    set.OpKeys,
					KeyMask: set.OpKeyMask,
					State:   set.StateResult,
					Global:  phv.GlobalResult,
				})
			case RActStop:
				phv.Stopped = true
			case RActSetGlobal:
				phv.GlobalResult = uint64(int64(set.StateResult))
			case RActGlobalAdd:
				phv.GlobalResult = uint64(fields.GlobalSigned(phv.GlobalResult) + act.Coeff*int64(set.StateResult))
			case RActGlobalMin:
				if int64(set.StateResult) < fields.GlobalSigned(phv.GlobalResult) {
					phv.GlobalResult = uint64(int64(set.StateResult))
				}
			case RActGlobalScale:
				phv.GlobalResult = uint64(fields.GlobalSigned(phv.GlobalResult) * act.Coeff)
			}
		}
		return // first matching entry wins (ternary priority)
	}
	// No entry matched: the result process stops the query (the
	// default-deny of a threshold match).
	phv.Stopped = true
}

// Snapshot builds the result-snapshot header from the PHV for the next
// partition of a cross-switch query (§5.1). Only what downstream cannot
// rederive is carried: state results, the global result, and the
// partition cursor. 12 bytes on the wire.
func Snapshot(phv *fields.PHV, qid int, nextPart int) *packet.SPHeader {
	g := fields.GlobalSigned(phv.GlobalResult)
	if g > 32767 {
		g = 32767
	}
	if g < -32768 {
		g = -32768
	}
	return &packet.SPHeader{
		QID:    uint16(qid) & 0xFFF,
		Part:   uint8(nextPart) & 0x0F,
		State0: uint32(phv.Sets[0].StateResult),
		State1: uint32(phv.Sets[1].StateResult),
		Global: uint16(int16(g)),
	}
}

// Restore seeds a PHV's metadata from an inbound result-snapshot header
// before the next partition executes.
func Restore(phv *fields.PHV, sp *packet.SPHeader) {
	phv.Sets[0].StateResult = uint64(sp.State0)
	phv.Sets[1].StateResult = uint64(sp.State1)
	phv.GlobalResult = uint64(int64(int16(sp.Global)))
	phv.QueryID = int(sp.QID)
}
