package rpc

import (
	"net"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/faults"
)

// rpcLeakSeed mirrors the chaos experiments' NEWTON_FAULT_SEED
// convention so CI's fault matrix varies the fault schedule here too.
func rpcLeakSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("NEWTON_FAULT_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("NEWTON_FAULT_SEED=%q: %v", v, err)
	}
	return n
}

// TestRedialLoopNoGoroutineLeak churns agents and clients through
// kill/restart cycles under seeded faults — every kill forces the
// client's redial path, and every agent restart re-registers fresh
// conn-handler goroutines — then tears everything down and asserts the
// process goroutine count returns to baseline. The regression this
// guards is a conn handler or client reader that outlives its peer.
func TestRedialLoopNoGoroutineLeak(t *testing.T) {
	seed := rpcLeakSeed(t)
	inj := faults.New(faults.Config{Seed: seed})
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	agent, _ := testAgent(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go agent.Serve(inj.Listener(ln))

	c, err := DialOptions(addr, Options{
		Timeout: time.Second, Retries: 8,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 4; round++ {
		if _, err := c.Stats(); err != nil {
			t.Fatalf("round %d: stats: %v", round, err)
		}

		// Kill the agent (its conn handlers and acceptor die) and
		// restart a fresh one on the same address; the client's next
		// call redials through its retry budget.
		agent.Close()
		next, _ := testAgent(t)
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("round %d: relisten: %v", round, err)
		}
		go next.Serve(inj.Listener(ln))
		agent = next

		// A mid-round partition exercises the failing-redial path too.
		if round%2 == 0 {
			inj.Partition()
			time.Sleep(3 * time.Millisecond)
			inj.Heal()
		}
		if _, err := c.Stats(); err != nil {
			t.Fatalf("round %d: stats after restart: %v", round, err)
		}
	}
	if c.Counters().Redials == 0 {
		t.Fatal("churn never exercised the redial path")
	}

	c.Close()
	agent.Close()

	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline {
		t.Fatalf("goroutines leaked across redial churn: baseline %d, now %d", baseline, n)
	}
}
