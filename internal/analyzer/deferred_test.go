package analyzer

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
)

func spPkt(ts uint64, dst uint32, global int16) *packet.Packet {
	return &packet.Packet{
		TS:  ts,
		IP:  packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: dst},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
		SP:  &packet.SPHeader{QID: 1, Part: 1, Global: uint16(global)},
	}
}

func TestDeferredTailThreshold(t *testing.T) {
	d := NewDeferredTail(query.Q1(40))
	if _, fired := d.Process(spPkt(1, 7, 40)); fired {
		t.Error("at-threshold snapshot should not fire (threshold is strict)")
	}
	a, fired := d.Process(spPkt(2, 7, 41))
	if !fired {
		t.Fatal("above-threshold snapshot did not fire")
	}
	if a.Key != 7 || a.Value != 41 {
		t.Errorf("alert = %+v", a)
	}
	// Dedup within the window.
	if _, fired := d.Process(spPkt(3, 7, 42)); fired {
		t.Error("same key re-alerted within the window")
	}
	// New window: alert again.
	if _, fired := d.Process(spPkt(uint64(150*time.Millisecond), 7, 50)); !fired {
		t.Error("next window did not re-alert")
	}
	if len(d.Alerts()) != 2 || !d.FlaggedKeys()[7] {
		t.Errorf("accounting wrong: %v", d.Alerts())
	}
	if d.Packets != 4 {
		t.Errorf("Packets = %d, want 4", d.Packets)
	}
}

func TestDeferredTailIgnoresPlainPackets(t *testing.T) {
	d := NewDeferredTail(query.Q1(40))
	p := spPkt(1, 7, 100)
	p.SP = nil
	if _, fired := d.Process(p); fired {
		t.Error("packet without snapshot fired")
	}
	if d.Packets != 0 {
		t.Error("plain packet counted")
	}
}

func TestDeferredTailMergeQuery(t *testing.T) {
	// Q6's merge threshold applies to the carried (signed) global.
	d := NewDeferredTail(query.Q6(30))
	if _, fired := d.Process(spPkt(1, 9, 31)); !fired {
		t.Error("merge threshold crossing not detected")
	}
	neg := spPkt(2, 10, 0)
	var healthy int16 = -100 // acks dominate
	neg.SP.Global = uint16(healthy)
	if _, fired := d.Process(neg); fired {
		t.Error("negative global fired")
	}
}

func TestDeferredTailRejectsInvalidQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid query accepted")
		}
	}()
	NewDeferredTail(&query.Query{})
}
