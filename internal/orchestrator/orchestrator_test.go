package orchestrator

import (
	"net"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/topology"
)

// fleet is a 3-switch linear testbed with real agents over in-memory
// pipes, push telemetry, and 8-stage devices — so an 11-stage query
// must partition (stagesPer derives to 6) while a 6-stage one fits a
// single switch.
type fleet struct {
	topo    *topology.Topology
	remote  *controller.Remote
	svc     *telemetry.Service
	engines map[string]*modules.Engine
	budgets map[string]scheduler.Budget
}

func newFleet(t *testing.T) *fleet {
	t.Helper()
	topo, _, _ := topology.Linear(3)
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	t.Cleanup(func() { svc.Close() })

	agents := map[string]*rpc.Client{}
	engines := map[string]*modules.Engine{}
	budgets := map[string]scheduler.Budget{}
	for _, name := range []string{"s1", "s2", "s3"} {
		layout, err := modules.NewLayout(modules.LayoutCompact, 8, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(name, 8, modules.StageCapacity())
		sw.Monitor = eng
		agent := rpc.NewAgent(sw, eng)
		server, client := net.Pipe()
		go agent.HandleConn(server)
		c := rpc.NewClient(client)
		t.Cleanup(func() { c.Close() })
		agents[name] = c
		engines[name] = eng
		budgets[name] = scheduler.Budget{Stages: 8, ArraySize: 1 << 14, RulesPerModule: 256}

		tserver, tclient := net.Pipe()
		go svc.HandleConn(tserver)
		exp, err := telemetry.NewExporter(tclient, telemetry.ExporterConfig{SwitchID: name})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { exp.Close() })
		exp.AttachAgent(agent, eng)
	}
	remote := controller.NewRemote(agents, 1)
	remote.AttachTelemetry(svc)
	return &fleet{topo: topo, remote: remote, svc: svc, engines: engines, budgets: budgets}
}

func (f *fleet) orch(t *testing.T) *Orchestrator {
	t.Helper()
	o, err := New(Config{Topo: f.topo, Budgets: f.budgets}, f.remote)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// waitEpochFull polls until the merged epoch carries full provenance or
// the deadline passes (snapshot push is asynchronous).
func waitEpochFull(t *testing.T, svc *telemetry.Service, qid int, epoch uint32) (missing []string, merged int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		partial, miss, m := svc.EpochStatus(qid, epoch)
		if !partial && m > 0 {
			return miss, m
		}
		if time.Now().After(deadline) {
			return miss, m
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestOrchestratorEndToEnd(t *testing.T) {
	f := newFleet(t)
	o := f.orch(t)
	o.SetIntents([]Intent{
		{Query: query.Q4(3), Priority: 2, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
		{Query: query.Q1(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})

	p, d, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.StagesPer != 6 {
		t.Fatalf("derived stagesPer = %d, want 6 (8-stage devices minus the continuation prefix)", p.StagesPer)
	}
	q4, q1 := p.Queries[0], p.Queries[1]
	if !q4.Admitted || q4.Single || q4.M != 2 {
		t.Fatalf("q4 plan = %+v, want admitted 2-partition placement", q4)
	}
	if !sameInts(q4.Parts["s1"], []int{0}) || !sameInts(q4.Parts["s2"], []int{1}) || len(q4.Parts) != 2 {
		t.Fatalf("q4 parts = %v, want s1:[0] s2:[1]", q4.Parts)
	}
	if !q1.Admitted || !q1.Single || len(q1.Targets) != 1 || q1.Targets[0] != "s1" {
		t.Fatalf("q1 plan = %+v, want admitted single-switch on s1", q1)
	}
	if len(d.Deltas) != 2 {
		t.Fatalf("initial diff = %v, want 2 installs", d)
	}

	if err := o.Apply(p, d); err != nil {
		t.Fatal(err)
	}

	// Per-switch installs match the plan: s1 holds q4/part0 + q1, s2
	// holds q4/part1, s3 holds nothing.
	if got := f.engines["s1"].InstalledCount(); got != 2 {
		t.Errorf("s1 installed = %d, want 2", got)
	}
	if got := f.engines["s2"].InstalledCount(); got != 1 {
		t.Errorf("s2 installed = %d, want 1", got)
	}
	if got := f.engines["s3"].InstalledCount(); got != 0 {
		t.Errorf("s3 installed = %d, want 0", got)
	}

	// A replan with nothing changed is a no-op diff.
	_, d2, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Empty() {
		t.Fatalf("steady-state diff not empty:\n%s", d2)
	}

	// Both q4 partitions own state banks, so after an epoch tick the
	// merged epoch must carry full provenance: both s1 and s2
	// contributed, nobody is missing.
	qid4 := o.QID("q4_port_scan")
	if qid4 == 0 {
		t.Fatal("q4 not recorded as deployed")
	}
	epoch := f.engines["s1"].Layout().Epoch()
	if err := f.remote.Tick(); err != nil {
		t.Fatal(err)
	}
	missing, merged := waitEpochFull(t, f.svc, qid4, epoch)
	if len(missing) != 0 || merged != 2 {
		t.Fatalf("epoch %d provenance: missing=%v merged=%d, want none missing from 2 contributors", epoch, missing, merged)
	}

	// Drain s2: the replan must drop exactly s2's partition — an update
	// delta, not a reinstall.
	before := f.engines["s1"].Programs()
	o.Drain("s2")
	p3, d3, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Deltas) != 1 {
		t.Fatalf("drain diff:\n%s\nwant exactly one delta", d3)
	}
	dl := d3.Deltas[0]
	if dl.Action != ActionUpdate || dl.Query != "q4_port_scan" {
		t.Fatalf("drain delta = %+v, want update of q4", dl)
	}
	if len(dl.Add) != 0 || len(dl.Drop) != 1 || !sameInts(dl.Drop["s2"], []int{1}) {
		t.Fatalf("drain delta add=%v drop=%v, want drop s2:[1] only", dl.Add, dl.Drop)
	}
	if err := o.Apply(p3, d3); err != nil {
		t.Fatal(err)
	}

	if got := f.engines["s2"].InstalledCount(); got != 0 {
		t.Errorf("s2 still holds %d programs after drain", got)
	}
	// s1 was never touched: the exact same program instances remain
	// installed (no reinstall happened).
	after := f.engines["s1"].Programs()
	if len(before) != len(after) {
		t.Fatalf("s1 program count changed %d -> %d across drain", len(before), len(after))
	}
	prev := map[*modules.Program]bool{}
	for _, p := range before {
		prev[p] = true
	}
	for _, p := range after {
		if !prev[p] {
			t.Fatal("s1 got a reinstalled program instance — drain was not a pure delta")
		}
	}

	// Provenance follows the new expected set: the next epoch is full
	// with s1 as the only contributor.
	epoch2 := f.engines["s1"].Layout().Epoch()
	if err := f.remote.Tick(); err != nil {
		t.Fatal(err)
	}
	missing, merged = waitEpochFull(t, f.svc, qid4, epoch2)
	if len(missing) != 0 || merged != 1 {
		t.Fatalf("post-drain epoch %d: missing=%v merged=%d, want full with 1 contributor", epoch2, missing, merged)
	}
}

func TestOrchestratorDegradesWidthPerSwitch(t *testing.T) {
	f := newFleet(t)
	// Tighten s1's register budget so the full-width q1 cannot fit; the
	// planner must degrade down the ladder rather than reject.
	f.budgets["s1"] = scheduler.Budget{Stages: 8, ArraySize: 2048, RulesPerModule: 256}
	o := f.orch(t)
	o.SetIntents([]Intent{
		{Query: query.Q1(3), Priority: 1, MinWidth: 256, MaxWidth: 4096, Edges: []string{"s1"}},
	})
	p, d, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	qp := p.Queries[0]
	if !qp.Admitted {
		t.Fatalf("q1 rejected: %s", qp.Reason)
	}
	if qp.Width >= 4096 {
		t.Fatalf("width = %d, want degraded below 4096", qp.Width)
	}
	if qp.Reason == "" {
		t.Error("degradation left no reason for the operator")
	}
	if err := o.Apply(p, d); err != nil {
		t.Fatalf("admitted plan failed to deploy: %v", err)
	}
}

func TestOrchestratorRejectsOverCommit(t *testing.T) {
	f := newFleet(t)
	// s1 too small for even the minimum width: reject with the switch
	// named in the reason.
	f.budgets["s1"] = scheduler.Budget{Stages: 8, ArraySize: 64, RulesPerModule: 256}
	o := f.orch(t)
	o.SetIntents([]Intent{
		{Query: query.Q1(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})
	p, _, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Admitted {
		t.Fatal("over-committing intent admitted")
	}
	if p.Queries[0].Reason == "" {
		t.Fatal("rejection carries no reason")
	}
}

func TestOrchestratorPriorityOrder(t *testing.T) {
	f := newFleet(t)
	// Room for one partition-1 state bank (1024 registers at the fixed
	// width) but not two: the contended switch admits a single query.
	f.budgets["s2"] = scheduler.Budget{Stages: 8, ArraySize: 1500, RulesPerModule: 256}
	o := f.orch(t)
	lo := Intent{Query: query.Q2(3), Priority: 1, MinWidth: 1024, MaxWidth: 1024, Edges: []string{"s1"}}
	hi := Intent{Query: query.Q4(3), Priority: 9, MinWidth: 1024, MaxWidth: 1024, Edges: []string{"s1"}}
	o.SetIntents([]Intent{lo, hi})
	p, _, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// The high-priority intent wins the contended budget even though it
	// arrived second.
	if !p.Queries[1].Admitted {
		t.Fatalf("high-priority intent rejected: %s", p.Queries[1].Reason)
	}
	if p.Queries[0].Admitted {
		t.Fatal("low-priority intent admitted past the contended budget")
	}
}

func TestOrchestratorRemovedIntentUninstalls(t *testing.T) {
	f := newFleet(t)
	o := f.orch(t)
	o.SetIntents([]Intent{
		{Query: query.Q1(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})
	p, d, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(p, d); err != nil {
		t.Fatal(err)
	}
	if f.engines["s1"].InstalledCount() != 1 {
		t.Fatal("q1 not installed")
	}

	o.SetIntents(nil)
	p2, d2, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Deltas) != 1 || d2.Deltas[0].Action != ActionRemove {
		t.Fatalf("diff after intent withdrawal:\n%s\nwant one remove", d2)
	}
	if err := o.Apply(p2, d2); err != nil {
		t.Fatal(err)
	}
	if got := f.engines["s1"].InstalledCount(); got != 0 {
		t.Errorf("s1 still holds %d programs after withdrawal", got)
	}
	if len(o.Deployed()) != 0 {
		t.Error("deployment record not cleared")
	}
}
