package wire

import (
	"encoding/json"
	"fmt"

	"github.com/newton-net/newton/internal/rpc"
)

// The bye frame closes a stream with the exporter's final counters. It
// is sent once per stream, so its payload stays JSON: ExportStats can
// grow fields without a wire version bump, and the framing (CRC, size
// bound) still protects it.

// AppendBye encodes a stream-closing stats payload.
func AppendBye(dst []byte, st rpc.ExportStats) ([]byte, error) {
	body, err := json.Marshal(st)
	if err != nil {
		return dst, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return append(dst, body...), nil
}

// DecodeBye decodes a stream-closing stats payload.
func DecodeBye(payload []byte) (rpc.ExportStats, error) {
	var st rpc.ExportStats
	if err := json.Unmarshal(payload, &st); err != nil {
		return rpc.ExportStats{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return st, nil
}
