package orchestrator

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
)

// TestOrchestratorResizeEndToEnd drives a width change through the full
// stack — plan diff, controller resize, agent reinstall, telemetry
// transition provenance — and checks the contract the refiner depends
// on: the qid survives, neighbor queries are untouched, the transition
// epoch reads Partial, and the next epoch is clean at the new geometry.
func TestOrchestratorResizeEndToEnd(t *testing.T) {
	f := newFleet(t)
	o := f.orch(t)
	o.SetIntents([]Intent{
		{Query: query.Q1(50), Priority: 2, MinWidth: 256, MaxWidth: 8192,
			Edges: []string{"s1"}, Accuracy: query.Accuracy{MaxRelErr: 0.25}},
		{Query: query.Q4(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})
	if _, _, err := o.Converge(); err != nil {
		t.Fatal(err)
	}
	qid1, qid4 := o.QID("q1_new_tcp_connections"), o.QID("q4_port_scan")
	if qid1 == 0 || qid4 == 0 {
		t.Fatalf("deploy incomplete: qids %d/%d", qid1, qid4)
	}
	if got := o.Deployed()["q1_new_tcp_connections"].Width; got != 256 {
		t.Fatalf("frugal-start width = %d, want 256", got)
	}

	// A settled pre-resize epoch.
	epoch := f.engines["s1"].Layout().Epoch()
	if err := f.remote.Tick(); err != nil {
		t.Fatal(err)
	}
	if missing, merged := waitEpochFull(t, f.svc, qid1, epoch); len(missing) != 0 || merged != 1 {
		t.Fatalf("pre-resize epoch: missing=%v merged=%d", missing, merged)
	}

	// The refiner's decision, replayed by hand: pin 1024 and replan. The
	// diff must be exactly one in-place resize — no remove, no install.
	q4Before := f.engines["s2"].Programs()
	o.SetWidthCap("q1_new_tcp_connections", 1024)
	p, d, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deltas) != 1 || d.Deltas[0].Action != ActionResize {
		t.Fatalf("resize diff:\n%swant exactly one resize", d)
	}
	if dl := d.Deltas[0]; dl.QID != qid1 || dl.FromWidth != 256 || dl.Target.Width != 1024 {
		t.Fatalf("resize delta = %+v, want qid %d width 256 -> 1024", dl, qid1)
	}
	if err := o.Apply(p, d); err != nil {
		t.Fatal(err)
	}

	// The qid survived and the neighbor's program instances are the
	// exact same objects — the resize touched only q1.
	if got := o.QID("q1_new_tcp_connections"); got != qid1 {
		t.Fatalf("resize changed qid %d -> %d", qid1, got)
	}
	q4After := f.engines["s2"].Programs()
	if len(q4Before) != len(q4After) {
		t.Fatalf("s2 program count changed %d -> %d across q1 resize", len(q4Before), len(q4After))
	}
	prev := map[*modules.Program]bool{}
	for _, p := range q4Before {
		prev[p] = true
	}
	for _, p := range q4After {
		if !prev[p] {
			t.Fatal("s2 got a reinstalled program — the resize leaked to a neighbor")
		}
	}

	// The first post-resize epoch merges banks filled from a mid-window
	// restart: it must read Partial (width transition) even though the
	// only contributor delivered.
	tEpoch := f.engines["s1"].Layout().Epoch()
	if err := f.remote.Tick(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		partial, missing, merged := f.svc.EpochStatus(qid1, tEpoch)
		if merged > 0 {
			if !partial || len(missing) != 0 {
				t.Fatalf("transition epoch %d: partial=%v missing=%v, want partial with none missing", tEpoch, partial, missing)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transition epoch %d never merged", tEpoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if qa, ok := f.svc.ObservedAccuracy(qid1, tEpoch, 50); !ok || !qa.Transition {
		t.Fatalf("ObservedAccuracy(transition) = %+v ok=%v, want Transition", qa, ok)
	}

	// The next epoch is clean at the new geometry.
	cEpoch := f.engines["s1"].Layout().Epoch()
	if err := f.remote.Tick(); err != nil {
		t.Fatal(err)
	}
	if missing, merged := waitEpochFull(t, f.svc, qid1, cEpoch); len(missing) != 0 || merged != 1 {
		t.Fatalf("post-resize epoch %d: missing=%v merged=%d, want clean", cEpoch, missing, merged)
	}
	qa, ok := f.svc.ObservedAccuracy(qid1, cEpoch, 50)
	if !ok || qa.Transition || qa.Width != 1024 {
		t.Fatalf("post-resize accuracy = %+v ok=%v, want clean width-1024 estimate", qa, ok)
	}
	// And the settled frontier lands on the clean epoch, not the
	// transition one.
	if e, ok := f.svc.LatestSettledEpoch(qid1); !ok || e != cEpoch {
		t.Fatalf("LatestSettledEpoch = %d/%v, want %d", e, ok, cEpoch)
	}
}
