package dataplane

import (
	"math/rand"
	"testing"

	"github.com/newton-net/newton/internal/classify"
)

// scanOnly pins a table to the linear-scan oracle path.
var scanOnly = classify.Config{MinRules: 1 << 30}

// compileAlways compiles at any rule count.
var compileAlways = classify.Config{MinRules: 1}

// fillTernaryMix installs the same pseudo-random mix of exact, LPM-style
// and masked rules into every given table: the cross-product of what
// newton_init and R-tables hold.
func fillTernaryMix(t *testing.T, rng *rand.Rand, n int, tabs ...*Table) {
	t.Helper()
	for i := 0; i < n; i++ {
		var vals, masks [2]uint64
		switch rng.Intn(4) {
		case 0: // exact (lands in the hash index)
			vals = [2]uint64{uint64(rng.Intn(64)), uint64(rng.Intn(64))}
			masks = [2]uint64{^uint64(0), ^uint64(0)}
		case 1: // prefix on col 0 (mixed lengths within one 32-bit domain)
			vals[0] = uint64(rng.Uint32())
			masks[0] = [...]uint64{0xFFFFFFFF, 0xFFFFFF00, 0xFFFF0000}[rng.Intn(3)]
			masks[1] = 0
		case 2: // dense-style small mask on col 1
			masks[1] = uint64(rng.Intn(256))
			vals[1] = uint64(rng.Intn(256))
		default: // wildcard
		}
		prio := rng.Intn(8)
		for _, tb := range tabs {
			if _, err := tb.AddRule(vals[:], masks[:], prio, namedAction("m")); err != nil {
				t.Fatalf("AddRule: %v", err)
			}
		}
	}
}

// TestTableClassifierEquivalence drives identical rule sets through a
// classifier-enabled table and a scan-forced oracle table and compares
// the full LookupAll order plus the best-match Lookup for a large key
// space — the dataplane-level equivalence contract.
func TestTableClassifierEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		fast := NewTable("fast", MatchTernary, 2, 4096)
		fast.SetClassifierConfig(compileAlways)
		oracle := NewTable("oracle", MatchTernary, 2, 4096)
		oracle.SetClassifierConfig(scanOnly)
		fillTernaryMix(t, rng, 10+rng.Intn(120), fast, oracle)

		var bufF, bufO []*Rule
		for k := 0; k < 200; k++ {
			vals := []uint64{uint64(rng.Uint32()), uint64(rng.Intn(512))}
			if k%3 == 0 { // bias into the exact-rule value range
				vals[0], vals[1] = uint64(rng.Intn(64)), uint64(rng.Intn(64))
			}
			bufF = fast.LookupAllAppend(bufF[:0], vals)
			bufO = oracle.LookupAllAppend(bufO[:0], vals)
			if len(bufF) != len(bufO) {
				t.Fatalf("trial %d key %v: classifier %d matches, oracle %d", trial, vals, len(bufF), len(bufO))
			}
			for i := range bufF {
				// Distinct Table instances: compare by position (IDs are
				// assigned identically by the shared install order).
				if bufF[i].ID != bufO[i].ID {
					t.Fatalf("trial %d key %v pos %d: rule %d vs oracle %d", trial, vals, i, bufF[i].ID, bufO[i].ID)
				}
			}
			bf, bo := fast.Lookup(vals[0], vals[1]), oracle.Lookup(vals[0], vals[1])
			switch {
			case (bf == nil) != (bo == nil):
				t.Fatalf("trial %d key %v: best %v vs oracle %v", trial, vals, bf, bo)
			case bf != nil && bf.ID != bo.ID:
				t.Fatalf("trial %d key %v: best rule %d vs oracle %d", trial, vals, bf.ID, bo.ID)
			}
		}
		if fast.TernaryScans() != 0 {
			t.Fatalf("trial %d: classifier table fell back to %d scans", trial, fast.TernaryScans())
		}
		if oracle.TernaryScans() == 0 {
			t.Fatalf("trial %d: oracle table never scanned", trial)
		}
	}
}

// TestTableClassifierSurvivesMutation asserts rule add/remove invalidates
// the compiled structure: each new snapshot recompiles and stays
// equivalent.
func TestTableClassifierSurvivesMutation(t *testing.T) {
	tb := NewTable("mut", MatchTernary, 1, 1024)
	tb.SetClassifierConfig(compileAlways)
	var ids []int
	for i := 0; i < 64; i++ {
		id, err := tb.AddRule([]uint64{uint64(i) << 8}, []uint64{0xFFFFFF00}, i%4, namedAction("p"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	probe := func(want bool, v uint64) {
		t.Helper()
		got := tb.Lookup(v) != nil
		if got != want {
			t.Fatalf("Lookup(%#x) matched=%v, want %v", v, got, want)
		}
	}
	probe(true, 5<<8|3)
	if !tb.ClassifierInfo().Compiled {
		t.Fatal("expected compiled classifier after lookup")
	}
	if err := tb.RemoveRule(ids[5]); err != nil {
		t.Fatal(err)
	}
	probe(false, 5<<8|3) // removed rule no longer matches
	probe(true, 6<<8|3)
	if _, err := tb.AddRule([]uint64{5 << 8}, []uint64{0xFFFFFF00}, 0, namedAction("back")); err != nil {
		t.Fatal(err)
	}
	probe(true, 5<<8|3)
	if !tb.ClassifierInfo().Compiled {
		t.Fatal("expected recompiled classifier after mutations")
	}
}

// TestWideTableSkipsExactIndex covers the maxIndexCols fallback: tables
// wider than the exact-match index route all rules — full-mask ones
// included — through the ternary set, where the compiled classifier
// (point intervals) serves them.
func TestWideTableSkipsExactIndex(t *testing.T) {
	const cols = maxIndexCols + 2
	tb := NewTable("wide", MatchTernary, cols, 256)
	tb.SetClassifierConfig(compileAlways)
	vals := make([]uint64, cols)
	masks := make([]uint64, cols)
	for c := range masks {
		masks[c] = ^uint64(0)
	}
	for i := 0; i < 32; i++ {
		for c := range vals {
			vals[c] = uint64(i + c)
		}
		if _, err := tb.AddRule(vals, masks, 0, namedAction("w")); err != nil {
			t.Fatal(err)
		}
	}
	// One prefix rule so the set is genuinely ternary.
	wild := make([]uint64, cols)
	wmask := make([]uint64, cols)
	wild[0], wmask[0] = 0x40, 0xFFFFFFFFFFFFFFC0
	if _, err := tb.AddRule(wild, wmask, 5, namedAction("masked")); err != nil {
		t.Fatal(err)
	}

	key := make([]uint64, cols)
	for c := range key {
		key[c] = uint64(7 + c)
	}
	if r := tb.Lookup(key...); r == nil || r.Action.ActionName() != "w" {
		t.Fatalf("wide exact lookup = %v", r)
	}
	key2 := make([]uint64, cols)
	key2[0] = 0x55 // inside the 0x40/58 prefix
	if r := tb.Lookup(key2...); r == nil || r.Action.ActionName() != "masked" {
		t.Fatalf("wide masked lookup = %v", r)
	}
	key2[0] = 0x80
	if r := tb.Lookup(key2...); r != nil {
		t.Fatalf("wide miss returned %v", r)
	}
	if !tb.ClassifierInfo().Compiled {
		t.Fatal("wide table should be served by the compiled classifier")
	}
	if tb.TernaryScans() != 0 {
		t.Fatalf("wide table scanned %d times", tb.TernaryScans())
	}
}

// TestTernaryScanCounter asserts the slow-path counter: a scan-forced
// table counts every ternary lookup, a compiled table none, and tables
// below MinRules count scans (the cheap-linear regime).
func TestTernaryScanCounter(t *testing.T) {
	tb := NewTable("count", MatchTernary, 1, 64)
	tb.SetClassifierConfig(classify.Config{MinRules: 8})
	for i := 0; i < 4; i++ {
		tb.AddRule([]uint64{uint64(i)}, []uint64{0xFF}, 0, namedAction("s"))
	}
	for i := 0; i < 10; i++ {
		tb.Lookup(uint64(i))
	}
	if got := tb.TernaryScans(); got != 10 {
		t.Fatalf("below-threshold table: %d scans, want 10", got)
	}
	info := tb.ClassifierInfo()
	if !info.Attempted || info.Compiled {
		t.Fatalf("below-threshold info = %+v, want attempted fallback", info)
	}
	for i := 4; i < 16; i++ {
		tb.AddRule([]uint64{uint64(i)}, []uint64{0xFF}, 0, namedAction("s"))
	}
	before := tb.TernaryScans()
	for i := 0; i < 10; i++ {
		tb.Lookup(uint64(i))
	}
	if got := tb.TernaryScans(); got != before {
		t.Fatalf("compiled table still scanning: %d -> %d", before, got)
	}
	if !tb.ClassifierInfo().Compiled {
		t.Fatal("16-rule table should compile")
	}
}

// TestTableClassifierZeroAlloc pins the classified packet path at zero
// allocations per lookup, for both Lookup and the append form.
func TestTableClassifierZeroAlloc(t *testing.T) {
	tb := NewTable("alloc", MatchTernary, 2, 8192)
	for i := 0; i < 4096; i++ {
		tb.AddRule([]uint64{uint64(i) << 8, 6}, []uint64{0xFFFFFF00, 0xFF}, 0, namedAction("p"))
	}
	vals := []uint64{uint64(1234) << 8, 6}
	buf := make([]*Rule, 0, 8)
	tb.Lookup(vals[0], vals[1]) // compile + warm
	if !tb.ClassifierInfo().Compiled {
		t.Fatal("4096-rule table should compile")
	}
	if a := testing.AllocsPerRun(200, func() {
		buf = tb.LookupAllAppend(buf[:0], vals)
	}); a != 0 {
		t.Fatalf("LookupAllAppend allocates %v per op", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		tb.Lookup(vals[0], vals[1])
	}); a != 0 {
		t.Fatalf("Lookup allocates %v per op", a)
	}
}

// TestSetClassifierConfigBumpsVersion asserts config changes republish:
// dispatch caches keyed on Version must not serve stale classifications.
func TestSetClassifierConfigBumpsVersion(t *testing.T) {
	tb := NewTable("ver", MatchTernary, 1, 64)
	v0 := tb.Version()
	tb.SetClassifierConfig(scanOnly)
	if tb.Version() == v0 {
		t.Fatal("SetClassifierConfig did not bump the version")
	}
}
