package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/telemetry"
)

// runStatus is the `newton-ctl status` entry: deploy the chosen queries
// over an in-process fleet, stand up the health monitor that watches
// it, and render its fleet-health snapshot — the same table an operator
// would read against a live deployment. -kill demonstrates the closed
// loop: the named switch's control channel is severed, the monitor's
// next rounds debounce it to down, auto-drain it, and converge its
// queries onto the survivors, all visible in the final snapshot and
// event log.
func runStatus(args []string) {
	fs := flag.NewFlagSet("newton-ctl status", flag.ExitOnError)
	var (
		topoSpec = fs.String("topology", "linear:3", "topology: linear:N, fattree:K, or isp")
		queries  = fs.String("queries", "q1,q4", "comma-separated catalog queries (q1..q9), priority = listed order")
		stages   = fs.Int("switch-stages", 8, "pipeline stages of each switch device")
		arrays   = fs.Uint("registers", 1<<14, "state-bank registers per switch")
		rules    = fs.Int("rules", 256, "rule capacity per module table")
		kill     = fs.String("kill", "", "sever this switch's control channel and watch the monitor drain it")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	topo, _, _ := buildTopology(*topoSpec)
	fleet, budgets := buildFleet(topo, *stages, uint32(*arrays), *rules)
	remote := controller.NewRemote(fleet.clients, 1)
	orch, err := orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, remote)
	if err != nil {
		log.Fatal(err)
	}

	var intents []orchestrator.Intent
	names := strings.Split(*queries, ",")
	for i, name := range names {
		q, err := query.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		intents = append(intents, orchestrator.Intent{Query: q, Priority: len(names) - i})
	}
	orch.SetIntents(intents)
	if _, _, err := orch.Converge(); err != nil {
		log.Fatalf("initial converge: %v", err)
	}

	// Stand up the telemetry plane the fleet pushes into: one analyzer
	// service, one exporter per switch. The first switch stays on the
	// legacy JSON codec so the wire table shows a mixed-codec fleet — the
	// interop a rolling upgrade lives through.
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	remote.AttachTelemetry(svc)
	for i, name := range fleet.names {
		codec := telemetry.CodecAuto
		if i == 0 {
			codec = telemetry.CodecJSON
		}
		sconn, econn := net.Pipe()
		go svc.HandleConn(sconn)
		exp, err := telemetry.NewExporter(econn, telemetry.ExporterConfig{
			SwitchID: name, Codec: codec, KeyframeEvery: 4,
		})
		if err != nil {
			log.Fatalf("telemetry exporter %s: %v", name, err)
		}
		exp.AttachAgent(fleet.agents[name], fleet.engines[name])
		defer exp.Close()
	}
	// Roll a few epochs so snapshots flow over the negotiated codecs.
	for i := 0; i < 6; i++ {
		if err := remote.Tick(); err != nil {
			log.Fatalf("epoch tick: %v", err)
		}
	}

	mon, err := orchestrator.NewMonitor(orch, orch.Switches(), orchestrator.HealthConfig{
		// In-process pipes fail instantly once severed, so one bad round
		// may suspect and the next drain — the demo-speed ladder.
		Probe: func(name string) error {
			_, err := fleet.clients[name].Stats()
			return err
		},
		Offline:      remote.SetOffline,
		SuspectAfter: 1, DownAfter: 1, RecoverAfter: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	mon.Tick()
	fmt.Printf("fleet (%d switches, queries %s):\n%s", len(budgets), *queries, mon.Snapshot())
	printWireTable(svc, fleet.names)

	if *kill == "" {
		return
	}
	c, ok := fleet.clients[*kill]
	if !ok {
		log.Fatalf("status: unknown switch %q", *kill)
	}
	fmt.Printf("\nsevering %s's control channel and re-evaluating:\n", *kill)
	c.Close()
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	snap := mon.Snapshot()
	fmt.Print(snap)
	fmt.Println("\nevents:")
	for _, ev := range snap.Events {
		fmt.Printf("  %s\n", ev)
	}
	fmt.Println("\nsurviving installs:")
	fleet.printInstalls()
}

// printWireTable renders each agent stream's negotiated codec and its
// wire economics: compression ratio (bytes on the wire over their
// uncompressed cost) and the share of snapshot frames that shipped as
// deltas instead of keyframes.
func printWireTable(svc *telemetry.Service, names []string) {
	// The pipe write returns before the service's read loop finishes
	// accounting the frame; settle until the byte counters stop moving.
	var last uint64
	for i := 0; i < 100; i++ {
		st := svc.Stats()
		if i > 0 && st.WireBytes == last {
			break
		}
		last = st.WireBytes
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\ntelemetry wire:")
	fmt.Printf("  %-14s %-7s %7s %10s %6s %6s\n",
		"switch", "codec", "frames", "bytes", "comp", "delta")
	for _, name := range names {
		wi, ok := svc.AgentWire(name)
		if !ok {
			continue
		}
		comp := "-"
		if wi.RawBytes > 0 {
			comp = fmt.Sprintf("%.2f", float64(wi.Bytes)/float64(wi.RawBytes))
		}
		delta := "-"
		if snaps := wi.DeltaFrames + wi.KeyframeFrames; snaps > 0 {
			delta = fmt.Sprintf("%d%%", 100*wi.DeltaFrames/snaps)
		}
		fmt.Printf("  %-14s %-7s %7d %10d %6s %6s\n",
			name, wi.Codec, wi.Frames, wi.Bytes, comp, delta)
	}
}
