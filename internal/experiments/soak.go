// The churn soak is the production-readiness experiment ROADMAP item
// (3b) asks for: a fleet of switch agents under continuous multi-tenant
// intent churn (installs, removes, operator drains) plus seeded faults
// (kills, partitions, stalls, connection resets) for many rounds, with
// the orchestrator's health monitor — not an operator — driving every
// drain and re-admission. The run audits the properties a long-lived
// deployment actually needs: bounded heap growth, goroutine stability,
// deploy-latency tails, MTTR from fault to reconverged, and zero
// cross-tenant provenance mixups (a tenant's merged results must never
// include a switch their query was not placed on).
package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/faults"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// SoakConfig parameterizes the churn soak. The zero value is the
// CI-sized run; a production soak raises Switches/Tenants/Rounds.
type SoakConfig struct {
	// Seed drives the trace, every fault injector, the churn schedule,
	// and client retry jitter — the run is reproducible from it
	// (default 1).
	Seed int64
	// Switches sizes the linear fleet (default 8).
	Switches int
	// Tenants is how many tenants contribute intents; each tenant owns
	// a single-switch query and a partitioned query (default 4).
	Tenants int
	// Rounds is the churn round count (default 36). Each round applies
	// one churn or fault operation, pumps traffic, rolls epochs, and
	// ticks the health monitor.
	Rounds int
	// KillEvery schedules a switch kill every this many rounds
	// (default 12); DownFor is how many rounds the switch stays dead
	// before restarting with an empty engine (default 4).
	KillEvery int
	DownFor   int
	// PartitionFor is how many rounds an injected control+telemetry
	// partition lasts (default 2).
	PartitionFor int
	// MaxHeapGrowthMB is the declared leak threshold: heap growth from
	// the post-warmup sample to the end of the run must stay under it
	// (default 8).
	MaxHeapGrowthMB float64
	// GoroutineSlack is the tolerated goroutine delta after teardown
	// (default 8) — runtime pollers and test plumbing wobble a little.
	GoroutineSlack int
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Switches == 0 {
		c.Switches = 8
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 36
	}
	if c.KillEvery == 0 {
		c.KillEvery = 12
	}
	if c.DownFor == 0 {
		c.DownFor = 4
	}
	if c.PartitionFor == 0 {
		c.PartitionFor = 2
	}
	if c.MaxHeapGrowthMB == 0 {
		c.MaxHeapGrowthMB = 8
	}
	if c.GoroutineSlack == 0 {
		c.GoroutineSlack = 8
	}
	return c
}

// SoakResult is the soak's metrics and verdict. Violations collects
// every failed assertion; an empty list is a pass.
type SoakResult struct {
	Seed                      int64
	Switches, Tenants, Rounds int

	Kills        int
	AutoDrains   uint64
	AutoUndrains uint64
	ConvergeErrs uint64
	Converges    int // operator + monitor converges with recorded latency
	TickErrors   int
	Rejections   int // operator converges that failed and were retried

	MTTRDrain   []time.Duration // kill -> monitor auto-drain, per kill
	MTTRReadmit []time.Duration // restart -> monitor auto-undrain, per kill

	P50Deploy, P99Deploy time.Duration

	HeapGrowthMB       float64
	GoroutineBaseline  int
	GoroutineEnd       int
	ProvenanceMixups   int
	TrackedAgentsFinal int

	Violations []string
}

// Passed reports whether every soak assertion held.
func (r *SoakResult) Passed() bool { return len(r.Violations) == 0 }

// soakSwitch is one fleet member's moving parts.
type soakSwitch struct {
	name string
	id   int // topology node id

	agent *rpc.Agent
	exp   *telemetry.Exporter
	inj   *faults.Injector
	addr  string

	dead      bool
	restartAt int // round to restart at (when dead)
	partedTo  int // round a partition heals at (0 = not partitioned)
}

// soakKill records one injected switch failure for MTTR accounting.
type soakKill struct {
	name      string
	killedAt  time.Time
	restarted time.Time
}

// soakNet is the full soak fleet: netsim dataplane, TCP agents behind
// per-switch fault injectors, push telemetry, orchestrator, health
// monitor.
type soakNet struct {
	cfg    SoakConfig
	net    *netsim.Network
	h1, h2 int

	svc     *telemetry.Service
	svcLn   net.Listener
	clients map[string]*rpc.Client
	sws     map[string]*soakSwitch
	names   []string

	ctl  *controller.Remote
	orch *orchestrator.Orchestrator
	mon  *orchestrator.Monitor

	// allowed accumulates, per tenant query name, every switch any
	// applied plan ever placed it on — the provenance ground truth the
	// analyzer's Contributors sets are audited against.
	allowed map[string]map[string]bool

	kills    []*soakKill
	deployNs []int64 // operator converge latencies
}

func (sn *soakNet) dialExporter(sw *soakSwitch, eng *modules.Engine) error {
	addr := sn.svcLn.Addr().String()
	redial := func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return sw.inj.Conn(c), nil
	}
	conn, err := redial()
	if err != nil {
		return err
	}
	exp, err := telemetry.NewExporter(conn, telemetry.ExporterConfig{
		SwitchID: sw.name, Redial: redial, Policy: telemetry.PolicyDropOldest,
		ReconnectMin: time.Millisecond, ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		conn.Close()
		return err
	}
	exp.AttachAgent(sw.agent, eng)
	sw.exp = exp
	return nil
}

func newSoakNet(cfg SoakConfig) (*soakNet, error) {
	topo, h1, h2 := topology.Linear(cfg.Switches)
	n, err := netsim.New(topo, netsim.Config{Stages: 8, ArraySize: 1 << 14})
	if err != nil {
		return nil, err
	}
	sn := &soakNet{
		cfg: cfg, net: n, h1: h1, h2: h2,
		svc:     telemetry.NewService(telemetry.ServiceConfig{KeepEpochs: 8}),
		clients: map[string]*rpc.Client{},
		sws:     map[string]*soakSwitch{},
		allowed: map[string]map[string]bool{},
	}
	sn.svcLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go sn.svc.Serve(sn.svcLn)

	budgets := map[string]scheduler.Budget{}
	for i, id := range topo.Switches() {
		node := n.Node(id)
		name := node.DP.ID
		sn.names = append(sn.names, name)
		sw := &soakSwitch{name: name, id: id,
			inj: faults.New(faults.Config{Seed: cfg.Seed + int64(i)})}
		sw.agent = rpc.NewAgent(node.DP, node.Eng)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		sw.addr = ln.Addr().String()
		go sw.agent.Serve(sw.inj.Listener(ln))

		c, err := rpc.DialOptions(sw.addr, rpc.Options{
			Timeout: 250 * time.Millisecond, Retries: 3,
			BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		sn.clients[name] = c
		if err := sn.dialExporter(sw, node.Eng); err != nil {
			return nil, err
		}
		sn.sws[name] = sw
		budgets[name] = scheduler.Budget{Stages: 8, ArraySize: 1 << 14, RulesPerModule: 256}
	}
	sort.Strings(sn.names)

	sn.ctl = controller.NewRemote(sn.clients, cfg.Seed)
	sn.ctl.AttachTelemetry(sn.svc)
	sn.orch, err = orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, sn.ctl)
	if err != nil {
		return nil, err
	}
	sn.mon, err = orchestrator.NewMonitor(sn.orch, sn.orch.Switches(), orchestrator.HealthConfig{
		Probe: func(name string) error {
			_, err := sn.clients[name].Stats()
			return err
		},
		// Telemetry silence only indicts a switch the fleet currently
		// expects telemetry from: a switch hosting no query sends no
		// snapshots and must not read as dead.
		Liveness: func(name string) (time.Time, bool, bool) {
			if !sn.hosting(name) {
				return time.Time{}, false, false
			}
			return sn.svc.AgentLiveness(name)
		},
		MaxSilence: 2 * time.Second,
		Offline:    sn.ctl.SetOffline,
		// Compressed ladder for round-driven churn: two consecutive bad
		// rounds drain, two consecutive good rounds re-admit.
		SuspectAfter: 1, DownAfter: 1, RecoverAfter: 2,
		ForgetAfter: time.Hour, // outages here are short; forgetting is unit-tested
		OnForget:    func(name string) { sn.svc.ForgetAgent(name) },
	})
	if err != nil {
		return nil, err
	}
	return sn, nil
}

// hosting reports whether any deployed query currently places work on
// the named switch.
func (sn *soakNet) hosting(name string) bool {
	for _, qp := range sn.orch.Deployed() {
		for _, t := range qp.Targets {
			if t == name {
				return true
			}
		}
		if _, ok := qp.Parts[name]; ok {
			return true
		}
	}
	return false
}

// noteAllowed folds the current deployment into the cumulative
// provenance ground truth.
func (sn *soakNet) noteAllowed() {
	for name, qp := range sn.orch.Deployed() {
		set := sn.allowed[name]
		if set == nil {
			set = map[string]bool{}
			sn.allowed[name] = set
		}
		for _, t := range qp.Targets {
			set[t] = true
		}
		for sw := range qp.Parts {
			set[sw] = true
		}
	}
}

// converge runs an operator-path converge, recording its latency.
// Errors are tolerated (a converge racing a dying switch fails; the
// monitor's dirty-retry or the next operator call finishes the job).
func (sn *soakNet) converge() error {
	start := time.Now()
	_, _, err := sn.orch.Converge()
	sn.deployNs = append(sn.deployNs, time.Since(start).Nanoseconds())
	if err == nil {
		sn.noteAllowed()
	}
	return err
}

// kill models a switch crash: the agent's listener and conns close, the
// exporter dies with the process.
func (sn *soakNet) kill(sw *soakSwitch, round int) {
	sw.exp.Close()
	_ = sw.agent.Close()
	sw.dead = true
	sw.restartAt = round + sn.cfg.DownFor
	sn.kills = append(sn.kills, &soakKill{name: sw.name, killedAt: time.Now()})
}

// restart brings a killed switch back with an empty engine on the same
// address — the reboot-lost-everything case. The deferred removes the
// controller pinned while it was offline flush on re-admission.
func (sn *soakNet) restart(sw *soakSwitch) error {
	node := sn.net.Node(sw.id)
	layout, err := modules.NewLayout(modules.LayoutCompact, 8, 1<<14)
	if err != nil {
		return err
	}
	eng := modules.NewEngine(layout)
	node.Layout, node.Eng = layout, eng
	node.DP.Monitor = eng
	sw.agent = rpc.NewAgent(node.DP, eng)
	ln, err := net.Listen("tcp", sw.addr)
	if err != nil {
		return err
	}
	go sw.agent.Serve(sw.inj.Listener(ln))
	if err := sn.dialExporter(sw, eng); err != nil {
		return err
	}
	sw.dead = false
	for i := len(sn.kills) - 1; i >= 0; i-- {
		if k := sn.kills[i]; k.name == sw.name && k.restarted.IsZero() {
			k.restarted = time.Now()
			break
		}
	}
	return nil
}

func (sn *soakNet) close() {
	for _, sw := range sn.sws {
		if sw.exp != nil {
			sw.exp.Close()
		}
		sw.agent.Close()
	}
	for _, c := range sn.clients {
		c.Close()
	}
	sn.svc.Close()
	sn.svcLn.Close()
}

// tenantIntents builds every tenant's current intent set from the
// active map (tenant -> query index -> active).
func tenantIntents(tenants int, active map[[2]int]bool) []orchestrator.Intent {
	var out []orchestrator.Intent
	for t := 0; t < tenants; t++ {
		for qi := 0; qi < 2; qi++ {
			if !active[[2]int{t, qi}] {
				continue
			}
			var q *query.Query
			if qi == 0 {
				q = query.Q1(3)
			} else {
				q = query.Q4(3)
			}
			cp := *q
			cp.Name = fmt.Sprintf("t%d/%s", t, q.Name)
			out = append(out, orchestrator.Intent{Query: &cp, Priority: 10 - t})
		}
	}
	return out
}

func heapMB() float64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func quantileNs(ns []int64, q float64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return time.Duration(s[idx])
}

// Soak runs the churn soak and returns its metrics and verdict.
func Soak(cfg SoakConfig) *SoakResult {
	cfg = cfg.withDefaults()
	res := &SoakResult{Seed: cfg.Seed, Switches: cfg.Switches,
		Tenants: cfg.Tenants, Rounds: cfg.Rounds}

	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	res.GoroutineBaseline = runtime.NumGoroutine()

	sn, err := newSoakNet(cfg)
	if err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("fleet build: %v", err))
		return res
	}
	rng := newSoakRNG(cfg.Seed)

	tr := trace.Generate(trace.Config{Seed: cfg.Seed, Flows: 400, Duration: 400 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 400})
	perRound := len(tr.Packets) / cfg.Rounds
	if perRound == 0 {
		perRound = 1
	}

	// All tenants start fully subscribed; churn toggles from here.
	active := map[[2]int]bool{}
	for t := 0; t < cfg.Tenants; t++ {
		active[[2]int{t, 0}] = true
		active[[2]int{t, 1}] = true
	}
	sn.orch.SetIntents(tenantIntents(cfg.Tenants, active))
	needConverge := sn.converge() != nil

	var drainedByOp string
	heapAfterWarmup := 0.0
	// The warmup heap sample waits for the analyzer's epoch-retention
	// ring (KeepEpochs) to fill: before the plateau, resident merged
	// epochs still legitimately accumulate and would read as growth.
	warmup := cfg.Rounds / 2

	for round := 0; round < cfg.Rounds; round++ {
		// Restart switches whose outage has run its course.
		for _, name := range sn.names {
			sw := sn.sws[name]
			if sw.dead && round >= sw.restartAt {
				if err := sn.restart(sw); err != nil {
					res.Violations = append(res.Violations,
						fmt.Sprintf("round %d: restart %s: %v", round, name, err))
				}
			}
			if sw.partedTo != 0 && round >= sw.partedTo {
				sw.inj.Heal()
				sw.partedTo = 0
			}
		}

		// One churn or fault op per round, from the seeded schedule.
		switch {
		case cfg.KillEvery > 0 && round%cfg.KillEvery == cfg.KillEvery-1:
			if name := sn.pickAlive(rng, drainedByOp); name != "" {
				sn.kill(sn.sws[name], round)
				res.Kills++
			}
		case round%7 == 3:
			if name := sn.pickAlive(rng, drainedByOp); name != "" {
				sw := sn.sws[name]
				sw.inj.Partition()
				sw.partedTo = round + cfg.PartitionFor
			}
		case round%11 == 5:
			if name := sn.pickAlive(rng, drainedByOp); name != "" {
				sw := sn.sws[name]
				sw.inj.Stall()
				time.AfterFunc(60*time.Millisecond, sw.inj.Unstall)
			}
		case round%5 == 2:
			// Operator drain/undrain toggle.
			if drainedByOp != "" {
				sn.orch.Undrain(drainedByOp)
				drainedByOp = ""
				needConverge = true
			} else if name := sn.pickAlive(rng, ""); name != "" {
				sn.orch.Drain(name)
				drainedByOp = name
				needConverge = true
			}
		default:
			// Tenant intent toggle.
			key := [2]int{rng.intn(cfg.Tenants), rng.intn(2)}
			active[key] = !active[key]
			sn.orch.SetIntents(tenantIntents(cfg.Tenants, active))
			needConverge = true
		}

		if needConverge {
			if err := sn.converge(); err != nil {
				res.Rejections++
			} else {
				needConverge = false
			}
		}

		// Pump this round's slice of traffic and roll epochs so live
		// switches snapshot their banks to the analyzer.
		lo := round * perRound
		hi := lo + perRound
		if hi > len(tr.Packets) {
			hi = len(tr.Packets)
		}
		for _, pkt := range tr.Packets[lo:hi] {
			sn.net.Deliver(pkt, sn.h1, sn.h2)
		}
		if err := sn.ctl.Tick(); err != nil {
			res.TickErrors++
		}

		sn.mon.Tick()
		sn.noteAllowed()

		// Provenance audit: a tenant query's contributors must be a
		// subset of everywhere it was ever placed.
		for name := range sn.orch.Deployed() {
			qid := sn.orch.QID(name)
			for _, swName := range sn.svc.Contributors(qid) {
				if !sn.allowed[name][swName] {
					res.ProvenanceMixups++
					res.Violations = append(res.Violations, fmt.Sprintf(
						"round %d: query %s (qid %d) has contributor %s never in its placement",
						round, name, qid, swName))
				}
			}
		}

		if round == warmup {
			heapAfterWarmup = heapMB()
		}
	}

	// A kill landing on the last rounds may not have crossed the
	// debounce ladder yet: keep ticking until the monitor has drained
	// every still-dead switch, so each injected failure round-trips
	// through auto-drain before the fleet is revived.
	drainDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(drainDeadline) {
		pending := false
		for _, name := range sn.names {
			if sn.sws[name].dead {
				if st, _ := sn.mon.State(name); st != orchestrator.Down {
					pending = true
				}
			}
		}
		if !pending {
			break
		}
		sn.mon.Tick()
		time.Sleep(time.Millisecond)
	}

	// Now revive everything still impaired and let the monitor finish
	// re-admitting it.
	for _, name := range sn.names {
		sw := sn.sws[name]
		if sw.dead {
			if err := sn.restart(sw); err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("final restart %s: %v", name, err))
			}
		}
		if sw.partedTo != 0 {
			sw.inj.Heal()
			sw.partedTo = 0
		}
	}
	if drainedByOp != "" {
		sn.orch.Undrain(drainedByOp)
		needConverge = true
	}
	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		rep := sn.mon.Tick()
		snap := sn.mon.Snapshot()
		allHealthy := true
		for _, sw := range snap.Switches {
			if sw.State != orchestrator.Healthy {
				allHealthy = false
			}
		}
		if allHealthy && rep.ConvergeErr == nil && !needConverge {
			break
		}
		if needConverge && sn.converge() == nil {
			needConverge = false
		}
		time.Sleep(5 * time.Millisecond)
	}

	// End-state: the fleet must be fully reconverged — a pure plan
	// reports no pending deltas.
	if _, d, err := sn.orch.Plan(); err != nil {
		res.Violations = append(res.Violations, fmt.Sprintf("final plan: %v", err))
	} else if !d.Empty() {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"fleet not reconverged after soak: %d pending deltas", len(d.Deltas)))
	}

	// MTTR per kill, from the monitor's event log: each kill record
	// claims the first unclaimed auto-drain (resp. auto-undrain) for its
	// switch at or after the kill (resp. restart) timestamp.
	events := sn.mon.Events()
	usedDrain := map[int]bool{}
	usedReadmit := map[int]bool{}
	for _, k := range sn.kills {
		for i, ev := range events {
			if ev.Switch != k.name || ev.At.Before(k.killedAt) {
				continue
			}
			if ev.Action == "auto-drain" && !usedDrain[i] {
				usedDrain[i] = true
				res.MTTRDrain = append(res.MTTRDrain, ev.At.Sub(k.killedAt))
				break
			}
		}
		if k.restarted.IsZero() {
			continue
		}
		for i, ev := range events {
			if ev.Switch != k.name || ev.At.Before(k.restarted) {
				continue
			}
			if ev.Action == "auto-undrain" && !usedReadmit[i] {
				usedReadmit[i] = true
				res.MTTRReadmit = append(res.MTTRReadmit, ev.At.Sub(k.restarted))
				break
			}
		}
	}

	snap := sn.mon.Snapshot()
	res.AutoDrains = snap.AutoDrains
	res.AutoUndrains = snap.AutoUndrains
	res.ConvergeErrs = snap.ConvergeErrs
	allNs := append([]int64(nil), sn.deployNs...)
	for _, d := range sn.mon.ConvergeDurations() {
		allNs = append(allNs, d.Nanoseconds())
	}
	res.Converges = len(allNs)
	res.P50Deploy = quantileNs(allNs, 0.50)
	res.P99Deploy = quantileNs(allNs, 0.99)
	res.TrackedAgentsFinal = sn.svc.TrackedAgents()

	heapEnd := heapMB()
	if heapAfterWarmup > 0 {
		res.HeapGrowthMB = heapEnd - heapAfterWarmup
	}

	// Soak assertions.
	if res.Kills > 0 && int(res.AutoDrains) < res.Kills {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"only %d auto-drains for %d kills: a dead switch was never drained", res.AutoDrains, res.Kills))
	}
	if res.Kills > 0 && len(res.MTTRDrain) < res.Kills {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"MTTR accounting found %d drains for %d kills", len(res.MTTRDrain), res.Kills))
	}
	if res.Kills > 0 && int(res.AutoUndrains) < res.Kills {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"only %d auto-undrains for %d kills: a recovered switch was never re-admitted", res.AutoUndrains, res.Kills))
	}
	if res.HeapGrowthMB > cfg.MaxHeapGrowthMB {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"heap grew %.1f MB since warmup (threshold %.1f MB)", res.HeapGrowthMB, cfg.MaxHeapGrowthMB))
	}

	sn.close()
	deadline := time.Now().Add(5 * time.Second)
	res.GoroutineEnd = runtime.NumGoroutine()
	for res.GoroutineEnd > res.GoroutineBaseline+cfg.GoroutineSlack && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		res.GoroutineEnd = runtime.NumGoroutine()
	}
	if res.GoroutineEnd > res.GoroutineBaseline+cfg.GoroutineSlack {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"goroutines leaked: baseline %d, after teardown %d (slack %d)",
			res.GoroutineBaseline, res.GoroutineEnd, cfg.GoroutineSlack))
	}
	return res
}

// pickAlive returns a uniformly chosen switch that is up, not operator-
// drained, and not the named exclusion ("" excludes nothing). It keeps
// at least two switches untouched so the fleet always has somewhere to
// re-place queries.
func (sn *soakNet) pickAlive(rng *soakRNG, exclude string) string {
	var cands []string
	impaired := 0
	for _, name := range sn.names {
		sw := sn.sws[name]
		if sw.dead || sw.partedTo != 0 || name == exclude || sn.orch.IsDrained(name) {
			impaired++
			continue
		}
		cands = append(cands, name)
	}
	if len(cands) <= 2 {
		return ""
	}
	return cands[rng.intn(len(cands))]
}

// soakRNG is a tiny seeded splitmix64, so the churn schedule never
// perturbs the shared math/rand state.
type soakRNG struct{ s uint64 }

func newSoakRNG(seed int64) *soakRNG { return &soakRNG{s: uint64(seed)*2654435769 + 1} }

func (r *soakRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *soakRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// String renders the soak verdict and metrics table.
func (r *SoakResult) String() string {
	t := &table{header: []string{"Metric", "Value"}}
	t.add("Seed", fmt.Sprintf("%d", r.Seed))
	t.add("Fleet", fmt.Sprintf("%d switches, %d tenants, %d rounds", r.Switches, r.Tenants, r.Rounds))
	t.add("Kills", i2s(r.Kills))
	t.add("Auto-drains", fmt.Sprintf("%d", r.AutoDrains))
	t.add("Auto-undrains", fmt.Sprintf("%d", r.AutoUndrains))
	t.add("Converges (latency-tracked)", i2s(r.Converges))
	t.add("Converge errors (retried)", fmt.Sprintf("%d", r.ConvergeErrs))
	t.add("Deploy p50", r.P50Deploy.Round(time.Microsecond).String())
	t.add("Deploy p99", r.P99Deploy.Round(time.Microsecond).String())
	for i := range r.MTTRDrain {
		t.add(fmt.Sprintf("MTTR kill %d -> drained", i+1), r.MTTRDrain[i].Round(time.Millisecond).String())
	}
	for i := range r.MTTRReadmit {
		t.add(fmt.Sprintf("MTTR restart %d -> re-admitted", i+1), r.MTTRReadmit[i].Round(time.Millisecond).String())
	}
	t.add("Heap growth since warmup", fmt.Sprintf("%.2f MB", r.HeapGrowthMB))
	t.add("Goroutines (baseline -> end)", fmt.Sprintf("%d -> %d", r.GoroutineBaseline, r.GoroutineEnd))
	t.add("Provenance mixups", i2s(r.ProvenanceMixups))
	t.add("Tracked agents (final)", i2s(r.TrackedAgentsFinal))
	verdict := "PASS"
	if !r.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	t.add("Verdict", verdict)
	s := fmt.Sprintf("Churn soak: self-healing fleet under multi-tenant churn + seeded faults\n%s", t.String())
	for _, v := range r.Violations {
		s += "violation: " + v + "\n"
	}
	return s
}

// Metrics exports the soak numbers for newton-bench -json.
func (r *SoakResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"kills":             float64(r.Kills),
		"auto_drains":       float64(r.AutoDrains),
		"auto_undrains":     float64(r.AutoUndrains),
		"converge_errors":   float64(r.ConvergeErrs),
		"deploy_p50_ms":     float64(r.P50Deploy) / float64(time.Millisecond),
		"deploy_p99_ms":     float64(r.P99Deploy) / float64(time.Millisecond),
		"heap_growth_mb":    r.HeapGrowthMB,
		"goroutine_delta":   float64(r.GoroutineEnd - r.GoroutineBaseline),
		"provenance_mixups": float64(r.ProvenanceMixups),
		"violations":        float64(len(r.Violations)),
	}
	for i, d := range r.MTTRDrain {
		m[fmt.Sprintf("mttr_drain_%d_ms", i+1)] = float64(d) / float64(time.Millisecond)
	}
	for i, d := range r.MTTRReadmit {
		m[fmt.Sprintf("mttr_readmit_%d_ms", i+1)] = float64(d) / float64(time.Millisecond)
	}
	return m
}
