package query

import (
	"time"

	"github.com/newton-net/newton/internal/fields"
)

// Builder assembles queries fluently, mirroring the Spark-style API the
// paper adopts:
//
//	q := query.New("new_tcp").
//		Filter(query.Eq(fields.Proto, packet.ProtoTCP),
//			query.Eq(fields.TCPFlags, packet.FlagSYN)).
//		Map(fields.DstIP).
//		ReduceCount(fields.DstIP).
//		FilterResultGt(40).
//		Build()
type Builder struct {
	q      *Query
	branch *Branch
}

// New starts a query with the default 100 ms window.
func New(name string) *Builder {
	b := &Builder{q: &Query{Name: name, Window: 100 * time.Millisecond}}
	b.q.Branches = []Branch{{}}
	b.branch = &b.q.Branches[0]
	return b
}

// Describe attaches a human-readable intent description.
func (b *Builder) Describe(d string) *Builder {
	b.q.Description = d
	return b
}

// Window overrides the evaluation window.
func (b *Builder) Window(w time.Duration) *Builder {
	b.q.Window = w
	return b
}

// Branch starts a new branch; subsequent primitives append to it.
func (b *Builder) Branch() *Builder {
	b.q.Branches = append(b.q.Branches, Branch{})
	b.branch = &b.q.Branches[len(b.q.Branches)-1]
	return b
}

// Filter appends a filter over the given predicates (ANDed).
func (b *Builder) Filter(preds ...Predicate) *Builder {
	b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindFilter, Preds: preds})
	return b
}

// FilterResultGt appends filter(result > v), the canonical threshold tail.
func (b *Builder) FilterResultGt(v uint64) *Builder {
	return b.Filter(Predicate{Field: Result, Op: CmpGt, Value: v})
}

// Map appends a projection onto the given fields.
func (b *Builder) Map(keys ...fields.ID) *Builder {
	b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindMap, Keys: fields.Keep(keys...)})
	return b
}

// MapMask appends a projection with an explicit mask (prefixes etc.).
func (b *Builder) MapMask(m fields.Mask) *Builder {
	b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindMap, Keys: m})
	return b
}

// Distinct appends a first-occurrence-per-key pass.
func (b *Builder) Distinct(keys ...fields.ID) *Builder {
	b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindDistinct, Keys: fields.Keep(keys...)})
	return b
}

// ReduceCount appends reduce(keys, f=sum(1)).
func (b *Builder) ReduceCount(keys ...fields.ID) *Builder {
	b.branch.Prims = append(b.branch.Prims,
		Primitive{Kind: KindReduce, Keys: fields.Keep(keys...), Value: ValueOne})
	return b
}

// ReduceCountMask appends reduce with an explicit key mask (e.g. count
// per /16 prefix).
func (b *Builder) ReduceCountMask(m fields.Mask) *Builder {
	b.branch.Prims = append(b.branch.Prims,
		Primitive{Kind: KindReduce, Keys: m, Value: ValueOne})
	return b
}

// ReduceSum appends reduce(keys, f=sum(value)).
func (b *Builder) ReduceSum(value fields.ID, keys ...fields.ID) *Builder {
	b.branch.Prims = append(b.branch.Prims,
		Primitive{Kind: KindReduce, Keys: fields.Keep(keys...), Value: value})
	return b
}

// MergeLinear closes a multi-branch query with g = Σ coeff·branch,
// reporting when g crosses threshold under cmp.
func (b *Builder) MergeLinear(coeffs []int64, cmp CmpOp, threshold int64) *Builder {
	b.q.Merge = &Merge{Op: MergeLinear, Coeffs: coeffs, Cmp: cmp, Threshold: threshold}
	return b
}

// MergeMin closes a multi-branch query with g = min(branches) > threshold.
func (b *Builder) MergeMin(threshold int64) *Builder {
	b.q.Merge = &Merge{Op: MergeMin, Cmp: CmpGt, Threshold: threshold}
	return b
}

// Build validates and returns the query; it panics on structural errors
// (queries are built from literals, so an invalid one is a programming
// bug).
func (b *Builder) Build() *Query {
	if err := b.q.Validate(); err != nil {
		panic(err)
	}
	return b.q
}
