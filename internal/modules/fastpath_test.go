package modules

import (
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
)

// TestDispatchCacheInvalidationOnInstallRemove asserts that the
// per-flow dispatch cache never serves a stale classification across
// query install/remove: the classifier's table version gates every
// cache hit.
func TestDispatchCacheInvalidationOnInstallRemove(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	// Prime the cache with no queries installed: the flow memoizes an
	// empty chain set.
	sw.Process(synTo(42))
	if n := sw.PendingReports(); n != 0 {
		t.Fatalf("reports with nothing installed: %d", n)
	}

	// Install mid-stream. The same flow must re-classify and execute
	// the new chain (threshold 0: the first SYN reports).
	if err := eng.Install(buildCountProgram(1, 0, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw.Process(synTo(42))
	if n := sw.PendingReports(); n != 1 {
		t.Fatalf("stale empty classification after install: %d reports, want 1", n)
	}
	sw.DrainReports()

	// Remove mid-stream. The cached chain must not keep executing.
	if err := eng.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	for i := 0; i < 5; i++ {
		sw.Process(synTo(42))
	}
	if n := sw.PendingReports(); n != 0 {
		t.Fatalf("stale chain executed after remove: %d reports", n)
	}
}

// TestProcessZeroAllocsSteadyState is the allocation regression test
// for the per-packet fast path: once a flow's dispatch entry and hash
// memo are recorded, processing a packet must not allocate.
func TestProcessZeroAllocsSteadyState(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	pkt := synTo(42)
	sw.Process(pkt) // warm: records the dispatch entry + hash memo
	if avg := testing.AllocsPerRun(200, func() {
		sw.Process(pkt)
	}); avg != 0 {
		t.Fatalf("steady-state allocs per packet = %v, want 0", avg)
	}
}

// TestHashMemoMatchesRecompute drives two identical flows — one with a
// warm hash memo, one through a cold engine — and asserts the reported
// results agree, i.e. memoized hash replay is bit-identical to
// recomputation.
func TestHashMemoMatchesRecompute(t *testing.T) {
	run := func(warm bool) []dataplane.Report {
		l := compactLayout(t)
		eng := NewEngine(l)
		if err := eng.Install(buildCountProgram(1, 3, 1024)); err != nil {
			t.Fatalf("Install: %v", err)
		}
		sw := dataplane.NewSwitch("s1", 8, StageCapacity())
		sw.AddRoute(0, 0, 1)
		sw.Monitor = eng
		if warm {
			// Visit a boundary-window epoch so packets replay hashes.
			sw.Process(synTo(42))
			l.Pipeline().NextEpoch() // reset counts; memo survives
		}
		for i := 0; i < 10; i++ {
			sw.Process(synTo(42))
		}
		return sw.DrainReports()
	}
	cold := run(false)
	hot := run(true)
	if len(cold) != len(hot) {
		t.Fatalf("memoized run: %d reports, cold run: %d", len(hot), len(cold))
	}
	for i := range cold {
		if cold[i].Keys != hot[i].Keys || cold[i].State != hot[i].State || cold[i].Global != hot[i].Global {
			t.Errorf("report %d differs: cold %+v hot %+v", i, cold[i], hot[i])
		}
	}
}
