package telemetry_test

import (
	"math"
	"net"
	"testing"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/telemetry"
)

// accuracySvc starts an analyzer and connects one exporter per switch
// ID, returning the service and the exporters in order.
func accuracySvc(t *testing.T, switches ...string) (*telemetry.Service, []*telemetry.Exporter) {
	t.Helper()
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.Serve(ln)
	t.Cleanup(func() { svc.Close() })
	exps := make([]*telemetry.Exporter, len(switches))
	for i, id := range switches {
		exp, err := telemetry.Dial(ln.Addr().String(), telemetry.ExporterConfig{SwitchID: id})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { exp.Close() })
		exps[i] = exp
	}
	return svc, exps
}

// TestShardedBoundEqualsUnsharded is the satellite-1 contract: the
// Count-Min error bound of a sharded deployment must be computed over
// the MERGED stream total — the sum across every contributor — so a
// query sharded over three switches reports exactly the bound a single
// switch seeing all traffic would report. (The old code took N from
// whichever contributor merged last, understating the bound by up to
// the shard count.)
func TestShardedBoundEqualsUnsharded(t *testing.T) {
	// One switch sees the whole stream...
	whole, wExp := accuracySvc(t, "s0")
	if err := wExp[0].ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, 100, 200, 300, 400)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "unsharded snapshot merged", func() bool { return whole.Stats().Snapshots == 1 })

	// ...vs three switches splitting the identical stream.
	shard, sExps := accuracySvc(t, "s1", "s2", "s3")
	shard.SetExpected(1, []string{"s1", "s2", "s3"})
	parts := [][]uint32{
		{50, 100, 150, 200},
		{30, 60, 90, 120},
		{20, 40, 60, 80},
	}
	for i, exp := range sExps {
		if err := exp.ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, parts[i]...)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all shard snapshots merged", func() bool { return shard.Stats().Snapshots == 3 })

	wa, ok := whole.ObservedAccuracy(1, 3, 50)
	if !ok {
		t.Fatal("no unsharded accuracy estimate")
	}
	sa, ok := shard.ObservedAccuracy(1, 3, 50)
	if !ok {
		t.Fatal("no sharded accuracy estimate")
	}
	if wa.StreamTotal != 1000 || sa.StreamTotal != wa.StreamTotal {
		t.Fatalf("StreamTotal: unsharded %d, sharded %d, want both 1000", wa.StreamTotal, sa.StreamTotal)
	}
	if sa.AbsErr != wa.AbsErr || sa.Eps != wa.Eps || sa.RelErr != wa.RelErr {
		t.Fatalf("sharded bound (abs=%g eps=%g rel=%g) != unsharded (abs=%g eps=%g rel=%g)",
			sa.AbsErr, sa.Eps, sa.RelErr, wa.AbsErr, wa.Eps, wa.RelErr)
	}
	wantAbs := sketch.CMSAbsError(4, 1000)
	if wa.AbsErr != wantAbs {
		t.Fatalf("AbsErr = %g, want e*1000/4 = %g", wa.AbsErr, wantAbs)
	}
	if want := wantAbs / 50; wa.RelErr != want {
		t.Fatalf("RelErr = %g, want %g", wa.RelErr, want)
	}
	if sa.Partial {
		t.Fatal("fully-contributed sharded epoch must not be partial")
	}
}

// TestObservedAccuracyBloomFPP: a distinct filter's false-positive
// probability is estimated from the merged fill ratios, and prediction
// at double width halves each row's fill.
func TestObservedAccuracyBloomFPP(t *testing.T) {
	svc, exps := accuracySvc(t, "s1")
	banks := []modules.BankSnapshot{
		cmsBank(1, 10, 20, 30, 40),
		{QueryID: 1, Kind: modules.BankBloomRow, Algo: sketch.CRC32IEEE, Range: 1 << 16,
			Row: 1, Width: 4, Values: []uint32{1, 1, 0, 0}},
		{QueryID: 1, Kind: modules.BankBloomRow, Algo: sketch.CRC32IEEE, Range: 1 << 16,
			Row: 2, Width: 4, Values: []uint32{0, 1, 0, 0}},
	}
	if err := exps[0].ExportSnapshot(5, banks); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshot merged", func() bool { return svc.Stats().Snapshots == 1 })

	qa, ok := svc.ObservedAccuracy(1, 5, 0)
	if !ok {
		t.Fatal("no accuracy estimate")
	}
	if want := 0.5 * 0.25; math.Abs(qa.FPP-want) > 1e-12 {
		t.Fatalf("FPP = %g, want %g", qa.FPP, want)
	}
	if qa.BloomRows != 2 {
		t.Fatalf("BloomRows = %d, want 2", qa.BloomRows)
	}
	// Scale defaulted to the stream total.
	if qa.Scale != 100 || qa.StreamTotal != 100 {
		t.Fatalf("Scale/StreamTotal = %d/%d, want 100/100", qa.Scale, qa.StreamTotal)
	}
	// Observed is the worse of CMS relerr and FPP.
	if got := qa.Observed(); got != math.Max(qa.RelErr, qa.FPP) {
		t.Fatalf("Observed = %g, want max(%g, %g)", got, qa.RelErr, qa.FPP)
	}
	// Doubling the width must halve the CMS error and quarter this FPP
	// (each of the two fills halves).
	pred := qa.PredictedAtWidth(8)
	if want := math.Max(qa.RelErr/2, 0.25*0.125); math.Abs(pred-want) > 1e-12 {
		t.Fatalf("PredictedAtWidth(8) = %g, want %g", pred, want)
	}
}

// TestResizeMarksTransitionEpoch is the satellite-3 provenance
// contract: after the controller announces a width resize, the first
// epoch merged at the query's new frontier reads Partial even with
// every contributor present — its banks filled from mid-window restarts
// — and the next epoch is clean again.
func TestResizeMarksTransitionEpoch(t *testing.T) {
	svc, exps := accuracySvc(t, "s1")
	svc.SetExpected(1, []string{"s1"})

	if err := exps[0].ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, 1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-resize snapshot merged", func() bool { return svc.Stats().Snapshots == 1 })

	svc.NoteResize(1)
	if err := exps[0].ExportSnapshot(4, []modules.BankSnapshot{cmsBank(1, 1, 2, 3, 4, 5, 6, 7, 8)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "transition snapshot merged", func() bool { return svc.Stats().Snapshots == 2 })

	partial, missing, merged := svc.EpochStatus(1, 4)
	if !partial || len(missing) != 0 || merged != 1 {
		t.Fatalf("transition epoch: partial=%v missing=%v merged=%d, want partial with no missing", partial, missing, merged)
	}
	qa, ok := svc.ObservedAccuracy(1, 4, 0)
	if !ok || !qa.Transition || !qa.Partial {
		t.Fatalf("ObservedAccuracy(epoch 4) = %+v ok=%v, want Transition+Partial", qa, ok)
	}
	if got := svc.Stats().WidthTransitions; got != 1 {
		t.Fatalf("WidthTransitions = %d, want 1", got)
	}
	// The settled frontier skips the transition epoch.
	if e, ok := svc.LatestSettledEpoch(1); !ok || e != 3 {
		t.Fatalf("LatestSettledEpoch = %d/%v, want 3", e, ok)
	}

	// The next epoch carries only post-resize state: clean again.
	if err := exps[0].ExportSnapshot(5, []modules.BankSnapshot{cmsBank(1, 2, 4, 6, 8, 10, 12, 14, 16)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-resize snapshot merged", func() bool { return svc.Stats().Snapshots == 3 })
	if partial, _, _ := svc.EpochStatus(1, 5); partial {
		t.Fatal("first full post-resize epoch must not be partial")
	}
	if e, ok := svc.LatestSettledEpoch(1); !ok || e != 5 {
		t.Fatalf("LatestSettledEpoch = %d/%v, want 5", e, ok)
	}
}

// TestGeometryConflictReplacesNotMixes: when two bank geometries reach
// the same epoch (a resize racing an epoch roll), the later one
// replaces the resident merge — never a silent skip, never a
// mixed-width sum — and the epoch is flagged as a transition.
func TestGeometryConflictReplacesNotMixes(t *testing.T) {
	svc, exps := accuracySvc(t, "s1", "s2")
	svc.SetExpected(1, []string{"s1", "s2"})

	if err := exps[0].ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, 1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "old-geometry snapshot merged", func() bool { return svc.Stats().Snapshots == 1 })
	if err := exps[1].ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, 10, 20, 30, 40, 50, 60, 70, 80)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new-geometry snapshot merged", func() bool { return svc.Stats().Snapshots == 2 })

	rows := svc.MergedRows(1, 0, 3)
	if len(rows) != 1 {
		t.Fatalf("MergedRows = %d banks, want 1", len(rows))
	}
	m := rows[0]
	if m.Width != 8 || len(m.Values) != 8 {
		t.Fatalf("resident bank width = %d (%d values), want later geometry 8", m.Width, len(m.Values))
	}
	if m.Values[0] != 10 {
		t.Fatalf("Values[0] = %d, want 10 — mixed-width merge detected", m.Values[0])
	}
	if len(m.Switches) != 1 || m.Switches[0] != "s2" {
		t.Fatalf("Switches = %v, want provenance reset to [s2]", m.Switches)
	}
	if !m.Partial || !m.Transition {
		t.Fatalf("conflicted epoch: Partial=%v Transition=%v, want both true", m.Partial, m.Transition)
	}
	st := svc.Stats()
	if st.GeometryConflicts != 1 || st.WidthTransitions != 1 {
		t.Fatalf("GeometryConflicts=%d WidthTransitions=%d, want 1/1", st.GeometryConflicts, st.WidthTransitions)
	}
	if _, ok := svc.LatestSettledEpoch(1); ok {
		t.Fatal("a lone conflicted epoch must not count as settled")
	}
}
