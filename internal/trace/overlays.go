package trace

import (
	"fmt"

	"github.com/newton-net/newton/internal/packet"
)

// SYNFlood floods Victim with Packets SYNs from spoofed sources that
// never complete the handshake. Ground truth for Q6 (and Q1's
// new-connection counts spike on the victim).
type SYNFlood struct {
	Victim  uint32
	Packets int
}

func (a SYNFlood) String() string {
	return fmt.Sprintf("syn-flood(victim=%s, n=%d)", ipStr(a.Victim), a.Packets)
}

func (a SYNFlood) apply(g *generator) {
	g.truth.SYNFloodVictims[a.Victim] = true
	for i := 0; i < a.Packets; i++ {
		src := g.rng.Uint32() // spoofed
		sport := uint16(g.rng.Intn(60000) + 1024)
		g.emit(g.randTS(), src, a.Victim, packet.ProtoTCP, sport, 80, packet.FlagSYN, 0)
	}
}

// UDPFlood floods Victim with UDP from Sources distinct spoofed senders.
// Ground truth for Q5 (distinct sources per destination).
type UDPFlood struct {
	Victim  uint32
	Sources int
}

func (a UDPFlood) String() string {
	return fmt.Sprintf("udp-flood(victim=%s, sources=%d)", ipStr(a.Victim), a.Sources)
}

func (a UDPFlood) apply(g *generator) {
	g.truth.UDPFloodVictims[a.Victim] = true
	for i := 0; i < a.Sources; i++ {
		src := 0xD000_0000 | uint32(i) // unique sources
		for j := 0; j < 2; j++ {
			g.emit(g.randTS(), src, a.Victim, packet.ProtoUDP,
				uint16(g.rng.Intn(60000)+1024), uint16(g.rng.Intn(1000)+1), 0, 512)
		}
	}
}

// PortScan has Scanner probe Ports distinct ports on Victim with SYNs.
// Ground truth for Q4 (distinct destination ports per scanned host).
type PortScan struct {
	Scanner, Victim uint32
	Ports           int
}

func (a PortScan) String() string {
	return fmt.Sprintf("port-scan(victim=%s, ports=%d)", ipStr(a.Victim), a.Ports)
}

func (a PortScan) apply(g *generator) {
	g.truth.ScanVictims[a.Victim] = true
	for p := 0; p < a.Ports; p++ {
		g.emit(g.randTS(), a.Scanner, a.Victim, packet.ProtoTCP,
			uint16(g.rng.Intn(60000)+1024), uint16(p+1), packet.FlagSYN, 0)
	}
}

// SSHBrute hammers Victim:22 with Attempts login attempts, each carrying
// a distinct payload length. Ground truth for Q2 (distinct packet lengths
// to port 22 per destination).
type SSHBrute struct {
	Victim   uint32
	Attempts int
}

func (a SSHBrute) String() string {
	return fmt.Sprintf("ssh-brute(victim=%s, attempts=%d)", ipStr(a.Victim), a.Attempts)
}

func (a SSHBrute) apply(g *generator) {
	g.truth.SSHBruteVictims[a.Victim] = true
	src := 0xD100_0000 | uint32(g.rng.Intn(1<<16))
	for i := 0; i < a.Attempts; i++ {
		// Distinct lengths so distinct(dip, len) counts every attempt.
		g.emit(g.randTS(), src, a.Victim, packet.ProtoTCP,
			uint16(g.rng.Intn(60000)+1024), 22, packet.FlagACK|packet.FlagPSH, 100+i)
	}
}

// Slowloris opens Conns connections to Victim, each trickling a handful
// of tiny segments: many connections, few bytes. Ground truth for Q8.
type Slowloris struct {
	Victim uint32
	Conns  int
}

func (a Slowloris) String() string {
	return fmt.Sprintf("slowloris(victim=%s, conns=%d)", ipStr(a.Victim), a.Conns)
}

func (a Slowloris) apply(g *generator) {
	g.truth.SlowlorisVictims[a.Victim] = true
	for c := 0; c < a.Conns; c++ {
		src := 0xD200_0000 | uint32(c)
		sport := uint16(10000 + c%50000)
		g.tcpFlow(src, a.Victim, sport, 80, 1, 0, true) // 1 tiny data segment
	}
}

// DNSNoTCP sends DNS responses to Hosts clients that never open a TCP
// connection afterwards. Ground truth for Q9.
type DNSNoTCP struct {
	Hosts   int
	Queries int // DNS responses per host
}

func (a DNSNoTCP) String() string {
	return fmt.Sprintf("dns-no-tcp(hosts=%d)", a.Hosts)
}

func (a DNSNoTCP) apply(g *generator) {
	resolver := uint32(0x0808_0808)
	for h := 0; h < a.Hosts; h++ {
		host := 0xD300_0000 | uint32(h)
		g.truth.DNSOnlyHosts[host] = true
		for q := 0; q < a.Queries; q++ {
			g.emit(g.randTS(), resolver, host, packet.ProtoUDP, 53,
				uint16(g.rng.Intn(60000)+1024), 0, 120)
		}
	}
}

// SuperSpreader has Source contact Fanout distinct destinations. Ground
// truth for Q3 (distinct destinations per source).
type SuperSpreader struct {
	Source uint32
	Fanout int
}

func (a SuperSpreader) String() string {
	return fmt.Sprintf("super-spreader(src=%s, fanout=%d)", ipStr(a.Source), a.Fanout)
}

func (a SuperSpreader) apply(g *generator) {
	g.truth.SuperSpreaders[a.Source] = true
	for i := 0; i < a.Fanout; i++ {
		dst := 0xD400_0000 | uint32(i)
		g.emit(g.randTS(), a.Source, dst, packet.ProtoTCP,
			uint16(g.rng.Intn(60000)+1024), 443, packet.FlagSYN, 0)
	}
}

func ipStr(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, ip>>16&0xFF, ip>>8&0xFF, ip&0xFF)
}
