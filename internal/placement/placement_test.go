package placement

import (
	"testing"

	"github.com/newton-net/newton/internal/topology"
)

func TestPlaceLinearSingleSwitchQuery(t *testing.T) {
	topo, _, _ := Linear3(t)
	p, m, err := Place(topo, topo.EdgeSwitches()[:1], 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("partitions = %d, want 1", m)
	}
	// Single-partition queries go on every switch reachable at depth 1 =
	// the edge switch itself.
	if len(p[topo.EdgeSwitches()[0]]) != 1 {
		t.Error("edge switch not assigned")
	}
}

func Linear3(t *testing.T) (*topology.Topology, int, int) {
	t.Helper()
	topo, h1, h2 := topology.Linear(3)
	return topo, h1, h2
}

func TestPlaceLinearPartitioned(t *testing.T) {
	topo, _, _ := Linear3(t)
	edges := topo.EdgeSwitches()
	// 10-stage query on 5-stage switches → 2 partitions.
	p, m, err := Place(topo, edges[:1], 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("m = %d", m)
	}
	s1, s2 := edges[0], edges[1]
	if !contains(p[s1], 0) {
		t.Error("partition 0 missing from first hop")
	}
	if !contains(p[s2], 1) {
		t.Error("partition 1 missing from second hop")
	}
}

func TestPlaceCoversAllPaths(t *testing.T) {
	// The invariant of Algorithm 2 (DESIGN invariant 4): for ANY simple
	// path out of a monitored edge switch, partitions appear in order.
	topo := topology.FatTree(4)
	edges := topo.EdgeSwitches()
	p, m, err := Place(topo, edges[:2], 10, 5) // 2 partitions
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	for _, dst := range hosts {
		for seed := uint64(0); seed < 8; seed++ {
			full := topo.Path(hosts[0], dst, seed)
			if full == nil || len(full) < 3 {
				continue
			}
			sw := topo.SwitchPath(full)
			if sw[0] != edges[0] && sw[0] != edges[1] {
				continue // not monitored traffic
			}
			if got := p.CoversPath(sw, m); got != m && len(sw) >= m {
				t.Fatalf("path %v completes only %d/%d partitions", sw, got, m)
			}
		}
	}
}

func TestPlaceSurvivesRerouting(t *testing.T) {
	topo := topology.FatTree(4)
	edges := topo.EdgeSwitches()
	p, m, err := Place(topo, edges, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	orig := topo.SwitchPath(topo.Path(src, dst, 3))
	if p.CoversPath(orig, m) != m {
		t.Fatal("original path not covered")
	}
	// Fail a link on the original path; the rerouted path must still be
	// covered without recomputing the placement.
	topo.SetLink(orig[0], orig[1], false)
	re := topo.SwitchPath(topo.Path(src, dst, 3))
	if re == nil {
		t.Fatal("no reroute available")
	}
	if p.CoversPath(re, m) != m {
		t.Fatalf("rerouted path %v not covered — placement not resilient", re)
	}
}

func TestPlaceMultiplexesRules(t *testing.T) {
	// Each switch holds each partition at most once no matter how many
	// edge switches' DFS trees reach it.
	topo := topology.FatTree(4)
	p, _, err := Place(topo, topo.EdgeSwitches(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s, parts := range p {
		seen := map[int]bool{}
		for _, d := range parts {
			if seen[d] {
				t.Fatalf("switch %d hosts partition %d twice", s, d)
			}
			seen[d] = true
		}
	}
}

func TestEntries(t *testing.T) {
	topo, _, _ := Linear3(t)
	p, m, err := Place(topo, topo.EdgeSwitches()[:1], 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatal("expected 2 partitions")
	}
	total, avg := p.Entries([]int{10, 9})
	if total <= 0 || avg <= 0 {
		t.Fatalf("entries = %d avg %.1f", total, avg)
	}
	// With 3 chained switches and the DFS from s1: s1 has part0, s2 has
	// part1 (depth2), s3 nothing within m=2... depth(s3)=3 > m.
	if total != 19 {
		t.Errorf("total entries = %d, want 19 (10 + 9)", total)
	}
	empty := Placement{}
	if tot, a := empty.Entries(nil); tot != 0 || a != 0 {
		t.Error("empty placement entries nonzero")
	}
}

func TestPlaceErrors(t *testing.T) {
	topo, h1, _ := Linear3(t)
	if _, _, err := Place(topo, []int{h1}, 4, 4); err == nil {
		t.Error("host as edge switch accepted")
	}
	if _, _, err := Place(topo, nil, 0, 4); err == nil {
		t.Error("zero stages accepted")
	}
	if _, _, err := Place(topo, nil, 4, 0); err == nil {
		t.Error("zero stages-per-switch accepted")
	}
}

func TestAverageEntriesStabilizeWithScale(t *testing.T) {
	// Fig. 17b's key claim: total entries grow linearly with the
	// topology while per-switch average stabilizes.
	var avgs []float64
	for _, k := range []int{4, 8, 12} {
		topo := topology.FatTree(k)
		p, m, err := Place(topo, topo.EdgeSwitches(), 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		rules := make([]int, m)
		for i := range rules {
			rules[i] = 10
		}
		_, avg := p.Entries(rules)
		avgs = append(avgs, avg)
	}
	if avgs[2] > avgs[0]*1.5 {
		t.Errorf("per-switch average grows with scale: %v", avgs)
	}
}

// TestPlaceCoversRandomTopologies is the resilience property with no
// helpful structure: on random connected graphs, for every monitored
// edge switch and every shortest path of length >= M out of it, the
// partitions appear in order — whatever the graph looks like.
func TestPlaceCoversRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		topo := topology.Random(12, 10, seed)
		edges := topo.EdgeSwitches()[:3]
		p, m, err := Place(topo, edges, 8, 4) // 2 partitions
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range edges {
			for _, dst := range topo.Switches() {
				for fs := uint64(0); fs < 4; fs++ {
					path := topo.Path(src, dst, fs)
					if len(path) < m {
						continue
					}
					if got := p.CoversPath(path, m); got != m {
						t.Fatalf("seed %d: path %v covers %d/%d partitions", seed, path, got, m)
					}
				}
			}
		}
	}
}

// TestPlaceRandomFailures fails random links and checks any remaining
// shortest path is still covered without recomputation.
func TestPlaceRandomFailures(t *testing.T) {
	topo := topology.Random(16, 14, 3)
	edges := topo.EdgeSwitches()[:4]
	p, m, err := Place(topo, edges, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Fail three ring links.
	topo.SetLink(0, 1, false)
	topo.SetLink(5, 6, false)
	topo.SetLink(9, 10, false)
	for _, src := range edges {
		for _, dst := range topo.Switches() {
			path := topo.Path(src, dst, 7)
			if path == nil || len(path) < m {
				continue
			}
			if got := p.CoversPath(path, m); got != m {
				t.Fatalf("rerouted path %v covers %d/%d", path, got, m)
			}
		}
	}
}
