package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/classify"
	"github.com/newton-net/newton/internal/dataplane"
)

// classifierProbeAction is the no-op action behind the synthetic rules.
type classifierProbeAction struct{}

func (classifierProbeAction) ActionName() string { return "classifier-probe" }

// ClassifierRow is one (rule count, workers) point: the per-lookup cost
// of the compiled classifier against the seed's linear ternary scan.
type ClassifierRow struct {
	Rules      int
	Workers    int
	CompiledNs float64
	ScanNs     float64
	Speedup    float64
}

// ClassifierResult is the rules-vs-ns/lookup surface of the table hot
// path, plus the compiled structure's size at the largest rule count.
type ClassifierResult struct {
	Rows  []ClassifierRow
	Stats classify.Stats // at the largest rule count
}

func (r *ClassifierResult) String() string {
	t := &table{header: []string{"rules", "workers", "compiled ns", "scan ns", "speedup"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.Rules), fmt.Sprint(row.Workers),
			fmt.Sprintf("%.1f", row.CompiledNs), fmt.Sprintf("%.1f", row.ScanNs),
			fmt.Sprintf("%.1fx", row.Speedup))
	}
	return t.String() + fmt.Sprintf("(largest compile: %d dims, %d leaves, %d cells, %d bytes)\n",
		r.Stats.Dims, r.Stats.Leaves, r.Stats.Cells, r.Stats.Bytes)
}

// Metrics exposes the surface for machine-readable output (-json).
func (r *ClassifierResult) Metrics() map[string]float64 {
	m := map[string]float64{"compiled_bytes": float64(r.Stats.Bytes)}
	for _, row := range r.Rows {
		k := fmt.Sprintf("r%d_w%d", row.Rules, row.Workers)
		m["compiled_ns_"+k] = row.CompiledNs
		m["scan_ns_"+k] = row.ScanNs
		m["speedup_"+k] = row.Speedup
	}
	return m
}

// classifierTable builds the newton_init-shaped measurement table: n
// distinct dst /24 prefix rules with exact proto, wildcard elsewhere.
func classifierTable(n int, cfg classify.Config) *dataplane.Table {
	tb := dataplane.NewTable("clsbench", dataplane.MatchTernary, 6, n*2)
	tb.SetClassifierConfig(cfg)
	vals := make([]uint64, 6)
	masks := []uint64{0, 0xFFFFFF00, 0xFF, 0, 0, 0}
	for i := 0; i < n; i++ {
		vals[1] = 0x0A000000 | uint64(i)<<8
		vals[2] = 6
		if _, err := tb.AddRule(vals, masks, i%4, classifierProbeAction{}); err != nil {
			panic(err)
		}
	}
	return tb
}

// classifierPoint times lookups against tb from `workers` concurrent
// goroutines (each its own key stream, as engine lanes have) and
// returns the mean ns per lookup.
func classifierPoint(tb *dataplane.Table, rules, workers, lookups int) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]*dataplane.Rule, 0, 8)
			key := []uint64{0, 0, 6, 1234, 80, 0x10}
			for i := 0; i < lookups; i++ {
				// Cheap LCG over the rule space; every other probe misses.
				seed = seed*1664525 + 1013904223
				r := seed & (1<<30 - 1) % (rules * 2)
				key[1] = 0x0A000000 | uint64(r)<<8 | 0x42
				buf = tb.LookupAllAppend(buf[:0], key)
			}
		}(w*7 + 1)
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(workers*lookups)
}

// ClassifierScaling measures the compiled classifier against the linear
// ternary scan across rule counts and worker counts — the PR's
// rules-vs-ns/lookup acceptance surface. Scan lookups are capped so the
// 32k-rule scan point finishes in reasonable time.
func ClassifierScaling(ruleCounts, workers []int, lookups int) *ClassifierResult {
	if len(ruleCounts) == 0 {
		ruleCounts = []int{16, 256, 4096, 32768}
	}
	if len(workers) == 0 {
		workers = []int{1, 4}
	}
	if lookups == 0 {
		lookups = 200000
	}
	res := &ClassifierResult{}
	for _, n := range ruleCounts {
		compiled := classifierTable(n, classify.DefaultConfig())
		scan := classifierTable(n, classify.Config{MinRules: 1 << 30})
		compiled.Lookup(0, 0x0A000000, 6, 0, 0, 0) // compile + warm
		if info := compiled.ClassifierInfo(); info.Compiled {
			res.Stats = info.Stats
		}
		scanLookups := lookups / 10
		if scanLookups*n > 1<<26 { // bound total scan work
			scanLookups = 1 << 26 / n
		}
		for _, w := range workers {
			row := ClassifierRow{Rules: n, Workers: w}
			row.CompiledNs = classifierPoint(compiled, n, w, lookups)
			row.ScanNs = classifierPoint(scan, n, w, scanLookups)
			if row.CompiledNs > 0 {
				row.Speedup = row.ScanNs / row.CompiledNs
			}
			res.Rows = append(res.Rows, row)
		}
		runtime.GC()
	}
	return res
}
