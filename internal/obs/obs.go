// Package obs is the repository's observability core: a dependency-free
// metrics layer (standard library only) shared by the agent, analyzer,
// and controller processes.
//
// The design splits instruments from exposition:
//
//   - Counter, Gauge, and Histogram are standalone lock-free instruments
//     whose write paths never allocate — safe on the per-packet fast
//     path, where a single heap allocation would show up in the
//     AllocsPerRun gate.
//   - Registry names instruments into labeled families, supports
//     callback-backed series (CounterFunc/GaugeFunc) so subsystems with
//     existing internal accounting expose it without double bookkeeping,
//     and renders Prometheus text or a JSON snapshot.
//   - Serve mounts /metrics, /metrics.json, /debug/vars, and
//     net/http/pprof on one address — the -obs-addr flag of every
//     daemon.
//
// Naming and cardinality rules are documented in DESIGN.md §10.
package obs

import (
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use and never
// allocate.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a signed instantaneous value. The zero value is ready to
// use; all methods are safe for concurrent use and never allocate.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over uint64 observations
// (typically nanoseconds). Buckets are cumulative-at-exposition upper
// bounds, Prometheus style, with an implicit +Inf bucket. Observe is
// lock-free and never allocates, so histograms may sit on the packet
// path (sampled — see DESIGN.md §10).
type Histogram struct {
	bounds []uint64 // sorted upper bounds (inclusive)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds.
// An empty bounds slice yields a histogram with only the +Inf bucket
// (count and sum still track).
func NewHistogram(bounds []uint64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start: start, start*factor, start*factor², ...
func ExpBuckets(start uint64, factor float64, n int) []uint64 {
	bounds := make([]uint64, n)
	v := float64(start)
	for i := range bounds {
		bounds[i] = uint64(v)
		v *= factor
	}
	return bounds
}

// DefLatencyBuckets covers 250ns..~4s in powers of four — wide enough
// for both per-packet execution (hundreds of ns) and RPC round trips
// (µs to seconds) without per-subsystem tuning.
func DefLatencyBuckets() []uint64 { return ExpBuckets(250, 4, 12) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	// Linear scan: bucket counts are small (≤ ~16) and the branch
	// predictor does well on the monotone bounds; binary search wins
	// nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns the per-bucket counts (len(bounds)+1, last is +Inf),
// the total observation count, and the sum of observed values.
func (h *Histogram) Snapshot() (counts []uint64, count, sum uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.sum.Load()
}

// Bounds returns the histogram's upper bounds (not including +Inf).
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }
