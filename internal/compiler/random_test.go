package compiler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/trace"
)

// randomQuery synthesizes a valid single-branch query: optional front
// filter, optional projection, optional distinct, a count-reduce over a
// single entity field, and a threshold tail. This is the grammar the
// data plane fully supports, so the compiled form must match the
// reference engine exactly (given ample sketch memory).
func randomQuery(rng *rand.Rand, name string) *query.Query {
	b := query.New(name)

	entity := fields.DstIP
	if rng.Intn(2) == 0 {
		entity = fields.SrcIP
	}

	switch rng.Intn(4) {
	case 0:
		b.Filter(query.Eq(fields.Proto, packet.ProtoTCP))
	case 1:
		b.Filter(query.Eq(fields.Proto, packet.ProtoTCP),
			query.Eq(fields.TCPFlags, packet.FlagSYN))
	case 2:
		b.Filter(query.Eq(fields.Proto, packet.ProtoUDP))
	case 3: // no front filter
	}

	var distinctKeys []fields.ID
	switch rng.Intn(3) {
	case 0:
		distinctKeys = []fields.ID{entity, fields.SrcPort}
	case 1:
		distinctKeys = []fields.ID{entity, opposite(entity)}
	case 2: // no distinct
	}
	if distinctKeys != nil {
		b.Map(distinctKeys...)
		b.Distinct(distinctKeys...)
	}

	if rng.Intn(2) == 0 {
		b.Map(entity)
	}
	b.ReduceCount(entity)
	b.FilterResultGt(uint64(10 + rng.Intn(40)))
	return b.Build()
}

func opposite(f fields.ID) fields.ID {
	if f == fields.DstIP {
		return fields.SrcIP
	}
	return fields.DstIP
}

// randomOptions picks a random optimization combination and sketch
// geometry — semantics must be invariant under all of them (DESIGN
// invariant 2).
func randomOptions(rng *rand.Rand) Options {
	return Options{
		QID:            1,
		Opt1:           rng.Intn(2) == 0,
		Opt2:           rng.Intn(2) == 0,
		Opt3:           rng.Intn(2) == 0,
		ReduceRows:     1 + rng.Intn(3),
		DistinctHashes: 1 + rng.Intn(3),
		Width:          1 << 15, // ample memory: sketches behave exactly
	}
}

// TestRandomQueriesMatchReference is the repository's strongest semantic
// property: for random queries, random optimization combinations, and
// random traffic, the data plane flags exactly the keys the exact
// reference engine flags.
func TestRandomQueriesMatchReference(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		q := randomQuery(rng, fmt.Sprintf("rand_%d", trial))
		o := randomOptions(rng)

		tr := trace.Generate(
			trace.Config{Seed: int64(trial), Flows: 250, Duration: 200 * time.Millisecond},
			trace.SYNFlood{Victim: 0x0A0000AA, Packets: 250},
			trace.UDPFlood{Victim: 0x0A0000AB, Sources: 80},
			trace.SuperSpreader{Source: 0x0B000002, Fanout: 90},
		)

		got, _ := runDataplaneN(t, q, o, tr, 48, 1<<16)
		want := refFlagged(q, tr)
		for k := range want {
			if !got[k] {
				t.Errorf("trial %d (%s, opts %+v): data plane missed key %d",
					trial, q, o, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("trial %d (%s, opts %+v): data plane falsely flagged key %d",
					trial, q, o, k)
			}
		}
	}
}

// TestRandomQueriesStageBudget pins a coarse resource property: any
// query from the supported grammar compiles, fully optimized, into a
// bounded number of stages.
func TestRandomQueriesStageBudget(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		q := randomQuery(rng, fmt.Sprintf("rand_%d", trial))
		p, err := Compile(q, AllOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := p.NumStages(); got > 12 {
			t.Errorf("trial %d: %d stages for %s", trial, got, q)
		}
		base, err := Compile(q, Baseline())
		if err != nil {
			t.Fatal(err)
		}
		if p.NumStages() >= base.NumStages() {
			t.Errorf("trial %d: optimization did not reduce stages (%d vs %d)",
				trial, p.NumStages(), base.NumStages())
		}
	}
}
