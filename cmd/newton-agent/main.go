// newton-agent runs one simulated Newton switch as a standalone process:
// it loads the module layout, replays packets from a pcap through the
// pipeline, and serves the control channel so a remote controller can
// install, remove, and drain queries over TCP.
//
// With -analyzer, the agent additionally opens a streaming telemetry
// connection and pushes mirrored reports (batched, through a bounded
// ring with the chosen overflow policy) and epoch-boundary state-bank
// snapshots to a newton-analyzer process, instead of waiting to be
// polled.
//
// Usage:
//
//	newton-agent -listen 127.0.0.1:9441 -pcap trace.pcap -loop 3
//	newton-agent -listen 127.0.0.1:9441 -analyzer 127.0.0.1:9500 -pcap trace.pcap
//
// Then, from another process, dial 127.0.0.1:9441 with internal/rpc (or
// drive it from tests) to deploy queries while traffic flows.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/trace"
	"github.com/newton-net/newton/internal/version"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9441", "control-channel listen address")
		name      = flag.String("name", "sw1", "switch identifier in reports")
		stages    = flag.Int("stages", 16, "module pipeline stages")
		arraySize = flag.Uint("registers", 1<<15, "registers per state bank")
		pcapPath  = flag.String("pcap", "", "pcap to replay through the pipeline ('' = control plane only)")
		loop      = flag.Int("loop", 1, "times to replay the pcap")
		window    = flag.Duration("window", 100*time.Millisecond, "evaluation window (register epoch)")
		gap       = flag.Duration("gap", 0, "real-time pause between replay loops")
		workers   = flag.Int("workers", 1, "replay worker lanes; packets shard by symmetric flow hash (0 = GOMAXPROCS)")

		analyzer  = flag.String("analyzer", "", "analyzer telemetry address ('' = poll-only draining)")
		policy    = flag.String("export-policy", "block", "export overflow policy: block | drop-oldest")
		ringSize  = flag.Int("export-ring", 4096, "export ring capacity in reports")
		batchSize = flag.Int("export-batch", 256, "max reports per telemetry frame")

		obsAddr  = flag.String("obs-addr", "", "observability HTTP address for /metrics, /debug/vars, pprof ('' = disabled)")
		showVers = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVers {
		fmt.Println(version.String("newton-agent"))
		return
	}

	W := *workers
	if W <= 0 {
		W = runtime.GOMAXPROCS(0)
	}
	if W < 1 {
		W = 1
	}

	layout, err := modules.NewLayout(modules.LayoutCompact, *stages, uint32(*arraySize))
	if err != nil {
		log.Fatalf("newton-agent: %v", err)
	}
	eng := modules.NewEngine(layout)
	eng.SetWorkers(W)
	sw := dataplane.NewSwitch(*name, *stages, modules.StageCapacity())
	sw.SetLanes(W)
	if err := sw.AddRoute(0, 0, 1); err != nil {
		log.Fatal(err)
	}
	sw.Monitor = eng

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("newton-agent: %v", err)
	}
	fmt.Fprintf(os.Stderr, "newton-agent: %s serving control channel on %s\n", *name, ln.Addr())
	agent := rpc.NewAgent(sw, eng)
	agent.OnError = func(err error) {
		fmt.Fprintf(os.Stderr, "newton-agent: control channel: %v\n", err)
	}

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		version.RegisterObs(reg, "newton-agent")
		modules.AttachObs(eng, reg, *name)
		agent.RegisterObs(reg, *name)
		srv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatalf("newton-agent: obs: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "newton-agent: observability on http://%s/metrics\n", srv.Addr())
	}

	var exp *telemetry.Exporter
	if *analyzer != "" {
		pol := telemetry.PolicyBlock
		switch *policy {
		case "block":
		case "drop-oldest":
			pol = telemetry.PolicyDropOldest
		default:
			log.Fatalf("newton-agent: unknown -export-policy %q", *policy)
		}
		// DialAttached wires the control agent's epoch hooks in one step
		// (and unwires them if the dial fails); the exporter then
		// auto-reconnects after analyzer outages, replaying its latest
		// epoch snapshot, so the agent never needs a restart.
		exp, err = telemetry.DialAttached(*analyzer, telemetry.ExporterConfig{
			SwitchID:  *name,
			RingSize:  *ringSize,
			BatchSize: *batchSize,
			Policy:    pol,
		}, agent, eng)
		if err != nil {
			log.Fatalf("newton-agent: %v", err)
		}
		defer exp.Close()
		if reg != nil {
			exp.RegisterObs(reg)
		}
		fmt.Fprintf(os.Stderr, "newton-agent: streaming telemetry to %s (policy=%s, auto-reconnect)\n", *analyzer, pol)
	}

	go func() {
		if err := agent.Serve(ln); err != nil {
			log.Fatalf("newton-agent: %v", err)
		}
	}()

	// push drains the switch's mirrored reports into the telemetry
	// stream (no-op when no analyzer is attached: the controller polls).
	push := func() {
		if exp != nil {
			exp.Export(sw.DrainReports())
		}
	}
	// roll exports the ending epoch's state banks, then rolls the window.
	// RollEpoch merges worker-private bank shards before the roll (the
	// snapshot inside ExportEpoch already merged; the second merge is an
	// idempotent no-op).
	roll := func() {
		if exp != nil {
			if err := exp.ExportEpoch(eng); err != nil {
				fmt.Fprintf(os.Stderr, "newton-agent: %v\n", err)
			}
		}
		eng.RollEpoch()
	}

	if *pcapPath == "" {
		select {} // control plane only; serve until killed
	}

	f, err := os.Open(*pcapPath)
	if err != nil {
		log.Fatalf("newton-agent: %v", err)
	}
	pkts, skipped, err := trace.ReadPcap(f)
	f.Close()
	if err != nil {
		log.Fatalf("newton-agent: reading pcap: %v", err)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "newton-agent: skipped %d undecodable packets\n", skipped)
	}

	// Replay lanes: each worker owns a context, a report sink, and a shard
	// buffer, all reused across windows. Packets shard by symmetric flow
	// hash so both directions of a flow replay in order on one lane; lanes
	// join at every window boundary before the epoch rolls.
	type replayLane struct {
		ctx   *dataplane.Context
		sink  []dataplane.Report
		shard []*packet.Packet
	}
	lanes := make([]*replayLane, W)
	for w := range lanes {
		ln := &replayLane{}
		ln.ctx = dataplane.NewBatchContext(&ln.sink, w)
		lanes[w] = ln
	}
	var wg sync.WaitGroup
	processWindow := func(seg []*packet.Packet) {
		if W == 1 {
			for _, pkt := range seg {
				sw.Process(pkt)
			}
			return
		}
		for _, ln := range lanes {
			ln.shard = ln.shard[:0]
		}
		for _, pkt := range seg {
			w := int(pkt.Flow().LaneHash() % uint64(W))
			lanes[w].shard = append(lanes[w].shard, pkt)
		}
		wg.Add(W)
		for w := 0; w < W; w++ {
			go func(ln *replayLane) {
				defer wg.Done()
				for _, pkt := range ln.shard {
					sw.ProcessCtx(pkt, ln.ctx)
				}
			}(lanes[w])
		}
		wg.Wait()
		for _, ln := range lanes {
			if len(ln.sink) != 0 {
				sw.AddReports(ln.sink)
				ln.sink = ln.sink[:0]
			}
		}
	}

	for l := 0; l < *loop; l++ {
		nextEpoch := uint64(*window)
		start := 0
		for start < len(pkts) {
			end := start
			for end < len(pkts) && pkts[end].TS < nextEpoch {
				end++
			}
			if end > start {
				processWindow(pkts[start:end])
				start = end
			}
			if start < len(pkts) {
				// The next packet crosses the boundary: flush mirrors,
				// merge shards, roll the window, then resume.
				push()
				roll()
				nextEpoch += uint64(*window)
			}
		}
		push()
		roll()
		c := sw.Counters()
		fmt.Fprintf(os.Stderr, "newton-agent: loop %d/%d done (rx=%d tx=%d dropped=%d, %d reports pending)\n",
			l+1, *loop, c.Rx, c.Tx, c.Dropped, sw.PendingReports())
		if *gap > 0 {
			time.Sleep(*gap)
		}
	}
	if exp != nil {
		if err := exp.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "newton-agent: flush: %v\n", err)
		}
		st := exp.Stats()
		fmt.Fprintf(os.Stderr,
			"newton-agent: telemetry: %d/%d reports exported in %d batches, %d dropped, %d snapshots, %d reconnects\n",
			st.Exported, st.Enqueued, st.Batches, st.Dropped, st.Snapshots, st.Reconnects)
	}
	// Keep serving so the controller can drain the final reports.
	fmt.Fprintln(os.Stderr, "newton-agent: replay complete; control channel stays up (ctrl-c to exit)")
	select {}
}
