// Package placement implements Newton's resilient module rule placement
// (Algorithm 2, §5.2): queries are placed along *all possible paths*
// without consulting forwarding rules, so any rerouting event still
// traverses the query's partitions in order. The DFS assigns partition d
// to every switch reachable at depth d from any monitored edge switch;
// rule multiplexing (a switch holds each partition at most once) bounds
// the redundancy.
package placement

import (
	"fmt"
	"sort"

	"github.com/newton-net/newton/internal/topology"
)

// Placement maps each switch to the (sorted, deduplicated) partition
// indices it must host.
type Placement map[int][]int

// Place runs Algorithm 2: slice a query of `totalStages` stages into
// M = ceil(totalStages / stagesPerSwitch) partitions and place partition
// d on every switch at DFS depth d from the monitored traffic's edge
// switches.
//
// The traversal memoizes (switch, depth) pairs: a switch reached at a
// depth it was already expanded at is not re-expanded, which bounds the
// walk to O((V+E)·M) instead of enumerating every simple path — the
// original formulation (a DFS that unmarked `discovered` on unwind) was
// exponential on meshy fat-tree topologies. Memoization assigns
// partition d to every switch reachable by a *walk* of depth d, a
// superset of the simple-path assignment that coincides with it on the
// evaluation's topologies (see the package tests) and can only add
// redundancy elsewhere: every simple path is a walk, so nothing the
// original algorithm placed is lost, the per-switch partition
// multiplexing bound is unchanged, and CoversPath over any rerouted
// path can only improve.
func Place(topo *topology.Topology, edgeSwitches []int, totalStages, stagesPerSwitch int) (Placement, int, error) {
	if stagesPerSwitch <= 0 {
		return nil, 0, fmt.Errorf("placement: non-positive stages per switch")
	}
	if totalStages <= 0 {
		return nil, 0, fmt.Errorf("placement: non-positive query stages")
	}
	m := (totalStages + stagesPerSwitch - 1) / stagesPerSwitch
	p := Placement{}
	type visit struct{ s, d int }
	expanded := map[visit]bool{}

	var dfs func(s, d int)
	dfs = func(s, d int) {
		if d > m || expanded[visit{s, d}] {
			return
		}
		expanded[visit{s, d}] = true
		part := d - 1
		if !contains(p[s], part) {
			p[s] = append(p[s], part)
		}
		for _, n := range topo.SwitchNeighbors(s) {
			dfs(n, d+1)
		}
	}
	for _, s := range edgeSwitches {
		if topo.Node(s).Kind == topology.Host {
			return nil, 0, fmt.Errorf("placement: %s is a host, not an edge switch", topo.Node(s).Name)
		}
		dfs(s, 1)
	}
	for s := range p {
		sort.Ints(p[s])
	}
	return p, m, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Entries computes the total and per-switch-average table entries a
// placement installs, given the rule count of each partition — the two
// curves of Fig. 17.
func (p Placement) Entries(partitionRules []int) (total int, avg float64) {
	if len(p) == 0 {
		return 0, 0
	}
	for _, parts := range p {
		for _, d := range parts {
			if d < len(partitionRules) {
				total += partitionRules[d]
			}
		}
	}
	return total, float64(total) / float64(len(p))
}

// Switches returns the switches that host at least one partition.
func (p Placement) Switches() []int {
	var out []int
	for s := range p {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CoversPath reports whether a switch path would traverse the query's M
// partitions in order 0..M-1 (each partition found at or after the
// previous one's position) — the correctness condition resilient
// placement guarantees for any possible path. Paths shorter than M
// cannot complete the query on the data plane; §5.2 defers the remainder
// to the software analyzer, which CoversPath reflects via the returned
// completed count.
func (p Placement) CoversPath(path []int, m int) (completed int) {
	need := 0
	for _, s := range path {
		if need < m && contains(p[s], need) {
			need++
		}
	}
	return need
}
