package telemetry

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
)

func mkReports(base, n int) []dataplane.Report {
	rs := make([]dataplane.Report, n)
	for i := range rs {
		rs[i] = dataplane.Report{QueryID: 1, TS: uint64(base + i)}
	}
	return rs
}

func TestRingBlockPolicyBackpressures(t *testing.T) {
	r := newRing(4, PolicyBlock)
	if got := r.put(mkReports(0, 4)); got != 4 {
		t.Fatalf("put = %d, want 4", got)
	}

	// The fifth put must block until the consumer drains.
	unblocked := make(chan int)
	go func() { unblocked <- r.put(mkReports(4, 1)) }()
	select {
	case <-unblocked:
		t.Fatal("put returned on a full block-policy ring")
	case <-time.After(50 * time.Millisecond):
	}

	got := r.drainUpTo(2, nil)
	if len(got) != 2 || got[0].TS != 0 || got[1].TS != 1 {
		t.Fatalf("drained %v, want TS 0,1", got)
	}
	select {
	case n := <-unblocked:
		if n != 1 {
			t.Fatalf("blocked put accepted %d, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("put stayed blocked after drain")
	}

	dropped, overflows := r.stats()
	if dropped != 0 {
		t.Errorf("dropped = %d under block policy", dropped)
	}
	if overflows == 0 {
		t.Error("the full-ring event went uncounted")
	}
	// FIFO order held across the wrap: 2,3 then the late 4.
	rest := r.drainUpTo(10, nil)
	if len(rest) != 3 || rest[0].TS != 2 || rest[2].TS != 4 {
		t.Errorf("tail = %v, want TS 2,3,4", rest)
	}
}

func TestRingDropOldestEvictsAndCounts(t *testing.T) {
	r := newRing(4, PolicyDropOldest)
	if got := r.put(mkReports(0, 10)); got != 10 {
		t.Fatalf("put = %d, want 10 (drop-oldest always admits)", got)
	}
	dropped, overflows := r.stats()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// One full-ring EVENT, not one per evicted report: the six evictions
	// happen back-to-back with no intervening drain, so they are a single
	// burst (pre-fix code counted 6 here).
	if overflows != 1 {
		t.Errorf("overflows = %d, want 1 (one burst)", overflows)
	}
	// The freshest four survive.
	got := r.drainUpTo(10, nil)
	if len(got) != 4 || got[0].TS != 6 || got[3].TS != 9 {
		t.Errorf("survivors = %v, want TS 6..9", got)
	}
}

func TestRingOverflowCountsOnePerBurst(t *testing.T) {
	r := newRing(4, PolicyDropOldest)

	// Burst 1: fill then overrun by 3 in two separate puts — still one
	// burst because no drain freed space in between.
	r.put(mkReports(0, 6))
	r.put(mkReports(6, 1))
	if dropped, overflows := r.stats(); dropped != 3 || overflows != 1 {
		t.Fatalf("after burst 1: dropped=%d overflows=%d, want 3/1", dropped, overflows)
	}

	// A drain frees space and closes the burst.
	r.drainUpTo(2, nil)

	// Burst 2: refill and overrun again — a new full-ring event.
	r.put(mkReports(7, 4))
	if dropped, overflows := r.stats(); dropped != 5 || overflows != 2 {
		t.Fatalf("after burst 2: dropped=%d overflows=%d, want 5/2", dropped, overflows)
	}

	// A drain that empties the ring followed by a non-overflowing put
	// counts nothing.
	r.drainUpTo(10, nil)
	r.put(mkReports(20, 2))
	if _, overflows := r.stats(); overflows != 2 {
		t.Fatalf("non-overflowing put counted a burst: overflows=%d, want 2", overflows)
	}
}

func TestRingCloseWakesBlockedProducerAndDrainsTail(t *testing.T) {
	r := newRing(2, PolicyBlock)
	r.put(mkReports(0, 2))
	done := make(chan int)
	go func() { done <- r.put(mkReports(2, 1)) }()
	time.Sleep(20 * time.Millisecond)
	r.close()
	select {
	case n := <-done:
		if n != 0 {
			t.Errorf("closed ring accepted %d reports mid-block", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close left the producer blocked")
	}
	// Pending reports stay drainable; after that, nil signals shutdown.
	if got := r.drainUpTo(10, nil); len(got) != 2 {
		t.Fatalf("drained %d after close, want 2", len(got))
	}
	if got := r.drainUpTo(10, nil); got != nil {
		t.Fatalf("drain on empty closed ring = %v, want nil", got)
	}
}
