package dataplane

import (
	"fmt"
	"strings"
)

// ResourceKind enumerates the per-stage resource types Table 3 of the
// paper accounts for.
type ResourceKind int

const (
	// Crossbar is match/action input crossbar bytes.
	Crossbar ResourceKind = iota
	// SRAM is exact-match and register memory blocks.
	SRAM
	// TCAM is ternary match memory blocks.
	TCAM
	// VLIW is action instruction slots.
	VLIW
	// HashBits is hash-engine output bits.
	HashBits
	// SALU is stateful ALU instances.
	SALU
	// Gateway is condition-evaluation (if/else) gateways.
	Gateway
	// NumResourceKinds is the number of tracked resource types.
	NumResourceKinds
)

var resourceNames = [NumResourceKinds]string{
	"Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway",
}

// String names the resource kind as Table 3 does.
func (k ResourceKind) String() string {
	if k >= 0 && k < NumResourceKinds {
		return resourceNames[k]
	}
	return fmt.Sprintf("resource(%d)", int(k))
}

// Resources is a consumption (or capacity) vector over the tracked
// resource kinds, in abstract per-stage units.
type Resources [NumResourceKinds]float64

// Add accumulates another vector.
func (r *Resources) Add(o Resources) {
	for k := range r {
		r[k] += o[k]
	}
}

// Scale returns the vector multiplied by f.
func (r Resources) Scale(f float64) Resources {
	for k := range r {
		r[k] *= f
	}
	return r
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	for k := range r {
		if r[k] > c[k] {
			return false
		}
	}
	return true
}

// Sub returns r minus o (clamped at zero).
func (r Resources) Sub(o Resources) Resources {
	for k := range r {
		r[k] -= o[k]
		if r[k] < 0 {
			r[k] = 0
		}
	}
	return r
}

// Utilization returns r normalized element-wise by base, the form in
// which Table 3 reports everything ("normalized by the resource usage of
// switch.p4"). Kinds that base does not use report as zero.
func (r Resources) Utilization(base Resources) Resources {
	var out Resources
	for k := range r {
		if base[k] > 0 {
			out[k] = r[k] / base[k]
		}
	}
	return out
}

// String renders the vector compactly for reports.
func (r Resources) String() string {
	var parts []string
	for k := ResourceKind(0); k < NumResourceKinds; k++ {
		if r[k] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.4g", k, r[k]))
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// TofinoStageCapacity approximates one Tofino MAU stage's resource
// budget in the abstract units used throughout: enough that tens of
// small tables fit, mirroring the public RMT/Tofino architecture papers.
func TofinoStageCapacity() Resources {
	return Resources{
		Crossbar: 128, // bytes of match crossbar
		SRAM:     80,  // 128Kb blocks
		TCAM:     24,  // blocks
		VLIW:     32,  // action slots
		HashBits: 416, // hash output bits
		SALU:     4,   // stateful ALUs
		Gateway:  16,  // gateways
	}
}

// TofinoStages is the per-pipeline stage count of the paper's target
// ("Tofino has 12 stages per pipeline", §4.3).
const TofinoStages = 12
