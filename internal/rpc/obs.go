package rpc

import (
	"sync/atomic"

	"github.com/newton-net/newton/internal/obs"
)

// RegisterObs exposes the agent's control-channel accounting in reg,
// labeling every family with switch=switchID. Callback-backed: the
// agent's existing counters are read at scrape time, with no second set
// of books.
func (a *Agent) RegisterObs(reg *obs.Registry, switchID string) {
	sw := obs.L("switch", switchID)
	reg.CounterFunc("newton_rpc_agent_requests_total",
		"Control-channel requests dispatched by the agent.",
		func() uint64 { return atomic.LoadUint64(&a.requests) }, sw)
	reg.CounterFunc("newton_rpc_agent_replay_hits_total",
		"Retransmitted requests answered from the replay cache.",
		func() uint64 { return atomic.LoadUint64(&a.replayHits) }, sw)
	reg.CounterFunc("newton_rpc_agent_conn_errors_total",
		"Connection-level errors that were not clean shutdowns.",
		a.ConnErrors, sw)
	reg.GaugeFunc("newton_rpc_agent_replay_cache_size",
		"Entries currently held in the replay cache.",
		func() float64 {
			a.mu.Lock()
			n := len(a.replay)
			a.mu.Unlock()
			return float64(n)
		}, sw)
}

// RegisterObs exposes the client's call accounting in reg, labeling
// every family with peer (the agent this client talks to).
func (c *Client) RegisterObs(reg *obs.Registry, peer string) {
	p := obs.L("peer", peer)
	reg.CounterFunc("newton_rpc_client_calls_total",
		"Logical calls completed (success or failure).",
		func() uint64 { return atomic.LoadUint64(&c.calls) }, p)
	reg.CounterFunc("newton_rpc_client_call_errors_total",
		"Logical calls that failed after exhausting retries.",
		func() uint64 { return atomic.LoadUint64(&c.callErrs) }, p)
	reg.CounterFunc("newton_rpc_client_retries_total",
		"Attempt retries across all calls.",
		func() uint64 { return atomic.LoadUint64(&c.retries) }, p)
	reg.CounterFunc("newton_rpc_client_redials_total",
		"Transport re-establishments after connection loss.",
		func() uint64 { return atomic.LoadUint64(&c.redials) }, p)
	reg.RegisterHistogram("newton_rpc_client_call_ns",
		"Whole-call round-trip latency in ns, retries and backoff included.",
		c.latency, p)
}
