package telemetry

import (
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/rpc"
)

// RegisterObs exposes the exporter's ring and stream accounting in reg,
// labeled with switch=SwitchID. All series are callback-backed reads of
// the exporter's existing counters.
func (e *Exporter) RegisterObs(reg *obs.Registry) {
	sw := obs.L("switch", e.cfg.SwitchID)
	reg.GaugeFunc("newton_export_ring_depth",
		"Reports currently buffered in the export ring.",
		func() float64 { return float64(e.ring.len()) }, sw)
	stat := func(get func(s rpc.ExportStats) uint64) func() uint64 {
		return func() uint64 { return get(e.Stats()) }
	}
	reg.CounterFunc("newton_export_enqueued_total",
		"Reports accepted into the export ring.",
		stat(func(s rpc.ExportStats) uint64 { return s.Enqueued }), sw)
	reg.CounterFunc("newton_export_exported_total",
		"Reports pushed to the analyzer.",
		stat(func(s rpc.ExportStats) uint64 { return s.Exported }), sw)
	reg.CounterFunc("newton_export_dropped_total",
		"Reports lost to ring eviction or stream errors.",
		stat(func(s rpc.ExportStats) uint64 { return s.Dropped }), sw)
	reg.CounterFunc("newton_export_overflows_total",
		"Ring-full bursts (one per burst, not per blocked or evicted report).",
		stat(func(s rpc.ExportStats) uint64 { return s.Overflows }), sw)
	reg.CounterFunc("newton_export_batches_total",
		"Report frames pushed to the analyzer.",
		stat(func(s rpc.ExportStats) uint64 { return s.Batches }), sw)
	reg.CounterFunc("newton_export_snapshots_total",
		"Epoch state-bank snapshot frames pushed.",
		stat(func(s rpc.ExportStats) uint64 { return s.Snapshots }), sw)
	reg.CounterFunc("newton_export_reconnects_total",
		"Telemetry stream re-establishments.",
		stat(func(s rpc.ExportStats) uint64 { return s.Reconnects }), sw)
	reg.GaugeFunc("newton_export_codec_binary",
		"1 when the current stream negotiated the binary wire codec, 0 on JSON.",
		func() float64 {
			if e.Stats().Codec == CodecBinary.String() {
				return 1
			}
			return 0
		}, sw)
	reg.CounterFunc("newton_export_wire_bytes_total",
		"Bytes written to the telemetry stream, frame headers included.",
		stat(func(s rpc.ExportStats) uint64 { return s.WireBytes }), sw)
	reg.CounterFunc("newton_export_payload_bytes_total",
		"Encoded frame bytes before compression (what the stream would cost uncompressed).",
		stat(func(s rpc.ExportStats) uint64 { return s.PayloadBytes }), sw)
	reg.CounterFunc("newton_export_compressed_frames_total",
		"Frames whose payload the flate size gate shrank.",
		stat(func(s rpc.ExportStats) uint64 { return s.CompressedFrames }), sw)
	reg.CounterFunc("newton_export_delta_banks_total",
		"Snapshot banks sent as sparse deltas against the previous epoch.",
		stat(func(s rpc.ExportStats) uint64 { return s.DeltaBanks }), sw)
	reg.CounterFunc("newton_export_keyframe_banks_total",
		"Snapshot banks sent in full (keyframes and delta fallbacks).",
		stat(func(s rpc.ExportStats) uint64 { return s.KeyframeBanks }), sw)
	reg.CounterFunc("newton_export_encode_ns_total",
		"Nanoseconds spent encoding and compressing wire payloads.",
		stat(func(s rpc.ExportStats) uint64 { return s.EncodeNs }), sw)
}

// RegisterObs exposes the analyzer service's merge accounting in reg.
// Unlabeled: one analyzer per registry.
func (s *Service) RegisterObs(reg *obs.Registry) {
	stat := func(get func(st ServiceStats) uint64) func() uint64 {
		return func() uint64 { return get(s.Stats()) }
	}
	reg.GaugeFunc("newton_analyzer_agents",
		"Agents known to the analyzer.",
		func() float64 { return float64(s.Stats().Agents) })
	reg.GaugeFunc("newton_analyzer_live_agents",
		"Agents with an open telemetry stream right now.",
		func() float64 { return float64(s.Stats().LiveAgents) })
	reg.GaugeFunc("newton_analyzer_tracked_agents",
		"Switches with resident per-agent bookkeeping (shrinks via ForgetAgent).",
		func() float64 { return float64(s.TrackedAgents()) })
	reg.CounterFunc("newton_analyzer_reports_total",
		"Raw reports ingested (pre-dedup).",
		stat(func(st ServiceStats) uint64 { return st.Reports }))
	reg.CounterFunc("newton_analyzer_duplicate_alerts_total",
		"Reports suppressed by network-wide dedup.",
		stat(func(st ServiceStats) uint64 { return st.DuplicateAlerts }))
	reg.CounterFunc("newton_analyzer_snapshots_merged_total",
		"Snapshot frames merged into network-wide banks.",
		stat(func(st ServiceStats) uint64 { return st.Snapshots }))
	reg.CounterFunc("newton_analyzer_subscriber_drops_total",
		"Events lost to slow subscribers.",
		stat(func(st ServiceStats) uint64 { return st.SubscriberDrops }))
	reg.CounterFunc("newton_analyzer_reconnects_total",
		"Agent streams re-established after a drop.",
		stat(func(st ServiceStats) uint64 { return st.Reconnects }))
	reg.CounterFunc("newton_analyzer_epoch_gaps_total",
		"Snapshot epochs skipped across all agents.",
		stat(func(st ServiceStats) uint64 { return st.EpochGaps }))
	reg.CounterFunc("newton_analyzer_partial_epochs_total",
		"Superseded (query, epoch) merges missing expected contributors.",
		stat(func(st ServiceStats) uint64 { return st.PartialEpochs }))
	reg.GaugeFunc("newton_analyzer_binary_agents",
		"Agents whose stream negotiated the binary wire codec.",
		func() float64 { return float64(s.Stats().BinaryAgents) })
	reg.CounterFunc("newton_analyzer_wire_bytes_total",
		"Telemetry stream bytes ingested across agents, frame headers included.",
		stat(func(st ServiceStats) uint64 { return st.WireBytes }))
	reg.CounterFunc("newton_analyzer_raw_bytes_total",
		"Uncompressed cost of the binary frames ingested (compression ratio = wire/raw).",
		stat(func(st ServiceStats) uint64 { return st.RawBytes }))
	reg.CounterFunc("newton_analyzer_delta_frames_total",
		"Snapshot frames that arrived delta-encoded.",
		stat(func(st ServiceStats) uint64 { return st.DeltaFrames }))
	reg.CounterFunc("newton_analyzer_chain_breaks_total",
		"Delta snapshots dropped for a missing base epoch (resynced at next keyframe).",
		stat(func(st ServiceStats) uint64 { return st.ChainBreaks }))
	reg.CounterFunc("newton_analyzer_width_transitions_total",
		"Epochs flagged as straddling a sketch width resize.",
		stat(func(st ServiceStats) uint64 { return st.WidthTransitions }))
	reg.CounterFunc("newton_analyzer_geometry_conflicts_total",
		"Same-epoch bank geometry conflicts resolved by replacement.",
		stat(func(st ServiceStats) uint64 { return st.GeometryConflicts }))
	reg.GaugeFunc("newton_analyzer_dedup_keys",
		"Alert-dedup keys resident (bounded by KeepAlertWindows compaction).",
		func() float64 { return float64(s.Stats().DedupKeys) })
}
