package newton

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding result via the experiment
// harness and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/newton-bench prints the full
// tables; these benchmarks track the numbers over time.

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/baselines"
	"github.com/newton-net/newton/internal/experiments"
)

// BenchmarkTable3Resources regenerates Table 3 (per-stage, per-module,
// per-primitive resource utilization).
func BenchmarkTable3Resources(b *testing.B) {
	var compactCrossbar float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table3()
		compactCrossbar = r.PerStageCompact[0]
	}
	b.ReportMetric(compactCrossbar*100, "compact-crossbar-%")
}

// BenchmarkFig10Interruption regenerates Fig. 10 (Sonata outage vs
// Newton's uninterrupted updates).
func BenchmarkFig10Interruption(b *testing.B) {
	var outage time.Duration
	var newtonDropped uint64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10Interruption(1000, 30, 20000)
		outage = r.SonataOutage
		newtonDropped = r.NewtonDropped
	}
	b.ReportMetric(outage.Seconds(), "sonata-outage-s")
	b.ReportMetric(float64(newtonDropped), "newton-dropped-pkts")
}

// BenchmarkFig11OperationDelay regenerates Fig. 11 (install/remove
// latency of the nine queries).
func BenchmarkFig11OperationDelay(b *testing.B) {
	var q1Avg, maxAvg time.Duration
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11OperationDelay(100)
		q1Avg = r.Rows[0].InstallAvg
		for _, row := range r.Rows {
			if row.InstallAvg > maxAvg {
				maxAvg = row.InstallAvg
			}
		}
	}
	b.ReportMetric(float64(q1Avg)/1e6, "q1-install-ms")
	b.ReportMetric(float64(maxAvg)/1e6, "max-install-ms")
}

// BenchmarkFig12Overhead regenerates Fig. 12 (monitoring overhead of six
// systems on two traces).
func BenchmarkFig12Overhead(b *testing.B) {
	var newton, turbo float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12Overhead(2000, 400*time.Millisecond)
		for _, row := range r.Rows {
			if row.Trace != "CAIDA" {
				continue
			}
			switch row.System {
			case baselines.Newton:
				newton = row.Overhead
			case baselines.TurboFlow:
				turbo = row.Overhead
			}
		}
	}
	b.ReportMetric(newton, "newton-msgs/pkt")
	b.ReportMetric(turbo/newton, "turboflow-vs-newton-x")
}

// BenchmarkFig13CQE regenerates Fig. 13 (network-wide overhead vs hop
// count).
func BenchmarkFig13CQE(b *testing.B) {
	var newtonGrowth, sonataGrowth float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13CQEOverhead(5)
		first := map[baselines.System]int{}
		last := map[baselines.System]int{}
		for _, row := range r.Rows {
			if row.Hops == 1 {
				first[row.System] = row.Messages
			}
			if row.Hops == 5 {
				last[row.System] = row.Messages
			}
		}
		newtonGrowth = float64(last[baselines.Newton]) / float64(first[baselines.Newton])
		sonataGrowth = float64(last[baselines.Sonata]) / float64(first[baselines.Sonata])
	}
	b.ReportMetric(newtonGrowth, "newton-5hop-growth-x")
	b.ReportMetric(sonataGrowth, "sonata-5hop-growth-x")
}

// BenchmarkFig14Accuracy regenerates Fig. 14 (accuracy vs registers,
// Sonata vs Newton_h).
func BenchmarkFig14Accuracy(b *testing.B) {
	var sonata256, newton3x256 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14Accuracy([]uint32{256, 1024, 4096}, 3)
		for _, row := range r.Rows {
			if row.Registers != 256 {
				continue
			}
			switch row.System {
			case "Sonata":
				sonata256 = row.Accuracy
			case "Newton_3":
				newton3x256 = row.Accuracy
			}
		}
	}
	b.ReportMetric(sonata256, "sonata-acc@256")
	b.ReportMetric(newton3x256, "newton3-acc@256")
	if sonata256 > 0 {
		b.ReportMetric(newton3x256/sonata256, "improvement-x")
	}
}

// BenchmarkFig15Compilation regenerates Fig. 15 / Fig. 7 (compilation
// optimization across the nine queries).
func BenchmarkFig15Compilation(b *testing.B) {
	var minMod, minStg float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15Compilation()
		minMod, minStg = r.MinModuleReduction, r.MinStageReduction
	}
	b.ReportMetric(minMod*100, "min-module-reduction-%")
	b.ReportMetric(minStg*100, "min-stage-reduction-%")
}

// BenchmarkFig16Multiplexing regenerates Fig. 16 (concurrent Q4 copies).
func BenchmarkFig16Multiplexing(b *testing.B) {
	var pRules100, sModules100 int
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16Multiplexing([]int{1, 100})
		pRules100 = r.Rows[1].PNewtonRules
		sModules100 = r.Rows[1].SNewtonModules
	}
	b.ReportMetric(float64(pRules100), "p-newton-rules@100")
	b.ReportMetric(float64(sModules100), "s-newton-modules@100")
}

// BenchmarkFig17Placement regenerates Fig. 17 (network-wide placement of
// Q4 on fat-trees and the ISP backbone).
func BenchmarkFig17Placement(b *testing.B) {
	var avgAtScale float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17Placement()
		avgAtScale = r.B[len(r.B)-1].Avg
	}
	b.ReportMetric(avgAtScale, "avg-entries-largest-fattree")
}
