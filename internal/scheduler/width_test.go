package scheduler

import (
	"testing"
)

// TestWidthForTargetRungs checks the reverse walk: targets plus
// observed stream totals map to the narrowest sufficient rung.
func TestWidthForTargetRungs(t *testing.T) {
	cases := []struct {
		name     string
		relErr   float64
		n, scale uint64
		want     uint32
		wantErr  bool
	}{
		{"calm load at threshold scale", 0.25, 2000, 50, 512, false},
		{"surge widens", 0.25, 12000, 50, 4096, false},
		{"tighter target widens", 0.05, 2000, 50, 4096, false},
		{"scale defaults to N", 0.25, 2000, 0, 16, false}, // e/0.25 = 10.9 -> 16
		{"empty stream", 0.25, 0, 50, 1, false},
		{"zero target", 0, 1000, 50, 0, true},
		{"target at 1", 1, 1000, 50, 0, true},
	}
	for _, c := range cases {
		got, err := WidthForTarget(c.relErr, c.n, c.scale)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.name, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("%s: WidthForTarget(%g, %d, %d) = %d, want %d",
				c.name, c.relErr, c.n, c.scale, got, c.want)
		}
	}
}

func TestClampToLadder(t *testing.T) {
	cases := []struct {
		w, minW, maxW, want uint32
	}{
		{100, 256, 4096, 256},
		{8192, 256, 4096, 4096},
		{1024, 256, 4096, 1024},
		{1, 0, 0, DefaultMinWidth},
		{1 << 20, 0, 0, DefaultMaxWidth},
	}
	for _, c := range cases {
		if got := ClampToLadder(c.w, c.minW, c.maxW); got != c.want {
			t.Errorf("ClampToLadder(%d, %d, %d) = %d, want %d", c.w, c.minW, c.maxW, got, c.want)
		}
	}
}
