// Package sketch implements the probabilistic data structures Newton's
// state bank realizes on registers — Count-Min sketches for reduce(sum)
// and Bloom filters for distinct — plus the configurable hash family the
// hash-calculation module (H) exposes. The package is also used directly
// by the software analyzer and by the Scream baseline.
package sketch

import (
	"fmt"
	"hash/crc32"
)

// Algo selects one of the hash algorithms a Tofino-style hash engine
// offers. The exact polynomials matter less than having several
// independent functions available per stage.
type Algo uint8

const (
	// CRC32IEEE is the standard Ethernet CRC-32 polynomial.
	CRC32IEEE Algo = iota
	// CRC32Castagnoli is the iSCSI CRC-32C polynomial.
	CRC32Castagnoli
	// CRC32Koopman is the Koopman CRC-32K polynomial.
	CRC32Koopman
	// FNV1a is 32-bit FNV-1a.
	FNV1a
	// Identity passes the low 32 bits of the input through ("direct
	// mode" in the paper: the hash result is a key verbatim).
	Identity
	numAlgos
)

var algoNames = [numAlgos]string{"crc32", "crc32c", "crc32k", "fnv1a", "identity"}

// String returns the short algorithm name.
func (a Algo) String() string {
	if a < numAlgos {
		return algoNames[a]
	}
	return fmt.Sprintf("algo(%d)", uint8(a))
}

var (
	castagnoliTable = crc32.MakeTable(crc32.Castagnoli)
	koopmanTable    = crc32.MakeTable(crc32.Koopman)
)

// Sum computes the 32-bit hash of data under algorithm a with the given
// seed. Seeding lets one algorithm provide the independent functions a
// multi-row sketch needs. CRC is linear — prefix-seeding it would only
// XOR a per-seed constant into the result, leaving rows perfectly
// correlated — so the seed is folded in through a nonlinear finalizer
// (Murmur3's), which is exactly how hardware hash engines derive
// multiple "units" from one polynomial.
func (a Algo) Sum(data []byte, seed uint32) uint32 {
	switch a {
	case CRC32IEEE:
		return fmix32(crc32.ChecksumIEEE(data) ^ seed)
	case CRC32Castagnoli:
		return fmix32(crc32.Checksum(data, castagnoliTable) ^ seed)
	case CRC32Koopman:
		return fmix32(crc32.Checksum(data, koopmanTable) ^ seed)
	case FNV1a:
		// Inline FNV-1a over seed||data: identical to hash/fnv on the
		// same bytes, but without the heap-allocated hash.Hash32 that
		// made every per-packet hash an allocation.
		const (
			offset32 = 2166136261
			prime32  = 16777619
		)
		h := uint32(offset32)
		h = (h ^ uint32(seed>>24)) * prime32
		h = (h ^ uint32(seed>>16)&0xFF) * prime32
		h = (h ^ uint32(seed>>8)&0xFF) * prime32
		h = (h ^ seed&0xFF) * prime32
		for _, b := range data {
			h = (h ^ uint32(b)) * prime32
		}
		return h
	case Identity:
		var v uint32
		for _, b := range data {
			v = v<<8 | uint32(b)
		}
		return v
	}
	panic(fmt.Sprintf("sketch: unknown hash algo %d", a))
}

// fmix32 is Murmur3's 32-bit finalizer: a cheap bijective scrambler that
// decorrelates seed variants of a linear checksum.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85EBCA6B
	h ^= h >> 13
	h *= 0xC2B2AE35
	h ^= h >> 16
	return h
}

// Fold reduces a 32-bit hash into [0, rangeSize). rangeSize must be
// positive. For power-of-two ranges this is a mask, matching how the H
// module's "range of the hash result" is configured in hardware.
func Fold(h uint32, rangeSize uint32) uint32 {
	if rangeSize == 0 {
		panic("sketch: zero hash range")
	}
	if rangeSize&(rangeSize-1) == 0 {
		return h & (rangeSize - 1)
	}
	return h % rangeSize
}
