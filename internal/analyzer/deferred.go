package analyzer

import (
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
)

// DeferredTail executes the software half of a query whose forwarding
// path has fewer hops than the query has partitions (§5.2: "Newton
// defers the remaining part of the query to the software analyzer. The
// switches will report the current execution status, and the software
// analyzer will continue executing the query").
//
// The "execution status" is the result-snapshot header still on the
// packet when it leaves the last switch: the state results and the
// running global result. Operation keys are recomputed from the packet
// headers, exactly as a downstream switch partition would. The tail then
// applies the query's threshold and emits deduplicated alerts.
type DeferredTail struct {
	q      *query.Query
	window uint64

	alerted map[alertKeyT]bool
	alerts  []Alert
	// Packets counts snapshots handed to the tail (the CPU-load metric
	// the paper's scalability argument is about).
	Packets int
}

type alertKeyT struct {
	win uint64
	key uint64
}

// NewDeferredTail builds the software tail for q.
func NewDeferredTail(q *query.Query) *DeferredTail {
	if err := q.Validate(); err != nil {
		panic("analyzer: invalid query for deferred tail: " + err.Error())
	}
	return &DeferredTail{
		q:       q,
		window:  uint64(q.Window),
		alerted: map[alertKeyT]bool{},
	}
}

// Process consumes one packet that left the network still carrying a
// result snapshot. It returns an alert if the carried global result
// crosses the query's threshold for the first time this window.
func (d *DeferredTail) Process(p *packet.Packet) (Alert, bool) {
	if p.SP == nil {
		return Alert{}, false
	}
	d.Packets++
	mask := d.q.ReportKeys()
	v := p.Fields()
	key := singleKeyValue(mask, &v)
	g := int64(int16(p.SP.Global))

	var triggered bool
	if m := d.q.Merge; m != nil {
		triggered = m.Triggered(g)
	} else {
		th := d.q.Threshold()
		triggered = th > 0 && g > int64(th)
	}
	if !triggered {
		return Alert{}, false
	}
	ak := alertKeyT{win: p.TS / d.window, key: key}
	if d.alerted[ak] {
		return Alert{}, false
	}
	d.alerted[ak] = true
	a := Alert{Window: ak.win, Key: key, Value: g}
	d.alerts = append(d.alerts, a)
	return a, true
}

// Alerts returns everything the tail has flagged.
func (d *DeferredTail) Alerts() []Alert { return d.alerts }

// FlaggedKeys returns the distinct keys flagged in any window.
func (d *DeferredTail) FlaggedKeys() map[uint64]bool {
	out := map[uint64]bool{}
	for _, a := range d.alerts {
		out[a.Key] = true
	}
	return out
}
