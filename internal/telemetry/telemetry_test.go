package telemetry_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/trace"
)

// connect wires a fresh exporter to svc over net.Pipe, optionally
// wrapping the exporter-side conn (e.g. to slow it down).
func connect(t *testing.T, svc *telemetry.Service, id string, cfg telemetry.ExporterConfig,
	wrap func(net.Conn) net.Conn) *telemetry.Exporter {
	t.Helper()
	server, client := net.Pipe()
	go svc.HandleConn(server)
	var conn net.Conn = client
	if wrap != nil {
		conn = wrap(client)
	}
	cfg.SwitchID = id
	exp, err := telemetry.NewExporter(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func report(qid int, ts, dip uint64) dataplane.Report {
	var keys fields.Vector
	keys.Set(fields.DstIP, dip)
	return dataplane.Report{
		QueryID: qid, TS: ts, Keys: keys, KeyMask: fields.Keep(fields.DstIP),
	}
}

// slowConn injects a write delay, making the stream the bottleneck.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

func TestExporterDeliversAndSaysBye(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{}, nil)

	rs := make([]dataplane.Report, 10)
	for i := range rs {
		rs[i] = report(1, uint64(i), uint64(100+i))
	}
	exp.Export(rs)
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Enqueued != 10 || st.Exported != 10 || st.Dropped != 0 {
		t.Fatalf("exporter stats = %+v", st)
	}
	waitFor(t, "service ingest", func() bool { return svc.Stats().Reports == 10 })

	if got := len(svc.DrainReports()); got != 10 {
		t.Errorf("service drained %d reports, want 10", got)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "bye frame", func() bool {
		_, _, bye, ok := svc.AgentStats("sw1")
		return ok && bye != nil
	})
	_, _, bye, _ := svc.AgentStats("sw1")
	if bye.Exported != 10 || bye.Dropped != 0 {
		t.Errorf("final accounting = %+v", bye)
	}
}

func TestBlockPolicyIsLosslessUnderPressure(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	// Tiny ring, slow stream: producers must block, never lose.
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{
		RingSize: 8, BatchSize: 4, Policy: telemetry.PolicyBlock,
	}, func(c net.Conn) net.Conn { return slowConn{c, 100 * time.Microsecond} })

	const producers, per = 4, 300
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				exp.Export([]dataplane.Report{report(1, uint64(p*per+i), uint64(i))})
			}
		}(p)
	}
	wg.Wait()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Enqueued != producers*per {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, producers*per)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d under block policy, want 0", st.Dropped)
	}
	if st.Exported != producers*per {
		t.Fatalf("exported = %d, want %d", st.Exported, producers*per)
	}
	waitFor(t, "all reports ingested", func() bool {
		return svc.Stats().Reports == producers*per
	})
	exp.Close()
}

func TestDropOldestAccountsEveryLoss(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{
		RingSize: 4, BatchSize: 2, Policy: telemetry.PolicyDropOldest,
	}, func(c net.Conn) net.Conn { return slowConn{c, time.Millisecond} })

	const n = 400
	for i := 0; i < n; i++ {
		exp.Export([]dataplane.Report{report(1, uint64(i), uint64(i))})
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	if st.Enqueued != n {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, n)
	}
	if st.Dropped == 0 || st.Overflows == 0 {
		t.Fatalf("slow stream with a 4-slot ring dropped nothing: %+v", st)
	}
	if st.Exported+st.Dropped != n {
		t.Fatalf("exported %d + dropped %d != enqueued %d", st.Exported, st.Dropped, n)
	}
	waitFor(t, "ingest to match exported", func() bool {
		return svc.Stats().Reports == st.Exported
	})
	exp.Close()
}

func TestBlockPolicySurvivesDeadAnalyzer(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	server, client := net.Pipe()
	go svc.HandleConn(server)
	exp, err := telemetry.NewExporter(client, telemetry.ExporterConfig{
		SwitchID: "sw1", RingSize: 8, Policy: telemetry.PolicyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	server.Close() // the analyzer dies mid-stream

	// Exporting far more than the ring holds must not deadlock: the
	// writer keeps draining and accounts the loss.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			exp.Export([]dataplane.Report{report(1, uint64(i), 7)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("block-policy producer deadlocked on a dead analyzer")
	}
	if err := exp.Flush(); err == nil {
		t.Error("Flush hid the stream error")
	}
	st := exp.Stats()
	if st.Exported+st.Dropped != st.Enqueued {
		t.Errorf("loss accounting broken: %+v", st)
	}
	if st.Dropped == 0 {
		t.Error("a dead stream must show up in the drop counter")
	}
	exp.Close()
}

func TestAlertDedupAcrossSwitches(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{Window: 100 * time.Millisecond})
	defer svc.Close()
	a := connect(t, svc, "a", telemetry.ExporterConfig{}, nil)
	b := connect(t, svc, "b", telemetry.ExporterConfig{}, nil)
	defer a.Close()
	defer b.Close()

	// The same (query, window, key) from two switches: one alert.
	ra := report(1, 10, 42)
	ra.SwitchID = "a"
	rb := report(1, 20, 42) // same window, same key, different switch
	rb.SwitchID = "b"
	// A different key in the same window, and the same key in the next
	// window: both fresh.
	rc := report(1, 30, 43)
	rc.SwitchID = "a"
	rd := report(1, uint64(150*time.Millisecond), 42)
	rd.SwitchID = "b"

	// Serialize the two streams so "first arrival" is deterministic:
	// switch a's batch lands before switch b's.
	a.Export([]dataplane.Report{ra, rc})
	a.Flush()
	waitFor(t, "switch a's reports", func() bool { return svc.Stats().Reports == 2 })
	b.Export([]dataplane.Report{rb, rd})
	b.Flush()
	waitFor(t, "4 raw reports", func() bool { return svc.Stats().Reports == 4 })

	got := svc.DrainReports()
	if len(got) != 3 {
		t.Fatalf("deduped alerts = %d, want 3", len(got))
	}
	if d := svc.Stats().DuplicateAlerts; d != 1 {
		t.Errorf("duplicate count = %d, want 1", d)
	}
	// First arrival wins: switch a's report for (window 0, key 42).
	for _, r := range got {
		if r.Keys.Get(fields.DstIP) == 42 && r.TS < 100 && r.SwitchID != "a" {
			t.Errorf("dedup kept the later switch's report: %+v", r)
		}
	}
}

func TestSubscriptionStreamsEvents(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	events, cancel := svc.Subscribe(8)
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{}, nil)
	defer exp.Close()

	exp.Export([]dataplane.Report{report(1, 5, 42)})
	select {
	case ev := <-events:
		if ev.Kind != telemetry.EventAlert || ev.Report.Keys.Get(fields.DstIP) != 42 || ev.Window != 0 {
			t.Fatalf("alert event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert event")
	}

	snap := modules.BankSnapshot{
		QueryID: 1, Row: 0, Kind: modules.BankCMSRow,
		Algo: sketch.CRC32IEEE, Seed: 99, Range: 16, Width: 16,
		KeyMask: fields.Keep(fields.DstIP), Values: make([]uint32, 16),
	}
	if err := exp.ExportSnapshot(0, []modules.BankSnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Kind != telemetry.EventSnapshotMerged || ev.SwitchID != "sw1" || ev.Banks != 1 {
			t.Fatalf("merge event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no snapshot-merged event")
	}

	cancel()
	if _, open := <-events; open {
		t.Error("cancel left the channel open")
	}
	cancel() // idempotent
}

func TestMergeArithmetic(t *testing.T) {
	// CMS rows sum counter-wise; Bloom rows OR bitwise.
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	a := connect(t, svc, "a", telemetry.ExporterConfig{}, nil)
	b := connect(t, svc, "b", telemetry.ExporterConfig{}, nil)
	defer a.Close()
	defer b.Close()

	mk := func(kind modules.BankKind, vals []uint32) modules.BankSnapshot {
		return modules.BankSnapshot{
			QueryID: 1, Row: 0, Kind: kind,
			Algo: sketch.CRC32IEEE, Seed: 7, Range: 4, Width: 4,
			KeyMask: fields.Keep(fields.DstIP), Values: vals,
		}
	}
	bloomA := mk(modules.BankBloomRow, []uint32{1, 0, 0, 1})
	bloomA.Row = 1
	bloomB := mk(modules.BankBloomRow, []uint32{0, 1, 0, 1})
	bloomB.Row = 1
	if err := a.ExportSnapshot(3, []modules.BankSnapshot{mk(modules.BankCMSRow, []uint32{5, 0, 2, 9}), bloomA}); err != nil {
		t.Fatal(err)
	}
	if err := b.ExportSnapshot(3, []modules.BankSnapshot{mk(modules.BankCMSRow, []uint32{1, 4, 0, 1}), bloomB}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both snapshots merged", func() bool { return svc.Stats().Snapshots == 2 })

	rows := svc.MergedRows(1, 0, 3)
	if len(rows) != 2 {
		t.Fatalf("merged rows = %d, want 2", len(rows))
	}
	wantCMS := []uint64{6, 4, 2, 10}
	wantBloom := []uint64{1, 1, 0, 1}
	for i, want := range wantCMS {
		if rows[0].Values[i] != want {
			t.Errorf("CMS slot %d = %d, want %d", i, rows[0].Values[i], want)
		}
	}
	for i, want := range wantBloom {
		if rows[1].Values[i] != want {
			t.Errorf("Bloom slot %d = %d, want %d", i, rows[1].Values[i], want)
		}
	}
	if len(rows[0].Switches) != 2 {
		t.Errorf("merge provenance = %v", rows[0].Switches)
	}
}

// TestShardedMergeMatchesSingleSwitch is the subsystem's acceptance
// proof: a remote deployment (net.Pipe-wired control channels and
// telemetry streams) runs a reduce query sharded across three switches,
// and the analyzer's merged Count-Min banks — and the estimates they
// answer — are identical, slot for slot, to a single unsharded switch
// that saw all the traffic.
func TestShardedMergeMatchesSingleSwitch(t *testing.T) {
	const width = 1 << 12
	q := query.Q1(40)

	// --- Sharded deployment: three switches, agents, exporters, service.
	svc := telemetry.NewService(telemetry.ServiceConfig{Window: 100 * time.Millisecond})
	defer svc.Close()
	names := []string{"a", "b", "c"}
	clients := map[string]*rpc.Client{}
	var sws []*dataplane.Switch
	var exps []*telemetry.Exporter
	for _, name := range names {
		layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(name, 16, modules.StageCapacity())
		sw.AddRoute(0, 0, 1)
		sw.Monitor = eng
		sws = append(sws, sw)

		exp := connect(t, svc, name, telemetry.ExporterConfig{Policy: telemetry.PolicyBlock}, nil)
		exps = append(exps, exp)

		agent := rpc.NewAgent(sw, eng)
		exp.AttachAgent(agent, eng)
		server, client := net.Pipe()
		go agent.HandleConn(server)
		c := rpc.NewClient(client)
		t.Cleanup(func() { c.Close() })
		clients[name] = c
	}
	ctl := controller.NewRemote(clients, 1)
	ctl.AttachTelemetry(svc)
	qid, _, err := ctl.InstallSharded(q, width, names)
	if err != nil {
		t.Fatal(err)
	}

	// --- Reference: one unsharded switch with the same query and width.
	refLayout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	refEng := modules.NewEngine(refLayout)
	refSw := dataplane.NewSwitch("ref", 16, modules.StageCapacity())
	refSw.AddRoute(0, 0, 1)
	refSw.Monitor = refEng
	o := compiler.AllOpts()
	o.QID = qid
	o.Width = width
	refProg, err := compiler.Compile(q, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := refEng.Install(refProg); err != nil {
		t.Fatal(err)
	}

	// --- Identical traffic everywhere, one 90 ms window (epoch 0).
	victim := uint64(0x0A0000AA)
	tr := trace.Generate(trace.Config{Seed: 17, Flows: 300, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: uint32(victim), Packets: 500})
	for _, pkt := range tr.Packets {
		for _, sw := range sws {
			sw.Process(pkt)
		}
		refSw.Process(pkt)
	}

	refBanks := refEng.SnapshotBanks()

	// Push reports, then tick: OnEpoch exports each switch's epoch-0
	// banks before the roll.
	for i, sw := range sws {
		exps[i].Export(sw.DrainReports())
	}
	if err := ctl.Tick(); err != nil {
		t.Fatal(err)
	}
	for _, exp := range exps {
		if err := exp.Flush(); err != nil {
			t.Fatal(err)
		}
		if d := exp.Stats().Dropped; d != 0 {
			t.Fatalf("lossless deployment dropped %d reports", d)
		}
	}
	waitFor(t, "three snapshots merged", func() bool { return svc.Stats().Snapshots == 3 })
	// Snapshots are written synchronously while reports ride the async
	// writer, so the snapshot count can hit 3 before every report frame
	// lands — wait for the raw ingest count to match what was exported.
	var sent uint64
	for _, exp := range exps {
		sent += exp.Stats().Exported
	}
	waitFor(t, "all reports ingested", func() bool { return svc.Stats().Reports == sent })

	// --- The merged banks equal the single switch's, slot for slot.
	var refRows []modules.BankSnapshot
	for _, b := range refBanks {
		if b.Kind == modules.BankCMSRow && b.Branch == 0 {
			refRows = append(refRows, b)
		}
	}
	if len(refRows) == 0 {
		t.Fatal("reference produced no CMS rows")
	}
	merged := svc.MergedRows(qid, 0, 0)
	var mergedCMS []*telemetry.MergedBank
	for _, m := range merged {
		if m.Kind == modules.BankCMSRow {
			mergedCMS = append(mergedCMS, m)
		}
	}
	if len(mergedCMS) != len(refRows) {
		t.Fatalf("merged CMS rows = %d, reference has %d", len(mergedCMS), len(refRows))
	}
	for r := range refRows {
		if len(mergedCMS[r].Switches) != 3 {
			t.Errorf("row %d merged %v, want all three switches", r, mergedCMS[r].Switches)
		}
		for i, want := range refRows[r].Values {
			if got := mergedCMS[r].Values[i]; got != uint64(want) {
				t.Fatalf("row %d slot %d: merged %d != reference %d", r, i, got, want)
			}
		}
	}

	// --- And the estimates they answer match exactly.
	check := func(dip uint64) {
		var keys fields.Vector
		keys.Set(fields.DstIP, dip)
		got, ok := svc.Estimate(qid, 0, 0, &keys)
		if !ok {
			t.Fatalf("no merged estimate for key %d", dip)
		}
		want := ^uint64(0)
		kb := refRows[0].KeyMask.Bytes(&keys, nil)
		for _, b := range refRows {
			if v := uint64(b.Values[b.Slot(kb)]); v < want {
				want = v
			}
		}
		if got != want {
			t.Errorf("estimate(%d) = %d, single-switch reference = %d", dip, got, want)
		}
	}
	check(victim)
	for _, pkt := range tr.Packets[:50] {
		if pkt.IP.Dst != 0 {
			check(uint64(pkt.IP.Dst))
		}
	}

	// --- The deduplicated alert stream flags what the reference flags.
	window := uint64(q.Window)
	pushed := analyzer.NewCollector(window, q.ReportKeys())
	rs, err := ctl.Collect()
	if err != nil {
		t.Fatal(err)
	}
	pushed.AddAll(rs)
	ref := analyzer.NewCollector(window, q.ReportKeys())
	ref.AddAll(refSw.DrainReports())
	refFlagged := ref.FlaggedKeys()
	gotFlagged := pushed.FlaggedKeys()
	if len(refFlagged) == 0 || !refFlagged[victim] {
		t.Fatalf("reference did not flag the victim (flagged=%v)", refFlagged)
	}
	for k := range refFlagged {
		if !gotFlagged[k] {
			t.Errorf("sharded deployment missed key %d", k)
		}
	}
	for k := range gotFlagged {
		if !refFlagged[k] {
			t.Errorf("sharded deployment flagged spurious key %d", k)
		}
	}
}
