package dataplane

import (
	"fmt"
	"sync/atomic"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
)

// Stage is one physical match-action stage: the tables and register
// arrays placed there plus the resource bookkeeping that enforces the
// stage's capacity.
type Stage struct {
	Index    int
	Capacity Resources

	used      Resources
	tables    []*Table
	arrays    []*RegisterArray
	placement map[string]Resources
}

// Place reserves resources in the stage for a named component, failing
// if the stage cannot accommodate it. The optional table/array are
// registered with the stage for introspection.
func (s *Stage) Place(name string, consumes Resources, t *Table, ra *RegisterArray) error {
	want := s.used
	want.Add(consumes)
	if !want.Fits(s.Capacity) {
		return fmt.Errorf("dataplane: stage %d cannot accommodate %s (used %v + %v > cap %v)",
			s.Index, name, s.used, consumes, s.Capacity)
	}
	s.used = want
	if s.placement == nil {
		s.placement = make(map[string]Resources)
	}
	s.placement[name] = consumes
	if t != nil {
		s.tables = append(s.tables, t)
	}
	if ra != nil {
		s.arrays = append(s.arrays, ra)
	}
	return nil
}

// Used returns the stage's consumed resource vector.
func (s *Stage) Used() Resources { return s.used }

// Tables returns the tables placed in the stage.
func (s *Stage) Tables() []*Table { return s.tables }

// Arrays returns the register arrays placed in the stage.
func (s *Stage) Arrays() []*RegisterArray { return s.arrays }

// Pipeline is an ordered sequence of physical stages.
type Pipeline struct {
	Stages []*Stage
}

// NewPipeline builds a pipeline of n stages with the given per-stage
// capacity.
func NewPipeline(n int, capacity Resources) *Pipeline {
	if n <= 0 {
		panic("dataplane: pipeline needs at least one stage")
	}
	p := &Pipeline{Stages: make([]*Stage, n)}
	for i := range p.Stages {
		p.Stages[i] = &Stage{Index: i, Capacity: capacity}
	}
	return p
}

// NextEpoch advances the window epoch of every register array.
func (p *Pipeline) NextEpoch() {
	for _, s := range p.Stages {
		for _, ra := range s.arrays {
			ra.NextEpoch()
		}
	}
}

// TotalUsed sums resource usage across stages.
func (p *Pipeline) TotalUsed() Resources {
	var sum Resources
	for _, s := range p.Stages {
		sum.Add(s.Used())
	}
	return sum
}

// Report is one monitoring message mirrored to the software analyzer: the
// operation keys the query selected, the state and global results, and
// provenance.
type Report struct {
	SwitchID string
	QueryID  int
	TS       uint64
	Keys     fields.Vector
	KeyMask  fields.Mask
	State    uint64
	Global   uint64
}

// Context is the per-packet execution context handed to the monitoring
// program: the PHV, the packet itself, and the switch services the
// program may invoke (mirroring a report, consulting the SP header).
type Context struct {
	PHV fields.PHV
	Pkt *packet.Packet

	// OutSP is the result-snapshot header the program wants on the
	// packet when it leaves this switch: nil strips any inbound SP (the
	// query finished or stopped here), non-nil carries state to the next
	// partition (§5.1). The deparser applies it after the program runs.
	OutSP *packet.SPHeader

	// Lane is the delivery worker's index. The sharded delivery contract
	// is: at any instant, at most one goroutine drives packets with a
	// given lane, and all packets of one flow use the same lane within an
	// epoch (netsim shards batches by flow hash and joins workers at
	// window barriers). Under that discipline every per-lane structure —
	// switch counters, the engine's dispatch cache and hash memos, report
	// sinks — is single-writer and needs no locks. Sequential delivery
	// uses lane 0.
	Lane int

	// sink, when non-nil, receives mirrored reports instead of the
	// switch's shared buffer — the per-worker report buffers of parallel
	// batch delivery.
	sink *[]Report

	// seq marks the context as sequential: exactly one goroutine is
	// delivering packets, so register transactions may skip their atomic
	// (LOCK-prefixed) forms. Batch workers leave it false. Results are
	// identical either way — the atomic forms are linearizable and the
	// sequential forms never race by construction.
	seq bool

	sw *Switch
}

// Sequential reports whether the context belongs to a single-goroutine
// delivery path (see the seq field).
func (c *Context) Sequential() bool { return c.seq }

// Mirror emits a monitoring report to the context's report sink (the
// switch's buffer, or the caller-owned buffer of a batch worker).
func (c *Context) Mirror(r Report) {
	r.SwitchID = c.sw.ID
	r.TS = c.Pkt.TS
	if c.sink != nil {
		*c.sink = append(*c.sink, r)
		return
	}
	c.sw.reports = append(c.sw.reports, r)
}

// Program is the monitoring logic installed in the pipeline — for Newton
// the module engine; baselines install their own export disciplines.
type Program interface {
	// Execute runs the program over one packet's context.
	Execute(ctx *Context)
}

// DropAction and ForwardAction are the forwarding-table actions.
type (
	// ForwardAction sends the packet out Port.
	ForwardAction struct{ Port int }
	// DropAction discards the packet.
	DropAction struct{}
)

// ActionName implements Action.
func (ForwardAction) ActionName() string { return "forward" }

// ActionName implements Action.
func (DropAction) ActionName() string { return "drop" }

// Counters tracks a switch's packet counters. The switch keeps one
// padded copy per delivery lane so parallel batch workers never bounce a
// shared cacheline; Switch.Counters sums the lanes.
type Counters struct {
	Rx, Tx, Dropped uint64
}

// laneCounters is one lane's private counter block, padded out to a
// cacheline so adjacent lanes never false-share. Each lane is written by
// exactly one goroutine (the Context.Lane discipline) with
// store-after-load atomics: plain MOVs on x86-64 — no LOCK prefix — yet
// race-detector-clean and torn-read-free for concurrent scrapes.
type laneCounters struct {
	rx, tx, dropped uint64
	_               [5]uint64
}

// laneBump increments a single-writer counter without a LOCK prefix
// while keeping concurrent atomic readers exact.
func laneBump(p *uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+1)
}

// Switch models one programmable switch: an L3 forwarding table (the
// "normal packet forwarding" Newton must not disturb), an optional
// monitoring program, mirroring, and liveness (the Sonata baseline takes
// the switch down to reload its P4 program; Newton never does).
type Switch struct {
	ID       string
	Pipeline *Pipeline

	// Forwarding is an LPM table on the destination address. Its entry
	// count drives the Figure 10 interruption experiment.
	Forwarding *Table

	// Monitor is the installed monitoring program (nil = none).
	Monitor Program

	up      bool
	lanes   []laneCounters
	reports []Report

	// ctx is the reusable per-packet context of the sequential Process
	// path; keeping it on the switch stops the Context (and its large
	// PHV) escaping to the heap on every packet. Parallel delivery
	// supplies caller-owned contexts via ProcessCtx instead.
	ctx Context
}

// NewSwitch builds a switch with the given pipeline geometry.
func NewSwitch(id string, stages int, capacity Resources) *Switch {
	return &Switch{
		ID:         id,
		Pipeline:   NewPipeline(stages, capacity),
		Forwarding: NewTable(id+"/ipv4_lpm", MatchLPM, 1, 1<<20),
		up:         true,
		lanes:      make([]laneCounters, 1),
	}
}

// SetLanes sizes the switch's per-lane counter blocks for n delivery
// workers. Call it before parallel delivery starts; counts already
// accumulated are preserved. Contexts whose Lane is outside the sized
// range fall back to lane 0 (with LOCK-prefixed updates, since lane 0
// may then be shared).
func (sw *Switch) SetLanes(n int) {
	if n < 1 {
		n = 1
	}
	if n <= len(sw.lanes) {
		return
	}
	grown := make([]laneCounters, n)
	copy(grown, sw.lanes)
	sw.lanes = grown
}

// Up reports whether the switch is forwarding.
func (sw *Switch) Up() bool { return sw.up }

// SetUp changes the switch's liveness (the reboot model's lever).
func (sw *Switch) SetUp(up bool) { sw.up = up }

// Counters returns the packet counters summed across delivery lanes.
func (sw *Switch) Counters() Counters {
	var c Counters
	for i := range sw.lanes {
		l := &sw.lanes[i]
		c.Rx += atomic.LoadUint64(&l.rx)
		c.Tx += atomic.LoadUint64(&l.tx)
		c.Dropped += atomic.LoadUint64(&l.dropped)
	}
	return c
}

// AddRoute installs a destination route: prefix/plen -> egress port.
func (sw *Switch) AddRoute(prefix uint32, plen int, port int) error {
	mask := uint64(fields.Prefix(fields.DstIP, plen))
	_, err := sw.Forwarding.AddRule(
		[]uint64{uint64(prefix) & mask}, []uint64{mask}, 0, ForwardAction{Port: port})
	return err
}

// Process runs one packet through the switch: parse, monitor, forward.
// It returns the egress port (-1 when dropped) and whether the packet
// was forwarded. Reports generated by the monitor are buffered on the
// switch until DrainReports. Process is single-caller; concurrent
// delivery must use ProcessCtx with caller-owned contexts.
func (sw *Switch) Process(pkt *packet.Packet) (egress int, forwarded bool) {
	sw.ctx.seq = true
	return sw.ProcessCtx(pkt, &sw.ctx)
}

// laneOf resolves the counter block for a context. Lanes above 0 (and
// the sequential lane 0) are single-writer by the Context.Lane contract,
// so their updates skip the LOCK prefix; a parallel caller that never
// assigned lanes lands on lane 0 in shared mode and keeps the exact
// atomic-add discipline.
func (sw *Switch) laneOf(ctx *Context) (lc *laneCounters, shared bool) {
	if l := ctx.Lane; l > 0 && l < len(sw.lanes) {
		return &sw.lanes[l], false
	}
	return &sw.lanes[0], !ctx.seq
}

// ProcessCtx is the re-entrant form of Process: the caller owns the
// execution context (and, through Context.sink, the report buffer), so
// any number of workers can push packets through the same switch
// concurrently — each worker with a distinct Context.Lane. State access
// stays exact: tables are read through immutable snapshots and register
// ALU transactions are linearizable.
func (sw *Switch) ProcessCtx(pkt *packet.Packet, ctx *Context) (egress int, forwarded bool) {
	lc, shared := sw.laneOf(ctx)
	if shared {
		atomic.AddUint64(&lc.rx, 1)
	} else {
		laneBump(&lc.rx)
	}
	if !sw.up {
		sw.drop(lc, shared)
		return -1, false
	}

	if sw.Monitor != nil {
		// Surgical reset instead of a whole-struct clear: KeyBuf is
		// append-only scratch (never read past what the current packet
		// wrote), so re-zeroing its 96 bytes per packet is wasted work.
		// Everything the program can read before writing is reset here.
		ctx.Pkt = pkt
		ctx.sw = sw
		ctx.OutSP = nil
		pkt.FieldsInto(&ctx.PHV.Fields)
		ctx.PHV.Sets[0] = fields.MetadataSet{}
		ctx.PHV.Sets[1] = fields.MetadataSet{}
		ctx.PHV.GlobalResult = 0
		ctx.PHV.QueryID = -1
		ctx.PHV.Step = 0
		ctx.PHV.Stopped = false
		sw.Monitor.Execute(ctx)
		pkt.SP = ctx.OutSP // deparser: attach, forward, or strip the snapshot
	}

	rule := sw.Forwarding.Lookup(uint64(pkt.IP.Dst))
	if rule == nil {
		sw.drop(lc, shared)
		return -1, false
	}
	switch a := rule.Action.(type) {
	case ForwardAction:
		if shared {
			atomic.AddUint64(&lc.tx, 1)
		} else {
			laneBump(&lc.tx)
		}
		return a.Port, true
	default:
		sw.drop(lc, shared)
		return -1, false
	}
}

func (sw *Switch) drop(lc *laneCounters, shared bool) {
	if shared {
		atomic.AddUint64(&lc.dropped, 1)
	} else {
		laneBump(&lc.dropped)
	}
}

// NewBatchContext returns an execution context whose mirrored reports go
// to the given caller-owned buffer — one per batch worker — and whose
// lane index follows the Context.Lane single-writer discipline.
func NewBatchContext(sink *[]Report, lane int) *Context {
	return &Context{sink: sink, Lane: lane}
}

// DrainReports returns and clears the buffered monitoring reports. The
// returned slice is handed off to the caller; allocation-sensitive loops
// should prefer DrainReportsAppend, which reuses the switch's backing
// buffer.
func (sw *Switch) DrainReports() []Report {
	r := sw.reports
	sw.reports = nil
	return r
}

// DrainReportsAppend appends the buffered reports to dst and returns the
// extended slice, keeping the switch's backing buffer for reuse — the
// zero-allocation drain of steady-state delivery loops.
func (sw *Switch) DrainReportsAppend(dst []Report) []Report {
	dst = append(dst, sw.reports...)
	sw.reports = sw.reports[:0]
	return dst
}

// AddReports appends externally collected reports — typically batch
// workers' lane sinks after a window barrier — onto the switch's
// buffered queue so control-plane drains see them alongside the
// sequential path's mirrors. Single-caller, like Process.
func (sw *Switch) AddReports(rs []Report) {
	sw.reports = append(sw.reports, rs...)
}

// PendingReports returns the number of buffered reports without draining.
func (sw *Switch) PendingReports() int { return len(sw.reports) }
