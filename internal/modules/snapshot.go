package modules

import (
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/sketch"
)

// BankKind classifies what sketch structure a state-bank allocation
// realizes, which decides how the analyzer merges per-switch copies.
type BankKind int

const (
	// BankCMSRow is one Count-Min row (reduce): merge by counter-wise sum.
	BankCMSRow BankKind = iota
	// BankBloomRow is one Bloom hash row (distinct): merge by bitwise OR.
	BankBloomRow
)

// String names the bank kind.
func (k BankKind) String() string {
	if k == BankBloomRow {
		return "bloom"
	}
	return "cms"
}

// BankSnapshot is one query sketch row's register allocation captured at
// an epoch boundary, together with the hash configuration that addressed
// it — everything the network-wide analyzer needs to merge per-switch
// copies counter-wise and answer point queries against the merged bank.
type BankSnapshot struct {
	QueryID int      `json:"qid"`
	Part    int      `json:"part"` // cross-switch partition slot, 0 when unpartitioned
	Branch  int      `json:"branch"`
	Row     int      `json:"row"`
	Kind    BankKind `json:"kind"`

	// Algo/Seed/Range reproduce the governing H module; a key's slot in
	// Values is Fold(Algo.Sum(keyBytes, Seed), Range) % Width, exactly
	// the engine's index computation. KeyMask serializes the operation
	// keys into keyBytes.
	Algo    sketch.Algo `json:"algo"`
	Seed    uint32      `json:"seed"`
	Range   uint32      `json:"range"`
	KeyMask fields.Mask `json:"key_mask"`

	// OwnerIndex/OwnerCount record key sharding (§5.1): with sharding
	// active each key's counters live on exactly one switch, so summed
	// banks equal a single unsharded switch's bank.
	OwnerIndex uint32 `json:"owner_index"`
	OwnerCount uint32 `json:"owner_count"`

	Width  uint32   `json:"width"`
	Values []uint32 `json:"values"`
}

// Slot returns the index in Values that the given serialized operation
// keys hash to — the engine's H-then-S index computation replayed.
func (b *BankSnapshot) Slot(keyBytes []byte) uint32 {
	h := b.Algo.Sum(keyBytes, b.Seed)
	var folded uint32
	if b.Range > 0 {
		folded = sketch.Fold(h, b.Range)
	} else {
		folded = h
	}
	return folded % b.Width
}

// SnapshotBanks captures every installed query's state-bank allocations
// at the current epoch — the epoch-boundary export hook of the streaming
// telemetry plane. Call it just before Pipeline.NextEpoch: rolled
// epochs read as zero, so the ending window's state is only observable
// before the roll. Cross-branch reads and pass-through ops own no
// registers and are skipped.
// Under BankPrivate, worker-private lane shards are merged into the
// canonical banks first, so the snapshot — and everything the telemetry
// plane derives from it (Estimate, SeenDistinct, network-wide merges) —
// covers the whole window regardless of worker count.
func (e *Engine) SnapshotBanks() []BankSnapshot {
	e.MergeWorkers()
	var out []BankSnapshot
	for key, p := range e.installed {
		for bi, b := range p.Branches {
			// Walk the chain tracking each metadata set's governing K and
			// H configs, mirroring runBranch's dataflow.
			var curK [2]*KConfig
			var curH [2]*HConfig
			row := 0
			for _, op := range b.Ops {
				set := op.Set & 1
				switch op.Kind {
				case ModK:
					curK[set] = op.K
				case ModH:
					curH[set] = op.H
				case ModS:
					s := op.S
					if s == nil || s.PassThrough || s.CrossRead || s.array == nil {
						continue
					}
					kind := BankCMSRow
					if s.ALU == dataplane.OpOr {
						kind = BankBloomRow
					}
					snap := BankSnapshot{
						QueryID:    key.qid,
						Part:       key.part,
						Branch:     bi,
						Row:        row,
						Kind:       kind,
						OwnerIndex: s.OwnerIndex,
						OwnerCount: s.OwnerCount,
						Width:      s.width,
						Values:     s.array.Snapshot(s.offset, s.width, nil),
					}
					if h := curH[set]; h != nil {
						snap.Algo, snap.Seed, snap.Range = h.Algo, h.Seed, h.Range
					}
					if k := curK[set]; k != nil {
						snap.KeyMask = k.Mask
					}
					out = append(out, snap)
					row++
				}
			}
		}
	}
	return out
}
