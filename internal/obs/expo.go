package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    uint64 `json:"le"` // upper bound; the +Inf bucket is omitted (it equals Count)
	Count uint64 `json:"count"`
}

// Series is one labeled series in a snapshot.
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`

	// Value carries counters and gauges.
	Value float64 `json:"value"`

	// Histogram fields (Type == "histogram").
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Family is one metric family in a snapshot.
type Family struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Help   string   `json:"help,omitempty"`
	Series []Series `json:"series"`
}

// Snapshot is a point-in-time copy of every registered family — the
// JSON exposition format, and the structure newton-ctl top consumes.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Get returns the named family, or nil.
func (s *Snapshot) Get(name string) *Family {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Find returns the first series of the named family whose labels
// include every given pair, or nil.
func (s *Snapshot) Find(name string, labels ...Label) *Series {
	f := s.Get(name)
	if f == nil {
		return nil
	}
	for i := range f.Series {
		ok := true
		for _, l := range labels {
			if f.Series[i].Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return &f.Series[i]
		}
	}
	return nil
}

// Snapshot copies the registry's current state. Callback series are
// evaluated here, so the snapshot reflects scrape time.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := r.sortedFamilies()
	// Copy the series slices under the lock; values are read after, so
	// a slow callback cannot hold the registry lock.
	type famCopy struct {
		f      *family
		series []*series
	}
	copies := make([]famCopy, len(fams))
	for i, f := range fams {
		copies[i] = famCopy{f: f, series: append([]*series(nil), f.series...)}
	}
	r.mu.RUnlock()

	snap := Snapshot{Families: make([]Family, 0, len(copies))}
	for _, fc := range copies {
		out := Family{Name: fc.f.name, Type: fc.f.kind.String(), Help: fc.f.help}
		for _, s := range fc.series {
			var labels map[string]string
			if len(s.labels) > 0 {
				labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					labels[l.Key] = l.Value
				}
			}
			p := Series{Labels: labels}
			if s.h != nil {
				counts, count, sum := s.h.Snapshot()
				p.Count, p.Sum = count, sum
				cum := uint64(0)
				bounds := s.h.Bounds()
				for i, b := range bounds {
					cum += counts[i]
					p.Buckets = append(p.Buckets, Bucket{LE: b, Count: cum})
				}
			} else {
				p.Value = s.value()
			}
			out.Series = append(out.Series, p)
		}
		snap.Families = append(snap.Families, out)
	}
	return snap
}

// WriteJSON renders the registry as the JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// labelString renders {k="v",...} with extra appended (histogram le).
func labelString(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// fmtValue renders a sample value without the exponent notation %v
// would pick for large counters.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := r.sortedFamilies()
	type famCopy struct {
		f      *family
		series []*series
	}
	copies := make([]famCopy, len(fams))
	for i, f := range fams {
		copies[i] = famCopy{f: f, series: append([]*series(nil), f.series...)}
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, fc := range copies {
		f := fc.f
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range fc.series {
			if s.h != nil {
				counts, count, sum := s.h.Snapshot()
				cum := uint64(0)
				for i, bound := range s.h.Bounds() {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(s.labels, fmt.Sprintf(`le="%d"`, bound)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(s.labels, `le="+Inf"`), count)
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, labelString(s.labels, ""), sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(s.labels, ""), count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(s.labels, ""), fmtValue(s.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
