package newton_test

import (
	"fmt"
	"sort"

	"github.com/newton-net/newton"
)

// ExampleCompile shows a query's data-plane footprint: how many module
// instances, physical stages, and table rules the intent costs.
func ExampleCompile() {
	q := newton.Q1(40) // newly opened TCP connections
	p, err := newton.Compile(q, newton.DefaultCompileOptions())
	if err != nil {
		panic(err)
	}
	s := newton.MeasureProgram(q, p)
	fmt.Printf("primitives=%d modules=%d stages=%d rules=%d\n",
		s.Primitives, s.Modules, s.Stages, s.Rules)
	// Output: primitives=4 modules=9 stages=6 rules=10
}

// ExampleNewQuery builds an intent with the Spark-style builder and
// renders it back as query source.
func ExampleNewQuery() {
	q := newton.NewQuery("ssh_watch").
		Filter(newton.Eq(newton.FieldProto, newton.ProtoTCP),
			newton.Eq(newton.FieldDstPort, 22)).
		Map(newton.FieldDstIP).
		ReduceCount(newton.FieldDstIP).
		FilterResultGt(100).
		Build()
	fmt.Println(q.NumPrimitives(), "primitives, threshold", q.Threshold())
	// Output: 4 primitives, threshold 100
}

// ExamplePlaceResilient partitions a 10-stage query over 5-stage
// switches in a fat-tree and shows the redundancy Algorithm 2 buys.
func ExamplePlaceResilient() {
	topo := newton.FatTreeTopology(4)
	pl, parts, err := newton.PlaceResilient(topo, topo.EdgeSwitches(), 10, 5)
	if err != nil {
		panic(err)
	}
	perPart := map[int]int{}
	for _, ps := range pl {
		for _, p := range ps {
			perPart[p]++
		}
	}
	keys := make([]int, 0, len(perPart))
	for k := range perPart {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("%d partitions over %d switches\n", parts, len(pl))
	for _, k := range keys {
		fmt.Printf("partition %d on %d switches\n", k, perPart[k])
	}
	// Output:
	// 2 partitions over 16 switches
	// partition 0 on 8 switches
	// partition 1 on 8 switches
}

// ExampleQueryByName pulls an evaluation query from the Table 2 catalog.
func ExampleQueryByName() {
	q, _ := newton.QueryByName("q6")
	fmt.Println(q.Name, "-", q.Description)
	// Output: q6_syn_flood - Monitor hosts under SYN flood attacks
}

// ExampleParseQuery shows the textual intent DSL operators use through
// newton-ctl.
func ExampleParseQuery() {
	q, err := newton.ParseQuery("ssh_watch",
		"filter(proto == tcp && dport == 22) | map(dip) | reduce(dip, sum) | filter(result > 100)")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.NumPrimitives(), "primitives, threshold", q.Threshold())
	// Output: 4 primitives, threshold 100
}
