package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value pair on a series. Families fix their label
// keys at first registration; every series of a family must carry the
// same keys in the same order (DESIGN.md §10's cardinality rules).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind classifies a family for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled member of a family. Exactly one of the value
// sources is set.
type series struct {
	labels []Label

	c   *Counter
	g   *Gauge
	h   *Histogram
	cfn func() uint64  // callback counter
	gfn func() float64 // callback gauge
}

// value returns the series' scalar value (counters and gauges).
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return float64(s.g.Value())
	case s.cfn != nil:
		return float64(s.cfn())
	case s.gfn != nil:
		return s.gfn()
	}
	return 0
}

// family groups every series sharing one metric name.
type family struct {
	name      string
	help      string
	kind      kind
	labelKeys []string

	series []*series
	index  map[string]*series // label-values key -> series
}

// Registry names instruments into families and renders them. The zero
// value is not usable; call NewRegistry. Registration is expected at
// wiring time (daemon startup, query install), not on the packet path:
// every method takes the registry lock.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// seriesKey joins label values into the family's index key.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(l.Value)
	}
	return b.String()
}

// familyFor returns (creating if needed) the family, enforcing that
// name, kind, and label keys stay consistent. Mismatched reuse of a
// name is a programming error and panics, like expvar's Publish.
func (r *Registry) familyFor(name, help string, k kind, labels []Label) *family {
	f := r.families[name]
	if f == nil {
		keys := make([]string, len(labels))
		for i, l := range labels {
			keys[i] = l.Key
		}
		f = &family{name: name, help: help, kind: k, labelKeys: keys,
			index: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}
	if len(f.labelKeys) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with %d labels (family has %d)",
			name, len(labels), len(f.labelKeys)))
	}
	for i, l := range labels {
		if f.labelKeys[i] != l.Key {
			panic(fmt.Sprintf("obs: metric %q label %d is %q (family has %q)",
				name, i, l.Key, f.labelKeys[i]))
		}
	}
	return f
}

// add registers s under its labels, returning an existing series with
// the same labels instead when one is already registered (get-or-create
// for instrument-backed series; callback series always replace, so a
// reattached subsystem re-binds its closures).
func (f *family) add(s *series) *series {
	key := seriesKey(s.labels)
	if old := f.index[key]; old != nil {
		if s.cfn != nil || s.gfn != nil {
			old.c, old.g, old.h = nil, nil, nil
			old.cfn, old.gfn = s.cfn, s.gfn
		}
		return old
	}
	f.index[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the registered counter for (name, labels), creating
// and registering a new one on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter, labels)
	s := f.add(&series{labels: labels, c: &Counter{}})
	if s.c == nil {
		panic(fmt.Sprintf("obs: metric %q series is callback-backed, not a Counter", name))
	}
	return s.c
}

// Gauge returns the registered gauge for (name, labels), creating and
// registering a new one on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge, labels)
	s := f.add(&series{labels: labels, g: &Gauge{}})
	if s.g == nil {
		panic(fmt.Sprintf("obs: metric %q series is callback-backed, not a Gauge", name))
	}
	return s.g
}

// Histogram returns the registered histogram for (name, labels) with
// the given bucket bounds, creating one on first use.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram, labels)
	s := f.add(&series{labels: labels, h: NewHistogram(bounds)})
	return s.h
}

// RegisterHistogram registers an externally owned histogram — the form
// used when a subsystem creates its instrument before any registry
// exists (e.g. the module engine's execution-time histogram).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram, labels)
	key := seriesKey(labels)
	if old := f.index[key]; old != nil {
		old.h = h
		return
	}
	f.add(&series{labels: labels, h: h})
}

// CounterFunc registers a callback-backed counter series: fn is
// evaluated at exposition time, so subsystems with existing internal
// accounting (ring stats, client retry counts) expose it without
// double bookkeeping. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter, labels)
	f.add(&series{labels: labels, cfn: fn})
}

// GaugeFunc registers a callback-backed gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge, labels)
	f.add(&series{labels: labels, gfn: fn})
}

// Remove drops the series with the given labels from the named family,
// reporting whether it existed — how per-query gauges disappear when
// their query is removed. An empty family stays registered (its HELP
// and TYPE remain, with no series), which Prometheus tolerates.
func (r *Registry) Remove(name string, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return false
	}
	key := seriesKey(labels)
	s := f.index[key]
	if s == nil {
		return false
	}
	delete(f.index, key)
	for i, cand := range f.series {
		if cand == s {
			f.series = append(f.series[:i], f.series[i+1:]...)
			break
		}
	}
	return true
}

// sortedFamilies returns families in name order (stable exposition).
// Caller holds at least the read lock.
func (r *Registry) sortedFamilies() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
