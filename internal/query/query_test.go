package query

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
)

func TestPredicateEval(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    uint64
		want bool
	}{
		{Eq(fields.DstPort, 53), 53, true},
		{Eq(fields.DstPort, 53), 54, false},
		{Gt(Result, 10), 11, true},
		{Gt(Result, 10), 10, false},
		{Lt(fields.PktLen, 100), 99, true},
		{Predicate{Field: fields.PktLen, Op: CmpGe, Value: 5}, 5, true},
		{Predicate{Field: fields.PktLen, Op: CmpLe, Value: 5}, 6, false},
		{Predicate{Field: fields.PktLen, Op: CmpNe, Value: 5}, 6, true},
		{MaskEq(fields.TCPFlags, packet.FlagSYN, packet.FlagSYN), packet.FlagSYN | packet.FlagACK, true},
		{MaskEq(fields.TCPFlags, packet.FlagSYN, packet.FlagSYN), packet.FlagACK, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Errorf("%v.Eval(%d) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestPredicateOnResult(t *testing.T) {
	if !Gt(Result, 1).OnResult() {
		t.Error("Result predicate not recognized")
	}
	if Eq(fields.DstIP, 1).OnResult() {
		t.Error("field predicate misclassified")
	}
}

func TestPredicateString(t *testing.T) {
	if s := Eq(fields.DstPort, 53).String(); s != "dport==53" {
		t.Errorf("String = %q", s)
	}
	if s := Gt(Result, 40).String(); s != "result>40" {
		t.Errorf("String = %q", s)
	}
	if s := MaskEq(fields.TCPFlags, 0x2, 0x2).String(); !strings.Contains(s, "&") {
		t.Errorf("mask String = %q", s)
	}
}

func TestIsFrontFilter(t *testing.T) {
	front := Primitive{Kind: KindFilter, Preds: []Predicate{
		Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)}}
	if !front.IsFrontFilter() {
		t.Error("5-tuple filter should be front-foldable")
	}
	onLen := Primitive{Kind: KindFilter, Preds: []Predicate{Eq(fields.PktLen, 100)}}
	if onLen.IsFrontFilter() {
		t.Error("len filter is not a 5-tuple filter")
	}
	onResult := Primitive{Kind: KindFilter, Preds: []Predicate{Gt(Result, 1)}}
	if onResult.IsFrontFilter() {
		t.Error("result filter cannot fold into newton_init")
	}
	ranged := Primitive{Kind: KindFilter, Preds: []Predicate{Gt(fields.DstPort, 1024)}}
	if ranged.IsFrontFilter() {
		t.Error("range filter cannot fold into ternary newton_init")
	}
	notFilter := Primitive{Kind: KindMap, Keys: fields.Keep(fields.DstIP)}
	if notFilter.IsFrontFilter() {
		t.Error("map is not a filter")
	}
}

func TestBuilderSingleBranch(t *testing.T) {
	q := Q1(40)
	if err := q.Validate(); err != nil {
		t.Fatalf("Q1 invalid: %v", err)
	}
	if q.NumPrimitives() != 4 {
		t.Errorf("Q1 primitives = %d, want 4", q.NumPrimitives())
	}
	if q.Window != 100*time.Millisecond {
		t.Errorf("Q1 window = %v", q.Window)
	}
	if q.Threshold() != 40 {
		t.Errorf("Q1 threshold = %d", q.Threshold())
	}
	want := fields.Keep(fields.DstIP)
	if !q.ReportKeys().Equal(want) {
		t.Errorf("Q1 report keys = %v", q.ReportKeys())
	}
}

func TestAllNineQueriesValid(t *testing.T) {
	qs := All()
	if len(qs) != 9 {
		t.Fatalf("All() = %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", i+1, err)
		}
		if q.Description == "" {
			t.Errorf("Q%d missing description", i+1)
		}
	}
}

func TestCatalogPrimitiveCounts(t *testing.T) {
	// The counts drive Fig. 15's x-axis; pin them so compilation golden
	// numbers stay stable.
	want := []int{4, 6, 6, 6, 6, 12, 8, 10, 8}
	for i, q := range All() {
		if got := q.NumPrimitives(); got != want[i] {
			t.Errorf("Q%d primitives = %d, want %d", i+1, got, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	q, err := ByName("q6")
	if err != nil || q.Name != "q6_syn_flood" {
		t.Errorf("ByName(q6) = %v, %v", q, err)
	}
	q2, err := ByName("q2_ssh_brute")
	if err != nil || q2.Name != "q2_ssh_brute" {
		t.Errorf("ByName by full name failed: %v", err)
	}
	if _, err := ByName("q99"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestMergeLinear(t *testing.T) {
	m := &Merge{Op: MergeLinear, Coeffs: []int64{1, 1, -2}, Cmp: CmpGt, Threshold: 30}
	if got := m.Apply([]uint64{100, 50, 10}); got != 130 {
		t.Errorf("Apply = %d, want 130", got)
	}
	if !m.Triggered(31) || m.Triggered(30) {
		t.Error("Triggered boundary wrong")
	}
	below := &Merge{Op: MergeLinear, Coeffs: []int64{1}, Cmp: CmpLt, Threshold: 5}
	if !below.Triggered(4) || below.Triggered(5) {
		t.Error("CmpLt Triggered wrong")
	}
}

func TestMergeMin(t *testing.T) {
	m := &Merge{Op: MergeMin, Cmp: CmpGt, Threshold: 3}
	if got := m.Apply([]uint64{9, 4, 7}); got != 4 {
		t.Errorf("min = %d", got)
	}
}

func TestMergeDefaultCoeff(t *testing.T) {
	m := &Merge{Op: MergeLinear, Coeffs: nil}
	if got := m.Apply([]uint64{5, 6}); got != 11 {
		t.Errorf("missing coeffs should default to 1: %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mut func(*Query)) *Query {
		q := Q1(40)
		mut(q)
		return q
	}
	bad := map[string]*Query{
		"no name":       mk(func(q *Query) { q.Name = "" }),
		"no branches":   mk(func(q *Query) { q.Branches = nil }),
		"no window":     mk(func(q *Query) { q.Window = 0 }),
		"empty branch":  mk(func(q *Query) { q.Branches = append(q.Branches, Branch{}); q.Merge = &Merge{Op: MergeMin} }),
		"multi nomerge": mk(func(q *Query) { q.Branches = append(q.Branches, q.Branches[0]) }),
		"bad coeffs": mk(func(q *Query) {
			q.Branches = append(q.Branches, q.Branches[0])
			q.Merge = &Merge{Op: MergeLinear, Coeffs: []int64{1}}
		}),
		"empty filter": mk(func(q *Query) { q.Branches[0].Prims[0].Preds = nil }),
		"zero map":     mk(func(q *Query) { q.Branches[0].Prims[1].Keys = fields.Mask{} }),
		"zero reduce":  mk(func(q *Query) { q.Branches[0].Prims[2].Keys = fields.Mask{} }),
		"result filter first": mk(func(q *Query) {
			q.Branches[0].Prims = []Primitive{{Kind: KindFilter, Preds: []Predicate{Gt(Result, 1)}}}
		}),
		"bad reduce value": mk(func(q *Query) { q.Branches[0].Prims[2].Value = 99 }),
	}
	for name, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid query", name)
		}
	}
}

func TestBuilderPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build of invalid query should panic")
		}
	}()
	New("bad").Filter().Build()
}

func TestStatefulKeys(t *testing.T) {
	q := Q4(40)
	got := q.Branches[0].StatefulKeys()
	want := fields.Keep(fields.DstIP)
	if !got.Equal(want) {
		t.Errorf("StatefulKeys = %v, want %v (last stateful prim is reduce on dip)", got, want)
	}
	var empty Branch
	if !empty.StatefulKeys().IsZero() {
		t.Error("empty branch should have zero stateful keys")
	}
}

func TestQueryStringRendering(t *testing.T) {
	s := Q6(30).String()
	for _, want := range []string{"branch 0", "branch 2", "filter", "reduce", "merge"} {
		if !strings.Contains(s, want) {
			t.Errorf("Q6.String() missing %q:\n%s", want, s)
		}
	}
	if s := Q1(40).String(); strings.Contains(s, "branch") {
		t.Error("single-branch query should not print branch headers")
	}
}

func TestPrimitiveStrings(t *testing.T) {
	prims := []Primitive{
		{Kind: KindFilter, Preds: []Predicate{Eq(fields.Proto, 6), Eq(fields.DstPort, 22)}},
		{Kind: KindMap, Keys: fields.Keep(fields.DstIP)},
		{Kind: KindDistinct, Keys: fields.Keep(fields.DstIP, fields.SrcIP)},
		{Kind: KindReduce, Keys: fields.Keep(fields.DstIP), Value: ValueOne},
		{Kind: KindReduce, Keys: fields.Keep(fields.DstIP), Value: fields.PktLen},
	}
	want := []string{
		"filter(proto==6 && dport==22)",
		"map(dip)",
		"distinct(sip, dip)",
		"reduce(keys=(dip), f=sum(1))",
		"reduce(keys=(dip), f=sum(len))",
	}
	for i, pr := range prims {
		if got := pr.String(); got != want[i] {
			t.Errorf("prim %d String = %q, want %q", i, got, want[i])
		}
	}
}

func TestThresholds(t *testing.T) {
	if Q6(30).Threshold() != 30 {
		t.Error("merge threshold not surfaced")
	}
	if Q2(20).Threshold() != 20 {
		t.Error("filter threshold not surfaced")
	}
	noTh := New("x").Map(fields.DstIP).Build()
	if noTh.Threshold() != 0 {
		t.Error("threshold of stateless query should be 0")
	}
	if !noTh.ReportKeys().Equal(fields.Keep(fields.DstIP)) {
		t.Error("stateless report keys should come from map")
	}
}

func TestReportKeysEmptyQuery(t *testing.T) {
	q := &Query{}
	if !q.ReportKeys().IsZero() {
		t.Error("empty query should report zero keys")
	}
}

func TestMergeApplyQuick(t *testing.T) {
	// MergeMin is never larger than any branch result.
	f := func(a, b, c uint32) bool {
		m := &Merge{Op: MergeMin}
		g := m.Apply([]uint64{uint64(a), uint64(b), uint64(c)})
		return g <= int64(a) && g <= int64(b) && g <= int64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindAndCmpStrings(t *testing.T) {
	if KindFilter.String() != "filter" || KindReduce.String() != "reduce" {
		t.Error("prim kind names wrong")
	}
	if PrimKind(9).String() != "prim(9)" {
		t.Error("out-of-range prim kind")
	}
	if CmpGt.String() != ">" || CmpMaskEq.String() != "&==" {
		t.Error("cmp names wrong")
	}
	if CmpOp(99).String() != "cmp(99)" {
		t.Error("out-of-range cmp")
	}
}
