// tracegen synthesizes evaluation workloads and writes them as pcap
// files (nanosecond pcap, readable by standard tooling).
//
// Usage:
//
//	tracegen -out trace.pcap -profile caida -flows 5000 -duration 1s \
//	    -synflood 10.0.0.170:600 -portscan 10.0.0.172:200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/trace"
	"github.com/newton-net/newton/internal/version"
)

func main() {
	var (
		out      = flag.String("out", "trace.pcap", "output pcap path ('-' for stdout)")
		profile  = flag.String("profile", "caida", "traffic profile: caida or mawi")
		flows    = flag.Int("flows", 2000, "background flows")
		duration = flag.Duration("duration", time.Second, "trace duration (virtual)")
		seed     = flag.Int64("seed", 1, "generator seed")

		synflood  = flag.String("synflood", "", "SYN flood overlay as victim:packets")
		udpflood  = flag.String("udpflood", "", "UDP flood overlay as victim:sources")
		portscan  = flag.String("portscan", "", "port scan overlay as victim:ports")
		sshbrute  = flag.String("sshbrute", "", "SSH brute overlay as victim:attempts")
		slowloris = flag.String("slowloris", "", "Slowloris overlay as victim:conns")
		spreader  = flag.String("spreader", "", "super spreader overlay as source:fanout")
		showVers  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVers {
		fmt.Println(version.String("tracegen"))
		return
	}

	cfg := trace.Config{Seed: *seed, Flows: *flows, Duration: *duration}
	switch strings.ToLower(*profile) {
	case "caida":
		cfg.Profile = trace.CAIDA
	case "mawi":
		cfg.Profile = trace.MAWI
	default:
		log.Fatalf("tracegen: unknown profile %q", *profile)
	}

	var overlays []trace.Overlay
	addr := func(spec string) (uint32, int) {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("tracegen: overlay spec %q wants ip:count", spec)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			log.Fatalf("tracegen: bad count in %q: %v", spec, err)
		}
		return packet.IPv4Addr(parts[0]), n
	}
	if *synflood != "" {
		v, n := addr(*synflood)
		overlays = append(overlays, trace.SYNFlood{Victim: v, Packets: n})
	}
	if *udpflood != "" {
		v, n := addr(*udpflood)
		overlays = append(overlays, trace.UDPFlood{Victim: v, Sources: n})
	}
	if *portscan != "" {
		v, n := addr(*portscan)
		overlays = append(overlays, trace.PortScan{Scanner: 0x0B000001, Victim: v, Ports: n})
	}
	if *sshbrute != "" {
		v, n := addr(*sshbrute)
		overlays = append(overlays, trace.SSHBrute{Victim: v, Attempts: n})
	}
	if *slowloris != "" {
		v, n := addr(*slowloris)
		overlays = append(overlays, trace.Slowloris{Victim: v, Conns: n})
	}
	if *spreader != "" {
		v, n := addr(*spreader)
		overlays = append(overlays, trace.SuperSpreader{Source: v, Fanout: n})
	}

	tr := trace.Generate(cfg, overlays...)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WritePcap(w, tr.Packets); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d packets (%s profile, %d overlays) to %s\n",
		len(tr.Packets), cfg.Profile, len(overlays), *out)
}
