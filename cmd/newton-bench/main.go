// newton-bench regenerates the paper's evaluation tables and figures
// from the command line.
//
// Usage:
//
//	newton-bench -list
//	newton-bench -run all
//	newton-bench -run fig12,fig15 -flows 2000 -trials 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		run    = flag.String("run", "all", "comma-separated experiments to run, or 'all'")
		trials = flag.Int("trials", 100, "trials for fig11")
		flows  = flag.Int("flows", 3000, "background flows for trace-driven experiments")
		dur    = flag.Duration("duration", 500*time.Millisecond, "trace duration (virtual time)")
		hops   = flag.Int("hops", 5, "maximum hop count for fig13")
		fseed  = flag.Int64("fault-seed", 1, "seed for the chaos experiment's fault injection")
	)
	flag.Parse()

	suite := map[string]func() fmt.Stringer{
		"chaos":    func() fmt.Stringer { return experiments.ChaosRecovery(experiments.ChaosConfig{Seed: *fseed}) },
		"table3":   func() fmt.Stringer { return experiments.Table3() },
		"ablation": func() fmt.Stringer { return experiments.Ablation() },
		"fig10":    func() fmt.Stringer { return experiments.Fig10Interruption(2000, 40, 20000) },
		"fig11":    func() fmt.Stringer { return experiments.Fig11OperationDelay(*trials) },
		"fig12":    func() fmt.Stringer { return experiments.Fig12Overhead(*flows, *dur) },
		"fig13":    func() fmt.Stringer { return experiments.Fig13CQEOverhead(*hops) },
		"fig14":    func() fmt.Stringer { return experiments.Fig14Accuracy(nil, 3) },
		"fig15":    func() fmt.Stringer { return experiments.Fig15Compilation() },
		"fig16":    func() fmt.Stringer { return experiments.Fig16Multiplexing(nil) },
		"fig17":    func() fmt.Stringer { return experiments.Fig17Placement() },
	}
	names := make([]string, 0, len(suite))
	for n := range suite {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	selected := names
	if *run != "all" {
		selected = strings.Split(*run, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		exp, ok := suite[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "newton-bench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		result := exp()
		fmt.Printf("=== %s (took %v) ===\n%s\n", name, time.Since(start).Round(time.Millisecond), result)
	}
}
