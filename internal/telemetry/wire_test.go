package telemetry_test

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
)

// TestMixedCodecFleet is the interop contract: a JSON-only exporter and
// binary exporters share one analyzer listener, their snapshots merge
// into the same network-wide banks, and their alerts dedup across the
// codec boundary.
func TestMixedCodecFleet(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.Serve(ln)

	dial := func(id string, codec telemetry.Codec) *telemetry.Exporter {
		exp, err := telemetry.Dial(ln.Addr().String(), telemetry.ExporterConfig{
			SwitchID: id, Codec: codec, Policy: telemetry.PolicyBlock,
		})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return exp
	}
	legacy := dial("legacy", telemetry.CodecJSON)
	modern1 := dial("modern1", telemetry.CodecBinary)
	modern2 := dial("modern2", telemetry.CodecAuto)
	defer legacy.Close()
	defer modern1.Close()
	defer modern2.Close()

	// Same (query, window, key) alert from both sides of the codec
	// boundary: one survivor.
	legacy.Export([]dataplane.Report{report(7, 50, 0xAABB)})
	if err := legacy.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "legacy report ingested", func() bool { return svc.Stats().Reports == 1 })
	modern1.Export([]dataplane.Report{report(7, 60, 0xAABB)})
	if err := modern1.Flush(); err != nil {
		t.Fatal(err)
	}
	// Snapshots of the same bank merge counter-wise across codecs.
	for _, exp := range []*telemetry.Exporter{legacy, modern1, modern2} {
		if err := exp.ExportSnapshot(3, []modules.BankSnapshot{cmsBank(7, 10, 0, 5, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all three snapshots merged", func() bool {
		st := svc.Stats()
		return st.Snapshots == 3 && st.Reports == 2
	})

	rows := svc.MergedRows(7, 0, 3)
	if len(rows) != 1 {
		t.Fatalf("merged rows: %d, want 1", len(rows))
	}
	if got := rows[0].Values[0]; got != 30 {
		t.Fatalf("merged counter: %d, want 30 (3 switches x 10)", got)
	}
	if got := len(rows[0].Switches); got != 3 {
		t.Fatalf("contributors merged: %d, want 3", got)
	}
	if got := len(svc.DrainReports()); got != 1 {
		t.Fatalf("deduped alerts: %d, want 1", got)
	}

	// The service saw each stream's negotiated codec and its bytes.
	for id, want := range map[string]string{"legacy": "json", "modern1": "binary", "modern2": "binary"} {
		wi, ok := svc.AgentWire(id)
		if !ok || wi.Codec != want {
			t.Fatalf("agent %s codec = %q (ok=%v), want %q", id, wi.Codec, ok, want)
		}
		if wi.Bytes == 0 {
			t.Fatalf("agent %s: no wire bytes accounted", id)
		}
	}
	st := svc.Stats()
	if st.BinaryAgents != 2 {
		t.Fatalf("BinaryAgents = %d, want 2", st.BinaryAgents)
	}

	// Exporter-side stats agree on the negotiated codec.
	if c := legacy.Stats().Codec; c != "json" {
		t.Fatalf("legacy exporter codec %q", c)
	}
	if c := modern1.Stats().Codec; c != "binary" {
		t.Fatalf("modern1 exporter codec %q", c)
	}
	if c := modern2.Stats().Codec; c != "binary" {
		t.Fatalf("modern2 exporter codec %q", c)
	}
}

// TestAutoFallsBackToJSON: an exporter proposing the binary codec
// against a peer that reads JSON frames but never acks (an old
// analyzer) must fall back to JSON and keep exporting.
func TestAutoFallsBackToJSON(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	var sawReports atomic.Uint64
	go func() { // minimal old-analyzer: JSON frames in, no acks out
		for {
			var f telemetry.Frame
			if err := rpc.ReadFrame(server, &f); err != nil {
				return
			}
			if f.Type == telemetry.FrameReports {
				sawReports.Add(uint64(len(f.Reports)))
			}
		}
	}()
	exp, err := telemetry.NewExporter(client, telemetry.ExporterConfig{
		SwitchID: "sw1", Policy: telemetry.PolicyBlock,
		NegotiateTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if c := exp.Stats().Codec; c != "json" {
		t.Fatalf("codec after fallback = %q, want json", c)
	}
	exp.Export([]dataplane.Report{report(1, 10, 42)})
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "legacy peer received the JSON reports", func() bool {
		return sawReports.Load() == 1
	})
}

// TestCodecBinaryRequiresAck: with CodecBinary, a non-acking peer fails
// construction instead of silently degrading.
func TestCodecBinaryRequiresAck(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		var f telemetry.Frame
		_ = rpc.ReadFrame(server, &f) // consume hello, never ack
	}()
	_, err := telemetry.NewExporter(client, telemetry.ExporterConfig{
		SwitchID: "sw1", Codec: telemetry.CodecBinary,
		NegotiateTimeout: 50 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "binary") {
		t.Fatalf("want negotiation failure naming the binary codec, got %v", err)
	}
}

// TestBinaryReconnectReplaysKeyframe: after an analyzer outage, the
// re-negotiated binary stream must ground the fresh decoder with a
// keyframe replay — no chain breaks — and the delta chain must resume
// on the new stream.
func TestBinaryReconnectReplaysKeyframe(t *testing.T) {
	svc1 := telemetry.NewService(telemetry.ServiceConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc1.Serve(ln)
	addr := ln.Addr().String()

	exp, err := telemetry.Dial(addr, telemetry.ExporterConfig{
		SwitchID: "s1", Codec: telemetry.CodecBinary, Policy: telemetry.PolicyDropOldest,
		ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
		KeyframeEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	// Build a delta chain on the first stream.
	for epoch := uint32(1); epoch <= 3; epoch++ {
		if err := exp.ExportSnapshot(epoch, []modules.BankSnapshot{cmsBank(1, epoch, 2, 3, 4)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "3 snapshots merged", func() bool { return svc1.Stats().Snapshots == 3 })
	wi, _ := svc1.AgentWire("s1")
	if wi.KeyframeFrames != 1 || wi.DeltaFrames != 2 {
		t.Fatalf("first stream frames = %d keyframe / %d delta, want 1/2", wi.KeyframeFrames, wi.DeltaFrames)
	}

	// Analyzer dies and comes back at the same address.
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "exporter notices dead stream", func() bool {
		exp.Export([]dataplane.Report{report(1, 20, 43)})
		exp.Flush()
		return exp.Stats().Dropped > 0
	})
	svc2 := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go svc2.Serve(ln2)

	// The replay must arrive as a keyframe: svc2's decoder has no state,
	// so anything else would be a chain break.
	waitFor(t, "snapshot replayed to new analyzer", func() bool { return svc2.Stats().Snapshots == 1 })
	wi, ok := svc2.AgentWire("s1")
	if !ok || wi.Codec != "binary" {
		t.Fatalf("reconnected stream codec = %q (ok=%v), want binary", wi.Codec, ok)
	}
	if wi.ChainBreaks != 0 {
		t.Fatalf("ChainBreaks = %d after reconnect, want 0", wi.ChainBreaks)
	}
	if wi.KeyframeFrames != 1 {
		t.Fatalf("replay KeyframeFrames = %d, want 1", wi.KeyframeFrames)
	}
	rows := svc2.MergedRows(1, 0, 3)
	if len(rows) != 1 || rows[0].Values[0] != 3 {
		t.Fatalf("replayed rows = %+v, want epoch-3 bank with Values[0]=3", rows)
	}

	// The delta chain resumes against the replayed base.
	if err := exp.ExportSnapshot(4, []modules.BankSnapshot{cmsBank(1, 4, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-reconnect delta merged", func() bool { return svc2.Stats().Snapshots == 2 })
	wi, _ = svc2.AgentWire("s1")
	if wi.DeltaFrames != 1 || wi.ChainBreaks != 0 {
		t.Fatalf("post-reconnect frames = %d delta / %d breaks, want 1/0", wi.DeltaFrames, wi.ChainBreaks)
	}
	rows = svc2.MergedRows(1, 0, 4)
	if len(rows) != 1 || rows[0].Values[0] != 4 {
		t.Fatalf("post-reconnect rows = %+v, want epoch-4 bank with Values[0]=4", rows)
	}
}

// TestAlertDedupMemoryBounded: the dedup map compacts once windows age
// past the retention horizon, so resident keys stay bounded while
// duplicate suppression for recent windows still works.
func TestAlertDedupMemoryBounded(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{
		Window: 100 * time.Nanosecond, KeepAlertWindows: 4,
	})
	defer svc.Close()
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{Policy: telemetry.PolicyBlock}, nil)
	defer exp.Close()

	// 40k unique (window, key) alerts marching forward in time: without
	// compaction the dedup map would hold all of them.
	const total = 40000
	batch := make([]dataplane.Report, 0, 100)
	for i := 0; i < total; i++ {
		batch = append(batch, report(1, uint64(i)*100, uint64(i)))
		if len(batch) == cap(batch) {
			exp.Export(batch)
			batch = batch[:0]
		}
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all reports ingested", func() bool { return svc.Stats().Reports == total })
	if keys := svc.Stats().DedupKeys; keys >= total/2 {
		t.Fatalf("dedup keys not compacted: %d resident of %d total", keys, total)
	}
	// Recent-window dedup still works after compaction.
	exp.Export([]dataplane.Report{report(1, uint64(total-1)*100, uint64(total-1))})
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "duplicate suppressed", func() bool { return svc.Stats().DuplicateAlerts == 1 })
}

// TestRemoveReleasesMergedBanks: SetExpected(qid, nil) — the Remove
// path — frees the query's merged banks and epoch bookkeeping.
func TestRemoveReleasesMergedBanks(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	exp := connect(t, svc, "sw1", telemetry.ExporterConfig{}, nil)
	defer exp.Close()

	if err := exp.ExportSnapshot(1, []modules.BankSnapshot{cmsBank(9, 1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := exp.ExportSnapshot(1, []modules.BankSnapshot{cmsBank(8, 4, 5, 6)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshots merged", func() bool { return svc.Stats().Snapshots == 2 })
	if rows := svc.MergedRows(9, 0, 1); len(rows) != 1 {
		t.Fatalf("merged rows before remove: %d", len(rows))
	}
	svc.SetExpected(9, nil)
	if rows := svc.MergedRows(9, 0, 1); len(rows) != 0 {
		t.Fatalf("merged rows after remove: %d, want 0", len(rows))
	}
	// Other queries are untouched.
	if rows := svc.MergedRows(8, 0, 1); len(rows) != 1 {
		t.Fatalf("unrelated query's rows after remove: %d, want 1", len(rows))
	}
}
