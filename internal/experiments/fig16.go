package experiments

import (
	"fmt"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
)

// Fig16Row is one concurrency level of the Fig. 16 comparison: resource
// consumption when N copies of Q4 run concurrently.
type Fig16Row struct {
	Queries int

	// Sonata chains the queries in its pipeline: tables and stages grow
	// linearly.
	SonataTables, SonataStages int

	// S-Newton chains the copies over the same traffic: modules and
	// stages grow linearly (every copy needs its own chain).
	SNewtonModules, SNewtonStages int

	// P-Newton multiplexes: the copies monitor different traffic, so
	// they share the same modules and stages and only add table rules.
	PNewtonModules, PNewtonStages, PNewtonRules int
}

// Fig16Result is the resource-multiplexing evaluation.
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16Multiplexing evaluates 1..maxN concurrent copies of Q4. The
// P-Newton rows are measured by actually installing the copies (with
// distinct traffic classes) into one compact layout.
func Fig16Multiplexing(levels []int) *Fig16Result {
	if len(levels) == 0 {
		levels = []int{1, 10, 25, 50, 75, 100}
	}
	q := query.Q4(40)
	o := compiler.AllOpts()
	o.QID = 1
	one, err := compiler.Compile(q, o)
	if err != nil {
		panic(err)
	}
	oneStats := compiler.Measure(q, one)
	sonataTables, sonataStages := compiler.SonataEstimate(q)

	res := &Fig16Result{}
	for _, n := range levels {
		row := Fig16Row{
			Queries:        n,
			SonataTables:   n * sonataTables,
			SonataStages:   n * sonataStages,
			SNewtonModules: n * oneStats.Modules,
			SNewtonStages:  n * oneStats.Stages,
		}
		// P-Newton: install n copies for disjoint traffic classes into a
		// single layout and read the real footprint back.
		layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<16)
		if err != nil {
			panic(err)
		}
		eng := modules.NewEngine(layout)
		for i := 0; i < n; i++ {
			oi := compiler.AllOpts()
			oi.QID = i + 1
			oi.Width = 256 // modest per-copy registers so 100 copies fit
			p, err := compiler.Compile(q, oi)
			if err != nil {
				panic(err)
			}
			// Disjoint traffic classes: each copy monitors one /16.
			for _, b := range p.Branches {
				b.Init.Values[1] = uint64(i) << 16
				b.Init.Masks[1] = 0xFFFF0000
			}
			if err := eng.Install(p); err != nil {
				panic(fmt.Sprintf("installing copy %d: %v", i, err))
			}
		}
		row.PNewtonModules = oneStats.Modules // shared module instances
		row.PNewtonStages = oneStats.Stages
		row.PNewtonRules = layout.TotalRuleEntries()
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the Fig. 16 series.
func (r *Fig16Result) String() string {
	t := &table{header: []string{"Queries",
		"Sonata tbl", "Sonata stg",
		"S-Newton mod", "S-Newton stg",
		"P-Newton mod", "P-Newton stg", "P-Newton rules"}}
	for _, row := range r.Rows {
		t.add(i2s(row.Queries),
			i2s(row.SonataTables), i2s(row.SonataStages),
			i2s(row.SNewtonModules), i2s(row.SNewtonStages),
			i2s(row.PNewtonModules), i2s(row.PNewtonStages), i2s(row.PNewtonRules))
	}
	return "Fig. 16: resource multiplexing over concurrent Q4 copies\n" + t.String()
}
