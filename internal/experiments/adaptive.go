// The adaptive-accuracy experiment closes the loop ROADMAP item (4)
// asks for: an intent declares a target relative error instead of a
// width, the fleet frugal-starts at the narrowest rung, and the
// refiner — fed by the analyzer's per-epoch error bounds — walks the
// width ladder as a shifting Zipf workload moves through calm, surge,
// and calm phases. The run audits the closed-loop properties that
// matter: convergence back under tolerance within R rounds of every
// shift, strictly less provisioned memory than the static worst-case
// configuration, zero oscillation (flaps) on the phase boundaries, a
// stable qid across every in-place resize, and clean provenance (the
// merged results never mix contributions across widths or switches).
package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/topology"
)

// adaptiveQ1 is the accuracy-driven intent under test.
const adaptiveQ1 = "q1_new_tcp_connections"

// AdaptiveConfig parameterizes the closed-loop run. The zero value is
// the CI-sized experiment.
type AdaptiveConfig struct {
	// Seed drives the Zipf workload and client jitter (default 1).
	Seed int64
	// Switches sizes the linear fleet (default 3). The adaptive query
	// lives on s1; the others host nothing and prove resize locality.
	Switches int
	// RoundsPerPhase is how many traffic rounds (= epochs) each of the
	// three phases lasts (default 12).
	RoundsPerPhase int
	// ConvergeWithin is R: after a phase shift the observed error must
	// be back under tolerance — and stay there — within this many
	// rounds (default 6).
	ConvergeWithin int
	// TargetRelErr is the intent's declared error tolerance
	// (default 0.25), relative to Threshold.
	TargetRelErr float64
	// Threshold is Q1's report threshold, which doubles as the error
	// scale (default 50).
	Threshold uint64
	// CalmPackets/SurgePackets are SYN packets per round in the calm
	// and surge phases (defaults 2000 and 12000).
	CalmPackets  int
	SurgePackets int
	// MinWidth/MaxWidth bound the width ladder (defaults 256 and
	// 8192). MaxWidth is also the static worst-case provisioning the
	// adaptive run is charged against.
	MinWidth, MaxWidth uint32
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Switches == 0 {
		c.Switches = 3
	}
	if c.RoundsPerPhase == 0 {
		c.RoundsPerPhase = 12
	}
	if c.ConvergeWithin == 0 {
		c.ConvergeWithin = 6
	}
	if c.TargetRelErr == 0 {
		c.TargetRelErr = 0.25
	}
	if c.Threshold == 0 {
		c.Threshold = 50
	}
	if c.CalmPackets == 0 {
		c.CalmPackets = 2000
	}
	if c.SurgePackets == 0 {
		c.SurgePackets = 12000
	}
	if c.MinWidth == 0 {
		c.MinWidth = 256
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 8192
	}
	return c
}

// AdaptiveRound is one row of the target-vs-observed trajectory.
type AdaptiveRound struct {
	Round    int    // 1-based across the whole run
	Phase    string // calm / surge / calm2
	Epoch    uint32
	Width    uint32  // width that produced this epoch's banks
	Observed float64 // analyzer error bound (CMS rel-err vs bloom FPP max)
	Settled  bool    // all contributors merged, no width transition
	InBand   bool    // Observed <= target
	Events   []string
}

// AdaptiveResult is the run's trajectory, metrics, and verdict.
// Violations collects every failed assertion; an empty list is a pass.
type AdaptiveResult struct {
	Seed                         int64
	Rounds, RoundsPerPhase       int
	ConvergeWithin               int
	Target                       float64
	Trajectory                   []AdaptiveRound
	ConvergedIn                  map[string]int // phase -> rounds until stably in band
	Widens, Narrows, Resizes     int
	Flaps, Rejects               int
	FinalWidth                   uint32
	AdaptiveWidthSum             uint64 // provisioned width summed over rounds
	StaticWidthSum               uint64 // MaxWidth summed over rounds
	MemRatio                     float64
	ProvenanceMixups, QIDChanges int
	Violations                   []string
}

// Passed reports whether every closed-loop property held.
func (r *AdaptiveResult) Passed() bool { return len(r.Violations) == 0 }

// Metrics flattens the result for the bench harness's JSON record.
func (r *AdaptiveResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"rounds":            float64(r.Rounds),
		"target_rel_err":    r.Target,
		"widens":            float64(r.Widens),
		"narrows":           float64(r.Narrows),
		"resizes":           float64(r.Resizes),
		"flaps":             float64(r.Flaps),
		"rejects":           float64(r.Rejects),
		"final_width":       float64(r.FinalWidth),
		"mem_ratio":         r.MemRatio,
		"provenance_mixups": float64(r.ProvenanceMixups),
		"qid_changes":       float64(r.QIDChanges),
		"violations":        float64(len(r.Violations)),
	}
	for ph, n := range r.ConvergedIn {
		m["converge_rounds_"+ph] = float64(n)
	}
	return m
}

func (r *AdaptiveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive accuracy: seed %d, %d rounds (%d/phase), target rel-err %.3g\n",
		r.Seed, r.Rounds, r.RoundsPerPhase, r.Target)
	fmt.Fprintf(&b, "%-6s %-6s %-6s %-7s %-9s %-8s %s\n",
		"round", "phase", "epoch", "width", "observed", "in-band", "events")
	for _, row := range r.Trajectory {
		obs := fmt.Sprintf("%.4f", row.Observed)
		if !row.Settled {
			obs += "*"
		}
		band := "yes"
		if !row.InBand {
			band = "NO"
		}
		fmt.Fprintf(&b, "%-6d %-6s %-6d %-7d %-9s %-8s %s\n",
			row.Round, row.Phase, row.Epoch, row.Width, obs, band,
			strings.Join(row.Events, "; "))
	}
	b.WriteString("(* = transition/partial epoch: estimate shown, never drives control)\n")
	phases := make([]string, 0, len(r.ConvergedIn))
	for ph := range r.ConvergedIn {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		fmt.Fprintf(&b, "converged[%s] = round %d of phase (budget %d)\n",
			ph, r.ConvergedIn[ph], r.ConvergeWithin)
	}
	fmt.Fprintf(&b, "resizes %d (widen %d, narrow %d), flaps %d, rejects %d, final width %d\n",
		r.Resizes, r.Widens, r.Narrows, r.Flaps, r.Rejects, r.FinalWidth)
	fmt.Fprintf(&b, "memory: adaptive %d width-rounds vs static %d (ratio %.3f)\n",
		r.AdaptiveWidthSum, r.StaticWidthSum, r.MemRatio)
	fmt.Fprintf(&b, "provenance mixups %d, qid changes %d\n", r.ProvenanceMixups, r.QIDChanges)
	if r.Passed() {
		b.WriteString("PASS\n")
	} else {
		fmt.Fprintf(&b, "FAIL (%d violations)\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

// adaptiveNet is the three-switch fleet the experiment drives: netsim
// dataplanes fronted by RPC agents, exporters streaming into one
// analyzer, and the orchestrator+refiner pair on top.
type adaptiveNet struct {
	net    *netsim.Network
	h1, h2 int
	svc    *telemetry.Service
	svcLn  net.Listener
	ctl    *controller.Remote
	orch   *orchestrator.Orchestrator

	s1Layout interface{ Epoch() uint32 }

	agents  []*rpc.Agent
	clients []*rpc.Client
	exps    []*telemetry.Exporter
	lns     []net.Listener
}

func newAdaptiveNet(cfg AdaptiveConfig) (*adaptiveNet, error) {
	topo, h1, h2 := topology.Linear(cfg.Switches)
	n, err := netsim.New(topo, netsim.Config{Stages: 8, ArraySize: 1 << 14})
	if err != nil {
		return nil, err
	}
	an := &adaptiveNet{
		net: n, h1: h1, h2: h2,
		svc: telemetry.NewService(telemetry.ServiceConfig{KeepEpochs: 8}),
	}
	an.svcLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go an.svc.Serve(an.svcLn)
	svcAddr := an.svcLn.Addr().String()

	clients := map[string]*rpc.Client{}
	budgets := map[string]scheduler.Budget{}
	for i, id := range topo.Switches() {
		node := n.Node(id)
		name := node.DP.ID
		agent := rpc.NewAgent(node.DP, node.Eng)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, an.close(err)
		}
		go agent.Serve(ln)
		an.agents, an.lns = append(an.agents, agent), append(an.lns, ln)

		c, err := rpc.DialOptions(ln.Addr().String(), rpc.Options{
			Timeout: 250 * time.Millisecond, Retries: 3,
			BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, an.close(err)
		}
		clients[name] = c
		an.clients = append(an.clients, c)

		redial := func() (net.Conn, error) { return net.Dial("tcp", svcAddr) }
		conn, err := redial()
		if err != nil {
			return nil, an.close(err)
		}
		exp, err := telemetry.NewExporter(conn, telemetry.ExporterConfig{
			SwitchID: name, Redial: redial, Policy: telemetry.PolicyDropOldest,
			ReconnectMin: time.Millisecond, ReconnectMax: 20 * time.Millisecond,
		})
		if err != nil {
			conn.Close()
			return nil, an.close(err)
		}
		exp.AttachAgent(agent, node.Eng)
		an.exps = append(an.exps, exp)

		budgets[name] = scheduler.Budget{Stages: 8, ArraySize: 1 << 14, RulesPerModule: 256}
		if name == "s1" {
			an.s1Layout = node.Eng.Layout()
		}
	}

	an.ctl = controller.NewRemote(clients, cfg.Seed)
	an.ctl.AttachTelemetry(an.svc)
	an.orch, err = orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, an.ctl)
	if err != nil {
		return nil, an.close(err)
	}
	return an, nil
}

// close tears the fleet down and passes cause through for one-line
// error returns.
func (an *adaptiveNet) close(cause error) error {
	for _, e := range an.exps {
		e.Close()
	}
	for _, c := range an.clients {
		c.Close()
	}
	for _, a := range an.agents {
		a.Close()
	}
	for _, ln := range an.lns {
		ln.Close()
	}
	an.svc.Close()
	an.svcLn.Close()
	return cause
}

// waitMerged blocks until the analyzer has merged every expected
// contributor of qid's epoch (the epoch may still be marked partial by
// a width transition — that is the point of the transition flag).
func (an *adaptiveNet) waitMerged(qid int, epoch uint32) bool {
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, missing, merged := an.svc.EpochStatus(qid, epoch)
		if merged > 0 && len(missing) == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Adaptive runs the closed-loop accuracy experiment: calm -> surge ->
// calm Zipf SYN workload against one accuracy-declared intent, with
// the refiner walking the width ladder from the analyzer's error
// bounds.
func Adaptive(cfg AdaptiveConfig) *AdaptiveResult {
	cfg = cfg.withDefaults()
	res := &AdaptiveResult{
		Seed: cfg.Seed, Rounds: 3 * cfg.RoundsPerPhase,
		RoundsPerPhase: cfg.RoundsPerPhase, ConvergeWithin: cfg.ConvergeWithin,
		Target: cfg.TargetRelErr, ConvergedIn: map[string]int{},
	}
	fail := func(format string, args ...any) *AdaptiveResult {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		return res
	}

	an, err := newAdaptiveNet(cfg)
	if err != nil {
		return fail("fleet build: %v", err)
	}
	defer an.close(nil)

	an.orch.SetIntents([]orchestrator.Intent{
		{Query: query.Q1(cfg.Threshold), Priority: 2,
			MinWidth: cfg.MinWidth, MaxWidth: cfg.MaxWidth, Edges: []string{"s1"},
			Accuracy: query.Accuracy{MaxRelErr: cfg.TargetRelErr}},
		// A static neighbor on the same switch: resizes of q1 must
		// never disturb it.
		{Query: query.Q4(3), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"}},
	})
	if _, _, err := an.orch.Converge(); err != nil {
		return fail("initial converge: %v", err)
	}
	qid1 := an.orch.QID(adaptiveQ1)
	if qid1 == 0 {
		return fail("q1 not deployed")
	}
	if w := an.orch.Deployed()[adaptiveQ1].Width; w != cfg.MinWidth {
		return fail("frugal start width = %d, want %d", w, cfg.MinWidth)
	}
	ref := orchestrator.NewRefiner(an.orch, an.svc, orchestrator.RefinerConfig{})

	rng := rand.New(rand.NewSource(cfg.Seed))
	// The surge shifts both volume and the Zipf hot set: a different
	// victim base plus a heavier tail.
	type phase struct {
		name string
		pkts int
		base uint32
		zipf *rand.Zipf
	}
	phases := []phase{
		{"calm", cfg.CalmPackets, 0x0A000000, rand.NewZipf(rng, 1.2, 1, 511)},
		{"surge", cfg.SurgePackets, 0x0A400000, rand.NewZipf(rng, 1.1, 1, 1023)},
		{"calm2", cfg.CalmPackets, 0x0A000000, rand.NewZipf(rng, 1.2, 1, 511)},
	}
	lastBad := map[string]int{} // phase -> last 1-based in-phase round observed out of band

	var ts uint64
	for round := 0; round < res.Rounds; round++ {
		ph := phases[round/cfg.RoundsPerPhase]
		inPhase := round%cfg.RoundsPerPhase + 1
		epoch := an.s1Layout.Epoch()
		width := an.orch.Deployed()[adaptiveQ1].Width

		for i := 0; i < ph.pkts; i++ {
			// Virtual timestamps stay far inside one netsim window so
			// epoch rolls come only from the controller tick below.
			ts++
			pkt := &packet.Packet{
				TS: ts,
				IP: packet.IPv4{TTL: 64, Proto: packet.ProtoTCP,
					Src: 0x0B000000 + uint32(rng.Intn(1<<16)),
					Dst: ph.base + uint32(ph.zipf.Uint64())},
				TCP: &packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)),
					DstPort: 80, Flags: packet.FlagSYN, Window: 65535},
			}
			an.net.Deliver(pkt, an.h1, an.h2)
		}
		if err := an.ctl.Tick(); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("round %d: tick: %v", round+1, err))
		}
		if !an.waitMerged(qid1, epoch) {
			res.Violations = append(res.Violations, fmt.Sprintf("round %d: epoch %d never merged", round+1, epoch))
			continue
		}

		rep, err := ref.Step()
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("round %d: refine: %v", round+1, err))
		}

		qa, ok := an.svc.ObservedAccuracy(qid1, epoch, cfg.Threshold)
		row := AdaptiveRound{Round: round + 1, Phase: ph.name, Epoch: epoch, Width: width}
		if ok {
			row.Width = qa.Width
			row.Observed = qa.Observed()
			row.Settled = !qa.Partial
			row.InBand = row.Observed <= cfg.TargetRelErr
		}
		for _, e := range rep.Events {
			row.Events = append(row.Events, e.String())
			if e.Action == "reject" {
				res.Rejects++
			}
		}
		if row.Settled && !row.InBand {
			lastBad[ph.name] = inPhase
		}
		res.AdaptiveWidthSum += uint64(row.Width)
		res.StaticWidthSum += uint64(cfg.MaxWidth)
		res.Trajectory = append(res.Trajectory, row)

		// A resize must never re-deploy: the qid is the provenance key.
		if got := an.orch.QID(adaptiveQ1); got != qid1 {
			res.QIDChanges++
			res.Violations = append(res.Violations,
				fmt.Sprintf("round %d: qid changed %d -> %d", round+1, qid1, got))
			qid1 = got
		}
		for _, sw := range an.svc.Contributors(qid1) {
			if sw != "s1" {
				res.ProvenanceMixups++
				res.Violations = append(res.Violations,
					fmt.Sprintf("round %d: contributor %s never hosted q1", round+1, sw))
			}
		}
	}

	// Convergence verdict: the phase is converged from the round after
	// its last settled out-of-band observation.
	for _, ph := range phases {
		res.ConvergedIn[ph.name] = lastBad[ph.name] + 1
		if res.ConvergedIn[ph.name] > cfg.ConvergeWithin {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"phase %s converged in %d rounds, budget %d",
				ph.name, res.ConvergedIn[ph.name], cfg.ConvergeWithin))
		}
	}
	for _, st := range ref.States() {
		if st.Query != adaptiveQ1 {
			continue
		}
		res.Widens, res.Narrows = st.Widens, st.Narrows
		res.Resizes, res.Flaps = st.Resizes, st.Flaps
	}
	if res.Flaps != 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("refiner flapped %d times", res.Flaps))
	}
	res.FinalWidth = an.orch.Deployed()[adaptiveQ1].Width
	if res.StaticWidthSum > 0 {
		res.MemRatio = float64(res.AdaptiveWidthSum) / float64(res.StaticWidthSum)
	}
	if res.MemRatio >= 1 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"adaptive used %.3fx static worst-case memory, want < 1", res.MemRatio))
	}
	// The run must END within tolerance at the adapted width.
	var lastSettled *AdaptiveRound
	for i := range res.Trajectory {
		if res.Trajectory[i].Settled {
			lastSettled = &res.Trajectory[i]
		}
	}
	if lastSettled == nil {
		res.Violations = append(res.Violations, "no settled epochs observed")
	} else if !lastSettled.InBand {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"final settled observation %.4f exceeds tolerance %.4f",
			lastSettled.Observed, cfg.TargetRelErr))
	}
	return res
}
