package controller

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
)

// Remote is the Newton controller speaking to switch agents over the
// control channel (internal/rpc) instead of in-process engines — the
// shape of a real deployment, where the controller is "a module of the
// centralized network controller or ... an independent process" (§7).
type Remote struct {
	agents map[string]*rpc.Client
	rng    *rand.Rand

	nextQID     int
	deployments map[int][]string // qid -> agent names

	// svc, when attached, replaces per-agent report polling: agents push
	// reports to the analyzer service and Collect drains the merged,
	// network-wide-deduplicated stream instead.
	svc *telemetry.Service
}

// NewRemote builds a controller over named agent connections.
func NewRemote(agents map[string]*rpc.Client, seed int64) *Remote {
	return &Remote{
		agents: agents, rng: rand.New(rand.NewSource(seed)),
		nextQID: 1, deployments: map[int][]string{},
	}
}

// Install compiles a query and pushes it to the named agents (all
// agents when names is nil). Returns the assigned QID and the modeled
// operation latency (per-switch batches run in parallel; the slowest
// bounds the delay).
func (r *Remote) Install(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	if len(names) == 0 {
		for n := range r.agents {
			names = append(names, n)
		}
	}
	qid := r.nextQID
	var done []string
	undo := func() {
		for _, n := range done {
			_ = r.agents[n].Remove(qid)
		}
	}
	maxRules := 0
	for _, n := range names {
		c, ok := r.agents[n]
		if !ok {
			undo()
			return 0, 0, fmt.Errorf("controller: no agent %q", n)
		}
		o := compiler.AllOpts()
		o.QID = qid
		o.Width = width
		p, err := compiler.Compile(q, o)
		if err != nil {
			undo()
			return 0, 0, err
		}
		if err := c.Install(p); err != nil {
			undo()
			return 0, 0, fmt.Errorf("controller: agent %q: %w", n, err)
		}
		done = append(done, n)
		if rules := p.RuleCount() + 1; rules > maxRules {
			maxRules = rules
		}
	}
	r.nextQID++
	r.deployments[qid] = done
	f := 0.9 + 0.2*r.rng.Float64()
	delay := time.Duration(float64(installBase+time.Duration(maxRules)*installPerRule) * f)
	return qid, delay, nil
}

// Remove uninstalls a deployment from every agent holding it.
func (r *Remote) Remove(qid int) error {
	names, ok := r.deployments[qid]
	if !ok {
		return fmt.Errorf("controller: no deployment %d", qid)
	}
	for _, n := range names {
		if err := r.agents[n].Remove(qid); err != nil {
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	delete(r.deployments, qid)
	return nil
}

// Tick rolls the evaluation window on every agent (the controller's
// 100 ms heartbeat).
func (r *Remote) Tick() error {
	for n, c := range r.agents {
		if err := c.NextEpoch(); err != nil {
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	return nil
}

// AttachTelemetry switches the controller's report path from polling to
// push: agents stream reports and epoch snapshots to svc, and Collect
// drains svc's deduplicated alert stream instead of round-robin polling
// every agent. Install/Remove/Tick keep using the control channel.
func (r *Remote) AttachTelemetry(svc *telemetry.Service) { r.svc = svc }

// InstallSharded compiles q once per agent with key sharding (§5.1):
// agent i owns keys whose owner hash ≡ i mod len(names), so the agents
// partition the key space and the analyzer's merged banks reconstruct
// the network-wide view. Names nil shards across all agents (in sorted
// order, so shard indices are deterministic).
func (r *Remote) InstallSharded(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	if len(names) == 0 {
		for n := range r.agents {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	qid := r.nextQID
	var done []string
	undo := func() {
		for _, n := range done {
			_ = r.agents[n].Remove(qid)
		}
	}
	maxRules := 0
	for i, n := range names {
		c, ok := r.agents[n]
		if !ok {
			undo()
			return 0, 0, fmt.Errorf("controller: no agent %q", n)
		}
		o := compiler.AllOpts()
		o.QID = qid
		o.Width = width
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(names))
		p, err := compiler.Compile(q, o)
		if err != nil {
			undo()
			return 0, 0, err
		}
		if err := c.Install(p); err != nil {
			undo()
			return 0, 0, fmt.Errorf("controller: agent %q: %w", n, err)
		}
		done = append(done, n)
		if rules := p.RuleCount() + 1; rules > maxRules {
			maxRules = rules
		}
	}
	r.nextQID++
	r.deployments[qid] = done
	f := 0.9 + 0.2*r.rng.Float64()
	delay := time.Duration(float64(installBase+time.Duration(maxRules)*installPerRule) * f)
	return qid, delay, nil
}

// Collect returns new reports: the merged push-based stream when a
// telemetry service is attached, otherwise a poll over every agent.
func (r *Remote) Collect() ([]dataplane.Report, error) {
	if r.svc != nil {
		return r.svc.DrainReports(), nil
	}
	var out []dataplane.Report
	for n, c := range r.agents {
		rs, err := c.DrainReports()
		if err != nil {
			return nil, fmt.Errorf("controller: agent %q: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}
