package telemetry_test

import (
	"net"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/telemetry"
)

// benchExporter wires an exporter to a live service over loopback TCP
// (net.Pipe when the sandbox forbids sockets) and hands both back.
func benchExporter(b *testing.B, policy telemetry.Policy, codec telemetry.Codec) (*telemetry.Exporter, *telemetry.Service) {
	b.Helper()
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	cfg := telemetry.ExporterConfig{SwitchID: "bench", Policy: policy, Codec: codec}
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
		go svc.Serve(ln)
		exp, err := telemetry.Dial(ln.Addr().String(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		return exp, svc
	}
	server, client := net.Pipe()
	go svc.HandleConn(server)
	exp, err := telemetry.NewExporter(client, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return exp, svc
}

// BenchmarkReportExport measures sustained push throughput through the
// full stack — ring, batcher, wire codec, stream, service ingest — for
// both stream encodings, and certifies zero loss under the block
// policy. The binary rows also report bytes per exported report.
func BenchmarkReportExport(b *testing.B) {
	batch := make([]dataplane.Report, 64)
	for i := range batch {
		var keys fields.Vector
		keys.Set(fields.DstIP, uint64(0x0A000000+i))
		batch[i] = dataplane.Report{
			SwitchID: "bench", QueryID: 1, TS: uint64(i),
			Keys: keys, KeyMask: fields.Keep(fields.DstIP), State: uint64(i),
		}
	}

	for _, codec := range []telemetry.Codec{telemetry.CodecJSON, telemetry.CodecBinary} {
		for _, policy := range []telemetry.Policy{telemetry.PolicyBlock, telemetry.PolicyDropOldest} {
			b.Run(codec.String()+"/"+policy.String(), func(b *testing.B) {
				exp, svc := benchExporter(b, policy, codec)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					exp.Export(batch)
				}
				if err := exp.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()

				st := exp.Stats()
				total := uint64(b.N) * uint64(len(batch))
				if st.Enqueued != total {
					b.Fatalf("enqueued %d of %d", st.Enqueued, total)
				}
				if policy == telemetry.PolicyBlock {
					if st.Dropped != 0 {
						b.Fatalf("block policy dropped %d reports", st.Dropped)
					}
					if st.Exported != total {
						b.Fatalf("exported %d of %d under block policy", st.Exported, total)
					}
				} else if st.Exported+st.Dropped != total {
					b.Fatalf("loss accounting: exported %d + dropped %d != %d", st.Exported, st.Dropped, total)
				}
				if s := b.Elapsed().Seconds(); s > 0 {
					b.ReportMetric(float64(st.Exported)/s, "reports/s")
					b.ReportMetric(float64(st.Dropped), "dropped")
				}
				if st.Exported > 0 {
					b.ReportMetric(float64(st.WireBytes)/float64(st.Exported), "wireB/report")
				}
				exp.Close()
				svc.Close()
			})
		}
	}
}
