// Package telemetry is Newton's streaming telemetry plane: the
// push-based export path that replaces poll-only report draining. A
// switch-side Exporter drains mirrored reports and epoch-boundary
// state-bank snapshots into a bounded ring, batches them, and pushes
// length-framed messages over a dedicated TCP stream with explicit
// backpressure; an analyzer-side Service accepts many agent streams
// concurrently, merges per-switch sketch banks network-wide (Count-Min
// rows counter-wise, Bloom rows bitwise), deduplicates threshold alerts
// across switches, and serves merged results to subscribers.
//
// This is the software half the paper's evaluation assumes (switches
// "mirror" reports and result snapshots to a software analyzer, §5/§6.4)
// and Sonata builds as a streaming system: data-plane tuples in,
// network-wide answers out.
package telemetry

import (
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
)

// Frame types carried on the telemetry stream. Frames reuse the control
// channel's length-framed JSON encoding (rpc.WriteFrame/rpc.ReadFrame),
// so one wire discipline serves both planes.
const (
	// FrameHello opens a stream: the agent announces its switch ID.
	FrameHello = "hello"
	// FrameReports carries a batch of mirrored reports.
	FrameReports = "reports"
	// FrameSnapshot carries the epoch-boundary state-bank snapshots of
	// every installed query on the sending switch.
	FrameSnapshot = "snapshot"
	// FrameBye closes a stream cleanly, carrying the exporter's final
	// counters so the analyzer can account for loss explicitly.
	FrameBye = "bye"
)

// Frame is one telemetry-stream message.
type Frame struct {
	Type     string `json:"type"`
	SwitchID string `json:"switch_id,omitempty"`

	// Epoch tags snapshot frames with the register epoch that just
	// ended (the window the snapshot captures).
	Epoch uint32 `json:"epoch,omitempty"`

	Reports   []dataplane.Report     `json:"reports,omitempty"`
	Snapshots []modules.BankSnapshot `json:"snapshots,omitempty"`

	// Stats rides on bye frames: the exporter's final counters, shared
	// with the control channel's export_stats response type.
	Stats *rpc.ExportStats `json:"stats,omitempty"`
}
