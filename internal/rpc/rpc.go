// Package rpc is the control channel between the Newton controller and
// switch agents — the role P4Runtime plays on real Tofino deployments.
// It carries compiled programs, rule operations, window-epoch ticks, and
// report drains over TCP as length-framed JSON messages, using only the
// standard library.
//
// The same length-framed encoding (WriteFrame/ReadFrame) carries the
// streaming telemetry plane (internal/telemetry): agents push report
// batches and epoch snapshots to the analyzer over a dedicated stream
// using these frames, and the control channel exposes the exporter's
// counters via the ExportStats request.
//
// A switch-side Agent wraps a module engine; a controller-side Client
// dials it:
//
//	agent := rpc.NewAgent(sw, eng)
//	go agent.Serve(listener)
//	...
//	c, _ := rpc.Dial(addr)
//	c.Install(program)
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
)

// MaxFrame bounds one message (a compiled program is a few KB; a report
// drain or telemetry batch a few hundred KB at worst).
const MaxFrame = 8 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame in either
// direction: an outbound message that would not fit, or an inbound
// header announcing an oversized body (a poisoned or misframed peer).
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// ErrMalformedResponse is returned when the agent answers OK but the
// response is missing the payload the request implies (e.g. a stats
// reply without stats).
var ErrMalformedResponse = errors.New("rpc: malformed response: missing payload")

// Message types.
const (
	typeInstall     = "install"
	typeRemove      = "remove"
	typeStats       = "stats"
	typeDrain       = "drain_reports"
	typeEpoch       = "next_epoch"
	typeExportStats = "export_stats"
)

// Request is one controller → agent message.
type Request struct {
	Type    string           `json:"type"`
	QID     int              `json:"qid,omitempty"`
	Program *modules.Program `json:"program,omitempty"`
}

// Stats is the agent's rule/program accounting.
type Stats struct {
	RuleEntries int `json:"rule_entries"`
	Installed   int `json:"installed"`
}

// ExportStats is the telemetry exporter's counter snapshot — a frame
// type shared between the control channel (the export_stats request)
// and the telemetry stream's final accounting frame.
type ExportStats struct {
	Enqueued  uint64 `json:"enqueued"`  // reports offered to the export ring
	Exported  uint64 `json:"exported"`  // reports written to the stream
	Dropped   uint64 `json:"dropped"`   // reports lost to drop-oldest overflow
	Overflows uint64 `json:"overflows"` // ring-full events (blocks or drops)
	Batches   uint64 `json:"batches"`   // report frames written
	Snapshots uint64 `json:"snapshots"` // state-bank snapshot frames written
}

// Response is one agent → controller message.
type Response struct {
	OK      bool               `json:"ok"`
	Error   string             `json:"error,omitempty"`
	Stats   *Stats             `json:"stats,omitempty"`
	Export  *ExportStats       `json:"export,omitempty"`
	Reports []dataplane.Report `json:"reports,omitempty"`
}

// WriteFrame sends one length-prefixed JSON message.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: outbound frame of %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame receives one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: inbound frame of %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decoding: %w", err)
	}
	return nil
}

// Agent is the switch-side control endpoint.
type Agent struct {
	mu  sync.Mutex
	sw  *dataplane.Switch
	eng *modules.Engine

	// OnEpoch, when set, runs on every next_epoch request before the
	// register windows roll — the telemetry exporter's chance to snapshot
	// the ending epoch's state banks (their values read as zero once the
	// epoch advances). It runs under the agent's dispatch lock, so it is
	// ordered with installs and drains.
	OnEpoch func()

	// ExportStatsFn, when set, serves the export_stats request — wired to
	// the telemetry exporter's Stats method when one is attached.
	ExportStatsFn func() ExportStats

	// OnError, when set, receives connection-level errors that are not
	// clean shutdowns (EOF, closed connections). When nil such errors are
	// counted but otherwise dropped; ConnErrors exposes the count.
	OnError func(error)

	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	ln        net.Listener
	closed    bool
	connErrs  uint64
	servingWG sync.WaitGroup
}

// NewAgent wraps a switch and its module engine.
func NewAgent(sw *dataplane.Switch, eng *modules.Engine) *Agent {
	return &Agent{sw: sw, eng: eng, conns: map[net.Conn]struct{}{}}
}

// Serve accepts controller connections until the listener closes (or
// Close is called).
func (a *Agent) Serve(ln net.Listener) error {
	a.connMu.Lock()
	if a.closed {
		a.connMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	a.ln = ln
	a.servingWG.Add(1)
	a.connMu.Unlock()
	defer a.servingWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.HandleConn(conn)
		}()
	}
}

// track registers a live connection; it reports false when the agent is
// already closed (the connection must not be served).
func (a *Agent) track(conn net.Conn) bool {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	if a.closed {
		return false
	}
	a.conns[conn] = struct{}{}
	return true
}

func (a *Agent) untrack(conn net.Conn) {
	a.connMu.Lock()
	delete(a.conns, conn)
	a.connMu.Unlock()
}

// surfaceErr routes a non-clean connection error to the error callback.
func (a *Agent) surfaceErr(err error) {
	a.connMu.Lock()
	a.connErrs++
	cb := a.OnError
	a.connMu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// ConnErrors returns how many connections ended with a non-clean error.
func (a *Agent) ConnErrors() uint64 {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	return a.connErrs
}

// cleanConnErr reports whether err is an expected way for a control
// connection to end: the peer hung up or the socket was closed under us.
func cleanConnErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed)
}

// HandleConn serves one controller connection (exported so tests can
// drive net.Pipe ends directly). Errors other than a clean peer
// shutdown are surfaced through OnError instead of being swallowed.
func (a *Agent) HandleConn(conn net.Conn) {
	if !a.track(conn) {
		conn.Close()
		return
	}
	defer func() {
		a.untrack(conn)
		conn.Close()
	}()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !cleanConnErr(err) {
				a.surfaceErr(fmt.Errorf("rpc: agent read: %w", err))
			}
			return
		}
		resp := a.dispatch(&req)
		if err := WriteFrame(conn, resp); err != nil {
			if !cleanConnErr(err) {
				a.surfaceErr(fmt.Errorf("rpc: agent write: %w", err))
			}
			return
		}
	}
}

// Close shuts the agent down: the listener stops accepting, every live
// connection is closed, and Close blocks until all handler goroutines
// have drained. The agent cannot be reused afterwards.
func (a *Agent) Close() error {
	a.connMu.Lock()
	if a.closed {
		a.connMu.Unlock()
		return nil
	}
	a.closed = true
	ln := a.ln
	conns := make([]net.Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	a.servingWG.Wait()
	a.wg.Wait()
	return nil
}

func (a *Agent) dispatch(req *Request) *Response {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch req.Type {
	case typeInstall:
		if req.Program == nil {
			return &Response{Error: "install without program"}
		}
		if err := a.eng.Install(req.Program); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case typeRemove:
		if err := a.eng.Remove(req.QID); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case typeStats:
		return &Response{OK: true, Stats: &Stats{
			RuleEntries: a.eng.Layout().TotalRuleEntries(),
			Installed:   a.eng.InstalledCount(),
		}}
	case typeDrain:
		return &Response{OK: true, Reports: a.sw.DrainReports()}
	case typeEpoch:
		if a.OnEpoch != nil {
			a.OnEpoch()
		}
		a.eng.Layout().Pipeline().NextEpoch()
		return &Response{OK: true}
	case typeExportStats:
		if a.ExportStatsFn == nil {
			return &Response{Error: "no telemetry exporter attached"}
		}
		st := a.ExportStatsFn()
		return &Response{OK: true, Export: &st}
	}
	return &Response{Error: fmt.Sprintf("unknown request type %q", req.Type)}
}

// Client is the controller-side endpoint.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to an agent's TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing agent: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one end of net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: agent: %s", resp.Error)
	}
	return &resp, nil
}

// Install loads a compiled program into the remote engine.
func (c *Client) Install(p *modules.Program) error {
	_, err := c.roundTrip(&Request{Type: typeInstall, Program: p})
	return err
}

// Remove uninstalls a query by QID.
func (c *Client) Remove(qid int) error {
	_, err := c.roundTrip(&Request{Type: typeRemove, QID: qid})
	return err
}

// Stats fetches the remote rule/program counts.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&Request{Type: typeStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("%w: stats", ErrMalformedResponse)
	}
	return *resp.Stats, nil
}

// ExportStats fetches the agent's telemetry-exporter counters.
func (c *Client) ExportStats() (ExportStats, error) {
	resp, err := c.roundTrip(&Request{Type: typeExportStats})
	if err != nil {
		return ExportStats{}, err
	}
	if resp.Export == nil {
		return ExportStats{}, fmt.Errorf("%w: export stats", ErrMalformedResponse)
	}
	return *resp.Export, nil
}

// DrainReports pulls and clears the remote report buffer.
func (c *Client) DrainReports() ([]dataplane.Report, error) {
	resp, err := c.roundTrip(&Request{Type: typeDrain})
	if err != nil {
		return nil, err
	}
	return resp.Reports, nil
}

// NextEpoch rolls the remote register windows (the controller's 100 ms
// tick).
func (c *Client) NextEpoch() error {
	_, err := c.roundTrip(&Request{Type: typeEpoch})
	return err
}
