package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
)

// Parse builds a query from the textual intent DSL used by newton-ctl
// and operator tooling. A query is a pipeline of primitives:
//
//	filter(proto == tcp && tcp_flags == syn) | map(dip) |
//	    reduce(dip, sum) | filter(result > 40)
//
// Multi-branch queries separate branches with ";" and close with a
// merge clause — the Fig. 6 style. Q6 (SYN-flood victims) in the DSL:
//
//	filter(proto == tcp && tcp_flags == syn)    | map(dip) | reduce(dip, sum) | filter(result > 0) ;
//	filter(proto == tcp && tcp_flags == synack) | map(sip) | reduce(sip, sum) | filter(result > 0) ;
//	filter(proto == tcp && tcp_flags == ack)    | map(dip) | reduce(dip, sum) | filter(result > 0) ;
//	merge(1, 1, -2 > 30)
//
// Grammar:
//
//	query    = branch { ";" branch } [ ";" merge ]
//	branch   = stage { "|" stage }
//	stage    = filter | map | distinct | reduce | window
//	filter   = "filter" "(" pred { "&&" pred } ")"
//	pred     = field cmp value
//	cmp      = "==" | "!=" | ">" | ">=" | "<" | "<="
//	map      = "map" "(" keys ")"
//	distinct = "distinct" "(" keys ")"
//	reduce   = "reduce" "(" keys [ "," "sum" [ "(" field ")" ] ] ")"
//	window   = "window" "(" duration ")"
//	merge    = "merge" "(" ( "min" | coeff { "," coeff } ) cmp int ")"
//	keys     = key { "," key }
//	key      = field [ "/" prefixlen ]
//	coeff    = [ "-" ] int
//
// Fields use the global field-set names (sip, dip, proto, sport, dport,
// tcp_flags, len, ttl, ...), plus the pseudo-field "result". Values are
// integers, dotted-quad IPv4 addresses, protocol names (tcp, udp, icmp),
// or TCP flag names (syn, ack, fin, rst, synack).
func Parse(name, src string) (*Query, error) {
	p := &parser{toks: lex(src), src: src}
	b := New(name)
	firstBranch := true
	for !p.done() {
		if !firstBranch {
			if !p.accept(";") {
				break
			}
			if p.peek() == "merge" {
				p.next()
				if err := p.mergeClause(b); err != nil {
					return nil, err
				}
				break
			}
			b.Branch()
		}
		firstBranch = false
		firstStage := true
		for {
			if !firstStage {
				if !p.accept("|") {
					break
				}
			}
			firstStage = false
			if err := p.stage(b); err != nil {
				return nil, err
			}
		}
	}
	if !p.done() {
		return nil, p.errf("unexpected %q", p.peek())
	}
	var q *Query
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("query: %v", r)
			}
		}()
		q = b.Build()
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []string
	pos  int
	src  string

	// merge-clause scratch (threshold and comparison).
	mergeTh  int64
	mergeCmp CmpOp
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return "<end>"
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(t string) bool {
	if p.peek() == t {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(t string) error {
	if !p.accept(t) {
		return p.errf("expected %q, found %q", t, p.peek())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: parsing %q: %s", p.src, fmt.Sprintf(format, args...))
}

// lex splits the source into tokens: identifiers/numbers, punctuation,
// and multi-character operators.
func lex(src string) []string {
	var toks []string
	i := 0
	isWord := func(c byte) bool {
		return c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			j := i
			for j < len(src) && isWord(src[j]) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", ">=", "<=", "&&":
				toks = append(toks, two)
				i += 2
			default:
				toks = append(toks, string(c))
				i++
			}
		}
	}
	return toks
}

func (p *parser) stage(b *Builder) error {
	switch kw := p.next(); kw {
	case "filter":
		return p.filterStage(b)
	case "map":
		m, err := p.keysArg()
		if err != nil {
			return err
		}
		b.MapMask(m)
		return nil
	case "distinct":
		m, err := p.keysArg()
		if err != nil {
			return err
		}
		b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindDistinct, Keys: m})
		return nil
	case "reduce":
		return p.reduceStage(b)
	case "window":
		if err := p.expect("("); err != nil {
			return err
		}
		d, err := time.ParseDuration(p.next())
		if err != nil {
			return p.errf("bad window duration: %v", err)
		}
		b.Window(d)
		return p.expect(")")
	default:
		return p.errf("unknown primitive %q", kw)
	}
}

func (p *parser) filterStage(b *Builder) error {
	if err := p.expect("("); err != nil {
		return err
	}
	var preds []Predicate
	for {
		pred, err := p.pred()
		if err != nil {
			return err
		}
		preds = append(preds, pred)
		if !p.accept("&&") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	b.Filter(preds...)
	return nil
}

func (p *parser) pred() (Predicate, error) {
	fieldTok := p.next()
	var f fields.ID
	if fieldTok == "result" {
		f = Result
	} else {
		var err error
		f, err = fields.ParseID(fieldTok)
		if err != nil {
			return Predicate{}, p.errf("unknown field %q", fieldTok)
		}
	}
	op := p.next()
	cmp, ok := map[string]CmpOp{
		"==": CmpEq, "!=": CmpNe, ">": CmpGt, ">=": CmpGe, "<": CmpLt, "<=": CmpLe,
	}[op]
	if !ok {
		return Predicate{}, p.errf("unknown comparison %q", op)
	}
	valTok := p.next()
	v, err := parseValue(f, valTok)
	if err != nil {
		return Predicate{}, p.errf("%v", err)
	}
	// TCP flag names match the flag bit ternarily (syn matches syn+ece
	// etc. would be wrong for the catalog, so names mean exact equality;
	// use masked forms in Go code when needed).
	return Predicate{Field: f, Op: cmp, Value: v}, nil
}

// parseValue resolves a literal: integer, dotted quad, protocol name, or
// flag name.
func parseValue(f fields.ID, tok string) (uint64, error) {
	if n, err := strconv.ParseUint(tok, 0, 64); err == nil {
		return n, nil
	}
	if strings.Count(tok, ".") == 3 {
		defer func() { recover() }() // fall through on bad quad
		return uint64(packet.IPv4Addr(tok)), nil
	}
	named := map[string]uint64{
		"tcp": packet.ProtoTCP, "udp": packet.ProtoUDP, "icmp": packet.ProtoICMP,
		"syn": packet.FlagSYN, "ack": packet.FlagACK, "fin": packet.FlagFIN,
		"rst": packet.FlagRST, "synack": packet.FlagSYN | packet.FlagACK,
		"finack": packet.FlagFIN | packet.FlagACK,
	}
	if v, ok := named[strings.ToLower(tok)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("cannot parse value %q for field %v", tok, f)
}

// keysArg parses "( key {, key} )" into a mask, supporting prefix
// notation like sip/24.
func (p *parser) keysArg() (fields.Mask, error) {
	var m fields.Mask
	if err := p.expect("("); err != nil {
		return m, err
	}
	for {
		id, err := fields.ParseID(p.next())
		if err != nil {
			return m, p.errf("%v", err)
		}
		bits := id.MaxValue()
		if p.accept("/") {
			plen, err := strconv.Atoi(p.next())
			if err != nil {
				return m, p.errf("bad prefix length: %v", err)
			}
			bits = fields.Prefix(id, plen)
		}
		m = m.WithBits(id, bits)
		if !p.accept(",") {
			break
		}
	}
	return m, p.expect(")")
}

// mergeClause parses "( min cmp int )" or "( coeff {, coeff} cmp int )"
// after the "merge" keyword.
func (p *parser) mergeClause(b *Builder) error {
	if err := p.expect("("); err != nil {
		return err
	}
	cmpOf := func(tok string) (CmpOp, bool) {
		switch tok {
		case ">":
			return CmpGt, true
		case "<":
			return CmpLt, true
		}
		return 0, false
	}
	parseTh := func(cmp CmpOp) error {
		th, err := strconv.ParseInt(p.next(), 0, 64)
		if err != nil {
			return p.errf("bad merge threshold: %v", err)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if cmp == CmpGt {
			// MergeMin handled by caller via builder; linear too.
			_ = th
		}
		p.mergeTh, p.mergeCmp = th, cmp
		return nil
	}
	if p.accept("min") {
		cmp, ok := cmpOf(p.next())
		if !ok || cmp != CmpGt {
			return p.errf("merge(min ...) supports only >")
		}
		if err := parseTh(cmp); err != nil {
			return err
		}
		b.MergeMin(p.mergeTh)
		return nil
	}
	var coeffs []int64
	for {
		neg := p.accept("-")
		c, err := strconv.ParseInt(p.next(), 0, 64)
		if err != nil {
			return p.errf("bad merge coefficient: %v", err)
		}
		if neg {
			c = -c
		}
		coeffs = append(coeffs, c)
		if p.accept(",") {
			continue
		}
		break
	}
	cmp, ok := cmpOf(p.next())
	if !ok {
		return p.errf("merge wants > or < before the threshold")
	}
	if err := parseTh(cmp); err != nil {
		return err
	}
	b.MergeLinear(coeffs, cmp, p.mergeTh)
	return nil
}

func (p *parser) reduceStage(b *Builder) error {
	if err := p.expect("("); err != nil {
		return err
	}
	var m fields.Mask
	for {
		id, err := fields.ParseID(p.next())
		if err != nil {
			return p.errf("%v", err)
		}
		bits := id.MaxValue()
		if p.accept("/") {
			plen, aerr := strconv.Atoi(p.next())
			if aerr != nil {
				return p.errf("bad prefix length: %v", aerr)
			}
			bits = fields.Prefix(id, plen)
		}
		m = m.WithBits(id, bits)
		if p.accept(",") {
			if p.peek() == "sum" {
				break
			}
			continue
		}
		break
	}
	value := ValueOne
	if p.accept("sum") {
		if p.accept("(") {
			id, err := fields.ParseID(p.next())
			if err != nil {
				return p.errf("%v", err)
			}
			value = id
			if err := p.expect(")"); err != nil {
				return err
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	b.branch.Prims = append(b.branch.Prims, Primitive{Kind: KindReduce, Keys: m, Value: value})
	return nil
}
