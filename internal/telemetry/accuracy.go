package telemetry

import (
	"math"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/sketch"
)

// QueryAccuracy is the analyzer's per-epoch estimate of how wrong a
// query's merged answer can be, derived from the merged bank geometry
// and the measured stream total — the feedback signal the refiner
// closes the loop on. All bounds are computed over the NETWORK-WIDE
// merge: the Count-Min guarantee ε·N holds for the summed rows with N
// the total stream across every contributing switch, never a single
// contributor's share.
type QueryAccuracy struct {
	Epoch uint32

	// StreamTotal is the measured N of the merged stream: the largest
	// per-row counter sum across the query's Count-Min banks (every row
	// of a sketch counts each update exactly once, so any row's sum is
	// the update total; max is robust to rows from narrower shards).
	StreamTotal uint64

	// Scale is the denominator RelErr was computed against: the
	// caller-supplied decision scale (a report threshold, typically),
	// or StreamTotal itself when the caller passed zero.
	Scale uint64

	// Count-Min bound of the weakest merged row group: with probability
	// 1-Delta every point estimate overcounts by at most AbsErr =
	// Eps·StreamTotal, i.e. RelErr = AbsErr/Scale.
	Eps     float64
	Delta   float64
	AbsErr  float64
	RelErr  float64
	Width   uint32 // narrowest merged Count-Min row width
	CMSRows int    // rows in the weakest Count-Min group

	// FPP is the worst distinct-filter false-positive probability across
	// the query's Bloom groups, estimated from the merged fill ratios:
	// a lookup passes a row with probability ≈ its fraction of set
	// slots, and must pass every row.
	FPP       float64
	BloomRows int

	// Partial and Transition mirror EpochStatus: the estimate is
	// advisory when contributors are missing or the epoch straddles a
	// width resize, and the refiner must not act on it.
	Partial    bool
	Transition bool

	bloomFills []float64 // worst group's per-row fills, for prediction
}

// Observed is the single figure the refiner compares against an
// intent's MaxRelErr: the worse of the Count-Min relative error and the
// distinct-filter false-positive probability.
func (qa QueryAccuracy) Observed() float64 {
	return math.Max(qa.RelErr, qa.FPP)
}

// PredictedAtWidth projects the observed error onto a hypothetical row
// width w, assuming the same stream: Count-Min error scales inversely
// with width, and each Bloom row's fill ratio scales inversely with
// width (capped at saturation). Used by the refiner to decide whether a
// narrower deployment would still meet its target before paying for the
// resize.
func (qa QueryAccuracy) PredictedAtWidth(w uint32) float64 {
	if w == 0 {
		return math.Inf(1)
	}
	var rel float64
	if qa.Width > 0 {
		rel = qa.RelErr * float64(qa.Width) / float64(w)
	}
	fpp := 0.0
	if len(qa.bloomFills) > 0 && qa.Width > 0 {
		factor := float64(qa.Width) / float64(w)
		fpp = 1.0
		for _, f := range qa.bloomFills {
			fpp *= math.Min(1, f*factor)
		}
	}
	return math.Max(rel, fpp)
}

// groupKey buckets a query's merged banks into independent sketch
// instances: one Count-Min (or one Bloom filter) per query partition
// and plan branch, whose rows share a width and count the same stream.
type groupKey struct{ part, branch int }

// ObservedAccuracy computes the error estimate for query qid at epoch
// from the merged banks. scale is the decision denominator for RelErr
// (a report threshold); zero means "relative to the stream total". The
// second return is false when no merged banks exist for (qid, epoch).
func (s *Service) ObservedAccuracy(qid int, epoch uint32, scale uint64) (QueryAccuracy, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	type cmsGroup struct {
		n     uint64 // max per-row counter sum = merged stream total
		width uint32 // narrowest row
		rows  int
	}
	cms := map[groupKey]*cmsGroup{}
	bloom := map[groupKey][]float64{}

	found := false
	for bk, byEpoch := range s.merged {
		if bk.qid != qid {
			continue
		}
		m, ok := byEpoch[epoch]
		if !ok {
			continue
		}
		found = true
		gk := groupKey{bk.part, bk.branch}
		switch m.Kind {
		case modules.BankCMSRow:
			var sum uint64
			for _, v := range m.Values {
				sum += v
			}
			g := cms[gk]
			if g == nil {
				g = &cmsGroup{width: m.Width}
				cms[gk] = g
			}
			g.rows++
			if sum > g.n {
				g.n = sum
			}
			if m.Width < g.width {
				g.width = m.Width
			}
		case modules.BankBloomRow:
			nonzero := 0
			for _, v := range m.Values {
				if v != 0 {
					nonzero++
				}
			}
			bloom[gk] = append(bloom[gk], sketch.BloomRowFill(nonzero, m.Width))
		}
	}
	if !found {
		return QueryAccuracy{}, false
	}

	qa := QueryAccuracy{Epoch: epoch}
	for _, g := range cms {
		if g.n > qa.StreamTotal {
			qa.StreamTotal = g.n
		}
		abs := sketch.CMSAbsError(g.width, g.n)
		if abs > qa.AbsErr || qa.Width == 0 {
			qa.AbsErr = abs
			qa.Width = g.width
			qa.CMSRows = g.rows
			qa.Eps = math.E / float64(g.width)
			qa.Delta = math.Exp(-float64(g.rows))
		}
	}
	for _, fills := range bloom {
		fpp := sketch.BloomFPPFromFills(fills)
		if fpp > qa.FPP || qa.BloomRows == 0 {
			qa.FPP = fpp
			qa.BloomRows = len(fills)
			qa.bloomFills = append([]float64(nil), fills...)
		}
	}

	qa.Scale = scale
	if qa.Scale == 0 {
		qa.Scale = qa.StreamTotal
	}
	if qa.Scale > 0 {
		qa.RelErr = qa.AbsErr / float64(qa.Scale)
	}
	qa.Partial = len(s.missingLocked(qid, epoch)) > 0
	qa.Transition = s.transitionLocked(qid, epoch)
	qa.Partial = qa.Partial || qa.Transition
	return qa, true
}

// LatestSettledEpoch returns the newest epoch of query qid whose merge
// is settled — every expected contributor delivered and the epoch does
// not straddle a width resize — so the refiner only ever acts on
// complete evidence. The second return is false when no such epoch
// exists yet.
func (s *Service) LatestSettledEpoch(qid int) (uint32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var best uint32
	ok := false
	seen := map[uint32]bool{}
	for bk, byEpoch := range s.merged {
		if bk.qid != qid {
			continue
		}
		for epoch := range byEpoch {
			if seen[epoch] {
				continue
			}
			seen[epoch] = true
			if len(s.missingLocked(qid, epoch)) > 0 || s.transitionLocked(qid, epoch) {
				continue
			}
			if !ok || epoch > best {
				best, ok = epoch, true
			}
		}
	}
	return best, ok
}
