package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/newton-net/newton/internal/rpc"
)

func randStats(rng *rand.Rand) rpc.ExportStats {
	st := rpc.ExportStats{
		Enqueued: rng.Uint64() >> 1, Exported: rng.Uint64() >> 1,
		Dropped: uint64(rng.Intn(100)), Overflows: uint64(rng.Intn(10)),
		Batches: uint64(rng.Intn(1000)), Snapshots: uint64(rng.Intn(100)),
		Reconnects: uint64(rng.Intn(5)),
		WireBytes:  rng.Uint64() >> 1, DeltaBanks: uint64(rng.Intn(1000)),
	}
	if rng.Intn(2) == 0 {
		st.Codec = "binary"
	}
	return st
}

// FuzzWireRoundTrip drives the codec from both directions with one
// corpus. The fuzz input's first byte picks the mode, the second seeds
// a generator, and the rest is raw material:
//
//   - even modes: the remaining bytes are treated as hostile wire input
//     and fed to every decoder (frame reader, report/snapshot/bye
//     payload decoders, decompressor, and a mid-chain snapshot
//     decoder). Anything may be rejected — with a typed error — but
//     nothing may panic.
//   - odd modes: the seed generates a structured value for one frame
//     kind, which must survive encode → frame → unframe → decode
//     bit-exactly, including a delta chain for snapshots.
func FuzzWireRoundTrip(f *testing.F) {
	for seed := byte(0); seed < 8; seed++ {
		f.Add([]byte{seed, seed * 31, 0xAA, 0x55, 0x00, 0xFF})
	}
	// A well-formed frame prefix, for the mutator to corrupt.
	rng := rand.New(rand.NewSource(1))
	payload := AppendReports(nil, "s1", genReports(rng, "s1"))
	var frame bytes.Buffer
	_ = WriteFrame(&frame, KindReports, 0, payload)
	f.Add(append([]byte{0, 1}, frame.Bytes()...))
	var enc SnapshotEncoder
	snapPayload, _ := enc.Encode(nil, 3, genBanks(rng, 2, 16))
	f.Add(append([]byte{2, 7}, snapPayload...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		mode, seed, raw := data[0], data[1], data[2:]
		if mode%2 == 0 {
			fuzzDecoders(raw)
			return
		}
		fuzzRoundTrip(t, mode, seed)
	})
}

// fuzzDecoders throws raw bytes at every decode surface; only typed
// rejection or clean success is acceptable.
func fuzzDecoders(raw []byte) {
	_, _, _ = ReadFrame(bytes.NewReader(raw))
	_, _ = DecodeReports(raw, "s1")
	_, _ = DecodeBye(raw)
	_, _ = Decompress(raw)

	var dec SnapshotDecoder
	_, _, _ = dec.Decode(raw)

	// A decoder mid-chain must also survive hostile deltas.
	rng := rand.New(rand.NewSource(99))
	var enc SnapshotEncoder
	keyframe, _ := enc.Encode(nil, 1, genBanks(rng, 2, 16))
	var warm SnapshotDecoder
	if _, _, err := warm.Decode(keyframe); err == nil {
		_, _, _ = warm.Decode(raw)
	}
}

func fuzzRoundTrip(t *testing.T, mode, seed byte) {
	rng := rand.New(rand.NewSource(int64(seed)))
	switch mode % 8 {
	case 1, 5: // reports
		rs := genReports(rng, "fuzz-switch")
		payload := AppendReports(nil, "fuzz-switch", rs)
		got, err := DecodeReports(reframe(t, KindReports, 0, payload), "fuzz-switch")
		if err != nil {
			t.Fatalf("reports: %v", err)
		}
		if len(rs) != len(got) || (len(rs) > 0 && !reflect.DeepEqual(rs, got)) {
			t.Fatalf("reports round trip mismatch (%d in, %d out)", len(rs), len(got))
		}
	case 3: // snapshot delta chain
		enc := SnapshotEncoder{KeyframeEvery: 1 + int(seed%4)}
		var dec SnapshotDecoder
		banks := genBanks(rng, 1+rng.Intn(4), 8+rng.Intn(56))
		for epoch := uint32(1); epoch < 6; epoch++ {
			payload, flags := enc.Encode(nil, epoch, banks)
			_, got, err := dec.Decode(reframe(t, KindSnapshot, flags, payload))
			if err != nil {
				t.Fatalf("snapshot epoch %d: %v", epoch, err)
			}
			if len(got) != len(banks) {
				t.Fatalf("snapshot epoch %d: %d banks, want %d", epoch, len(got), len(banks))
			}
			for i := range banks {
				w, g := banks[i], got[i]
				for j := range w.Values {
					if w.Values[j] != g.Values[j] {
						t.Fatalf("snapshot epoch %d bank %d cell %d: want %d got %d",
							epoch, i, j, w.Values[j], g.Values[j])
					}
				}
			}
			banks = evolve(rng, banks)
		}
	case 7: // bye, with compression over the frame path
		st := randStats(rng)
		payload, err := AppendBye(nil, st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBye(reframe(t, KindBye, 0, payload))
		if err != nil {
			t.Fatalf("bye: %v", err)
		}
		if got != st {
			t.Fatalf("bye round trip: want %+v got %+v", st, got)
		}
	}
}

// reframe pushes a payload through write → read, compressing when the
// gate fires, and returns the decoded payload — the full wire path.
func reframe(t *testing.T, kind Kind, flags Flags, payload []byte) []byte {
	t.Helper()
	wirePayload, compressed := Compress(payload, 64)
	if compressed {
		flags |= FlagCompressed
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, kind, flags, wirePayload); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != kind {
		t.Fatalf("kind %v, want %v", hdr.Kind, kind)
	}
	if hdr.Flags&FlagCompressed != 0 {
		if got, err = Decompress(got); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame payload mismatch")
	}
	return got
}
