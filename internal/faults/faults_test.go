package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoServer copies everything it reads back to the writer until error.
func echoServer(c net.Conn) {
	io.Copy(c, c)
	c.Close()
}

func TestPassThroughWhenUnarmed(t *testing.T) {
	inj := New(Config{Seed: 1})
	client, server := inj.Pipe()
	go echoServer(server)
	defer client.Close()

	msg := []byte("hello newton")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestResetAfterBytes(t *testing.T) {
	inj := New(Config{Seed: 2, ResetAfter: 10})
	client, server := inj.Pipe()
	go echoServer(server)
	defer client.Close()

	// First write fits the budget exactly.
	if _, err := client.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write under budget: %v", err)
	}
	// The next op crosses it and resets.
	_, err := client.Write([]byte("x"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	// The conn stays poisoned.
	if _, err := client.Write([]byte("y")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write err = %v", err)
	}
	if st := inj.Stats(); st.Resets != 1 {
		t.Errorf("Resets = %d, want 1", st.Resets)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inj := New(Config{Seed: 3})
	client, server := inj.Pipe()
	go echoServer(server)
	defer client.Close()

	inj.Partition()
	if _, err := client.Write([]byte("a")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partitioned write err = %v", err)
	}
	inj.Heal()
	if _, err := client.Write([]byte("a")); err != nil {
		t.Fatalf("healed write err = %v", err)
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatalf("healed read: %v", err)
	}
}

func TestStallRespectsDeadline(t *testing.T) {
	inj := New(Config{Seed: 4})
	client, server := inj.Pipe()
	go echoServer(server)
	defer client.Close()

	inj.Stall()
	defer inj.Unstall()
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := client.Read(make([]byte, 1))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled read blocked %v past its deadline", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a timeout net.Error", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want os.ErrDeadlineExceeded", err)
	}
}

func TestStallUnstallReleasesOps(t *testing.T) {
	inj := New(Config{Seed: 5})
	client, server := inj.Pipe()
	go echoServer(server)
	defer client.Close()

	inj.Stall()
	done := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("z"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	inj.Unstall()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released write err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after Unstall")
	}
}

func TestSeededResetsAreDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(Config{Seed: seed, ResetProb: 0.3})
		var outcomes []bool
		for i := 0; i < 20; i++ {
			client, server := inj.Pipe()
			go echoServer(server)
			_, err := client.Write([]byte("p"))
			outcomes = append(outcomes, errors.Is(err, ErrInjectedReset))
			client.Close()
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged between equal-seed runs", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestDropSwallowsWrite(t *testing.T) {
	inj := New(Config{Seed: 6, DropProb: 1})
	client, server := inj.Pipe()
	defer client.Close()
	defer server.Close()

	if n, err := client.Write([]byte("ghost")); err != nil || n != 5 {
		t.Fatalf("dropped write = (%d, %v), want (5, nil)", n, err)
	}
	// Nothing arrives: a read on the server times out.
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Read(make([]byte, 8)); err == nil {
		t.Error("server received a dropped write")
	}
	if st := inj.Stats(); st.Drops != 1 {
		t.Errorf("Drops = %d, want 1", st.Drops)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	inj := New(Config{Seed: 7})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := inj.Listener(ln)
	defer wrapped.Close()
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			return
		}
		echoServer(c)
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inj.Partition()
	// The accepted (server) side is wrapped: its reads fail, so the
	// client sees the stream die rather than an echo.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("q"))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("partitioned accept side still echoed")
	}
}
