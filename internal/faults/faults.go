// Package faults provides deterministic, seeded fault injection for the
// control and telemetry planes: net.Conn and net.Listener wrappers that
// delay, drop, reset, partition, or stall traffic on command or by
// seeded chance. The chaos tests and the netsim-backed chaos experiment
// build on it; production code never imports it.
//
// One Injector owns a seeded RNG and a shared fault state (partitioned,
// stalled); every connection wrapped by the same injector sees the same
// faults. Tests that need to target a single peer use one injector per
// peer.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjectedReset is the error every injected connection reset
// surfaces — the in-process stand-in for ECONNRESET.
var ErrInjectedReset = errors.New("faults: connection reset by injector")

// Config parameterizes an Injector. The zero value injects nothing; the
// levers are armed individually.
type Config struct {
	// Seed drives every probabilistic decision. Two injectors with the
	// same seed and the same op sequence make the same choices.
	Seed int64

	// Delay is the maximum per-operation injected latency; each read and
	// write sleeps a uniform duration in [0, Delay).
	Delay time.Duration

	// DropProb is the probability that a Write is silently discarded
	// (reported as fully written). On a stream transport a dropped write
	// desynchronizes framing and typically stalls the peer — exactly the
	// pathology it exists to reproduce.
	DropProb float64

	// ResetProb is the per-operation probability of an injected
	// connection reset. A reset conn fails every subsequent operation
	// and closes its underlying transport.
	ResetProb float64

	// ResetAfter, when > 0, resets each connection once it has moved
	// this many bytes in either direction. A write that would cross the
	// budget transfers the bytes under it first — the partial-frame
	// case peers must survive.
	ResetAfter int
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Resets   uint64 // connections reset (random or byte-budget)
	Drops    uint64 // writes silently discarded
	Stalls   uint64 // operations that blocked on a stall window
	Delays   uint64 // operations delayed
	Rejected uint64 // operations failed by an active partition
}

// Injector is a fault source shared by the connections it wraps.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	partitioned bool
	stallCh     chan struct{} // non-nil while stalled; closed on Unstall
	stats       Stats
}

// New builds an injector from a config.
func New(cfg Config) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Partition makes every operation on every wrapped connection fail with
// ErrInjectedReset until Heal — the link is down but the endpoints are
// up, so redials through a wrapped listener fail the same way.
func (i *Injector) Partition() {
	i.mu.Lock()
	i.partitioned = true
	i.mu.Unlock()
}

// Heal ends a partition.
func (i *Injector) Heal() {
	i.mu.Lock()
	i.partitioned = false
	i.mu.Unlock()
}

// Stall makes every operation on every wrapped connection block until
// Unstall, the connection's deadline, or its close — the hung-peer
// fault deadline handling exists for.
func (i *Injector) Stall() {
	i.mu.Lock()
	if i.stallCh == nil {
		i.stallCh = make(chan struct{})
	}
	i.mu.Unlock()
}

// Unstall releases every operation blocked by Stall.
func (i *Injector) Unstall() {
	i.mu.Lock()
	if i.stallCh != nil {
		close(i.stallCh)
		i.stallCh = nil
	}
	i.mu.Unlock()
}

// Stats returns the running fault counts.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Conn wraps c so its reads and writes pass through the injector.
func (i *Injector) Conn(c net.Conn) net.Conn {
	return &conn{Conn: c, inj: i, closed: make(chan struct{})}
}

// Listener wraps ln so every accepted connection is fault-injected.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

// Pipe returns a connected in-memory pair with the client end
// fault-injected (one injection point keeps op sequences deterministic).
func (i *Injector) Pipe() (client, server net.Conn) {
	c, s := net.Pipe()
	return i.Conn(c), s
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// conn is one fault-injected connection.
type conn struct {
	net.Conn
	inj *Injector

	mu            sync.Mutex
	bytes         int // total transferred, for the ResetAfter budget
	reset         bool
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// timeoutError mirrors the shape of an os deadline error so callers'
// net.Error/os.ErrDeadlineExceeded checks keep working on stalled ops.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faults: i/o timeout during injected stall" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
func (timeoutError) Unwrap() error   { return os.ErrDeadlineExceeded }

// gate applies the shared faults to one operation. It returns a non-nil
// error when the op must fail instead of reaching the transport.
func (c *conn) gate(deadline time.Time) error {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return ErrInjectedReset
	}
	c.mu.Unlock()

	i := c.inj
	i.mu.Lock()
	if i.partitioned {
		i.stats.Rejected++
		i.mu.Unlock()
		return ErrInjectedReset
	}
	stall := i.stallCh
	var delay time.Duration
	if i.cfg.Delay > 0 {
		delay = time.Duration(i.rng.Int63n(int64(i.cfg.Delay)))
		i.stats.Delays++
	}
	doReset := i.cfg.ResetProb > 0 && i.rng.Float64() < i.cfg.ResetProb
	if stall != nil {
		i.stats.Stalls++
	}
	i.mu.Unlock()

	if stall != nil {
		var timer <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			timer = t.C
		}
		select {
		case <-stall:
		case <-c.closed:
			return net.ErrClosed
		case <-timer:
			return timeoutError{}
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if doReset {
		c.doReset()
		return ErrInjectedReset
	}
	return nil
}

// doReset poisons the connection and tears down the transport so the
// peer observes the failure too.
func (c *conn) doReset() {
	c.mu.Lock()
	already := c.reset
	c.reset = true
	c.mu.Unlock()
	if !already {
		c.inj.mu.Lock()
		c.inj.stats.Resets++
		c.inj.mu.Unlock()
		c.Conn.Close()
	}
}

// budget accounts n transferred bytes and reports how many of them fit
// under the ResetAfter budget (n when unlimited).
func (c *conn) budget(n int) int {
	limit := c.inj.cfg.ResetAfter
	if limit <= 0 {
		return n
	}
	c.mu.Lock()
	room := limit - c.bytes
	if room < 0 {
		room = 0
	}
	if n > room {
		n = room
	}
	c.bytes += n
	c.mu.Unlock()
	return n
}

func (c *conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	dl := c.readDeadline
	c.mu.Unlock()
	if err := c.gate(dl); err != nil {
		return 0, err
	}
	if c.inj.cfg.ResetAfter > 0 {
		c.mu.Lock()
		over := c.bytes >= c.inj.cfg.ResetAfter
		c.mu.Unlock()
		if over {
			c.doReset()
			return 0, ErrInjectedReset
		}
	}
	n, err := c.Conn.Read(b)
	c.budget(n)
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	dl := c.writeDeadline
	c.mu.Unlock()
	if err := c.gate(dl); err != nil {
		return 0, err
	}
	i := c.inj
	i.mu.Lock()
	drop := i.cfg.DropProb > 0 && i.rng.Float64() < i.cfg.DropProb
	if drop {
		i.stats.Drops++
	}
	i.mu.Unlock()
	if drop {
		return len(b), nil // swallowed whole; the peer never sees it
	}
	if allowed := c.budget(len(b)); allowed < len(b) {
		// The write crosses the byte budget: transfer the remainder of
		// the budget, then reset — the peer is left with a torn frame.
		n := 0
		if allowed > 0 {
			n, _ = c.Conn.Write(b[:allowed])
		}
		c.doReset()
		return n, ErrInjectedReset
	}
	return c.Conn.Write(b)
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
