// DDoS drill-down: the intro's motivating scenario for on-demand
// queries.
//
// A broad UDP-DDoS detector runs continuously. When it flags a victim,
// the operator "drills down" — installs a refined query scoped to that
// victim's traffic — at runtime, with forwarding untouched throughout.
// Under Sonata this second step would reboot the switch for seconds;
// here it is a ~10 ms rule operation, and the packet counters prove no
// traffic was lost.
//
// Run with: go run ./examples/ddos-drilldown
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/newton-net/newton"
)

func main() {
	topo, h1, h2 := newton.LinearTopology(2)
	net, err := newton.NewNetwork(topo, newton.NetworkConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctl := newton.NewController(net, 99)

	// Phase 1: the standing broad intent — hosts hit by many distinct
	// UDP sources (the paper's Q5).
	broad := newton.Q5(40)
	dep, delay, err := ctl.Install(newton.Deploy{Query: broad})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: broad detector %q installed in %v\n", broad.Name, delay.Round(time.Microsecond))

	victim := uint32(0x0A00002A) // 10.0.0.42
	tr := newton.GenerateTrace(newton.TraceConfig{Seed: 3, Flows: 800, Duration: 200 * time.Millisecond},
		newton.UDPFlood{Victim: victim, Sources: 200})
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}
	col := newton.NewCollector(broad.Window, broad.ReportKeys())
	col.AddAll(net.DrainReports())
	var flagged uint64
	for k := range col.FlaggedKeys() {
		flagged = k
		fmt.Printf("phase 1: UDP DDoS victim detected: %s\n", ip(k))
	}
	if flagged == 0 {
		log.Fatal("broad detector found nothing — drill-down has no target")
	}

	// Phase 2: drill down. Replace the broad query with one scoped to
	// the victim: which source prefixes dominate the attack?
	drill := newton.NewQuery("ddos_drilldown").
		Describe("attack sources per /16 toward the flagged victim").
		Filter(newton.Eq(newton.FieldProto, newton.ProtoUDP),
			newton.Eq(newton.FieldDstIP, flagged)).
		MapMask(newton.PrefixMask(newton.FieldSrcIP, 16)).
		ReduceCountMask(newton.PrefixMask(newton.FieldSrcIP, 16)).
		FilterResultGt(20).
		Build()

	before, _ := net.Stats()
	net.ResetStats()
	// Interleave the update with live traffic to show zero interruption.
	tr2 := newton.GenerateTrace(newton.TraceConfig{Seed: 4, Flows: 800, Duration: 200 * time.Millisecond},
		newton.UDPFlood{Victim: victim, Sources: 200})
	updated := false
	var upDelay time.Duration
	for i, pkt := range tr2.Packets {
		if !updated && i == len(tr2.Packets)/2 {
			_, upDelay, err = ctl.Update(dep.QID, newton.Deploy{Query: drill})
			if err != nil {
				log.Fatal(err)
			}
			updated = true
		}
		net.Deliver(pkt, h1, h2)
	}
	delivered, dropped := net.Stats()
	fmt.Printf("phase 2: drill-down swapped in mid-stream in %v; %d packets delivered, %d dropped\n",
		upDelay.Round(time.Microsecond), delivered, dropped)
	if dropped != 0 {
		log.Fatalf("runtime update dropped %d packets", dropped)
	}
	_ = before

	col2 := newton.NewCollector(drill.Window, drill.ReportKeys())
	col2.AddAll(net.DrainReports())
	fmt.Printf("phase 2: dominant attack source prefixes toward %s:\n", ip(uint64(victim)))
	for k := range col2.FlaggedKeys() {
		fmt.Printf("  %s/16\n", ip(k))
	}
}

func ip(v uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", v>>24&0xFF, v>>16&0xFF, v>>8&0xFF, v&0xFF)
}
