package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// ScalingRow is one worker count's throughput measurement.
type ScalingRow struct {
	Workers      int
	NsPerPkt     float64
	PktsPerSec   float64
	Speedup      float64 // vs the first (baseline) worker count
	AllocsPerPkt float64
}

// ScalingResult is the workers-vs-throughput curve of the sharded
// delivery path: the same fully-loaded switch and trace as Throughput,
// driven through DeliverBatch at increasing lane counts.
type ScalingResult struct {
	GOMAXPROCS int
	Rows       []ScalingRow
}

func (r *ScalingResult) String() string {
	t := &table{header: []string{"workers", "ns/pkt", "pkts/sec", "speedup", "allocs/pkt"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.Workers), fmt.Sprintf("%.1f", row.NsPerPkt),
			fmt.Sprintf("%.0f", row.PktsPerSec), fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.3f", row.AllocsPerPkt))
	}
	return t.String() + fmt.Sprintf("(GOMAXPROCS=%d)\n", r.GOMAXPROCS)
}

// Metrics exposes the curve for machine-readable output (-json).
func (r *ScalingResult) Metrics() map[string]float64 {
	m := map[string]float64{"gomaxprocs": float64(r.GOMAXPROCS)}
	for _, row := range r.Rows {
		m[fmt.Sprintf("pkts_sec_w%d", row.Workers)] = row.PktsPerSec
		m[fmt.Sprintf("speedup_w%d", row.Workers)] = row.Speedup
		m[fmt.Sprintf("allocs_pkt_w%d", row.Workers)] = row.AllocsPerPkt
	}
	return m
}

// ThroughputScaling measures batch-delivery throughput across worker
// counts. Each point builds a fresh single-switch network with
// Config.Workers lanes, installs all nine catalog queries, warms two
// full passes (settling epochs, caches, and buffer sizes), then times
// whole-trace DeliverBatch passes. Speedup is relative to the first
// worker count; on hosts with fewer cores than workers the curve
// flattens rather than climbs.
func ThroughputScaling(flows int, dur time.Duration, workers []int) *ScalingResult {
	if flows == 0 {
		flows = 2000
	}
	if dur == 0 {
		dur = 400 * time.Millisecond
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	res := &ScalingResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		row := scalingPoint(flows, dur, w)
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.PktsPerSec / res.Rows[0].PktsPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func scalingPoint(flows int, dur time.Duration, workers int) ScalingRow {
	topo, h1, h2 := topology.Linear(1)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 16, Workers: workers})
	if err != nil {
		panic(err)
	}
	sw := net.Node(topo.Switches()[0])
	for i, q := range query.All() {
		o := compiler.AllOpts()
		o.QID = i + 1
		o.Width = 1 << 12
		p, err := compiler.Compile(q, o)
		if err != nil {
			panic(err)
		}
		if err := sw.Eng.Install(p); err != nil {
			panic(err)
		}
	}
	tr := trace.Generate(trace.Config{Seed: 99, Flows: flows, Duration: dur},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200})
	pkts := tr.Packets

	var reports []dataplane.Report
	for p := 0; p < 2; p++ { // warm: epochs, caches, buffer sizes
		net.DeliverBatch(pkts, h1, h2)
		reports = net.DrainReportsAppend(reports[:0])
	}

	const passes = 3
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for p := 0; p < passes; p++ {
		net.DeliverBatch(pkts, h1, h2)
		reports = net.DrainReportsAppend(reports[:0])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := passes * len(pkts)
	return ScalingRow{
		Workers:      workers,
		NsPerPkt:     float64(elapsed.Nanoseconds()) / float64(n),
		PktsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}
