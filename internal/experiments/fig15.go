package experiments

import (
	"fmt"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/query"
)

// Fig15Row is one query's compilation footprint across the optimization
// ladder of §6.4 plus the Sonata comparison of Fig. 15d/e.
type Fig15Row struct {
	Query      string
	Primitives int

	// Modules and Stages at each step: baseline, +Opt1, +Opt1+2, +Opt1+2+3.
	Modules [4]int
	Stages  [4]int

	// Reductions from baseline to fully optimized (the Fig. 7 ratios).
	ModuleReduction float64
	StageReduction  float64

	SonataTables, SonataStages int
}

// Fig15Result is the full compilation evaluation.
type Fig15Result struct {
	Rows []Fig15Row

	// MinModuleReduction / MinStageReduction are the §6.4 headline
	// claims (paper: 42.4% and 69.7%).
	MinModuleReduction, MinStageReduction float64
}

// Fig15Compilation compiles the nine evaluation queries at every
// optimization step.
func Fig15Compilation() *Fig15Result {
	steps := []compiler.Options{
		compiler.Baseline(),
		{Opt1: true},
		{Opt1: true, Opt2: true},
		compiler.AllOpts(),
	}
	res := &Fig15Result{MinModuleReduction: 1, MinStageReduction: 1}
	for i, q := range query.All() {
		row := Fig15Row{Query: fmt.Sprintf("Q%d", i+1), Primitives: q.NumPrimitives()}
		for si, o := range steps {
			o.QID = i + 1
			p, err := compiler.Compile(q, o)
			if err != nil {
				panic(err) // queries are static; failure is a bug
			}
			s := compiler.Measure(q, p)
			row.Modules[si], row.Stages[si] = s.Modules, s.Stages
		}
		row.ModuleReduction = 1 - float64(row.Modules[3])/float64(row.Modules[0])
		row.StageReduction = 1 - float64(row.Stages[3])/float64(row.Stages[0])
		row.SonataTables, row.SonataStages = compiler.SonataEstimate(q)
		if row.ModuleReduction < res.MinModuleReduction {
			res.MinModuleReduction = row.ModuleReduction
		}
		if row.StageReduction < res.MinStageReduction {
			res.MinStageReduction = row.StageReduction
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders Fig. 15's three panels plus the Fig. 7 ratios.
func (r *Fig15Result) String() string {
	t := &table{header: []string{"Query", "Prims",
		"Mod base", "Mod +O1", "Mod +O12", "Mod +O123",
		"Stg base", "Stg +O1", "Stg +O12", "Stg +O123",
		"Mod red", "Stg red", "Sonata tbl", "Sonata stg"}}
	for _, row := range r.Rows {
		t.add(row.Query, i2s(row.Primitives),
			i2s(row.Modules[0]), i2s(row.Modules[1]), i2s(row.Modules[2]), i2s(row.Modules[3]),
			i2s(row.Stages[0]), i2s(row.Stages[1]), i2s(row.Stages[2]), i2s(row.Stages[3]),
			pct(row.ModuleReduction), pct(row.StageReduction),
			i2s(row.SonataTables), i2s(row.SonataStages))
	}
	return fmt.Sprintf(
		"Fig. 15 / Fig. 7: query compilation (paper: modules -42.4%%+, stages -69.7%%+)\n%s"+
			"minimum reductions: modules %s, stages %s\n",
		t.String(), pct(r.MinModuleReduction), pct(r.MinStageReduction))
}
