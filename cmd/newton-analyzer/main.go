// newton-analyzer runs the network-wide software analyzer as a
// standalone process: it accepts streaming telemetry from any number of
// newton-agent processes (reports pushed in batches, state-bank
// snapshots at every epoch boundary), merges per-switch sketch banks
// into network-wide Count-Min and Bloom views, deduplicates threshold
// alerts across switches, and prints the consolidated result stream.
//
// Usage:
//
//	newton-analyzer -listen 127.0.0.1:9500
//	newton-agent -listen 127.0.0.1:9441 -analyzer 127.0.0.1:9500 -pcap trace.pcap
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/version"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9500", "telemetry stream listen address")
		window = flag.Duration("window", 100*time.Millisecond, "query window for cross-switch alert dedup")
		keep   = flag.Int("keep-epochs", 16, "merged epochs retained per sketch bank")
		stats  = flag.Duration("stats", 10*time.Second, "interval between ingest-stats lines (0 = off)")

		obsAddr  = flag.String("obs-addr", "", "observability HTTP address for /metrics, /debug/vars, pprof ('' = disabled)")
		showVers = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVers {
		fmt.Println(version.String("newton-analyzer"))
		return
	}

	svc := telemetry.NewService(telemetry.ServiceConfig{Window: *window, KeepEpochs: *keep})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("newton-analyzer: %v", err)
	}
	fmt.Fprintf(os.Stderr, "newton-analyzer: ingesting telemetry on %s\n", ln.Addr())

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		version.RegisterObs(reg, "newton-analyzer")
		svc.RegisterObs(reg)
		srv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			log.Fatalf("newton-analyzer: obs: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "newton-analyzer: observability on http://%s/metrics\n", srv.Addr())
	}

	events, cancel := svc.Subscribe(1024)
	defer cancel()
	go func() {
		for ev := range events {
			switch ev.Kind {
			case telemetry.EventAlert:
				r := ev.Report
				fmt.Printf("alert qid=%d window=%d switch=%s keys=%s state=%d global=%d\n",
					r.QueryID, ev.Window, r.SwitchID, maskedKeys(&r), r.State, r.Global)
			case telemetry.EventSnapshotMerged:
				fmt.Fprintf(os.Stderr, "newton-analyzer: merged %d banks from %s at epoch %d\n",
					ev.Banks, ev.SwitchID, ev.Epoch)
			}
		}
	}()

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				st := svc.Stats()
				fmt.Fprintf(os.Stderr,
					"newton-analyzer: agents=%d live=%d reports=%d dup_alerts=%d snapshots=%d reconnects=%d epoch_gaps=%d partial_epochs=%d\n",
					st.Agents, st.LiveAgents, st.Reports, st.DuplicateAlerts, st.Snapshots,
					st.Reconnects, st.EpochGaps, st.PartialEpochs)
			}
		}()
	}

	if err := svc.Serve(ln); err != nil {
		log.Fatalf("newton-analyzer: %v", err)
	}
}

// maskedKeys renders a report's masked operation keys, e.g.
// "dip=167772330".
func maskedKeys(r *dataplane.Report) string {
	var parts []string
	for _, id := range r.KeyMask.Fields() {
		parts = append(parts, fmt.Sprintf("%s=%d", id, r.Keys.Get(id)&r.KeyMask[id]))
	}
	return strings.Join(parts, ",")
}
