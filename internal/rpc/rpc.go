// Package rpc is the control channel between the Newton controller and
// switch agents — the role P4Runtime plays on real Tofino deployments.
// It carries compiled programs, rule operations, window-epoch ticks, and
// report drains over TCP as length-framed JSON messages, using only the
// standard library.
//
// A switch-side Agent wraps a module engine; a controller-side Client
// dials it:
//
//	agent := rpc.NewAgent(sw, eng)
//	go agent.Serve(listener)
//	...
//	c, _ := rpc.Dial(addr)
//	c.Install(program)
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
)

// maxFrame bounds one control message (a compiled program is a few KB;
// a report drain a few hundred KB at worst).
const maxFrame = 8 << 20

// Message types.
const (
	typeInstall = "install"
	typeRemove  = "remove"
	typeStats   = "stats"
	typeDrain   = "drain_reports"
	typeEpoch   = "next_epoch"
)

// Request is one controller → agent message.
type Request struct {
	Type    string           `json:"type"`
	QID     int              `json:"qid,omitempty"`
	Program *modules.Program `json:"program,omitempty"`
}

// Stats is the agent's rule/program accounting.
type Stats struct {
	RuleEntries int `json:"rule_entries"`
	Installed   int `json:"installed"`
}

// Response is one agent → controller message.
type Response struct {
	OK      bool               `json:"ok"`
	Error   string             `json:"error,omitempty"`
	Stats   *Stats             `json:"stats,omitempty"`
	Reports []dataplane.Report `json:"reports,omitempty"`
}

// writeFrame sends one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame receives one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("rpc: inbound frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decoding: %w", err)
	}
	return nil
}

// Agent is the switch-side control endpoint.
type Agent struct {
	mu  sync.Mutex
	sw  *dataplane.Switch
	eng *modules.Engine
}

// NewAgent wraps a switch and its module engine.
func NewAgent(sw *dataplane.Switch, eng *modules.Engine) *Agent {
	return &Agent{sw: sw, eng: eng}
}

// Serve accepts controller connections until the listener closes.
func (a *Agent) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go a.HandleConn(conn)
	}
}

// HandleConn serves one controller connection (exported so tests can
// drive net.Pipe ends directly).
func (a *Agent) HandleConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // connection closed or poisoned; drop it
		}
		resp := a.dispatch(&req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (a *Agent) dispatch(req *Request) *Response {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch req.Type {
	case typeInstall:
		if req.Program == nil {
			return &Response{Error: "install without program"}
		}
		if err := a.eng.Install(req.Program); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case typeRemove:
		if err := a.eng.Remove(req.QID); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case typeStats:
		return &Response{OK: true, Stats: &Stats{
			RuleEntries: a.eng.Layout().TotalRuleEntries(),
			Installed:   a.eng.InstalledCount(),
		}}
	case typeDrain:
		return &Response{OK: true, Reports: a.sw.DrainReports()}
	case typeEpoch:
		a.eng.Layout().Pipeline().NextEpoch()
		return &Response{OK: true}
	}
	return &Response{Error: fmt.Sprintf("unknown request type %q", req.Type)}
}

// Client is the controller-side endpoint.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to an agent's TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing agent: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one end of net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: agent: %s", resp.Error)
	}
	return &resp, nil
}

// Install loads a compiled program into the remote engine.
func (c *Client) Install(p *modules.Program) error {
	_, err := c.roundTrip(&Request{Type: typeInstall, Program: p})
	return err
}

// Remove uninstalls a query by QID.
func (c *Client) Remove(qid int) error {
	_, err := c.roundTrip(&Request{Type: typeRemove, QID: qid})
	return err
}

// Stats fetches the remote rule/program counts.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&Request{Type: typeStats})
	if err != nil {
		return Stats{}, err
	}
	return *resp.Stats, nil
}

// DrainReports pulls and clears the remote report buffer.
func (c *Client) DrainReports() ([]dataplane.Report, error) {
	resp, err := c.roundTrip(&Request{Type: typeDrain})
	if err != nil {
		return nil, err
	}
	return resp.Reports, nil
}

// NextEpoch rolls the remote register windows (the controller's 100 ms
// tick).
func (c *Client) NextEpoch() error {
	_, err := c.roundTrip(&Request{Type: typeEpoch})
	return err
}
