package compiler

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/trace"
)

func TestCompileAllQueriesAllModes(t *testing.T) {
	modes := map[string]Options{
		"baseline":  Baseline(),
		"opt1":      {Opt1: true},
		"opt12":     {Opt1: true, Opt2: true},
		"opt123":    AllOpts(),
		"sharded":   {Opt1: true, Opt2: true, Opt3: true, ShardIndex: 1, ShardCount: 3},
		"wide":      {Opt1: true, Opt2: true, Opt3: true, Width: 1 << 14},
		"morehash":  {Opt1: true, Opt2: true, Opt3: true, DistinctHashes: 4, ReduceRows: 3},
		"no-opt3":   {Opt1: true, Opt2: true},
		"only-opt3": {Opt3: true},
	}
	for name, o := range modes {
		for i, q := range query.All() {
			o.QID = i + 1
			p, err := Compile(q, o)
			if err != nil {
				t.Fatalf("%s: Q%d: %v", name, i+1, err)
			}
			if p.NumOps() == 0 {
				t.Errorf("%s: Q%d compiled to zero ops", name, i+1)
			}
			if p.NumStages() == 0 {
				t.Errorf("%s: Q%d has no stages", name, i+1)
			}
		}
	}
}

func TestOptimizationsMonotonic(t *testing.T) {
	// Opt.1 and Opt.2 strictly shed modules and stages. Opt.3 trades a
	// few modules back — Algorithm 1 restores a K whenever the other
	// metadata set's operation keys change (lines 16 and 21) — but must
	// cut stages sharply.
	steps := []Options{Baseline(), {Opt1: true}, {Opt1: true, Opt2: true}}
	for i, q := range query.All() {
		prevM, prevS := 1<<30, 1<<30
		for si, o := range steps {
			p, err := Compile(q, o)
			if err != nil {
				t.Fatal(err)
			}
			s := Measure(q, p)
			if s.Modules > prevM || s.Stages > prevS {
				t.Errorf("Q%d step %d regressed: modules %d>%d or stages %d>%d",
					i+1, si, s.Modules, prevM, s.Stages, prevS)
			}
			prevM, prevS = s.Modules, s.Stages
		}
		p3, err := Compile(q, AllOpts())
		if err != nil {
			t.Fatal(err)
		}
		s3 := Measure(q, p3)
		if s3.Modules > prevM+5 {
			t.Errorf("Q%d Opt.3 restored too many Ks: %d vs %d", i+1, s3.Modules, prevM)
		}
		if s3.Stages >= prevS {
			t.Errorf("Q%d Opt.3 did not reduce stages: %d vs %d", i+1, s3.Stages, prevS)
		}
	}
}

func TestReductionRatiosMatchPaper(t *testing.T) {
	// §6.4: "Newton can reduce modules by more than 42.4% and stages by
	// more than 69.7%". Our module decomposition lands within a point of
	// both minima; pin them so regressions surface.
	minM, minS := 1.0, 1.0
	for _, q := range query.All() {
		pb, _ := Compile(q, Baseline())
		po, _ := Compile(q, AllOpts())
		sb, so := Measure(q, pb), Measure(q, po)
		mRed := 1 - float64(so.Modules)/float64(sb.Modules)
		sRed := 1 - float64(so.Stages)/float64(sb.Stages)
		if mRed < minM {
			minM = mRed
		}
		if sRed < minS {
			minS = sRed
		}
	}
	if minM < 0.41 {
		t.Errorf("min module reduction %.3f, want >= 0.41 (paper: 0.424)", minM)
	}
	if minS < 0.69 {
		t.Errorf("min stage reduction %.3f, want >= 0.69 (paper: 0.697)", minS)
	}
}

func TestBaselineStagesEqualModules(t *testing.T) {
	// The intuitive composition is one module per stage, all branches
	// chained (Fig. 6: "occupies up to 20 modules and 20 stages").
	for i, q := range query.All() {
		p, _ := Compile(q, Baseline())
		s := Measure(q, p)
		if s.Stages != s.Modules {
			t.Errorf("Q%d baseline stages %d != modules %d", i+1, s.Stages, s.Modules)
		}
	}
}

func TestOptimizedFitsModestPipelines(t *testing.T) {
	// With full optimization every evaluation query fits a 14-stage
	// pipeline (the paper reports <=10 for its variants; our distinct
	// uses 3 serialized global folds, costing a few more).
	for i, q := range query.All() {
		p, _ := Compile(q, AllOpts())
		if got := p.NumStages(); got > 14 {
			t.Errorf("Q%d needs %d stages optimized", i+1, got)
		}
	}
}

func TestOpt1FoldsFrontFilters(t *testing.T) {
	q := query.Q1(40)
	p, _ := Compile(q, Options{Opt1: true})
	b := p.Branches[0]
	if b.Init == modules.MatchAllInit() {
		t.Error("front filter not folded into newton_init")
	}
	if b.Init.Values[2] != 6 || b.Init.Masks[2] != 0xFF {
		t.Errorf("init proto match wrong: %+v", b.Init)
	}
	if b.Init.Values[5] != 2 {
		t.Errorf("init flags match wrong: %+v", b.Init)
	}
	// Without Opt1, the init matches everything and the filter compiles
	// to modules.
	p2, _ := Compile(q, Baseline())
	if p2.Branches[0].Init != modules.MatchAllInit() {
		t.Error("baseline should not fold filters")
	}
	if p2.NumOps() <= p.NumOps() {
		t.Error("baseline should carry the filter modules")
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(&query.Query{}, AllOpts()); err == nil {
		t.Error("invalid query accepted")
	}
	// Merge query with multi-field stateful keys is not data-plane
	// mergeable.
	bad := query.New("bad").
		Filter(query.Eq(fields.Proto, 6)).
		ReduceCount(fields.DstIP, fields.DstPort).
		FilterResultGt(0).
		Branch().
		Filter(query.Eq(fields.Proto, 17)).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		MergeMin(5).
		Build()
	if _, err := Compile(bad, AllOpts()); err == nil {
		t.Error("multi-field merge keys accepted")
	}
}

// runDataplane pushes a trace through one simulated switch with the
// compiled query installed and returns the deduplicated flagged keys.
func runDataplane(t *testing.T, q *query.Query, o Options, tr *trace.Trace) (map[uint64]bool, int) {
	return runDataplaneN(t, q, o, tr, 16, 1<<17)
}

// runDataplaneN is runDataplane with explicit pipeline geometry (deep
// pipelines for unoptimized compositions).
func runDataplaneN(t *testing.T, q *query.Query, o Options, tr *trace.Trace, stages int, arraySize uint32) (map[uint64]bool, int) {
	t.Helper()
	layout, err := modules.NewLayout(modules.LayoutCompact, stages, arraySize)
	if err != nil {
		t.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	o.QID = 1
	p, err := Compile(q, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Install(p); err != nil {
		t.Fatal(err)
	}
	sw := dataplane.NewSwitch("s1", stages, modules.StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	window := uint64(q.Window)
	nextEpoch := window
	for _, pkt := range tr.Packets {
		for pkt.TS >= nextEpoch {
			layout.Pipeline().NextEpoch()
			nextEpoch += window
		}
		sw.Process(pkt)
	}
	col := analyzer.NewCollector(window, q.ReportKeys())
	col.AddAll(sw.DrainReports())
	return col.FlaggedKeys(), col.Raw
}

func refFlagged(q *query.Query, tr *trace.Trace) map[uint64]bool {
	e := analyzer.NewEngine(q)
	e.Run(tr.Packets)
	return e.FlaggedKeys()
}

func evalTrace(seed int64) *trace.Trace {
	return trace.Generate(trace.Config{Seed: seed, Flows: 400, Duration: 300 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 400},
		trace.UDPFlood{Victim: 0x0A0000AB, Sources: 120},
		trace.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 150},
		trace.SSHBrute{Victim: 0x0A0000AD, Attempts: 80},
		trace.Slowloris{Victim: 0x0A0000AE, Conns: 120},
		trace.DNSNoTCP{Hosts: 4, Queries: 25},
		trace.SuperSpreader{Source: 0x0B000002, Fanout: 150},
	)
}

// TestDataplaneMatchesReferenceSingleBranch is the core semantic
// property: with ample sketch memory, the compiled single-branch queries
// flag exactly the keys the exact reference engine flags.
func TestDataplaneMatchesReferenceSingleBranch(t *testing.T) {
	tr := evalTrace(42)
	for i, q := range query.All()[:5] { // Q1..Q5 are single-branch
		got, _ := runDataplane(t, q, Options{Opt1: true, Opt2: true, Opt3: true, Width: 1 << 15}, tr)
		want := refFlagged(q, tr)
		for k := range want {
			if !got[k] {
				t.Errorf("Q%d: data plane missed key %d", i+1, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("Q%d: data plane falsely flagged key %d", i+1, k)
			}
		}
	}
}

// TestDataplaneMatchesReferenceMergeQueries checks the merge queries:
// the data plane reports at threshold crossing (streaming) while the
// reference evaluates at window close, so the data plane may
// additionally flag keys that retreated below the threshold by window
// end — but it must never miss a true key.
func TestDataplaneMatchesReferenceMergeQueries(t *testing.T) {
	tr := evalTrace(43)
	for i, q := range query.All()[5:] {
		got, _ := runDataplane(t, q, Options{Opt1: true, Opt2: true, Opt3: true, Width: 1 << 15}, tr)
		want := refFlagged(q, tr)
		missed := 0
		for k := range want {
			if !got[k] {
				missed++
			}
		}
		if missed > 0 {
			t.Errorf("Q%d: data plane missed %d/%d true keys", i+6, missed, len(want))
		}
		extra := 0
		for k := range got {
			if !want[k] {
				extra++
			}
		}
		if len(want) > 0 && extra > 3*len(want)+3 {
			t.Errorf("Q%d: %d streaming-only extras vs %d true keys", i+6, extra, len(want))
		}
	}
}

func TestBaselineCompositionAlsoExecutesCorrectly(t *testing.T) {
	// Opt.1/2/3 must not change semantics (DESIGN invariant 2): the
	// unoptimized composition of Q1 flags the same keys.
	tr := evalTrace(44)
	q := query.Q1(40)
	// Baseline needs stages = modules; give it a deep pipeline.
	layout, err := modules.NewLayout(modules.LayoutCompact, 24, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	p, err := Compile(q, Options{QID: 1, Width: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Install(p); err != nil {
		t.Fatal(err)
	}
	sw := dataplane.NewSwitch("s1", 24, modules.StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng
	window := uint64(q.Window)
	next := window
	for _, pkt := range tr.Packets {
		for pkt.TS >= next {
			layout.Pipeline().NextEpoch()
			next += window
		}
		sw.Process(pkt)
	}
	col := analyzer.NewCollector(window, q.ReportKeys())
	col.AddAll(sw.DrainReports())
	got := col.FlaggedKeys()
	want := refFlagged(q, tr)
	if len(got) != len(want) {
		t.Fatalf("baseline flagged %d keys, reference %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("baseline missed key %d", k)
		}
	}
}

func TestReportOncePerKeyPerWindow(t *testing.T) {
	// Newton's accurate exportation: a sustained flood yields one report
	// per victim per window, not one per packet.
	tr := trace.Generate(trace.Config{Seed: 7, Flows: 0, Duration: 300 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 3000})
	_, raw := runDataplane(t, query.Q1(40), AllOpts(), tr)
	if raw > 3 { // one per 100ms window
		t.Errorf("raw reports = %d for a 3-window flood, want <= 3", raw)
	}
}

func TestShardedCompilationSplitsKeys(t *testing.T) {
	// With 3-way sharding, each victim reports from exactly one shard.
	tr := trace.Generate(trace.Config{Seed: 9, Flows: 100, Duration: 100 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 300},
		trace.SYNFlood{Victim: 0x0A0000AB, Packets: 300},
		trace.SYNFlood{Victim: 0x0A0000AC, Packets: 300})
	q := query.Q1(40)
	union := map[uint64]bool{}
	total := 0
	for shard := uint32(0); shard < 3; shard++ {
		got, _ := runDataplane(t, q, Options{
			Opt1: true, Opt2: true, Opt3: true,
			ShardIndex: shard, ShardCount: 3, Width: 1 << 14,
		}, tr)
		for k := range got {
			if union[k] {
				t.Errorf("key %d flagged by more than one shard", k)
			}
			union[k] = true
		}
		total += len(got)
	}
	want := refFlagged(q, tr)
	for k := range want {
		if !union[k] {
			t.Errorf("sharded execution missed key %d", k)
		}
	}
}

func TestMeasureAndSonata(t *testing.T) {
	q := query.Q1(40)
	p, _ := Compile(q, AllOpts())
	s := Measure(q, p)
	if s.Primitives != 4 || s.Modules != p.NumOps() || s.Rules != p.RuleCount() {
		t.Errorf("Measure = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	tables, stages := SonataEstimate(q)
	if tables != 5 || stages != 5 {
		t.Errorf("SonataEstimate(Q1) = %d tables, %d stages", tables, stages)
	}
	t6, s6 := SonataEstimate(query.Q6(30))
	if t6 <= tables || s6 <= stages {
		t.Error("Sonata estimate should grow with query size")
	}
}

func TestPredRange(t *testing.T) {
	cases := []struct {
		p      query.Predicate
		lo, hi int64
	}{
		{query.Gt(query.Result, 10), 11, rInf},
		{query.Lt(query.Result, 10), -rInf, 9},
		{query.Predicate{Field: query.Result, Op: query.CmpGe, Value: 10}, 10, rInf},
		{query.Predicate{Field: query.Result, Op: query.CmpLe, Value: 10}, -rInf, 10},
		{query.Predicate{Field: query.Result, Op: query.CmpEq, Value: 10}, 10, 10},
	}
	for _, c := range cases {
		lo, hi := predRange(c.p)
		if lo != c.lo || hi != c.hi {
			t.Errorf("predRange(%v) = [%d, %d], want [%d, %d]", c.p, lo, hi, c.lo, c.hi)
		}
	}
}

func TestExpectedHashMatchesEngine(t *testing.T) {
	// The compiler's precomputed filter hash must equal what the engine
	// computes for a satisfying packet (same masking, same serialization).
	preds := []query.Predicate{
		query.Eq(fields.Proto, 6),
		query.Eq(fields.DstPort, 22),
	}
	mask := predMask(preds)
	want := expectedHash(preds, mask)

	var v fields.Vector
	v.Set(fields.Proto, 6)
	v.Set(fields.DstPort, 22)
	v.Set(fields.SrcIP, 0xDEADBEEF) // concealed fields must not matter
	keys := mask.Apply(&v)
	var buf [8 * int(fields.NumFields)]byte
	got := sketchFNV(mask.Bytes(&keys, buf[:0]))
	if got != want {
		t.Errorf("engine hash %#x != compiler hash %#x", got, want)
	}
}

func sketchFNV(b []byte) uint32 {
	return fnvSum(b)
}

func fnvSum(b []byte) uint32 {
	return sketch.FNV1a.Sum(b, filterSeed)
}

func BenchmarkCompileQ6(b *testing.B) {
	q := query.Q6(30)
	o := AllOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(q, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileAllNine(b *testing.B) {
	qs := query.All()
	o := AllOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := Compile(q, o); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestDSLQueryMatchesBuilderQuery: a Q6 written in the textual intent
// DSL must compile to the same footprint and flag the same keys as the
// builder-constructed Q6.
func TestDSLQueryMatchesBuilderQuery(t *testing.T) {
	src := `filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		filter(proto == tcp && tcp_flags == synack) | map(sip) | reduce(sip, sum) | filter(result > 0) ;
		filter(proto == tcp && tcp_flags == ack) | map(dip) | reduce(dip, sum) | filter(result > 0) ;
		merge(1, 1, -2 > 30)`
	dsl, err := query.Parse("q6_dsl", src)
	if err != nil {
		t.Fatal(err)
	}
	built := query.Q6(30)

	pd, err := Compile(dsl, AllOpts())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Compile(built, AllOpts())
	if err != nil {
		t.Fatal(err)
	}
	if pd.NumOps() != pb.NumOps() || pd.NumStages() != pb.NumStages() {
		t.Errorf("footprints differ: DSL %d/%d vs builder %d/%d",
			pd.NumOps(), pd.NumStages(), pb.NumOps(), pb.NumStages())
	}

	tr := evalTrace(77)
	o := Options{Opt1: true, Opt2: true, Opt3: true, Width: 1 << 14}
	gotDSL, _ := runDataplane(t, dsl, o, tr)
	gotBuilt, _ := runDataplane(t, built, o, tr)
	if len(gotDSL) != len(gotBuilt) {
		t.Fatalf("flagged sets differ: %d vs %d", len(gotDSL), len(gotBuilt))
	}
	for k := range gotBuilt {
		if !gotDSL[k] {
			t.Errorf("DSL query missed key %d", k)
		}
	}
}
