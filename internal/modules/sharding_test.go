package modules

import (
	"sync"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/packet"
)

// shardedRun drives pkts through a fresh engine with the given worker
// count (and bank mode), sharding by the symmetric flow hash and running
// one goroutine per lane — the exact discipline of batch delivery. It
// returns the engine and the merged reports.
func shardedRun(t *testing.T, prog *Program, pkts []*packet.Packet, workers int, mode BankMode) (*Engine, []dataplane.Report) {
	t.Helper()
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.SetWorkers(workers)
	eng.SetBankMode(mode)
	if err := eng.Install(prog); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.SetLanes(workers)
	sw.Monitor = eng

	if workers == 1 {
		for _, pkt := range pkts {
			sw.Process(pkt)
		}
		return eng, sw.DrainReports()
	}

	shards := make([][]*packet.Packet, workers)
	for _, pkt := range pkts {
		w := int(pkt.Flow().LaneHash() % uint64(workers))
		shards[w] = append(shards[w], pkt)
	}
	sinks := make([][]dataplane.Report, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ctx := dataplane.NewBatchContext(&sinks[w], w)
			for _, pkt := range shards[w] {
				sw.ProcessCtx(pkt, ctx)
			}
		}(w)
	}
	wg.Wait()
	var reports []dataplane.Report
	for _, s := range sinks {
		reports = append(reports, s...)
	}
	return eng, reports
}

// manyFlows builds count SYN packets spread over nFlows distinct flows,
// round-robin, so every lane sees traffic and flows repeat.
func manyFlows(nFlows, count int) []*packet.Packet {
	pkts := make([]*packet.Packet, 0, count)
	for i := 0; i < count; i++ {
		pkts = append(pkts, synTo(uint32(1000+i%nFlows)))
	}
	return pkts
}

// TestShardedSharedBanksMatchSequential is the engine-level equivalence
// guard: a 4-worker engine on shared (CAS) banks must produce the same
// merged bank contents, the same packet counts, and the same number of
// threshold reports as the single-lane engine over the same trace.
func TestShardedSharedBanksMatchSequential(t *testing.T) {
	pkts := manyFlows(64, 1024)

	seqEng, seqReports := shardedRun(t, buildCountProgram(1, 3, 4096), pkts, 1, BankShared)
	parEng, parReports := shardedRun(t, buildCountProgram(1, 3, 4096), pkts, 4, BankShared)

	if sp, _, _ := seqEng.Counters(); true {
		pp, _, _ := parEng.Counters()
		if sp != pp {
			t.Fatalf("packet counters diverge: sequential %d, sharded %d", sp, pp)
		}
	}
	if len(seqReports) != len(parReports) {
		t.Fatalf("report count diverges: sequential %d, sharded %d", len(seqReports), len(parReports))
	}

	seqBanks := seqEng.SnapshotBanks()
	parBanks := parEng.SnapshotBanks()
	if len(seqBanks) != len(parBanks) {
		t.Fatalf("bank count diverges: %d vs %d", len(seqBanks), len(parBanks))
	}
	for i := range seqBanks {
		a, b := seqBanks[i], parBanks[i]
		for s := range a.Values {
			if a.Values[s] != b.Values[s] {
				t.Fatalf("bank %d slot %d diverges: sequential %d, sharded %d", i, s, a.Values[s], b.Values[s])
			}
		}
	}
}

// TestBankPrivateMergeMatchesShared checks the worker-private bank mode
// against ground truth: private per-lane shards of a shardable (pure
// Add, gate-free) row, merged at the epoch boundary, must reproduce the
// single-lane bank slot for slot — and the merge must be idempotent.
func TestBankPrivateMergeMatchesShared(t *testing.T) {
	pkts := manyFlows(64, 1024)
	// Threshold far above any count: the chain is report-free, so the
	// banks alone carry the window's state.
	prog := func() *Program { return buildCountProgram(1, 1<<30, 4096) }

	seqEng, _ := shardedRun(t, prog(), pkts, 1, BankShared)
	privEng, _ := shardedRun(t, prog(), pkts, 4, BankPrivate)

	seqBanks := seqEng.SnapshotBanks()
	privBanks := privEng.SnapshotBanks() // merges the lane shards
	if len(seqBanks) != len(privBanks) || len(seqBanks) == 0 {
		t.Fatalf("bank count diverges: %d vs %d", len(seqBanks), len(privBanks))
	}
	for i := range seqBanks {
		a, b := seqBanks[i], privBanks[i]
		for s := range a.Values {
			if a.Values[s] != b.Values[s] {
				t.Fatalf("bank %d slot %d diverges: shared %d, private-merged %d", i, s, a.Values[s], b.Values[s])
			}
		}
	}

	// Idempotency: a second snapshot (second MergeWorkers) must not
	// double-count the already-merged shards.
	again := privEng.SnapshotBanks()
	for i := range privBanks {
		for s := range privBanks[i].Values {
			if privBanks[i].Values[s] != again[i].Values[s] {
				t.Fatalf("second merge changed bank %d slot %d: %d -> %d", i, s, privBanks[i].Values[s], again[i].Values[s])
			}
		}
	}

	// RollEpoch ends the window: the next window starts from zero on both
	// the canonical bank and every shard.
	privEng.RollEpoch()
	for _, b := range privEng.SnapshotBanks() {
		for s, v := range b.Values {
			if v != 0 {
				t.Fatalf("post-roll bank slot %d = %d, want 0", s, v)
			}
		}
	}
}

// TestShardableGatingPredicate checks the install-time predicate: a pure
// Add row with no earlier result process shards under BankPrivate, while
// the same row behind an R gate stays on the shared array (non-
// commutative control flow cannot be decomposed across workers).
func TestShardableGatingPredicate(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.SetWorkers(4)
	eng.SetBankMode(BankPrivate)

	// buildCountProgram's S precedes its R ops: shardable.
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	var free, gated *SConfig
	for _, p := range eng.Programs() {
		for _, b := range p.Branches {
			for _, op := range b.Ops {
				if op.Kind == ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
					free = op.S
				}
			}
		}
	}
	if free == nil {
		t.Fatal("no owning S op found")
	}
	if !free.shardable || len(free.laneArrays) != 4 {
		t.Fatalf("gate-free Add row not sharded: shardable=%v lanes=%d", free.shardable, len(free.laneArrays))
	}
	if free.laneArrays[0] != nil {
		t.Fatal("lane 0 must execute against the canonical array")
	}

	// Move the S after an R: the row must stay shared.
	p2 := buildCountProgram(2, 1<<30, 1024)
	ops := p2.Branches[0].Ops
	// Reorder to K, H, R(SetGlobal via raw value is invalid; instead put
	// the existing first R before S): K H R S R.
	ops[2], ops[3] = ops[3], ops[2]
	ops[2].Stage, ops[3].Stage = 3, 4
	if err := eng.Install(p2); err != nil {
		t.Fatalf("Install gated: %v", err)
	}
	for _, p := range eng.Programs() {
		if p.QID != 2 {
			continue
		}
		for _, b := range p.Branches {
			for _, op := range b.Ops {
				if op.Kind == ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
					gated = op.S
				}
			}
		}
	}
	if gated == nil {
		t.Fatal("no owning S op in gated program")
	}
	if gated.shardable || gated.laneArrays != nil {
		t.Fatalf("R-gated row wrongly sharded: shardable=%v lanes=%d", gated.shardable, len(gated.laneArrays))
	}
}

// TestLaneDispatchInvalidation asserts every lane's private dispatch
// cache revalidates against the classifier version: after a remove, no
// lane may keep executing its memoized chain.
func TestLaneDispatchInvalidation(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.SetWorkers(4)
	if err := eng.Install(buildCountProgram(1, 0, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.SetLanes(4)
	sw.Monitor = eng

	sinks := make([][]dataplane.Report, 4)
	ctxs := make([]*dataplane.Context, 4)
	for w := range ctxs {
		ctxs[w] = dataplane.NewBatchContext(&sinks[w], w)
	}
	// One distinct flow per lane: the shared bank slots stay independent,
	// so every lane's first packet crosses the 0-threshold and reports.
	for w := range ctxs {
		sw.ProcessCtx(synTo(uint32(100+w)), ctxs[w])
	}
	for w := range sinks {
		if len(sinks[w]) != 1 {
			t.Fatalf("lane %d: %d reports before remove, want 1", w, len(sinks[w]))
		}
		sinks[w] = sinks[w][:0]
	}
	if err := eng.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	for w := range ctxs {
		sw.ProcessCtx(synTo(uint32(100+w)), ctxs[w])
		if len(sinks[w]) != 0 {
			t.Fatalf("lane %d executed a stale chain after remove", w)
		}
	}
}

// TestSetWorkersFoldsCounters asserts shrinking the lane count preserves
// accumulated packet counts (folded into lane 0) and that per-lane
// counters sum to the engine totals while sharded.
func TestSetWorkersFoldsCounters(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.SetWorkers(4)
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.SetLanes(4)
	sw.Monitor = eng

	var sink []dataplane.Report
	for w := 0; w < 4; w++ {
		ctx := dataplane.NewBatchContext(&sink, w)
		for i := 0; i <= w; i++ { // lane w processes w+1 packets
			sw.ProcessCtx(synTo(uint32(100+w)), ctx)
		}
	}
	var laneSum uint64
	for w := 0; w < 4; w++ {
		p, _ := eng.LaneCounters(w)
		laneSum += p
	}
	total, _, _ := eng.Counters()
	if total != 10 || laneSum != total {
		t.Fatalf("counters: total %d (want 10), lane sum %d", total, laneSum)
	}
	eng.SetWorkers(1)
	if total, _, _ = eng.Counters(); total != 10 {
		t.Fatalf("counts lost on shrink: %d, want 10", total)
	}
}
