package controller

import (
	"testing"

	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/telemetry"
)

// TestResizeWidthKeepsQID: a width resize re-deploys every member at
// the new geometry under the SAME qid — the query survives, the qid
// counter does not advance, and the deployment remains removable.
func TestResizeWidthKeepsQID(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := r.ResizeWidth(qid, 1<<11)
	if err != nil {
		t.Fatalf("ResizeWidth: %v", err)
	}
	if delay <= 0 {
		t.Error("no modeled resize delay")
	}
	if got := r.Width(qid); got != 1<<11 {
		t.Fatalf("Width(%d) = %d, want %d", qid, got, 1<<11)
	}
	// The qid counter did not advance: the next install gets qid+1.
	qid2, _, err := r.Install(query.Q4(40), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qid2 != qid+1 {
		t.Fatalf("post-resize install qid = %d, want %d — resize consumed a qid", qid2, qid+1)
	}
	// Reconverge is a no-op against the new geometry, and the resized
	// deployment removes cleanly.
	if err := r.Reconverge(); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(qid); err != nil {
		t.Fatal(err)
	}
}

// TestResizeWidthNoopAndUnknown: resizing to the current width touches
// nothing; unknown deployments and zero widths are rejected.
func TestResizeWidthNoopAndUnknown(t *testing.T) {
	r, _ := remoteFixture(t, 1)
	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delay, err := r.ResizeWidth(qid, 1<<10); err != nil || delay != 0 {
		t.Fatalf("same-width resize = (%v, %v), want free no-op", delay, err)
	}
	if _, err := r.ResizeWidth(qid+99, 1<<11); err == nil {
		t.Error("resize of unknown deployment accepted")
	}
	if _, err := r.ResizeWidth(qid, 0); err == nil {
		t.Error("resize to width 0 accepted")
	}
}

// TestResizeWidthOfflineFailsFast: a resize past an offline member
// would leave the fleet with mixed widths, so it must fail in preflight
// with every agent's geometry untouched.
func TestResizeWidthOfflineFailsFast(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetOffline("b", true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResizeWidth(qid, 1<<11); err == nil {
		t.Fatal("resize through an offline member accepted")
	}
	if got := r.Width(qid); got != 1<<10 {
		t.Fatalf("failed resize changed recorded width to %d", got)
	}
}

// TestResizeWidthRollsBackOnFailure: a mid-flight failure (agent "b"
// dies between preflight and its install) must roll the already-resized
// members back toward the old width — the recorded spec stays old, so
// the fleet's geometry remains uniform.
func TestResizeWidthRollsBackOnFailure(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.agents["b"].Close() // dies after preflight; "a" resizes first
	if _, err := r.ResizeWidth(qid, 1<<11); err == nil {
		t.Fatal("resize with a dead member accepted")
	}
	if got := r.Width(qid); got != 1<<10 {
		t.Fatalf("failed resize recorded width %d, want old 1024", got)
	}
	// Agent "a" was rolled back to the old geometry: re-driving the old
	// spec at it converges without error.
	if err := r.SetOffline("b", true); err != nil {
		t.Fatal(err)
	}
	if err := r.Reconverge(); err != nil {
		t.Fatalf("reconverge after rollback: %v", err)
	}
}

// TestResizeWidthRepinsExpectedAndAnnounces: with a telemetry service
// attached, a successful resize re-pins the expected-contributor set
// for the new programs and announces the transition so the next merged
// epoch carries width-transition provenance.
func TestResizeWidthRepinsExpectedAndAnnounces(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	r.AttachTelemetry(svc)

	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResizeWidth(qid, 1<<11); err != nil {
		t.Fatal(err)
	}
	// The transition is pending: the next snapshot at the query's epoch
	// frontier must be flagged. NoteResize state is internal, so observe
	// it through the stats counter after the epoch lands — here we can
	// at least assert the expected set stayed pinned (EpochStatus names
	// both members missing for a never-delivered epoch).
	partial, missing, _ := svc.EpochStatus(qid, 1)
	if !partial || len(missing) != 2 {
		t.Fatalf("EpochStatus after resize = partial=%v missing=%v, want both members pinned", partial, missing)
	}
}
