package experiments

import "testing"

// TestAdaptiveConvergence is the CI gate for the closed-loop accuracy
// experiment: under the shifting Zipf workload the refiner must bring
// the observed error bound back under the intent's tolerance within
// the round budget after every phase shift, spend strictly less memory
// than static worst-case provisioning, and never flap, re-deploy, or
// mix provenance.
func TestAdaptiveConvergence(t *testing.T) {
	res := Adaptive(AdaptiveConfig{})
	if !res.Passed() {
		t.Fatalf("adaptive run failed:\n%s", res)
	}
	for ph, n := range res.ConvergedIn {
		if n > res.ConvergeWithin {
			t.Errorf("phase %s converged in %d rounds, budget %d", ph, n, res.ConvergeWithin)
		}
	}
	if res.MemRatio >= 1 {
		t.Errorf("mem ratio %.3f, want < 1 (adaptive must beat static worst-case)", res.MemRatio)
	}
	if res.Flaps != 0 {
		t.Errorf("flaps = %d, want 0", res.Flaps)
	}
	if res.QIDChanges != 0 {
		t.Errorf("qid changes = %d, want 0 (resizes must keep the deployment)", res.QIDChanges)
	}
	if res.ProvenanceMixups != 0 {
		t.Errorf("provenance mixups = %d, want 0", res.ProvenanceMixups)
	}
	// The loop must actually adapt: at least one widen (frugal start is
	// deliberately under-provisioned) and one narrow (the surge width
	// is over-provisioned once calm returns).
	if res.Widens == 0 || res.Narrows == 0 {
		t.Errorf("widens=%d narrows=%d, want both nonzero", res.Widens, res.Narrows)
	}
	t.Logf("converged %v, mem ratio %.3f, resizes %d, final width %d",
		res.ConvergedIn, res.MemRatio, res.Resizes, res.FinalWidth)
}
