package sketch

import (
	"fmt"
	"math"
)

// CountMin is a Count-Min sketch over d rows of w counters. Newton's
// reduce(f=sum) compiles to one state-bank module per row ("reduce could
// leverage several module suites to implement a multi-array CM", Fig. 3),
// and this type is the reference realization used by the analyzer and by
// baselines.
//
// Counters are epoch-tagged: stateful primitives are evaluated and reset
// every window (100 ms in the paper), and tagging each counter with the
// epoch that last wrote it implements the reset lazily, exactly as the
// register-based state bank does.
type CountMin struct {
	rows   int
	width  uint32
	algo   Algo
	counts [][]uint64
	epochs [][]uint32
	epoch  uint32
}

// NewCountMin builds a sketch with the given geometry. Width is rounded
// up to a power of two so that folding is a mask, as on hardware.
func NewCountMin(rows int, width uint32, algo Algo) *CountMin {
	if rows <= 0 || width == 0 {
		panic("sketch: bad CountMin geometry")
	}
	w := nextPow2(width)
	cm := &CountMin{rows: rows, width: w, algo: algo}
	cm.counts = make([][]uint64, rows)
	cm.epochs = make([][]uint32, rows)
	for r := range cm.counts {
		cm.counts[r] = make([]uint64, w)
		cm.epochs[r] = make([]uint32, w)
	}
	return cm
}

// Rows returns the number of hash rows.
func (cm *CountMin) Rows() int { return cm.rows }

// Width returns the (power-of-two) counters per row.
func (cm *CountMin) Width() uint32 { return cm.width }

// NextEpoch starts a new window. Counters written in earlier epochs read
// as zero until rewritten.
func (cm *CountMin) NextEpoch() { cm.epoch++ }

func (cm *CountMin) slot(row int, key []byte) uint32 {
	return Fold(cm.algo.Sum(key, uint32(row)*0x9E3779B9+1), cm.width)
}

// Add increments the key's counters by delta and returns the new
// estimate (the minimum over rows after the update).
func (cm *CountMin) Add(key []byte, delta uint64) uint64 {
	est := ^uint64(0)
	for r := 0; r < cm.rows; r++ {
		i := cm.slot(r, key)
		if cm.epochs[r][i] != cm.epoch {
			cm.epochs[r][i] = cm.epoch
			cm.counts[r][i] = 0
		}
		cm.counts[r][i] += delta
		if cm.counts[r][i] < est {
			est = cm.counts[r][i]
		}
	}
	return est
}

// Estimate returns the current estimate for the key without updating.
func (cm *CountMin) Estimate(key []byte) uint64 {
	est := ^uint64(0)
	for r := 0; r < cm.rows; r++ {
		i := cm.slot(r, key)
		var v uint64
		if cm.epochs[r][i] == cm.epoch {
			v = cm.counts[r][i]
		}
		if v < est {
			est = v
		}
	}
	return est
}

// ErrorBound returns the classic (ε, δ) guarantee for the geometry: with
// probability 1-δ, Estimate ≤ true + ε·N where N is the stream total.
//
// N is a property of the stream, not of any one sketch instance: when
// several switches' banks are merged counter-wise into one network-wide
// row, the bound holds for the merged total (the sum over contributors),
// never for any single contributor's count. Callers turning this bound
// into an observed-error estimate must use the merged N — see
// CMSAbsError and telemetry.Service.ObservedAccuracy.
func (cm *CountMin) ErrorBound() (eps, delta float64) {
	return math.E / float64(cm.width), math.Exp(-float64(cm.rows))
}

// ErrorAt returns the absolute overcount bound ε·N for this geometry
// over a stream of n items. For an analyzer-merged multi-switch bank, n
// must be the merged stream total (sum over all contributors).
func (cm *CountMin) ErrorAt(n uint64) float64 {
	return CMSAbsError(cm.width, n)
}

// CMSAbsError is the Count-Min overcount bound ε·N = (e/width)·N for a
// row of the given width over a stream of n items, usable on merged
// analyzer banks that never materialize a CountMin instance.
func CMSAbsError(width uint32, n uint64) float64 {
	if width == 0 {
		return math.Inf(1)
	}
	return math.E * float64(n) / float64(width)
}

// CMSWidthFor returns the narrowest power-of-two row width whose
// overcount bound ε·N stays within maxAbs counts for a stream of n
// items — the inverse of CMSAbsError, used to drive the accuracy ladder
// from a target instead of from capacity.
func CMSWidthFor(n uint64, maxAbs float64) uint32 {
	if maxAbs <= 0 || n == 0 {
		return 1
	}
	need := math.E * float64(n) / maxAbs
	if need <= 1 {
		return 1
	}
	if need >= float64(1<<30) {
		return 1 << 30
	}
	return nextPow2(uint32(math.Ceil(need)))
}

// BloomRowFill is the set fraction of one Bloom row: the fill ratio the
// analyzer observes directly from a merged bank's nonzero positions.
func BloomRowFill(nonzero int, width uint32) float64 {
	if width == 0 {
		return 1
	}
	f := float64(nonzero) / float64(width)
	if f > 1 {
		return 1
	}
	return f
}

// BloomFPPFromFills is the false-positive probability of a filter whose
// k hash rows have the given observed fill ratios: a never-inserted key
// reads a set position in every row, so the FPP is the product. Unlike
// FalsePositiveRate this needs no insertion count — the fill is what
// the merged bank already shows.
func BloomFPPFromFills(fills []float64) float64 {
	if len(fills) == 0 {
		return 0
	}
	p := 1.0
	for _, f := range fills {
		p *= f
	}
	return p
}

// MemoryBytes returns the counter memory footprint, for resource reports.
func (cm *CountMin) MemoryBytes() int {
	return cm.rows * int(cm.width) * 8
}

func nextPow2(v uint32) uint32 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	return v + 1
}

// Bloom is a Bloom filter over k hash functions and m bits, the state
// bank realization of distinct. Bits are epoch-tagged per word for the
// same lazy window reset as CountMin.
type Bloom struct {
	bits   uint32 // power of two
	k      int
	algo   Algo
	words  []uint64
	epochs []uint32
	epoch  uint32
}

// NewBloom builds a filter with m bits (rounded up to a power of two)
// and k hash functions.
func NewBloom(m uint32, k int, algo Algo) *Bloom {
	if m == 0 || k <= 0 {
		panic("sketch: bad Bloom geometry")
	}
	bits := nextPow2(m)
	if bits < 64 {
		bits = 64
	}
	return &Bloom{
		bits:   bits,
		k:      k,
		algo:   algo,
		words:  make([]uint64, bits/64),
		epochs: make([]uint32, bits/64),
	}
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() uint32 { return b.bits }

// Hashes returns the number of hash functions.
func (b *Bloom) Hashes() int { return b.k }

// NextEpoch starts a new window; previously set bits read as clear.
func (b *Bloom) NextEpoch() { b.epoch++ }

func (b *Bloom) pos(i int, key []byte) uint32 {
	return Fold(b.algo.Sum(key, uint32(i)*0x85EBCA6B+7), b.bits)
}

func (b *Bloom) getBit(p uint32) bool {
	w := p / 64
	if b.epochs[w] != b.epoch {
		return false
	}
	return b.words[w]&(1<<(p%64)) != 0
}

func (b *Bloom) setBit(p uint32) {
	w := p / 64
	if b.epochs[w] != b.epoch {
		b.epochs[w] = b.epoch
		b.words[w] = 0
	}
	b.words[w] |= 1 << (p % 64)
}

// TestAndSet inserts the key and reports whether it was (apparently)
// already present — the single-pass "have I seen this?" the distinct
// primitive needs.
func (b *Bloom) TestAndSet(key []byte) bool {
	seen := true
	for i := 0; i < b.k; i++ {
		p := b.pos(i, key)
		if !b.getBit(p) {
			seen = false
			b.setBit(p)
		}
	}
	return seen
}

// Contains reports apparent membership without inserting.
func (b *Bloom) Contains(key []byte) bool {
	for i := 0; i < b.k; i++ {
		if !b.getBit(b.pos(i, key)) {
			return false
		}
	}
	return true
}

// FalsePositiveRate returns the expected FPR after n insertions.
func (b *Bloom) FalsePositiveRate(n int) float64 {
	m := float64(b.bits)
	k := float64(b.k)
	return math.Pow(1-math.Exp(-k*float64(n)/m), k)
}

// MemoryBytes returns the bit-array footprint.
func (b *Bloom) MemoryBytes() int { return int(b.bits) / 8 }

func (b *Bloom) String() string {
	return fmt.Sprintf("bloom(m=%d,k=%d,%s)", b.bits, b.k, b.algo)
}
