package modules

// Footprint is a program's hardware resource consumption in the paper's
// §6 vocabulary: pipeline stages spanned, hash units, stateful ALUs,
// state-bank register slots, and table rules split by kind. It is
// computed from compiled (and, once installed, placed) programs, so the
// numbers match what Install actually charged against the Layout.
type Footprint struct {
	Stages      int    // pipeline stages spanned (highest assigned stage + 1)
	HashUnits   int    // H module instances
	SALUs       int    // state-owning S module instances (stateful ALUs)
	Registers   uint32 // state-bank register slots across owning S ops
	InitRules   int    // newton_init classifier entries (one per branch)
	ResultRules int    // R-table entries
	Rules       int    // total module-table rules, all kinds
}

// Footprint computes the program's resource footprint. Pass-through and
// cross-read S ops consume no registers or ALUs of their own (they read
// another branch's bank), matching Install's allocation rules.
func (p *Program) Footprint() Footprint {
	var f Footprint
	maxStage := -1
	for _, b := range p.Branches {
		f.InitRules++
		for _, op := range b.Ops {
			f.Rules++
			if op.Stage > maxStage {
				maxStage = op.Stage
			}
			switch op.Kind {
			case ModH:
				f.HashUnits++
			case ModS:
				if op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
					f.SALUs++
					f.Registers += op.Width()
				}
			case ModR:
				f.ResultRules++
			}
		}
	}
	f.Stages = maxStage + 1
	return f
}
