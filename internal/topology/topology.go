// Package topology models the networks the evaluation deploys Newton
// into: the three-switch testbed line, k-ary fat-trees, and a North
// America ISP backbone — plus ECMP shortest-path routing and link
// failures with rerouting, which the resilient placement algorithm must
// survive.
package topology

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Kind classifies a node.
type Kind int

const (
	// Host is an end host (traffic source/sink).
	Host Kind = iota
	// Edge is a top-of-rack/edge switch (a monitored flow's first hop).
	Edge
	// Agg is an aggregation switch.
	Agg
	// Core is a core/backbone switch.
	Core
)

// String names the node kind.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Edge:
		return "edge"
	case Agg:
		return "agg"
	case Core:
		return "core"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one vertex of the topology.
type Node struct {
	ID   int
	Name string
	Kind Kind
}

type link struct {
	a, b int
	up   bool
}

// Topology is an undirected graph of hosts and switches with
// enable/disable-able links.
type Topology struct {
	nodes []Node
	links []*link
	adj   map[int][]*link
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{adj: map[int][]*link{}}
}

// AddNode adds a node and returns its ID.
func (t *Topology) AddNode(name string, kind Kind) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Kind: kind})
	return id
}

// AddLink connects two nodes (idempotent for duplicate pairs).
func (t *Topology) AddLink(a, b int) {
	if a == b {
		panic("topology: self link")
	}
	l := &link{a: a, b: b, up: true}
	t.links = append(t.links, l)
	t.adj[a] = append(t.adj[a], l)
	t.adj[b] = append(t.adj[b], l)
}

// SetLink brings the a–b link up or down (failure injection). It reports
// whether such a link exists.
func (t *Topology) SetLink(a, b int, up bool) bool {
	for _, l := range t.adj[a] {
		if l.a == b || l.b == b {
			l.up = up
			return true
		}
	}
	return false
}

// Node returns the node with the given ID.
func (t *Topology) Node(id int) Node { return t.nodes[id] }

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Neighbors lists nodes reachable over up links.
func (t *Topology) Neighbors(id int) []int {
	var out []int
	for _, l := range t.adj[id] {
		if !l.up {
			continue
		}
		other := l.a
		if other == id {
			other = l.b
		}
		out = append(out, other)
	}
	sort.Ints(out)
	return out
}

// SwitchNeighbors lists neighboring switches only (the DFS of the
// placement algorithm walks switches, not hosts).
func (t *Topology) SwitchNeighbors(id int) []int {
	var out []int
	for _, n := range t.Neighbors(id) {
		if t.nodes[n].Kind != Host {
			out = append(out, n)
		}
	}
	return out
}

// Hosts lists host IDs.
func (t *Topology) Hosts() []int { return t.byKind(Host) }

// Switches lists all switch IDs.
func (t *Topology) Switches() []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind != Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// EdgeSwitches lists edge-switch IDs.
func (t *Topology) EdgeSwitches() []int { return t.byKind(Edge) }

func (t *Topology) byKind(k Kind) []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// bfsDist computes hop distances to dst over up links.
func (t *Topology) bfsDist(dst int) []int {
	dist := make([]int, len(t.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.Neighbors(cur) {
			if dist[n] == -1 {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Path computes the ECMP shortest path from src to dst over up links.
// Among equal-cost next hops, the choice is a deterministic hash of
// (flowSeed, current node) — per-flow ECMP as deployed networks do it.
// It returns the full node sequence including endpoints, or nil if dst
// is unreachable.
func (t *Topology) Path(src, dst int, flowSeed uint64) []int {
	if src == dst {
		return []int{src}
	}
	dist := t.bfsDist(dst)
	if dist[src] == -1 {
		return nil
	}
	path := []int{src}
	cur := src
	for cur != dst {
		var next []int
		for _, n := range t.Neighbors(cur) {
			if dist[n] == dist[cur]-1 {
				next = append(next, n)
			}
		}
		if len(next) == 0 {
			return nil // inconsistent (link flapped mid-walk)
		}
		cur = next[ecmpPick(flowSeed, cur, len(next))]
		path = append(path, cur)
	}
	return path
}

// SwitchPath returns only the switches of a path.
func (t *Topology) SwitchPath(path []int) []int {
	var out []int
	for _, id := range path {
		if t.nodes[id].Kind != Host {
			out = append(out, id)
		}
	}
	return out
}

func ecmpPick(seed uint64, node, n int) int {
	h := fnv.New32a()
	var b [12]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	b[8], b[9], b[10], b[11] = byte(node), byte(node>>8), byte(node>>16), byte(node>>24)
	h.Write(b[:])
	return int(h.Sum32()) % n
}

// Linear builds the testbed-like chain used by the CQE experiments:
// h1 — s1 — s2 — … — sN — h2. It returns the topology and the two host
// IDs.
func Linear(switches int) (*Topology, int, int) {
	if switches < 1 {
		panic("topology: need at least one switch")
	}
	t := New()
	h1 := t.AddNode("h1", Host)
	prev := h1
	first := -1
	for i := 1; i <= switches; i++ {
		s := t.AddNode(fmt.Sprintf("s%d", i), Edge)
		if first == -1 {
			first = s
		}
		t.AddLink(prev, s)
		prev = s
	}
	h2 := t.AddNode("h2", Host)
	t.AddLink(prev, h2)
	return t, h1, h2
}

// FatTree builds a k-ary fat-tree (k even): (k/2)² core switches, k pods
// of k/2 aggregation and k/2 edge switches, and k/2 hosts per edge
// switch — the placement experiment's scaling substrate.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic("topology: fat-tree arity must be even and >= 2")
	}
	t := New()
	half := k / 2
	cores := make([][]int, half)
	for i := 0; i < half; i++ {
		cores[i] = make([]int, half)
		for j := 0; j < half; j++ {
			cores[i][j] = t.AddNode(fmt.Sprintf("core%d_%d", i, j), Core)
		}
	}
	for p := 0; p < k; p++ {
		aggs := make([]int, half)
		edges := make([]int, half)
		for i := 0; i < half; i++ {
			aggs[i] = t.AddNode(fmt.Sprintf("agg%d_%d", p, i), Agg)
			edges[i] = t.AddNode(fmt.Sprintf("edge%d_%d", p, i), Edge)
		}
		for i, a := range aggs {
			for _, e := range edges {
				t.AddLink(a, e)
			}
			for j := 0; j < half; j++ {
				t.AddLink(a, cores[i][j])
			}
		}
		for ei, e := range edges {
			for hi := 0; hi < half; hi++ {
				h := t.AddNode(fmt.Sprintf("h%d_%d_%d", p, ei, hi), Host)
				t.AddLink(e, h)
			}
		}
	}
	return t
}

// ISPBackbone builds an abstraction of the AT&T North America OC-768
// backbone the placement evaluation uses: 25 city POPs with the
// published-map adjacency. All nodes are edge switches (every POP
// originates monitored traffic).
func ISPBackbone() *Topology {
	t := New()
	cities := []string{
		"Seattle", "Portland", "Sacramento", "SanFrancisco", "LosAngeles",
		"SanDiego", "SaltLake", "Phoenix", "Denver", "Albuquerque",
		"Dallas", "Houston", "SanAntonio", "KansasCity", "StLouis",
		"Chicago", "Nashville", "Atlanta", "Orlando", "Miami",
		"Washington", "Philadelphia", "NewYork", "Boston", "Cleveland",
	}
	ids := map[string]int{}
	for _, c := range cities {
		ids[c] = t.AddNode(c, Edge)
	}
	edges := [][2]string{
		{"Seattle", "Portland"}, {"Seattle", "SaltLake"}, {"Seattle", "Chicago"},
		{"Portland", "Sacramento"}, {"Sacramento", "SanFrancisco"}, {"Sacramento", "SaltLake"},
		{"SanFrancisco", "LosAngeles"}, {"LosAngeles", "SanDiego"}, {"LosAngeles", "Phoenix"},
		{"SanDiego", "Phoenix"}, {"Phoenix", "Albuquerque"}, {"SaltLake", "Denver"},
		{"Denver", "KansasCity"}, {"Denver", "Albuquerque"}, {"Albuquerque", "Dallas"},
		{"Dallas", "Houston"}, {"Dallas", "KansasCity"}, {"Houston", "SanAntonio"},
		{"SanAntonio", "Phoenix"}, {"KansasCity", "StLouis"}, {"StLouis", "Chicago"},
		{"StLouis", "Nashville"}, {"Chicago", "Cleveland"}, {"Nashville", "Atlanta"},
		{"Atlanta", "Orlando"}, {"Atlanta", "Washington"}, {"Orlando", "Miami"},
		{"Houston", "Orlando"}, {"Washington", "Philadelphia"}, {"Philadelphia", "NewYork"},
		{"NewYork", "Boston"}, {"Boston", "Cleveland"}, {"Cleveland", "NewYork"},
		{"Chicago", "Washington"}, {"Dallas", "Atlanta"}, {"SanFrancisco", "Chicago"},
	}
	for _, e := range edges {
		t.AddLink(ids[e[0]], ids[e[1]])
	}
	return t
}

// Random builds a connected random switch graph: n edge switches on a
// ring (guaranteeing connectivity) plus `extra` random chords. Used by
// property tests to check placement resilience on topologies with no
// helpful structure.
func Random(n, extra int, seed int64) *Topology {
	if n < 3 {
		panic("topology: random graph needs at least 3 switches")
	}
	t := New()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = t.AddNode(fmt.Sprintf("r%d", i), Edge)
	}
	for i := range ids {
		t.AddLink(ids[i], ids[(i+1)%n])
	}
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || (a+1)%n == b || (b+1)%n == a {
			continue
		}
		t.AddLink(ids[a], ids[b])
	}
	return t
}

// NodeByName finds a node ID by name (-1 if absent).
func (t *Topology) NodeByName(name string) int {
	for _, n := range t.nodes {
		if n.Name == name {
			return n.ID
		}
	}
	return -1
}
