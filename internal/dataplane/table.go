// Package dataplane simulates a PISA-style programmable switch pipeline:
// match-action tables with runtime rule updates, register arrays with
// stateful ALUs, physical stages with per-resource-type capacity
// accounting (crossbar, SRAM, TCAM, VLIW, hash bits, stateful ALUs,
// gateways), an L3 forwarding table, and mirroring. It is the substrate
// Newton's reconfigurable modules are built on; it stands in for the
// Tofino ASIC of the paper's testbed.
//
// The simulator is deliberately behavioural, not timing-accurate: every
// evaluation quantity in the paper (rule counts, stage counts, message
// counts, register sizes, forwarding interruption) is a count or a
// discipline, not a silicon latency.
package dataplane

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/newton-net/newton/internal/classify"
)

// MatchKind distinguishes the matching disciplines a table supports. All
// kinds reduce to ternary matching internally (exact = full mask, LPM =
// prefix mask with prefix-length priority), mirroring how RMT unifies
// them over TCAM/SRAM.
type MatchKind int

const (
	// MatchExact matches all columns under full masks.
	MatchExact MatchKind = iota
	// MatchTernary matches value/mask pairs with explicit priorities.
	MatchTernary
	// MatchLPM is longest-prefix match on the first column.
	MatchLPM
)

// String names the match kind as P4 would.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	}
	return fmt.Sprintf("matchkind(%d)", int(k))
}

// Action is what a matching rule executes. Concrete actions are defined
// by whoever programs the table (the modules package for Newton tables,
// the switch itself for forwarding).
type Action interface {
	// ActionName identifies the action for rule dumps and tests.
	ActionName() string
}

// Rule is one table entry: per-column value/mask pairs, a priority, and
// an action. Higher priority wins; insertion order breaks ties (as if
// earlier rules sat higher in TCAM). A Rule is immutable once installed;
// snapshots share rule pointers freely.
type Rule struct {
	ID       int
	Priority int
	Values   []uint64
	Masks    []uint64
	Action   Action

	seq int // insertion sequence for stable tie-breaking
}

// Matches reports whether the rule matches the given column values.
func (r *Rule) Matches(vals []uint64) bool {
	for i := range r.Values {
		if vals[i]&r.Masks[i] != r.Values[i]&r.Masks[i] {
			return false
		}
	}
	return true
}

// before orders rules by priority desc, then insertion sequence asc —
// the TCAM match order.
func (r *Rule) before(o *Rule) bool {
	if r.Priority != o.Priority {
		return r.Priority > o.Priority
	}
	return r.seq < o.seq
}

// maxIndexCols bounds the column count the exact-match index covers.
// Wider tables route every rule — full-mask ones included — through the
// ternary set, where the compiled classifier serves them as point
// intervals; only when compilation falls back does a wide table pay the
// linear scan. The layout's own tables are all ≤6 columns; the wide
// path is covered by TestWideTableSkipsExactIndex.
const maxIndexCols = 8

// exactKey is the hash-index key: the rule's (full-mask) column values,
// zero-padded. Tables have a fixed column count, so padding is unambiguous.
type exactKey [maxIndexCols]uint64

// Classifier compile states, kept in tableSnap.clsState.
const (
	clsUncompiled = iota // no classified lookup has run on this snapshot yet
	clsCompiled          // compiled classifier serving lookups
	clsFallback          // compile declined (too few rules, strategy, or budget): linear scan
)

// tableSnap is one immutable rule-set snapshot. Readers load it via an
// atomic pointer and never take a lock; writers build a fresh snapshot
// under the table mutex and publish it atomically (copy-on-write).
type tableSnap struct {
	// rules holds every rule in match order (priority desc, seq asc).
	rules []*Rule
	// ternary holds, in match order, the rules with at least one
	// non-full mask — the ones the hash index cannot serve.
	ternary []*Rule
	// exact indexes the full-mask rules by column values; each bucket is
	// in match order (duplicates keep TCAM tie-breaking).
	exact map[exactKey][]*Rule

	// The compiled classifier for the ternary set. Compilation is
	// deferred to the first classified lookup — rules install one at a
	// time, and compiling on every publish would make an n-rule install
	// quadratic — and runs at most once per snapshot (sync.Once), so
	// the packet path after it is two atomic loads. clsState is stored
	// after cls (both atomic), so state != clsUncompiled acquires the
	// compiled pointer.
	cols     int
	clsCfg   classify.Config
	clsOnce  sync.Once
	cls      atomic.Pointer[classify.Compiled]
	clsState atomic.Int32
}

var emptySnap = &tableSnap{}

// classifier returns the snapshot's compiled classifier, compiling on
// first call; nil means fallback to the linear scan. The hot path costs
// two atomic loads; the cold path is kept out of line so its closure
// never allocates on classified lookups.
func (s *tableSnap) classifier() *classify.Compiled {
	if s.clsState.Load() == clsUncompiled {
		s.compileClassifier()
	}
	return s.cls.Load()
}

//go:noinline
func (s *tableSnap) compileClassifier() {
	s.clsOnce.Do(func() {
		specs := make([]classify.Rule, len(s.ternary))
		for i, r := range s.ternary {
			specs[i] = classify.Rule{Values: r.Values, Masks: r.Masks}
		}
		c := classify.Compile(s.cols, specs, s.clsCfg)
		state := int32(clsFallback)
		if c != nil {
			s.cls.Store(c)
			state = clsCompiled
		}
		s.clsState.Store(state)
	})
}

// buildSnap constructs the immutable snapshot for a rule list already in
// match order.
func buildSnap(rules []*Rule, cols int, cfg classify.Config) *tableSnap {
	s := &tableSnap{rules: rules, cols: cols, clsCfg: cfg}
	if cols > maxIndexCols {
		s.ternary = rules
		return s
	}
	for _, r := range rules {
		full := true
		for _, m := range r.Masks {
			if m != ^uint64(0) {
				full = false
				break
			}
		}
		if !full {
			s.ternary = append(s.ternary, r)
			continue
		}
		if s.exact == nil {
			s.exact = make(map[exactKey][]*Rule)
		}
		var k exactKey
		copy(k[:], r.Values)
		s.exact[k] = append(s.exact[k], r)
	}
	return s
}

// Table is a match-action table with runtime-updatable rules — the
// reconfigurable component Newton leans on (§2.1: "match-action table
// rules belong to [runtime reconfigurability]").
//
// Concurrency: the per-packet read path (Lookup, LookupAll, Entries,
// Rules) is lock-free — it reads an immutable copy-on-write snapshot
// through an atomic pointer, so lookups never block rule updates and
// vice versa. Writers (AddRule, RemoveRule, Clear) serialize on an
// internal mutex, build a fresh snapshot, and publish it atomically.
// A reader that raced a writer sees either the old or the new rule set,
// never a torn one.
type Table struct {
	Name       string
	Kind       MatchKind
	Cols       int // number of match columns
	MaxEntries int

	mu      sync.Mutex // serializes writers
	snap    atomic.Pointer[tableSnap]
	version atomic.Uint64 // bumped on every rule-set change
	byID    map[int]*Rule
	nextID  int
	seq     int

	// clsCfg is the classifier compile budget snapshots are built with
	// (zero value = classify defaults). Written under mu.
	clsCfg classify.Config
	// ternaryScans counts lookups served by the linear ternary scan —
	// the slow path the compiled classifier exists to remove.
	ternaryScans atomic.Uint64

	// Default is executed when no rule matches (may be nil).
	Default Action
}

// NewTable builds an empty table.
func NewTable(name string, kind MatchKind, cols, maxEntries int) *Table {
	if cols <= 0 {
		panic("dataplane: table needs at least one match column")
	}
	if maxEntries <= 0 {
		maxEntries = 1 << 20
	}
	t := &Table{
		Name: name, Kind: kind, Cols: cols, MaxEntries: maxEntries,
		byID: make(map[int]*Rule),
	}
	t.snap.Store(emptySnap)
	return t
}

// Version returns a counter that changes whenever the rule set changes.
// Caches keyed on lookup results (the module engine's dispatch cache)
// compare versions to detect staleness.
func (t *Table) Version() uint64 { return t.version.Load() }

// AddRule installs a rule at runtime and returns its ID. Exact-match
// rules may omit masks (full masks are implied). For LPM the mask of the
// first column determines priority (longer prefix wins); non-contiguous
// LPM masks are rejected.
func (t *Table) AddRule(values, masks []uint64, priority int, action Action) (int, error) {
	if len(values) != t.Cols {
		return 0, fmt.Errorf("dataplane: table %s wants %d columns, got %d", t.Name, t.Cols, len(values))
	}
	if masks == nil {
		masks = make([]uint64, t.Cols)
		for i := range masks {
			masks[i] = ^uint64(0)
		}
	}
	if len(masks) != t.Cols {
		return 0, fmt.Errorf("dataplane: table %s mask arity mismatch", t.Name)
	}
	if t.Kind == MatchExact {
		for i, m := range masks {
			if m != ^uint64(0) {
				return 0, fmt.Errorf("dataplane: exact table %s got partial mask on column %d", t.Name, i)
			}
		}
	}
	if t.Kind == MatchLPM {
		plen, err := prefixLen(masks[0])
		if err != nil {
			return 0, fmt.Errorf("dataplane: lpm table %s: %w", t.Name, err)
		}
		priority = plen
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.snap.Load()
	if len(old.rules) >= t.MaxEntries {
		return 0, fmt.Errorf("dataplane: table %s full (%d entries)", t.Name, t.MaxEntries)
	}
	t.nextID++
	t.seq++
	r := &Rule{
		ID: t.nextID, Priority: priority,
		Values: append([]uint64(nil), values...),
		Masks:  append([]uint64(nil), masks...),
		Action: action, seq: t.seq,
	}
	// Binary-search insertion: the list is already in match order, so a
	// single copy-with-insert replaces the old whole-slice re-sort. The
	// new rule has the highest seq, so it lands after every rule of equal
	// priority.
	pos := sort.Search(len(old.rules), func(i int) bool {
		return old.rules[i].Priority < r.Priority
	})
	rules := make([]*Rule, 0, len(old.rules)+1)
	rules = append(rules, old.rules[:pos]...)
	rules = append(rules, r)
	rules = append(rules, old.rules[pos:]...)
	t.byID[r.ID] = r
	t.publish(rules)
	return r.ID, nil
}

// RemoveRule deletes a rule by ID at runtime.
func (t *Table) RemoveRule(id int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return fmt.Errorf("dataplane: table %s has no rule %d", t.Name, id)
	}
	delete(t.byID, id)
	old := t.snap.Load()
	rules := make([]*Rule, 0, len(old.rules)-1)
	for _, r := range old.rules {
		if r.ID != id {
			rules = append(rules, r)
		}
	}
	t.publish(rules)
	return nil
}

// publish builds and atomically installs the snapshot for rules (already
// in match order). Callers hold t.mu.
func (t *Table) publish(rules []*Rule) {
	t.snap.Store(buildSnap(rules, t.Cols, t.clsCfg))
	t.version.Add(1)
}

// SetClassifierConfig replaces the compiled-classifier budget and
// republishes the current rules under it. A huge MinRules forces the
// linear-scan fallback — how tests and benchmarks pin the oracle path.
func (t *Table) SetClassifierConfig(cfg classify.Config) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clsCfg = cfg
	t.publish(t.snap.Load().rules)
}

// TernaryScans returns how many lookups fell through to the linear
// ternary scan — zero in steady state once the classifier compiles.
func (t *Table) TernaryScans() uint64 { return t.ternaryScans.Load() }

// ClassifierInfo describes the current snapshot's classifier state for
// observability and tests.
type ClassifierInfo struct {
	// Attempted is false until a classified lookup first compiles.
	Attempted bool
	// Compiled reports whether lookups are served by compiled tables
	// (false after a strategy/budget fallback or below MinRules).
	Compiled bool
	Stats    classify.Stats
}

// ClassifierInfo reports the live snapshot's classifier state without
// forcing compilation.
func (t *Table) ClassifierInfo() ClassifierInfo {
	s := t.snap.Load()
	switch s.clsState.Load() {
	case clsCompiled:
		return ClassifierInfo{Attempted: true, Compiled: true, Stats: s.cls.Load().Stats()}
	case clsFallback:
		return ClassifierInfo{Attempted: true}
	}
	return ClassifierInfo{}
}

// Lookup returns the highest-priority matching rule, or nil. Lock-free:
// it reads the current snapshot, probes the exact-match hash index, and
// resolves the ternary set through the compiled classifier — O(columns)
// regardless of rule count — falling back to the linear scan only when
// compilation declined (see classify.Config).
func (t *Table) Lookup(vals ...uint64) *Rule {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("dataplane: table %s lookup with %d values, want %d", t.Name, len(vals), t.Cols))
	}
	s := t.snap.Load()
	var best *Rule
	if s.exact != nil {
		var k exactKey
		copy(k[:], vals)
		if bucket := s.exact[k]; len(bucket) > 0 {
			best = bucket[0]
		}
	}
	if len(s.ternary) == 0 {
		return best
	}
	if c := s.classifier(); c != nil {
		if leaf := c.Lookup(vals); len(leaf) > 0 {
			r := s.ternary[leaf[0]]
			if best == nil || r.before(best) {
				return r
			}
		}
		return best
	}
	t.ternaryScans.Add(1)
	for _, r := range s.ternary {
		if best != nil && best.before(r) {
			break // ternary is in match order; nothing later can win
		}
		if r.Matches(vals) {
			return r
		}
	}
	return best
}

// LookupAll returns every matching rule in priority order. Newton's
// newton_init uses it to dispatch one packet to every query chain that
// monitors its traffic class ("Newton chains the queries monitoring the
// same traffic", §4.1). The result is freshly allocated; use
// LookupAllAppend on the per-packet path.
func (t *Table) LookupAll(vals ...uint64) []*Rule {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("dataplane: table %s lookup with %d values, want %d", t.Name, len(vals), t.Cols))
	}
	return t.LookupAllAppend(nil, vals)
}

// LookupAllAppend appends every matching rule in priority order to dst
// and returns the extended slice. It performs no allocation beyond what
// dst needs to grow, so a caller-owned buffer makes repeated lookups
// allocation-free.
func (t *Table) LookupAllAppend(dst []*Rule, vals []uint64) []*Rule {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("dataplane: table %s lookup with %d values, want %d", t.Name, len(vals), t.Cols))
	}
	s := t.snap.Load()
	var bucket []*Rule
	if s.exact != nil {
		var k exactKey
		copy(k[:], vals)
		bucket = s.exact[k]
	}
	if len(s.ternary) == 0 {
		return append(dst, bucket...)
	}
	// Merge the (match-ordered) index bucket with the (match-ordered)
	// ternary matches, preserving global match order. The compiled
	// classifier's leaf is the full ternary match set as ascending
	// indices — already match order — so the merge does zero per-rule
	// work; only the scan fallback evaluates rules.
	bi := 0
	if c := s.classifier(); c != nil {
		for _, idx := range c.Lookup(vals) {
			r := s.ternary[idx]
			for bi < len(bucket) && bucket[bi].before(r) {
				dst = append(dst, bucket[bi])
				bi++
			}
			dst = append(dst, r)
		}
		return append(dst, bucket[bi:]...)
	}
	t.ternaryScans.Add(1)
	for _, r := range s.ternary {
		if !r.Matches(vals) {
			continue
		}
		for bi < len(bucket) && bucket[bi].before(r) {
			dst = append(dst, bucket[bi])
			bi++
		}
		dst = append(dst, r)
	}
	dst = append(dst, bucket[bi:]...)
	return dst
}

// Entries returns the current rule count.
func (t *Table) Entries() int {
	return len(t.snap.Load().rules)
}

// Clear removes all rules (used by the Sonata reboot model).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byID = make(map[int]*Rule)
	t.snap.Store(emptySnap)
	t.version.Add(1)
}

// Rules returns the current snapshot of the rules in match order. The
// returned slice is immutable shared state: it stays coherent while
// concurrent AddRule/RemoveRule/Clear calls proceed, but does not
// reflect them.
func (t *Table) Rules() []*Rule {
	return t.snap.Load().rules
}

// prefixLen returns the prefix length of an LPM mask. The mask's set
// bits must be contiguous (a prefix possibly shifted within the 64-bit
// storage of a narrower field); anything else would silently mis-rank
// the rule, so it is rejected.
func prefixLen(mask uint64) (int, error) {
	if mask != 0 {
		run := mask >> bits.TrailingZeros64(mask)
		if run&(run+1) != 0 {
			return 0, fmt.Errorf("non-contiguous LPM mask %#x", mask)
		}
	}
	return bits.OnesCount64(mask), nil
}
