package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/baselines"
	"github.com/newton-net/newton/internal/dataplane"
)

func TestTable3MatchesPaperCalibration(t *testing.T) {
	r := Table3()
	// Per-stage: compact is exactly 4x the naive baseline.
	for k := dataplane.ResourceKind(0); k < dataplane.NumResourceKinds; k++ {
		if r.PerStageBaseline[k] == 0 {
			continue
		}
		ratio := r.PerStageCompact[k] / r.PerStageBaseline[k]
		if ratio < 3.99 || ratio > 4.01 {
			t.Errorf("%v: compact/baseline = %.3f, want 4", k, ratio)
		}
	}
	// Published Table 3 anchor points (±10%).
	anchors := []struct {
		name string
		got  float64
		want float64
	}{
		{"compact crossbar", r.PerStageCompact[dataplane.Crossbar], 0.04756},
		{"compact VLIW", r.PerStageCompact[dataplane.VLIW], 0.1690},
		{"H crossbar", r.PerModule[1][dataplane.Crossbar], 0.02682},
		{"S SRAM", r.PerModule[2][dataplane.SRAM], 0.03521},
		{"S SALU", r.PerModule[2][dataplane.SALU], 0.05555},
		{"R TCAM", r.PerModule[3][dataplane.TCAM], 0.04301},
		{"R VLIW", r.PerModule[3][dataplane.VLIW], 0.1056},
		{"filter crossbar", r.PerPrimitive[0][dataplane.Crossbar], 0.000186},
		{"reduce crossbar", r.PerPrimitive[2][dataplane.Crossbar], 0.000371},
		{"distinct crossbar", r.PerPrimitive[3][dataplane.Crossbar], 0.000557},
	}
	for _, a := range anchors {
		if a.got < a.want*0.9 || a.got > a.want*1.1 {
			t.Errorf("%s = %.6f, paper says %.6f", a.name, a.got, a.want)
		}
	}
	// Primitive costs order: filter = map < reduce < distinct.
	if r.PerPrimitive[0] != r.PerPrimitive[1] {
		t.Error("filter and map should amortize identically")
	}
	if r.PerPrimitive[2][dataplane.SRAM] <= r.PerPrimitive[0][dataplane.SRAM] {
		t.Error("reduce should cost more than filter")
	}
	if r.PerPrimitive[3][dataplane.SRAM] <= r.PerPrimitive[2][dataplane.SRAM] {
		t.Error("distinct should cost more than reduce")
	}
	if !strings.Contains(r.String(), "Per-primitive") {
		t.Error("String missing sections")
	}
}

func TestFig15ReproducesReductions(t *testing.T) {
	r := Fig15Compilation()
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.MinModuleReduction < 0.41 {
		t.Errorf("min module reduction %.3f (paper: 0.424)", r.MinModuleReduction)
	}
	if r.MinStageReduction < 0.69 {
		t.Errorf("min stage reduction %.3f (paper: 0.697)", r.MinStageReduction)
	}
	for _, row := range r.Rows {
		// Monotonic through Opt1 and Opt2.
		if row.Modules[1] > row.Modules[0] || row.Modules[2] > row.Modules[1] {
			t.Errorf("%s module counts not monotone: %v", row.Query, row.Modules)
		}
		if row.Stages[3] >= row.Stages[2] {
			t.Errorf("%s Opt3 did not cut stages: %v", row.Query, row.Stages)
		}
		if row.SonataTables == 0 || row.SonataStages == 0 {
			t.Errorf("%s missing Sonata estimate", row.Query)
		}
	}
	// Q6's multiplexing effect (§6.4): more primitives than Q8 but fewer
	// optimized stages.
	q6, q8 := r.Rows[5], r.Rows[7]
	if q6.Primitives <= q8.Primitives {
		t.Fatal("catalog drifted: Q6 should have more primitives than Q8")
	}
	if q6.Stages[3] >= q8.Stages[3] {
		t.Errorf("Q6 optimized stages %d should undercut Q8's %d", q6.Stages[3], q8.Stages[3])
	}
	if !strings.Contains(r.String(), "minimum reductions") {
		t.Error("String missing summary")
	}
}

func TestFig16MultiplexingShape(t *testing.T) {
	r := Fig16Multiplexing([]int{1, 10, 100})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	one, ten, hundred := r.Rows[0], r.Rows[1], r.Rows[2]
	// Sonata and S-Newton linear.
	if ten.SonataStages != 10*one.SonataStages || hundred.SNewtonModules != 100*one.SNewtonModules {
		t.Error("chained systems should scale linearly")
	}
	// P-Newton constant modules/stages; rules linear.
	if hundred.PNewtonModules != one.PNewtonModules || hundred.PNewtonStages != one.PNewtonStages {
		t.Errorf("P-Newton modules/stages grew: %+v vs %+v", hundred, one)
	}
	if hundred.PNewtonRules <= 50*one.PNewtonRules {
		t.Errorf("P-Newton rules should grow with queries: %d vs %d", hundred.PNewtonRules, one.PNewtonRules)
	}
	if hundred.PNewtonModules >= hundred.SNewtonModules/10 {
		t.Error("multiplexing advantage should be an order of magnitude at 100 queries")
	}
	if !strings.Contains(r.String(), "P-Newton") {
		t.Error("String missing columns")
	}
}

func TestFig17PlacementShape(t *testing.T) {
	r := Fig17Placement()
	if len(r.A) < 3 || len(r.B) < 3 {
		t.Fatalf("panels too small: %d/%d", len(r.A), len(r.B))
	}
	// Panel (a): total entries grow with required switches on both
	// topologies.
	first, last := r.A[0], r.A[len(r.A)-1]
	if last.FatTreeTotal <= first.FatTreeTotal || last.ISPTotal <= first.ISPTotal {
		t.Errorf("total entries should grow with partitions: %+v -> %+v", first, last)
	}
	// Panel (b): total linear with scale, average stable.
	b0, bN := r.B[0], r.B[len(r.B)-1]
	scale := float64(bN.Switches) / float64(b0.Switches)
	growth := float64(bN.Total) / float64(b0.Total)
	if growth < scale*0.8 || growth > scale*1.2 {
		t.Errorf("total growth %.2f should track switch growth %.2f", growth, scale)
	}
	if bN.Avg > b0.Avg*1.2 || bN.Avg < b0.Avg*0.8 {
		t.Errorf("average entries should stabilize: %.2f -> %.2f", b0.Avg, bN.Avg)
	}
	if !strings.Contains(r.String(), "fat-tree scale") {
		t.Error("String missing panel b")
	}
}

func TestFig10InterruptionShape(t *testing.T) {
	r := Fig10Interruption(500, 20, 10000)
	// Newton never drops; Sonata drops for seconds.
	if r.NewtonDropped != 0 {
		t.Errorf("Newton dropped %d packets during install", r.NewtonDropped)
	}
	if r.SonataDropped == 0 {
		t.Error("Sonata reboot dropped nothing")
	}
	if r.SonataOutage < 7*time.Second {
		t.Errorf("Sonata outage %v implausibly short", r.SonataOutage)
	}
	if r.NewtonOpDelay > 50*time.Millisecond {
		t.Errorf("Newton op delay %v too long", r.NewtonOpDelay)
	}
	// Panel (a): Sonata throughput hits zero in some bucket; Newton's
	// never does.
	zeroed := false
	for _, v := range r.SonataSeries {
		if v == 0 {
			zeroed = true
		}
	}
	if !zeroed {
		t.Error("Sonata series never hit zero during reboot")
	}
	for i, v := range r.NewtonSeries {
		if v == 0 {
			t.Errorf("Newton throughput zeroed at second %d", i)
		}
	}
	// Panel (b): interruption grows linearly; ~30s at 60K entries.
	n := len(r.Entries)
	if r.Interruption[n-1] <= r.Interruption[0] {
		t.Error("interruption not growing with entries")
	}
	last := r.Interruption[n-1]
	if last < 27*time.Second || last > 33*time.Second {
		t.Errorf("interruption at 60K = %v, paper says ~30 s", last)
	}
	if !strings.Contains(r.String(), "Sonata interruption") {
		t.Error("String missing panel b")
	}
}

func TestFig11DelayEnvelope(t *testing.T) {
	r := Fig11OperationDelay(25)
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Max > 25*time.Millisecond {
			t.Errorf("%s install max %v exceeds the paper's envelope", row.Query, row.Max)
		}
		if row.RemoveMax > 25*time.Millisecond {
			t.Errorf("%s remove max %v too long", row.Query, row.RemoveMax)
		}
	}
	// Q1 is the cheapest (~5 ms).
	if r.Rows[0].InstallAvg > 7*time.Millisecond {
		t.Errorf("Q1 install avg %v, paper says ~5 ms", r.Rows[0].InstallAvg)
	}
	if !strings.Contains(r.String(), "Q9") {
		t.Error("String missing rows")
	}
}

func TestFig12OverheadShape(t *testing.T) {
	r := Fig12Overhead(800, 300*time.Millisecond)
	byKey := map[string]float64{}
	for _, row := range r.Rows {
		byKey[row.Trace+"/"+row.System.String()] = row.Overhead
	}
	for _, tr := range []string{"CAIDA", "MAWI"} {
		newton := byKey[tr+"/Newton"]
		turbo := byKey[tr+"/TurboFlow"]
		star := byKey[tr+"/*Flow"]
		if newton <= 0 {
			t.Fatalf("%s: Newton exported nothing", tr)
		}
		// Two orders of magnitude below TurboFlow and *Flow.
		if newton*20 > turbo {
			t.Errorf("%s: Newton %.2e not far below TurboFlow %.2e", tr, newton, turbo)
		}
		if star < turbo {
			t.Errorf("%s: *Flow should exceed TurboFlow", tr)
		}
	}
	if !strings.Contains(r.String(), "Msgs/packet") {
		t.Error("String missing header")
	}
}

func TestFig13CQEShape(t *testing.T) {
	r := Fig13CQEOverhead(4)
	newton := map[int]int{}
	sonata := map[int]int{}
	for _, row := range r.Rows {
		switch row.System {
		case baselines.Newton:
			newton[row.Hops] = row.Messages
		case baselines.Sonata:
			sonata[row.Hops] = row.Messages
		}
	}
	// Newton flat; Sonata linear.
	if newton[4] > newton[1]+1 {
		t.Errorf("Newton messages grew with hops: %v", newton)
	}
	if sonata[4] != 4*sonata[1] {
		t.Errorf("Sonata should be linear in hops: %v", sonata)
	}
	if !strings.Contains(r.String(), "Newton") {
		t.Error("String missing rows")
	}
}

func TestFig14AccuracyShape(t *testing.T) {
	r := Fig14Accuracy([]uint32{256, 2048}, 3)
	get := func(sys string, w uint32) *Fig14Row {
		for i := range r.Rows {
			if r.Rows[i].System == sys && r.Rows[i].Registers == w {
				return &r.Rows[i]
			}
		}
		t.Fatalf("missing row %s/%d", sys, w)
		return nil
	}
	// Count-Min never undercounts, so recall stays high — but not
	// always 1 at tiny widths: the report-once exact-match crossing can
	// be skipped when a colliding key inflates the estimate between a
	// victim's packets (the same artifact afflicts Sonata's accurate
	// exportation on hardware).
	for _, row := range r.Rows {
		if row.Recall < 0.8 {
			t.Errorf("%s@%d recall %.2f too low", row.System, row.Registers, row.Recall)
		}
		if row.Registers >= 2048 && row.Recall < 1 {
			t.Errorf("%s@%d recall %.2f < 1 at ample width", row.System, row.Registers, row.Recall)
		}
	}
	// Pooling registers across switches improves accuracy at small
	// arrays (the paper's ~350% claim at 256 registers)...
	s256 := get("Sonata", 256)
	n3 := get("Newton_3", 256)
	if n3.Accuracy <= s256.Accuracy {
		t.Errorf("CQE did not improve accuracy at 256 registers: %.3f vs %.3f", n3.Accuracy, s256.Accuracy)
	}
	// ...and larger arrays improve every system.
	if get("Sonata", 2048).Accuracy < s256.Accuracy {
		t.Error("more registers should not hurt Sonata")
	}
	if !strings.Contains(r.String(), "Newton_3") {
		t.Error("String missing series")
	}
}

func TestAblation(t *testing.T) {
	r := Ablation()
	if len(r.RowsMeanError) != 4 || len(r.BloomFPR) != 4 {
		t.Fatalf("rows = %d/%d", len(r.RowsMeanError), len(r.BloomFPR))
	}
	// Two rows cut the tail error sharply on an elephant-heavy stream
	// (a mouse must collide with an elephant in BOTH rows)...
	if r.RowsP99Error[1] >= r.RowsP99Error[0] {
		t.Errorf("2-row p99 (%.2f) should beat 1-row p99 (%.2f)", r.RowsP99Error[1], r.RowsP99Error[0])
	}
	// ...while every error stays non-negative (CM cannot undercount).
	for i := range r.RowsMeanError {
		if r.RowsMeanError[i] < 0 || r.RowsP99Error[i] < 0 {
			t.Errorf("rows=%d negative error (CM cannot undercount)", i+1)
		}
	}
	if r.CompactBanks != 24 || r.NaiveBanks != 3 {
		t.Errorf("banks = %d/%d, want 24/3", r.CompactBanks, r.NaiveBanks)
	}
	if r.RegisterRatio != 8 {
		t.Errorf("register ratio = %.1f, want 8", r.RegisterRatio)
	}
	if !strings.Contains(r.String(), "state banks") {
		t.Error("String missing layout study")
	}
}
