// Concurrent queries: the full Table 2 catalog multiplexed on one
// switch.
//
// All nine evaluation queries install side by side into a single module
// layout — sharing module tables and state banks through rule
// multiplexing — and a mixed workload carrying every attack class shows
// each query firing on its own targets. The footprint report at the end
// is the resource-multiplexing story of Fig. 16 in miniature.
//
// Run with: go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/newton-net/newton"
)

func main() {
	topo, h1, h2 := newton.LinearTopology(1)
	net, err := newton.NewNetwork(topo, newton.NetworkConfig{Stages: 16, ArraySize: 1 << 15})
	if err != nil {
		log.Fatal(err)
	}
	ctl := newton.NewController(net, 5)

	queries := newton.AllQueries()
	var totalDelay time.Duration
	for _, q := range queries {
		dep, delay, err := ctl.Install(newton.Deploy{Query: q, Width: 1 << 11})
		if err != nil {
			log.Fatalf("installing %s: %v", q.Name, err)
		}
		totalDelay += delay
		fmt.Printf("installed %-26s as query %d (%2d rules, %v)\n",
			q.Name, dep.QID, dep.Rules, delay.Round(time.Microsecond))
	}
	fmt.Printf("all nine intents live in %v total — one pipeline, zero reboots\n\n", totalDelay.Round(time.Millisecond))

	// One workload carrying every attack class the catalog targets.
	tr := newton.GenerateTrace(newton.TraceConfig{Seed: 31, Flows: 1500, Duration: 300 * time.Millisecond},
		newton.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		newton.UDPFlood{Victim: 0x0A0000AB, Sources: 150},
		newton.PortScan{Scanner: 0x0B000001, Victim: 0x0A0000AC, Ports: 200},
		newton.SSHBrute{Victim: 0x0A0000AD, Attempts: 100},
		newton.Slowloris{Victim: 0x0A0000AE, Conns: 150},
		newton.DNSNoTCP{Hosts: 4, Queries: 30},
		newton.SuperSpreader{Source: 0x0B000002, Fanout: 200},
	)
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}

	perQuery := map[int]map[uint64]bool{}
	for _, r := range net.DrainReports() {
		if perQuery[r.QueryID] == nil {
			perQuery[r.QueryID] = map[uint64]bool{}
		}
		key := r.Keys.Get(newton.FieldDstIP)
		if key == 0 {
			key = r.Keys.Get(newton.FieldSrcIP)
		}
		perQuery[r.QueryID][key] = true
	}
	fmt.Printf("detections over %d packets:\n", len(tr.Packets))
	for i, q := range queries {
		keys := perQuery[i+1]
		fmt.Printf("  Q%d %-26s -> %d flagged host(s)", i+1, q.Name, len(keys))
		for k := range keys {
			fmt.Printf("  %d.%d.%d.%d", k>>24&0xFF, k>>16&0xFF, k>>8&0xFF, k&0xFF)
		}
		fmt.Println()
	}

	node := net.Node(topo.Switches()[0])
	fmt.Printf("\nswitch footprint: %d table rules across the shared module layout\n",
		node.Layout.TotalRuleEntries())
	used := node.Layout.Pipeline().TotalUsed()
	fmt.Printf("pipeline resources in use: %v\n", used)
}
