package rpc

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWriteFrameOversizedRejected(t *testing.T) {
	// An outbound frame over the limit must be rejected before any byte
	// hits the wire — a partial giant frame would desynchronize the peer.
	var sink strings.Builder
	huge := struct {
		Blob string `json:"blob"`
	}{Blob: strings.Repeat("x", MaxFrame+1)}
	err := WriteFrame(&sink, &huge)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if sink.Len() != 0 {
		t.Errorf("%d bytes written before the size check", sink.Len())
	}
}

func TestReadFrameOversizedHeaderRejected(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		client.Write(hdr[:])
	}()
	errCh := make(chan error, 1)
	go func() {
		var v Response
		errCh <- ReadFrame(server, &v)
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadFrame hung on oversized header")
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	go func() {
		client.Write([]byte{0x00, 0x01}) // half a header
		client.Close()
	}()
	var v Response
	if err := ReadFrame(server, &v); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		client.Write(hdr[:])
		client.Write([]byte(`{"ok":tr`)) // body dies mid-read
		client.Close()
	}()
	var v Response
	if err := ReadFrame(server, &v); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// fakeAgentConn answers every request with a fixed response, regardless
// of type — the shape of a buggy or mismatched peer.
func fakeAgentConn(t *testing.T, resp *Response) *Client {
	t.Helper()
	server, client := net.Pipe()
	go func() {
		for {
			var req Request
			if err := ReadFrame(server, &req); err != nil {
				return
			}
			if err := WriteFrame(server, resp); err != nil {
				return
			}
		}
	}()
	c := NewClient(client)
	t.Cleanup(func() { c.Close(); server.Close() })
	return c
}

func TestStatsMissingPayloadIsTypedError(t *testing.T) {
	// OK:true with no stats payload must surface as ErrMalformedResponse,
	// not a nil dereference.
	c := fakeAgentConn(t, &Response{OK: true})
	if _, err := c.Stats(); !errors.Is(err, ErrMalformedResponse) {
		t.Fatalf("Stats err = %v, want ErrMalformedResponse", err)
	}
	if _, err := c.ExportStats(); !errors.Is(err, ErrMalformedResponse) {
		t.Fatalf("ExportStats err = %v, want ErrMalformedResponse", err)
	}
}

func TestAgentSurfacesGarbageFrames(t *testing.T) {
	agent, _ := testAgent(t)
	errs := make(chan error, 1)
	agent.OnError = func(err error) { errs <- err }

	server, client := net.Pipe()
	go agent.HandleConn(server)
	var hdr [4]byte
	body := []byte("not json at all")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	client.Write(hdr[:])
	client.Write(body)

	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error surfaced")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("garbage frame was swallowed silently")
	}
	if agent.ConnErrors() != 1 {
		t.Errorf("ConnErrors = %d, want 1", agent.ConnErrors())
	}
	client.Close()
}

func TestAgentCleanDisconnectIsNotAnError(t *testing.T) {
	agent, _ := testAgent(t)
	agent.OnError = func(err error) { t.Errorf("clean EOF surfaced as error: %v", err) }
	c := pipeClient(t, agent)
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	time.Sleep(20 * time.Millisecond) // let the handler observe the close
	if n := agent.ConnErrors(); n != 0 {
		t.Errorf("ConnErrors = %d after clean close", n)
	}
}

func TestAgentCloseDrainsConnections(t *testing.T) {
	agent, _ := testAgent(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- agent.Serve(ln) }()

	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stats(); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	if err := agent.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Every tracked connection was shut; clients see dead sockets.
	for _, c := range clients {
		if _, err := c.Stats(); err == nil {
			t.Error("client survived agent Close")
		}
		c.Close()
	}
	// Close is idempotent, and a closed agent refuses new serving.
	if err := agent.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := agent.Serve(ln2); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve on closed agent = %v, want net.ErrClosed", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	// Many controllers hammer one agent at once; run under -race this
	// exercises the dispatch lock and connection tracking.
	agent, _ := testAgent(t)
	defer agent.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agent.Serve(ln)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				if _, err := c.Stats(); err != nil {
					t.Error(err)
					return
				}
				if err := c.NextEpoch(); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.DrainReports(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := agent.ConnErrors(); n != 0 {
		t.Errorf("ConnErrors = %d under clean concurrent load", n)
	}
}

func TestExportStatsRoundTrip(t *testing.T) {
	agent, _ := testAgent(t)
	c := pipeClient(t, agent)

	// Without an exporter attached the request fails loudly.
	if _, err := c.ExportStats(); err == nil {
		t.Error("export_stats without an exporter should fail")
	}

	agent.ExportStatsFn = func() ExportStats {
		return ExportStats{Enqueued: 10, Exported: 8, Dropped: 2, Overflows: 1, Batches: 3, Snapshots: 4}
	}
	st, err := c.ExportStats()
	if err != nil {
		t.Fatal(err)
	}
	want := ExportStats{Enqueued: 10, Exported: 8, Dropped: 2, Overflows: 1, Batches: 3, Snapshots: 4}
	if st != want {
		t.Errorf("ExportStats = %+v, want %+v", st, want)
	}
}

func TestEpochHookOrdersBeforeRoll(t *testing.T) {
	agent, _ := testAgent(t)
	c := pipeClient(t, agent)

	var sawEpoch uint32 = 99
	agent.OnEpoch = func() { sawEpoch = agent.eng.Layout().Epoch() }
	if err := c.NextEpoch(); err != nil {
		t.Fatal(err)
	}
	if sawEpoch != 0 {
		t.Errorf("OnEpoch observed epoch %d; must run before the roll (epoch 0)", sawEpoch)
	}
	if got := agent.eng.Layout().Epoch(); got != 1 {
		t.Errorf("epoch after tick = %d, want 1", got)
	}
}
