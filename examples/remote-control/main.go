// Remote control plane: the controller and the switch as separate
// endpoints.
//
// On a real deployment the Newton controller programs switches over
// P4Runtime; here the same separation runs over the repository's TCP
// control channel. A switch agent listens on localhost, traffic flows
// through its pipeline, and the controller — holding only a network
// address — compiles an intent, pushes the rules, ticks the evaluation
// window, and drains reports, all over the wire.
//
// Run with: go run ./examples/remote-control
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/trace"
)

func main() {
	// --- Switch side: a pipeline with the module layout, exposed as an
	// agent on a local TCP port.
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	sw := dataplane.NewSwitch("edge1", 16, modules.StageCapacity())
	if err := sw.AddRoute(0, 0, 1); err != nil {
		log.Fatal(err)
	}
	sw.Monitor = eng

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go rpc.NewAgent(sw, eng).Serve(ln)
	fmt.Printf("switch agent %q serving control channel on %s\n", sw.ID, ln.Addr())

	// --- Controller side: knows only the address.
	client, err := rpc.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctl := controller.NewRemote(map[string]*rpc.Client{"edge1": client}, 7)

	// The intent arrives as text — the operator-facing form.
	q, err := query.Parse("udp_ddos_watch",
		"filter(proto == udp) | map(dip, sip) | distinct(dip, sip) | map(dip) | reduce(dip, sum) | filter(result > 40)")
	if err != nil {
		log.Fatal(err)
	}
	qid, delay, err := ctl.Install(q, 1<<12, nil)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := client.Stats()
	fmt.Printf("installed %q over the wire in %v (%d rules on the switch)\n",
		q.Name, delay.Round(time.Microsecond), st.RuleEntries)

	// Traffic hits the switch while the controller ticks windows.
	victim := uint32(0x0A000042)
	tr := trace.Generate(trace.Config{Seed: 5, Flows: 400, Duration: 300 * time.Millisecond},
		trace.UDPFlood{Victim: victim, Sources: 120})
	window := uint64(q.Window)
	next := window
	for _, pkt := range tr.Packets {
		for pkt.TS >= next {
			if err := ctl.Tick(); err != nil {
				log.Fatal(err)
			}
			next += window
		}
		sw.Process(pkt)
	}

	reports, err := ctl.Collect()
	if err != nil {
		log.Fatal(err)
	}
	col := analyzer.NewCollector(window, q.ReportKeys())
	col.AddAll(reports)
	fmt.Printf("drained %d reports over the wire\n", col.Raw)
	for k := range col.FlaggedKeys() {
		fmt.Printf("  UDP DDoS victim: %d.%d.%d.%d\n", k>>24&0xFF, k>>16&0xFF, k>>8&0xFF, k&0xFF)
	}

	if err := ctl.Remove(qid); err != nil {
		log.Fatal(err)
	}
	st, _ = client.Stats()
	fmt.Printf("removed query %d; switch back to %d rules\n", qid, st.RuleEntries)
}
