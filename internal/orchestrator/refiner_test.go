package orchestrator

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/telemetry"
)

// refFleet is a RefineFleet whose Converge grants each query its width
// cap, optionally clipped by grantMax (a full planner's capacity
// pressure in one knob).
type refFleet struct {
	intents   []Intent
	deployed  map[string]QueryPlan
	qids      map[string]int
	caps      map[string]uint32
	grantMax  uint32 // 0 = grant whatever is bid
	converges int
	bids      []uint32 // every width cap set before a converge
}

func (f *refFleet) Intents() []Intent { return f.intents }
func (f *refFleet) Deployed() map[string]QueryPlan {
	out := map[string]QueryPlan{}
	for n, p := range f.deployed {
		out[n] = p
	}
	return out
}
func (f *refFleet) QID(name string) int { return f.qids[name] }
func (f *refFleet) SetWidthCap(name string, w uint32) {
	if w == 0 {
		delete(f.caps, name)
		return
	}
	f.caps[name] = w
	f.bids = append(f.bids, w)
}
func (f *refFleet) Converge() (*Plan, Diff, error) {
	f.converges++
	for n, cap := range f.caps {
		p := f.deployed[n]
		granted := cap
		if f.grantMax > 0 && granted > f.grantMax {
			granted = f.grantMax
		}
		p.Width = granted
		f.deployed[n] = p
	}
	return &Plan{}, Diff{}, nil
}

// fakeSource replays a scripted accuracy estimate per settled epoch.
type fakeSource struct {
	epoch uint32
	qa    telemetry.QueryAccuracy
}

func (s *fakeSource) LatestSettledEpoch(qid int) (uint32, bool) { return s.epoch, s.epoch > 0 }
func (s *fakeSource) ObservedAccuracy(qid int, epoch uint32, scale uint64) (telemetry.QueryAccuracy, bool) {
	qa := s.qa
	qa.Epoch = epoch
	return qa, true
}

// qaFor builds the estimate a width-w Count-Min over an n-packet stream
// yields at decision scale.
func qaFor(w uint32, n, scale uint64) telemetry.QueryAccuracy {
	return telemetry.QueryAccuracy{
		StreamTotal: n, Scale: scale, Width: w, CMSRows: 3,
		AbsErr: sketch.CMSAbsError(w, n),
		RelErr: sketch.CMSAbsError(w, n) / float64(scale),
	}
}

// refinerRig wires a one-query fake fleet at the given starting width.
func refinerRig(width uint32) (*refFleet, *fakeSource) {
	q := query.Q1(50) // threshold 50: the decision scale
	fleet := &refFleet{
		intents: []Intent{{
			Query: q, MinWidth: 256, MaxWidth: 8192,
			Accuracy: query.Accuracy{MaxRelErr: 0.25},
		}},
		deployed: map[string]QueryPlan{q.Name: {Width: width}},
		qids:     map[string]int{q.Name: 7},
		caps:     map[string]uint32{},
	}
	return fleet, &fakeSource{}
}

// tick advances the source one settled epoch with the estimate the
// CURRENT deployed width yields over an n-packet stream, then steps.
func tick(t *testing.T, r *Refiner, fleet *refFleet, src *fakeSource, n uint64) StepReport {
	t.Helper()
	src.epoch++
	src.qa = qaFor(fleet.deployed[fleet.intents[0].Query.Name].Width, n, 50)
	rep, err := r.Step()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRefinerWidensFastOnSustainedOverrun: two settled epochs out of
// band jump the query straight to the rung the measured stream needs —
// not one rung at a time — and the cooldown then holds resizes off
// while the fresh sketch refills.
func TestRefinerWidensFastOnSustainedOverrun(t *testing.T) {
	fleet, src := refinerRig(256)
	r := NewRefiner(fleet, src, RefinerConfig{})
	name := fleet.intents[0].Query.Name

	// Surge: 12k packets/epoch. Width 256 admits e*12000/256/50 ≈ 2.55.
	if rep := tick(t, r, fleet, src, 12000); len(rep.Events) != 0 {
		t.Fatalf("one bad epoch already resized: %v", rep.Events)
	}
	rep := tick(t, r, fleet, src, 12000)
	if len(rep.Events) != 1 || rep.Events[0].Action != "widen" {
		t.Fatalf("second bad epoch events = %v, want one widen", rep.Events)
	}
	// e·12000/w ≤ 0.25·50 needs w ≥ 2609 → rung 4096, in ONE jump.
	if got := fleet.deployed[name].Width; got != 4096 {
		t.Fatalf("width after widen = %d, want 4096", got)
	}
	if fleet.converges != 1 {
		t.Fatalf("converges = %d, want 1", fleet.converges)
	}
	// Cooldown: the next CooldownEpochs settled epochs change nothing,
	// even though the (stale-width) estimate is still scripted high.
	for i := 0; i < 2; i++ {
		if rep := tick(t, r, fleet, src, 12000); len(rep.Events) != 0 {
			t.Fatalf("cooldown epoch %d acted: %v", i, rep.Events)
		}
	}
	// At 4096 the surge is in band (≈0.16 ≤ 0.25): quiet.
	tick(t, r, fleet, src, 12000)
	st := r.States()[0]
	if !st.InBand || st.Widens != 1 || st.Flaps != 0 {
		t.Fatalf("state = %+v, want in-band, 1 widen, 0 flaps", st)
	}
}

// TestRefinerBurstyTraceZeroFlaps is the satellite-4 hysteresis
// contract: an error trace that alternates in and out of band every
// epoch must produce ZERO resizes — each reversal resets the other
// direction's run counter, so neither threshold is ever reached.
func TestRefinerBurstyTraceZeroFlaps(t *testing.T) {
	fleet, src := refinerRig(1024)
	r := NewRefiner(fleet, src, RefinerConfig{})

	for i := 0; i < 20; i++ {
		var n uint64 = 1000 // in band at 1024, and cheap enough to tempt a narrow
		if i%2 == 0 {
			n = 30000 // out of band at 1024 (≈1.28)
		}
		if rep := tick(t, r, fleet, src, n); len(rep.Events) != 0 {
			t.Fatalf("bursty epoch %d resized: %v", i, rep.Events)
		}
	}
	st := r.States()[0]
	if st.Resizes != 0 || st.Flaps != 0 || fleet.converges != 0 {
		t.Fatalf("bursty trace: resizes=%d flaps=%d converges=%d, want all 0",
			st.Resizes, st.Flaps, fleet.converges)
	}
}

// TestRefinerNarrowsSlowOneRungAtATime: an over-provisioned query needs
// NarrowAfter consecutive comfortable epochs before giving back ONE
// rung, and stops narrowing at the rung whose predicted error would eat
// the safety margin.
func TestRefinerNarrowsSlowOneRungAtATime(t *testing.T) {
	fleet, src := refinerRig(4096)
	r := NewRefiner(fleet, src, RefinerConfig{})
	name := fleet.intents[0].Query.Name

	// Calm: 2000 packets/epoch. At 4096 observed ≈ 0.027; predicted at
	// 2048 ≈ 0.053 ≤ 0.6·0.25 — a clear over-provision. Six epochs
	// before anything moves, then exactly one rung.
	for i := 0; i < 5; i++ {
		if rep := tick(t, r, fleet, src, 2000); len(rep.Events) != 0 {
			t.Fatalf("narrowed after only %d calm epochs: %v", i+1, rep.Events)
		}
	}
	rep := tick(t, r, fleet, src, 2000)
	if len(rep.Events) != 1 || rep.Events[0].Action != "narrow" {
		t.Fatalf("sixth calm epoch events = %v, want one narrow", rep.Events)
	}
	if got := fleet.deployed[name].Width; got != 2048 {
		t.Fatalf("width after narrow = %d, want one rung to 2048", got)
	}
	// Cooldown (2), then six more calm epochs: the next rung.
	for i := 0; i < 8; i++ {
		tick(t, r, fleet, src, 2000)
	}
	if got := fleet.deployed[name].Width; got != 1024 {
		t.Fatalf("width after second narrow cycle = %d, want 1024", got)
	}
	// At 1024 the next rung down (512) predicts e*2000/512/50 ≈ 0.21 >
	// 0.15: the refiner keeps the margin and stops here for good.
	for i := 0; i < 12; i++ {
		tick(t, r, fleet, src, 2000)
	}
	st := r.States()[0]
	if got := fleet.deployed[name].Width; got != 1024 || st.Narrows != 2 {
		t.Fatalf("width=%d narrows=%d after long calm, want floor at 1024 with 2 narrows", got, st.Narrows)
	}
	if st.Flaps != 0 {
		t.Fatalf("flaps = %d, want 0", st.Flaps)
	}
}

// TestRefinerRespectsRejectedRung is the satellite-2 contract: a rung
// the planner refused is remembered — the refiner bids below it instead
// of retry-storming — until RejectHold expires on the injected clock.
func TestRefinerRespectsRejectedRung(t *testing.T) {
	fleet, src := refinerRig(256)
	now := time.Unix(1000, 0)
	r := NewRefiner(fleet, src, RefinerConfig{
		RejectHold: 30 * time.Second,
		Clock:      func() time.Time { return now },
	})
	name := fleet.intents[0].Query.Name
	fleet.grantMax = 1024 // the planner degrades anything wider

	// Sustained surge wants 4096; the fleet grants 1024.
	tick(t, r, fleet, src, 12000)
	rep := tick(t, r, fleet, src, 12000)
	var actions []string
	for _, e := range rep.Events {
		actions = append(actions, e.Action)
	}
	if len(actions) != 2 || actions[0] != "reject" || actions[1] != "widen" {
		t.Fatalf("degraded widen events = %v, want [reject widen]", actions)
	}
	if got := fleet.deployed[name].Width; got != 1024 {
		t.Fatalf("width = %d, want granted 1024", got)
	}
	if st := r.States()[0]; st.Rejected != 4096 {
		t.Fatalf("Rejected = %d, want remembered rung 4096", st.Rejected)
	}

	// Still over tolerance at 1024 (≈0.64). Within the hold the refiner
	// must never bid 4096 again — it probes below the rejected rung.
	for i := 0; i < 8; i++ {
		tick(t, r, fleet, src, 12000)
	}
	for _, b := range fleet.bids[1:] {
		if b >= 4096 {
			t.Fatalf("bids %v re-request the rejected rung during the hold", fleet.bids)
		}
	}

	// Hold expires and the fleet has capacity again: the widen lands.
	now = now.Add(61 * time.Second)
	fleet.grantMax = 0
	tick(t, r, fleet, src, 12000)
	tick(t, r, fleet, src, 12000)
	if got := fleet.deployed[name].Width; got != 4096 {
		t.Fatalf("width after hold expiry = %d, want 4096", got)
	}
}

// TestRefinerIgnoresUnsettledEvidence: partial or width-transition
// epochs, and epochs already processed, never advance the state
// machine.
func TestRefinerIgnoresUnsettledEvidence(t *testing.T) {
	fleet, src := refinerRig(256)
	r := NewRefiner(fleet, src, RefinerConfig{})

	src.epoch = 1
	src.qa = qaFor(256, 12000, 50)
	src.qa.Partial = true
	for i := 0; i < 5; i++ {
		rep, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Examined != 0 {
			t.Fatal("partial epoch examined")
		}
	}
	src.qa.Partial = false
	src.qa.Transition = true
	if rep, _ := r.Step(); rep.Examined != 0 {
		t.Fatal("transition epoch examined")
	}
	src.qa.Transition = false
	if rep, _ := r.Step(); rep.Examined != 1 {
		t.Fatal("clean epoch not examined")
	}
	// Same epoch again: already processed.
	if rep, _ := r.Step(); rep.Examined != 0 {
		t.Fatal("stale epoch re-examined")
	}
}

// TestPlanFrugalStartAndWidthCap: an accuracy-enabled intent with no
// refiner decision plans at the ladder floor (memory is earned by
// observed error, not granted up front), and a width cap pins the
// planned width across replans — the satellite-2 floor memory.
func TestPlanFrugalStartAndWidthCap(t *testing.T) {
	f := newFleet(t)
	o := f.orch(t)
	o.SetIntents([]Intent{{
		Query: query.Q1(50), Priority: 1, MinWidth: 256, MaxWidth: 8192,
		Edges: []string{"s1"}, Accuracy: query.Accuracy{MaxRelErr: 0.25},
	}})

	p, _, err := o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Queries[0].Admitted || p.Queries[0].Width != 256 {
		t.Fatalf("frugal start plan = %+v, want admitted at MinWidth 256", p.Queries[0])
	}

	o.SetWidthCap(query.Q1(50).Name, 1024)
	for i := 0; i < 3; i++ { // the cap survives replans: floor memory
		p, _, err = o.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if p.Queries[0].Width != 1024 {
			t.Fatalf("replan %d width = %d, want pinned 1024", i, p.Queries[0].Width)
		}
	}

	o.SetWidthCap(query.Q1(50).Name, 0) // cleared: back to frugal
	p, _, err = o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Width != 256 {
		t.Fatalf("uncapped width = %d, want frugal 256", p.Queries[0].Width)
	}

	// A static intent (no accuracy target) still gets the full ladder.
	o.SetIntents([]Intent{{
		Query: query.Q1(50), Priority: 1, MinWidth: 256, MaxWidth: 1024, Edges: []string{"s1"},
	}})
	p, _, err = o.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries[0].Width != 1024 {
		t.Fatalf("static intent width = %d, want ladder max 1024", p.Queries[0].Width)
	}
}
