package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the observability mux: Prometheus text at /metrics,
// the JSON snapshot at /metrics.json and /debug/vars (the expvar
// convention, so existing tooling that polls it keeps working), and
// the standard pprof handlers under /debug/pprof/.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	jsonHandler := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	}
	mux.HandleFunc("/metrics.json", jsonHandler)
	mux.HandleFunc("/debug/vars", jsonHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve listens on addr (e.g. ":9100", "127.0.0.1:0") and serves the
// observability mux in a background goroutine. Close shuts it down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: &http.Server{Handler: NewMux(reg)}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes its listener.
func (s *Server) Close() error { return s.srv.Close() }
