package dataplane

import "fmt"

// SALUOp is one of the stateful-ALU operations the state bank supports
// (§4.1: "Newton supports four types of ALU. As BF needs | and CM needs
// +, the supported ALUs are sufficient").
type SALUOp int

const (
	// OpRead returns the register value unchanged.
	OpRead SALUOp = iota
	// OpWrite stores the operand and returns it.
	OpWrite
	// OpAdd adds the operand and returns the new value (a Count-Min
	// row's increment-and-read).
	OpAdd
	// OpOr ORs the operand in and returns the previous value (a Bloom
	// filter's test-and-set).
	OpOr
	numSALUOps
)

var saluNames = [numSALUOps]string{"read", "write", "add", "or"}

// String names the ALU operation.
func (op SALUOp) String() string {
	if op >= 0 && op < numSALUOps {
		return saluNames[op]
	}
	return fmt.Sprintf("salu(%d)", int(op))
}

// RegisterArray is a stage's stateful memory: a line-rate-transactional
// array of 32-bit registers, each access performing one SALU operation.
//
// Registers are epoch-tagged to implement windowed reset lazily: the
// controller bumps the epoch every window (100 ms in the evaluation), and
// a register written in an older epoch reads as zero. This reproduces
// the "values of reduce and distinct are evaluated and reset every 100ms"
// discipline without a control-plane sweep.
type RegisterArray struct {
	Name string

	vals   []uint32
	epochs []uint32
	epoch  uint32
}

// NewRegisterArray allocates an array of size registers.
func NewRegisterArray(name string, size uint32) *RegisterArray {
	if size == 0 {
		panic("dataplane: zero-size register array")
	}
	return &RegisterArray{
		Name:   name,
		vals:   make([]uint32, size),
		epochs: make([]uint32, size),
	}
}

// Size returns the number of registers.
func (ra *RegisterArray) Size() uint32 { return uint32(len(ra.vals)) }

// NextEpoch starts a new window: all registers read as zero until
// rewritten.
func (ra *RegisterArray) NextEpoch() { ra.epoch++ }

// Epoch returns the current window number.
func (ra *RegisterArray) Epoch() uint32 { return ra.epoch }

// Exec performs one stateful-ALU transaction on register idx and returns
// the op's result. Out-of-range indices panic: the hash-calculation
// module is responsible for folding hash results into range, and an
// out-of-range access is a compiler bug, not a runtime condition.
func (ra *RegisterArray) Exec(op SALUOp, idx uint32, operand uint32) uint32 {
	if idx >= uint32(len(ra.vals)) {
		panic(fmt.Sprintf("dataplane: register %s[%d] out of range (size %d)", ra.Name, idx, len(ra.vals)))
	}
	if ra.epochs[idx] != ra.epoch {
		ra.epochs[idx] = ra.epoch
		ra.vals[idx] = 0
	}
	switch op {
	case OpRead:
		return ra.vals[idx]
	case OpWrite:
		ra.vals[idx] = operand
		return operand
	case OpAdd:
		ra.vals[idx] += operand
		return ra.vals[idx]
	case OpOr:
		old := ra.vals[idx]
		ra.vals[idx] |= operand
		return old
	}
	panic(fmt.Sprintf("dataplane: unknown SALU op %d", op))
}

// MemoryBytes returns the SRAM footprint of the value array.
func (ra *RegisterArray) MemoryBytes() int { return len(ra.vals) * 4 }
