package experiments

import (
	"fmt"
	"net"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/topology"
)

// Fig17DeployRow is one Fig. 17(a) point reproduced through the real
// deploy path: orchestrator plan → controller.Remote transactional
// deploy → rpc → per-switch engines, instead of counting placement
// entries on paper.
type Fig17DeployRow struct {
	Topology        string
	StagesPerSwitch int
	Partitions      int
	Switches        int // switches granted at least one partition

	// PlannedEntries is what the plan's assignment costs (partition rule
	// counts summed over the assignment, as Fig17Placement counts them);
	// InstalledEntries is what the fleet's module tables actually hold
	// after the deploy, minus the one newton_fin bookkeeping entry each
	// installed program adds on top of its rule count.
	PlannedEntries   int
	InstalledEntries int
	Match            bool
}

// Fig17DeployResult is the deploy-path validation of Fig. 17.
type Fig17DeployResult struct {
	QueryStages int
	Rows        []Fig17DeployRow
}

// Fig17Deploy re-derives Fig. 17(a) points by actually deploying Q4:
// for each per-switch stage budget, an in-process agent fleet is built
// over the topology, the orchestrator plans and admits the intent, and
// the transactional deploy installs every partition. The row matches
// when the rules the engines hold equal the rules the plan promised —
// the placement numbers of Fig. 17 are real deployments, not estimates.
func Fig17Deploy() *Fig17DeployResult {
	isp := topology.ISPBackbone()
	ispEdges := []string{"SanFrancisco", "Sacramento", "LosAngeles", "SanDiego"}
	ft := topology.FatTree(4)
	var ftEdges []string
	for _, id := range ft.EdgeSwitches() {
		ftEdges = append(ftEdges, ft.Node(id).Name)
	}

	res := &Fig17DeployResult{}
	cases := []struct {
		name      string
		topo      *topology.Topology
		edges     []string
		stagesPer int
	}{
		{"isp", isp, ispEdges, 6},
		{"isp", isp, ispEdges, 4},
		{"isp", isp, ispEdges, 3},
		{"fattree4", ft, ftEdges, 6},
	}
	for _, c := range cases {
		row, stages := deployRow(c.topo, c.name, c.edges, c.stagesPer)
		res.QueryStages = stages
		res.Rows = append(res.Rows, row)
	}
	return res
}

// deployRow builds the fleet, converges one Q4 intent through the
// orchestrator, and audits the engines against the plan.
func deployRow(topo *topology.Topology, name string, edges []string, stagesPer int) (Fig17DeployRow, int) {
	// Partitions after the first carry the two-stage continuation prefix,
	// so devices need stagesPer+2 pipeline stages to host them.
	devStages := stagesPer + 2
	const width = 1 << 10

	clients := map[string]*rpc.Client{}
	engines := map[string]*modules.Engine{}
	budgets := map[string]scheduler.Budget{}
	for _, id := range topo.Switches() {
		sn := topo.Node(id).Name
		layout, err := modules.NewLayout(modules.LayoutCompact, devStages, 1<<14)
		if err != nil {
			panic(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(sn, devStages, modules.StageCapacity())
		sw.Monitor = eng
		server, client := net.Pipe()
		go rpc.NewAgent(sw, eng).HandleConn(server)
		clients[sn] = rpc.NewClient(client)
		engines[sn] = eng
		budgets[sn] = scheduler.Budget{Stages: devStages, ArraySize: 1 << 14, RulesPerModule: 256}
	}

	remote := controller.NewRemote(clients, 1)
	orch, err := orchestrator.New(orchestrator.Config{
		Topo: topo, Budgets: budgets, StagesPerSwitch: stagesPer,
	}, remote)
	if err != nil {
		panic(err)
	}
	orch.SetIntents([]orchestrator.Intent{{
		Query: query.Q4(40), Priority: 1,
		MinWidth: width, MaxWidth: width, Edges: edges,
	}})
	plan, _, err := orch.Converge()
	if err != nil {
		panic(fmt.Sprintf("fig17deploy %s stagesPer=%d: %v", name, stagesPer, err))
	}
	qp := plan.Queries[0]
	if !qp.Admitted {
		panic(fmt.Sprintf("fig17deploy %s stagesPer=%d: rejected: %s", name, stagesPer, qp.Reason))
	}

	// Planned cost: partition rule counts summed over the assignment.
	o := compiler.AllOpts()
	o.QID = 1
	o.Width = width
	logical, err := compiler.Compile(query.Q4(40), o)
	if err != nil {
		panic(err)
	}
	partProgs, err := modules.SliceProgram(logical, stagesPer)
	if err != nil {
		panic(err)
	}
	planned, instances := 0, 0
	for _, idxs := range qp.Parts {
		for _, k := range idxs {
			planned += partProgs[k].RuleCount()
			instances++
		}
	}

	// Ground truth: what the fleet's tables hold after the deploy. Each
	// installed program carries one newton_fin entry beyond RuleCount.
	installed := 0
	for _, eng := range engines {
		installed += eng.Layout().TotalRuleEntries()
	}
	installed -= instances

	return Fig17DeployRow{
		Topology:         name,
		StagesPerSwitch:  stagesPer,
		Partitions:       qp.M,
		Switches:         len(qp.Parts),
		PlannedEntries:   planned,
		InstalledEntries: installed,
		Match:            planned == installed,
	}, qp.Stages
}

// String renders the deploy-path audit.
func (r *Fig17DeployResult) String() string {
	t := &table{header: []string{"Topology", "Stages/switch", "Partitions",
		"Switches", "Planned entries", "Installed entries", "Match"}}
	for _, row := range r.Rows {
		match := "OK"
		if !row.Match {
			match = "MISMATCH"
		}
		t.add(row.Topology, i2s(row.StagesPerSwitch), i2s(row.Partitions),
			i2s(row.Switches), i2s(row.PlannedEntries), i2s(row.InstalledEntries), match)
	}
	return fmt.Sprintf("Fig. 17 (deploy path): Q4 (%d stages) planned vs installed table entries\n%s",
		r.QueryStages, t.String())
}

// Metrics exports the installed-entry totals for newton-bench -json.
func (r *Fig17DeployResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[fmt.Sprintf("%s_m%d_installed", row.Topology, row.Partitions)] = float64(row.InstalledEntries)
	}
	return m
}
