package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/newton-net/newton/internal/packet"
)

// Classic libpcap file format (no external dependencies): a 24-byte
// global header followed by per-packet record headers. We write
// nanosecond-resolution files (magic 0xA1B23C4D) because the simulator's
// virtual clock is nanosecond-granular.
const (
	pcapMagicNanos  = 0xA1B23C4D
	pcapMagicMicros = 0xA1B2C3D4
	linkTypeEth     = 1
	pcapSnapLen     = 65535
)

// WritePcap serializes the trace's packets into pcap on w.
func WritePcap(w io.Writer, pkts []*packet.Packet) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing pcap header: %w", err)
	}
	var rec [16]byte
	for _, p := range pkts {
		buf := p.Serialize()
		binary.LittleEndian.PutUint32(rec[0:4], uint32(p.TS/1e9))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(p.TS%1e9))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(buf)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(buf)))
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing pcap record: %w", err)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing pcap packet: %w", err)
		}
	}
	return nil
}

// ReadPcap parses a pcap stream back into packets. Both nanosecond and
// microsecond files are accepted; byte order is auto-detected from the
// magic. Packets that fail to decode (e.g. truncated captures) are
// skipped and counted in the returned skip count.
func ReadPcap(r io.Reader) (pkts []*packet.Packet, skipped int, err error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: reading pcap header: %w", err)
	}
	var order binary.ByteOrder = binary.LittleEndian
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	nanos := false
	switch magic {
	case pcapMagicNanos:
		nanos = true
	case pcapMagicMicros:
	default:
		order = binary.BigEndian
		magic = binary.BigEndian.Uint32(hdr[0:4])
		switch magic {
		case pcapMagicNanos:
			nanos = true
		case pcapMagicMicros:
		default:
			return nil, 0, errors.New("trace: not a pcap file")
		}
	}
	if lt := order.Uint32(hdr[20:24]); lt != linkTypeEth {
		return nil, 0, fmt.Errorf("trace: unsupported link type %d", lt)
	}
	var rec [16]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return pkts, skipped, nil
			}
			return nil, 0, fmt.Errorf("trace: reading pcap record: %w", err)
		}
		capLen := order.Uint32(rec[8:12])
		if capLen > pcapSnapLen {
			return nil, 0, fmt.Errorf("trace: implausible capture length %d", capLen)
		}
		buf := make([]byte, capLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, 0, fmt.Errorf("trace: reading pcap packet: %w", err)
		}
		p, derr := packet.Decode(buf)
		if derr != nil {
			skipped++
			continue
		}
		sec := uint64(order.Uint32(rec[0:4]))
		sub := uint64(order.Uint32(rec[4:8]))
		if nanos {
			p.TS = sec*1e9 + sub
		} else {
			p.TS = sec*1e9 + sub*1e3
		}
		pkts = append(pkts, p)
	}
}
