package query

import (
	"fmt"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
)

// This file defines the nine evaluation queries of Table 2, re-expressed
// from the Sonata open-source query repository in Newton's builder API.
// Each takes its report threshold as a parameter so experiments can
// calibrate sensitivity.

// Q1 monitors newly opened TCP connections: destinations receiving more
// than th SYNs per window.
func Q1(th uint64) *Query {
	return New("q1_new_tcp_connections").
		Describe("Monitor new TCP connections").
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(th).
		Build()
}

// Q2 monitors hosts under SSH brute-force attack: destinations seeing
// more than th distinct packet lengths on port 22 per window (brute
// forcers vary payload sizes across attempts).
func Q2(th uint64) *Query {
	return New("q2_ssh_brute").
		Describe("Monitor hosts under SSH brute attacks").
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.DstPort, 22)).
		Map(fields.DstIP, fields.PktLen).
		Distinct(fields.DstIP, fields.PktLen).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(th).
		Build()
}

// Q3 monitors super spreaders: TCP sources contacting more than th
// distinct destinations per window.
func Q3(th uint64) *Query {
	return New("q3_super_spreader").
		Describe("Monitor super spreaders").
		Filter(Eq(fields.Proto, packet.ProtoTCP)).
		Map(fields.SrcIP, fields.DstIP).
		Distinct(fields.SrcIP, fields.DstIP).
		Map(fields.SrcIP).
		ReduceCount(fields.SrcIP).
		FilterResultGt(th).
		Build()
}

// Q4 monitors hosts under port scanning: destinations probed on more
// than th distinct ports per window.
func Q4(th uint64) *Query {
	return New("q4_port_scan").
		Describe("Monitor hosts under port scanning").
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.DstIP, fields.DstPort).
		Distinct(fields.DstIP, fields.DstPort).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(th).
		Build()
}

// Q5 monitors hosts under UDP DDoS: destinations receiving UDP from more
// than th distinct sources per window.
func Q5(th uint64) *Query {
	return New("q5_udp_ddos").
		Describe("Monitor hosts under UDP DDoS attacks").
		Filter(Eq(fields.Proto, packet.ProtoUDP)).
		Map(fields.DstIP, fields.SrcIP).
		Distinct(fields.DstIP, fields.SrcIP).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(th).
		Build()
}

// Q6 monitors hosts under SYN-flood attack — the paper's worked example
// (Fig. 6). Three branches count SYNs to a host, SYN-ACKs from it, and
// ACKs to it; a host whose SYNs plus SYN-ACKs far exceed twice its ACKs
// has many half-open connections.
func Q6(th int64) *Query {
	return New("q6_syn_flood").
		Describe("Monitor hosts under SYN flood attacks").
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		Branch().
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN|packet.FlagACK)).
		Map(fields.SrcIP).
		ReduceCount(fields.SrcIP).
		FilterResultGt(0).
		Branch().
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagACK)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		MergeLinear([]int64{1, 1, -2}, CmpGt, th).
		Build()
}

// Q7 monitors completed TCP connections: hosts whose opened (SYN) and
// closed (FIN) connection counts both exceed th — the minimum of the two
// bounds the completed count.
func Q7(th int64) *Query {
	return New("q7_completed_tcp").
		Describe("Monitor completed TCP connections").
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		Branch().
		Filter(Eq(fields.Proto, packet.ProtoTCP),
			MaskEq(fields.TCPFlags, packet.FlagFIN, packet.FlagFIN)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		MergeMin(th).
		Build()
}

// Q8 monitors hosts under Slowloris attack: many connections delivering
// few bytes. The data-plane-friendly linear proxy for the byte/connection
// ratio is 512·connections − bytes > th: a host is suspect when its mean
// connection carries well under 512 bytes (including headers).
func Q8(th int64) *Query {
	return New("q8_slowloris").
		Describe("Monitor hosts under Slowloris attacks").
		Filter(Eq(fields.Proto, packet.ProtoTCP)).
		Map(fields.DstIP).
		ReduceSum(fields.PktLen, fields.DstIP).
		FilterResultGt(0).
		Branch().
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.DstIP, fields.SrcPort).
		Distinct(fields.DstIP, fields.SrcPort).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		MergeLinear([]int64{-1, 512}, CmpGt, th).
		Build()
}

// Q9 monitors hosts that receive DNS responses but never open TCP
// connections afterwards (reflection-attack staging). A large negative
// coefficient on the TCP branch vetoes any host with even one SYN.
func Q9(th int64) *Query {
	return New("q9_dns_no_tcp").
		Describe("Monitor hosts that do not create TCP connections after DNS").
		Filter(Eq(fields.Proto, packet.ProtoUDP), Eq(fields.SrcPort, 53)).
		Map(fields.DstIP).
		ReduceCount(fields.DstIP).
		FilterResultGt(0).
		Branch().
		Filter(Eq(fields.Proto, packet.ProtoTCP), Eq(fields.TCPFlags, packet.FlagSYN)).
		Map(fields.SrcIP).
		ReduceCount(fields.SrcIP).
		FilterResultGt(0).
		MergeLinear([]int64{1, -1 << 20}, CmpGt, th).
		Build()
}

// DefaultThresholds holds the per-query thresholds the evaluation uses:
// low enough that injected attacks always trigger, high enough that
// background traffic rarely does.
var DefaultThresholds = map[string]int64{
	"q1": 40, "q2": 20, "q3": 40, "q4": 40, "q5": 40,
	"q6": 30, "q7": 20, "q8": 1000, "q9": 5,
}

// All returns the nine evaluation queries at the default thresholds, in
// order Q1..Q9.
func All() []*Query {
	t := DefaultThresholds
	return []*Query{
		Q1(uint64(t["q1"])), Q2(uint64(t["q2"])), Q3(uint64(t["q3"])),
		Q4(uint64(t["q4"])), Q5(uint64(t["q5"])),
		Q6(t["q6"]), Q7(t["q7"]), Q8(t["q8"]), Q9(t["q9"]),
	}
}

// ByName returns one of the nine queries ("q1".."q9") at its default
// threshold.
func ByName(name string) (*Query, error) {
	for i, q := range All() {
		if name == fmt.Sprintf("q%d", i+1) || name == q.Name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("query: unknown query %q", name)
}
