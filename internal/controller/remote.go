package controller

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
)

// DeployOutcome is one switch's part in a failed deploy.
type DeployOutcome struct {
	Switch      string
	Installed   bool  // the install had succeeded before the deploy failed
	Err         error // the install error, when this switch caused the failure
	RolledBack  bool  // the rollback remove succeeded
	RollbackErr error // rollback failed — residual rules remain on this switch
}

// PartialDeployError reports a deploy that could not complete on every
// target switch. The controller rolls back already-installed rules
// before returning it, because a sharded or partitioned query missing a
// member silently undercounts every key that member owns — all-or-
// nothing is the only safe contract. Outcomes list what happened on
// each touched switch; Residual names switches where even the rollback
// failed and rules may remain.
type PartialDeployError struct {
	QID      int
	Mode     string
	Failed   string // the switch whose install failed
	Outcomes []DeployOutcome
}

func (e *PartialDeployError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "controller: %s deploy of query %d failed on %q", e.Mode, e.QID, e.Failed)
	if res := e.Residual(); len(res) > 0 {
		fmt.Fprintf(&b, " (rollback incomplete, residual rules on %s)", strings.Join(res, ", "))
	} else {
		b.WriteString(" (rolled back)")
	}
	for _, o := range e.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(&b, ": %v", o.Err)
			break
		}
	}
	return b.String()
}

// Residual names switches that may still hold rules for the failed
// deploy (their rollback remove failed too).
func (e *PartialDeployError) Residual() []string {
	var out []string
	for _, o := range e.Outcomes {
		if o.Installed && !o.RolledBack {
			out = append(out, o.Switch)
		}
	}
	return out
}

// deploySpec records what a deployment asked for, so the controller can
// re-drive an agent toward it after the agent restarts (Reconverge).
type deploySpec struct {
	q       *query.Query
	width   uint32
	names   []string
	sharded bool

	// Partitioned cross-switch deploy (resilient placement, §5.2):
	// stagesPer > 0 slices the compiled query into
	// ceil(stages/stagesPer) partitions and parts maps each agent to the
	// partition indices it hosts. names is then the sorted key set of
	// parts.
	stagesPer int
	parts     map[string][]int
}

// Remote is the Newton controller speaking to switch agents over the
// control channel (internal/rpc) instead of in-process engines — the
// shape of a real deployment, where the controller is "a module of the
// centralized network controller or ... an independent process" (§7).
type Remote struct {
	// mu serializes every control-plane operation, including across the
	// network calls an operation makes: the health monitor's SetOffline
	// and an orchestrator converge may drive the same controller
	// concurrently, and interleaving a deploy with an offline flip would
	// corrupt the recorded deployment state.
	mu     sync.Mutex
	agents map[string]*rpc.Client
	rng    *rand.Rand

	nextQID     int
	deployments map[int][]string // qid -> agent names
	specs       map[int]*deploySpec

	// offline marks switches the health monitor has declared unreachable.
	// Deploys targeting an offline switch fail fast instead of burning
	// the rpc client's full retry budget against a dead peer, and removes
	// are deferred into pendingRemoves — flushed when SetOffline(false)
	// re-admits the switch, so a partitioned-but-alive switch cannot
	// rejoin the fleet still holding programs the fleet moved elsewhere.
	offline        map[string]bool
	pendingRemoves map[string]map[int]bool // switch -> qids to remove on return

	// svc, when attached, replaces per-agent report polling: agents push
	// reports to the analyzer service and Collect drains the merged,
	// network-wide-deduplicated stream instead.
	svc *telemetry.Service

	obs ctlObs
}

// NewRemote builds a controller over named agent connections.
func NewRemote(agents map[string]*rpc.Client, seed int64) *Remote {
	return &Remote{
		agents: agents, rng: rand.New(rand.NewSource(seed)),
		nextQID: 1, deployments: map[int][]string{},
		specs:   map[int]*deploySpec{},
		offline: map[string]bool{}, pendingRemoves: map[string]map[int]bool{},
	}
}

// SetOffline flips a switch's reachability as the health monitor sees
// it. Marking a switch offline defers its removes (see Remote.offline);
// marking it back online first flushes every deferred remove, so the
// switch rejoins the fleet without stale programs. A flush error leaves
// the unflushed removes pending (a later SetOffline(false) or
// Reconverge retries them) and is returned to the caller.
func (r *Remote) SetOffline(name string, offline bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.agents[name]; !ok {
		return fmt.Errorf("controller: no agent %q", name)
	}
	r.offline[name] = offline
	if offline {
		return nil
	}
	return r.flushPendingLocked(name)
}

// Offline reports whether a switch is currently marked unreachable.
func (r *Remote) Offline(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offline[name]
}

// flushPendingLocked drives the deferred removes for a switch that is
// back online. An agent that restarted while away already lost the
// programs, so not-installed answers count as success.
func (r *Remote) flushPendingLocked(name string) error {
	pending := r.pendingRemoves[name]
	if len(pending) == 0 {
		return nil
	}
	qids := make([]int, 0, len(pending))
	for qid := range pending {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	c := r.agents[name]
	for _, qid := range qids {
		if err := c.Remove(qid); err != nil && !rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
			inc(&r.obs.removeFailures)
			return fmt.Errorf("controller: flush deferred remove of %d from %q: %w", qid, name, err)
		}
		delete(pending, qid)
		inc(&r.obs.flushedRemoves)
	}
	delete(r.pendingRemoves, name)
	return nil
}

// removeFromLocked removes qid from one agent, deferring the remove
// when the agent is offline instead of failing against a dead peer.
func (r *Remote) removeFromLocked(name string, qid int) error {
	if r.offline[name] {
		if r.pendingRemoves[name] == nil {
			r.pendingRemoves[name] = map[int]bool{}
		}
		r.pendingRemoves[name][qid] = true
		inc(&r.obs.deferredRemoves)
		return nil
	}
	if err := r.agents[name].Remove(qid); err != nil && !rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
		return err
	}
	return nil
}

// compileFor compiles spec's query for position i of its target list.
func (s *deploySpec) compileFor(qid int, i int) (*modules.Program, error) {
	o := compiler.AllOpts()
	o.QID = qid
	o.Width = s.width
	if s.sharded {
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(s.names))
	}
	return compiler.Compile(s.q, o)
}

// programsFor returns the programs agent i of spec's target list must
// hold: one full (possibly sharded) program in replicate/shard mode, or
// the agent's assigned partition slices in placement mode. Programs are
// compiled fresh per agent — register bindings are filled in at install
// time, so two engines must never share a *Program.
func (s *deploySpec) programsFor(qid int, i int) ([]*modules.Program, error) {
	if s.stagesPer <= 0 {
		p, err := s.compileFor(qid, i)
		if err != nil {
			return nil, err
		}
		return []*modules.Program{p}, nil
	}
	p, err := s.compileFor(qid, i)
	if err != nil {
		return nil, err
	}
	parts, err := modules.SliceProgram(p, s.stagesPer)
	if err != nil {
		return nil, err
	}
	name := s.names[i]
	out := make([]*modules.Program, 0, len(s.parts[name]))
	for _, k := range s.parts[name] {
		if k < 0 || k >= len(parts) {
			return nil, fmt.Errorf("controller: partition %d out of range (query slices into %d)", k, len(parts))
		}
		out = append(out, parts[k])
	}
	return out, nil
}

// ownsState reports whether a program holds at least one owning state
// bank — a PassThrough or CrossRead S op keeps no per-switch state, so a
// partition made only of those never contributes bank snapshots.
func ownsState(p *modules.Program) bool {
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
				return true
			}
		}
	}
	return false
}

// deploy transactionally installs spec on every target: either all
// switches hold the query afterwards, or none do (already-installed
// rules are rolled back and a *PartialDeployError describes the
// per-switch outcomes). Transient transport failures are retried inside
// each client; only exhausted retries or agent rejections fail a
// switch.
func (r *Remote) deploy(spec *deploySpec) (int, time.Duration, error) {
	qid := r.nextQID
	maxRules := 0
	var done []string
	var contributors []string

	mode := "replicate"
	switch {
	case spec.sharded:
		mode = "shard"
	case spec.stagesPer > 0:
		mode = "placement"
	}

	// fail rolls back every agent with at least one installed program —
	// Remove(qid) on an agent removes all of the qid's partitions, so a
	// partially-installed agent (placement mode) is covered by including
	// it in the rollback set.
	fail := func(failed string, installErr error, failedPartial bool) error {
		inc(&r.obs.deployFailures)
		perr := &PartialDeployError{QID: qid, Failed: failed, Mode: mode}
		rollback := done
		if failedPartial {
			rollback = append(rollback, failed)
		}
		var failedOutcome *DeployOutcome
		for _, n := range rollback {
			o := DeployOutcome{Switch: n, Installed: true}
			if err := r.removeFromLocked(n, qid); err == nil {
				// Deferred rollback on an offline switch counts as rolled
				// back: the remove is pinned in pendingRemoves and flushes
				// before the switch can rejoin the fleet.
				o.RolledBack = true
				inc(&r.obs.rollbacks)
			} else {
				o.RollbackErr = err
				inc(&r.obs.rollbackFailures)
			}
			if n == failed {
				o.Err = installErr
				failedOutcome = &o
			}
			perr.Outcomes = append(perr.Outcomes, o)
		}
		if failedOutcome == nil {
			perr.Outcomes = append(perr.Outcomes, DeployOutcome{Switch: failed, Err: installErr})
		}
		return perr
	}

	// Preflight before any install: a deploy targeting an offline switch
	// is doomed, and failing here costs nothing instead of a rollback.
	for _, n := range spec.names {
		if r.offline[n] {
			inc(&r.obs.deployFailures)
			return 0, 0, &PartialDeployError{QID: qid, Mode: mode, Failed: n,
				Outcomes: []DeployOutcome{{Switch: n, Err: fmt.Errorf("controller: agent %q offline", n)}}}
		}
	}

	var first *modules.Program
	for i, n := range spec.names {
		c, ok := r.agents[n]
		if !ok {
			return 0, 0, fail(n, fmt.Errorf("controller: no agent %q", n), false)
		}
		progs, err := spec.programsFor(qid, i)
		if err != nil {
			return 0, 0, fail(n, err, false)
		}
		contributes := false
		for pi, p := range progs {
			if err := c.Install(p); err != nil {
				return 0, 0, fail(n, fmt.Errorf("controller: agent %q: %w", n, err), pi > 0)
			}
			if first == nil {
				first = p
			}
			if ownsState(p) {
				contributes = true
			}
			if rules := p.RuleCount() + 1; rules > maxRules {
				maxRules = rules
			}
		}
		done = append(done, n)
		if contributes {
			contributors = append(contributors, n)
		}
	}
	inc(&r.obs.deploys)
	if first != nil {
		r.obs.publish(qid, spec.q.Name, mode, first.Footprint())
	}
	r.nextQID++
	r.deployments[qid] = done
	r.specs[qid] = spec
	if r.svc != nil {
		// Expected contributors are the agents that own state for this
		// query, not every deploy member: a placement partition holding
		// only pass-through or cross-read stages never snapshots a bank,
		// and pinning it as expected would mark every merged epoch
		// Partial/Missing forever.
		r.svc.SetExpected(qid, contributors)
	}
	f := 0.9 + 0.2*r.rng.Float64()
	delay := time.Duration(float64(installBase+time.Duration(maxRules)*installPerRule) * f)
	return qid, delay, nil
}

// resolveNames expands nil to every agent, sorted so shard indices are
// deterministic.
func (r *Remote) resolveNames(names []string) []string {
	if len(names) > 0 {
		return names
	}
	for n := range r.agents {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Install compiles a query and pushes it to the named agents (all
// agents when names is nil). The deploy is transactional: on any
// failure already-installed rules are removed and a typed
// *PartialDeployError is returned. Returns the assigned QID and the
// modeled operation latency (per-switch batches run in parallel; the
// slowest bounds the delay).
func (r *Remote) Install(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deploy(&deploySpec{q: q, width: width, names: r.resolveNames(names)})
}

// Remove uninstalls a deployment from every agent holding it. An agent
// that no longer has the query (it restarted since) already satisfies
// the desired state and does not fail the removal.
func (r *Remote) Remove(qid int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names, ok := r.deployments[qid]
	if !ok {
		return fmt.Errorf("controller: no deployment %d", qid)
	}
	for _, n := range names {
		if err := r.removeFromLocked(n, qid); err != nil {
			inc(&r.obs.removeFailures)
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	delete(r.deployments, qid)
	delete(r.specs, qid)
	if r.svc != nil {
		r.svc.SetExpected(qid, nil)
	}
	inc(&r.obs.removes)
	r.obs.unpublish(qid)
	return nil
}

// Tick rolls the evaluation window on every reachable agent (the
// controller's 100 ms heartbeat). Offline agents are skipped — their
// windows roll again when they rejoin.
func (r *Remote) Tick() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.agents {
		if r.offline[n] {
			continue
		}
		if err := c.NextEpoch(); err != nil {
			inc(&r.obs.tickFailures)
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	inc(&r.obs.ticks)
	return nil
}

// AttachTelemetry switches the controller's report path from polling to
// push: agents stream reports and epoch snapshots to svc, and Collect
// drains svc's deduplicated alert stream instead of round-robin polling
// every agent. Install/Remove/Tick keep using the control channel.
func (r *Remote) AttachTelemetry(svc *telemetry.Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.svc = svc
}

// InstallSharded compiles q once per agent with key sharding (§5.1):
// agent i owns keys whose owner hash ≡ i mod len(names), so the agents
// partition the key space and the analyzer's merged banks reconstruct
// the network-wide view. Names nil shards across all agents (in sorted
// order, so shard indices are deterministic). Sharded deploys are
// strictly all-or-nothing — a missing shard member would silently
// undercount every key it owns — so any failure rolls back and returns
// a *PartialDeployError.
func (r *Remote) InstallSharded(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deploy(&deploySpec{q: q, width: width, names: r.resolveNames(names), sharded: true})
}

// Reconverge re-drives every live deployment toward its recorded spec:
// each agent is offered its program again, and an "already installed"
// answer counts as convergence (the ops are level-triggered). This is
// the controller's answer to an agent restart that lost its installs —
// call it whenever an agent reappears. Offline agents are skipped (and
// any deferred removes for reachable agents are flushed first). It
// returns the first hard error.
func (r *Remote) Reconverge() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.pendingRemoves {
		if r.offline[name] {
			continue
		}
		if err := r.flushPendingLocked(name); err != nil {
			inc(&r.obs.reconvergeFailures)
			return err
		}
	}
	qids := make([]int, 0, len(r.specs))
	for qid := range r.specs {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		spec := r.specs[qid]
		for i, n := range spec.names {
			if r.offline[n] {
				continue
			}
			c, ok := r.agents[n]
			if !ok {
				inc(&r.obs.reconvergeFailures)
				return fmt.Errorf("controller: no agent %q", n)
			}
			progs, err := spec.programsFor(qid, i)
			if err != nil {
				inc(&r.obs.reconvergeFailures)
				return err
			}
			for _, p := range progs {
				if err := c.Install(p); err != nil && !rpc.IsAgentCode(err, rpc.CodeAlreadyInstalled) {
					inc(&r.obs.reconvergeFailures)
					return fmt.Errorf("controller: reconverge agent %q: %w", n, err)
				}
			}
		}
	}
	inc(&r.obs.reconverges)
	return nil
}

// InstallPlacement deploys q cross-switch per a resilient-placement
// assignment (§5.2): the compiled query is sliced into
// ceil(stages/stagesPer) partitions and each agent in parts installs its
// assigned partition indices. The deploy is transactional like Install;
// agents hosting only stateless partitions are excluded from the
// telemetry service's expected-contributor set so merged epochs carry
// honest Partial/Missing provenance.
func (r *Remote) InstallPlacement(q *query.Query, width uint32, stagesPer int, parts map[string][]int) (int, time.Duration, error) {
	if stagesPer <= 0 {
		return 0, 0, fmt.Errorf("controller: non-positive stages per switch")
	}
	if len(parts) == 0 {
		return 0, 0, fmt.Errorf("controller: empty placement")
	}
	names := make([]string, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	sort.Strings(names)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deploy(&deploySpec{q: q, width: width, names: names, stagesPer: stagesPer, parts: parts})
}

// Placement returns a copy of a placement deployment's current
// per-agent partition assignment (nil for replicate/shard deployments
// or unknown qids).
func (r *Remote) Placement(qid int) map[string][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, ok := r.specs[qid]
	if !ok || spec.stagesPer <= 0 {
		return nil
	}
	out := make(map[string][]int, len(spec.parts))
	for n, ps := range spec.parts {
		out[n] = append([]int(nil), ps...)
	}
	return out
}

// UpdatePlacement moves an existing placement deployment to a new
// per-agent partition assignment, touching only the delta: agents whose
// assignment is unchanged are not contacted at all (their installed
// programs stay untouched), dropped or changed agents have the query
// removed, and added or changed agents install their new partitions.
// On error the recorded spec keeps the PREVIOUS assignment — a
// subsequent Reconverge re-drives agents toward that recorded state, so
// the recovery story is the same as for an agent restart.
func (r *Remote) UpdatePlacement(qid int, parts map[string][]int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, ok := r.specs[qid]
	if !ok {
		return fmt.Errorf("controller: no deployment %d", qid)
	}
	if spec.stagesPer <= 0 {
		return fmt.Errorf("controller: deployment %d is not a placement deploy", qid)
	}

	sameParts := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var removes, installs []string
	for n := range spec.parts {
		if np, ok := parts[n]; !ok || !sameParts(spec.parts[n], np) {
			removes = append(removes, n)
		}
	}
	for n := range parts {
		if op, ok := spec.parts[n]; !ok || !sameParts(op, parts[n]) {
			installs = append(installs, n)
		}
	}
	sort.Strings(removes)
	sort.Strings(installs)

	for _, n := range removes {
		if _, ok := r.agents[n]; !ok {
			continue // a drained agent may already be gone
		}
		// removeFromLocked defers the remove when the switch is offline —
		// this is what lets a converge move a dead switch's queries away
		// without waiting out the rpc retry budget against a dead peer.
		if err := r.removeFromLocked(n, qid); err != nil {
			inc(&r.obs.removeFailures)
			return fmt.Errorf("controller: update agent %q: %w", n, err)
		}
	}

	next := &deploySpec{q: spec.q, width: spec.width, stagesPer: spec.stagesPer, parts: parts}
	for n := range parts {
		next.names = append(next.names, n)
	}
	sort.Strings(next.names)
	for i, n := range next.names {
		idx := sort.SearchStrings(installs, n)
		if idx == len(installs) || installs[idx] != n {
			continue
		}
		if r.offline[n] {
			return fmt.Errorf("controller: update targets offline agent %q", n)
		}
		c, ok := r.agents[n]
		if !ok {
			return fmt.Errorf("controller: no agent %q", n)
		}
		progs, err := next.programsFor(qid, i)
		if err != nil {
			return err
		}
		for _, p := range progs {
			if err := c.Install(p); err != nil && !rpc.IsAgentCode(err, rpc.CodeAlreadyInstalled) {
				return fmt.Errorf("controller: update agent %q: %w", n, err)
			}
		}
	}

	r.specs[qid] = next
	r.deployments[qid] = next.names
	if r.svc != nil {
		var contributors []string
		for i, n := range next.names {
			progs, err := next.programsFor(qid, i)
			if err != nil {
				return err
			}
			for _, p := range progs {
				if ownsState(p) {
					contributors = append(contributors, n)
					break
				}
			}
		}
		r.svc.SetExpected(qid, contributors)
	}
	inc(&r.obs.updates)
	return nil
}

// Collect returns new reports: the merged push-based stream when a
// telemetry service is attached, otherwise a poll over every agent.
func (r *Remote) Collect() ([]dataplane.Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.svc != nil {
		return r.svc.DrainReports(), nil
	}
	var out []dataplane.Report
	for n, c := range r.agents {
		if r.offline[n] {
			continue
		}
		rs, err := c.DrainReports()
		if err != nil {
			return nil, fmt.Errorf("controller: agent %q: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}
