// Network-wide monitoring with resilient placement and cross-switch
// execution.
//
// A port-scan detector (the paper's Q4) is partitioned over the switches
// of a 4-ary fat-tree via Algorithm 2: every possible path out of the
// monitored edge switches traverses the query's partitions in order, so
// a link failure that reroutes traffic never blinds the query. The demo
// verifies exactly that: detect a scan, fail a link on the active path,
// and detect the next scan on the rerouted path — with no placement
// recomputation.
//
// Run with: go run ./examples/network-wide
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/newton-net/newton"
)

func main() {
	topo := newton.FatTreeTopology(4)
	net, err := newton.NewNetwork(topo, newton.NetworkConfig{Stages: 12})
	if err != nil {
		log.Fatal(err)
	}
	ctl := newton.NewController(net, 11)

	// Deploy Q4 partitioned: each switch contributes 8 module stages, so
	// the query spans 2 switches and Algorithm 2 places partition d on
	// every switch at DFS depth d from the edge layer.
	q := newton.Q4(40)
	dep, delay, err := ctl.Install(newton.Deploy{
		Query:           q,
		Mode:            newton.ModePartition,
		StagesPerSwitch: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %q over %d switches in %v: %d partitions, %d table rules network-wide\n",
		q.Name, len(dep.Switches), delay.Round(time.Microsecond), dep.Parts, dep.Rules)

	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1] // cross-pod pair
	scanVictim := uint32(0x0A000063)          // 10.0.0.99

	scan := func(label string, seed int64, baseTS uint64) []int {
		tr := newton.GenerateTrace(newton.TraceConfig{Seed: seed, Flows: 200, Duration: 90 * time.Millisecond},
			newton.PortScan{Scanner: 0x0B000001, Victim: scanVictim, Ports: 120})
		var path []int
		for _, pkt := range tr.Packets {
			pkt.TS += baseTS
			p, ok := net.Deliver(pkt, src, dst)
			if ok && pkt.TCP != nil && pkt.IP.Dst == scanVictim {
				path = p
			}
		}
		col := newton.NewCollector(q.Window, q.ReportKeys())
		col.AddAll(net.DrainReports())
		if !col.FlaggedKeys()[uint64(scanVictim)] {
			log.Fatalf("%s: scan NOT detected", label)
		}
		fmt.Printf("%s: port scan against 10.0.0.99 detected (attack path: %s)\n", label, pathNames(topo, path))
		return path
	}

	// Round 1: detect on the original path.
	path := scan("round 1", 21, 0)

	// Fail the first inter-switch link of the attack path.
	if len(path) < 2 {
		log.Fatal("attack path too short to fail a link")
	}
	topo.SetLink(path[0], path[1], false)
	fmt.Printf("link failed: %s — %s (traffic reroutes; placement untouched)\n",
		topo.Node(path[0]).Name, topo.Node(path[1]).Name)

	// Round 2: the rerouted path still carries both partitions in order.
	path2 := scan("round 2", 22, uint64(200*time.Millisecond))
	if pathNames(topo, path) == pathNames(topo, path2) {
		log.Fatal("traffic did not reroute — the demo proves nothing")
	}
}

func pathNames(topo *newton.Topology, path []int) string {
	s := ""
	for i, id := range path {
		if i > 0 {
			s += " -> "
		}
		s += topo.Node(id).Name
	}
	return s
}
