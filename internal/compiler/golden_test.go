package compiler

import (
	"testing"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
)

// TestQ6WorkedExample pins the structural facts of the paper's worked
// example (Fig. 6, module rule composition for SYN-flood victims): the
// front filters live in newton_init, the branches' counts merge through
// cross-branch reads of the row-0 banks into the global result, and the
// final R reports the monitored entity's keys.
func TestQ6WorkedExample(t *testing.T) {
	q := query.Q6(30)
	p, err := Compile(q, AllOpts())
	if err != nil {
		t.Fatal(err)
	}

	if len(p.Branches) != 3 {
		t.Fatalf("branches = %d", len(p.Branches))
	}

	// Opt.1: every branch's front filter folded into newton_init, with
	// distinct flag patterns (SYN / SYN+ACK / ACK).
	flags := map[uint64]bool{}
	for bi, b := range p.Branches {
		if b.Init.Masks[2] != 0xFF || b.Init.Values[2] != 6 {
			t.Errorf("branch %d init lacks the TCP match: %+v", bi, b.Init)
		}
		flags[b.Init.Values[5]] = true
	}
	if len(flags) != 3 {
		t.Errorf("branches share flag classes: %v", flags)
	}

	for bi, b := range p.Branches {
		// Exactly two cross-branch reads per branch (the other two
		// branches' row-0 banks), staged after the own rows.
		var reads, row0s int
		var reportR *modules.Op
		for _, op := range b.Ops {
			if op.Kind == modules.ModS && op.S != nil {
				if op.S.CrossRead {
					reads++
					if op.S.ReadBranch == bi {
						t.Errorf("branch %d reads itself", bi)
					}
				}
				if op.S.Row0 {
					row0s++
				}
			}
			if op.Kind == modules.ModR && op.R != nil && op.R.OnGlobal {
				for _, e := range op.R.Entries {
					for _, a := range e.Actions {
						if a.Kind == modules.RActReport {
							reportR = op
						}
					}
				}
			}
		}
		if reads != 2 {
			t.Errorf("branch %d has %d cross-branch reads, want 2", bi, reads)
		}
		if row0s != 1 {
			t.Errorf("branch %d has %d row-0 banks, want 1", bi, row0s)
		}
		if reportR == nil {
			t.Fatalf("branch %d has no reporting R", bi)
		}
		// The report window starts just above the merge threshold
		// (report-once at the crossing).
		if e := reportR.R.Entries[0]; e.Lo != 31 {
			t.Errorf("branch %d report window starts at %d, want 31", bi, e.Lo)
		}
		// The reporting R sits on the set whose K selected the entity
		// keys (dip for branches 0/2, sip for branch 1).
		wantKey := fields.DstIP
		if bi == 1 {
			wantKey = fields.SrcIP
		}
		var lastK *modules.Op
		for _, op := range b.Ops {
			if op.Kind == modules.ModK && op.Set == reportR.Set {
				lastK = op
			}
		}
		if lastK == nil || !lastK.K.Mask.Equal(fields.Keep(wantKey)) {
			t.Errorf("branch %d report keys wrong (set %d)", bi, reportR.Set)
		}
	}

	// Vertical composition: both metadata sets in use, and at least one
	// physical stage hosts modules of both sets (the whole point of the
	// compact layout).
	setsAtStage := map[int]map[int]bool{}
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if setsAtStage[op.Stage] == nil {
				setsAtStage[op.Stage] = map[int]bool{}
			}
			setsAtStage[op.Stage][op.Set] = true
		}
	}
	shared := 0
	for _, sets := range setsAtStage {
		if len(sets) == 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no stage hosts both metadata sets; vertical composition inert")
	}

	// The optimized program stays within the paper's stage budget for
	// Q6 (it reports 5–10 stages; we land at 10).
	if got := p.NumStages(); got > 10 {
		t.Errorf("Q6 optimized stages = %d, want <= 10", got)
	}
}

// TestQ6MergeArithmetic verifies the compiled coefficient chain: branch
// 2 (pure ACKs) contributes with coefficient -2 via a global scale.
func TestQ6MergeArithmetic(t *testing.T) {
	p, err := Compile(query.Q6(30), AllOpts())
	if err != nil {
		t.Fatal(err)
	}
	b2 := p.Branches[2]
	foundScale := false
	for _, op := range b2.Ops {
		if op.Kind != modules.ModR || op.R == nil {
			continue
		}
		for _, e := range op.R.Entries {
			for _, a := range e.Actions {
				if a.Kind == modules.RActGlobalScale && a.Coeff == -2 {
					foundScale = true
				}
			}
		}
	}
	if !foundScale {
		t.Error("branch 2 (ACK counts) missing its -2 scale")
	}
}
