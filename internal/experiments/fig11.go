package experiments

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
)

// Fig11Row is one query's operation-delay statistics over the repeated
// trials.
type Fig11Row struct {
	Query                           string
	Rules                           int
	InstallMin, InstallAvg, Max     time.Duration
	RemoveMin, RemoveAvg, RemoveMax time.Duration
}

// Fig11Result reproduces Fig. 11: install and removal delay of the nine
// queries over repeated trials (the paper repeats 100 times; all
// operations complete within ~20 ms, Q1 as low as ~5 ms).
type Fig11Result struct {
	Trials int
	Rows   []Fig11Row
}

// Fig11OperationDelay measures the rule-operation latency model over
// `trials` repetitions per query on the three-switch testbed topology.
func Fig11OperationDelay(trials int) *Fig11Result {
	if trials == 0 {
		trials = 100
	}
	topo, _, _ := topology.Linear(3)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 15})
	if err != nil {
		panic(err)
	}
	c := controller.NewNewton(net, 99)
	res := &Fig11Result{Trials: trials}
	for i, q := range query.All() {
		row := Fig11Row{Query: fmt.Sprintf("Q%d", i+1)}
		var sumIn, sumOut time.Duration
		row.InstallMin, row.RemoveMin = time.Hour, time.Hour
		for n := 0; n < trials; n++ {
			dep, dIn, err := c.Install(controller.Spec{Query: q})
			if err != nil {
				panic(err)
			}
			row.Rules = dep.Rules / len(dep.Switches)
			dOut, err := c.Remove(dep.QID)
			if err != nil {
				panic(err)
			}
			sumIn += dIn
			sumOut += dOut
			if dIn < row.InstallMin {
				row.InstallMin = dIn
			}
			if dIn > row.Max {
				row.Max = dIn
			}
			if dOut < row.RemoveMin {
				row.RemoveMin = dOut
			}
			if dOut > row.RemoveMax {
				row.RemoveMax = dOut
			}
		}
		row.InstallAvg = sumIn / time.Duration(trials)
		row.RemoveAvg = sumOut / time.Duration(trials)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the per-query delay table.
func (r *Fig11Result) String() string {
	t := &table{header: []string{"Query", "Rules/switch",
		"Install min", "Install avg", "Install max",
		"Remove min", "Remove avg", "Remove max"}}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d)/1e6) }
	for _, row := range r.Rows {
		t.add(row.Query, i2s(row.Rules),
			ms(row.InstallMin), ms(row.InstallAvg), ms(row.Max),
			ms(row.RemoveMin), ms(row.RemoveAvg), ms(row.RemoveMax))
	}
	return fmt.Sprintf("Fig. 11: query install/removal delay (%d trials; paper: <=20ms, Q1 ~5ms)\n%s",
		r.Trials, t.String())
}
