package controller

import (
	"testing"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/telemetry"
)

func TestInstallPlacementPerSwitchPartitions(t *testing.T) {
	r, sws := remoteFixture(t, 3)
	// q4 compiles to 11 stages; at 6 stages per switch it slices into 2
	// partitions. Agents a and b split them; c is untouched.
	parts := map[string][]int{"a": {0}, "b": {1}}
	qid, delay, err := r.InstallPlacement(query.Q4(3), 1<<10, 6, parts)
	if err != nil {
		t.Fatalf("InstallPlacement: %v", err)
	}
	if delay <= 0 {
		t.Error("no modeled delay")
	}
	engs := make([]*modules.Engine, len(sws))
	for i, sw := range sws {
		engs[i] = sw.Monitor.(*modules.Engine)
	}
	if got := engs[0].InstalledCount(); got != 1 {
		t.Errorf("a installed = %d, want 1", got)
	}
	if got := engs[1].InstalledCount(); got != 1 {
		t.Errorf("b installed = %d, want 1", got)
	}
	if got := engs[2].InstalledCount(); got != 0 {
		t.Errorf("c installed = %d, want 0", got)
	}
	if p := engs[0].Programs()[0]; p.Part != 0 {
		t.Errorf("a holds partition %d, want 0", p.Part)
	}
	if p := engs[1].Programs()[0]; p.Part != 1 {
		t.Errorf("b holds partition %d, want 1", p.Part)
	}
	if got := r.Placement(qid); !samePartsMap(got, parts) {
		t.Errorf("recorded placement = %v, want %v", got, parts)
	}
	if err := r.Remove(qid); err != nil {
		t.Fatal(err)
	}
	if engs[0].InstalledCount()+engs[1].InstalledCount() != 0 {
		t.Error("Remove left partitions installed")
	}
}

func TestInstallPlacementRollsBackAcrossAgents(t *testing.T) {
	r, sws := remoteFixture(t, 2)
	// A ghost agent in the assignment fails the deploy; the partition
	// already installed on a real agent must be rolled back.
	_, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6,
		map[string][]int{"a": {0}, "ghost": {1}})
	if err == nil {
		t.Fatal("placement deploy to a ghost agent succeeded")
	}
	perr, ok := err.(*PartialDeployError)
	if !ok {
		t.Fatalf("error type %T, want *PartialDeployError", err)
	}
	if perr.Mode != "placement" {
		t.Errorf("mode = %q, want placement", perr.Mode)
	}
	if res := perr.Residual(); len(res) != 0 {
		t.Errorf("residual rules on %v after rollback", res)
	}
	for i, sw := range sws {
		if got := sw.Monitor.(*modules.Engine).InstalledCount(); got != 0 {
			t.Errorf("switch %d holds %d programs after rollback", i, got)
		}
	}
	// The fleet is clean: a follow-up valid placement deploy succeeds.
	if _, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6,
		map[string][]int{"a": {0}, "b": {1}}); err != nil {
		t.Fatalf("rollback left residue: %v", err)
	}
}

func TestInstallPlacementRejectsBadArgs(t *testing.T) {
	r, _ := remoteFixture(t, 1)
	if _, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 0, map[string][]int{"a": {0}}); err == nil {
		t.Error("zero stagesPer accepted")
	}
	if _, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6, nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6, map[string][]int{"a": {7}}); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestUpdatePlacementAppliesOnlyTheDelta(t *testing.T) {
	r, sws := remoteFixture(t, 3)
	qid, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6,
		map[string][]int{"a": {0}, "b": {1}})
	if err != nil {
		t.Fatal(err)
	}
	engA := sws[0].Monitor.(*modules.Engine)
	keep := engA.Programs()[0]

	// Move partition 1 from b to c; a's assignment is unchanged.
	if err := r.UpdatePlacement(qid, map[string][]int{"a": {0}, "c": {1}}); err != nil {
		t.Fatal(err)
	}
	if got := sws[1].Monitor.(*modules.Engine).InstalledCount(); got != 0 {
		t.Errorf("b still holds %d programs", got)
	}
	if got := sws[2].Monitor.(*modules.Engine).InstalledCount(); got != 1 {
		t.Errorf("c holds %d programs, want 1", got)
	}
	// a was not contacted: the identical program instance is installed.
	if ps := engA.Programs(); len(ps) != 1 || ps[0] != keep {
		t.Error("unchanged agent was reinstalled during update")
	}
	if err := r.UpdatePlacement(qid, map[string][]int{"a": {0}, "ghost": {1}}); err == nil {
		t.Error("update to a ghost agent succeeded")
	}
	if err := r.Remove(qid); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatePlacementOnlyForPlacementDeploys(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	qid, _, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.UpdatePlacement(qid, map[string][]int{"a": {0}}); err == nil {
		t.Error("UpdatePlacement accepted a replicate deploy")
	}
	if err := r.UpdatePlacement(999, nil); err == nil {
		t.Error("UpdatePlacement accepted an unknown qid")
	}
}

func TestPlacementExpectedContributors(t *testing.T) {
	r, _ := remoteFixture(t, 3)
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	r.AttachTelemetry(svc)

	qid, _, err := r.InstallPlacement(query.Q4(3), 1<<10, 6,
		map[string][]int{"a": {0}, "b": {1}})
	if err != nil {
		t.Fatal(err)
	}
	// Both q4 partitions own state, so before any snapshot arrives the
	// merged epoch is partial with exactly a and b missing — the
	// contributors the deploy pinned.
	partial, missing, _ := svc.EpochStatus(qid, 0)
	if !partial || len(missing) != 2 || missing[0] != "a" || missing[1] != "b" {
		t.Fatalf("expected set = %v (partial=%v), want pinned a,b", missing, partial)
	}

	// Moving partition 1 to c re-pins: now a and c are expected.
	if err := r.UpdatePlacement(qid, map[string][]int{"a": {0}, "c": {1}}); err != nil {
		t.Fatal(err)
	}
	_, missing, _ = svc.EpochStatus(qid, 1)
	if len(missing) != 2 || missing[0] != "a" || missing[1] != "c" {
		t.Fatalf("post-update expected set = %v, want a,c", missing)
	}
}

func samePartsMap(a, b map[string][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
