package experiments

import (
	"net"
	"sync/atomic"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/trace"
)

// ExportRow is one export-discipline measurement.
type ExportRow struct {
	Mode     string
	Reports  int     // alerts that reached the analyzer
	Frames   uint64  // wire messages, both channels, both directions
	Bytes    uint64  // wire bytes, both channels, both directions
	PerEpoch float64 // wire bytes per evaluation window
	EncodeNs uint64  // exporter time spent encoding + compressing payloads
}

// ExportResult compares the controller's report-delivery disciplines on
// identical traffic: polling every agent each window over the control
// channel, the streaming telemetry plane pushing JSON frames, the
// binary wire codec sending every snapshot in full, and the binary
// codec with delta-encoded snapshots between keyframes. All push modes
// carry epoch sketch snapshots, which buy the analyzer its
// network-wide merged view — the table prices that view per encoding.
type ExportResult struct {
	Switches, Windows int
	Rows              []ExportRow
}

// Metrics exposes the per-mode wire cost for newton-bench -json, so CI
// can archive the codec comparison across PRs.
func (r *ExportResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"switches": float64(r.Switches),
		"windows":  float64(r.Windows),
	}
	for _, row := range r.Rows {
		m[row.Mode+"_bytes"] = float64(row.Bytes)
		m[row.Mode+"_frames"] = float64(row.Frames)
		m[row.Mode+"_bytes_per_epoch"] = row.PerEpoch
		if row.EncodeNs > 0 {
			m[row.Mode+"_encode_ns"] = float64(row.EncodeNs)
		}
	}
	return m
}

// countConn wraps a conn and counts frames and bytes written through
// it. Every frame is exactly two writes (header + body) on both the
// JSON and binary framings, so frames = writes/2.
type countConn struct {
	net.Conn
	writes, bytes *atomic.Uint64
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.writes.Add(1)
	c.bytes.Add(uint64(n))
	return n, err
}

// exportModes maps each measured discipline to its exporter codec
// configuration; Codec is ignored for the poll mode (no exporter).
var exportModes = []struct {
	name      string
	codec     telemetry.Codec
	keyframes int // 1 disables delta encoding; 0 keeps the default cadence
}{
	{"poll", telemetry.CodecJSON, 0},
	{"json-push", telemetry.CodecJSON, 0},
	{"binary-push", telemetry.CodecBinary, 1},
	{"binary+delta", telemetry.CodecBinary, 0},
}

// ExportOverhead measures all four disciplines over nSwitches
// replicated switches running Q1 against a SYN-flood trace.
func ExportOverhead(nSwitches int, dur time.Duration) *ExportResult {
	if nSwitches == 0 {
		nSwitches = 3
	}
	if dur == 0 {
		dur = time.Second
	}
	window := uint64(100 * time.Millisecond)
	tr := trace.Generate(trace.Config{Seed: 31, Flows: 600, Duration: dur},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 900})
	res := &ExportResult{Switches: nSwitches, Windows: int(uint64(dur) / window)}

	for _, mode := range exportModes {
		var writes, bytes atomic.Uint64
		wrap := func(c net.Conn) net.Conn { return countConn{c, &writes, &bytes} }

		var svc *telemetry.Service
		if mode.name != "poll" {
			svc = telemetry.NewService(telemetry.ServiceConfig{Window: time.Duration(window)})
		}

		agents := map[string]*rpc.Client{}
		var sws []*dataplane.Switch
		var exps []*telemetry.Exporter
		for i := 0; i < nSwitches; i++ {
			layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<14)
			if err != nil {
				panic(err)
			}
			eng := modules.NewEngine(layout)
			sw := dataplane.NewSwitch(string(rune('a'+i)), 16, modules.StageCapacity())
			sw.AddRoute(0, 0, 1)
			sw.Monitor = eng
			agent := rpc.NewAgent(sw, eng)
			server, client := net.Pipe()
			go agent.HandleConn(wrap(server))
			agents[sw.ID] = rpc.NewClient(wrap(client))
			sws = append(sws, sw)

			if svc != nil {
				sconn, econn := net.Pipe()
				go svc.HandleConn(sconn)
				exp, err := telemetry.NewExporter(wrap(econn), telemetry.ExporterConfig{
					SwitchID: sw.ID, Policy: telemetry.PolicyBlock,
					Codec: mode.codec, KeyframeEvery: mode.keyframes,
				})
				if err != nil {
					panic(err)
				}
				exp.AttachAgent(agent, eng)
				exps = append(exps, exp)
			}
		}

		ctl := controller.NewRemote(agents, 1)
		if svc != nil {
			ctl.AttachTelemetry(svc)
		}
		if _, _, err := ctl.Install(query.Q1(40), 1<<12, nil); err != nil {
			panic(err)
		}
		writes.Store(0) // measure steady state, not query installation
		bytes.Store(0)

		reports := 0
		sync := func() {
			if svc == nil {
				rs, err := ctl.Collect() // polls every agent, empty or not
				if err != nil {
					panic(err)
				}
				reports += len(rs)
			} else {
				for i, sw := range sws {
					exps[i].Export(sw.DrainReports())
				}
			}
			if err := ctl.Tick(); err != nil {
				panic(err)
			}
		}
		next := window
		for _, pkt := range tr.Packets {
			for pkt.TS >= next {
				sync()
				next += window
			}
			for _, sw := range sws {
				sw.Process(pkt)
			}
		}
		sync()
		var encodeNs uint64
		for _, exp := range exps {
			if err := exp.Flush(); err != nil {
				panic(err)
			}
			encodeNs += exp.Stats().EncodeNs
			exp.Close()
		}
		if svc != nil {
			rs, _ := ctl.Collect()
			reports += len(rs)
			svc.Close()
		}
		for _, c := range agents {
			c.Close()
		}

		row := ExportRow{Mode: mode.name, Reports: reports,
			Frames: writes.Load() / 2, Bytes: bytes.Load(), EncodeNs: encodeNs}
		if res.Windows > 0 {
			row.PerEpoch = float64(row.Bytes) / float64(res.Windows)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the comparison.
func (r *ExportResult) String() string {
	t := &table{header: []string{"Export path", "Alerts", "Wire msgs", "Wire bytes", "Bytes/epoch", "Encode ns"}}
	for _, row := range r.Rows {
		t.add(row.Mode, i2s(row.Reports), i2s(int(row.Frames)), i2s(int(row.Bytes)),
			sci(row.PerEpoch), i2s(int(row.EncodeNs)))
	}
	return "Export overhead: polling vs JSON vs binary telemetry (" +
		i2s(r.Switches) + " switches, " + i2s(r.Windows) + " windows)\n" + t.String()
}
