// Package wire is the binary telemetry wire protocol: a versioned
// little-endian framing plus columnar binary codecs for the telemetry
// plane's hot frames (report batches and epoch state-bank snapshots).
//
// The control channel and the telemetry hello/hello-ack negotiation
// keep the length-framed JSON encoding (internal/rpc) — it is the
// bootstrap both sides of any version speak. Once a stream negotiates
// the binary codec, every subsequent frame on it is:
//
//	offset  size  field
//	0       2     magic 0x574E ("NW", little-endian)
//	2       1     version (1)
//	3       1     frame kind
//	4       1     flags (bit0 compressed, bit1 delta snapshot)
//	5       3     reserved (zero)
//	8       4     payload length, little-endian
//	12      4     CRC-32C of the wire payload, little-endian
//	16      n     payload
//
// Payloads are varint-packed columnar encodings (reports.go,
// snapshot.go); snapshot payloads may delta-encode each bank against
// the previous epoch's values, with full keyframes every K epochs and
// after every reconnect so replay never depends on lost state. Payloads
// over a size gate are flate-compressed (stdlib only).
//
// Every decode path is total: truncated, oversized, corrupt-CRC, or
// malformed inputs return typed errors, never panic — the fuzz harness
// (FuzzWireRoundTrip) holds the codec to that.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a binary telemetry frame ("NW" when the two bytes
// are read in wire order).
const Magic = 0x574E

// Version1 is the current wire protocol version, proposed in the JSON
// hello and echoed in the hello-ack.
const Version1 = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 16

// MaxFrame bounds one payload, mirroring the control channel's limit.
const MaxFrame = 8 << 20

// Kind classifies a binary frame.
type Kind uint8

const (
	// KindReports carries a columnar batch of mirrored reports.
	KindReports Kind = 1
	// KindSnapshot carries one epoch's state-bank snapshots, full or
	// delta-encoded against the previous epoch.
	KindSnapshot Kind = 2
	// KindBye closes a stream, carrying the exporter's final counters
	// (JSON payload — once per stream, evolution beats compactness).
	KindBye Kind = 3
)

// String names the frame kind.
func (k Kind) String() string {
	switch k {
	case KindReports:
		return "reports"
	case KindSnapshot:
		return "snapshot"
	case KindBye:
		return "bye"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Flags carries per-frame encoding options.
type Flags uint8

const (
	// FlagCompressed marks the payload as flate-compressed.
	FlagCompressed Flags = 1 << 0
	// FlagDelta marks a snapshot frame whose banks may be delta-encoded
	// against the previous epoch (a non-keyframe).
	FlagDelta Flags = 1 << 1
)

// Typed decode errors. Every malformed input maps onto one of these so
// the stream layer can classify failures without string matching.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrTooLarge   = errors.New("wire: frame exceeds size limit")
	ErrCRC        = errors.New("wire: payload CRC mismatch")
	ErrTruncated  = errors.New("wire: truncated payload")
	ErrMalformed  = errors.New("wire: malformed payload")
	// ErrDeltaBase is returned when a delta snapshot references a base
	// epoch the decoder does not hold (a dropped or reordered frame);
	// the stream resynchronizes at the encoder's next keyframe.
	ErrDeltaBase = errors.New("wire: delta snapshot base epoch not held")
)

// Header is one decoded frame header.
type Header struct {
	Version uint8
	Kind    Kind
	Flags   Flags
	Length  uint32
	CRC     uint32
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendHeader serializes a frame header for the given payload.
func AppendHeader(dst []byte, kind Kind, flags Flags, payload []byte) []byte {
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint16(h[0:2], Magic)
	h[2] = Version1
	h[3] = uint8(kind)
	h[4] = uint8(flags)
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[12:16], crc32.Checksum(payload, castagnoli))
	return append(dst, h[:]...)
}

// WriteFrame sends one binary frame: header, then payload. Exactly two
// writes, matching the control channel's header+body discipline so
// byte-counting wrappers see one frame per two writes.
func WriteFrame(w io.Writer, kind Kind, flags Flags, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: outbound payload of %d bytes", ErrTooLarge, len(payload))
	}
	hdr := AppendHeader(make([]byte, 0, HeaderSize), kind, flags, payload)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ParseHeader decodes and validates one frame header.
func ParseHeader(h []byte) (Header, error) {
	if len(h) < HeaderSize {
		return Header{}, ErrTruncated
	}
	if binary.LittleEndian.Uint16(h[0:2]) != Magic {
		return Header{}, ErrBadMagic
	}
	hdr := Header{
		Version: h[2],
		Kind:    Kind(h[3]),
		Flags:   Flags(h[4]),
		Length:  binary.LittleEndian.Uint32(h[8:12]),
		CRC:     binary.LittleEndian.Uint32(h[12:16]),
	}
	if hdr.Version != Version1 {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, hdr.Version)
	}
	if hdr.Length > MaxFrame {
		return Header{}, fmt.Errorf("%w: inbound payload of %d bytes", ErrTooLarge, hdr.Length)
	}
	return hdr, nil
}

// ReadFrame receives one binary frame, validating magic, version, size
// bound, and payload CRC. The returned payload is still compressed if
// the header says so — Decompress it before decoding.
func ReadFrame(r io.Reader) (Header, []byte, error) {
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Header{}, nil, err
	}
	hdr, err := ParseHeader(h[:])
	if err != nil {
		return Header{}, nil, err
	}
	payload := make([]byte, hdr.Length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Header{}, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != hdr.CRC {
		return Header{}, nil, ErrCRC
	}
	return hdr, payload, nil
}

// Compress flate-compresses a payload when it is at least gate bytes
// and compression actually shrinks it. The second return reports
// whether the returned slice is compressed (the caller sets
// FlagCompressed accordingly). A gate < 0 disables compression.
func Compress(payload []byte, gate int) ([]byte, bool) {
	if gate < 0 || len(payload) < gate {
		return payload, false
	}
	var buf bytes.Buffer
	buf.Grow(len(payload) / 2)
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return payload, false
	}
	if _, err := zw.Write(payload); err != nil {
		return payload, false
	}
	if err := zw.Close(); err != nil {
		return payload, false
	}
	if buf.Len() >= len(payload) {
		return payload, false
	}
	return buf.Bytes(), true
}

// Decompress inflates a compressed payload, refusing to expand past
// MaxFrame (a zip bomb is a malformed peer, not an allocation).
func Decompress(payload []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(payload))
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, MaxFrame+1))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if len(out) > MaxFrame {
		return nil, fmt.Errorf("%w: decompressed payload exceeds %d bytes", ErrTooLarge, MaxFrame)
	}
	return out, nil
}

// reader is a sticky-error varint cursor over one payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
	r.off = len(r.b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// length reads a uvarint that sizes a subsequent collection, bounding
// it by the bytes actually left so a hostile count cannot drive a huge
// allocation before the truncation is discovered.
func (r *reader) length() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.off)
	}
	return nil
}

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }
