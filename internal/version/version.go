// Package version exposes build identity shared by every newton
// binary: the module version and VCS revision recorded by the Go
// toolchain, read once via debug.ReadBuildInfo. It backs the -version
// flag on all cmd/ binaries and the newton_build_info gauge.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/newton-net/newton/internal/obs"
)

// Info is the build identity of the running binary.
type Info struct {
	Version   string // module version ("(devel)" for local builds)
	Revision  string // VCS commit, "" when built outside a checkout
	Modified  bool   // working tree was dirty at build time
	GoVersion string // toolchain that built the binary
}

var (
	once   sync.Once
	cached Info
)

// Get reads the binary's build info (memoized; ReadBuildInfo walks the
// embedded module data on every call).
func Get() Info {
	once.Do(func() {
		cached = Info{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			cached.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}

// String renders the one-line -version output for component (the
// binary's name).
func String(component string) string {
	i := Get()
	s := fmt.Sprintf("%s %s", component, i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " (" + rev
		if i.Modified {
			s += "-dirty"
		}
		s += ")"
	}
	return s + " " + i.GoVersion
}

// RegisterObs publishes the standard info-gauge idiom: a constant 1
// whose labels carry the identity, joinable against any other series.
func RegisterObs(reg *obs.Registry, component string) {
	i := Get()
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	}
	reg.Gauge("newton_build_info",
		"Build identity; value is always 1, the labels carry the information.",
		obs.L("component", component),
		obs.L("version", i.Version),
		obs.L("revision", rev),
		obs.L("goversion", i.GoVersion),
	).Set(1)
}
