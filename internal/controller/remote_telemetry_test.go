package controller

import (
	"net"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/telemetry"
)

func TestCollectPrefersTelemetryStream(t *testing.T) {
	r, sws := remoteFixture(t, 1)
	if _, _, err := r.Install(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatal(err)
	}
	// Traffic leaves reports pending on the switch — the poll path's
	// source.
	for i := 0; i < 10; i++ {
		sws[0].Process(&packet.Packet{
			TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
			TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
		})
	}

	// A telemetry service with one pushed report takes over Collect.
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	server, client := net.Pipe()
	go svc.HandleConn(server)
	exp, err := telemetry.NewExporter(client, telemetry.ExporterConfig{SwitchID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	var keys fields.Vector
	keys.Set(fields.DstIP, 77)
	exp.Export([]dataplane.Report{{
		SwitchID: "a", QueryID: 1, TS: 5, Keys: keys, KeyMask: fields.Keep(fields.DstIP),
	}})
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Reports == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	r.AttachTelemetry(svc)
	reports, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Keys.Get(fields.DstIP) != 77 {
		t.Fatalf("Collect = %+v, want the pushed report", reports)
	}
	// The switch was never polled: its mirrored reports are still there.
	if sws[0].PendingReports() == 0 {
		t.Error("push-mode Collect drained the switch over the control channel")
	}
}

func TestInstallShardedRollsBackAndRemoves(t *testing.T) {
	r, _ := remoteFixture(t, 3)
	// A ghost agent mid-list unwinds the partial sharded install.
	if _, _, err := r.InstallSharded(query.Q1(3), 1<<10, []string{"a", "ghost", "c"}); err == nil {
		t.Fatal("sharded install to a ghost agent succeeded")
	}
	// The same QID is free again: a full sharded install succeeds and is
	// removable everywhere.
	qid, delay, err := r.InstallSharded(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatalf("rollback left residue: %v", err)
	}
	if delay <= 0 {
		t.Error("no modeled delay")
	}
	if err := r.Remove(qid); err != nil {
		t.Fatal(err)
	}
}
