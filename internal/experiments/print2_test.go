package experiments

import (
	"fmt"
	"testing"
	"time"
)

func TestPrintSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	fmt.Println(Fig11OperationDelay(20))
	fmt.Println(Fig12Overhead(1500, 300*time.Millisecond))
	fmt.Println(Fig13CQEOverhead(3))
	fmt.Println(Fig14Accuracy([]uint32{256, 1024}, 3))
}
