package modules

import (
	"fmt"

	"github.com/newton-net/newton/internal/dataplane"
)

// LayoutKind selects how module suites map onto physical stages.
type LayoutKind int

const (
	// LayoutNaive places one module per stage (§4.2's strawman): a suite
	// spreads over four stages and each stage uses only that module
	// kind's resource types.
	LayoutNaive LayoutKind = iota
	// LayoutCompact places two full suites — one per metadata set — in
	// every stage, the paper's compact module layout.
	LayoutCompact
)

// String names the layout.
func (k LayoutKind) String() string {
	if k == LayoutCompact {
		return "compact"
	}
	return "naive"
}

// SuitesPerStage returns how many metadata-set suites a stage hosts.
func (k LayoutKind) SuitesPerStage() int {
	if k == LayoutCompact {
		return 2
	}
	return 1
}

// InitCapacityFactor sizes the newton_init classifier relative to a
// module table: the classifier holds one entry per branch of every
// installed query across all stages, so it gets this multiple of a
// single module table's rule capacity. The scheduler's admission
// accounting mirrors the same factor — keep them in lockstep.
const InitCapacityFactor = 4

// DefaultRulesPerModule is the rule capacity each module table is
// configured with in the evaluation ("we configure each module to
// accommodate 256 rules", §6.2).
const DefaultRulesPerModule = 256

// ModuleResources returns the per-stage resource consumption of one
// module instance (table + logic, sized for DefaultRulesPerModule
// rules), in the simulator's abstract units. The values are calibrated
// so that, normalized by SwitchP4Usage, they reproduce the per-module
// rows of the paper's Table 3.
func ModuleResources(k Kind) dataplane.Resources {
	switch k {
	case ModK:
		return dataplane.Resources{
			dataplane.Crossbar: 4, dataplane.SRAM: 8, dataplane.VLIW: 10,
			dataplane.HashBits: 20, dataplane.Gateway: 1,
		}
	case ModH:
		return dataplane.Resources{
			dataplane.Crossbar: 44, dataplane.SRAM: 4, dataplane.VLIW: 2,
			dataplane.HashBits: 29,
		}
	case ModS:
		return dataplane.Resources{
			dataplane.Crossbar: 20, dataplane.SRAM: 40, dataplane.TCAM: 4,
			dataplane.VLIW: 6, dataplane.HashBits: 40, dataplane.SALU: 1,
		}
	case ModR:
		return dataplane.Resources{
			dataplane.Crossbar: 10, dataplane.SRAM: 4, dataplane.TCAM: 8,
			dataplane.VLIW: 30,
		}
	}
	panic(fmt.Sprintf("modules: unknown module kind %d", k))
}

// SuiteResources is the consumption of one full K+H+S+R suite.
func SuiteResources() dataplane.Resources {
	var r dataplane.Resources
	for k := Kind(0); k < NumKinds; k++ {
		r.Add(ModuleResources(k))
	}
	return r
}

// SwitchP4Usage is the total resource usage of the switch.p4 reference
// program in the same abstract units — the normalization base of
// Table 3.
func SwitchP4Usage() dataplane.Resources {
	return dataplane.Resources{
		dataplane.Crossbar: 1646, dataplane.SRAM: 1136, dataplane.TCAM: 186,
		dataplane.VLIW: 284, dataplane.HashBits: 1818, dataplane.SALU: 18,
		dataplane.Gateway: 70,
	}
}

// StageCapacity is the per-stage budget used for Newton pipelines: large
// enough for two full suites (the compact layout) with headroom for the
// forwarding tables that share the pipeline.
func StageCapacity() dataplane.Resources {
	return dataplane.Resources{
		dataplane.Crossbar: 170, dataplane.SRAM: 130, dataplane.TCAM: 26,
		dataplane.VLIW: 100, dataplane.HashBits: 200, dataplane.SALU: 4,
		dataplane.Gateway: 16,
	}
}

// suite is one metadata set's module instances within a stage.
type suite struct {
	tables [NumKinds]*dataplane.Table
	array  *dataplane.RegisterArray

	// Bump-pointer register allocator with an exact-fit free list —
	// queries allocate on install and free on removal.
	next uint32
	free map[uint32][]uint32 // width -> offsets
}

// Layout is the module geometry loaded into a pipeline at initialization
// time. Everything after this — which queries run, with what parameters
// — is table rules.
type Layout struct {
	Kind      LayoutKind
	ArraySize uint32

	pipeline *dataplane.Pipeline
	suites   [][]*suite // [stage][suiteIdx]

	// Init is the newton_init classifier; Fin is the newton_fin result
	// snapshot table (cross-switch execution).
	Init *dataplane.Table
	Fin  *dataplane.Table
}

// NewLayout loads a module layout into a fresh pipeline of the given
// stage count. ArraySize is the register count of each state bank.
func NewLayout(kind LayoutKind, stages int, arraySize uint32) (*Layout, error) {
	if arraySize == 0 {
		arraySize = 4096
	}
	l := &Layout{
		Kind:      kind,
		ArraySize: arraySize,
		pipeline:  dataplane.NewPipeline(stages, StageCapacity()),
		Init:      dataplane.NewTable("newton_init", dataplane.MatchTernary, 6, DefaultRulesPerModule*InitCapacityFactor),
		Fin:       dataplane.NewTable("newton_fin", dataplane.MatchExact, 1, DefaultRulesPerModule),
	}
	for si, st := range l.pipeline.Stages {
		var suites []*suite
		for u := 0; u < kind.SuitesPerStage(); u++ {
			s := &suite{free: map[uint32][]uint32{}}
			for k := Kind(0); k < NumKinds; k++ {
				if kind == LayoutNaive && Kind(si%int(NumKinds)) != k {
					continue // naive: stage si hosts only module kind si mod 4
				}
				t := dataplane.NewTable(
					fmt.Sprintf("newton_%v_s%d_u%d", k, si, u),
					dataplane.MatchExact, 1, DefaultRulesPerModule)
				var ra *dataplane.RegisterArray
				if k == ModS {
					ra = dataplane.NewRegisterArray(fmt.Sprintf("bank_s%d_u%d", si, u), arraySize)
					s.array = ra
				}
				if err := st.Place(t.Name, ModuleResources(k), t, ra); err != nil {
					return nil, fmt.Errorf("modules: loading %v layout: %w", kind, err)
				}
				s.tables[k] = t
			}
			suites = append(suites, s)
		}
		l.suites = append(l.suites, suites)
	}
	return l, nil
}

// Stages returns the number of physical stages.
func (l *Layout) Stages() int { return len(l.suites) }

// Epoch returns the current window epoch of the layout's state banks
// (they all roll together via Pipeline.NextEpoch).
func (l *Layout) Epoch() uint32 {
	for _, ss := range l.suites {
		for _, s := range ss {
			if s.array != nil {
				return s.array.Epoch()
			}
		}
	}
	return 0
}

// Pipeline exposes the underlying pipeline (for resource reports and
// epoch advancement).
func (l *Layout) Pipeline() *dataplane.Pipeline { return l.pipeline }

// ModuleTable returns the table of module kind k in (1-based) stage,
// suite u, or nil if the layout has no such module there.
func (l *Layout) ModuleTable(stage int, u int, k Kind) *dataplane.Table {
	s := l.suiteAt(stage, u)
	if s == nil {
		return nil
	}
	return s.tables[k]
}

func (l *Layout) suiteAt(stage, u int) *suite {
	if stage < 1 || stage > len(l.suites) {
		return nil
	}
	ss := l.suites[stage-1]
	if u < 0 || u >= len(ss) {
		return nil
	}
	return ss[u]
}

// ArrayAt returns the state-bank register array of (stage, suite).
func (l *Layout) ArrayAt(stage, u int) *dataplane.RegisterArray {
	s := l.suiteAt(stage, u)
	if s == nil {
		return nil
	}
	return s.array
}

// AllocRegisters reserves width registers in (stage, suite)'s bank and
// returns the base offset — the runtime register allocation that lets
// concurrent queries share one bank.
func (l *Layout) AllocRegisters(stage, u int, width uint32) (uint32, error) {
	s := l.suiteAt(stage, u)
	if s == nil || s.array == nil {
		return 0, fmt.Errorf("modules: no state bank at stage %d suite %d", stage, u)
	}
	if lst := s.free[width]; len(lst) > 0 {
		off := lst[len(lst)-1]
		s.free[width] = lst[:len(lst)-1]
		return off, nil
	}
	if s.next+width > s.array.Size() {
		return 0, fmt.Errorf("modules: state bank at stage %d suite %d exhausted (%d + %d > %d)",
			stage, u, s.next, width, s.array.Size())
	}
	off := s.next
	s.next += width
	return off, nil
}

// FreeRegisters returns an allocation for reuse.
func (l *Layout) FreeRegisters(stage, u int, offset, width uint32) {
	if s := l.suiteAt(stage, u); s != nil {
		s.free[width] = append(s.free[width], offset)
	}
}

// TernaryScans sums linear ternary-scan fallbacks across the layout's
// tables — newton_init, newton_fin, and every module table. Module
// tables are exact-match so they never scan; newton_init is the series
// that matters: once its rule set compiles, this counter stops moving.
func (l *Layout) TernaryScans() uint64 {
	n := l.Init.TernaryScans() + l.Fin.TernaryScans()
	for _, ss := range l.suites {
		for _, s := range ss {
			for _, t := range s.tables {
				if t != nil {
					n += t.TernaryScans()
				}
			}
		}
	}
	return n
}

// TotalRuleEntries sums installed rules across all module tables plus
// newton_init/newton_fin — the table-entry metric of Figs. 16 and 17.
func (l *Layout) TotalRuleEntries() int {
	n := l.Init.Entries() + l.Fin.Entries()
	for _, ss := range l.suites {
		for _, s := range ss {
			for _, t := range s.tables {
				if t != nil {
					n += t.Entries()
				}
			}
		}
	}
	return n
}
