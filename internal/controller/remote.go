package controller

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
)

// DeployOutcome is one switch's part in a failed deploy.
type DeployOutcome struct {
	Switch      string
	Installed   bool  // the install had succeeded before the deploy failed
	Err         error // the install error, when this switch caused the failure
	RolledBack  bool  // the rollback remove succeeded
	RollbackErr error // rollback failed — residual rules remain on this switch
}

// PartialDeployError reports a deploy that could not complete on every
// target switch. The controller rolls back already-installed rules
// before returning it, because a sharded or partitioned query missing a
// member silently undercounts every key that member owns — all-or-
// nothing is the only safe contract. Outcomes list what happened on
// each touched switch; Residual names switches where even the rollback
// failed and rules may remain.
type PartialDeployError struct {
	QID      int
	Mode     string
	Failed   string // the switch whose install failed
	Outcomes []DeployOutcome
}

func (e *PartialDeployError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "controller: %s deploy of query %d failed on %q", e.Mode, e.QID, e.Failed)
	if res := e.Residual(); len(res) > 0 {
		fmt.Fprintf(&b, " (rollback incomplete, residual rules on %s)", strings.Join(res, ", "))
	} else {
		b.WriteString(" (rolled back)")
	}
	for _, o := range e.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(&b, ": %v", o.Err)
			break
		}
	}
	return b.String()
}

// Residual names switches that may still hold rules for the failed
// deploy (their rollback remove failed too).
func (e *PartialDeployError) Residual() []string {
	var out []string
	for _, o := range e.Outcomes {
		if o.Installed && !o.RolledBack {
			out = append(out, o.Switch)
		}
	}
	return out
}

// deploySpec records what a deployment asked for, so the controller can
// re-drive an agent toward it after the agent restarts (Reconverge).
type deploySpec struct {
	q       *query.Query
	width   uint32
	names   []string
	sharded bool
}

// Remote is the Newton controller speaking to switch agents over the
// control channel (internal/rpc) instead of in-process engines — the
// shape of a real deployment, where the controller is "a module of the
// centralized network controller or ... an independent process" (§7).
type Remote struct {
	agents map[string]*rpc.Client
	rng    *rand.Rand

	nextQID     int
	deployments map[int][]string // qid -> agent names
	specs       map[int]*deploySpec

	// svc, when attached, replaces per-agent report polling: agents push
	// reports to the analyzer service and Collect drains the merged,
	// network-wide-deduplicated stream instead.
	svc *telemetry.Service

	obs ctlObs
}

// NewRemote builds a controller over named agent connections.
func NewRemote(agents map[string]*rpc.Client, seed int64) *Remote {
	return &Remote{
		agents: agents, rng: rand.New(rand.NewSource(seed)),
		nextQID: 1, deployments: map[int][]string{},
		specs: map[int]*deploySpec{},
	}
}

// compileFor compiles spec's query for position i of its target list.
func (s *deploySpec) compileFor(qid int, i int) (*modules.Program, error) {
	o := compiler.AllOpts()
	o.QID = qid
	o.Width = s.width
	if s.sharded {
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(s.names))
	}
	return compiler.Compile(s.q, o)
}

// deploy transactionally installs spec on every target: either all
// switches hold the query afterwards, or none do (already-installed
// rules are rolled back and a *PartialDeployError describes the
// per-switch outcomes). Transient transport failures are retried inside
// each client; only exhausted retries or agent rejections fail a
// switch.
func (r *Remote) deploy(spec *deploySpec) (int, time.Duration, error) {
	qid := r.nextQID
	maxRules := 0
	var done []string

	mode := "replicate"
	if spec.sharded {
		mode = "shard"
	}

	fail := func(failed string, installErr error) error {
		inc(&r.obs.deployFailures)
		perr := &PartialDeployError{QID: qid, Failed: failed, Mode: mode}
		for _, n := range done {
			o := DeployOutcome{Switch: n, Installed: true}
			if err := r.agents[n].Remove(qid); err == nil || rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
				o.RolledBack = true
				inc(&r.obs.rollbacks)
			} else {
				o.RollbackErr = err
				inc(&r.obs.rollbackFailures)
			}
			perr.Outcomes = append(perr.Outcomes, o)
		}
		perr.Outcomes = append(perr.Outcomes, DeployOutcome{Switch: failed, Err: installErr})
		return perr
	}

	var first *modules.Program
	for i, n := range spec.names {
		c, ok := r.agents[n]
		if !ok {
			return 0, 0, fail(n, fmt.Errorf("controller: no agent %q", n))
		}
		p, err := spec.compileFor(qid, i)
		if err != nil {
			return 0, 0, fail(n, err)
		}
		if err := c.Install(p); err != nil {
			return 0, 0, fail(n, fmt.Errorf("controller: agent %q: %w", n, err))
		}
		if first == nil {
			first = p
		}
		done = append(done, n)
		if rules := p.RuleCount() + 1; rules > maxRules {
			maxRules = rules
		}
	}
	inc(&r.obs.deploys)
	if first != nil {
		r.obs.publish(qid, spec.q.Name, mode, first.Footprint())
	}
	r.nextQID++
	r.deployments[qid] = done
	r.specs[qid] = spec
	if r.svc != nil {
		r.svc.SetExpected(qid, done)
	}
	f := 0.9 + 0.2*r.rng.Float64()
	delay := time.Duration(float64(installBase+time.Duration(maxRules)*installPerRule) * f)
	return qid, delay, nil
}

// resolveNames expands nil to every agent, sorted so shard indices are
// deterministic.
func (r *Remote) resolveNames(names []string) []string {
	if len(names) > 0 {
		return names
	}
	for n := range r.agents {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Install compiles a query and pushes it to the named agents (all
// agents when names is nil). The deploy is transactional: on any
// failure already-installed rules are removed and a typed
// *PartialDeployError is returned. Returns the assigned QID and the
// modeled operation latency (per-switch batches run in parallel; the
// slowest bounds the delay).
func (r *Remote) Install(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	return r.deploy(&deploySpec{q: q, width: width, names: r.resolveNames(names)})
}

// Remove uninstalls a deployment from every agent holding it. An agent
// that no longer has the query (it restarted since) already satisfies
// the desired state and does not fail the removal.
func (r *Remote) Remove(qid int) error {
	names, ok := r.deployments[qid]
	if !ok {
		return fmt.Errorf("controller: no deployment %d", qid)
	}
	for _, n := range names {
		if err := r.agents[n].Remove(qid); err != nil && !rpc.IsAgentCode(err, rpc.CodeNotInstalled) {
			inc(&r.obs.removeFailures)
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	delete(r.deployments, qid)
	delete(r.specs, qid)
	if r.svc != nil {
		r.svc.SetExpected(qid, nil)
	}
	inc(&r.obs.removes)
	r.obs.unpublish(qid)
	return nil
}

// Tick rolls the evaluation window on every agent (the controller's
// 100 ms heartbeat).
func (r *Remote) Tick() error {
	for n, c := range r.agents {
		if err := c.NextEpoch(); err != nil {
			inc(&r.obs.tickFailures)
			return fmt.Errorf("controller: agent %q: %w", n, err)
		}
	}
	inc(&r.obs.ticks)
	return nil
}

// AttachTelemetry switches the controller's report path from polling to
// push: agents stream reports and epoch snapshots to svc, and Collect
// drains svc's deduplicated alert stream instead of round-robin polling
// every agent. Install/Remove/Tick keep using the control channel.
func (r *Remote) AttachTelemetry(svc *telemetry.Service) { r.svc = svc }

// InstallSharded compiles q once per agent with key sharding (§5.1):
// agent i owns keys whose owner hash ≡ i mod len(names), so the agents
// partition the key space and the analyzer's merged banks reconstruct
// the network-wide view. Names nil shards across all agents (in sorted
// order, so shard indices are deterministic). Sharded deploys are
// strictly all-or-nothing — a missing shard member would silently
// undercount every key it owns — so any failure rolls back and returns
// a *PartialDeployError.
func (r *Remote) InstallSharded(q *query.Query, width uint32, names []string) (int, time.Duration, error) {
	return r.deploy(&deploySpec{q: q, width: width, names: r.resolveNames(names), sharded: true})
}

// Reconverge re-drives every live deployment toward its recorded spec:
// each agent is offered its program again, and an "already installed"
// answer counts as convergence (the ops are level-triggered). This is
// the controller's answer to an agent restart that lost its installs —
// call it whenever an agent reappears. It returns the first hard error.
func (r *Remote) Reconverge() error {
	qids := make([]int, 0, len(r.specs))
	for qid := range r.specs {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		spec := r.specs[qid]
		for i, n := range spec.names {
			c, ok := r.agents[n]
			if !ok {
				inc(&r.obs.reconvergeFailures)
				return fmt.Errorf("controller: no agent %q", n)
			}
			p, err := spec.compileFor(qid, i)
			if err != nil {
				inc(&r.obs.reconvergeFailures)
				return err
			}
			if err := c.Install(p); err != nil && !rpc.IsAgentCode(err, rpc.CodeAlreadyInstalled) {
				inc(&r.obs.reconvergeFailures)
				return fmt.Errorf("controller: reconverge agent %q: %w", n, err)
			}
		}
	}
	inc(&r.obs.reconverges)
	return nil
}

// Collect returns new reports: the merged push-based stream when a
// telemetry service is attached, otherwise a poll over every agent.
func (r *Remote) Collect() ([]dataplane.Report, error) {
	if r.svc != nil {
		return r.svc.DrainReports(), nil
	}
	var out []dataplane.Report
	for n, c := range r.agents {
		rs, err := c.DrainReports()
		if err != nil {
			return nil, fmt.Errorf("controller: agent %q: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}
