package experiments

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
)

// Fig10Result reproduces Fig. 10: the forwarding interruption a query
// update causes under Sonata versus Newton.
type Fig10Result struct {
	// Throughput is panel (a): delivered packets per one-second bucket
	// while a query update lands mid-run, for both systems.
	BucketSeconds  int
	SonataSeries   []uint64
	NewtonSeries   []uint64
	SonataOutage   time.Duration
	NewtonOpDelay  time.Duration
	SonataDropped  uint64
	NewtonDropped  uint64
	UpdateAtSecond int

	// Interruption is panel (b): Sonata's interruption delay as the
	// forwarding state grows (10K–60K entries).
	Entries      []int
	Interruption []time.Duration
}

// Fig10Interruption runs both panels. Offered load is a constant pps
// stream through one switch; the update fires mid-run.
func Fig10Interruption(pps int, seconds int, fwdEntries int) *Fig10Result {
	if pps == 0 {
		pps = 2000
	}
	if seconds == 0 {
		seconds = 40
	}
	if fwdEntries == 0 {
		fwdEntries = 20000
	}
	res := &Fig10Result{BucketSeconds: 1, UpdateAtSecond: 5}

	run := func(sonata bool) ([]uint64, time.Duration, uint64) {
		topo, h1, h2 := topology.Linear(1)
		net, err := netsim.New(topo, netsim.Config{})
		if err != nil {
			panic(err)
		}
		sw := topo.Switches()[0]
		series := make([]uint64, seconds)
		var opDur time.Duration
		gap := uint64(time.Second) / uint64(pps)

		// Pre-generate the constant-rate stream (contiguously, like a
		// trace), then deliver it second by second on the batch path.
		// The query update lands exactly at its original point: the
		// first packet of second UpdateAtSecond.
		pkts := make([]*packet.Packet, pps*seconds)
		slab := make([]packet.Packet, len(pkts))
		udps := make([]packet.UDP, len(pkts))
		for i := range pkts {
			udps[i] = packet.UDP{SrcPort: 1000, DstPort: 2000}
			slab[i] = packet.Packet{TS: uint64(i) * gap,
				IP:  packet.IPv4{Proto: packet.ProtoUDP, Src: uint32(i), Dst: 0x0A000001},
				UDP: &udps[i]}
			pkts[i] = &slab[i]
		}
		prevDelivered, prevDropped := net.Stats()
		for b := 0; b < seconds; b++ {
			if b == res.UpdateAtSecond {
				net.AdvanceTo(uint64(b) * uint64(time.Second))
				if sonata {
					s := controller.NewSonata(net, 1)
					opDur = s.UpdateQueries(sw, fwdEntries)
				} else {
					c := controller.NewNewton(net, 1)
					_, opDur, err = c.Install(controller.Spec{Query: query.Q6(30)})
					if err != nil {
						panic(err)
					}
				}
			}
			net.DeliverBatch(pkts[b*pps:(b+1)*pps], h1, h2)
			delivered, _ := net.Stats()
			series[b] = delivered - prevDelivered
			prevDelivered = delivered
		}
		_, dropTotal := net.Stats()
		return series, opDur, dropTotal - prevDropped
	}

	res.SonataSeries, res.SonataOutage, res.SonataDropped = run(true)
	res.NewtonSeries, res.NewtonOpDelay, res.NewtonDropped = run(false)

	// Panel (b): interruption vs table entries.
	for _, n := range []int{10000, 20000, 30000, 40000, 50000, 60000} {
		topo, _, _ := topology.Linear(1)
		net, err := netsim.New(topo, netsim.Config{})
		if err != nil {
			panic(err)
		}
		s := controller.NewSonata(net, int64(n))
		res.Entries = append(res.Entries, n)
		res.Interruption = append(res.Interruption, s.UpdateQueries(topo.Switches()[0], n))
	}
	return res
}

// String renders both panels.
func (r *Fig10Result) String() string {
	ta := &table{header: []string{"Second", "Sonata pps", "Newton pps"}}
	for i := range r.SonataSeries {
		ta.add(i2s(i), fmt.Sprintf("%d", r.SonataSeries[i]), fmt.Sprintf("%d", r.NewtonSeries[i]))
	}
	tb := &table{header: []string{"Fwd entries", "Sonata interruption"}}
	for i, n := range r.Entries {
		tb.add(i2s(n), r.Interruption[i].Round(time.Millisecond).String())
	}
	return fmt.Sprintf(
		"Fig. 10: interruption of query updates (update at t=%ds)\n"+
			"(a) throughput during update — Sonata outage %v (dropped %d pkts), Newton op delay %v (dropped %d pkts)\n%s\n"+
			"(b) Sonata interruption vs forwarding entries\n%s",
		r.UpdateAtSecond,
		r.SonataOutage.Round(time.Millisecond), r.SonataDropped,
		r.NewtonOpDelay.Round(time.Millisecond), r.NewtonDropped,
		ta.String(), tb.String())
}
