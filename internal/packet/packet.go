// Package packet implements the packet model used throughout the Newton
// reproduction: Ethernet/IPv4/TCP/UDP layers with wire-format encode and
// decode (gopacket-style layering, stdlib only), 5-tuple flow keys, and
// the 12-byte Result Snapshot (SP) header that cross-switch query
// execution piggybacks on packets (§5.1 of the paper).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"github.com/newton-net/newton/internal/fields"
)

// Protocol numbers and well-known constants.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17

	// EtherTypeIPv4 is the standard IPv4 EtherType.
	EtherTypeIPv4 = 0x0800
	// EtherTypeSP is the locally-administered EtherType that announces a
	// Result Snapshot shim between the Ethernet and IPv4 headers.
	EtherTypeSP = 0x88B5
)

// TCP flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Ethernet is the L2 header. Addresses are 48-bit values held in uint64.
type Ethernet struct {
	Dst, Src  uint64
	EtherType uint16
}

// IPv4 is the L3 header (options unsupported; IHL is always 5).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Src, Dst uint32
}

// TCP is the L4 TCP header (options unsupported; data offset is 5).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// UDP is the L4 UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// SPHeader is the 12-byte Result Snapshot header of cross-switch query
// execution. Operation keys are not carried — they are recomputed from
// the packet headers at every hop — so the snapshot holds only what a
// downstream partition cannot rederive: the two state results, the global
// result, and which query/partition produced them.
//
// Wire layout (big endian):
//
//	0..1   QID (12 bits) | Part (4 bits)
//	2..5   State result of metadata set 0
//	6..9   State result of metadata set 1
//	10..11 Global result (folded to 16 bits)
type SPHeader struct {
	QID    uint16 // 12 bits
	Part   uint8  // 4 bits: index of the next query partition to execute
	State0 uint32
	State1 uint32
	Global uint16
}

// SPHeaderLen is the on-wire size of the Result Snapshot header.
const SPHeaderLen = 12

// Packet is a decoded packet plus the simulation metadata that travels
// with it (virtual timestamp and ingress port).
type Packet struct {
	TS     uint64 // virtual time, nanoseconds
	InPort int

	Eth Ethernet
	IP  IPv4
	TCP *TCP
	UDP *UDP
	SP  *SPHeader

	PayloadLen int
}

// headerLen returns the total header length of the packet as built.
func (p *Packet) headerLen() int {
	n := 14 + 20
	if p.SP != nil {
		n += SPHeaderLen
	}
	switch {
	case p.TCP != nil:
		n += 20
	case p.UDP != nil:
		n += 8
	}
	return n
}

// Len returns the packet's total on-wire length in bytes.
func (p *Packet) Len() int { return p.headerLen() + p.PayloadLen }

// FlowKey is the classic 5-tuple.
type FlowKey struct {
	Src, Dst     uint32
	SPort, DPort uint16
	Proto        uint8
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SPort: k.DPort, DPort: k.SPort, Proto: k.Proto}
}

// LaneHash hashes the 5-tuple direction-insensitively: both directions
// of a connection land on the same value, so sharded delivery keeps a
// whole conversation on one worker lane. The endpoint pair is ordered
// canonically before mixing (a splitmix64 finisher spreads the bits for
// modulo lane selection), and the whole computation is inline —
// allocation-free on the per-packet path.
func (k FlowKey) LaneHash() uint64 {
	a := uint64(k.Src)<<16 | uint64(k.SPort)
	b := uint64(k.Dst)<<16 | uint64(k.DPort)
	if a > b {
		a, b = b, a
	}
	h := a*0x9E3779B97F4A7C15 ^ b ^ uint64(k.Proto)<<56
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// String renders the key as "1.2.3.4:80 -> 5.6.7.8:1234/tcp".
func (k FlowKey) String() string {
	proto := fmt.Sprintf("%d", k.Proto)
	switch k.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	case ProtoICMP:
		proto = "icmp"
	}
	return fmt.Sprintf("%s:%d -> %s:%d/%s",
		ipString(k.Src), k.SPort, ipString(k.Dst), k.DPort, proto)
}

func ipString(ip uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], ip)
	return netip.AddrFrom4(b).String()
}

// Flow returns the packet's 5-tuple.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Proto}
	switch {
	case p.TCP != nil:
		k.SPort, k.DPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SPort, k.DPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

// Fields extracts the global header-field vector the Newton modules
// consume. This is the parser's contribution to the PHV.
func (p *Packet) Fields() fields.Vector {
	var v fields.Vector
	p.FieldsInto(&v)
	return v
}

// FieldsInto writes the global header-field vector directly into v,
// avoiding the copy of the by-value form on the per-packet path. All
// entries of v are (re)assigned; width masks are folded to constants so
// the whole extraction is straight-line stores.
func (p *Packet) FieldsInto(v *fields.Vector) {
	const (
		tsMask     = (uint64(1) << 48) - 1 // Timestamp natural width
		inPortMask = (uint64(1) << 9) - 1  // InPort natural width
	)
	v[fields.Timestamp] = p.TS & tsMask
	v[fields.InPort] = uint64(p.InPort) & inPortMask
	v[fields.SrcIP] = uint64(p.IP.Src)
	v[fields.DstIP] = uint64(p.IP.Dst)
	v[fields.Proto] = uint64(p.IP.Proto)
	v[fields.TTL] = uint64(p.IP.TTL)
	v[fields.PktLen] = uint64(p.Len())
	if p.TCP != nil {
		v[fields.SrcPort] = uint64(p.TCP.SrcPort)
		v[fields.DstPort] = uint64(p.TCP.DstPort)
		v[fields.TCPFlags] = uint64(p.TCP.Flags)
		v[fields.TCPSeq] = uint64(p.TCP.Seq)
		v[fields.TCPAck] = uint64(p.TCP.Ack)
	} else if p.UDP != nil {
		v[fields.SrcPort] = uint64(p.UDP.SrcPort)
		v[fields.DstPort] = uint64(p.UDP.DstPort)
		v[fields.TCPFlags], v[fields.TCPSeq], v[fields.TCPAck] = 0, 0, 0
	} else {
		v[fields.SrcPort], v[fields.DstPort] = 0, 0
		v[fields.TCPFlags], v[fields.TCPSeq], v[fields.TCPAck] = 0, 0, 0
	}
}

// Serialize encodes the packet to wire bytes, computing the IPv4 header
// checksum and filling in length fields. The payload is rendered as
// zeros (its content never matters to monitoring).
func (p *Packet) Serialize() []byte {
	buf := make([]byte, p.Len())
	off := 0

	// Ethernet.
	putMAC(buf[0:6], p.Eth.Dst)
	putMAC(buf[6:12], p.Eth.Src)
	et := p.Eth.EtherType
	if et == 0 {
		et = EtherTypeIPv4
	}
	if p.SP != nil {
		et = EtherTypeSP
	}
	binary.BigEndian.PutUint16(buf[12:14], et)
	off = 14

	// Result Snapshot shim, if present.
	if p.SP != nil {
		p.SP.marshal(buf[off : off+SPHeaderLen])
		off += SPHeaderLen
	}

	// IPv4.
	ip := buf[off : off+20]
	l4len := p.PayloadLen
	switch {
	case p.TCP != nil:
		l4len += 20
	case p.UDP != nil:
		l4len += 8
	}
	ip[0] = 0x45
	ip[1] = p.IP.TOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(20+l4len))
	binary.BigEndian.PutUint16(ip[4:6], p.IP.ID)
	binary.BigEndian.PutUint16(ip[6:8], uint16(p.IP.Flags)<<13|p.IP.FragOff&0x1FFF)
	ip[8] = p.IP.TTL
	ip[9] = p.IP.Proto
	binary.BigEndian.PutUint32(ip[12:16], p.IP.Src)
	binary.BigEndian.PutUint32(ip[16:20], p.IP.Dst)
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip))
	off += 20

	// L4.
	switch {
	case p.TCP != nil:
		t := buf[off : off+20]
		binary.BigEndian.PutUint16(t[0:2], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(t[2:4], p.TCP.DstPort)
		binary.BigEndian.PutUint32(t[4:8], p.TCP.Seq)
		binary.BigEndian.PutUint32(t[8:12], p.TCP.Ack)
		t[12] = 5 << 4
		t[13] = p.TCP.Flags
		binary.BigEndian.PutUint16(t[14:16], p.TCP.Window)
	case p.UDP != nil:
		u := buf[off : off+8]
		binary.BigEndian.PutUint16(u[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(u[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(u[4:6], uint16(8+p.PayloadLen))
	}
	return buf
}

// Decode parses wire bytes into a Packet. It accepts exactly the formats
// Serialize produces: Ethernet, optional SP shim, IPv4 without options,
// TCP without options or UDP.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < 14 {
		return nil, errors.New("packet: truncated ethernet header")
	}
	p := &Packet{}
	p.Eth.Dst = getMAC(buf[0:6])
	p.Eth.Src = getMAC(buf[6:12])
	p.Eth.EtherType = binary.BigEndian.Uint16(buf[12:14])
	off := 14

	if p.Eth.EtherType == EtherTypeSP {
		if len(buf) < off+SPHeaderLen {
			return nil, errors.New("packet: truncated SP header")
		}
		sp := &SPHeader{}
		sp.unmarshal(buf[off : off+SPHeaderLen])
		p.SP = sp
		off += SPHeaderLen
	} else if p.Eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported ethertype %#04x", p.Eth.EtherType)
	}

	if len(buf) < off+20 {
		return nil, errors.New("packet: truncated IPv4 header")
	}
	ip := buf[off : off+20]
	if ip[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl != 20 {
		return nil, fmt.Errorf("packet: IPv4 options unsupported (ihl %d)", ihl)
	}
	if checksum(ip) != 0 {
		return nil, errors.New("packet: bad IPv4 checksum")
	}
	p.IP.TOS = ip[1]
	p.IP.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	p.IP.ID = binary.BigEndian.Uint16(ip[4:6])
	fo := binary.BigEndian.Uint16(ip[6:8])
	p.IP.Flags = uint8(fo >> 13)
	p.IP.FragOff = fo & 0x1FFF
	p.IP.TTL = ip[8]
	p.IP.Proto = ip[9]
	p.IP.Src = binary.BigEndian.Uint32(ip[12:16])
	p.IP.Dst = binary.BigEndian.Uint32(ip[16:20])
	off += 20

	switch p.IP.Proto {
	case ProtoTCP:
		if len(buf) < off+20 {
			return nil, errors.New("packet: truncated TCP header")
		}
		t := buf[off : off+20]
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(t[0:2]),
			DstPort: binary.BigEndian.Uint16(t[2:4]),
			Seq:     binary.BigEndian.Uint32(t[4:8]),
			Ack:     binary.BigEndian.Uint32(t[8:12]),
			Flags:   t[13],
			Window:  binary.BigEndian.Uint16(t[14:16]),
		}
		p.PayloadLen = int(p.IP.TotalLen) - 20 - 20
	case ProtoUDP:
		if len(buf) < off+8 {
			return nil, errors.New("packet: truncated UDP header")
		}
		u := buf[off : off+8]
		p.UDP = &UDP{
			SrcPort: binary.BigEndian.Uint16(u[0:2]),
			DstPort: binary.BigEndian.Uint16(u[2:4]),
			Length:  binary.BigEndian.Uint16(u[4:6]),
		}
		p.PayloadLen = int(p.IP.TotalLen) - 20 - 8
	default:
		p.PayloadLen = int(p.IP.TotalLen) - 20
	}
	if p.PayloadLen < 0 {
		return nil, errors.New("packet: inconsistent length fields")
	}
	return p, nil
}

func (h *SPHeader) marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.QID<<4|uint16(h.Part)&0x0F)
	binary.BigEndian.PutUint32(b[2:6], h.State0)
	binary.BigEndian.PutUint32(b[6:10], h.State1)
	binary.BigEndian.PutUint16(b[10:12], h.Global)
}

func (h *SPHeader) unmarshal(b []byte) {
	qp := binary.BigEndian.Uint16(b[0:2])
	h.QID = qp >> 4
	h.Part = uint8(qp & 0x0F)
	h.State0 = binary.BigEndian.Uint32(b[2:6])
	h.State1 = binary.BigEndian.Uint32(b[6:10])
	h.Global = binary.BigEndian.Uint16(b[10:12])
}

// MarshalSP encodes an SP header to its 12-byte wire form (exported for
// tests and tools).
func MarshalSP(h *SPHeader) []byte {
	b := make([]byte, SPHeaderLen)
	h.marshal(b)
	return b
}

// UnmarshalSP decodes a 12-byte SP header.
func UnmarshalSP(b []byte) (*SPHeader, error) {
	if len(b) < SPHeaderLen {
		return nil, errors.New("packet: short SP header")
	}
	h := &SPHeader{}
	h.unmarshal(b)
	return h, nil
}

func putMAC(b []byte, v uint64) {
	b[0] = byte(v >> 40)
	b[1] = byte(v >> 32)
	b[2] = byte(v >> 24)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 8)
	b[5] = byte(v)
}

func getMAC(b []byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// checksum computes the RFC 1071 internet checksum over b. When b already
// contains a checksum field, the result is 0 iff the checksum verifies.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// IPv4Addr converts dotted-quad text to the uint32 address form used
// throughout the simulator. It panics on malformed input; use only with
// literals.
func IPv4Addr(s string) uint32 {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		panic(fmt.Sprintf("packet: bad IPv4 literal %q", s))
	}
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}
