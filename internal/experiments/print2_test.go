package experiments

import (
	"fmt"
	"testing"
	"time"
)

func TestPrintSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	fmt.Println(Fig11OperationDelay(20))
	fmt.Println(Fig12Overhead(1500, 300*time.Millisecond))
	fmt.Println(Fig13CQEOverhead(3))
	fmt.Println(Fig14Accuracy([]uint32{256, 1024}, 3))
}

func TestPrintExportOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	r := ExportOverhead(3, 500*time.Millisecond)
	fmt.Println(r)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	poll, push := r.Rows[0], r.Rows[1]
	// Replicated switches all raise the same alert; the analyzer service
	// deduplicates, so push delivers exactly one alert per poll-mode triple.
	if push.Reports == 0 || push.Reports*r.Switches != poll.Reports {
		t.Errorf("push delivered %d alerts, poll %d over %d replicated switches",
			push.Reports, poll.Reports, r.Switches)
	}
	// Every binary mode must deliver the same deduped alert count as the
	// JSON push: the codec changes the bytes, never the answers.
	for _, row := range r.Rows[2:] {
		if row.Reports != push.Reports {
			t.Errorf("%s delivered %d alerts, json-push %d", row.Mode, row.Reports, push.Reports)
		}
	}
}
