package query

import (
	"fmt"
	"math"
)

// Accuracy is an intent's target error budget — the paper's promise is
// accuracy, not geometry, so an operator declares how wrong an answer
// may be and the control loop owns the sketch width that delivers it.
//
// The zero value means "no accuracy intent": the query is provisioned
// statically by the width ladder and never refined.
type Accuracy struct {
	// MaxRelErr is the tolerated relative estimation error in (0, 1):
	// the Count-Min overcount bound ε·N (and any distinct filter's
	// false-positive probability) must stay within MaxRelErr of the
	// query's decision scale — its report threshold when it has one,
	// otherwise the stream total itself.
	MaxRelErr float64

	// Confidence is the probability the bound must hold with, in
	// (0, 1). Zero defaults to DefaultConfidence. Confidence maps to
	// Count-Min row count (δ = e^-rows), which is fixed at compile
	// time — the refiner reports, rather than repairs, a deployment
	// whose row count cannot honor it.
	Confidence float64
}

// DefaultConfidence is the bound-holding probability assumed when an
// accuracy intent does not declare one.
const DefaultConfidence = 0.95

// Enabled reports whether the intent carries an accuracy target.
func (a Accuracy) Enabled() bool { return a.MaxRelErr > 0 }

// Validate rejects out-of-range targets. The zero value is valid.
func (a Accuracy) Validate() error {
	if a.MaxRelErr < 0 || a.MaxRelErr >= 1 {
		return fmt.Errorf("query: accuracy MaxRelErr %g outside (0, 1)", a.MaxRelErr)
	}
	if a.Confidence < 0 || a.Confidence >= 1 {
		return fmt.Errorf("query: accuracy Confidence %g outside (0, 1)", a.Confidence)
	}
	if !a.Enabled() && a.Confidence > 0 {
		return fmt.Errorf("query: accuracy Confidence set without MaxRelErr")
	}
	return nil
}

// TargetConfidence resolves the declared or default confidence.
func (a Accuracy) TargetConfidence() float64 {
	if a.Confidence > 0 {
		return a.Confidence
	}
	return DefaultConfidence
}

// MinRows is the Count-Min row count needed for the resolved
// confidence: δ = e^-rows ≤ 1 - confidence.
func (a Accuracy) MinRows() int {
	return int(math.Ceil(math.Log(1 / (1 - a.TargetConfidence()))))
}

// MetBy reports whether an observed (relative error, δ) pair satisfies
// the target: the error within tolerance and the failure probability
// within 1 - confidence.
func (a Accuracy) MetBy(relErr, delta float64) bool {
	if !a.Enabled() {
		return true
	}
	return relErr <= a.MaxRelErr && delta <= 1-a.TargetConfidence()+1e-12
}

func (a Accuracy) String() string {
	if !a.Enabled() {
		return "accuracy(none)"
	}
	return fmt.Sprintf("accuracy(relerr<=%.3g @ %.0f%%)", a.MaxRelErr, a.TargetConfidence()*100)
}
