package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/orchestrator"
	"github.com/newton-net/newton/internal/query"
)

// runStatus is the `newton-ctl status` entry: deploy the chosen queries
// over an in-process fleet, stand up the health monitor that watches
// it, and render its fleet-health snapshot — the same table an operator
// would read against a live deployment. -kill demonstrates the closed
// loop: the named switch's control channel is severed, the monitor's
// next rounds debounce it to down, auto-drain it, and converge its
// queries onto the survivors, all visible in the final snapshot and
// event log.
func runStatus(args []string) {
	fs := flag.NewFlagSet("newton-ctl status", flag.ExitOnError)
	var (
		topoSpec = fs.String("topology", "linear:3", "topology: linear:N, fattree:K, or isp")
		queries  = fs.String("queries", "q1,q4", "comma-separated catalog queries (q1..q9), priority = listed order")
		stages   = fs.Int("switch-stages", 8, "pipeline stages of each switch device")
		arrays   = fs.Uint("registers", 1<<14, "state-bank registers per switch")
		rules    = fs.Int("rules", 256, "rule capacity per module table")
		kill     = fs.String("kill", "", "sever this switch's control channel and watch the monitor drain it")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	topo, _, _ := buildTopology(*topoSpec)
	fleet, budgets := buildFleet(topo, *stages, uint32(*arrays), *rules)
	remote := controller.NewRemote(fleet.clients, 1)
	orch, err := orchestrator.New(orchestrator.Config{Topo: topo, Budgets: budgets}, remote)
	if err != nil {
		log.Fatal(err)
	}

	var intents []orchestrator.Intent
	names := strings.Split(*queries, ",")
	for i, name := range names {
		q, err := query.ByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		intents = append(intents, orchestrator.Intent{Query: q, Priority: len(names) - i})
	}
	orch.SetIntents(intents)
	if _, _, err := orch.Converge(); err != nil {
		log.Fatalf("initial converge: %v", err)
	}

	mon, err := orchestrator.NewMonitor(orch, orch.Switches(), orchestrator.HealthConfig{
		// In-process pipes fail instantly once severed, so one bad round
		// may suspect and the next drain — the demo-speed ladder.
		Probe: func(name string) error {
			_, err := fleet.clients[name].Stats()
			return err
		},
		Offline:      remote.SetOffline,
		SuspectAfter: 1, DownAfter: 1, RecoverAfter: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	mon.Tick()
	fmt.Printf("fleet (%d switches, queries %s):\n%s", len(budgets), *queries, mon.Snapshot())

	if *kill == "" {
		return
	}
	c, ok := fleet.clients[*kill]
	if !ok {
		log.Fatalf("status: unknown switch %q", *kill)
	}
	fmt.Printf("\nsevering %s's control channel and re-evaluating:\n", *kill)
	c.Close()
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	snap := mon.Snapshot()
	fmt.Print(snap)
	fmt.Println("\nevents:")
	for _, ev := range snap.Events {
		fmt.Printf("  %s\n", ev)
	}
	fmt.Println("\nsurviving installs:")
	fleet.printInstalls()
}
