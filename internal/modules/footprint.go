package modules

// Footprint is a program's hardware resource consumption in the paper's
// §6 vocabulary: pipeline stages spanned, hash units, stateful ALUs,
// state-bank register slots, and table rules split by kind. It is
// computed from compiled (and, once installed, placed) programs, so the
// numbers match what Install actually charged against the Layout.
type Footprint struct {
	Stages      int    // pipeline stages spanned (highest assigned stage + 1)
	HashUnits   int    // H module instances
	SALUs       int    // state-owning S module instances (stateful ALUs)
	Registers   uint32 // state-bank register slots across owning S ops
	InitRules   int    // newton_init classifier entries (one per branch)
	ResultRules int    // R-table entries
	Rules       int    // total module-table rules, all kinds

	// ClassifierPreds counts the distinct (column, value, mask)
	// predicates this program's newton_init entries contribute to the
	// compiled classifier. Per-dimension table width grows with distinct
	// predicates, not entries, so this is the dimension the width
	// ladder's classifier budget is charged in.
	ClassifierPreds int
}

// Footprint computes the program's resource footprint. Pass-through and
// cross-read S ops consume no registers or ALUs of their own (they read
// another branch's bank), matching Install's allocation rules.
// InitPredKey identifies one newton_init classifier predicate: a
// non-wildcard (column, masked value, mask) triple. Distinct keys are
// what the compiled classifier's per-dimension tables grow with.
type InitPredKey struct {
	Col       int
	Val, Mask uint64
}

// InitPreds appends the branch's classifier predicate keys to dst.
// Wildcard columns (mask 0) contribute nothing: the classifier skips
// them entirely.
func (b *BranchProgram) InitPreds(dst []InitPredKey) []InitPredKey {
	for c := range b.Init.Masks {
		if m := b.Init.Masks[c]; m != 0 {
			dst = append(dst, InitPredKey{c, b.Init.Values[c] & m, m})
		}
	}
	return dst
}

func (p *Program) Footprint() Footprint {
	var f Footprint
	maxStage := -1
	preds := map[InitPredKey]struct{}{}
	var pbuf []InitPredKey
	for _, b := range p.Branches {
		f.InitRules++
		pbuf = b.InitPreds(pbuf[:0])
		for _, k := range pbuf {
			preds[k] = struct{}{}
		}
		for _, op := range b.Ops {
			f.Rules++
			if op.Stage > maxStage {
				maxStage = op.Stage
			}
			switch op.Kind {
			case ModH:
				f.HashUnits++
			case ModS:
				if op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
					f.SALUs++
					f.Registers += op.Width()
				}
			case ModR:
				f.ResultRules++
			}
		}
	}
	f.Stages = maxStage + 1
	f.ClassifierPreds = len(preds)
	return f
}
