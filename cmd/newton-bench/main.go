// newton-bench regenerates the paper's evaluation tables and figures
// from the command line.
//
// Usage:
//
//	newton-bench -list
//	newton-bench -run all
//	newton-bench -run fig12,fig15 -flows 2000 -trials 100
//	newton-bench -run throughput -json bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/newton-net/newton/internal/experiments"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/version"
)

// jsonRecord is one experiment's machine-readable result, written by
// -json so CI can archive numbers across PRs.
type jsonRecord struct {
	Experiment string             `json:"experiment"`
	Seconds    float64            `json:"seconds"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Output     string             `json:"output"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "all", "comma-separated experiments to run, or 'all'")
		trials   = flag.Int("trials", 100, "trials for fig11")
		flows    = flag.Int("flows", 3000, "background flows for trace-driven experiments")
		dur      = flag.Duration("duration", 500*time.Millisecond, "trace duration (virtual time)")
		hops     = flag.Int("hops", 5, "maximum hop count for fig13")
		workers  = flag.Int("workers", 0, "default delivery worker lanes for trace-driven experiments (0 = GOMAXPROCS)")
		fseed    = flag.Int64("fault-seed", 1, "seed for the chaos and soak experiments' fault injection")
		soakSw   = flag.Int("soak-switches", 0, "soak fleet size (0 = default)")
		soakRds  = flag.Int("soak-rounds", 0, "soak churn rounds (0 = default)")
		soakTen  = flag.Int("soak-tenants", 0, "soak tenant count (0 = default)")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")
		showVers = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVers {
		fmt.Println(version.String("newton-bench"))
		return
	}

	if *workers > 0 {
		netsim.SetDefaultWorkers(*workers)
	}

	suite := map[string]func() fmt.Stringer{
		"adaptive": func() fmt.Stringer { return experiments.Adaptive(experiments.AdaptiveConfig{Seed: *fseed}) },
		"chaos":    func() fmt.Stringer { return experiments.ChaosRecovery(experiments.ChaosConfig{Seed: *fseed}) },
		"soak": func() fmt.Stringer {
			return experiments.Soak(experiments.SoakConfig{
				Seed: *fseed, Switches: *soakSw, Rounds: *soakRds, Tenants: *soakTen,
			})
		},
		"export":      func() fmt.Stringer { return experiments.ExportOverhead(3, *dur) },
		"table3":      func() fmt.Stringer { return experiments.Table3() },
		"ablation":    func() fmt.Stringer { return experiments.Ablation() },
		"fig10":       func() fmt.Stringer { return experiments.Fig10Interruption(2000, 40, 20000) },
		"fig11":       func() fmt.Stringer { return experiments.Fig11OperationDelay(*trials) },
		"fig12":       func() fmt.Stringer { return experiments.Fig12Overhead(*flows, *dur) },
		"fig13":       func() fmt.Stringer { return experiments.Fig13CQEOverhead(*hops) },
		"fig14":       func() fmt.Stringer { return experiments.Fig14Accuracy(nil, 3) },
		"fig15":       func() fmt.Stringer { return experiments.Fig15Compilation() },
		"fig16":       func() fmt.Stringer { return experiments.Fig16Multiplexing(nil) },
		"fig17":       func() fmt.Stringer { return experiments.Fig17Placement() },
		"fig17deploy": func() fmt.Stringer { return experiments.Fig17Deploy() },
		"throughput":  func() fmt.Stringer { return experiments.Throughput(2000, 400*time.Millisecond) },
		"throughput-scaling": func() fmt.Stringer {
			return experiments.ThroughputScaling(2000, 400*time.Millisecond, []int{1, 2, 4, 8})
		},
		"classifier-scaling": func() fmt.Stringer {
			return experiments.ClassifierScaling([]int{16, 256, 4096, 32768}, []int{1, 4}, 0)
		},
	}
	names := make([]string, 0, len(suite))
	for n := range suite {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	selected := names
	if *run != "all" {
		selected = strings.Split(*run, ",")
	}
	var records []jsonRecord
	for _, name := range selected {
		name = strings.TrimSpace(name)
		exp, ok := suite[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "newton-bench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		result := exp()
		elapsed := time.Since(start)
		fmt.Printf("=== %s (took %v) ===\n%s\n", name, elapsed.Round(time.Millisecond), result)
		if *jsonPath != "" {
			rec := jsonRecord{Experiment: name, Seconds: elapsed.Seconds(), Output: result.String()}
			if m, ok := result.(interface{ Metrics() map[string]float64 }); ok {
				rec.Metrics = m.Metrics()
			}
			records = append(records, rec)
		}
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "newton-bench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "newton-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "newton-bench: wrote %d records to %s\n", len(records), *jsonPath)
	}
}
