// Streaming telemetry: push-based export and the network-wide merging
// analyzer.
//
// Three switch agents share one heavy-hitter query via key sharding
// (§5.1): each switch owns a third of the destination-IP key space, so
// every key's counters live on exactly one switch. Instead of the
// controller polling each agent, the agents stream their mirrored
// reports and epoch-boundary sketch snapshots to a standalone analyzer
// service over TCP, which sums the per-switch Count-Min banks into a
// single network-wide sketch, deduplicates threshold alerts, and feeds
// the controller's Collect path.
//
// Run with: go run ./examples/streaming-telemetry
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/telemetry"
	"github.com/newton-net/newton/internal/trace"
)

func main() {
	// --- Analyzer side: the merging service, listening for agent streams.
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	svcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go svc.Serve(svcLn)
	fmt.Printf("analyzer service ingesting telemetry on %s\n", svcLn.Addr())

	// --- Switch side: three agents, each serving a control channel and
	// pushing telemetry to the analyzer.
	names := []string{"edge1", "edge2", "edge3"}
	clients := map[string]*rpc.Client{}
	var switches []*dataplane.Switch
	var exporters []*telemetry.Exporter
	for _, name := range names {
		layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<15)
		if err != nil {
			log.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(name, 16, modules.StageCapacity())
		if err := sw.AddRoute(0, 0, 1); err != nil {
			log.Fatal(err)
		}
		sw.Monitor = eng
		switches = append(switches, sw)

		exp, err := telemetry.Dial(svcLn.Addr().String(), telemetry.ExporterConfig{
			SwitchID: name, Policy: telemetry.PolicyBlock,
		})
		if err != nil {
			log.Fatal(err)
		}
		exporters = append(exporters, exp)

		agent := rpc.NewAgent(sw, eng)
		exp.AttachAgent(agent, eng) // controller epoch ticks push snapshots
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go agent.Serve(ln)

		client, err := rpc.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		clients[name] = client
	}

	// --- Controller side: installs one query sharded across the three
	// switches and reads results from the push stream, never polling.
	ctl := controller.NewRemote(clients, 7)
	ctl.AttachTelemetry(svc)

	q, err := query.Parse("syn_flood_watch",
		"filter(proto == tcp && tcp_flags == syn) | map(dip) | reduce(dip, sum) | filter(result > 40)")
	if err != nil {
		log.Fatal(err)
	}
	qid, delay, err := ctl.InstallSharded(q, 1<<12, names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %q sharded over %d switches in %v\n",
		q.Name, len(names), delay.Round(time.Microsecond))

	// Replicate the traffic to every switch: sharding makes each switch
	// update only the keys it owns, so the per-switch sketches partition
	// the key space and their sum is the network-wide sketch.
	victim := uint32(0x0A000042)
	tr := trace.Generate(trace.Config{Seed: 5, Flows: 200, Duration: 300 * time.Millisecond},
		trace.SYNFlood{Victim: victim, Packets: 600})
	window := uint64(q.Window)
	next := window
	ticks := 0
	tick := func() {
		for i, sw := range switches {
			exporters[i].Export(sw.DrainReports())
		}
		if err := ctl.Tick(); err != nil { // snapshots push before the roll
			log.Fatal(err)
		}
		ticks++
	}
	for _, pkt := range tr.Packets {
		for pkt.TS >= next {
			tick()
			next += window
		}
		for _, sw := range switches {
			sw.Process(pkt)
		}
	}
	tick()

	// Drain the streams and prove the block policy lost nothing.
	for i, exp := range exporters {
		if err := exp.Flush(); err != nil {
			log.Fatal(err)
		}
		st := exp.Stats()
		fmt.Printf("%s: pushed %d reports in %d batches, %d snapshots, dropped=%d\n",
			names[i], st.Exported, st.Batches, st.Snapshots, st.Dropped)
	}

	// Collect now drains the analyzer's merged, deduplicated stream.
	reports, err := ctl.Collect()
	if err != nil {
		log.Fatal(err)
	}
	col := analyzer.NewCollector(window, q.ReportKeys())
	col.AddAll(reports)
	fmt.Printf("collected %d deduplicated alerts from the push stream\n", col.Raw)
	for k := range col.FlaggedKeys() {
		fmt.Printf("  SYN flood victim: %d.%d.%d.%d\n", k>>24&0xFF, k>>16&0xFF, k>>8&0xFF, k&0xFF)
	}

	// The merged Count-Min view answers point queries no single switch
	// can: the victim's count lives only on its owner switch, but the
	// analyzer's summed banks cover the whole key space.
	var keys fields.Vector
	keys.Set(fields.DstIP, uint64(victim))
	lastEpoch := uint32(ticks - 1)
	if est, ok := svc.Estimate(qid, 0, lastEpoch, &keys); ok {
		fmt.Printf("network-wide estimate for the victim in epoch %d: %d SYNs\n", lastEpoch, est)
	}

	st := svc.Stats()
	fmt.Printf("analyzer: %d agents, %d reports, %d cross-stream duplicates suppressed, %d snapshots merged\n",
		st.Agents, st.Reports, st.DuplicateAlerts, st.Snapshots)

	for _, exp := range exporters {
		exp.Close()
	}
	svc.Close()
}
