package trace

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/packet"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Flows: 200, Duration: time.Second}
	a := Generate(cfg, SYNFlood{Victim: 0x0A000001, Packets: 50})
	b := Generate(cfg, SYNFlood{Victim: 0x0A000001, Packets: 50})
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i].Flow() != b.Packets[i].Flow() || a.Packets[i].TS != b.Packets[i].TS {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateSorted(t *testing.T) {
	tr := Generate(Config{Seed: 3, Flows: 500, Duration: 500 * time.Millisecond})
	if !sort.SliceIsSorted(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].TS < tr.Packets[j].TS
	}) {
		t.Error("packets not sorted by timestamp")
	}
	for _, p := range tr.Packets {
		if p.TS >= uint64(500*time.Millisecond) {
			t.Fatalf("timestamp %d beyond duration", p.TS)
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	caida := Generate(Config{Seed: 5, Flows: 2000, Duration: time.Second, Profile: CAIDA})
	mawi := Generate(Config{Seed: 5, Flows: 2000, Duration: time.Second, Profile: MAWI})
	frac := func(tr *Trace) float64 {
		tcp := 0
		for _, p := range tr.Packets {
			if p.TCP != nil {
				tcp++
			}
		}
		return float64(tcp) / float64(len(tr.Packets))
	}
	if frac(caida) <= frac(mawi) {
		t.Errorf("CAIDA should be more TCP-heavy: %.2f vs %.2f", frac(caida), frac(mawi))
	}
	if CAIDA.String() != "CAIDA" || MAWI.String() != "MAWI" {
		t.Error("profile names wrong")
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Generate(Config{Seed: 9, Flows: 3000, Duration: time.Second})
	counts := map[packet.FlowKey]int{}
	for _, p := range tr.Packets {
		counts[p.Flow()]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	total := 0
	for _, s := range sizes {
		total += s
	}
	top10 := 0
	for _, s := range sizes[:len(sizes)/10] {
		top10 += s
	}
	if got := float64(top10) / float64(total); got < 0.4 {
		t.Errorf("top-10%% of flows carry only %.2f of packets; want heavy tail", got)
	}
}

func TestSYNFloodOverlay(t *testing.T) {
	victim := uint32(0x0A0000FE)
	tr := Generate(Config{Seed: 1, Flows: 0, Duration: time.Second}, SYNFlood{Victim: victim, Packets: 100})
	if !tr.Truth.SYNFloodVictims[victim] {
		t.Error("truth not recorded")
	}
	if len(tr.Packets) != 100 {
		t.Fatalf("got %d packets, want 100", len(tr.Packets))
	}
	for _, p := range tr.Packets {
		if p.IP.Dst != victim || p.TCP == nil || p.TCP.Flags != packet.FlagSYN {
			t.Fatal("non-SYN or wrong destination in flood")
		}
	}
}

func TestUDPFloodDistinctSources(t *testing.T) {
	victim := uint32(0x0A0000FD)
	tr := Generate(Config{Seed: 2, Flows: 0, Duration: time.Second}, UDPFlood{Victim: victim, Sources: 64})
	srcs := map[uint32]bool{}
	for _, p := range tr.Packets {
		if p.UDP == nil {
			t.Fatal("non-UDP packet in UDP flood")
		}
		srcs[p.IP.Src] = true
	}
	if len(srcs) != 64 {
		t.Errorf("distinct sources = %d, want 64", len(srcs))
	}
}

func TestPortScanDistinctPorts(t *testing.T) {
	tr := Generate(Config{Seed: 2, Flows: 0, Duration: time.Second},
		PortScan{Scanner: 1, Victim: 2, Ports: 300})
	ports := map[uint16]bool{}
	for _, p := range tr.Packets {
		ports[p.TCP.DstPort] = true
	}
	if len(ports) != 300 {
		t.Errorf("distinct ports = %d, want 300", len(ports))
	}
	if !tr.Truth.ScanVictims[2] {
		t.Error("scan victim truth missing")
	}
}

func TestSSHBruteDistinctLengths(t *testing.T) {
	tr := Generate(Config{Seed: 4, Flows: 0, Duration: time.Second}, SSHBrute{Victim: 9, Attempts: 50})
	lens := map[int]bool{}
	for _, p := range tr.Packets {
		if p.TCP.DstPort != 22 {
			t.Fatal("ssh packet not to port 22")
		}
		lens[p.Len()] = true
	}
	if len(lens) != 50 {
		t.Errorf("distinct lengths = %d, want 50", len(lens))
	}
}

func TestSlowlorisManyConnsFewBytes(t *testing.T) {
	tr := Generate(Config{Seed: 4, Flows: 0, Duration: time.Second}, Slowloris{Victim: 9, Conns: 40})
	syns, bytes := 0, 0
	for _, p := range tr.Packets {
		if p.TCP.Flags == packet.FlagSYN {
			syns++
		}
		bytes += p.PayloadLen
	}
	if syns != 40 {
		t.Errorf("connections = %d, want 40", syns)
	}
	if bytes > 40*200 {
		t.Errorf("slowloris carried %d payload bytes; should be tiny", bytes)
	}
}

func TestDNSNoTCPOverlay(t *testing.T) {
	tr := Generate(Config{Seed: 4, Flows: 0, Duration: time.Second}, DNSNoTCP{Hosts: 5, Queries: 3})
	if len(tr.Truth.DNSOnlyHosts) != 5 {
		t.Errorf("hosts in truth = %d", len(tr.Truth.DNSOnlyHosts))
	}
	for _, p := range tr.Packets {
		if p.UDP == nil || p.UDP.SrcPort != 53 {
			t.Fatal("DNS overlay emitted non-DNS packet")
		}
		if p.TCP != nil {
			t.Fatal("DNS-only host got TCP")
		}
	}
}

func TestSuperSpreaderFanout(t *testing.T) {
	tr := Generate(Config{Seed: 4, Flows: 0, Duration: time.Second}, SuperSpreader{Source: 7, Fanout: 123})
	dsts := map[uint32]bool{}
	for _, p := range tr.Packets {
		if p.IP.Src != 7 {
			t.Fatal("wrong source")
		}
		dsts[p.IP.Dst] = true
	}
	if len(dsts) != 123 {
		t.Errorf("fanout = %d, want 123", len(dsts))
	}
}

func TestOverlayStrings(t *testing.T) {
	for _, ov := range []Overlay{
		SYNFlood{Victim: 1, Packets: 2}, UDPFlood{Victim: 1, Sources: 2},
		PortScan{Victim: 1, Ports: 2}, SSHBrute{Victim: 1, Attempts: 2},
		Slowloris{Victim: 1, Conns: 2}, DNSNoTCP{Hosts: 1}, SuperSpreader{Source: 1, Fanout: 2},
	} {
		if ov.String() == "" {
			t.Errorf("%T has empty String()", ov)
		}
	}
}

func TestPcapRoundTrip(t *testing.T) {
	tr := Generate(Config{Seed: 8, Flows: 100, Duration: time.Second},
		SYNFlood{Victim: 3, Packets: 20})
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr.Packets); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	got, skipped, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d packets", skipped)
	}
	if len(got) != len(tr.Packets) {
		t.Fatalf("count: %d vs %d", len(got), len(tr.Packets))
	}
	for i := range got {
		if got[i].Flow() != tr.Packets[i].Flow() {
			t.Fatalf("packet %d flow differs", i)
		}
		if got[i].TS != tr.Packets[i].TS {
			t.Fatalf("packet %d ts %d vs %d", i, got[i].TS, tr.Packets[i].TS)
		}
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, _, err := ReadPcap(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr := Generate(Config{Seed: 1, Flows: 10})
	if len(tr.Packets) == 0 {
		t.Error("zero packets with default duration")
	}
}

func TestGenerateNegativeFlowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative flows should panic")
		}
	}()
	Generate(Config{Seed: 1, Flows: -1})
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: int64(i), Flows: 1000, Duration: time.Second})
	}
}

func TestReadPcapMicrosecondFormat(t *testing.T) {
	// Hand-build a microsecond-resolution pcap (magic 0xA1B2C3D4) and
	// check the timestamps scale to nanoseconds.
	p := &packet.Packet{
		IP:  packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: 1, Dst: 2},
		UDP: &packet.UDP{SrcPort: 53, DstPort: 99},
	}
	raw := p.Serialize()
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xA1B2C3D4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 3)   // 3 s
	binary.LittleEndian.PutUint32(rec[4:8], 500) // 500 µs
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(raw)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(raw)))
	buf.Write(rec)
	buf.Write(raw)

	pkts, skipped, err := ReadPcap(&buf)
	if err != nil || skipped != 0 || len(pkts) != 1 {
		t.Fatalf("ReadPcap: %v %d %d", err, skipped, len(pkts))
	}
	if want := uint64(3*1e9 + 500*1e3); pkts[0].TS != want {
		t.Errorf("TS = %d, want %d", pkts[0].TS, want)
	}
}

func TestReadPcapSkipsUndecodable(t *testing.T) {
	tr := Generate(Config{Seed: 1, Flows: 5, Duration: time.Millisecond})
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr.Packets); err != nil {
		t.Fatal(err)
	}
	// Append a record whose payload is garbage (bad ethertype).
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], 14)
	binary.LittleEndian.PutUint32(rec[12:16], 14)
	buf.Write(rec)
	buf.Write(make([]byte, 14)) // ethertype 0x0000
	pkts, skipped, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(pkts) != len(tr.Packets) {
		t.Errorf("decoded = %d, want %d", len(pkts), len(tr.Packets))
	}
}
