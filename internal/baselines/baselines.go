// Package baselines models the monitoring-message export disciplines of
// the systems the evaluation compares Newton against (Figs. 12 and 13).
// Each model counts the messages its system would send from one switch
// observing a packet stream; the comparison metric is messages divided
// by raw packets, which is a property of each system's published export
// discipline, not of its implementation:
//
//   - TurboFlow exports one flow record per flow per window (plus
//     mid-window evictions when its flow table overflows).
//   - *Flow exports grouped packet vectors: per-packet features batched
//     per flow, a GPV every gpvSize packets of a flow (cache evictions
//     flush short groups, which we model by per-window flushing).
//   - FlowRadar exports its encoded flowset — the whole register
//     structure — every window.
//   - Scream exports its sketch counters every window.
//   - Sonata and Newton export exact query answers: one report per
//     flagged key per window. Sonata's count is taken from the exact
//     reference engine; Newton's from the simulated data plane itself.
package baselines

import (
	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
)

// System identifies a monitoring system in comparisons.
type System int

// The compared systems.
const (
	Newton System = iota
	Sonata
	TurboFlow
	StarFlow
	FlowRadar
	Scream
	NumSystems
)

var systemNames = [NumSystems]string{
	"Newton", "Sonata", "TurboFlow", "*Flow", "FlowRadar", "Scream",
}

// String names the system as the figures do.
func (s System) String() string {
	if s >= 0 && s < NumSystems {
		return systemNames[s]
	}
	return "unknown"
}

// Model parameters, matching the papers' defaults and §6.1's setup.
const (
	// gpvSize is packets per grouped packet vector (*Flow).
	gpvSize = 16
	// turboFlowTable is TurboFlow's flow-table capacity; overflowing
	// flows evict mid-window.
	turboFlowTable = 16384
	// flowRadarCells is the encoded-flowset size the evaluation
	// configures ("FlowRadar whose register array size is 4096").
	flowRadarCells = 4096
	// flowRadarCellBytes is one encoded cell (flow xor, counts).
	flowRadarCellBytes = 18
	// screamSketchBytes is one Count-Min instance's export size.
	screamSketchBytes = 3 * 4096 * 4
	// exportMTU is how many bytes fit one export message.
	exportMTU = 1400
)

// TurboFlowMessages counts flow records exported for the stream.
func TurboFlowMessages(pkts []*packet.Packet, window uint64) int {
	msgs := 0
	cur := uint64(0)
	flows := map[packet.FlowKey]bool{}
	flush := func() {
		msgs += len(flows)
		flows = map[packet.FlowKey]bool{}
	}
	for _, p := range pkts {
		if w := p.TS / window; w != cur {
			flush()
			cur = w
		}
		k := p.Flow()
		if !flows[k] {
			if len(flows) >= turboFlowTable {
				// Table full: evict one record immediately.
				msgs++
			} else {
				flows[k] = true
			}
		}
	}
	flush()
	return msgs
}

// StarFlowMessages counts grouped packet vectors.
func StarFlowMessages(pkts []*packet.Packet, window uint64) int {
	msgs := 0
	cur := uint64(0)
	partial := map[packet.FlowKey]int{}
	flush := func() {
		msgs += len(partial) // short groups flush at window end
		partial = map[packet.FlowKey]int{}
	}
	for _, p := range pkts {
		if w := p.TS / window; w != cur {
			flush()
			cur = w
		}
		k := p.Flow()
		partial[k]++
		if partial[k] == gpvSize {
			msgs++
			delete(partial, k)
		}
	}
	flush()
	return msgs
}

// FlowRadarMessages counts encoded-flowset export messages: the whole
// structure leaves the switch every window.
func FlowRadarMessages(pkts []*packet.Packet, window uint64) int {
	perWindow := (flowRadarCells*flowRadarCellBytes + exportMTU - 1) / exportMTU
	return windows(pkts, window) * perWindow
}

// ScreamMessages counts sketch exports: the allocated sketch leaves the
// switch every window for central analysis.
func ScreamMessages(pkts []*packet.Packet, window uint64) int {
	perWindow := (screamSketchBytes + exportMTU - 1) / exportMTU
	return windows(pkts, window) * perWindow
}

// windows counts how many evaluation windows the stream spans.
func windows(pkts []*packet.Packet, window uint64) int {
	if len(pkts) == 0 {
		return 0
	}
	return int(pkts[len(pkts)-1].TS/window) + 1
}

// SonataMessages counts Sonata's exports for a query: accurate
// exportation, one report per flagged key per window (the exact answer,
// computed by the reference engine — Sonata compiles the same query
// logic into its pipeline).
func SonataMessages(q *query.Query, pkts []*packet.Packet) int {
	e := analyzer.NewEngine(q)
	return len(e.Run(pkts))
}

// Overhead is the comparison metric of Fig. 12: monitoring messages per
// raw packet.
func Overhead(messages, packets int) float64 {
	if packets == 0 {
		return 0
	}
	return float64(messages) / float64(packets)
}
