package analyzer

import (
	"math"
	"reflect"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
)

func report(ts uint64, dip uint64) dataplane.Report {
	r := dataplane.Report{TS: ts, KeyMask: fields.Keep(fields.DstIP)}
	r.Keys.Set(fields.DstIP, dip)
	return r
}

func TestCollectorDedupAndWindows(t *testing.T) {
	c := NewCollector(100, fields.Keep(fields.DstIP))
	c.AddAll([]dataplane.Report{
		report(10, 42),  // window 0
		report(20, 42),  // window 0, duplicate crossing
		report(150, 42), // window 1, same key again
		report(160, 7),  // window 1
		report(320, 42), // window 3 (window 2 silent)
	})
	if c.Raw != 5 {
		t.Fatalf("Raw = %d, want 5 (dedup must not touch the raw count)", c.Raw)
	}
	if ws := c.Windows(); !reflect.DeepEqual(ws, []uint64{0, 1, 3}) {
		t.Fatalf("Windows = %v, want [0 1 3]", ws)
	}
	if got := c.FlaggedIn(0); len(got) != 1 || !got[42] {
		t.Fatalf("FlaggedIn(0) = %v, want {42}", got)
	}
	if got := c.FlaggedIn(1); len(got) != 2 || !got[42] || !got[7] {
		t.Fatalf("FlaggedIn(1) = %v, want {42, 7}", got)
	}
	if got := c.FlaggedIn(2); got != nil {
		t.Fatalf("FlaggedIn(2) = %v, want nil (silent window)", got)
	}
	if got := c.FlaggedKeys(); len(got) != 2 || !got[42] || !got[7] {
		t.Fatalf("FlaggedKeys = %v, want {42, 7}", got)
	}
}

func TestCollectorKeyMasking(t *testing.T) {
	// A /24 prefix mask must collapse keys from the same subnet.
	mask := fields.Mask{}.WithBits(fields.DstIP, fields.Prefix(fields.DstIP, 24))
	c := NewCollector(100, mask)
	c.Add(report(10, 0x0A000001))
	c.Add(report(20, 0x0A0000FF))
	if got := c.FlaggedKeys(); len(got) != 1 {
		t.Fatalf("FlaggedKeys = %v, want one /24-collapsed key", got)
	}
}

func TestCompareAndScores(t *testing.T) {
	detected := map[uint64]bool{1: true, 2: true, 3: true}
	truth := map[uint64]bool{2: true, 3: true, 4: true}
	a := Compare(detected, truth)
	want := Accuracy{TruePositives: 2, FalsePositives: 1, FalseNegatives: 1}
	if a != want {
		t.Fatalf("Compare = %+v, want %+v", a, want)
	}
	if got := a.Recall(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Recall = %v, want 2/3", got)
	}
	if got := a.FPR(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("FPR = %v, want 1/3", got)
	}
	// precision = recall = 2/3 here, so F1 is their common value.
	if got := a.F1(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1 = %v, want 2/3", got)
	}
}

func TestScoresEdgeCases(t *testing.T) {
	// Empty truth, empty detection: vacuous success.
	empty := Compare(nil, nil)
	if r := empty.Recall(); r != 1 {
		t.Fatalf("Recall with no truth = %v, want 1", r)
	}
	if f := empty.FPR(); f != 0 {
		t.Fatalf("FPR with no detections = %v, want 0", f)
	}

	// Nothing detected, truth non-empty: recall 0, F1 0.
	missed := Compare(nil, map[uint64]bool{1: true})
	if r := missed.Recall(); r != 0 {
		t.Fatalf("Recall all-missed = %v, want 0", r)
	}
	if f := missed.F1(); f != 0 {
		t.Fatalf("F1 all-missed = %v, want 0", f)
	}

	// Only false positives: FPR 1, F1 0.
	wrong := Compare(map[uint64]bool{9: true}, nil)
	if f := wrong.FPR(); f != 1 {
		t.Fatalf("FPR all-wrong = %v, want 1", f)
	}
	if f := wrong.F1(); f != 0 {
		t.Fatalf("F1 all-wrong = %v, want 0", f)
	}
}
