package controller

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

func testNet(t *testing.T, switches int) (*netsim.Network, int, int) {
	t.Helper()
	topo, h1, h2 := topology.Linear(switches)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	return net, h1, h2
}

func TestInstallRemoveLifecycle(t *testing.T) {
	net, _, _ := testNet(t, 3)
	c := NewNewton(net, 1)
	dep, delay, err := c.Install(Spec{Query: query.Q1(40)})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if dep.QID != 1 || dep.Rules == 0 || len(dep.Switches) != 3 {
		t.Errorf("deployment = %+v", dep)
	}
	if delay <= 0 || delay > 25*time.Millisecond {
		t.Errorf("install delay = %v, want (0, 25ms]", delay)
	}
	if len(c.Deployments()) != 1 {
		t.Error("deployment not tracked")
	}
	rDelay, err := c.Remove(dep.QID)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if rDelay <= 0 || rDelay > 25*time.Millisecond {
		t.Errorf("remove delay = %v", rDelay)
	}
	if len(c.Deployments()) != 0 {
		t.Error("deployment not released")
	}
	if _, err := c.Remove(dep.QID); err == nil {
		t.Error("double remove accepted")
	}
}

func TestInstallDelaysMatchFig11(t *testing.T) {
	// Fig. 11: every query installs and removes within ~20 ms; Q1 is the
	// cheapest at ~5 ms. 100 repetitions, as the paper does.
	net, _, _ := testNet(t, 3)
	c := NewNewton(net, 7)
	var q1Max time.Duration
	for rep := 0; rep < 100; rep++ {
		for i, q := range query.All() {
			dep, delay, err := c.Install(Spec{Query: q})
			if err != nil {
				t.Fatalf("rep %d Q%d: %v", rep, i+1, err)
			}
			if delay > 25*time.Millisecond {
				t.Errorf("Q%d install took %v", i+1, delay)
			}
			if i == 0 && delay > q1Max {
				q1Max = delay
			}
			if _, err := c.Remove(dep.QID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if q1Max > 8*time.Millisecond {
		t.Errorf("Q1 install delay %v, paper says ~5 ms", q1Max)
	}
}

func TestInstallDoesNotDisturbForwarding(t *testing.T) {
	// DESIGN invariant 6 / Fig. 10: query operations drop zero packets.
	net, h1, h2 := testNet(t, 3)
	c := NewNewton(net, 2)
	tr := trace.Generate(trace.Config{Seed: 5, Flows: 300, Duration: 300 * time.Millisecond})
	third := len(tr.Packets) / 3
	for i, pkt := range tr.Packets {
		switch i {
		case third: // install mid-stream
			if _, _, err := c.Install(Spec{Query: query.Q6(30)}); err != nil {
				t.Fatal(err)
			}
		case 2 * third: // remove mid-stream
			if _, err := c.Remove(1); err != nil {
				t.Fatal(err)
			}
		}
		net.Deliver(pkt, h1, h2)
	}
	delivered, dropped := net.Stats()
	if dropped != 0 {
		t.Fatalf("query operations dropped %d packets", dropped)
	}
	if delivered != uint64(len(tr.Packets)) {
		t.Fatalf("delivered %d of %d", delivered, len(tr.Packets))
	}
}

func TestUpdateSwapsQueries(t *testing.T) {
	net, _, _ := testNet(t, 2)
	c := NewNewton(net, 3)
	dep, _, err := c.Install(Spec{Query: query.Q5(40)})
	if err != nil {
		t.Fatal(err)
	}
	// Drill-down: replace the broad UDP query with a port-scan query.
	dep2, delay, err := c.Update(dep.QID, Spec{Query: query.Q4(40)})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if delay <= 0 || delay > 50*time.Millisecond {
		t.Errorf("update delay = %v", delay)
	}
	if len(c.Deployments()) != 1 {
		t.Errorf("deployments after update = %d", len(c.Deployments()))
	}
	if c.Deployments()[dep2.QID].Query.Name != "q4_port_scan" {
		t.Error("update did not swap the query")
	}
	if _, _, err := c.Update(999, Spec{Query: query.Q1(1)}); err == nil {
		t.Error("update of unknown deployment accepted")
	}
}

func TestShardMode(t *testing.T) {
	net, h1, h2 := testNet(t, 3)
	c := NewNewton(net, 4)
	if _, _, err := c.Install(Spec{Query: query.Q1(40), Mode: Shard, Width: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Seed: 6, Flows: 0, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A000001, Packets: 100},
		trace.SYNFlood{Victim: 0x0A000002, Packets: 100})
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}
	if got := len(net.DrainReports()); got != 2 {
		t.Fatalf("sharded deployment: %d reports, want 2 (once per victim)", got)
	}
}

func TestPartitionMode(t *testing.T) {
	topo := topology.FatTree(4)
	net, err := netsim.New(topo, netsim.Config{Stages: 12, ArraySize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	c := NewNewton(net, 5)
	dep, _, err := c.Install(Spec{
		Query: query.Q4(40), Mode: Partition,
		StagesPerSwitch: 6,
	})
	if err != nil {
		t.Fatalf("partition install: %v", err)
	}
	if dep.Parts < 2 {
		t.Fatalf("parts = %d, want >= 2", dep.Parts)
	}
	if len(dep.Placement) == 0 {
		t.Fatal("no placement recorded")
	}
	// Rule multiplexing: every switch holds each partition at most once.
	for sw, parts := range dep.Placement {
		seen := map[int]bool{}
		for _, p := range parts {
			if seen[p] {
				t.Fatalf("switch %d hosts partition %d twice", sw, p)
			}
			seen[p] = true
		}
	}
	if _, err := c.Remove(dep.QID); err != nil {
		t.Fatalf("partition remove: %v", err)
	}
	if total := totalEntries(net); total != baselineEntries(net) {
		t.Errorf("rules leaked after partition remove")
	}
}

func totalEntries(net *netsim.Network) int {
	n := 0
	for _, node := range net.Nodes() {
		n += node.Layout.TotalRuleEntries()
	}
	return n
}

func baselineEntries(net *netsim.Network) int { return 0 }

func TestPartitionModeNeedsStages(t *testing.T) {
	net, _, _ := testNet(t, 2)
	c := NewNewton(net, 6)
	if _, _, err := c.Install(Spec{Query: query.Q4(40), Mode: Partition}); err == nil {
		t.Error("partition mode without StagesPerSwitch accepted")
	}
}

func TestInstallErrors(t *testing.T) {
	net, _, _ := testNet(t, 2)
	c := NewNewton(net, 7)
	if _, _, err := c.Install(Spec{}); err == nil {
		t.Error("nil query accepted")
	}
	if _, _, err := c.Install(Spec{Query: query.Q1(1), Switches: []int{999}}); err == nil {
		t.Error("unknown switch accepted")
	}
	if _, _, err := c.Install(Spec{Query: query.Q1(1), Mode: Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestConcurrentQueriesCoexist(t *testing.T) {
	net, h1, h2 := testNet(t, 1)
	c := NewNewton(net, 8)
	for _, q := range query.All() {
		if _, _, err := c.Install(Spec{Query: q, Width: 1 << 10}); err != nil {
			t.Fatalf("installing %s: %v", q.Name, err)
		}
	}
	if len(c.Deployments()) != 9 {
		t.Fatalf("deployments = %d", len(c.Deployments()))
	}
	tr := trace.Generate(trace.Config{Seed: 11, Flows: 100, Duration: 90 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A000001, Packets: 200},
		trace.PortScan{Scanner: 5, Victim: 0x0A000002, Ports: 100})
	for _, pkt := range tr.Packets {
		net.Deliver(pkt, h1, h2)
	}
	qids := map[int]bool{}
	for _, r := range net.DrainReports() {
		qids[r.QueryID] = true
	}
	if len(qids) < 2 {
		t.Errorf("only %d queries reported; concurrent queries not multiplexing", len(qids))
	}
}

func TestSonataOutageModel(t *testing.T) {
	net, h1, h2 := testNet(t, 1)
	s := NewSonata(net, 1)

	// Outage grows linearly with forwarding entries: ~7.5 s base, ~30 s
	// at 60 K entries (Fig. 10).
	base := s.UpdateQueries(net.Topo.Switches()[0], 0)
	if base < 7*time.Second || base > 8*time.Second {
		t.Errorf("base outage = %v, want ~7.5 s", base)
	}
	at60k := s.UpdateQueries(net.Topo.Switches()[0], 60000)
	if at60k < 27*time.Second || at60k > 33*time.Second {
		t.Errorf("60K-entry outage = %v, want ~30 s", at60k)
	}
	if at60k <= base {
		t.Error("outage not increasing with entries")
	}

	// And it actually interrupts traffic.
	net2, h1, h2 := testNet(t, 1)
	s2 := NewSonata(net2, 2)
	mk := func(ts uint64) *packet.Packet {
		return &packet.Packet{TS: ts, IP: packet.IPv4{Proto: packet.ProtoUDP, Src: 1, Dst: 2}, UDP: &packet.UDP{}}
	}
	net2.AdvanceTo(uint64(time.Second))
	out := s2.UpdateQueries(net2.Topo.Switches()[0], 10000)
	if _, ok := net2.Deliver(mk(uint64(time.Second)+uint64(out)/2), h1, h2); ok {
		t.Error("packet delivered during Sonata reboot")
	}
	if _, ok := net2.Deliver(mk(uint64(time.Second)+uint64(out)+1), h1, h2); !ok {
		t.Error("packet dropped after reboot completed")
	}
	_ = h1
	_ = h2
}

func TestModeStrings(t *testing.T) {
	if Replicate.String() != "replicate" || Shard.String() != "shard" || Partition.String() != "partition" {
		t.Error("mode names wrong")
	}
}

// TestShardModeRequiresCommonPath documents Shard mode's constraint:
// the shard set must lie on the monitored traffic's forwarding path.
// Sharding Q1 across ALL switches of a fat-tree loses the keys whose
// owner switch is off-path; sharding across the actual path switches
// catches every victim. (The paper's CQE testbed is a line for exactly
// this reason; multipath deployments use Partition mode instead.)
func TestShardModeRequiresCommonPath(t *testing.T) {
	topo := topology.FatTree(4)
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]

	victims := make([]uint32, 12)
	overlays := make([]trace.Overlay, len(victims))
	for i := range victims {
		victims[i] = 0x0A0000A0 + uint32(i)
		overlays[i] = trace.SYNFlood{Victim: victims[i], Packets: 100}
	}

	run := func(targets []int) int {
		net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		c := NewNewton(net, 3)
		if _, _, err := c.Install(Spec{
			Query: query.Q1(40), Mode: Shard, Width: 1 << 12, Switches: targets,
		}); err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(trace.Config{Seed: 8, Flows: 0, Duration: 90 * time.Millisecond}, overlays...)
		var path []int
		for _, pkt := range tr.Packets {
			p, ok := net.Deliver(pkt, src, dst)
			if ok {
				path = p
			}
		}
		_ = path
		caught := map[uint64]bool{}
		for _, r := range net.DrainReports() {
			caught[r.Keys.Get(fields.DstIP)] = true
		}
		n := 0
		for _, v := range victims {
			if caught[uint64(v)] {
				n++
			}
		}
		return n
	}

	// Shard across the switches the traffic actually crosses: all
	// victims detected. (All flood packets share src/dst hosts; ECMP
	// varies per flow, so take one flow's path as the target set and
	// accept that a few other flows stray off it — the point is the
	// contrast below.)
	pkt0 := trace.Generate(trace.Config{Seed: 8, Flows: 0, Duration: 90 * time.Millisecond}, overlays[0]).Packets[0]
	netProbe, _ := netsim.New(topo, netsim.Config{Stages: 12})
	onPath, _ := netProbe.Deliver(pkt0, src, dst)
	onPathCaught := run(onPath)

	// Shard across every switch of the fat-tree: most owners are
	// off-path and their keys are lost.
	allCaught := run(topo.Switches())

	if allCaught >= onPathCaught {
		t.Errorf("sharding across all switches caught %d/%d but on-path sharding caught %d — constraint not visible",
			allCaught, len(victims), onPathCaught)
	}
	if onPathCaught < len(victims)/2 {
		t.Errorf("on-path sharding caught only %d/%d victims", onPathCaught, len(victims))
	}
}
