package netsim

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// workersNet builds a single-switch network with the given lane count
// (and bank mode) and Q1 installed.
func workersNet(t *testing.T, workers int, private bool, threshold uint64) (*Network, int, int) {
	t.Helper()
	topo, h1, h2 := topology.Linear(1)
	net, err := New(topo, Config{Stages: 12, ArraySize: 1 << 16, Workers: workers, PrivateBanks: private})
	if err != nil {
		t.Fatal(err)
	}
	o := compiler.AllOpts()
	o.QID = 1
	o.Width = 1 << 14
	installOn(t, net, query.Q1(threshold), o, net.Topo.Switches())
	return net, h1, h2
}

func scalingTrace() *trace.Trace {
	return trace.Generate(trace.Config{Seed: 11, Flows: 300, Duration: 250 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A000001, Packets: 200},
		trace.SYNFlood{Victim: 0x0A000002, Packets: 200})
}

// TestLaneHashShardsBothDirectionsTogether asserts the delivery shard
// hash is symmetric: a flow and its reverse land on the same lane, so
// bidirectional conversations keep per-flow order under any worker
// count.
func TestLaneHashShardsBothDirectionsTogether(t *testing.T) {
	k := packet.FlowKey{Src: 0x0A000001, Dst: 0x0B000002, SPort: 1234, DPort: 80, Proto: packet.ProtoTCP}
	if k.LaneHash() != k.Reverse().LaneHash() {
		t.Fatalf("LaneHash not symmetric: %x vs %x", k.LaneHash(), k.Reverse().LaneHash())
	}
	// Distinct flows should spread: over many flows, every lane of 4 gets
	// a reasonable share.
	var lanes [4]int
	for i := 0; i < 4096; i++ {
		k := packet.FlowKey{Src: uint32(i), Dst: 0x0B000002, SPort: uint16(i), DPort: 80, Proto: packet.ProtoTCP}
		lanes[k.LaneHash()%4]++
	}
	for w, n := range lanes {
		if n < 4096/8 {
			t.Fatalf("lane %d got %d of 4096 flows — hash badly skewed: %v", w, n, lanes)
		}
	}
}

// TestDeliverBatchWorkersMatchSequential is the netsim-level equivalence
// guard: the same trace through 1-lane and 4-lane batch delivery must
// agree on delivered/dropped counts, report volume, and the merged
// state-bank contents, slot for slot.
func TestDeliverBatchWorkersMatchSequential(t *testing.T) {
	tr := scalingTrace()

	type outcome struct {
		delivered, dropped uint64
		reports            int
		banks              []uint32
	}
	run := func(workers int, private bool) outcome {
		net, h1, h2 := workersNet(t, workers, private, 40)
		net.DeliverBatch(tr.Packets, h1, h2)
		d, dr := net.Stats()
		reports := net.DrainReports()
		var banks []uint32
		for _, b := range net.Node(net.Topo.Switches()[0]).Eng.SnapshotBanks() {
			banks = append(banks, b.Values...)
		}
		return outcome{delivered: d, dropped: dr, reports: len(reports), banks: banks}
	}

	seq := run(1, false)
	for _, cfg := range []struct {
		workers int
		private bool
	}{{4, false}, {4, true}} {
		par := run(cfg.workers, cfg.private)
		if par.delivered != seq.delivered || par.dropped != seq.dropped {
			t.Fatalf("workers=%d private=%v: stats %d/%d, sequential %d/%d",
				cfg.workers, cfg.private, par.delivered, par.dropped, seq.delivered, seq.dropped)
		}
		// Mid-window threshold reports are exact under shared (CAS) banks
		// at any worker count. Under BankPrivate a sharded row's mid-window
		// reads are lane-local by design — only the merged epoch snapshot
		// is exact — so report volume is not compared there.
		if !cfg.private && par.reports != seq.reports {
			t.Fatalf("workers=%d private=%v: %d reports, sequential %d",
				cfg.workers, cfg.private, par.reports, seq.reports)
		}
		if len(par.banks) != len(seq.banks) {
			t.Fatalf("workers=%d private=%v: bank size %d, sequential %d",
				cfg.workers, cfg.private, len(par.banks), len(seq.banks))
		}
		for i := range seq.banks {
			if par.banks[i] != seq.banks[i] {
				t.Fatalf("workers=%d private=%v: bank slot %d = %d, sequential %d",
					cfg.workers, cfg.private, i, par.banks[i], seq.banks[i])
			}
		}
	}
}

// TestDeliverBatchEpochBarrier asserts window boundaries inside a batch
// roll the epochs exactly as sequential delivery does: a batch spanning
// two windows leaves the second window's counts in the banks (the first
// window's merged-and-rolled state reads as zero).
func TestDeliverBatchEpochBarrier(t *testing.T) {
	for _, private := range []bool{false, true} {
		net, h1, h2 := workersNet(t, 4, private, 1<<30)
		// 100 packets of one flow in window 0, 30 in window 1.
		var pkts []*packet.Packet
		mk := func(ts uint64) *packet.Packet {
			return &packet.Packet{TS: ts, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 1, Dst: 2},
				TCP: &packet.TCP{SrcPort: 9, DstPort: 80, Flags: packet.FlagSYN}}
		}
		for i := 0; i < 100; i++ {
			pkts = append(pkts, mk(uint64(i)))
		}
		w1 := uint64(100 * time.Millisecond)
		for i := 0; i < 30; i++ {
			pkts = append(pkts, mk(w1+uint64(i)))
		}
		net.DeliverBatch(pkts, h1, h2)
		var max uint32
		for _, b := range net.Node(net.Topo.Switches()[0]).Eng.SnapshotBanks() {
			for _, v := range b.Values {
				if v > max {
					max = v
				}
			}
		}
		if max != 30 {
			t.Fatalf("private=%v: max bank count after cross-window batch = %d, want 30 (second window only)", private, max)
		}
	}
}

// TestDeliverBatchZeroAllocSteadyState pins the batch path's allocation
// behavior: once lanes, caches, pools, and report buffers are warm, a
// whole-trace DeliverBatch plus drain allocates nothing, at 1 and at 4
// workers.
func TestDeliverBatchZeroAllocSteadyState(t *testing.T) {
	for _, workers := range []int{1, 4} {
		net, h1, h2 := workersNet(t, workers, false, 1<<30)
		tr := scalingTrace()
		var reports []dataplane.Report
		for p := 0; p < 2; p++ { // warm: epochs, caches, buffer sizes
			net.DeliverBatch(tr.Packets, h1, h2)
			reports = net.DrainReportsAppend(reports[:0])
		}
		if avg := testing.AllocsPerRun(3, func() {
			net.DeliverBatch(tr.Packets, h1, h2)
			reports = net.DrainReportsAppend(reports[:0])
		}); avg != 0 {
			t.Fatalf("workers=%d: steady-state batch allocs = %v, want 0", workers, avg)
		}
	}
}

// TestConfigWorkerDefaults pins the worker-count resolution: zero uses
// the package default, negatives clamp to one, and the pool cap bounds
// pathological settings.
func TestConfigWorkerDefaults(t *testing.T) {
	if got := (Config{}).withDefaults().Workers; got != DefaultWorkers() {
		t.Fatalf("zero workers resolved to %d, want DefaultWorkers %d", got, DefaultWorkers())
	}
	SetDefaultWorkers(3)
	if got := (Config{}).withDefaults().Workers; got != 3 {
		t.Fatalf("SetDefaultWorkers(3) ignored: %d", got)
	}
	SetDefaultWorkers(0)
	if got := (Config{Workers: -5}).withDefaults().Workers; got != 1 {
		t.Fatalf("negative workers resolved to %d, want 1", got)
	}
	if got := (Config{Workers: 10_000}).withDefaults().Workers; got != maxPoolWorkers {
		t.Fatalf("oversized workers resolved to %d, want cap %d", got, maxPoolWorkers)
	}
}
