package version

import (
	"strings"
	"testing"

	"github.com/newton-net/newton/internal/obs"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.Version == "" {
		t.Fatal("Version is empty")
	}
	if i.GoVersion == "" || !strings.HasPrefix(i.GoVersion, "go") {
		t.Fatalf("GoVersion = %q, want a go toolchain version", i.GoVersion)
	}
	if Get() != i {
		t.Fatal("Get is not memoized/stable")
	}
}

func TestString(t *testing.T) {
	s := String("newton-test")
	if !strings.HasPrefix(s, "newton-test ") {
		t.Fatalf("String = %q, want component prefix", s)
	}
	if !strings.Contains(s, Get().GoVersion) {
		t.Fatalf("String = %q, want go version included", s)
	}
}

func TestRegisterObs(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterObs(reg, "newton-test")
	snap := reg.Snapshot()
	s := snap.Find("newton_build_info", obs.L("component", "newton-test"))
	if s == nil {
		t.Fatal("newton_build_info series missing")
	}
	if s.Value != 1 {
		t.Fatalf("info gauge = %v, want 1", s.Value)
	}
	for _, k := range []string{"version", "revision", "goversion"} {
		if s.Labels[k] == "" {
			t.Fatalf("info gauge missing label %q: %v", k, s.Labels)
		}
	}
}
