package experiments

import (
	"testing"
	"time"
)

// TestBinaryDeltaBeatsJSONFiveFold is the PR's wire-efficiency gate:
// on the ExportOverhead workload the binary+delta codec must spend at
// least 5x fewer bytes per epoch than the JSON push, and the
// delta-free binary codec must also beat JSON outright. CI runs this
// as the wire-codec bench smoke.
func TestBinaryDeltaBeatsJSONFiveFold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	r := ExportOverhead(3, 500*time.Millisecond)
	rows := map[string]ExportRow{}
	for _, row := range r.Rows {
		rows[row.Mode] = row
	}
	jsonPush, ok := rows["json-push"]
	if !ok || jsonPush.PerEpoch == 0 {
		t.Fatalf("json-push row missing or empty: %+v", r.Rows)
	}
	binary := rows["binary-push"]
	delta := rows["binary+delta"]

	if binary.Bytes >= jsonPush.Bytes {
		t.Errorf("binary-push spent %d wire bytes vs JSON's %d; the binary codec must beat JSON",
			binary.Bytes, jsonPush.Bytes)
	}
	if ratio := jsonPush.PerEpoch / delta.PerEpoch; ratio < 5 {
		t.Errorf("binary+delta bytes/epoch = %.0f vs JSON's %.0f (%.1fx); gate requires >= 5x",
			delta.PerEpoch, jsonPush.PerEpoch, ratio)
	}
	// Registers reset every epoch, so this workload has little temporal
	// redundancy for deltas to mine; the encoder's per-bank fallback to
	// sparse-full caps the delta mode's cost at the per-frame base-epoch
	// varint. Allow that sliver, nothing more.
	if float64(delta.Bytes) > float64(binary.Bytes)*1.02 {
		t.Errorf("delta encoding spent more than full snapshots: %d vs %d bytes",
			delta.Bytes, binary.Bytes)
	}
}
