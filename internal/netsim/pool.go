package netsim

import (
	"sync"
)

// The batch worker pool is process-wide: a fixed set of persistent
// goroutines executes the per-lane delivery closures of every Network.
// Sharing one pool (instead of per-Network goroutines) means worker
// startup is paid once per process, segments dispatch with two channel
// operations per lane and zero allocations, and transient Networks —
// experiments build hundreds — never leak parked goroutines: pool
// workers reference only the job channel, not any Network.
//
// Correctness needs no lane→goroutine affinity: within one do() call
// the lanes are distinct (each job owns different lane state), and the
// job-channel handoff plus the WaitGroup barrier give the happens-
// before edges between a lane's consecutive segments, so lane state is
// single-writer even when different pool goroutines run it over time.

// laneJob asks a pool worker to run f(lane) and signal wg.
type laneJob struct {
	f    func(lane int)
	lane int
	wg   *sync.WaitGroup
}

// maxPoolWorkers bounds the pool; far above any sane -workers setting,
// it only guards against pathological configs.
const maxPoolWorkers = 64

var (
	poolJobs    = make(chan laneJob, maxPoolWorkers)
	poolMu      sync.Mutex
	poolSpawned int
)

// poolDo runs f(0) .. f(lanes-1) concurrently on the shared pool and
// returns when all have finished. wg is caller-owned (and reused) so
// the steady-state call allocates nothing.
func poolDo(lanes int, wg *sync.WaitGroup, f func(lane int)) {
	if lanes > maxPoolWorkers {
		lanes = maxPoolWorkers
	}
	poolMu.Lock()
	for poolSpawned < lanes {
		go poolWorker()
		poolSpawned++
	}
	poolMu.Unlock()
	wg.Add(lanes)
	for w := 0; w < lanes; w++ {
		poolJobs <- laneJob{f: f, lane: w, wg: wg}
	}
	wg.Wait()
}

func poolWorker() {
	for j := range poolJobs {
		j.f(j.lane)
		j.wg.Done()
	}
}
