package experiments

import (
	"fmt"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/placement"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
)

// Fig17aRow is one point of Fig. 17(a): Q4 deployed with a given number
// of required switches (partitions) on the 8-ary fat-tree and on the ISP
// backbone.
type Fig17aRow struct {
	StagesPerSwitch  int
	RequiredSwitches int

	FatTreeTotal int
	FatTreeAvg   float64
	ISPTotal     int
	ISPAvg       float64
}

// Fig17bRow is one point of Fig. 17(b): table entries vs. fat-tree
// scale at a fixed partitioning.
type Fig17bRow struct {
	Arity    int
	Switches int
	Total    int
	Avg      float64
}

// Fig17Result is the network-wide placement evaluation.
type Fig17Result struct {
	QueryStages int
	QueryRules  int
	A           []Fig17aRow
	B           []Fig17bRow
}

// Fig17Placement reproduces both panels. The paper assumes switches with
// 10, 5, 4, 3, 2 Newton stages, so Q4 needs 1–5 switches.
func Fig17Placement() *Fig17Result {
	q := query.Q4(40)
	o := compiler.AllOpts()
	o.QID = 1
	logical, err := compiler.Compile(q, o)
	if err != nil {
		panic(err)
	}
	res := &Fig17Result{
		QueryStages: logical.NumStages(),
		QueryRules:  logical.RuleCount(),
	}

	// partitionRules computes each partition's rule count for a given
	// per-switch stage budget.
	partitionRules := func(stagesPer int) []int {
		parts, err := modules.SliceProgram(logical, stagesPer)
		if err != nil {
			panic(err)
		}
		rules := make([]int, len(parts))
		for i, p := range parts {
			rules[i] = p.RuleCount()
		}
		return rules
	}

	ft := topology.FatTree(8)
	isp := topology.ISPBackbone()
	// Fat-tree: monitor traffic entering the ToR switches; ISP: traffic
	// emitted from California (§6.5).
	ftEdges := ft.EdgeSwitches()
	ispEdges := []int{
		isp.NodeByName("SanFrancisco"), isp.NodeByName("Sacramento"),
		isp.NodeByName("LosAngeles"), isp.NodeByName("SanDiego"),
	}

	total := res.QueryStages
	for _, stagesPer := range partitionBudgets(total) {
		rules := partitionRules(stagesPer)
		m := len(rules)
		ftP, _, err := placement.Place(ft, ftEdges, total, stagesPer)
		if err != nil {
			panic(err)
		}
		ispP, _, err := placement.Place(isp, ispEdges, total, stagesPer)
		if err != nil {
			panic(err)
		}
		ftTotal, ftAvg := ftP.Entries(rules)
		ispTotal, ispAvg := ispP.Entries(rules)
		res.A = append(res.A, Fig17aRow{
			StagesPerSwitch: stagesPer, RequiredSwitches: m,
			FatTreeTotal: ftTotal, FatTreeAvg: ftAvg,
			ISPTotal: ispTotal, ISPAvg: ispAvg,
		})
	}

	// Panel (b): scale the fat-tree at a mid partitioning (2 switches).
	stagesPer := (total + 1) / 2
	rules := partitionRules(stagesPer)
	for _, k := range []int{4, 8, 12, 16, 20, 24} {
		topo := topology.FatTree(k)
		p, _, err := placement.Place(topo, topo.EdgeSwitches(), total, stagesPer)
		if err != nil {
			panic(err)
		}
		tot, avg := p.Entries(rules)
		res.B = append(res.B, Fig17bRow{
			Arity: k, Switches: len(topo.Switches()), Total: tot, Avg: avg,
		})
	}
	return res
}

// partitionBudgets mirrors the paper's per-switch stage budgets (10, 5,
// 4, 3, 2 stages → 1..5 required switches), adapted to the compiled
// query's actual stage count.
func partitionBudgets(totalStages int) []int {
	var out []int
	seen := map[int]bool{}
	for m := 1; m <= 5; m++ {
		b := (totalStages + m - 1) / m
		if !seen[b] {
			out = append(out, b)
			seen[b] = true
		}
	}
	return out
}

// String renders both panels.
func (r *Fig17Result) String() string {
	ta := &table{header: []string{"Stages/switch", "Req. switches",
		"FatTree total", "FatTree avg", "ISP total", "ISP avg"}}
	for _, row := range r.A {
		ta.add(i2s(row.StagesPerSwitch), i2s(row.RequiredSwitches),
			i2s(row.FatTreeTotal), f2(row.FatTreeAvg),
			i2s(row.ISPTotal), f2(row.ISPAvg))
	}
	tb := &table{header: []string{"Fat-tree k", "Switches", "Total entries", "Avg entries"}}
	for _, row := range r.B {
		tb.add(i2s(row.Arity), i2s(row.Switches), i2s(row.Total), f2(row.Avg))
	}
	return fmt.Sprintf("Fig. 17: network-wide placement of Q4 (%d stages, %d rules)\n(a) entries vs required switches\n%s\n(b) entries vs fat-tree scale\n%s",
		r.QueryStages, r.QueryRules, ta.String(), tb.String())
}
