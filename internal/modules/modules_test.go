package modules

import (
	"strings"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/sketch"
)

func compactLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(LayoutCompact, 8, 4096)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	return l
}

func TestLayoutGeometry(t *testing.T) {
	l := compactLayout(t)
	if l.Stages() != 8 {
		t.Fatalf("Stages = %d", l.Stages())
	}
	for st := 1; st <= 8; st++ {
		for u := 0; u < 2; u++ {
			for k := Kind(0); k < NumKinds; k++ {
				if l.ModuleTable(st, u, k) == nil {
					t.Fatalf("compact layout missing %v at stage %d suite %d", k, st, u)
				}
			}
			if l.ArrayAt(st, u) == nil {
				t.Fatalf("missing state bank at stage %d suite %d", st, u)
			}
		}
	}
	if l.ModuleTable(0, 0, ModK) != nil || l.ModuleTable(9, 0, ModK) != nil || l.ModuleTable(1, 2, ModK) != nil {
		t.Error("out-of-range lookups should be nil")
	}
}

func TestNaiveLayoutOneModulePerStage(t *testing.T) {
	l, err := NewLayout(LayoutNaive, 8, 1024)
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	// Stage 1 hosts K only, stage 2 H only, stage 3 S only, stage 4 R only.
	wantKinds := []Kind{ModK, ModH, ModS, ModR}
	for st := 1; st <= 8; st++ {
		for k := Kind(0); k < NumKinds; k++ {
			got := l.ModuleTable(st, 0, k)
			if (k == wantKinds[(st-1)%4]) != (got != nil) {
				t.Errorf("naive stage %d kind %v presence wrong", st, k)
			}
		}
	}
}

func TestCompactStageUtilizationIs4xNaive(t *testing.T) {
	// The Table 3 per-stage comparison: the compact layout packs one
	// full suite per metadata set into each stage; naive spreads a suite
	// over 4 stages, so its average per-stage use is a quarter of one
	// suite's.
	suite := SuiteResources()
	base := SwitchP4Usage()
	compact := suite.Utilization(base)
	naive := suite.Scale(0.25).Utilization(base)
	for k := dataplane.ResourceKind(0); k < dataplane.NumResourceKinds; k++ {
		if suite[k] == 0 {
			continue
		}
		if compact[k] != naive[k]*4 {
			t.Errorf("%v: compact %.4f != 4x naive %.4f", k, compact[k], naive[k])
		}
	}
	// Spot-check the calibration against Table 3's published values.
	if got := compact[dataplane.Crossbar]; got < 0.045 || got > 0.050 {
		t.Errorf("compact crossbar utilization %.4f, Table 3 says ~4.756%%", got)
	}
	if got := compact[dataplane.VLIW]; got < 0.16 || got > 0.18 {
		t.Errorf("compact VLIW utilization %.4f, Table 3 says ~16.90%%", got)
	}
}

func TestRegisterAllocator(t *testing.T) {
	l := compactLayout(t)
	o1, err := l.AllocRegisters(1, 0, 1024)
	if err != nil || o1 != 0 {
		t.Fatalf("first alloc: %d, %v", o1, err)
	}
	o2, _ := l.AllocRegisters(1, 0, 1024)
	if o2 != 1024 {
		t.Fatalf("second alloc: %d", o2)
	}
	l.FreeRegisters(1, 0, o1, 1024)
	o3, _ := l.AllocRegisters(1, 0, 1024)
	if o3 != o1 {
		t.Errorf("freed block not reused: %d", o3)
	}
	// Exhaustion.
	if _, err := l.AllocRegisters(1, 0, 4096); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := l.AllocRegisters(99, 0, 16); err == nil {
		t.Error("bad stage accepted")
	}
}

// buildCountProgram hand-assembles the Q1-style chain:
// count SYNs per dip, report when the count crosses th.
func buildCountProgram(qid int, th int64, width uint32) *Program {
	dip := fields.Keep(fields.DstIP)
	init := InitMatch{}
	init.Values[2] = packet.ProtoTCP
	init.Masks[2] = 0xFF
	init.Values[5] = packet.FlagSYN
	init.Masks[5] = 0xFF
	return &Program{
		QID: qid, Name: "count_syn",
		Branches: []*BranchProgram{{
			Init: init,
			Ops: []*Op{
				{Kind: ModK, Set: 0, Stage: 1, K: &KConfig{Mask: dip}},
				{Kind: ModH, Set: 0, Stage: 2, H: &HConfig{Algo: sketch.CRC32IEEE, Seed: 1, Range: width, Direct: NoField}},
				{Kind: ModS, Set: 0, Stage: 3, S: &SConfig{ALU: dataplane.OpAdd, Operand: OperandConst, Const: 1, WidthHint: width, Row0: true}},
				{Kind: ModR, Set: 0, Stage: 4, R: &RConfig{Entries: []REntry{
					{Lo: -1 << 62, Hi: 1 << 62, Actions: []RAct{{Kind: RActSetGlobal}}},
				}}},
				{Kind: ModR, Set: 0, Stage: 5, R: &RConfig{OnGlobal: true, Entries: []REntry{
					{Lo: th + 1, Hi: th + 1, Actions: []RAct{{Kind: RActReport}}},
					{Lo: th + 2, Hi: 1 << 62},
				}}},
			},
		}},
	}
}

func synTo(dst uint32) *packet.Packet {
	return &packet.Packet{
		TS:  1,
		IP:  packet.IPv4{Proto: packet.ProtoTCP, TTL: 64, Src: 9, Dst: dst},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
	}
}

func TestEngineEndToEndCount(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	p := buildCountProgram(1, 3, 1024)
	if err := eng.Install(p); err != nil {
		t.Fatalf("Install: %v", err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	for i := 0; i < 10; i++ {
		sw.Process(synTo(42))
	}
	reports := sw.DrainReports()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want exactly 1 (report-once at crossing)", len(reports))
	}
	r := reports[0]
	if r.Keys.Get(fields.DstIP) != 42 {
		t.Errorf("report keys = %v", r.Keys.String())
	}
	if r.Global != 4 {
		t.Errorf("report global = %d, want 4 (threshold+1)", r.Global)
	}
	if r.QueryID != 1 {
		t.Errorf("report qid = %d", r.QueryID)
	}
}

func TestEngineInitClassification(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.Install(buildCountProgram(1, 0, 1024))
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	// A UDP packet must not enter the SYN-counting chain.
	sw.Process(&packet.Packet{IP: packet.IPv4{Proto: packet.ProtoUDP, Src: 9, Dst: 42}, UDP: &packet.UDP{SrcPort: 1, DstPort: 2}})
	// An ACK must not either.
	pkt := synTo(42)
	pkt.TCP.Flags = packet.FlagACK
	sw.Process(pkt)
	if n := sw.PendingReports(); n != 0 {
		t.Fatalf("%d reports from non-matching traffic", n)
	}
	// The first matching SYN crosses threshold 0.
	sw.Process(synTo(42))
	if n := sw.PendingReports(); n != 1 {
		t.Fatalf("matching SYN produced %d reports", n)
	}
}

func TestEngineWindowEpochReset(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	eng.Install(buildCountProgram(1, 5, 1024))
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng

	for i := 0; i < 4; i++ {
		sw.Process(synTo(7))
	}
	l.Pipeline().NextEpoch() // window boundary
	for i := 0; i < 4; i++ {
		sw.Process(synTo(7))
	}
	if n := sw.PendingReports(); n != 0 {
		t.Fatalf("count leaked across window: %d reports", n)
	}
}

func TestEngineInstallRemoveRoundTrip(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	p := buildCountProgram(1, 3, 1024)
	base := l.TotalRuleEntries()
	if err := eng.Install(p); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if got := l.TotalRuleEntries(); got != base+p.RuleCount()+1 { // +1 newton_fin
		t.Errorf("entries after install = %d, want %d", got, base+p.RuleCount()+1)
	}
	if eng.Installed(1) == nil || eng.InstalledCount() != 1 {
		t.Error("program not tracked")
	}
	if err := eng.Install(p); err == nil {
		t.Error("duplicate install accepted")
	}
	if err := eng.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := l.TotalRuleEntries(); got != base {
		t.Errorf("entries after remove = %d, want %d (clean removal)", got, base)
	}
	if err := eng.Remove(1); err == nil {
		t.Error("double remove accepted")
	}
	// Reinstall must succeed and reuse the freed registers.
	if err := eng.Install(p); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
}

func TestEngineInstallRollsBackOnFailure(t *testing.T) {
	l := compactLayout(t)
	eng := NewEngine(l)
	p := buildCountProgram(1, 3, 1024)
	// Sabotage: an op at a stage the layout does not have.
	p.Branches[0].Ops[4].Stage = 99
	base := l.TotalRuleEntries()
	if err := eng.Install(p); err == nil {
		t.Fatal("install with bad stage accepted")
	}
	if got := l.TotalRuleEntries(); got != base {
		t.Errorf("failed install leaked %d entries", got-base)
	}
	if eng.InstalledCount() != 0 {
		t.Error("failed install tracked")
	}
}

func TestEngineShardedOwnership(t *testing.T) {
	// Two shards: each key's state lives on exactly one of them, so the
	// two switches together report every key exactly once.
	var reports [2][]dataplane.Report
	for shard := 0; shard < 2; shard++ {
		l := compactLayout(t)
		eng := NewEngine(l)
		p := buildCountProgram(1, 0, 1024)
		s := p.Branches[0].Ops[2].S
		s.OwnerIndex, s.OwnerCount = uint32(shard), 2
		if err := eng.Install(p); err != nil {
			t.Fatalf("Install: %v", err)
		}
		sw := dataplane.NewSwitch("s", 8, StageCapacity())
		sw.AddRoute(0, 0, 1)
		sw.Monitor = eng
		for dst := uint32(0); dst < 64; dst++ {
			sw.Process(synTo(dst))
		}
		reports[shard] = sw.DrainReports()
	}
	// Every key is owned by exactly one shard, so no key reports twice.
	// A couple of keys may collide inside the 1024-cell sketch (the
	// second key of a colliding pair reads an inflated first count and
	// skips the exact report-once crossing) — inherent sketch behavior,
	// not a sharding defect.
	total := len(reports[0]) + len(reports[1])
	if total < 60 || total > 64 {
		t.Fatalf("shards reported %d keys total, want ~64 (each owned key once)", total)
	}
	if len(reports[0]) == 0 || len(reports[1]) == 0 {
		t.Errorf("sharding degenerate: %d/%d", len(reports[0]), len(reports[1]))
	}
	seen := map[uint64]bool{}
	for _, rs := range reports {
		for _, r := range rs {
			k := r.Keys.Get(fields.DstIP)
			if seen[k] {
				t.Fatalf("key %d reported by both shards", k)
			}
			seen[k] = true
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	var phv fields.PHV
	phv.Sets[0].StateResult = 0xAABBCCDD
	phv.Sets[1].StateResult = 7
	var neg5 int64 = -5
	phv.GlobalResult = uint64(neg5)
	sp := Snapshot(&phv, 42, 3)
	if sp.QID != 42 || sp.Part != 3 {
		t.Errorf("snapshot header = %+v", sp)
	}
	// Wire round trip.
	decoded, err := packet.UnmarshalSP(packet.MarshalSP(sp))
	if err != nil {
		t.Fatal(err)
	}
	var got fields.PHV
	Restore(&got, decoded)
	if got.Sets[0].StateResult != 0xAABBCCDD || got.Sets[1].StateResult != 7 {
		t.Errorf("state lost: %+v", got.Sets)
	}
	if fields.GlobalSigned(got.GlobalResult) != -5 {
		t.Errorf("global = %d, want -5", fields.GlobalSigned(got.GlobalResult))
	}
	if got.QueryID != 42 {
		t.Errorf("qid = %d", got.QueryID)
	}
}

func TestSnapshotClampsGlobal(t *testing.T) {
	var phv fields.PHV
	phv.GlobalResult = 1 << 40
	if sp := Snapshot(&phv, 1, 0); int16(sp.Global) != 32767 {
		t.Errorf("positive clamp = %d", int16(sp.Global))
	}
	var negBig int64 = -(1 << 40)
	phv.GlobalResult = uint64(negBig)
	if sp := Snapshot(&phv, 1, 0); int16(sp.Global) != -32768 {
		t.Errorf("negative clamp = %d", int16(sp.Global))
	}
}

func TestSliceProgram(t *testing.T) {
	p := buildCountProgram(1, 3, 1024) // 5 ops over 5 stages
	parts, err := SliceProgram(p, 3)
	if err != nil {
		t.Fatalf("SliceProgram: %v", err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2 (5 stages / 3 per switch)", len(parts))
	}
	// Partition 1 carries its two R ops plus a cloned K and H so it can
	// re-derive the operation keys and hash the SP header does not carry.
	if parts[0].NumOps() != 3 || parts[1].NumOps() != 4 {
		t.Errorf("op split = %d/%d, want 3/4", parts[0].NumOps(), parts[1].NumOps())
	}
	if parts[1].Branches[0].Ops[0].Kind != ModK || parts[1].Branches[0].Ops[0].Stage != 1 {
		t.Errorf("partition 1 should lead with a cloned K at stage 1: %v", parts[1].Branches[0].Ops[0])
	}
	if parts[1].Part != 1 || parts[1].TotalParts != 2 {
		t.Errorf("partition metadata wrong: %d/%d", parts[1].Part, parts[1].TotalParts)
	}
	if parts[0].QID != 1 || parts[1].QID != 1 {
		t.Error("partition QIDs wrong")
	}
	// Deep copy: mutating a partition op must not touch the original.
	parts[0].Branches[0].Ops[0].K.Mask = fields.Keep(fields.SrcIP)
	if p.Branches[0].Ops[0].K.Mask.Equal(fields.Keep(fields.SrcIP)) {
		t.Error("slice shares config with original")
	}
}

func TestSliceProgramErrors(t *testing.T) {
	p := buildCountProgram(1, 3, 1024)
	if _, err := SliceProgram(p, 0); err == nil {
		t.Error("zero partition size accepted")
	}
}

func TestSliceProgramSingleSwitch(t *testing.T) {
	p := buildCountProgram(1, 3, 1024)
	parts, err := SliceProgram(p, 10)
	if err != nil || len(parts) != 1 {
		t.Fatalf("whole-fit slice: %d parts, %v", len(parts), err)
	}
	if parts[0].NumOps() != p.NumOps() {
		t.Error("single partition lost ops")
	}
}

func TestProgramCounts(t *testing.T) {
	p := buildCountProgram(1, 3, 1024)
	if p.NumOps() != 5 || p.NumStages() != 5 || p.RuleCount() != 6 {
		t.Errorf("counts: ops=%d stages=%d rules=%d", p.NumOps(), p.NumStages(), p.RuleCount())
	}
}

func TestKindStrings(t *testing.T) {
	if ModK.String() != "K" || ModR.String() != "R" {
		t.Error("kind names wrong")
	}
	op := Op{Kind: ModH, Set: 1, Stage: 3}
	if op.String() != "H1@s3" {
		t.Errorf("op String = %q", op.String())
	}
	if LayoutCompact.String() != "compact" || LayoutNaive.String() != "naive" {
		t.Error("layout names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "mod(") {
		t.Error("out-of-range kind")
	}
}

func TestLayoutTooSmallFails(t *testing.T) {
	// A stage capacity that cannot host two suites must fail at load.
	_, err := dataplaneTinyLayout()
	if err == nil {
		t.Error("undersized layout loaded")
	}
}

func dataplaneTinyLayout() (*Layout, error) {
	// Directly exercise the placement failure path via a pipeline whose
	// capacity is below one suite.
	l := &Layout{}
	_ = l
	return newLayoutWithCapacity()
}

func newLayoutWithCapacity() (*Layout, error) {
	// The public constructor uses StageCapacity; simulate an over-packed
	// stage by loading a compact layout into a 1-stage pipeline twice.
	l, err := NewLayout(LayoutCompact, 1, 64)
	if err != nil {
		return nil, err
	}
	st := l.Pipeline().Stages[0]
	// Filling the remaining headroom must eventually fail.
	for i := 0; i < 100; i++ {
		if err := st.Place("extra", ModuleResources(ModS), nil, nil); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func BenchmarkEngineExecuteQ1(b *testing.B) {
	l, err := NewLayout(LayoutCompact, 8, 4096)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(l)
	if err := eng.Install(buildCountProgram(1, 1<<30, 1024)); err != nil {
		b.Fatal(err)
	}
	sw := dataplane.NewSwitch("s1", 8, StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng
	pkt := synTo(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(pkt)
	}
}

func BenchmarkEngineInstallRemove(b *testing.B) {
	l, err := NewLayout(LayoutCompact, 8, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := buildCountProgram(1, 3, 1024)
		if err := eng.Install(p); err != nil {
			b.Fatal(err)
		}
		if err := eng.Remove(1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSliceProgramRejectsSeparatedMergeReads(t *testing.T) {
	// A merge query's cross-branch reads must stay with the banks they
	// read; slicing that separates them is refused with a clear error —
	// the controller then uses larger partitions or defers to the
	// analyzer (§5.2's fallback).
	p := &Program{
		QID: 1, Name: "merge",
		Branches: []*BranchProgram{
			{Ops: []*Op{
				{Kind: ModK, Stage: 1, K: &KConfig{Mask: fields.Keep(fields.DstIP)}},
				{Kind: ModS, Stage: 2, S: &SConfig{ALU: dataplane.OpAdd, Row0: true, WidthHint: 64}},
			}},
			{Ops: []*Op{
				{Kind: ModK, Stage: 1, K: &KConfig{Mask: fields.Keep(fields.DstIP)}},
				{Kind: ModS, Stage: 2, S: &SConfig{ALU: dataplane.OpAdd, Row0: true, WidthHint: 64}},
				{Kind: ModS, Stage: 6, S: &SConfig{ALU: dataplane.OpRead, CrossRead: true, ReadBranch: 0, WidthHint: 64}},
			}},
		},
	}
	if _, err := SliceProgram(p, 3); err == nil {
		t.Fatal("separating slice accepted")
	}
	// A partition size that keeps reader and bank together works.
	parts, err := SliceProgram(p, 6)
	if err != nil {
		t.Fatalf("co-locating slice rejected: %v", err)
	}
	if len(parts) != 1 {
		t.Fatalf("parts = %d", len(parts))
	}
	// A read of a branch with no row-0 bank is invalid outright.
	p.Branches[0].Ops[1].S.Row0 = false
	if _, err := SliceProgram(p, 6); err == nil {
		t.Error("read of bank-less branch accepted")
	}
}
