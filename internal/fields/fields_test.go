package fields

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	cases := map[ID]string{
		SrcIP: "sip", DstIP: "dip", SrcPort: "sport", DstPort: "dport",
		Proto: "proto", TCPFlags: "tcp_flags", PktLen: "len",
		Timestamp: "ts", TTL: "ttl",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("ID(%d).String() = %q, want %q", id, got, want)
		}
	}
	if got := ID(200).String(); got != "field(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	for id := ID(0); id < NumFields; id++ {
		got, err := ParseID(id.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("ParseID(%q) = %v, want %v", id.String(), got, id)
		}
	}
	if _, err := ParseID("nope"); err == nil {
		t.Error("ParseID(nope) should fail")
	}
}

func TestWidthAndMaxValue(t *testing.T) {
	if SrcIP.Width() != 32 || SrcIP.MaxValue() != 0xFFFFFFFF {
		t.Errorf("SrcIP width/max wrong: %d %#x", SrcIP.Width(), SrcIP.MaxValue())
	}
	if SrcPort.MaxValue() != 0xFFFF {
		t.Errorf("SrcPort max = %#x", SrcPort.MaxValue())
	}
	if Proto.MaxValue() != 0xFF {
		t.Errorf("Proto max = %#x", Proto.MaxValue())
	}
	if Timestamp.Width() != 48 {
		t.Errorf("Timestamp width = %d", Timestamp.Width())
	}
}

func TestKeepMask(t *testing.T) {
	m := Keep(DstIP, SrcPort)
	var v Vector
	v.Set(DstIP, 0x0A000001)
	v.Set(SrcIP, 0xC0A80001)
	v.Set(SrcPort, 443)
	out := m.Apply(&v)
	if out.Get(DstIP) != 0x0A000001 {
		t.Errorf("kept field lost: %#x", out.Get(DstIP))
	}
	if out.Get(SrcIP) != 0 {
		t.Errorf("concealed field leaked: %#x", out.Get(SrcIP))
	}
	if out.Get(SrcPort) != 443 {
		t.Errorf("kept port lost: %d", out.Get(SrcPort))
	}
	ids := m.Fields()
	if len(ids) != 2 || ids[0] != DstIP || ids[1] != SrcPort {
		t.Errorf("Fields() = %v", ids)
	}
}

func TestPrefixMask(t *testing.T) {
	bits := Prefix(SrcIP, 24)
	if bits != 0xFFFFFF00 {
		t.Fatalf("Prefix(SrcIP,24) = %#x", bits)
	}
	m := Keep().WithBits(SrcIP, bits)
	var v Vector
	v.Set(SrcIP, 0xC0A8_01FE) // 192.168.1.254
	out := m.Apply(&v)
	if out.Get(SrcIP) != 0xC0A8_0100 {
		t.Errorf("prefix mask applied = %#x, want 0xC0A80100", out.Get(SrcIP))
	}
	if Prefix(SrcIP, 0) != 0 {
		t.Error("Prefix(.,0) should be 0")
	}
	if Prefix(SrcIP, 40) != SrcIP.MaxValue() {
		t.Error("over-wide prefix should clamp")
	}
}

func TestMaskIdempotent(t *testing.T) {
	f := func(raw [NumFields]uint64, maskRaw [NumFields]uint64) bool {
		v := Vector(raw)
		m := Mask(maskRaw)
		once := m.Apply(&v)
		twice := m.Apply(&once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskBytesDeterminedByKeys(t *testing.T) {
	// Two vectors that agree on masked fields must produce identical hash
	// bytes no matter how concealed fields differ.
	rng := rand.New(rand.NewSource(7))
	m := Keep(SrcIP, DstIP, DstPort)
	for i := 0; i < 200; i++ {
		var a, b Vector
		for id := ID(0); id < NumFields; id++ {
			a[id] = rng.Uint64() & id.MaxValue()
			b[id] = rng.Uint64() & id.MaxValue()
		}
		// Force agreement on masked fields.
		for _, id := range m.Fields() {
			b[id] = a[id]
		}
		ab := m.Bytes(&a, nil)
		bb := m.Bytes(&b, nil)
		if string(ab) != string(bb) {
			t.Fatalf("Bytes differ though keys agree: %x vs %x", ab, bb)
		}
	}
}

func TestMaskBytesDistinguishesKeys(t *testing.T) {
	m := Keep(SrcIP)
	var a, b Vector
	a.Set(SrcIP, 1)
	b.Set(SrcIP, 2)
	if string(m.Bytes(&a, nil)) == string(m.Bytes(&b, nil)) {
		t.Error("different keys serialized identically")
	}
}

func TestKeepAll(t *testing.T) {
	m := KeepAll()
	for id := ID(0); id < NumFields; id++ {
		if m[id] != id.MaxValue() {
			t.Errorf("KeepAll missing %v", id)
		}
	}
	if m.IsZero() {
		t.Error("KeepAll IsZero")
	}
	if !(Mask{}).IsZero() {
		t.Error("zero mask not IsZero")
	}
}

func TestMaskString(t *testing.T) {
	m := Keep(DstIP).WithBits(SrcIP, Prefix(SrcIP, 24))
	s := m.String()
	if s != "(sip&0xffffff00, dip)" {
		t.Errorf("String() = %q", s)
	}
}

func TestPHVReset(t *testing.T) {
	var p PHV
	p.Fields.Set(SrcIP, 42)
	p.Sets[0].HashResult = 9
	p.GlobalResult = 3
	p.QueryID = 5
	p.Stopped = true
	p.Reset()
	if p.Fields.Get(SrcIP) != 42 {
		t.Error("Reset cleared parsed fields")
	}
	if p.Sets[0].HashResult != 0 || p.GlobalResult != 0 || p.Stopped {
		t.Error("Reset left metadata behind")
	}
	if p.QueryID != -1 {
		t.Errorf("Reset QueryID = %d, want -1", p.QueryID)
	}
}

func TestVectorString(t *testing.T) {
	var v Vector
	v.Set(DstIP, 7)
	v.Set(Proto, 6)
	got := v.String()
	if got != "{dip=7, proto=6}" {
		t.Errorf("String() = %q", got)
	}
}
