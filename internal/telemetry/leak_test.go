package telemetry

import (
	"net"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/faults"
)

// leakSeed mirrors the chaos experiments' NEWTON_FAULT_SEED convention
// so CI's fault matrix varies the injected fault schedule here too.
func leakSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("NEWTON_FAULT_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("NEWTON_FAULT_SEED=%q: %v", v, err)
	}
	return n
}

// settleGoroutines polls until the goroutine count drops to at most
// want, returning the final count. Goroutine teardown is asynchronous
// (conn handlers observe closes on their next read), so a single
// instantaneous sample would flake.
func settleGoroutines(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestExporterReconnectLoopNoGoroutineLeak churns an exporter through
// repeated stream kills (forcing the reconnect loop to spawn and run
// under injected resets) and restarts, then closes everything and
// asserts the process goroutine count returns to its baseline — the
// regression this guards is an exporter whose reconnect or writer
// goroutine outlives Close.
func TestExporterReconnectLoopNoGoroutineLeak(t *testing.T) {
	inj := faults.New(faults.Config{Seed: leakSeed(t)})
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for round := 0; round < 4; round++ {
		svc := NewService(ServiceConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go svc.Serve(inj.Listener(ln))
		addr := ln.Addr().String()

		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		redial := func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return inj.Conn(c), nil
		}
		exp, err := NewExporter(inj.Conn(conn), ExporterConfig{
			SwitchID:     "s1",
			Redial:       redial,
			Policy:       PolicyDropOldest,
			ReconnectMin: time.Millisecond,
			ReconnectMax: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Kill the live stream twice per round: a partition makes every
		// wrapped conn (current and freshly redialed) error, spawning the
		// reconnect loop and running its failing-redial backoff path;
		// healing lets it re-establish.
		for kill := 0; kill < 2; kill++ {
			inj.Partition()
			exp.Export([]dataplane.Report{{SwitchID: "s1", QueryID: 1, State: uint64(round)}})
			time.Sleep(5 * time.Millisecond)
			inj.Heal()
			deadline := time.Now().Add(3 * time.Second)
			for exp.Stats().Reconnects < uint64(kill+1) && time.Now().Before(deadline) {
				exp.Export([]dataplane.Report{{SwitchID: "s1", QueryID: 1, State: uint64(round)}})
				time.Sleep(2 * time.Millisecond)
			}
			if got := exp.Stats().Reconnects; got < uint64(kill+1) {
				t.Fatalf("round %d: exporter never reconnected (%d reconnects)", round, got)
			}
		}

		exp.Close()
		svc.Close()
		ln.Close()
	}

	if n := settleGoroutines(t, baseline); n > baseline {
		t.Fatalf("goroutines leaked across exporter churn: baseline %d, now %d", baseline, n)
	}
}
