package experiments

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// Fig14Row is one (system, registers) accuracy measurement for Q1.
type Fig14Row struct {
	System    string // "Sonata" or "Newton_h"
	Registers uint32 // registers per array on one switch

	Accuracy float64 // precision of reported keys (the paper's accuracy axis)
	FPR      float64 // false positives over reports (the paper's error axis)
	Recall   float64
}

// Fig14Result reproduces Fig. 14: Q1's accuracy and false-positive rate
// as the per-array register count sweeps 256–4096. Sonata is confined to
// one switch's arrays; Newton_h pools the arrays of the h switches along
// the path via cross-switch execution, multiplying effective capacity —
// the paper reports ~350% accuracy improvement at 256 registers.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Accuracy sweeps register budgets and path lengths. Count-Min rows
// per reduce match the testbed's "three register arrays per switch".
func Fig14Accuracy(widths []uint32, maxHops int) *Fig14Result {
	if len(widths) == 0 {
		widths = []uint32{256, 512, 1024, 2048, 4096}
	}
	if maxHops == 0 {
		maxHops = 3
	}
	// The workload that exposes Count-Min's overcount bias: a handful of
	// true victims far above the threshold, dozens of "warm" hosts just
	// below it, and enough background SYNs that a 256-register array's
	// per-cell collision load (~10 per window) pushes warm hosts over
	// the line. Pooling registers across h switches divides that load by
	// h — exactly the accuracy mechanism of §6.3.
	overlays := []trace.Overlay{}
	for v := 0; v < 8; v++ {
		overlays = append(overlays, trace.SYNFlood{Victim: 0x0A0000A0 + uint32(v), Packets: 400})
	}
	for v := 0; v < 100; v++ {
		overlays = append(overlays,
			trace.SYNFlood{Victim: 0x0A0001_00 + uint32(v), Packets: 60 + (v*5)%36})
	}
	tr := trace.Generate(trace.Config{Seed: 4242, Flows: 9000, Duration: 300 * time.Millisecond},
		overlays...)
	q := query.Q1(40)
	truth := analyzer.NewEngine(q)
	truth.Run(tr.Packets)
	want := truth.FlaggedKeys()

	res := &Fig14Result{}
	for _, w := range widths {
		for h := 1; h <= maxHops; h++ {
			got := runQ1Sharded(tr, q, h, w)
			a := analyzer.Compare(got, want)
			name := fmt.Sprintf("Newton_%d", h)
			if h == 1 {
				// One switch, no pooling: this is exactly Sonata's
				// situation; report it under both labels.
				res.Rows = append(res.Rows, Fig14Row{
					System: "Sonata", Registers: w,
					Accuracy: 1 - a.FPR(), FPR: a.FPR(), Recall: a.Recall(),
				})
			}
			res.Rows = append(res.Rows, Fig14Row{
				System: name, Registers: w,
				Accuracy: 1 - a.FPR(), FPR: a.FPR(), Recall: a.Recall(),
			})
		}
	}
	return res
}

// runQ1Sharded executes Q1 with 3 Count-Min rows of the given width,
// key-sharded across h switches, and returns the flagged keys.
func runQ1Sharded(tr *trace.Trace, q *query.Query, hops int, width uint32) map[uint64]bool {
	topo, h1, h2 := topology.Linear(hops)
	net, err := netsim.New(topo, netsim.Config{Stages: 16, ArraySize: 3 * 4096})
	if err != nil {
		panic(err)
	}
	sws := topo.Switches()
	for i, id := range sws {
		o := compiler.AllOpts()
		o.QID = 1
		o.Width = width
		o.ReduceRows = 3 // the testbed's three register arrays
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(sws))
		p, err := compiler.Compile(q, o)
		if err != nil {
			panic(err)
		}
		if err := net.Node(id).Eng.Install(p); err != nil {
			panic(err)
		}
	}
	net.DeliverBatch(tr.Packets, h1, h2)
	col := analyzer.NewCollector(uint64(q.Window), q.ReportKeys())
	col.AddAll(net.DrainReports())
	return col.FlaggedKeys()
}

// String renders the accuracy sweep.
func (r *Fig14Result) String() string {
	t := &table{header: []string{"Registers", "System", "Accuracy", "FPR", "Recall"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Registers), row.System,
			f3(row.Accuracy), f3(row.FPR), f3(row.Recall))
	}
	return "Fig. 14: Q1 accuracy and errors vs registers per array (paper: ~350% gain at 256)\n" + t.String()
}
