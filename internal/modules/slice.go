package modules

import "fmt"

// SliceProgram partitions a compiled program for cross-switch query
// execution (§5.1's model parallelism): partition k receives the ops of
// logical stages (k·stagesPer, (k+1)·stagesPer], rebased to start at
// stage 1, so "a query with 10 stages needs 4 3-stage switches". Ops are
// deep-copied: each partition installs independently on its own switch.
//
// Cross-branch state reads must land in the same partition as the bank
// they read (state lives on one switch); slicing that would separate
// them is rejected — the controller then either uses fewer, larger
// partitions or defers the tail to the software analyzer.
func SliceProgram(p *Program, stagesPer int) ([]*Program, error) {
	if stagesPer <= 0 {
		return nil, fmt.Errorf("modules: non-positive partition size")
	}
	total := p.NumStages()
	if total == 0 {
		return []*Program{cloneProgram(p, 0, 1<<30, 0)}, nil
	}
	m := (total + stagesPer - 1) / stagesPer

	// Validate cross-read colocation: a reader and its target row-0 bank
	// must share a partition.
	for bi, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind != ModS || op.S == nil || !op.S.CrossRead {
				continue
			}
			tgt := row0Stage(p, op.S.ReadBranch)
			if tgt == 0 {
				return nil, fmt.Errorf("modules: branch %d reads row0 of branch %d, which has none", bi, op.S.ReadBranch)
			}
			if (op.Stage-1)/stagesPer != (tgt-1)/stagesPer {
				return nil, fmt.Errorf("modules: %d-stage partitions separate a cross-branch read (stage %d) from its bank (stage %d); use larger partitions or defer to the analyzer",
					stagesPer, op.Stage, tgt)
			}
		}
	}

	parts := make([]*Program, m)
	for k := 0; k < m; k++ {
		parts[k] = cloneProgram(p, k*stagesPer, (k+1)*stagesPer, k)
		parts[k].Part, parts[k].TotalParts = k, m
	}
	return parts, nil
}

// row0Stage finds the stage of a branch's last row-0 state bank.
func row0Stage(p *Program, branch int) int {
	if branch < 0 || branch >= len(p.Branches) {
		return 0
	}
	s := 0
	for _, op := range p.Branches[branch].Ops {
		if op.Kind == ModS && op.S != nil && op.S.Row0 {
			s = op.Stage
		}
	}
	return s
}

// cloneProgram deep-copies the ops with logical stages in (lo, hi],
// rebasing them by -lo. Partitions after the first re-derive their
// operation keys and hash results from the packet headers — the result
// snapshot carries only state and global results — so the last K and H
// of each metadata set used by the partition are cloned in front (two
// extra stages), exactly why the SP header can stay at 12 bytes.
func cloneProgram(p *Program, lo, hi, part int) *Program {
	out := &Program{QID: p.QID, Name: fmt.Sprintf("%s/part%d", p.Name, part)}
	for _, b := range p.Branches {
		nb := &BranchProgram{Init: b.Init}
		var body []*Op
		usesSet := map[int]bool{}
		for _, op := range b.Ops {
			if op.Stage <= lo || op.Stage > hi {
				continue
			}
			body = append(body, op)
			usesSet[op.Set&1] = true
		}
		shift := -lo
		if lo > 0 && len(body) > 0 {
			// Find the last K and H per needed set before the boundary.
			lastK, lastH := map[int]*Op{}, map[int]*Op{}
			for _, op := range b.Ops {
				if op.Stage > lo {
					break
				}
				switch op.Kind {
				case ModK:
					lastK[op.Set&1] = op
				case ModH:
					lastH[op.Set&1] = op
				}
			}
			prepended := false
			for set := 0; set < 2; set++ {
				if !usesSet[set] {
					continue
				}
				if k := lastK[set]; k != nil {
					ck := cloneOp(k, 0)
					ck.Stage = 1
					nb.Ops = append(nb.Ops, ck)
					prepended = true
				}
				if h := lastH[set]; h != nil {
					ch := cloneOp(h, 0)
					ch.Stage = 2
					nb.Ops = append(nb.Ops, ch)
					prepended = true
				}
			}
			if prepended {
				shift += 2
			}
		}
		for _, op := range body {
			nb.Ops = append(nb.Ops, cloneOp(op, shift))
		}
		out.Branches = append(out.Branches, nb)
	}
	return out
}

func cloneOp(op *Op, shift int) *Op {
	cp := &Op{Kind: op.Kind, Set: op.Set, Stage: op.Stage + shift}
	if op.K != nil {
		k := *op.K
		cp.K = &k
	}
	if op.H != nil {
		h := *op.H
		cp.H = &h
	}
	if op.S != nil {
		s := *op.S
		s.array = nil
		s.offset, s.width = 0, 0
		cp.S = &s
	}
	if op.R != nil {
		r := RConfig{OnGlobal: op.R.OnGlobal}
		for _, e := range op.R.Entries {
			ne := REntry{Lo: e.Lo, Hi: e.Hi}
			ne.Actions = append(ne.Actions, e.Actions...)
			r.Entries = append(r.Entries, ne)
		}
		cp.R = &r
	}
	return cp
}
