package placement

import (
	"sort"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/topology"
)

func TestPlaceLinearSingleSwitchQuery(t *testing.T) {
	topo, _, _ := Linear3(t)
	p, m, err := Place(topo, topo.EdgeSwitches()[:1], 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("partitions = %d, want 1", m)
	}
	// Single-partition queries go on every switch reachable at depth 1 =
	// the edge switch itself.
	if len(p[topo.EdgeSwitches()[0]]) != 1 {
		t.Error("edge switch not assigned")
	}
}

func Linear3(t *testing.T) (*topology.Topology, int, int) {
	t.Helper()
	topo, h1, h2 := topology.Linear(3)
	return topo, h1, h2
}

func TestPlaceLinearPartitioned(t *testing.T) {
	topo, _, _ := Linear3(t)
	edges := topo.EdgeSwitches()
	// 10-stage query on 5-stage switches → 2 partitions.
	p, m, err := Place(topo, edges[:1], 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("m = %d", m)
	}
	s1, s2 := edges[0], edges[1]
	if !contains(p[s1], 0) {
		t.Error("partition 0 missing from first hop")
	}
	if !contains(p[s2], 1) {
		t.Error("partition 1 missing from second hop")
	}
}

func TestPlaceCoversAllPaths(t *testing.T) {
	// The invariant of Algorithm 2 (DESIGN invariant 4): for ANY simple
	// path out of a monitored edge switch, partitions appear in order.
	topo := topology.FatTree(4)
	edges := topo.EdgeSwitches()
	p, m, err := Place(topo, edges[:2], 10, 5) // 2 partitions
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	for _, dst := range hosts {
		for seed := uint64(0); seed < 8; seed++ {
			full := topo.Path(hosts[0], dst, seed)
			if full == nil || len(full) < 3 {
				continue
			}
			sw := topo.SwitchPath(full)
			if sw[0] != edges[0] && sw[0] != edges[1] {
				continue // not monitored traffic
			}
			if got := p.CoversPath(sw, m); got != m && len(sw) >= m {
				t.Fatalf("path %v completes only %d/%d partitions", sw, got, m)
			}
		}
	}
}

func TestPlaceSurvivesRerouting(t *testing.T) {
	topo := topology.FatTree(4)
	edges := topo.EdgeSwitches()
	p, m, err := Place(topo, edges, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	orig := topo.SwitchPath(topo.Path(src, dst, 3))
	if p.CoversPath(orig, m) != m {
		t.Fatal("original path not covered")
	}
	// Fail a link on the original path; the rerouted path must still be
	// covered without recomputing the placement.
	topo.SetLink(orig[0], orig[1], false)
	re := topo.SwitchPath(topo.Path(src, dst, 3))
	if re == nil {
		t.Fatal("no reroute available")
	}
	if p.CoversPath(re, m) != m {
		t.Fatalf("rerouted path %v not covered — placement not resilient", re)
	}
}

func TestPlaceMultiplexesRules(t *testing.T) {
	// Each switch holds each partition at most once no matter how many
	// edge switches' DFS trees reach it.
	topo := topology.FatTree(4)
	p, _, err := Place(topo, topo.EdgeSwitches(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s, parts := range p {
		seen := map[int]bool{}
		for _, d := range parts {
			if seen[d] {
				t.Fatalf("switch %d hosts partition %d twice", s, d)
			}
			seen[d] = true
		}
	}
}

func TestEntries(t *testing.T) {
	topo, _, _ := Linear3(t)
	p, m, err := Place(topo, topo.EdgeSwitches()[:1], 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatal("expected 2 partitions")
	}
	total, avg := p.Entries([]int{10, 9})
	if total <= 0 || avg <= 0 {
		t.Fatalf("entries = %d avg %.1f", total, avg)
	}
	// With 3 chained switches and the DFS from s1: s1 has part0, s2 has
	// part1 (depth2), s3 nothing within m=2... depth(s3)=3 > m.
	if total != 19 {
		t.Errorf("total entries = %d, want 19 (10 + 9)", total)
	}
	empty := Placement{}
	if tot, a := empty.Entries(nil); tot != 0 || a != 0 {
		t.Error("empty placement entries nonzero")
	}
}

func TestPlaceErrors(t *testing.T) {
	topo, h1, _ := Linear3(t)
	if _, _, err := Place(topo, []int{h1}, 4, 4); err == nil {
		t.Error("host as edge switch accepted")
	}
	if _, _, err := Place(topo, nil, 0, 4); err == nil {
		t.Error("zero stages accepted")
	}
	if _, _, err := Place(topo, nil, 4, 0); err == nil {
		t.Error("zero stages-per-switch accepted")
	}
}

func TestAverageEntriesStabilizeWithScale(t *testing.T) {
	// Fig. 17b's key claim: total entries grow linearly with the
	// topology while per-switch average stabilizes.
	var avgs []float64
	for _, k := range []int{4, 8, 12} {
		topo := topology.FatTree(k)
		p, m, err := Place(topo, topo.EdgeSwitches(), 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		rules := make([]int, m)
		for i := range rules {
			rules[i] = 10
		}
		_, avg := p.Entries(rules)
		avgs = append(avgs, avg)
	}
	if avgs[2] > avgs[0]*1.5 {
		t.Errorf("per-switch average grows with scale: %v", avgs)
	}
}

// TestPlaceCoversRandomTopologies is the resilience property with no
// helpful structure: on random connected graphs, for every monitored
// edge switch and every shortest path of length >= M out of it, the
// partitions appear in order — whatever the graph looks like.
func TestPlaceCoversRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		topo := topology.Random(12, 10, seed)
		edges := topo.EdgeSwitches()[:3]
		p, m, err := Place(topo, edges, 8, 4) // 2 partitions
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range edges {
			for _, dst := range topo.Switches() {
				for fs := uint64(0); fs < 4; fs++ {
					path := topo.Path(src, dst, fs)
					if len(path) < m {
						continue
					}
					if got := p.CoversPath(path, m); got != m {
						t.Fatalf("seed %d: path %v covers %d/%d partitions", seed, path, got, m)
					}
				}
			}
		}
	}
}

// TestPlaceRandomFailures fails random links and checks any remaining
// shortest path is still covered without recomputation.
func TestPlaceRandomFailures(t *testing.T) {
	topo := topology.Random(16, 14, 3)
	edges := topo.EdgeSwitches()[:4]
	p, m, err := Place(topo, edges, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Fail three ring links.
	topo.SetLink(0, 1, false)
	topo.SetLink(5, 6, false)
	topo.SetLink(9, 10, false)
	for _, src := range edges {
		for _, dst := range topo.Switches() {
			path := topo.Path(src, dst, 7)
			if path == nil || len(path) < m {
				continue
			}
			if got := p.CoversPath(path, m); got != m {
				t.Fatalf("rerouted path %v covers %d/%d", path, got, m)
			}
		}
	}
}

// placeAllSimplePaths is the pre-fix Algorithm 2: enumerate every simple
// path out of the monitored edges (the DFS unmarks `discovered` on
// unwind), assigning partition d-1 to each switch reached at depth d.
// Kept as the reference the memoized traversal is checked against; it is
// exponential on meshy topologies, which is exactly why Place no longer
// works this way.
func placeAllSimplePaths(topo *topology.Topology, edges []int, totalStages, stagesPerSwitch int) (Placement, int) {
	m := (totalStages + stagesPerSwitch - 1) / stagesPerSwitch
	p := Placement{}
	discovered := map[int]bool{}
	var dfs func(s, d int)
	dfs = func(s, d int) {
		if d > m {
			return
		}
		part := d - 1
		if !contains(p[s], part) {
			p[s] = append(p[s], part)
		}
		discovered[s] = true
		for _, n := range topo.SwitchNeighbors(s) {
			if !discovered[n] {
				dfs(n, d+1)
			}
		}
		discovered[s] = false
	}
	for _, s := range edges {
		dfs(s, 1)
	}
	for s := range p {
		sort.Ints(p[s])
	}
	return p, m
}

func placementsEqual(a, b Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for s, parts := range a {
		other := b[s]
		if len(other) != len(parts) {
			return false
		}
		for i := range parts {
			if parts[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func TestPlaceMatchesSimplePathReferenceOnSmallGraphs(t *testing.T) {
	// On the evaluation's topologies the memoized traversal and the
	// simple-path reference produce identical placements (fat-trees are
	// bipartite in their switch graph and every walk endpoint is also
	// simple-path reachable from one of the monitored edges).
	type cfg struct {
		name         string
		topo         *topology.Topology
		edges        []int
		total, perSw int
	}
	var cases []cfg
	for _, perSw := range []int{10, 5, 4, 3, 2} {
		ft := topology.FatTree(4)
		cases = append(cases, cfg{name: "fattree4/all-edges", topo: ft, edges: ft.EdgeSwitches(), total: 10, perSw: perSw})
	}
	ft2 := topology.FatTree(4)
	cases = append(cases, cfg{name: "fattree4/two-edges", topo: ft2, edges: ft2.EdgeSwitches()[:2], total: 10, perSw: 5})
	isp := topology.ISPBackbone()
	ca := []int{isp.NodeByName("SanFrancisco"), isp.NodeByName("Sacramento"),
		isp.NodeByName("LosAngeles"), isp.NodeByName("SanDiego")}
	for _, perSw := range []int{11, 6, 4} { // m = 1..3
		cases = append(cases, cfg{name: "isp/CA-edges", topo: isp, edges: ca, total: 11, perSw: perSw})
	}
	lin, _, _ := topology.Linear(5)
	cases = append(cases, cfg{name: "linear5", topo: lin, edges: lin.EdgeSwitches()[:1], total: 10, perSw: 5})

	for _, tc := range cases {
		got, gm, err := Place(tc.topo, tc.edges, tc.total, tc.perSw)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, wm := placeAllSimplePaths(tc.topo, tc.edges, tc.total, tc.perSw)
		if gm != wm {
			t.Fatalf("%s: partitions %d != %d", tc.name, gm, wm)
		}
		if !placementsEqual(got, want) {
			t.Errorf("%s (stages/sw %d): placement diverged from the simple-path reference\n got: %v\nwant: %v",
				tc.name, tc.perSw, got, want)
		}
	}
}

func TestPlaceIsSupersetOfSimplePathsAndStillCovers(t *testing.T) {
	// Where the two traversals diverge (odd cycles reachable by a
	// backtracking walk), the memoized placement must hold a superset of
	// the reference on every switch — so nothing the paper's algorithm
	// placed is lost and path coverage can only improve.
	for seed := int64(0); seed < 4; seed++ {
		topo := topology.Random(9, 6, seed)
		edges := topo.Switches()[:2]
		got, m, err := Place(topo, edges, 12, 3) // m = 4: deep enough to diverge
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := placeAllSimplePaths(topo, edges, 12, 3)
		for s, parts := range ref {
			for _, d := range parts {
				if !contains(got[s], d) {
					t.Fatalf("seed %d: memoized placement lost partition %d on switch %d", seed, d, s)
				}
			}
		}
		for _, src := range edges {
			for dst := range topo.Switches() {
				for fseed := uint64(0); fseed < 4; fseed++ {
					path := topo.SwitchPath(topo.Path(src, topo.Switches()[dst], fseed))
					if len(path) < m {
						continue
					}
					if got.CoversPath(path, m) < ref.CoversPath(path, m) {
						t.Fatalf("seed %d: coverage regressed on path %v", seed, path)
					}
				}
			}
		}
	}
}

func TestPlaceFatTree8CompletesInBoundedTime(t *testing.T) {
	// Regression for the exponential simple-path enumeration: on a k=8
	// fat-tree with all 128 ToR edges monitored and an 8-partition query,
	// the pre-fix DFS enumerates ~16^7 walks per edge and effectively
	// never returns. The memoized traversal is O((V+E)·M).
	done := make(chan Placement, 1)
	go func() {
		topo := topology.FatTree(8)
		p, _, err := Place(topo, topo.EdgeSwitches(), 16, 2) // m = 8
		if err != nil {
			t.Error(err)
		}
		done <- p
	}()
	select {
	case p := <-done:
		if len(p) == 0 {
			t.Fatal("empty placement")
		}
		// Every switch of the fat-tree hosts something at m=8.
		topo := topology.FatTree(8)
		if len(p) != len(topo.Switches()) {
			t.Errorf("placement covers %d switches, want all %d", len(p), len(topo.Switches()))
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Place on a k=8 fat-tree did not complete in 20s — exponential path enumeration is back")
	}
}
