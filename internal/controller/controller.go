// Package controller implements the Newton controller: it compiles
// traffic-monitoring queries, decides where their rules go (replicated,
// key-sharded, or partitioned via resilient placement), and installs,
// removes, and updates them in running switches — purely through table
// rule operations, never touching forwarding.
//
// It also implements the Sonata baseline controller, whose query updates
// reload the switch P4 program and interrupt forwarding (Fig. 10).
package controller

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/placement"
	"github.com/newton-net/newton/internal/query"
)

// Rule-operation latencies, calibrated against Fig. 11: installing a
// small query (Q1, ~12 rules) takes ~5 ms; the largest (~55 rules) stays
// under ~25 ms. Latencies jitter ±10% per batch.
const (
	installBase    = 1500 * time.Microsecond
	installPerRule = 320 * time.Microsecond
	removeBase     = 1200 * time.Microsecond
	removePerRule  = 260 * time.Microsecond
)

// Mode selects how a query's rules spread over switches.
type Mode int

const (
	// Replicate installs the whole query on every target switch (the
	// sole-query-execution baseline and the Fig. 13 comparison point).
	Replicate Mode = iota
	// Shard key-shards the stateful banks across the target switches:
	// cross-switch execution that pools their register memory (§5.1).
	//
	// The target switches must all sit on the monitored traffic's
	// forwarding path (the paper's testbed is a line for exactly this
	// reason): a key whose owner switch is off-path is never counted.
	// On multipath topologies, shard across the switches of one path —
	// or use Partition mode, whose resilient placement covers every
	// possible path.
	Shard
	// Partition slices the query into stage partitions and places them
	// with the resilient placement algorithm (§5.2).
	Partition
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Replicate:
		return "replicate"
	case Shard:
		return "shard"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Spec describes one deployment request.
type Spec struct {
	Query *query.Query
	Mode  Mode

	// Width overrides the per-row register width (0 = compiler default).
	Width uint32

	// Switches are the target switch IDs for Replicate and Shard (nil =
	// every switch in the network).
	Switches []int

	// StagesPerSwitch (Partition mode) is the module stage budget per
	// switch; EdgeSwitches are the monitored traffic's first hops.
	StagesPerSwitch int
	EdgeSwitches    []int
}

// Deployment records an installed query.
type Deployment struct {
	QID      int
	Query    *query.Query
	Mode     Mode
	Switches []int // switches holding at least one rule
	Rules    int   // total rules installed network-wide
	Parts    int   // partitions (1 unless Partition mode)

	Placement placement.Placement // Partition mode only
}

// Newton is the Newton controller.
type Newton struct {
	net *netsim.Network
	rng *rand.Rand

	nextQID     int
	deployments map[int]*Deployment

	obs ctlObs
}

// NewNewton builds a controller over a simulated network. The seed
// drives the latency jitter.
func NewNewton(net *netsim.Network, seed int64) *Newton {
	return &Newton{net: net, rng: rand.New(rand.NewSource(seed)), nextQID: 1,
		deployments: map[int]*Deployment{}}
}

// Deployments returns the live deployments by QID.
func (c *Newton) Deployments() map[int]*Deployment { return c.deployments }

func (c *Newton) jitter(d time.Duration) time.Duration {
	f := 0.9 + 0.2*c.rng.Float64()
	return time.Duration(float64(d) * f)
}

// switchTargets resolves a spec's target switch set.
func (c *Newton) switchTargets(spec Spec) []int {
	if len(spec.Switches) > 0 {
		return spec.Switches
	}
	return c.net.Topo.Switches()
}

// Install compiles and deploys a query at runtime. The returned duration
// is the controller-observed operation latency (rule installation is
// batched per switch and switches are programmed in parallel, so the
// slowest switch bounds the delay). Forwarding is never interrupted.
func (c *Newton) Install(spec Spec) (dep *Deployment, delay time.Duration, err error) {
	if spec.Query == nil {
		return nil, 0, fmt.Errorf("controller: nil query")
	}
	defer func() {
		if err != nil {
			inc(&c.obs.deployFailures)
		}
	}()
	qid := c.nextQID
	dep = &Deployment{QID: qid, Query: spec.Query, Mode: spec.Mode}
	maxRules := 0
	var footprintProg *modules.Program

	install := func(sw int, progs ...*modules.Program) error {
		node := c.net.Node(sw)
		if node == nil {
			return fmt.Errorf("controller: no switch %d", sw)
		}
		rules := 0
		for _, p := range progs {
			if err := node.Eng.Install(p); err != nil {
				return err
			}
			rules += p.RuleCount() + 1 // + newton_fin entry
		}
		dep.Rules += rules
		if rules > maxRules {
			maxRules = rules
		}
		dep.Switches = append(dep.Switches, sw)
		return nil
	}

	undo := func() {
		for _, sw := range dep.Switches {
			if c.net.Node(sw).Eng.Remove(qid) == nil {
				inc(&c.obs.rollbacks)
			} else {
				inc(&c.obs.rollbackFailures)
			}
		}
	}

	switch spec.Mode {
	case Replicate, Shard:
		targets := c.switchTargets(spec)
		for i, sw := range targets {
			o := compiler.AllOpts()
			o.QID = qid
			o.Width = spec.Width
			if spec.Mode == Shard {
				o.ShardIndex, o.ShardCount = uint32(i), uint32(len(targets))
			}
			p, err := compiler.Compile(spec.Query, o)
			if err != nil {
				return nil, 0, err
			}
			if err := install(sw, p); err != nil {
				undo()
				return nil, 0, err
			}
			if footprintProg == nil {
				footprintProg = p
			}
		}
		dep.Parts = 1

	case Partition:
		if spec.StagesPerSwitch <= 0 {
			return nil, 0, fmt.Errorf("controller: partition mode needs StagesPerSwitch")
		}
		edges := spec.EdgeSwitches
		if len(edges) == 0 {
			edges = c.net.Topo.EdgeSwitches()
		}
		o := compiler.AllOpts()
		o.QID = qid
		o.Width = spec.Width
		logical, err := compiler.Compile(spec.Query, o)
		if err != nil {
			return nil, 0, err
		}
		footprintProg = logical
		parts, err := modules.SliceProgram(logical, spec.StagesPerSwitch)
		if err != nil {
			return nil, 0, err
		}
		pl, m, err := placement.Place(c.net.Topo, edges, logical.NumStages(), spec.StagesPerSwitch)
		if err != nil {
			return nil, 0, err
		}
		dep.Placement, dep.Parts = pl, m
		for sw, partIdxs := range pl {
			var progs []*modules.Program
			for _, d := range partIdxs {
				// Each switch needs its own program instance: installs
				// bind register allocations per device.
				cp, err := modules.SliceProgram(logical, spec.StagesPerSwitch)
				if err != nil {
					return nil, 0, err
				}
				progs = append(progs, cp[d])
			}
			if err := install(sw, progs...); err != nil {
				undo()
				return nil, 0, err
			}
		}
		_ = parts

	default:
		return nil, 0, fmt.Errorf("controller: unknown mode %v", spec.Mode)
	}

	c.nextQID++
	c.deployments[qid] = dep
	inc(&c.obs.deploys)
	if footprintProg != nil {
		c.obs.publish(qid, spec.Query.Name, spec.Mode.String(), footprintProg.Footprint())
	}
	delay = c.jitter(installBase + time.Duration(maxRules)*installPerRule)
	return dep, delay, nil
}

// Remove uninstalls a deployment at runtime.
func (c *Newton) Remove(qid int) (time.Duration, error) {
	dep, ok := c.deployments[qid]
	if !ok {
		return 0, fmt.Errorf("controller: no deployment %d", qid)
	}
	maxRules := 0
	perSwitch := map[int]int{}
	for _, sw := range dep.Switches {
		perSwitch[sw]++
	}
	for sw := range perSwitch {
		if err := c.net.Node(sw).Eng.Remove(qid); err != nil {
			inc(&c.obs.removeFailures)
			return 0, err
		}
	}
	if len(perSwitch) > 0 {
		maxRules = dep.Rules / len(perSwitch)
	}
	delete(c.deployments, qid)
	inc(&c.obs.removes)
	c.obs.unpublish(qid)
	return c.jitter(removeBase + time.Duration(maxRules)*removePerRule), nil
}

// Update atomically replaces a deployment: the new rules install before
// the old ones retire, so monitoring never gaps and forwarding never
// stops. The returned delay covers both rule batches.
func (c *Newton) Update(qid int, spec Spec) (*Deployment, time.Duration, error) {
	if _, ok := c.deployments[qid]; !ok {
		return nil, 0, fmt.Errorf("controller: no deployment %d", qid)
	}
	dep, dIn, err := c.Install(spec)
	if err != nil {
		return nil, 0, err
	}
	dOut, err := c.Remove(qid)
	if err != nil {
		return nil, 0, err
	}
	return dep, dIn + dOut, nil
}

// Sonata is the baseline controller: compiling queries into the P4
// program means any query change reloads the pipeline, interrupting
// forwarding for the reload plus the time to restore the forwarding
// state (Fig. 10: ~7.5 s base, growing linearly to ~30 s at 60 K
// entries).
type Sonata struct {
	net *netsim.Network
	rng *rand.Rand
}

// Sonata reboot-model constants, calibrated against Fig. 10.
const (
	sonataReload      = 7500 * time.Millisecond
	sonataPerFwdEntry = 375 * time.Microsecond
	sonataJitter      = 0.05
)

// NewSonata builds the baseline controller.
func NewSonata(net *netsim.Network, seed int64) *Sonata {
	return &Sonata{net: net, rng: rand.New(rand.NewSource(seed))}
}

// UpdateQueries changes the query set on a switch the Sonata way: the
// switch reboots into the new P4 program and forwards nothing until the
// pipeline reloads and its fwdEntries forwarding rules are reinstalled.
// The outage is registered with the network simulator starting at the
// current virtual time, and its duration is returned.
func (s *Sonata) UpdateQueries(sw int, fwdEntries int) time.Duration {
	outage := sonataReload + time.Duration(fwdEntries)*sonataPerFwdEntry
	f := 1 - sonataJitter/2 + sonataJitter*s.rng.Float64()
	outage = time.Duration(float64(outage) * f)
	from := s.net.Clock()
	s.net.SetOutage(sw, from, from+uint64(outage))
	return outage
}
