// Package scheduler plans concurrent query admission — the open problem
// §7 of the paper leaves as future work ("this paper does not design the
// solution for scheduling concurrent queries to optimally utilize data
// plane resources").
//
// Given a set of prioritized monitoring intents and one device's budget
// (stages, per-bank registers, per-module rule capacity), the scheduler
// compiles each query, then admits queries in priority order at the
// widest sketch geometry that still fits — degrading a query's register
// width (its accuracy) before rejecting it outright. The produced plan
// is sound by construction: Apply installs it into a real module engine
// and every admission succeeds.
package scheduler

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/sketch"
)

// Request is one query the operator wants deployed.
type Request struct {
	Query    *query.Query
	Priority int // higher admits first

	// MinWidth and MaxWidth bound the acceptable register width per
	// sketch row (accuracy ladder). Zero values default to 256 and 4096.
	MinWidth, MaxWidth uint32
}

// Budget is one device's resource envelope.
type Budget struct {
	// Stages is the module stage count of the pipeline.
	Stages int
	// ArraySize is each state bank's register count.
	ArraySize uint32
	// RulesPerModule is each module table's rule capacity.
	RulesPerModule int
	// ClassifierPreds caps the distinct (column, value, mask) predicates
	// the newton_init compiled classifier may hold. Per-dimension lookup
	// tables grow with distinct predicates, so admitting past this point
	// would push the classifier over its compile budget and drop the
	// whole device back to linear scans. Zero defaults to
	// DefaultClassifierPreds.
	ClassifierPreds int
}

// DefaultClassifierPreds bounds the classifier's predicate population
// comfortably below the compile budget for a 6-column table.
const DefaultClassifierPreds = 4096

// DefaultMinWidth and DefaultMaxWidth are the accuracy ladder's bounds
// when a request leaves them zero.
const (
	DefaultMinWidth uint32 = 256
	DefaultMaxWidth uint32 = 4096
)

// DefaultBudget mirrors the evaluation's device: 12 stages, 4096
// registers per bank, 256 rules per module.
func DefaultBudget() Budget {
	return Budget{Stages: 12, ArraySize: 4096, RulesPerModule: modules.DefaultRulesPerModule}
}

// Decision is the scheduler's verdict for one request.
type Decision struct {
	Request  Request
	Admitted bool
	Width    uint32 // granted register width (0 if rejected)
	Reason   string // why rejected or degraded
	Program  *modules.Program
	Stats    compiler.Stats
}

// bankKey identifies one state bank and one module table.
type bankKey struct{ stage, set int }
type tableKey struct {
	stage, set int
	kind       modules.Kind
}

// InitCapacity is the newton_init classifier's rule capacity under this
// budget — the same InitCapacityFactor multiple of a module table the
// engine's layout allocates, so the planner cannot drift from the
// allocator it mirrors.
func (b Budget) InitCapacity() int { return b.RulesPerModule * modules.InitCapacityFactor }

// ClassifierPredCap is the effective classifier predicate budget.
func (b Budget) ClassifierPredCap() int {
	if b.ClassifierPreds > 0 {
		return b.ClassifierPreds
	}
	return DefaultClassifierPreds
}

// WidthLadder is the accuracy ladder Plan walks for one request: MaxWidth
// first, then each power of two strictly between the bounds, then a
// final MinWidth attempt — so MinWidth is always tried even when it is
// not MaxWidth/2^k, and no rung except the caller-chosen bounds is a
// non-power-of-two width. Inverted bounds (MaxWidth < MinWidth) are
// rejected rather than silently producing an empty ladder.
func WidthLadder(minW, maxW uint32) ([]uint32, error) {
	if minW == 0 {
		minW = DefaultMinWidth
	}
	if maxW == 0 {
		maxW = DefaultMaxWidth
	}
	if maxW < minW {
		return nil, fmt.Errorf("scheduler: inverted width bounds (min %d > max %d)", minW, maxW)
	}
	ladder := []uint32{maxW}
	if maxW > 1 {
		// Largest power of two strictly below maxW.
		for w := uint32(1) << (bits.Len32(maxW-1) - 1); w > minW; w >>= 1 {
			ladder = append(ladder, w)
		}
	}
	if minW != maxW {
		ladder = append(ladder, minW)
	}
	return ladder, nil
}

// WidthForTarget walks the ladder in reverse: the narrowest row width
// whose Count-Min bound ε·N = (e/width)·N stays within maxRelErr·scale
// for the observed stream total. Scale is the query's decision scale —
// its report threshold when it has one, otherwise the stream total
// itself (zero scale defaults to streamTotal). This is how the refiner
// turns an intent-declared accuracy plus a measured N into a rung
// request, instead of always bidding for capacity.
func WidthForTarget(maxRelErr float64, streamTotal, scale uint64) (uint32, error) {
	if maxRelErr <= 0 || maxRelErr >= 1 {
		return 0, fmt.Errorf("scheduler: target relative error %g outside (0, 1)", maxRelErr)
	}
	if scale == 0 {
		scale = streamTotal
	}
	if streamTotal == 0 {
		return 1, nil // empty stream: any width meets any target
	}
	return sketch.CMSWidthFor(streamTotal, maxRelErr*float64(scale)), nil
}

// ClampToLadder snaps a requested width into [minW, maxW] (zero bounds
// defaulting like WidthLadder), preserving the request when it already
// lies inside.
func ClampToLadder(w, minW, maxW uint32) uint32 {
	if minW == 0 {
		minW = DefaultMinWidth
	}
	if maxW == 0 {
		maxW = DefaultMaxWidth
	}
	if w < minW {
		return minW
	}
	if w > maxW {
		return maxW
	}
	return w
}

// Tracker accumulates admitted programs' footprints against one
// device's budget — the per-switch admission state the network-wide
// orchestrator keeps one of per switch. The zero value is unusable;
// call NewTracker.
type Tracker struct {
	b         Budget
	regs      map[bankKey]uint32
	rules     map[tableKey]int
	initRules int
	preds     map[modules.InitPredKey]struct{}
}

// NewTracker starts empty accounting against b (zero-valued budgets
// default like Plan's).
func NewTracker(b Budget) *Tracker {
	if b.Stages <= 0 || b.ArraySize == 0 || b.RulesPerModule <= 0 {
		b = DefaultBudget()
	}
	return &Tracker{b: b, regs: map[bankKey]uint32{}, rules: map[tableKey]int{},
		preds: map[modules.InitPredKey]struct{}{}}
}

// Budget returns the tracker's device envelope.
func (t *Tracker) Budget() Budget { return t.b }

// Clone copies the tracker so a multi-switch admission can be checked
// tentatively and discarded on any switch's rejection.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{b: t.b, regs: make(map[bankKey]uint32, len(t.regs)),
		rules: make(map[tableKey]int, len(t.rules)), initRules: t.initRules,
		preds: make(map[modules.InitPredKey]struct{}, len(t.preds))}
	for k, v := range t.regs {
		c.regs[k] = v
	}
	for k, v := range t.rules {
		c.rules[k] = v
	}
	for k := range t.preds {
		c.preds[k] = struct{}{}
	}
	return c
}

// newPreds collects the program's classifier predicates the tracker has
// not yet accounted for.
func (t *Tracker) newPreds(p *modules.Program) map[modules.InitPredKey]struct{} {
	fresh := map[modules.InitPredKey]struct{}{}
	var buf []modules.InitPredKey
	for _, br := range p.Branches {
		buf = br.InitPreds(buf[:0])
		for _, k := range buf {
			if _, seen := t.preds[k]; !seen {
				fresh[k] = struct{}{}
			}
		}
	}
	return fresh
}

// Fits checks a compiled program against the remaining budget.
func (t *Tracker) Fits(p *modules.Program) (bool, string) {
	if s := p.NumStages(); s > t.b.Stages {
		return false, fmt.Sprintf("needs %d stages, device has %d", s, t.b.Stages)
	}
	wantRegs := map[bankKey]uint32{}
	wantRules := map[tableKey]int{}
	branches := 0
	for _, br := range p.Branches {
		branches++
		for _, op := range br.Ops {
			tk := tableKey{op.Stage, op.Set & 1, op.Kind}
			wantRules[tk]++
			if op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
				wantRegs[bankKey{op.Stage, op.Set & 1}] += op.Width()
			}
		}
	}
	for k, w := range wantRegs {
		if t.regs[k]+w > t.b.ArraySize {
			return false, fmt.Sprintf("state bank at stage %d set %d needs %d registers, %d free",
				k.stage, k.set, w, t.b.ArraySize-t.regs[k])
		}
	}
	for k, n := range wantRules {
		if t.rules[k]+n > t.b.RulesPerModule {
			return false, fmt.Sprintf("%v table at stage %d set %d out of rule capacity", k.kind, k.stage, k.set)
		}
	}
	if t.initRules+branches > t.b.InitCapacity() {
		return false, "newton_init out of rule capacity"
	}
	if fresh := t.newPreds(p); len(t.preds)+len(fresh) > t.b.ClassifierPredCap() {
		return false, fmt.Sprintf("newton_init classifier out of predicate capacity (%d + %d new > %d)",
			len(t.preds), len(fresh), t.b.ClassifierPredCap())
	}
	return true, ""
}

// Commit reserves a program's footprint.
func (t *Tracker) Commit(p *modules.Program) {
	for _, br := range p.Branches {
		for _, op := range br.Ops {
			t.rules[tableKey{op.Stage, op.Set & 1, op.Kind}]++
			if op.Kind == modules.ModS && op.S != nil && !op.S.PassThrough && !op.S.CrossRead {
				t.regs[bankKey{op.Stage, op.Set & 1}] += op.Width()
			}
		}
	}
	t.initRules += len(p.Branches)
	for k := range t.newPreds(p) {
		t.preds[k] = struct{}{}
	}
}

// Plan admits requests in priority order (ties broken by arrival order),
// degrading widths down the ladder before rejecting. The plan never
// overcommits: register and rule accounting mirrors the engine's
// allocator exactly.
func Plan(reqs []Request, b Budget) []Decision {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		return reqs[order[a]].Priority > reqs[order[c]].Priority
	})

	tracker := NewTracker(b)

	decisions := make([]Decision, len(reqs))
	qid := 1
	for _, idx := range order {
		req := reqs[idx]
		d := Decision{Request: req}
		ladder, lerr := WidthLadder(req.MinWidth, req.MaxWidth)
		if lerr != nil {
			d.Reason = lerr.Error()
			decisions[idx] = d
			continue
		}
		maxW := ladder[0]

		var lastErr string
		for _, w := range ladder {
			o := compiler.AllOpts()
			o.QID = qid
			o.Width = w
			p, err := compiler.Compile(req.Query, o)
			if err != nil {
				lastErr = err.Error()
				break // compilation failure does not improve with width
			}
			if fits, why := tracker.Fits(p); !fits {
				lastErr = why
				continue
			}
			tracker.Commit(p)
			d.Admitted = true
			d.Width = w
			d.Program = p
			d.Stats = compiler.Measure(req.Query, p)
			if w != maxW {
				d.Reason = fmt.Sprintf("degraded from %d to %d registers per row", maxW, w)
			}
			qid++
			break
		}
		if !d.Admitted {
			d.Reason = lastErr
			if d.Reason == "" {
				d.Reason = "does not fit at any acceptable width"
			}
		}
		decisions[idx] = d
	}
	return decisions
}

// Apply installs every admitted decision into an engine. The plan's
// accounting matches the engine's allocator, so Apply only fails if the
// engine diverges from the budget it was planned for.
func Apply(decisions []Decision, eng *modules.Engine) error {
	for i := range decisions {
		d := &decisions[i]
		if !d.Admitted {
			continue
		}
		if err := eng.Install(d.Program); err != nil {
			return fmt.Errorf("scheduler: plan unsound at %s: %w", d.Request.Query.Name, err)
		}
	}
	return nil
}

// Summary renders the plan for operators.
func Summary(decisions []Decision) string {
	s := ""
	for _, d := range decisions {
		status := "REJECTED"
		detail := d.Reason
		if d.Admitted {
			status = "admitted"
			detail = fmt.Sprintf("width=%d stages=%d rules=%d", d.Width, d.Stats.Stages, d.Stats.Rules)
			if d.Reason != "" {
				detail += " (" + d.Reason + ")"
			}
		}
		s += fmt.Sprintf("%-26s prio=%-3d %s  %s\n", d.Request.Query.Name, d.Request.Priority, status, detail)
	}
	return s
}
