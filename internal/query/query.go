// Package query defines Newton's intent language: Spark-style stream
// processing queries over packets, composed of the four primitives the
// paper supports on data planes — filter, map, distinct, and reduce —
// plus multi-branch queries whose per-branch results merge in the result
// process module (the worked example of Fig. 6).
package query

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/fields"
)

// PrimKind is the primitive's operator.
type PrimKind int

const (
	// KindFilter keeps only packets satisfying all predicates.
	KindFilter PrimKind = iota
	// KindMap projects the packet onto a set of operation keys.
	KindMap
	// KindDistinct passes only the first packet per distinct key per
	// window (Bloom-filter semantics on the data plane).
	KindDistinct
	// KindReduce folds a value per key per window (Count-Min semantics
	// on the data plane); the running result becomes the fold's value.
	KindReduce
	numPrimKinds
)

var primNames = [numPrimKinds]string{"filter", "map", "distinct", "reduce"}

// String names the primitive.
func (k PrimKind) String() string {
	if k >= 0 && k < numPrimKinds {
		return primNames[k]
	}
	return fmt.Sprintf("prim(%d)", int(k))
}

// Result is the pseudo-field predicates use to reference the running
// query result (the count produced by the last reduce/distinct) instead
// of a packet header field.
const Result fields.ID = 0xFE

// CmpOp is a predicate comparison.
type CmpOp int

// Predicate comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpGt
	CmpGe
	CmpLt
	CmpLe
	// CmpMaskEq matches (field & Mask) == Value, the ternary form.
	CmpMaskEq
)

var cmpNames = []string{"==", "!=", ">", ">=", "<", "<=", "&=="}

// String renders the operator.
func (op CmpOp) String() string {
	if int(op) < len(cmpNames) {
		return cmpNames[op]
	}
	return fmt.Sprintf("cmp(%d)", int(op))
}

// Predicate is one comparison in a filter.
type Predicate struct {
	Field fields.ID
	Op    CmpOp
	Value uint64
	Mask  uint64 // used by CmpMaskEq only
}

// Eval evaluates the predicate against a field value.
func (p Predicate) Eval(v uint64) bool {
	switch p.Op {
	case CmpEq:
		return v == p.Value
	case CmpNe:
		return v != p.Value
	case CmpGt:
		return v > p.Value
	case CmpGe:
		return v >= p.Value
	case CmpLt:
		return v < p.Value
	case CmpLe:
		return v <= p.Value
	case CmpMaskEq:
		return v&p.Mask == p.Value&p.Mask
	}
	return false
}

// OnResult reports whether the predicate references the running result
// rather than a packet field.
func (p Predicate) OnResult() bool { return p.Field == Result }

// String renders the predicate as query source would.
func (p Predicate) String() string {
	name := "result"
	if !p.OnResult() {
		name = p.Field.String()
	}
	if p.Op == CmpMaskEq {
		return fmt.Sprintf("%s&%#x==%#x", name, p.Mask, p.Value)
	}
	return fmt.Sprintf("%s%s%d", name, p.Op, p.Value)
}

// Convenience predicate constructors.

// Eq builds field == v.
func Eq(f fields.ID, v uint64) Predicate { return Predicate{Field: f, Op: CmpEq, Value: v} }

// Gt builds field > v.
func Gt(f fields.ID, v uint64) Predicate { return Predicate{Field: f, Op: CmpGt, Value: v} }

// Lt builds field < v.
func Lt(f fields.ID, v uint64) Predicate { return Predicate{Field: f, Op: CmpLt, Value: v} }

// MaskEq builds (field & mask) == v.
func MaskEq(f fields.ID, mask, v uint64) Predicate {
	return Predicate{Field: f, Op: CmpMaskEq, Mask: mask, Value: v}
}

// ValueOne is the sentinel reduce value meaning "count packets" (the
// constant 1 of Sonata's map(pkt => (key, 1))).
const ValueOne fields.ID = 0xFD

// Primitive is one step of a branch.
type Primitive struct {
	Kind PrimKind

	// Preds holds filter predicates (ANDed). Filter only.
	Preds []Predicate

	// Keys is the operation-key selection. Map/Distinct/Reduce.
	Keys fields.Mask

	// Value is what reduce folds: ValueOne to count packets, or a field
	// (e.g. PktLen to sum bytes). Reduce only.
	Value fields.ID
}

// String renders the primitive as query source would.
func (pr Primitive) String() string {
	switch pr.Kind {
	case KindFilter:
		s := ""
		for i, p := range pr.Preds {
			if i > 0 {
				s += " && "
			}
			s += p.String()
		}
		return "filter(" + s + ")"
	case KindMap:
		return "map" + pr.Keys.String()
	case KindDistinct:
		return "distinct" + pr.Keys.String()
	case KindReduce:
		v := "1"
		if pr.Value != ValueOne {
			v = pr.Value.String()
		}
		return fmt.Sprintf("reduce(keys=%s, f=sum(%s))", pr.Keys, v)
	}
	return "?"
}

// IsFrontFilter reports whether the primitive is a filter over only the
// 5-tuple and TCP flags — the class Opt.1 folds into newton_init.
func (pr Primitive) IsFrontFilter() bool {
	if pr.Kind != KindFilter {
		return false
	}
	for _, p := range pr.Preds {
		if p.OnResult() {
			return false
		}
		switch p.Field {
		case fields.SrcIP, fields.DstIP, fields.Proto, fields.SrcPort, fields.DstPort, fields.TCPFlags:
		default:
			return false
		}
		// newton_init is a ternary classifier: it can express equality
		// and masked equality, not ranges.
		if p.Op != CmpEq && p.Op != CmpMaskEq {
			return false
		}
	}
	return true
}

// Branch is one primitive chain. Multi-branch queries (Fig. 6) run
// several branches over (usually disjoint) traffic classes and merge
// their per-key results.
type Branch struct {
	Prims []Primitive
}

// StatefulKeys returns the key mask of the branch's last stateful
// primitive (what its per-key state is indexed by), or a zero mask.
func (b *Branch) StatefulKeys() fields.Mask {
	for i := len(b.Prims) - 1; i >= 0; i-- {
		if b.Prims[i].Kind == KindReduce || b.Prims[i].Kind == KindDistinct {
			return b.Prims[i].Keys
		}
	}
	return fields.Mask{}
}

// MergeOp combines branch results.
type MergeOp int

const (
	// MergeLinear computes Σ Coeffs[i]·result[i].
	MergeLinear MergeOp = iota
	// MergeMin computes min over branch results.
	MergeMin
)

// Merge specifies how a multi-branch query combines per-key branch
// results into the global result, and when that triggers a report.
type Merge struct {
	Op     MergeOp
	Coeffs []int64 // MergeLinear only; one per branch
	Cmp    CmpOp   // CmpGt or CmpLt against Threshold
	// Threshold triggers the report.
	Threshold int64
}

// Apply combines branch results (already aligned on a common key).
func (m *Merge) Apply(results []uint64) int64 {
	switch m.Op {
	case MergeMin:
		min := int64(1)<<62 - 1
		for _, r := range results {
			if int64(r) < min {
				min = int64(r)
			}
		}
		return min
	default:
		var g int64
		for i, r := range results {
			c := int64(1)
			if i < len(m.Coeffs) {
				c = m.Coeffs[i]
			}
			g += c * int64(r)
		}
		return g
	}
}

// Triggered reports whether the merged value crosses the threshold.
func (m *Merge) Triggered(g int64) bool {
	if m.Cmp == CmpLt {
		return g < m.Threshold
	}
	return g > m.Threshold
}

// Query is one monitoring intent: a set of branches over a shared window
// plus an optional merge.
type Query struct {
	Name        string
	Description string
	Window      time.Duration
	Branches    []Branch
	Merge       *Merge // required iff len(Branches) > 1
}

// NumPrimitives counts primitives across branches (the x-axis of
// Fig. 15a).
func (q *Query) NumPrimitives() int {
	n := 0
	for _, b := range q.Branches {
		n += len(b.Prims)
	}
	return n
}

// Threshold returns the query's report threshold: the merge threshold
// for multi-branch queries, or the value of the final filter(result > v)
// for single-branch ones (0 if none).
func (q *Query) Threshold() uint64 {
	if q.Merge != nil {
		return uint64(q.Merge.Threshold)
	}
	for _, b := range q.Branches {
		for i := len(b.Prims) - 1; i >= 0; i-- {
			pr := b.Prims[i]
			if pr.Kind == KindFilter {
				for _, p := range pr.Preds {
					if p.OnResult() && (p.Op == CmpGt || p.Op == CmpGe) {
						return p.Value
					}
				}
			}
		}
	}
	return 0
}

// ReportKeys returns the key mask reports carry: the stateful keys of
// the first branch (the monitored entity, e.g. the victim address).
func (q *Query) ReportKeys() fields.Mask {
	if len(q.Branches) == 0 {
		return fields.Mask{}
	}
	if k := q.Branches[0].StatefulKeys(); !k.IsZero() {
		return k
	}
	// Stateless query: report the keys of the last map, if any.
	for i := len(q.Branches[0].Prims) - 1; i >= 0; i-- {
		if q.Branches[0].Prims[i].Kind == KindMap {
			return q.Branches[0].Prims[i].Keys
		}
	}
	return fields.Mask{}
}

// Validate checks structural well-formedness.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("query: missing name")
	}
	if len(q.Branches) == 0 {
		return fmt.Errorf("query %s: no branches", q.Name)
	}
	if len(q.Branches) > 1 && q.Merge == nil {
		return fmt.Errorf("query %s: multi-branch query needs a merge", q.Name)
	}
	if q.Merge != nil && q.Merge.Op == MergeLinear && len(q.Merge.Coeffs) != len(q.Branches) {
		return fmt.Errorf("query %s: merge wants %d coefficients, has %d",
			q.Name, len(q.Branches), len(q.Merge.Coeffs))
	}
	if q.Window <= 0 {
		return fmt.Errorf("query %s: non-positive window", q.Name)
	}
	for bi, b := range q.Branches {
		if len(b.Prims) == 0 {
			return fmt.Errorf("query %s: branch %d empty", q.Name, bi)
		}
		seenStateful := false
		for pi, pr := range b.Prims {
			switch pr.Kind {
			case KindFilter:
				if len(pr.Preds) == 0 {
					return fmt.Errorf("query %s: branch %d prim %d: empty filter", q.Name, bi, pi)
				}
				for _, p := range pr.Preds {
					if p.OnResult() && !seenStateful {
						return fmt.Errorf("query %s: branch %d prim %d: result predicate before any stateful primitive", q.Name, bi, pi)
					}
				}
			case KindMap:
				if pr.Keys.IsZero() {
					return fmt.Errorf("query %s: branch %d prim %d: map selects nothing", q.Name, bi, pi)
				}
			case KindDistinct, KindReduce:
				if pr.Keys.IsZero() {
					return fmt.Errorf("query %s: branch %d prim %d: %s without keys", q.Name, bi, pi, pr.Kind)
				}
				if pr.Kind == KindReduce && pr.Value != ValueOne && pr.Value >= fields.NumFields {
					return fmt.Errorf("query %s: branch %d prim %d: bad reduce value", q.Name, bi, pi)
				}
				seenStateful = true
			default:
				return fmt.Errorf("query %s: branch %d prim %d: unknown kind", q.Name, bi, pi)
			}
		}
	}
	return nil
}

// String renders the query in builder style.
func (q *Query) String() string {
	s := q.Name + ":"
	for bi, b := range q.Branches {
		if len(q.Branches) > 1 {
			s += fmt.Sprintf("\n  branch %d:", bi)
		}
		for _, pr := range b.Prims {
			s += "\n    ." + pr.String()
		}
	}
	if q.Merge != nil {
		s += fmt.Sprintf("\n  merge(op=%d, threshold=%d)", q.Merge.Op, q.Merge.Threshold)
	}
	return s
}
