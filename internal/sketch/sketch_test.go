package sketch

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func TestAlgoDeterministic(t *testing.T) {
	data := []byte("hello newton")
	for a := Algo(0); a < numAlgos; a++ {
		if a.Sum(data, 1) != a.Sum(data, 1) {
			t.Errorf("%v not deterministic", a)
		}
	}
}

func TestAlgoSeedIndependence(t *testing.T) {
	data := []byte("some key bytes")
	for a := Algo(0); a < numAlgos-1; a++ { // Identity ignores seeds by design? No: prefix changes it.
		if a == Identity {
			continue
		}
		if a.Sum(data, 1) == a.Sum(data, 2) {
			t.Errorf("%v: seeds 1 and 2 collide", a)
		}
	}
}

func TestAlgosDiffer(t *testing.T) {
	data := []byte("differentiate me")
	seen := map[uint32]Algo{}
	for a := Algo(0); a < Identity; a++ {
		h := a.Sum(data, 0)
		if prev, ok := seen[h]; ok {
			t.Errorf("%v and %v collide on %x", a, prev, h)
		}
		seen[h] = a
	}
}

func TestIdentityMode(t *testing.T) {
	// Direct mode: low 32 bits of the key pass through.
	b := []byte{0, 0, 0, 0, 0, 0, 0, 53}
	if got := Identity.Sum(b, 99); got != 53 {
		t.Errorf("Identity.Sum = %d, want 53", got)
	}
}

func TestAlgoString(t *testing.T) {
	if CRC32IEEE.String() != "crc32" || Identity.String() != "identity" {
		t.Error("algo names wrong")
	}
	if Algo(99).String() != "algo(99)" {
		t.Error("out-of-range algo name wrong")
	}
}

func TestFold(t *testing.T) {
	if Fold(0xFFFF, 256) != 0xFF {
		t.Error("power-of-two fold should mask")
	}
	if Fold(100, 7) != 100%7 {
		t.Error("non-power-of-two fold should mod")
	}
	f := func(h, r uint32) bool {
		if r == 0 {
			r = 1
		}
		return Fold(h, r) < r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fold(.,0) should panic")
		}
	}()
	Fold(1, 0)
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(3, 1024, CRC32IEEE)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(300))
		d := uint64(rng.Intn(10) + 1)
		truth[k] += d
		cm.Add(key(k), d)
	}
	for k, want := range truth {
		if got := cm.Estimate(key(k)); got < want {
			t.Fatalf("undercount for %d: got %d, want >= %d", k, got, want)
		}
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cm := NewCountMin(4, 1<<16, CRC32Castagnoli)
	for i := uint64(0); i < 50; i++ {
		cm.Add(key(i), i+1)
	}
	for i := uint64(0); i < 50; i++ {
		if got := cm.Estimate(key(i)); got != i+1 {
			t.Errorf("Estimate(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := cm.Estimate(key(9999)); got != 0 {
		t.Errorf("absent key estimate = %d, want 0 (sparse)", got)
	}
}

func TestCountMinAddReturnsEstimate(t *testing.T) {
	cm := NewCountMin(2, 256, FNV1a)
	if got := cm.Add(key(1), 5); got < 5 {
		t.Errorf("Add returned %d < 5", got)
	}
	if got := cm.Add(key(1), 5); got < 10 {
		t.Errorf("second Add returned %d < 10", got)
	}
}

func TestCountMinEpochReset(t *testing.T) {
	cm := NewCountMin(2, 256, CRC32IEEE)
	cm.Add(key(7), 100)
	cm.NextEpoch()
	if got := cm.Estimate(key(7)); got != 0 {
		t.Errorf("after NextEpoch estimate = %d, want 0", got)
	}
	cm.Add(key(7), 3)
	if got := cm.Estimate(key(7)); got != 3 {
		t.Errorf("fresh epoch estimate = %d, want 3", got)
	}
}

func TestCountMinWidthRounding(t *testing.T) {
	cm := NewCountMin(1, 1000, CRC32IEEE)
	if cm.Width() != 1024 {
		t.Errorf("Width = %d, want 1024", cm.Width())
	}
	if cm.MemoryBytes() != 1024*8 {
		t.Errorf("MemoryBytes = %d", cm.MemoryBytes())
	}
	eps, delta := cm.ErrorBound()
	if eps <= 0 || delta <= 0 || delta >= 1 {
		t.Errorf("bounds (%f, %f) implausible", eps, delta)
	}
}

func TestCountMinBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCountMin(0, 10, CRC32IEEE) },
		func() { NewCountMin(1, 0, CRC32IEEE) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			f()
		}()
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1<<14, 3, CRC32IEEE)
	for i := uint64(0); i < 2000; i++ {
		b.TestAndSet(key(i))
	}
	for i := uint64(0); i < 2000; i++ {
		if !b.Contains(key(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestBloomTestAndSetSemantics(t *testing.T) {
	b := NewBloom(1<<16, 4, CRC32Castagnoli)
	if b.TestAndSet(key(1)) {
		t.Error("fresh key reported as seen")
	}
	if !b.TestAndSet(key(1)) {
		t.Error("repeated key reported as unseen")
	}
}

func TestBloomFPRMatchesTheory(t *testing.T) {
	b := NewBloom(1<<12, 3, CRC32IEEE)
	n := 1000
	for i := 0; i < n; i++ {
		b.TestAndSet(key(uint64(i)))
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		if b.Contains(key(uint64(1_000_000 + i))) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	want := b.FalsePositiveRate(n)
	if got > want*2+0.01 {
		t.Errorf("empirical FPR %.4f far above theoretical %.4f", got, want)
	}
}

func TestBloomEpochReset(t *testing.T) {
	b := NewBloom(1<<10, 2, FNV1a)
	b.TestAndSet(key(5))
	b.NextEpoch()
	if b.Contains(key(5)) {
		t.Error("stale bit visible after NextEpoch")
	}
	if b.TestAndSet(key(5)) {
		t.Error("TestAndSet after reset reported seen")
	}
}

func TestBloomGeometry(t *testing.T) {
	b := NewBloom(100, 2, CRC32IEEE)
	if b.Bits() != 128 {
		t.Errorf("Bits = %d, want 128", b.Bits())
	}
	if b.Hashes() != 2 || b.MemoryBytes() != 16 {
		t.Errorf("geometry accessors wrong: %d %d", b.Hashes(), b.MemoryBytes())
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestBloomBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBloom(0,0) should panic")
		}
	}()
	NewBloom(0, 0, CRC32IEEE)
}

func TestNextPow2(t *testing.T) {
	cases := map[uint32]uint32{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCountMinAccuracyImprovesWithWidth(t *testing.T) {
	// The core of Figure 14's shape: bigger arrays, smaller error.
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 2000)
	truth := map[uint64]uint64{}
	for i := range keys {
		keys[i] = uint64(rng.Intn(500))
	}
	errAt := func(width uint32) (sum uint64) {
		cm := NewCountMin(3, width, CRC32IEEE)
		for k := range truth {
			delete(truth, k)
		}
		for _, k := range keys {
			truth[k]++
			cm.Add(key(k), 1)
		}
		for k, want := range truth {
			sum += cm.Estimate(key(k)) - want
		}
		return sum
	}
	small, large := errAt(256), errAt(4096)
	if small < large {
		t.Errorf("error did not shrink with width: %d (256) vs %d (4096)", small, large)
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(3, 4096, CRC32IEEE)
	var k [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i%1000))
		cm.Add(k[:], 1)
	}
}

func BenchmarkBloomTestAndSet(b *testing.B) {
	bl := NewBloom(1<<16, 3, CRC32Castagnoli)
	var k [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i%1000))
		bl.TestAndSet(k[:])
	}
}

func ExampleCountMin() {
	cm := NewCountMin(3, 1024, CRC32IEEE)
	cm.Add([]byte("10.0.0.1"), 2)
	cm.Add([]byte("10.0.0.1"), 3)
	fmt.Println(cm.Estimate([]byte("10.0.0.1")))
	// Output: 5
}

func TestSeedVariantsAreDecorrelated(t *testing.T) {
	// Regression test for a real bug: CRC32 is linear, so prefix-seeded
	// variants differed only by a constant XOR and multi-row sketches
	// had perfectly correlated collisions. With the finalizer, two keys
	// colliding under one seed must usually NOT collide under another.
	const (
		n     = 5000
		rng32 = 1 << 12
	)
	var both, first int
	for i := 0; i < n; i++ {
		a, b := key(uint64(i)), key(uint64(i+1_000_000))
		h0a := Fold(CRC32IEEE.Sum(a, 1), rng32)
		h0b := Fold(CRC32IEEE.Sum(b, 1), rng32)
		if h0a != h0b {
			continue
		}
		first++
		h1a := Fold(CRC32IEEE.Sum(a, 2), rng32)
		h1b := Fold(CRC32IEEE.Sum(b, 2), rng32)
		if h1a == h1b {
			both++
		}
	}
	// With independent rows, P(second collision | first) ~ 1/4096; with
	// the linear-CRC bug it was 1.
	if first > 0 && both > first/10 {
		t.Errorf("%d/%d first-row collisions repeat in the second row; rows correlated", both, first)
	}
}
