package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/newton-net/newton/internal/experiments"
)

// runRefine drives the closed-loop adaptive-accuracy demo: one
// accuracy-declared intent under a calm -> surge -> calm Zipf SYN
// workload, with the refiner walking the width ladder from the
// analyzer's per-epoch error bounds. It prints the per-round
// target-vs-observed trajectory, each resize decision, and the
// memory spent relative to static worst-case provisioning.
func runRefine(args []string) {
	fs := flag.NewFlagSet("refine", flag.ExitOnError)
	var (
		seed     = fs.Int64("seed", 1, "workload seed")
		switches = fs.Int("switches", 3, "linear fleet size")
		rounds   = fs.Int("rounds", 12, "rounds per phase (x3 phases)")
		within   = fs.Int("within", 6, "convergence budget in rounds after each phase shift")
		target   = fs.Float64("target", 0.25, "intent's target relative error")
		calm     = fs.Int("calm", 2000, "SYN packets per calm round")
		surge    = fs.Int("surge", 12000, "SYN packets per surge round")
		minW     = fs.Uint("min-width", 256, "narrowest ladder rung")
		maxW     = fs.Uint("max-width", 8192, "widest ladder rung (= static worst-case)")
	)
	fs.Parse(args)

	res := experiments.Adaptive(experiments.AdaptiveConfig{
		Seed: *seed, Switches: *switches, RoundsPerPhase: *rounds,
		ConvergeWithin: *within, TargetRelErr: *target,
		CalmPackets: *calm, SurgePackets: *surge,
		MinWidth: uint32(*minW), MaxWidth: uint32(*maxW),
	})
	fmt.Print(res)
	if !res.Passed() {
		log.SetFlags(0)
		log.Println("newton-ctl refine: closed-loop properties violated")
		os.Exit(1)
	}
}
