package orchestrator

import (
	"sync/atomic"

	"github.com/newton-net/newton/internal/obs"
)

// orchObs counts the orchestrator's planning and apply activity. The
// zero value counts silently; RegisterObs makes it visible.
type orchObs struct {
	plans      uint64
	admissions uint64
	rejections uint64
	deltas     uint64
	resizes    uint64
}

func (o *orchObs) inc(p *uint64) { atomic.AddUint64(p, 1) }

// RegisterObs exposes plan/admission/rejection/delta counters in reg.
func (o *Orchestrator) RegisterObs(reg *obs.Registry) {
	load := func(p *uint64) func() uint64 {
		return func() uint64 { return atomic.LoadUint64(p) }
	}
	reg.CounterFunc("newton_orch_plans_total",
		"Network-wide plan recomputations.", load(&o.obs.plans))
	reg.CounterFunc("newton_orch_admissions_total",
		"Per-plan intent admissions.", load(&o.obs.admissions))
	reg.CounterFunc("newton_orch_rejections_total",
		"Per-plan intent rejections.", load(&o.obs.rejections))
	reg.CounterFunc("newton_orch_deltas_applied_total",
		"Deployment deltas committed by Apply.", load(&o.obs.deltas))
	reg.CounterFunc("newton_orch_resizes_total",
		"In-place width resizes committed by Apply.", load(&o.obs.resizes))
}
