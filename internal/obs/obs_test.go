package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	counts, count, sum := h.Snapshot()
	want := []uint64{2, 2, 0, 1} // ≤10: {5,10}; ≤100: {11,100}; ≤1000: none; +Inf: {5000}
	if len(counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, counts[i], want[i], counts)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 5+10+11+100+5000 {
		t.Fatalf("sum = %d, want %d", sum, 5+10+11+100+5000)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(250, 4, 4)
	want := []uint64{250, 1000, 4000, 16000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if n := len(DefLatencyBuckets()); n != 12 {
		t.Fatalf("DefLatencyBuckets len = %d, want 12", n)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("newton_test_total", "help", L("sw", "s1"))
	c2 := reg.Counter("newton_test_total", "help", L("sw", "s1"))
	if c1 != c2 {
		t.Fatal("same (name, labels) should return the same counter")
	}
	c3 := reg.Counter("newton_test_total", "help", L("sw", "s2"))
	if c1 == c3 {
		t.Fatal("different labels should return a distinct counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("newton_mixed", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge should panic")
		}
	}()
	reg.Gauge("newton_mixed", "help")
}

func TestRegistryLabelKeyMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("newton_labeled", "help", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different label keys should panic")
		}
	}()
	reg.Gauge("newton_labeled", "help", L("b", "1"))
}

func TestRegistryRemove(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("newton_query_stages", "", L("qid", "1"))
	reg.Gauge("newton_query_stages", "", L("qid", "2"))
	if !reg.Remove("newton_query_stages", L("qid", "1")) {
		t.Fatal("Remove of existing series returned false")
	}
	if reg.Remove("newton_query_stages", L("qid", "1")) {
		t.Fatal("second Remove of same series returned true")
	}
	if reg.Remove("newton_absent", L("qid", "1")) {
		t.Fatal("Remove on unknown family returned true")
	}
	snap := reg.Snapshot()
	f := snap.Get("newton_query_stages")
	if f == nil || len(f.Series) != 1 {
		t.Fatalf("after Remove, family = %+v, want 1 series", f)
	}
	if f.Series[0].Labels["qid"] != "2" {
		t.Fatalf("surviving series labels = %v, want qid=2", f.Series[0].Labels)
	}
}

func TestCallbackSeries(t *testing.T) {
	reg := NewRegistry()
	n := uint64(7)
	reg.CounterFunc("newton_cb_total", "", func() uint64 { return n })
	reg.GaugeFunc("newton_cb_depth", "", func() float64 { return 2.5 })
	snap := reg.Snapshot()
	if s := snap.Find("newton_cb_total"); s == nil || s.Value != 7 {
		t.Fatalf("counter func series = %+v, want 7", s)
	}
	n = 9
	snap = reg.Snapshot()
	if s := snap.Find("newton_cb_total"); s == nil || s.Value != 9 {
		t.Fatalf("counter func should be read at scrape time, got %+v", s)
	}
	if s := snap.Find("newton_cb_depth"); s == nil || s.Value != 2.5 {
		t.Fatalf("gauge func series = %+v, want 2.5", s)
	}
	// Re-registering a callback rebinds the closure (reattach semantics).
	reg.CounterFunc("newton_cb_total", "", func() uint64 { return 100 })
	snap = reg.Snapshot()
	if s := snap.Find("newton_cb_total"); s == nil || s.Value != 100 {
		t.Fatalf("rebound callback series = %+v, want 100", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("newton_pkts_total", "Packets processed.", L("switch", "s1")).Add(12)
	reg.Gauge("newton_ring_depth", "Ring occupancy.").Set(3)
	h := reg.Histogram("newton_exec_ns", "Execution time.", []uint64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	reg.Gauge("newton_esc", "", L("q", `a"b\c`)).Set(1)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP newton_pkts_total Packets processed.",
		"# TYPE newton_pkts_total counter",
		`newton_pkts_total{switch="s1"} 12`,
		"# TYPE newton_ring_depth gauge",
		"newton_ring_depth 3",
		"# TYPE newton_exec_ns histogram",
		`newton_exec_ns_bucket{le="100"} 1`,
		`newton_exec_ns_bucket{le="1000"} 2`,
		`newton_exec_ns_bucket{le="+Inf"} 3`,
		"newton_exec_ns_sum 5550",
		"newton_exec_ns_count 3",
		`newton_esc{q="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out name-sorted.
	if strings.Index(out, "newton_esc") > strings.Index(out, "newton_pkts_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("newton_a_total", "help", L("k", "v")).Add(4)
	reg.Histogram("newton_h_ns", "", []uint64{10}).Observe(3)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("JSON snapshot does not round-trip: %v\n%s", err, b.String())
	}
	if s := snap.Find("newton_a_total", L("k", "v")); s == nil || s.Value != 4 {
		t.Fatalf("round-tripped counter = %+v, want 4", s)
	}
	h := snap.Find("newton_h_ns")
	if h == nil || h.Count != 1 || h.Sum != 3 || len(h.Buckets) != 1 || h.Buckets[0].Count != 1 {
		t.Fatalf("round-tripped histogram = %+v", h)
	}
}

func TestWritePathsAllocFree(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefLatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.Add(-1)
		h.Observe(777)
	}); n != 0 {
		t.Fatalf("instrument write paths allocate: %v allocs/op", n)
	}
}

func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("newton_race_total", "")
	h := reg.Histogram("newton_race_ns", "", DefLatencyBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(uint64(j))
				if j%100 == 0 {
					reg.Gauge("newton_race_g", "", L("i", fmt.Sprint(i))).Set(int64(j))
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = reg.Snapshot()
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != 8000 {
		t.Fatalf("racy counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("racy histogram count = %d, want 8000", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("newton_http_total", "").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "newton_http_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		body, ctype = get(path)
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s is not a JSON snapshot: %v", path, err)
		}
		if s := snap.Find("newton_http_total"); s == nil || s.Value != 5 {
			t.Fatalf("%s snapshot missing counter: %+v", path, s)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("%s content type = %q", path, ctype)
		}
	}
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", body)
	}
}
