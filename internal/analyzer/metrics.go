package analyzer

import (
	"sort"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
)

// Collector gathers the reports switches mirror up and reduces them to
// the per-window flagged-key sets experiments compare against ground
// truth. Reports for the same (window, key) from multiple switches (or
// repeated threshold crossings) deduplicate, mirroring how the software
// analyzer consolidates mirrored messages.
type Collector struct {
	window  uint64
	keyMask fields.Mask

	Raw     int // raw mirrored messages (the monitoring-overhead numerator)
	flagged map[uint64]map[uint64]bool
}

// NewCollector builds a collector for queries with the given window and
// report-key mask.
func NewCollector(window uint64, keyMask fields.Mask) *Collector {
	return &Collector{window: window, keyMask: keyMask, flagged: map[uint64]map[uint64]bool{}}
}

// Add ingests one mirrored report.
func (c *Collector) Add(r dataplane.Report) {
	c.Raw++
	w := r.TS / c.window
	key := singleKeyValue(c.keyMask, &r.Keys)
	if c.flagged[w] == nil {
		c.flagged[w] = map[uint64]bool{}
	}
	c.flagged[w][key] = true
}

// AddAll ingests a batch of reports.
func (c *Collector) AddAll(rs []dataplane.Report) {
	for _, r := range rs {
		c.Add(r)
	}
}

// FlaggedKeys returns the distinct keys flagged in any window.
func (c *Collector) FlaggedKeys() map[uint64]bool {
	out := map[uint64]bool{}
	for _, m := range c.flagged {
		for k := range m {
			out[k] = true
		}
	}
	return out
}

// Windows returns the window indices with at least one flagged key, in
// order.
func (c *Collector) Windows() []uint64 {
	var ws []uint64
	for w := range c.flagged {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

// FlaggedIn returns the keys flagged in window w.
func (c *Collector) FlaggedIn(w uint64) map[uint64]bool { return c.flagged[w] }

// Accuracy quantifies detection quality against ground truth: the recall
// over true keys ("accuracy" in Fig. 14) and the false-positive rate
// over reported keys.
type Accuracy struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Compare scores a detected key set against the ground-truth key set.
func Compare(detected, truth map[uint64]bool) Accuracy {
	var a Accuracy
	for k := range truth {
		if detected[k] {
			a.TruePositives++
		} else {
			a.FalseNegatives++
		}
	}
	for k := range detected {
		if !truth[k] {
			a.FalsePositives++
		}
	}
	return a
}

// Recall is TP / (TP + FN) — the "accuracy" axis of Fig. 14.
func (a Accuracy) Recall() float64 {
	d := a.TruePositives + a.FalseNegatives
	if d == 0 {
		return 1
	}
	return float64(a.TruePositives) / float64(d)
}

// FPR is FP / (FP + TP) — the fraction of reported keys that are wrong,
// the error axis of Fig. 14.
func (a Accuracy) FPR() float64 {
	d := a.FalsePositives + a.TruePositives
	if d == 0 {
		return 0
	}
	return float64(a.FalsePositives) / float64(d)
}

// F1 is the harmonic mean of precision and recall.
func (a Accuracy) F1() float64 {
	p := 1 - a.FPR()
	r := a.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
