package dataplane

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/newton-net/newton/internal/packet"
)

type namedAction string

func (a namedAction) ActionName() string { return string(a) }

func TestTableExactMatch(t *testing.T) {
	tb := NewTable("t", MatchExact, 2, 10)
	id, err := tb.AddRule([]uint64{5, 6}, nil, 0, namedAction("a"))
	if err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	if r := tb.Lookup(5, 6); r == nil || r.ID != id {
		t.Fatal("exact lookup missed")
	}
	if tb.Lookup(5, 7) != nil {
		t.Fatal("exact lookup matched wrong value")
	}
}

func TestTableTernaryPriority(t *testing.T) {
	tb := NewTable("t", MatchTernary, 1, 10)
	lo, _ := tb.AddRule([]uint64{0}, []uint64{0}, 1, namedAction("wildcard"))
	hi, _ := tb.AddRule([]uint64{53}, []uint64{0xFFFF}, 10, namedAction("dns"))
	if r := tb.Lookup(53); r.ID != hi {
		t.Error("high-priority specific rule should win")
	}
	if r := tb.Lookup(99); r.ID != lo {
		t.Error("wildcard should catch the rest")
	}
}

func TestTableTernaryTieBreakByInsertion(t *testing.T) {
	tb := NewTable("t", MatchTernary, 1, 10)
	first, _ := tb.AddRule([]uint64{0}, []uint64{0}, 5, namedAction("first"))
	tb.AddRule([]uint64{0}, []uint64{0}, 5, namedAction("second"))
	if r := tb.Lookup(1); r.ID != first {
		t.Error("equal priority should fall to earliest-installed rule")
	}
}

func TestTableLPM(t *testing.T) {
	tb := NewTable("t", MatchLPM, 1, 10)
	ip := uint64(packet.IPv4Addr("10.1.2.3"))
	w16, _ := tb.AddRule([]uint64{uint64(packet.IPv4Addr("10.1.0.0"))}, []uint64{0xFFFF0000}, 0, namedAction("/16"))
	w24, _ := tb.AddRule([]uint64{uint64(packet.IPv4Addr("10.1.2.0"))}, []uint64{0xFFFFFF00}, 0, namedAction("/24"))
	if r := tb.Lookup(ip); r.ID != w24 {
		t.Error("LPM should pick the /24")
	}
	if r := tb.Lookup(uint64(packet.IPv4Addr("10.1.9.9"))); r.ID != w16 {
		t.Error("LPM should fall back to the /16")
	}
	if tb.Lookup(uint64(packet.IPv4Addr("192.0.2.1"))) != nil {
		t.Error("LPM matched unrelated address")
	}
}

func TestTableRuntimeRemove(t *testing.T) {
	tb := NewTable("t", MatchExact, 1, 10)
	id, _ := tb.AddRule([]uint64{1}, nil, 0, namedAction("x"))
	if err := tb.RemoveRule(id); err != nil {
		t.Fatalf("RemoveRule: %v", err)
	}
	if tb.Lookup(1) != nil {
		t.Error("removed rule still matches")
	}
	if err := tb.RemoveRule(id); err == nil {
		t.Error("double remove should fail")
	}
	if tb.Entries() != 0 {
		t.Errorf("Entries = %d", tb.Entries())
	}
}

func TestTableCapacity(t *testing.T) {
	tb := NewTable("t", MatchExact, 1, 2)
	tb.AddRule([]uint64{1}, nil, 0, namedAction("a"))
	tb.AddRule([]uint64{2}, nil, 0, namedAction("b"))
	if _, err := tb.AddRule([]uint64{3}, nil, 0, namedAction("c")); err == nil {
		t.Error("over-capacity insert should fail")
	}
}

func TestTableArityErrors(t *testing.T) {
	tb := NewTable("t", MatchExact, 2, 10)
	if _, err := tb.AddRule([]uint64{1}, nil, 0, namedAction("a")); err == nil {
		t.Error("wrong value arity accepted")
	}
	if _, err := tb.AddRule([]uint64{1, 2}, []uint64{1}, 0, namedAction("a")); err == nil {
		t.Error("wrong mask arity accepted")
	}
	if _, err := tb.AddRule([]uint64{1, 2}, []uint64{1, ^uint64(0)}, 0, namedAction("a")); err == nil {
		t.Error("partial mask accepted by exact table")
	}
}

func TestTableClear(t *testing.T) {
	tb := NewTable("t", MatchExact, 1, 10)
	tb.AddRule([]uint64{1}, nil, 0, namedAction("a"))
	tb.Clear()
	if tb.Entries() != 0 || tb.Lookup(1) != nil {
		t.Error("Clear left state")
	}
}

func TestTableLookupArityPanics(t *testing.T) {
	tb := NewTable("t", MatchExact, 2, 10)
	defer func() {
		if recover() == nil {
			t.Error("bad lookup arity should panic")
		}
	}()
	tb.Lookup(1)
}

func TestTernarySemanticsQuick(t *testing.T) {
	// A ternary rule matches iff (val & mask) == (ruleVal & mask).
	f := func(val, ruleVal, mask uint64) bool {
		tb := NewTable("t", MatchTernary, 1, 4)
		tb.AddRule([]uint64{ruleVal}, []uint64{mask}, 0, namedAction("r"))
		got := tb.Lookup(val) != nil
		want := val&mask == ruleVal&mask
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterSALUOps(t *testing.T) {
	ra := NewRegisterArray("r", 8)
	if got := ra.Exec(OpRead, 0, 0); got != 0 {
		t.Errorf("fresh read = %d", got)
	}
	if got := ra.Exec(OpWrite, 0, 42); got != 42 {
		t.Errorf("write returned %d", got)
	}
	if got := ra.Exec(OpAdd, 0, 8); got != 50 {
		t.Errorf("add returned %d, want 50", got)
	}
	if got := ra.Exec(OpOr, 1, 0b10); got != 0 {
		t.Errorf("or should return old value, got %d", got)
	}
	if got := ra.Exec(OpRead, 1, 0); got != 0b10 {
		t.Errorf("or did not store, read %d", got)
	}
}

func TestRegisterEpochReset(t *testing.T) {
	ra := NewRegisterArray("r", 4)
	ra.Exec(OpAdd, 2, 100)
	ra.NextEpoch()
	if got := ra.Exec(OpRead, 2, 0); got != 0 {
		t.Errorf("stale value after epoch: %d", got)
	}
	if got := ra.Exec(OpAdd, 2, 1); got != 1 {
		t.Errorf("add in fresh epoch = %d, want 1", got)
	}
	if ra.Epoch() != 1 {
		t.Errorf("Epoch = %d", ra.Epoch())
	}
}

func TestRegisterOutOfRangePanics(t *testing.T) {
	ra := NewRegisterArray("r", 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	ra.Exec(OpRead, 4, 0)
}

func TestRegisterGeometry(t *testing.T) {
	ra := NewRegisterArray("r", 256)
	if ra.Size() != 256 || ra.MemoryBytes() != 1024 {
		t.Errorf("geometry wrong: %d %d", ra.Size(), ra.MemoryBytes())
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{Crossbar: 1, SRAM: 2}
	b := Resources{Crossbar: 3, TCAM: 1}
	a.Add(b)
	if a[Crossbar] != 4 || a[SRAM] != 2 || a[TCAM] != 1 {
		t.Errorf("Add wrong: %v", a)
	}
	if !a.Fits(Resources{Crossbar: 4, SRAM: 2, TCAM: 1}) {
		t.Error("Fits should accept equality")
	}
	if a.Fits(Resources{Crossbar: 3.9, SRAM: 2, TCAM: 1}) {
		t.Error("Fits should reject overflow")
	}
	u := a.Utilization(Resources{Crossbar: 8, SRAM: 4, TCAM: 2, VLIW: 10})
	if u[Crossbar] != 0.5 || u[SRAM] != 0.5 || u[VLIW] != 0 {
		t.Errorf("Utilization wrong: %v", u)
	}
	s := a.Scale(2)
	if s[Crossbar] != 8 {
		t.Errorf("Scale wrong: %v", s)
	}
	d := s.Sub(Resources{Crossbar: 100})
	if d[Crossbar] != 0 {
		t.Error("Sub should clamp at zero")
	}
}

func TestResourceNames(t *testing.T) {
	want := []string{"Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway"}
	for k := ResourceKind(0); k < NumResourceKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want[k])
		}
	}
}

func TestStagePlacement(t *testing.T) {
	p := NewPipeline(2, Resources{SRAM: 10, SALU: 2})
	s := p.Stages[0]
	tb := NewTable("m", MatchExact, 1, 16)
	if err := s.Place("m", Resources{SRAM: 6, SALU: 1}, tb, nil); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := s.Place("m2", Resources{SRAM: 6}, nil, nil); err == nil {
		t.Error("overflow placement accepted")
	}
	if err := s.Place("m3", Resources{SRAM: 4, SALU: 1}, nil, NewRegisterArray("ra", 8)); err != nil {
		t.Errorf("fitting placement rejected: %v", err)
	}
	if got := s.Used(); got[SRAM] != 10 || got[SALU] != 2 {
		t.Errorf("Used = %v", got)
	}
	if len(s.Tables()) != 1 || len(s.Arrays()) != 1 {
		t.Error("registration lost")
	}
	total := p.TotalUsed()
	if total[SRAM] != 10 {
		t.Errorf("TotalUsed = %v", total)
	}
}

func TestPipelineEpoch(t *testing.T) {
	p := NewPipeline(1, TofinoStageCapacity())
	ra := NewRegisterArray("ra", 4)
	p.Stages[0].Place("ra", Resources{}, nil, ra)
	ra.Exec(OpAdd, 0, 5)
	p.NextEpoch()
	if ra.Exec(OpRead, 0, 0) != 0 {
		t.Error("pipeline epoch did not propagate")
	}
}

type countingProgram struct{ n int }

func (cp *countingProgram) Execute(ctx *Context) {
	cp.n++
	if ctx.PHV.Fields.Get(0) == 0 && ctx.Pkt == nil {
		panic("context not populated")
	}
	ctx.Mirror(Report{QueryID: 7})
}

func testPacket(dst string) *packet.Packet {
	return &packet.Packet{
		TS: 100,
		IP: packet.IPv4{TTL: 64, Proto: packet.ProtoTCP,
			Src: packet.IPv4Addr("192.0.2.1"), Dst: packet.IPv4Addr(dst)},
		TCP: &packet.TCP{SrcPort: 1234, DstPort: 80, Flags: packet.FlagSYN},
	}
}

func TestSwitchForwarding(t *testing.T) {
	sw := NewSwitch("s1", 4, TofinoStageCapacity())
	sw.AddRoute(packet.IPv4Addr("10.0.0.0"), 8, 3)
	sw.AddRoute(packet.IPv4Addr("10.1.0.0"), 16, 5)

	if port, ok := sw.Process(testPacket("10.1.2.3")); !ok || port != 5 {
		t.Errorf("LPM route: port=%d ok=%v, want 5", port, ok)
	}
	if port, ok := sw.Process(testPacket("10.9.9.9")); !ok || port != 3 {
		t.Errorf("fallback route: port=%d ok=%v, want 3", port, ok)
	}
	if _, ok := sw.Process(testPacket("203.0.113.1")); ok {
		t.Error("unrouted packet forwarded")
	}
	c := sw.Counters()
	if c.Rx != 3 || c.Tx != 2 || c.Dropped != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSwitchDownDropsEverything(t *testing.T) {
	sw := NewSwitch("s1", 4, TofinoStageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.SetUp(false)
	if _, ok := sw.Process(testPacket("10.0.0.1")); ok {
		t.Error("down switch forwarded")
	}
	sw.SetUp(true)
	if _, ok := sw.Process(testPacket("10.0.0.1")); !ok {
		t.Error("recovered switch dropped")
	}
}

func TestSwitchMonitorAndReports(t *testing.T) {
	sw := NewSwitch("s1", 4, TofinoStageCapacity())
	sw.AddRoute(0, 0, 1)
	cp := &countingProgram{}
	sw.Monitor = cp
	for i := 0; i < 5; i++ {
		sw.Process(testPacket("10.0.0.1"))
	}
	if cp.n != 5 {
		t.Errorf("monitor ran %d times", cp.n)
	}
	if sw.PendingReports() != 5 {
		t.Errorf("pending = %d", sw.PendingReports())
	}
	reports := sw.DrainReports()
	if len(reports) != 5 || reports[0].SwitchID != "s1" || reports[0].QueryID != 7 || reports[0].TS != 100 {
		t.Errorf("reports wrong: %+v", reports[0])
	}
	if sw.PendingReports() != 0 {
		t.Error("drain did not clear")
	}
}

func TestMatchKindStrings(t *testing.T) {
	if MatchExact.String() != "exact" || MatchTernary.String() != "ternary" || MatchLPM.String() != "lpm" {
		t.Error("match kind names wrong")
	}
}

func TestSALUOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpOr.String() != "or" {
		t.Error("SALU op names wrong")
	}
}

func TestResourcesString(t *testing.T) {
	r := Resources{SRAM: 1.5}
	if r.String() != "{SRAM=1.5}" {
		t.Errorf("String = %q", r.String())
	}
	var zero Resources
	if zero.String() != "{}" {
		t.Errorf("zero String = %q", zero.String())
	}
}

func BenchmarkSwitchProcess(b *testing.B) {
	sw := NewSwitch("s1", 12, TofinoStageCapacity())
	for i := 0; i < 256; i++ {
		sw.AddRoute(uint32(i)<<24, 8, i%32)
	}
	pkts := make([]*packet.Packet, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range pkts {
		pkts[i] = testPacket(fmt.Sprintf("%d.0.0.1", rng.Intn(256)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(pkts[i%len(pkts)])
	}
}

func TestTableLookupAll(t *testing.T) {
	tb := NewTable("t", MatchTernary, 1, 10)
	hi, _ := tb.AddRule([]uint64{5}, []uint64{0xFF}, 10, namedAction("specific"))
	lo, _ := tb.AddRule([]uint64{0}, []uint64{0}, 1, namedAction("wildcard"))
	got := tb.LookupAll(5)
	if len(got) != 2 {
		t.Fatalf("LookupAll = %d rules, want 2 (chaining)", len(got))
	}
	if got[0].ID != hi || got[1].ID != lo {
		t.Error("LookupAll not in priority order")
	}
	if n := len(tb.LookupAll(9)); n != 1 {
		t.Errorf("wildcard-only match = %d rules", n)
	}
}

func TestTableLookupAllArityPanics(t *testing.T) {
	tb := NewTable("t", MatchExact, 2, 10)
	defer func() {
		if recover() == nil {
			t.Error("bad arity should panic")
		}
	}()
	tb.LookupAll(1)
}
