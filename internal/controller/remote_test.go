package controller

import (
	"net"
	"testing"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
)

// remoteFixture wires N agents to a Remote controller over in-memory
// pipes and returns the underlying switches for traffic injection.
func remoteFixture(t *testing.T, n int) (*Remote, []*dataplane.Switch) {
	t.Helper()
	agents := map[string]*rpc.Client{}
	var sws []*dataplane.Switch
	for i := 0; i < n; i++ {
		layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		eng := modules.NewEngine(layout)
		sw := dataplane.NewSwitch(string(rune('a'+i)), 16, modules.StageCapacity())
		sw.AddRoute(0, 0, 1)
		sw.Monitor = eng
		agent := rpc.NewAgent(sw, eng)
		server, client := net.Pipe()
		go agent.HandleConn(server)
		c := rpc.NewClient(client)
		t.Cleanup(func() { c.Close() })
		agents[sw.ID] = c
		sws = append(sws, sw)
	}
	return NewRemote(agents, 1), sws
}

func TestRemoteInstallCollectRemove(t *testing.T) {
	r, sws := remoteFixture(t, 2)
	qid, delay, err := r.Install(query.Q1(3), 1<<10, nil)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if delay <= 0 {
		t.Error("no modeled delay")
	}

	for i := 0; i < 10; i++ {
		for _, sw := range sws {
			sw.Process(&packet.Packet{
				TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
				TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
			})
		}
	}
	reports, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 { // one crossing per switch
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[0].Keys.Get(fields.DstIP) != 42 {
		t.Error("report keys lost over the wire")
	}

	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(qid); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(qid); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRemoteInstallRollsBackAcrossAgents(t *testing.T) {
	r, _ := remoteFixture(t, 2)
	// First install succeeds everywhere.
	if _, _, err := r.Install(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatal(err)
	}
	// Unknown agent mid-list: the whole install unwinds.
	if _, _, err := r.Install(query.Q4(40), 1<<10, []string{"a", "ghost"}); err == nil {
		t.Fatal("install to a ghost agent succeeded")
	}
	// The partially-installed query must be gone from agent "a": a fresh
	// install with the same next QID succeeds.
	if _, _, err := r.Install(query.Q4(40), 1<<10, []string{"a"}); err != nil {
		t.Fatalf("rollback left residue: %v", err)
	}
}

func TestRemoteTargetsSubset(t *testing.T) {
	r, sws := remoteFixture(t, 3)
	if _, _, err := r.Install(query.Q1(3), 1<<10, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for _, sw := range sws {
			sw.Process(&packet.Packet{
				TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
				TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
			})
		}
	}
	reports, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].SwitchID != "b" {
		t.Fatalf("subset targeting wrong: %+v", reports)
	}
}
