package telemetry

import (
	"fmt"
	"net"
	"sync"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
)

// ExporterConfig parameterizes a switch-side exporter.
type ExporterConfig struct {
	// SwitchID names the switch in hello frames and report provenance.
	SwitchID string
	// RingSize bounds the export queue in reports (default 4096).
	RingSize int
	// BatchSize caps reports per frame (default 256). Batching amortizes
	// the per-frame encode and syscall over many reports.
	BatchSize int
	// Policy picks the overflow behavior when the ring fills.
	Policy Policy
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	return c
}

// Exporter is the switch-side half of the telemetry plane: it accepts
// mirrored reports from the packet path, buffers them in a bounded
// ring, and pushes batched frames over a dedicated stream. A background
// writer goroutine owns the stream; the packet path only ever touches
// the ring, so a slow analyzer translates into ring pressure (block or
// drop-oldest, per policy), never into unbounded memory.
type Exporter struct {
	cfg  ExporterConfig
	conn net.Conn
	ring *ring

	writeMu sync.Mutex // serializes frames on the stream

	mu        sync.Mutex
	idle      *sync.Cond
	enqueued  uint64 // reports offered to Export
	exported  uint64 // reports written to the stream
	lost      uint64 // reports lost to stream errors or late Export calls
	batches   uint64
	snapshots uint64
	writeErr  error
	closed    bool
	writerEnd bool

	wg sync.WaitGroup
}

// NewExporter starts an exporter over an established connection (TCP to
// the analyzer, or one end of net.Pipe in tests). It sends the hello
// frame synchronously and launches the stream writer.
func NewExporter(conn net.Conn, cfg ExporterConfig) (*Exporter, error) {
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:  cfg,
		conn: conn,
		ring: newRing(cfg.RingSize, cfg.Policy),
	}
	e.idle = sync.NewCond(&e.mu)
	if err := rpc.WriteFrame(conn, &Frame{Type: FrameHello, SwitchID: cfg.SwitchID}); err != nil {
		return nil, fmt.Errorf("telemetry: hello: %w", err)
	}
	e.wg.Add(1)
	go e.writer()
	return e, nil
}

// Dial connects to an analyzer service and starts an exporter on the
// stream.
func Dial(addr string, cfg ExporterConfig) (*Exporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: dialing analyzer: %w", err)
	}
	e, err := NewExporter(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return e, nil
}

// Export offers mirrored reports to the stream. Under PolicyBlock it
// blocks while the ring is full (lossless backpressure); under
// PolicyDropOldest it always returns promptly, evicting the stalest
// queued reports and counting every loss.
func (e *Exporter) Export(rs []dataplane.Report) {
	if len(rs) == 0 {
		return
	}
	accepted := e.ring.put(rs)
	e.mu.Lock()
	e.enqueued += uint64(len(rs))
	e.lost += uint64(len(rs) - accepted)
	e.idle.Broadcast()
	e.mu.Unlock()
}

// writer drains the ring and pushes report frames until the ring closes
// and empties. After a stream error it keeps draining — counting the
// undeliverable reports as lost — so block-policy producers never
// deadlock on a dead analyzer.
func (e *Exporter) writer() {
	defer e.wg.Done()
	buf := make([]dataplane.Report, 0, e.cfg.BatchSize)
	for {
		batch := e.ring.drainUpTo(e.cfg.BatchSize, buf)
		if batch == nil {
			break
		}
		var err error
		e.mu.Lock()
		dead := e.writeErr != nil
		e.mu.Unlock()
		if !dead {
			err = e.writeFrame(&Frame{Type: FrameReports, SwitchID: e.cfg.SwitchID, Reports: batch})
		}
		e.mu.Lock()
		switch {
		case dead || err != nil:
			if err != nil && e.writeErr == nil {
				e.writeErr = err
			}
			e.lost += uint64(len(batch))
		default:
			e.exported += uint64(len(batch))
			e.batches++
		}
		e.idle.Broadcast()
		e.mu.Unlock()
	}
	e.mu.Lock()
	e.writerEnd = true
	e.idle.Broadcast()
	e.mu.Unlock()
}

func (e *Exporter) writeFrame(f *Frame) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return rpc.WriteFrame(e.conn, f)
}

// ExportSnapshot pushes an epoch-boundary state-bank snapshot frame.
// Snapshots bypass the report ring: they are epoch-rate (one frame per
// window), must not be dropped (the analyzer's merge is only correct
// over complete epochs), and are written synchronously so the caller's
// epoch roll orders after the capture.
func (e *Exporter) ExportSnapshot(epoch uint32, banks []modules.BankSnapshot) error {
	if err := e.writeFrame(&Frame{
		Type: FrameSnapshot, SwitchID: e.cfg.SwitchID, Epoch: epoch, Snapshots: banks,
	}); err != nil {
		e.mu.Lock()
		if e.writeErr == nil {
			e.writeErr = err
		}
		e.mu.Unlock()
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	e.mu.Lock()
	e.snapshots++
	e.mu.Unlock()
	return nil
}

// ExportEpoch snapshots every installed query's state banks on eng and
// pushes them tagged with the current (ending) epoch. Call immediately
// before rolling the epoch — rolled banks read as zero.
func (e *Exporter) ExportEpoch(eng *modules.Engine) error {
	banks := eng.SnapshotBanks()
	if len(banks) == 0 {
		return nil
	}
	return e.ExportSnapshot(eng.Layout().Epoch(), banks)
}

// AttachAgent wires the exporter into a control-channel agent: epoch
// ticks from the controller snapshot-and-push the ending window's banks
// before rolling, and the agent serves the exporter's counters on the
// control channel's export_stats request.
func (e *Exporter) AttachAgent(a *rpc.Agent, eng *modules.Engine) {
	a.OnEpoch = func() { _ = e.ExportEpoch(eng) }
	a.ExportStatsFn = e.Stats
}

// Flush blocks until everything offered to Export so far has been
// written to the stream or accounted as lost/dropped.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		dropped, _ := e.ring.stats()
		if e.exported+e.lost+dropped >= e.enqueued || e.writerEnd {
			return e.writeErr
		}
		e.idle.Wait()
	}
}

// Stats returns the exporter's counter snapshot. Dropped aggregates
// ring evictions and stream-error losses; a zero Dropped under
// PolicyBlock certifies lossless export.
func (e *Exporter) Stats() rpc.ExportStats {
	dropped, overflows := e.ring.stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	return rpc.ExportStats{
		Enqueued:  e.enqueued,
		Exported:  e.exported,
		Dropped:   dropped + e.lost,
		Overflows: overflows,
		Batches:   e.batches,
		Snapshots: e.snapshots,
	}
}

// Err returns the first stream error, if any.
func (e *Exporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeErr
}

// Close drains the ring (flushing every queued report), sends a bye
// frame with final counters, and closes the stream. Under PolicyBlock
// nothing offered before Close is lost unless the stream itself died.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	e.ring.close()
	e.wg.Wait() // writer drains all pending reports

	st := e.Stats()
	_ = e.writeFrame(&Frame{Type: FrameBye, SwitchID: e.cfg.SwitchID, Stats: &st})
	err := e.conn.Close()
	e.mu.Lock()
	werr := e.writeErr
	e.mu.Unlock()
	if werr != nil {
		return werr
	}
	return err
}
