package experiments

import (
	"runtime"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/netsim"
)

// TestShardedExperimentEquivalence is the paper-level equivalence guard
// for the sharded engine: the batch-delivered experiment tables (Fig 10
// interruption, Fig 13 CQE overhead, Fig 14 accuracy) must be
// byte-identical whether the networks run 1 or 4 delivery lanes —
// shared-bank CAS transactions make every windowed quantity
// permutation-invariant.
func TestShardedExperimentEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment comparison")
	}
	defer netsim.SetDefaultWorkers(0)

	// Fig 14 runs at a collision-free register size: every windowed count
	// is exact at any lane count, but when a CMS slot is shared by
	// colliding keys (the deliberately undersized 256/1024-register
	// points, where even the sequential run has FPR > 0), which colliding
	// key's packet observes the threshold crossing is interleaving-
	// dependent — true of any parallel delivery order. Collision-free
	// banks flag identical key sets.
	tables := func(workers int) []string {
		netsim.SetDefaultWorkers(workers)
		return []string{
			Fig10Interruption(500, 10, 5000).String(),
			Fig13CQEOverhead(3).String(),
			Fig14Accuracy([]uint32{4096}, 3).String(),
		}
	}
	names := []string{"fig10", "fig13", "fig14"}
	seq := tables(1)
	par := tables(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("%s diverges between 1 and 4 workers:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
				names[i], seq[i], par[i])
		}
	}
}

// TestThroughputScalingZeroAlloc asserts the scaling experiment's timed
// passes run allocation-free at every worker count — the satellite
// acceptance criterion "0 allocs/pkt at every worker count".
func TestThroughputScalingZeroAlloc(t *testing.T) {
	r := ThroughputScaling(500, 100*time.Millisecond, []int{1, 2, 4})
	for _, row := range r.Rows {
		if row.AllocsPerPkt != 0 {
			t.Errorf("workers=%d: %v allocs/pkt, want 0", row.Workers, row.AllocsPerPkt)
		}
	}
}

// TestWorkerScalingSmoke gates the parallel speedup: on hosts with at
// least 4 cores, 4 delivery lanes must clear 1.8x the single-lane
// packet rate. Single-core CI runners skip — there is no parallelism to
// measure.
func TestWorkerScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling measurement")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; scaling smoke needs >= 4", runtime.NumCPU())
	}
	r := ThroughputScaling(2000, 400*time.Millisecond, []int{1, 4})
	got := r.Rows[1].Speedup
	if got < 1.8 {
		t.Fatalf("4-worker speedup %.2fx, want >= 1.8x (1w: %.0f pkts/s, 4w: %.0f pkts/s)",
			got, r.Rows[0].PktsPerSec, r.Rows[1].PktsPerSec)
	}
}

// TestClassifierScaling asserts the compiled classifier beats the
// linear scan decisively once rule sets are non-trivial. The 10x
// acceptance threshold holds with wide margin at 4096 rules; the test
// uses 4x at 256 to stay robust on noisy CI hosts.
func TestClassifierScaling(t *testing.T) {
	r := ClassifierScaling([]int{256}, []int{1, 4}, 20000)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Speedup < 4 {
			t.Errorf("rules=%d workers=%d: speedup %.1fx, want >= 4x", row.Rules, row.Workers, row.Speedup)
		}
	}
	if r.Stats.Leaves == 0 || r.Stats.Bytes == 0 {
		t.Fatalf("compiled stats empty: %+v", r.Stats)
	}
	if r.String() == "" || len(r.Metrics()) == 0 {
		t.Fatal("result not renderable")
	}
}
