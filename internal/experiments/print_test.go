package experiments

import (
	"fmt"
	"testing"
)

func TestPrintSome(t *testing.T) {
	fmt.Println(Table3())
	fmt.Println(Fig15Compilation())
	fmt.Println(Fig16Multiplexing([]int{1, 10, 50, 100}))
	fmt.Println(Fig17Placement())
}
