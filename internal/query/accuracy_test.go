package query

import "testing"

func TestAccuracyValidate(t *testing.T) {
	cases := []struct {
		name string
		a    Accuracy
		ok   bool
	}{
		{"zero value", Accuracy{}, true},
		{"typical", Accuracy{MaxRelErr: 0.25}, true},
		{"with confidence", Accuracy{MaxRelErr: 0.1, Confidence: 0.99}, true},
		{"negative relerr", Accuracy{MaxRelErr: -0.1}, false},
		{"relerr at 1", Accuracy{MaxRelErr: 1}, false},
		{"confidence at 1", Accuracy{MaxRelErr: 0.1, Confidence: 1}, false},
		{"confidence without target", Accuracy{Confidence: 0.9}, false},
	}
	for _, c := range cases {
		if err := c.a.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAccuracyEnabledAndDefaults(t *testing.T) {
	var zero Accuracy
	if zero.Enabled() {
		t.Error("zero accuracy must not be enabled")
	}
	a := Accuracy{MaxRelErr: 0.2}
	if !a.Enabled() {
		t.Error("MaxRelErr > 0 must enable the intent")
	}
	if got := a.TargetConfidence(); got != DefaultConfidence {
		t.Errorf("TargetConfidence = %g, want default %g", got, DefaultConfidence)
	}
	// 95% confidence needs 3 rows (e^-3 = 0.0498 <= 0.05).
	if got := a.MinRows(); got != 3 {
		t.Errorf("MinRows at 95%% = %d, want 3", got)
	}
}

func TestAccuracyMetBy(t *testing.T) {
	a := Accuracy{MaxRelErr: 0.25, Confidence: 0.8}
	if !a.MetBy(0.2, 0.1) {
		t.Error("in-band (0.2, 0.1) must meet relerr<=0.25 @ 80%")
	}
	if a.MetBy(0.3, 0.1) {
		t.Error("relerr 0.3 must miss relerr<=0.25")
	}
	if a.MetBy(0.2, 0.3) {
		t.Error("delta 0.3 must miss 80% confidence")
	}
	var zero Accuracy
	if !zero.MetBy(0.9, 0.9) {
		t.Error("disabled accuracy is always met")
	}
}
