package telemetry_test

import (
	"net"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/sketch"
	"github.com/newton-net/newton/internal/telemetry"
)

func cmsBank(qid int, values ...uint32) modules.BankSnapshot {
	return modules.BankSnapshot{
		QueryID: qid, Kind: modules.BankCMSRow, Algo: sketch.CRC32IEEE, Range: 1 << 16,
		Width: uint32(len(values)), Values: values,
	}
}

// TestExporterReconnectsAndReplaysSnapshot is the agent-survives-analyzer-
// outage contract: an agent that loses its analyzer keeps monitoring,
// accounts every undeliverable report in its ExportStats, and when the
// analyzer comes back it resumes the push — opening with its latest
// epoch snapshot — without a restart.
func TestExporterReconnectsAndReplaysSnapshot(t *testing.T) {
	svc1 := telemetry.NewService(telemetry.ServiceConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc1.Serve(ln)
	addr := ln.Addr().String()

	exp, err := telemetry.Dial(addr, telemetry.ExporterConfig{
		SwitchID: "s1", Policy: telemetry.PolicyDropOldest,
		ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	exp.Export([]dataplane.Report{report(1, 10, 42)})
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := exp.ExportSnapshot(3, []modules.BankSnapshot{cmsBank(1, 1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first snapshot ingested", func() bool { return svc1.Stats().Snapshots == 1 })

	// Analyzer dies. The switch keeps producing: reports must not block
	// the packet path, and every loss must be accounted.
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "exporter notices dead stream", func() bool {
		exp.Export([]dataplane.Report{report(1, 20, 43)})
		exp.Flush()
		return exp.Stats().Dropped > 0
	})
	// The epoch roll during the outage can't be delivered, but it must
	// refresh the replay cache.
	if err := exp.ExportSnapshot(4, []modules.BankSnapshot{cmsBank(1, 5, 6, 7, 8)}); err == nil {
		t.Fatal("snapshot during outage reported success")
	}
	st := exp.Stats()
	if st.Enqueued != st.Exported+st.Dropped {
		t.Fatalf("loss not accounted: enqueued=%d exported=%d dropped=%d",
			st.Enqueued, st.Exported, st.Dropped)
	}

	// Analyzer returns at the same address.
	svc2 := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go svc2.Serve(ln2)

	// The exporter reconnects on its own and opens with the latest
	// cached snapshot (epoch 4, not the already-delivered epoch 3).
	waitFor(t, "snapshot replayed to new analyzer", func() bool { return svc2.Stats().Snapshots == 1 })
	if got := exp.Stats().Reconnects; got != 1 {
		t.Errorf("Reconnects = %d, want 1", got)
	}
	rows := svc2.MergedRows(1, 0, 4)
	if len(rows) != 1 || rows[0].Values[0] != 5 {
		t.Fatalf("replayed rows = %+v, want epoch-4 bank", rows)
	}

	// And the push resumes: fresh reports land at the new analyzer.
	dropped := exp.Stats().Dropped
	exp.Export([]dataplane.Report{report(1, 30, 44)})
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-reconnect report ingested", func() bool { return svc2.Stats().Reports == 1 })
	if d := exp.Stats().Dropped; d != dropped {
		t.Errorf("post-reconnect export dropped %d more reports", d-dropped)
	}
}

// TestPartialEpochNamesMissingSwitch: a merged (query, epoch) whose
// expected contributor set is not fully covered is flagged Partial with
// the missing switches named — it never poses as the network-wide view.
func TestPartialEpochNamesMissingSwitch(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	svc.SetExpected(1, []string{"a", "b"})

	expA := connect(t, svc, "a", telemetry.ExporterConfig{}, nil)
	defer expA.Close()
	if err := expA.ExportSnapshot(0, []modules.BankSnapshot{cmsBank(1, 9, 9)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a's snapshot merged", func() bool { return svc.Stats().Snapshots == 1 })

	partial, missing, merged := svc.EpochStatus(1, 0)
	if !partial || merged != 1 {
		t.Fatalf("EpochStatus = partial=%v merged=%d, want partial with 1 contribution", partial, merged)
	}
	if len(missing) != 1 || missing[0] != "b" {
		t.Fatalf("missing = %v, want [b]", missing)
	}
	rows := svc.MergedRows(1, 0, 0)
	if len(rows) != 1 || !rows[0].Partial {
		t.Fatalf("merged rows not flagged partial: %+v", rows)
	}
	if len(rows[0].Missing) != 1 || rows[0].Missing[0] != "b" {
		t.Fatalf("rows[0].Missing = %v, want [b]", rows[0].Missing)
	}

	// Once b contributes, the epoch is complete.
	expB := connect(t, svc, "b", telemetry.ExporterConfig{}, nil)
	defer expB.Close()
	if err := expB.ExportSnapshot(0, []modules.BankSnapshot{cmsBank(1, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b's snapshot merged", func() bool { return svc.Stats().Snapshots == 2 })
	if partial, missing, _ := svc.EpochStatus(1, 0); partial || len(missing) != 0 {
		t.Fatalf("complete epoch still partial (missing=%v)", missing)
	}
	if rows := svc.MergedRows(1, 0, 0); rows[0].Partial {
		t.Fatal("complete epoch rows still flagged partial")
	}
}

// TestEpochGapAndLivenessTracking: the service counts skipped snapshot
// epochs per agent and tracks stream liveness across a reconnect.
func TestEpochGapAndLivenessTracking(t *testing.T) {
	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()

	exp := connect(t, svc, "a", telemetry.ExporterConfig{}, nil)
	if err := exp.ExportSnapshot(1, []modules.BankSnapshot{cmsBank(1, 1)}); err != nil {
		t.Fatal(err)
	}
	// Epochs 2..4 never arrive (the exporter was down); 5 shows up.
	if err := exp.ExportSnapshot(5, []modules.BankSnapshot{cmsBank(1, 2)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshots merged", func() bool { return svc.Stats().Snapshots == 2 })
	if gaps := svc.Stats().EpochGaps; gaps != 3 {
		t.Errorf("EpochGaps = %d, want 3 (epochs 2,3,4)", gaps)
	}

	if _, connected, ok := svc.AgentLiveness("a"); !ok || !connected {
		t.Fatalf("liveness(a) = connected=%v ok=%v, want connected", connected, ok)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream down", func() bool {
		_, connected, ok := svc.AgentLiveness("a")
		return ok && !connected
	})

	// A second stream under the same switch ID is a reconnect.
	exp2 := connect(t, svc, "a", telemetry.ExporterConfig{}, nil)
	defer exp2.Close()
	waitFor(t, "stream back up", func() bool {
		_, connected, _ := svc.AgentLiveness("a")
		return connected
	})
	if rc := svc.Stats().Reconnects; rc != 1 {
		t.Errorf("service Reconnects = %d, want 1", rc)
	}
	if live := svc.Stats().LiveAgents; live != 1 {
		t.Errorf("LiveAgents = %d, want 1", live)
	}
}

// TestDetachOnCloseAndFailedConstruction (satellite): an exporter
// detaches its agent hooks on Close, and DialAttached never leaves a
// dead exporter wired into the agent's epoch path.
func TestDetachOnCloseAndFailedConstruction(t *testing.T) {
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	sw := dataplane.NewSwitch("s1", 4, modules.StageCapacity())
	agent := rpc.NewAgent(sw, eng)

	svc := telemetry.NewService(telemetry.ServiceConfig{})
	defer svc.Close()
	exp := connect(t, svc, "s1", telemetry.ExporterConfig{}, nil)
	exp.AttachAgent(agent, eng)
	if agent.OnEpoch == nil || agent.ExportStatsFn == nil {
		t.Fatal("AttachAgent did not set hooks")
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if agent.OnEpoch != nil || agent.ExportStatsFn != nil {
		t.Error("Close left telemetry hooks attached")
	}

	// A failed dial must leave the agent clean too.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	agent.SetTelemetryHooks(func() {}, nil)
	if _, err := telemetry.DialAttached(deadAddr, telemetry.ExporterConfig{SwitchID: "s1"}, agent, eng); err == nil {
		t.Fatal("DialAttached to a dead address succeeded")
	}
	if agent.OnEpoch != nil {
		t.Error("failed DialAttached left stale hooks attached")
	}
}
