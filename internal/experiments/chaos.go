package experiments

import (
	"fmt"
	"net"
	"time"

	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/faults"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// ChaosConfig parameterizes the fault-recovery experiment.
type ChaosConfig struct {
	// Seed drives the trace, the fault injectors, and the client retry
	// jitter — the whole run is reproducible from it (default 1).
	Seed int64
	// Flows sizes the background traffic (default 800).
	Flows int
	// Duration is the trace length (default 300ms — three windows).
	Duration time.Duration
	// ResetProb is the per-I/O probability of an injected connection
	// reset on every control channel (default 0.05).
	ResetProb float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Flows == 0 {
		c.Flows = 800
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.ResetProb == 0 {
		c.ResetProb = 0.05
	}
	return c
}

// ChaosResult is the outcome of one chaos run: the report count of a
// fault-free reference, the count under injected resets plus an agent
// kill+restart, and the recovery bookkeeping.
type ChaosResult struct {
	Seed          int64
	Baseline      int     // reports collected fault-free
	WithFaults    int     // reports collected under faults + restart
	RecoveredPct  float64 // WithFaults / Baseline
	Resets        uint64  // injected connection resets
	Retries       uint64  // client call retries
	Redials       uint64  // client reconnects
	ReinstalledOK bool    // restarted agent converged back to the deploy
}

// chaosNet is one controller-over-TCP deployment of a 3-switch line.
type chaosNet struct {
	net     *netsim.Network
	h1, h2  int
	ids     []int
	names   []string
	agents  map[string]*rpc.Agent
	clients map[string]*rpc.Client
	injs    map[string]*faults.Injector
	addrs   map[string]string
	ctl     *controller.Remote
}

func newChaosNet(cfg ChaosConfig, faulty bool) *chaosNet {
	topo, h1, h2 := topology.Linear(3)
	n, err := netsim.New(topo, netsim.Config{Stages: 12, ArraySize: 1 << 14})
	if err != nil {
		panic(err)
	}
	cn := &chaosNet{
		net: n, h1: h1, h2: h2, ids: topo.Switches(),
		agents:  map[string]*rpc.Agent{},
		clients: map[string]*rpc.Client{},
		injs:    map[string]*faults.Injector{},
		addrs:   map[string]string{},
	}
	for i, id := range cn.ids {
		node := n.Node(id)
		name := node.DP.ID
		cn.names = append(cn.names, name)
		agent := rpc.NewAgent(node.DP, node.Eng)
		cn.agents[name] = agent

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		cn.addrs[name] = ln.Addr().String()
		fc := faults.Config{Seed: cfg.Seed + int64(i)}
		if faulty {
			fc.ResetProb = cfg.ResetProb
		}
		inj := faults.New(fc)
		cn.injs[name] = inj
		go agent.Serve(inj.Listener(ln))

		c, err := rpc.DialOptions(cn.addrs[name], rpc.Options{
			Timeout: 2 * time.Second, Retries: 16,
			BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			panic(err)
		}
		cn.clients[name] = c
	}
	cn.ctl = controller.NewRemote(cn.clients, cfg.Seed)
	return cn
}

// restart kills the named agent and brings up a fresh one — empty
// engine, same address — modeling a switch reboot that lost its
// installed queries. The client's automatic redial finds the new
// instance; Reconverge re-drives it to the recorded deploys.
func (cn *chaosNet) restart(name string, id int) {
	_ = cn.agents[name].Close()
	node := cn.net.Node(id)
	layout, err := modules.NewLayout(modules.LayoutCompact, 12, 1<<14)
	if err != nil {
		panic(err)
	}
	eng := modules.NewEngine(layout)
	node.Layout, node.Eng = layout, eng
	node.DP.Monitor = eng
	agent := rpc.NewAgent(node.DP, eng)
	cn.agents[name] = agent
	ln, err := net.Listen("tcp", cn.addrs[name])
	if err != nil {
		panic(err)
	}
	go agent.Serve(cn.injs[name].Listener(ln))
}

func (cn *chaosNet) close() {
	for _, c := range cn.clients {
		c.Close()
	}
	for _, a := range cn.agents {
		a.Close()
	}
}

// run pushes the trace through the line hop by hop (rolling epochs on
// the virtual clock), draining reports over the control channel as it
// goes. When restartAt is positive, the middle switch's agent is killed
// and restarted once the clock passes it, and the controller
// reconverges the deployment.
func (cn *chaosNet) run(tr *trace.Trace, restartAt uint64) (reports int, reinstalled bool) {
	_, _, err := cn.ctl.InstallSharded(query.Q1(40), 1<<12, cn.names)
	if err != nil {
		panic(err)
	}
	restarted := restartAt == 0
	mid, midID := cn.names[1], cn.ids[1]
	drain := func() {
		rs, err := cn.ctl.Collect()
		if err != nil {
			panic(err)
		}
		reports += len(rs)
	}
	for i, pkt := range tr.Packets {
		if !restarted && pkt.TS >= restartAt {
			drain() // reports already on the wire side survive the kill
			cn.restart(mid, midID)
			if err := cn.ctl.Reconverge(); err != nil {
				panic(err)
			}
			restarted = true
			reinstalled = agentInstalled(cn.clients[mid])
		}
		cn.net.Deliver(pkt, cn.h1, cn.h2)
		if i%4096 == 4095 {
			drain()
		}
	}
	drain()
	if restartAt == 0 {
		reinstalled = true
	}
	return reports, reinstalled
}

func agentInstalled(c *rpc.Client) bool {
	st, err := c.Stats()
	return err == nil && st.Installed == 1
}

// ChaosRecovery reproduces the availability story end to end: the same
// seeded SYN-flood trace runs through a 3-switch sharded Q1 deployment
// twice — once fault-free, once with seeded connection resets on every
// control channel plus a kill+restart of the middle switch's agent mid-
// run. The drain cursor keeps report delivery exactly-once through the
// resets, and Reconverge re-installs the lost shard, so the faulty run
// stays within tolerance of the baseline: it can fall short by the
// restarted shard's lost in-window state, or exceed it slightly when
// the zeroed sketch re-detects a key that had already crossed its
// threshold earlier in the same window.
func ChaosRecovery(cfg ChaosConfig) *ChaosResult {
	cfg = cfg.withDefaults()
	tr := trace.Generate(trace.Config{Seed: cfg.Seed, Flows: cfg.Flows, Duration: cfg.Duration},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 600},
		trace.SYNFlood{Victim: 0x0A0000AB, Packets: 600})

	base := newChaosNet(cfg, false)
	baseline, _ := base.run(tr, 0)
	base.close()

	faulty := newChaosNet(cfg, true)
	got, reinstalled := faulty.run(tr, uint64(cfg.Duration)/2)
	res := &ChaosResult{
		Seed: cfg.Seed, Baseline: baseline, WithFaults: got,
		ReinstalledOK: reinstalled,
	}
	for _, inj := range faulty.injs {
		res.Resets += inj.Stats().Resets
	}
	for _, c := range faulty.clients {
		res.Retries += c.Counters().Retries
		res.Redials += c.Counters().Redials
	}
	faulty.close()
	if baseline > 0 {
		res.RecoveredPct = float64(got) / float64(baseline)
	}
	return res
}

// String renders the recovery summary.
func (r *ChaosResult) String() string {
	t := &table{header: []string{"Metric", "Value"}}
	t.add("Seed", fmt.Sprintf("%d", r.Seed))
	t.add("Baseline reports", i2s(r.Baseline))
	t.add("With faults", i2s(r.WithFaults))
	t.add("Recovered", fmt.Sprintf("%.0f%%", 100*r.RecoveredPct))
	t.add("Injected resets", fmt.Sprintf("%d", r.Resets))
	t.add("Client retries", fmt.Sprintf("%d", r.Retries))
	t.add("Client redials", fmt.Sprintf("%d", r.Redials))
	t.add("Reinstalled after restart", fmt.Sprintf("%v", r.ReinstalledOK))
	return fmt.Sprintf("Chaos: sharded Q1 under control-plane faults + agent restart (recovery vs fault-free)\n%s", t.String())
}
