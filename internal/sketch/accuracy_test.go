package sketch

import (
	"math"
	"testing"
)

func TestCMSAbsError(t *testing.T) {
	cases := []struct {
		width uint32
		n     uint64
		want  float64
	}{
		{256, 0, 0},
		{256, 1000, math.E * 1000 / 256},
		{4096, 1 << 20, math.E * float64(1<<20) / 4096},
	}
	for _, c := range cases {
		if got := CMSAbsError(c.width, c.n); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CMSAbsError(%d, %d) = %g, want %g", c.width, c.n, got, c.want)
		}
	}
	if got := CMSAbsError(0, 10); !math.IsInf(got, 1) {
		t.Errorf("CMSAbsError(0, 10) = %g, want +Inf", got)
	}
}

func TestErrorAtMatchesBound(t *testing.T) {
	cm := NewCountMin(2, 512, CRC32IEEE)
	eps, _ := cm.ErrorBound()
	n := uint64(20000)
	if got, want := cm.ErrorAt(n), eps*float64(n); math.Abs(got-want) > 1e-9 {
		t.Errorf("ErrorAt(%d) = %g, want eps*N = %g", n, got, want)
	}
}

func TestCMSWidthForInvertsAbsError(t *testing.T) {
	cases := []struct {
		n      uint64
		maxAbs float64
		want   uint32
	}{
		{0, 10, 1},
		{1000, 0, 1},              // no budget: degenerate floor
		{1000, 1e9, 1},            // huge budget: narrowest width
		{2000, 12.5, 512},         // e*2000/12.5 = 435 -> 512
		{12000, 12.5, 4096},       // e*12000/12.5 = 2609 -> 4096
		{1 << 40, 0.001, 1 << 30}, // clamped at the pow2 ceiling
	}
	for _, c := range cases {
		if got := CMSWidthFor(c.n, c.maxAbs); got != c.want {
			t.Errorf("CMSWidthFor(%d, %g) = %d, want %d", c.n, c.maxAbs, got, c.want)
		}
	}
	// The returned width actually meets the budget (except at the clamps).
	for _, c := range cases[3:5] {
		w := CMSWidthFor(c.n, c.maxAbs)
		if CMSAbsError(w, c.n) > c.maxAbs {
			t.Errorf("CMSWidthFor(%d, %g) = %d does not meet the budget: bound %g",
				c.n, c.maxAbs, w, CMSAbsError(w, c.n))
		}
		if w > 1 && CMSAbsError(w/2, c.n) <= c.maxAbs {
			t.Errorf("CMSWidthFor(%d, %g) = %d is not minimal: %d already meets it",
				c.n, c.maxAbs, w, w/2)
		}
	}
}

func TestBloomFillAndFPP(t *testing.T) {
	if got := BloomRowFill(64, 256); got != 0.25 {
		t.Errorf("BloomRowFill(64, 256) = %g, want 0.25", got)
	}
	if got := BloomRowFill(300, 256); got != 1 {
		t.Errorf("BloomRowFill over-full = %g, want clamped 1", got)
	}
	if got := BloomRowFill(1, 0); got != 1 {
		t.Errorf("BloomRowFill zero width = %g, want 1", got)
	}
	if got := BloomFPPFromFills(nil); got != 0 {
		t.Errorf("BloomFPPFromFills(nil) = %g, want 0", got)
	}
	if got, want := BloomFPPFromFills([]float64{0.5, 0.25}), 0.125; math.Abs(got-want) > 1e-12 {
		t.Errorf("BloomFPPFromFills = %g, want %g", got, want)
	}
}
