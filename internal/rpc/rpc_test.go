package rpc

import (
	"net"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/query"
)

func testAgent(t *testing.T) (*Agent, *dataplane.Switch) {
	t.Helper()
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	sw := dataplane.NewSwitch("s1", 16, modules.StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng
	return NewAgent(sw, eng), sw
}

func pipeClient(t *testing.T, a *Agent) *Client {
	t.Helper()
	server, client := net.Pipe()
	go a.HandleConn(server)
	c := NewClient(client)
	t.Cleanup(func() { c.Close() })
	return c
}

func compileQ1(t *testing.T, qid int) *modules.Program {
	t.Helper()
	o := compiler.AllOpts()
	o.QID = qid
	o.Width = 1 << 10
	p, err := compiler.Compile(query.Q1(3), o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstallProcessDrainOverPipe(t *testing.T) {
	agent, sw := testAgent(t)
	c := pipeClient(t, agent)

	if err := c.Install(compileQ1(t, 1)); err != nil {
		t.Fatalf("Install: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Installed != 1 || st.RuleEntries == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Traffic crosses the threshold; the report comes back over RPC.
	for i := 0; i < 10; i++ {
		sw.Process(&packet.Packet{
			TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
			TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
		})
	}
	reports, err := c.DrainReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	if reports[0].Keys.Get(fields.DstIP) != 42 {
		t.Errorf("report keys survived JSON poorly: %v", reports[0].Keys.String())
	}

	// Second drain is empty (state cleared remotely).
	if again, _ := c.DrainReports(); len(again) != 0 {
		t.Error("drain did not clear")
	}

	// Epoch tick resets windows remotely.
	if err := c.NextEpoch(); err != nil {
		t.Fatal(err)
	}

	if err := c.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	st, _ = c.Stats()
	if st.Installed != 0 || st.RuleEntries != 0 {
		t.Errorf("post-remove stats = %+v", st)
	}
}

func TestAgentErrors(t *testing.T) {
	agent, _ := testAgent(t)
	c := pipeClient(t, agent)

	if err := c.Remove(99); err == nil {
		t.Error("removing unknown qid should fail")
	}
	p := compileQ1(t, 1)
	if err := c.Install(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(compileQ1(t, 1)); err == nil {
		t.Error("duplicate install should fail")
	}
	// A failed op must not poison the connection.
	if _, err := c.Stats(); err != nil {
		t.Errorf("connection unusable after error: %v", err)
	}
}

func TestUnknownRequestType(t *testing.T) {
	agent, _ := testAgent(t)
	server, client := net.Pipe()
	go agent.HandleConn(server)
	defer client.Close()
	if err := WriteFrame(client, &Request{Type: "reboot"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(client, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("unknown type accepted: %+v", resp)
	}
}

func TestOverTCP(t *testing.T) {
	agent, sw := testAgent(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go agent.Serve(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Install(compileQ1(t, 7)); err != nil {
		t.Fatal(err)
	}
	sw.Process(&packet.Packet{
		TS: 1, IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
		TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
	})
	// Two controller connections can coexist.
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err := c2.Stats()
	if err != nil || st.Installed != 1 {
		t.Fatalf("second client stats: %+v %v", st, err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a dead port should fail")
	}
}

func TestFrameLimits(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	// Oversized inbound frame is rejected without allocation.
	go func() {
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
		client.Write(hdr)
	}()
	var v Response
	errCh := make(chan error, 1)
	go func() { errCh <- ReadFrame(server, &v) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("oversized frame accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("readFrame hung on oversized frame")
	}
}

func TestProgramSurvivesJSONRoundTrip(t *testing.T) {
	// Install the same compiled query locally and remotely; footprints
	// must match, proving the wire encoding loses nothing the engine
	// needs.
	local, _ := testAgent(t)
	if err := local.eng.Install(compileQ1(t, 1)); err != nil {
		t.Fatal(err)
	}
	remoteAgent, _ := testAgent(t)
	c := pipeClient(t, remoteAgent)
	if err := c.Install(compileQ1(t, 1)); err != nil {
		t.Fatal(err)
	}
	want := local.eng.Layout().TotalRuleEntries()
	st, _ := c.Stats()
	if st.RuleEntries != want {
		t.Errorf("remote footprint %d != local %d", st.RuleEntries, want)
	}
}

func BenchmarkRoundTripStats(b *testing.B) {
	layout, err := modules.NewLayout(modules.LayoutCompact, 8, 1024)
	if err != nil {
		b.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	sw := dataplane.NewSwitch("s1", 8, modules.StageCapacity())
	agent := NewAgent(sw, eng)
	server, client := net.Pipe()
	go agent.HandleConn(server)
	c := NewClient(client)
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stats(); err != nil {
			b.Fatal(err)
		}
	}
}
