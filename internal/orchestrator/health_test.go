package orchestrator

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeFleet records the monitor's actions against a scriptable fleet.
type fakeFleet struct {
	mu        sync.Mutex
	drained   map[string]bool
	calls     []string
	converges int
	convErr   error
	pending   int // deltas a pure Plan reports
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{drained: map[string]bool{}}
}

func (f *fakeFleet) Drain(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drained[name] = true
	f.calls = append(f.calls, "drain:"+name)
}

func (f *fakeFleet) Undrain(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.drained, name)
	f.calls = append(f.calls, "undrain:"+name)
}

func (f *fakeFleet) Converge() (*Plan, Diff, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, "converge")
	if f.convErr != nil {
		return nil, Diff{}, f.convErr
	}
	f.converges++
	return &Plan{}, Diff{Deltas: []Delta{{}}}, nil
}

func (f *fakeFleet) Plan() (*Plan, Diff, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := Diff{}
	for i := 0; i < f.pending; i++ {
		d.Deltas = append(d.Deltas, Delta{})
	}
	return &Plan{}, d, nil
}

func (f *fakeFleet) callLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

// probeScript answers probes from a mutable per-switch error map.
type probeScript struct {
	mu   sync.Mutex
	errs map[string]error
}

func (p *probeScript) set(name string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.errs == nil {
		p.errs = map[string]error{}
	}
	p.errs[name] = err
}

func (p *probeScript) probe(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errs[name]
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testMonitor(t *testing.T, fleet Fleet, probes *probeScript, mutate func(*HealthConfig)) (*Monitor, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := HealthConfig{
		Probe:        probes.probe,
		SuspectAfter: 1,
		DownAfter:    2,
		RecoverAfter: 3,
		Now:          clk.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMonitor(fleet, []string{"s1", "s2", "s3"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, clk
}

func wantState(t *testing.T, m *Monitor, name string, want HealthState) {
	t.Helper()
	got, ok := m.State(name)
	if !ok {
		t.Fatalf("unknown switch %q", name)
	}
	if got != want {
		t.Fatalf("switch %q state = %v, want %v", name, got, want)
	}
}

// TestDebounceToDrain walks a switch through the bad-round ladder:
// one bad round is only suspicion, and the drain fires exactly when
// DownAfter further bad rounds accumulate — with the offline flip
// ordered before the drain and exactly one converge after.
func TestDebounceToDrain(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	var offline []string
	m, clk := testMonitor(t, fleet, probes, func(c *HealthConfig) {
		c.Offline = func(name string, off bool) error {
			offline = append(offline, fmt.Sprintf("%s=%v", name, off))
			return nil
		}
	})

	probes.set("s2", errors.New("connection refused"))

	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s2", Suspect)
	if len(fleet.callLog()) != 0 {
		t.Fatalf("fleet touched while merely suspect: %v", fleet.callLog())
	}

	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s2", Suspect)

	clk.advance(time.Second)
	rep := m.Tick()
	wantState(t, m, "s2", Down)
	if len(rep.Drained) != 1 || rep.Drained[0] != "s2" {
		t.Fatalf("Drained = %v, want [s2]", rep.Drained)
	}
	if !rep.Converged {
		t.Fatalf("no converge after auto-drain: %+v", rep)
	}
	got := fleet.callLog()
	want := []string{"drain:s2", "converge"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fleet calls = %v, want %v", got, want)
	}
	if len(offline) != 1 || offline[0] != "s2=true" {
		t.Fatalf("offline flips = %v, want [s2=true]", offline)
	}
	// Healthy switches never moved.
	wantState(t, m, "s1", Healthy)
	wantState(t, m, "s3", Healthy)

	// A steady-state tick with nothing to do drives no fleet calls.
	clk.advance(time.Second)
	m.Tick()
	if calls := fleet.callLog(); len(calls) != len(want) {
		t.Fatalf("steady-state tick touched the fleet: %v", calls)
	}
}

// TestSuspectClearsOnOneGoodRound checks the debounce asymmetry: a
// suspect switch (never drained) is cleared by a single good round,
// without hysteresis.
func TestSuspectClearsOnOneGoodRound(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	m, clk := testMonitor(t, fleet, probes, nil)

	probes.set("s1", errors.New("timeout"))
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s1", Suspect)

	probes.set("s1", nil)
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s1", Healthy)
	if len(fleet.callLog()) != 0 {
		t.Fatalf("fleet touched during suspect blip: %v", fleet.callLog())
	}
}

// TestHysteresisHoldsFlappingSwitchOut drives a down switch through a
// good/bad flap and asserts it is not re-admitted until it holds
// RecoverAfter consecutive good rounds.
func TestHysteresisHoldsFlappingSwitchOut(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	var offline []string
	m, clk := testMonitor(t, fleet, probes, func(c *HealthConfig) {
		c.Offline = func(name string, off bool) error {
			offline = append(offline, fmt.Sprintf("%s=%v", name, off))
			return nil
		}
	})

	probes.set("s3", errors.New("reset"))
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	wantState(t, m, "s3", Down)

	// Two good rounds, then a flap: back to Down, recovery count reset.
	probes.set("s3", nil)
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s3", Recovering)
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s3", Recovering)
	probes.set("s3", errors.New("reset again"))
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s3", Down)

	// Through the flap the switch was never undrained.
	for _, c := range fleet.callLog() {
		if c == "undrain:s3" {
			t.Fatalf("flapping switch re-admitted: %v", fleet.callLog())
		}
	}

	// Now three clean rounds re-admit it, flushing offline first.
	probes.set("s3", nil)
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	wantState(t, m, "s3", Healthy)
	calls := fleet.callLog()
	if calls[len(calls)-2] != "undrain:s3" || calls[len(calls)-1] != "converge" {
		t.Fatalf("recovery tail = %v, want [... undrain:s3 converge]", calls)
	}
	if offline[len(offline)-1] != "s3=false" {
		t.Fatalf("offline flips = %v, want trailing s3=false", offline)
	}

	snap := m.Snapshot()
	for _, sw := range snap.Switches {
		if sw.Switch == "s3" {
			if sw.Flaps != 1 {
				t.Fatalf("s3 flaps = %d, want 1", sw.Flaps)
			}
			if sw.DrainReason != "" {
				t.Fatalf("healthy switch keeps drain reason %q", sw.DrainReason)
			}
		}
	}
}

// TestConvergeRetryAfterError: a failed converge leaves the monitor
// dirty, and a later tick retries it even with no new transitions.
func TestConvergeRetryAfterError(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	m, clk := testMonitor(t, fleet, probes, nil)

	fleet.mu.Lock()
	fleet.convErr = errors.New("deploy raced a dying switch")
	fleet.mu.Unlock()

	probes.set("s1", errors.New("dead"))
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	wantState(t, m, "s1", Down)
	snap := m.Snapshot()
	if snap.ConvergeErrs == 0 {
		t.Fatal("converge error not counted")
	}

	fleet.mu.Lock()
	fleet.convErr = nil
	fleet.mu.Unlock()
	clk.advance(time.Second)
	rep := m.Tick()
	if !rep.Converged {
		t.Fatalf("dirty monitor did not retry converge: %+v", rep)
	}
}

// TestLivenessSilenceDrains: a switch whose control channel answers but
// whose telemetry stream has gone silent past MaxSilence is drained all
// the same.
func TestLivenessSilenceDrains(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	var silentSince time.Time
	m, clk := testMonitor(t, fleet, probes, func(c *HealthConfig) {
		c.MaxSilence = 5 * time.Second
		c.Liveness = func(name string) (time.Time, bool, bool) {
			if name == "s2" {
				return silentSince, true, true
			}
			return c.Now(), true, true
		}
	})
	silentSince = clk.now()

	// Fresh telemetry: healthy.
	clk.advance(time.Second)
	m.Tick()
	wantState(t, m, "s2", Healthy)

	// Freeze s2's last-seen and advance past MaxSilence: consecutive
	// silent rounds walk it to Down even though probes keep succeeding.
	// (The first advance still lands inside MaxSilence, so four rounds
	// yield the three bad ones the default ladder needs.)
	for i := 0; i < 4; i++ {
		clk.advance(3 * time.Second)
		m.Tick()
	}
	wantState(t, m, "s2", Down)
	snap := m.Snapshot()
	for _, sw := range snap.Switches {
		if sw.Switch == "s2" && sw.DrainReason == "" {
			t.Fatal("telemetry-silence drain carries no reason")
		}
	}
}

// TestForgetFiresOncePerOutage: a switch down past ForgetAfter triggers
// OnForget exactly once, and the forgotten flag resets on a fresh
// outage.
func TestForgetFiresOncePerOutage(t *testing.T) {
	fleet := newFakeFleet()
	probes := &probeScript{}
	var forgets []string
	m, clk := testMonitor(t, fleet, probes, func(c *HealthConfig) {
		c.ForgetAfter = 10 * time.Second
		c.OnForget = func(name string) { forgets = append(forgets, name) }
	})

	probes.set("s1", errors.New("gone"))
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	wantState(t, m, "s1", Down)

	for i := 0; i < 5; i++ {
		clk.advance(4 * time.Second)
		m.Tick()
	}
	if len(forgets) != 1 || forgets[0] != "s1" {
		t.Fatalf("forgets = %v, want exactly [s1]", forgets)
	}

	// Recover, then fail again: the new outage may forget again.
	probes.set("s1", nil)
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	wantState(t, m, "s1", Healthy)
	probes.set("s1", errors.New("gone again"))
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}
	for i := 0; i < 5; i++ {
		clk.advance(4 * time.Second)
		m.Tick()
	}
	if len(forgets) != 2 {
		t.Fatalf("forgets = %v, want two entries after a second outage", forgets)
	}
}

// TestSnapshotReportsPendingDeltas: the snapshot's pending-delta count
// comes from a pure Plan and the event log records the drain.
func TestSnapshotReportsPendingDeltas(t *testing.T) {
	fleet := newFakeFleet()
	fleet.pending = 3
	probes := &probeScript{}
	m, clk := testMonitor(t, fleet, probes, nil)

	probes.set("s2", errors.New("dead"))
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		m.Tick()
	}

	snap := m.Snapshot()
	if snap.PendingDeltas != 3 {
		t.Fatalf("PendingDeltas = %d, want 3", snap.PendingDeltas)
	}
	if snap.AutoDrains != 1 {
		t.Fatalf("AutoDrains = %d, want 1", snap.AutoDrains)
	}
	var sawDrain bool
	for _, ev := range snap.Events {
		if ev.Switch == "s2" && ev.Action == "auto-drain" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatalf("event log missing the auto-drain: %v", snap.Events)
	}
	if s := snap.String(); s == "" {
		t.Fatal("empty snapshot rendering")
	}
}
