package dataplane

import (
	"fmt"
	"sync/atomic"
)

// SALUOp is one of the stateful-ALU operations the state bank supports
// (§4.1: "Newton supports four types of ALU. As BF needs | and CM needs
// +, the supported ALUs are sufficient").
type SALUOp int

const (
	// OpRead returns the register value unchanged.
	OpRead SALUOp = iota
	// OpWrite stores the operand and returns it.
	OpWrite
	// OpAdd adds the operand and returns the new value (a Count-Min
	// row's increment-and-read).
	OpAdd
	// OpOr ORs the operand in and returns the previous value (a Bloom
	// filter's test-and-set).
	OpOr
	numSALUOps
)

var saluNames = [numSALUOps]string{"read", "write", "add", "or"}

// String names the ALU operation.
func (op SALUOp) String() string {
	if op >= 0 && op < numSALUOps {
		return saluNames[op]
	}
	return fmt.Sprintf("salu(%d)", int(op))
}

// RegisterArray is a stage's stateful memory: a line-rate-transactional
// array of 32-bit registers, each access performing one SALU operation.
//
// Registers are epoch-tagged to implement windowed reset lazily: the
// controller bumps the epoch every window (100 ms in the evaluation), and
// a register written in an older epoch reads as zero. This reproduces
// the "values of reduce and distinct are evaluated and reset every 100ms"
// discipline without a control-plane sweep.
//
// Each register packs its epoch tag and value into one uint64 word
// updated by compare-and-swap, so every SALU transaction is linearizable.
// Hardware performs one such transaction per packet per register at line
// rate; the CAS gives the parallel packet-delivery path (netsim's
// DeliverBatch) the same per-register atomicity, and on the sequential
// path the CAS never retries, keeping results bit-identical to a plain
// read-modify-write.
type RegisterArray struct {
	Name string

	// words[i] = epoch tag (high 32 bits) | value (low 32 bits).
	words []uint64
	epoch atomic.Uint32
}

// NewRegisterArray allocates an array of size registers.
func NewRegisterArray(name string, size uint32) *RegisterArray {
	if size == 0 {
		panic("dataplane: zero-size register array")
	}
	return &RegisterArray{
		Name:  name,
		words: make([]uint64, size),
	}
}

// Size returns the number of registers.
func (ra *RegisterArray) Size() uint32 { return uint32(len(ra.words)) }

// NextEpoch starts a new window: all registers read as zero until
// rewritten. It must not run concurrently with Exec — netsim rolls
// epochs only at batch barriers.
func (ra *RegisterArray) NextEpoch() { ra.epoch.Add(1) }

// Epoch returns the current window number.
func (ra *RegisterArray) Epoch() uint32 { return ra.epoch.Load() }

// Exec performs one stateful-ALU transaction on register idx and returns
// the op's result. Out-of-range indices panic: the hash-calculation
// module is responsible for folding hash results into range, and an
// out-of-range access is a compiler bug, not a runtime condition.
func (ra *RegisterArray) Exec(op SALUOp, idx uint32, operand uint32) uint32 {
	if idx >= uint32(len(ra.words)) {
		panic(fmt.Sprintf("dataplane: register %s[%d] out of range (size %d)", ra.Name, idx, len(ra.words)))
	}
	epoch := ra.epoch.Load()
	w := &ra.words[idx]
	switch op {
	case OpRead:
		cur := atomic.LoadUint64(w)
		if uint32(cur>>32) != epoch {
			return 0 // stale window: reads as zero until rewritten
		}
		return uint32(cur)
	case OpWrite:
		// A blind store is linearizable without a CAS loop.
		atomic.StoreUint64(w, uint64(epoch)<<32|uint64(operand))
		return operand
	case OpAdd:
		for {
			cur := atomic.LoadUint64(w)
			val := uint32(cur)
			if uint32(cur>>32) != epoch {
				val = 0
			}
			next := val + operand
			if atomic.CompareAndSwapUint64(w, cur, uint64(epoch)<<32|uint64(next)) {
				return next
			}
		}
	case OpOr:
		for {
			cur := atomic.LoadUint64(w)
			val := uint32(cur)
			if uint32(cur>>32) != epoch {
				val = 0
			}
			if atomic.CompareAndSwapUint64(w, cur, uint64(epoch)<<32|uint64(val|operand)) {
				return val
			}
		}
	}
	panic(fmt.Sprintf("dataplane: unknown SALU op %d", op))
}

// ExecSeq is Exec without the LOCK-prefixed instructions, for
// single-goroutine delivery (Context.Sequential). It performs the same
// epoch-tagged read-modify-write; on the sequential path Exec's CAS
// never retries, so the two produce bit-identical results.
func (ra *RegisterArray) ExecSeq(op SALUOp, idx uint32, operand uint32) uint32 {
	if idx >= uint32(len(ra.words)) {
		panic(fmt.Sprintf("dataplane: register %s[%d] out of range (size %d)", ra.Name, idx, len(ra.words)))
	}
	epoch := ra.epoch.Load()
	w := &ra.words[idx]
	cur := *w
	val := uint32(cur)
	if uint32(cur>>32) != epoch {
		val = 0 // stale window: reads as zero until rewritten
	}
	switch op {
	case OpRead:
		return val
	case OpWrite:
		*w = uint64(epoch)<<32 | uint64(operand)
		return operand
	case OpAdd:
		next := val + operand
		*w = uint64(epoch)<<32 | uint64(next)
		return next
	case OpOr:
		*w = uint64(epoch)<<32 | uint64(val|operand)
		return val
	}
	panic(fmt.Sprintf("dataplane: unknown SALU op %d", op))
}

// MemoryBytes returns the SRAM footprint of the value array.
func (ra *RegisterArray) MemoryBytes() int { return len(ra.words) * 4 }

// Snapshot reads registers [offset, offset+width) as of the current
// epoch into dst (grown as needed) and returns it. Registers last
// written in an older epoch read as zero, exactly as OpRead sees them —
// so a snapshot taken just before NextEpoch captures the ending
// window's final state. Reads are atomic per register; taken at an
// epoch boundary (netsim and the agents roll epochs only at batch
// barriers) the snapshot is a consistent view of the window.
func (ra *RegisterArray) Snapshot(offset, width uint32, dst []uint32) []uint32 {
	if offset+width > uint32(len(ra.words)) || offset+width < offset {
		panic(fmt.Sprintf("dataplane: snapshot of %s[%d:%d] out of range (size %d)",
			ra.Name, offset, offset+width, len(ra.words)))
	}
	if cap(dst) < int(width) {
		dst = make([]uint32, width)
	}
	dst = dst[:width]
	epoch := ra.epoch.Load()
	for i := uint32(0); i < width; i++ {
		cur := atomic.LoadUint64(&ra.words[offset+i])
		if uint32(cur>>32) == epoch {
			dst[i] = uint32(cur)
		} else {
			dst[i] = 0
		}
	}
	return dst
}
