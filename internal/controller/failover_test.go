package controller

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/faults"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/rpc"
)

// faultyAgent is one switch agent served over loopback TCP behind a
// fault injector, with a retrying client dialed to it.
type faultyAgent struct {
	sw   *dataplane.Switch
	eng  *modules.Engine
	a    *rpc.Agent
	inj  *faults.Injector
	addr string
}

func newFaultyAgent(t *testing.T, id string, fc faults.Config) *faultyAgent {
	t.Helper()
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	eng := modules.NewEngine(layout)
	sw := dataplane.NewSwitch(id, 16, modules.StageCapacity())
	sw.AddRoute(0, 0, 1)
	sw.Monitor = eng
	a := rpc.NewAgent(sw, eng)
	inj := faults.New(fc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(inj.Listener(ln))
	t.Cleanup(func() { a.Close() })
	return &faultyAgent{sw: sw, eng: eng, a: a, inj: inj, addr: ln.Addr().String()}
}

func (fa *faultyAgent) client(t *testing.T, o rpc.Options) *rpc.Client {
	t.Helper()
	c, err := rpc.DialOptions(fa.addr, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestShardDeployAllOrNothingUnderPartition: a sharded deploy that
// cannot reach one member rolls every other member back — verified by
// per-switch Stats showing zero residual rules — and reports the
// failure as a typed *PartialDeployError naming the unreachable switch.
func TestShardDeployAllOrNothingUnderPartition(t *testing.T) {
	fast := rpc.Options{
		Timeout: 100 * time.Millisecond, Retries: 2,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond, Seed: 1,
	}
	agents := map[string]*rpc.Client{}
	fas := map[string]*faultyAgent{}
	for _, id := range []string{"a", "b", "c"} {
		fa := newFaultyAgent(t, id, faults.Config{Seed: 5})
		fas[id] = fa
		agents[id] = fa.client(t, fast)
	}
	fas["c"].inj.Partition() // c is unreachable for the whole deploy

	r := NewRemote(agents, 1)
	_, _, err := r.InstallSharded(query.Q1(3), 1<<10, nil)
	if err == nil {
		t.Fatal("sharded deploy with a partitioned member succeeded")
	}
	var perr *PartialDeployError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %T %v, want *PartialDeployError", err, err)
	}
	if perr.Mode != "shard" || perr.Failed != "c" {
		t.Errorf("PartialDeployError = mode %q failed %q, want shard/c", perr.Mode, perr.Failed)
	}
	if res := perr.Residual(); len(res) != 0 {
		t.Errorf("Residual = %v, want none (rollback must have succeeded)", res)
	}
	// Zero residual rules on the members that had installed: the switch
	// agents themselves account no live queries.
	for _, id := range []string{"a", "b"} {
		st, err := agents[id].Stats()
		if err != nil {
			t.Fatalf("stats %s: %v", id, err)
		}
		if st.Installed != 0 {
			t.Errorf("agent %s holds %d residual queries after rollback", id, st.Installed)
		}
	}

	// Healing the partition makes the identical deploy succeed in full.
	fas["c"].inj.Heal()
	if _, _, err := r.InstallSharded(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatalf("post-heal deploy: %v", err)
	}
	for id, c := range agents {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Installed != 1 {
			t.Errorf("agent %s Installed = %d, want 1", id, st.Installed)
		}
	}
}

// TestShardDeploySurvivesInjectedResets: with seeded connection resets
// on every control channel, the retrying clients still land the deploy
// fully — the all-or-nothing contract's success arm.
func TestShardDeploySurvivesInjectedResets(t *testing.T) {
	retrying := rpc.Options{
		Timeout: 2 * time.Second, Retries: 16,
		BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 7,
	}
	agents := map[string]*rpc.Client{}
	for _, id := range []string{"a", "b", "c"} {
		fa := newFaultyAgent(t, id, faults.Config{Seed: int64(len(id)) + 40, ResetProb: 0.05})
		agents[id] = fa.client(t, retrying)
	}
	r := NewRemote(agents, 1)
	if _, _, err := r.InstallSharded(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatalf("deploy under resets: %v", err)
	}
	for id, c := range agents {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Installed != 1 {
			t.Errorf("agent %s Installed = %d, want 1", id, st.Installed)
		}
	}
}

// TestCollectDeadlineOnStalledAgent (satellite): one hung agent cannot
// block Remote.Collect past the configured per-call deadline.
func TestCollectDeadlineOnStalledAgent(t *testing.T) {
	o := rpc.Options{Timeout: 100 * time.Millisecond, Seed: 3}
	healthy := newFaultyAgent(t, "a", faults.Config{Seed: 3})
	stalled := newFaultyAgent(t, "b", faults.Config{Seed: 3})
	agents := map[string]*rpc.Client{
		"a": healthy.client(t, o),
		"b": stalled.client(t, o),
	}
	r := NewRemote(agents, 1)
	if _, _, err := r.Install(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatal(err)
	}
	stalled.inj.Stall()
	defer stalled.inj.Unstall()

	start := time.Now()
	_, err := r.Collect()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Collect with a hung agent succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("Collect err = %v, want deadline exceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("Collect blocked %v despite 100ms deadline", elapsed)
	}
}

// TestReconvergeAfterAgentRestart: an agent that restarts (losing its
// installed queries) is re-driven to the recorded deploy spec by
// Reconverge, over the client's automatic redial.
func TestReconvergeAfterAgentRestart(t *testing.T) {
	fa := newFaultyAgent(t, "a", faults.Config{Seed: 9})
	c := fa.client(t, rpc.Options{
		Timeout: time.Second, Retries: 8,
		BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 9,
	})
	r := NewRemote(map[string]*rpc.Client{"a": c}, 1)
	if _, _, err := r.Install(query.Q1(3), 1<<10, nil); err != nil {
		t.Fatal(err)
	}

	// Restart: the old agent dies with its engine state; a fresh one
	// (empty engine) comes up at the same address.
	if err := fa.a.Close(); err != nil {
		t.Fatal(err)
	}
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := modules.NewEngine(layout)
	fa.sw.Monitor = eng2
	a2 := rpc.NewAgent(fa.sw, eng2)
	ln, err := net.Listen("tcp", fa.addr)
	if err != nil {
		t.Fatal(err)
	}
	go a2.Serve(ln)
	t.Cleanup(func() { a2.Close() })

	if err := r.Reconverge(); err != nil {
		t.Fatalf("Reconverge: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Installed != 1 {
		t.Fatalf("restarted agent Installed = %d, want 1", st.Installed)
	}
	// Reconverge is level-triggered: running it against an already-
	// converged agent is a no-op, not an error.
	if err := r.Reconverge(); err != nil {
		t.Fatalf("second Reconverge: %v", err)
	}
	if st, _ := c.Stats(); st.Installed != 1 {
		t.Fatalf("idempotent reconverge changed state: %d installed", st.Installed)
	}
}
