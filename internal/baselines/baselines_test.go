package baselines

import (
	"testing"
	"time"

	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/trace"
)

const win = uint64(100 * time.Millisecond)

func testTrace(seed int64) *trace.Trace {
	return trace.Generate(trace.Config{Seed: seed, Flows: 2000, Duration: 500 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 1000})
}

func TestSystemNames(t *testing.T) {
	if Newton.String() != "Newton" || StarFlow.String() != "*Flow" {
		t.Error("system names wrong")
	}
	if System(99).String() != "unknown" {
		t.Error("out-of-range name")
	}
}

func TestTurboFlowCountsFlowsPerWindow(t *testing.T) {
	tr := testTrace(1)
	msgs := TurboFlowMessages(tr.Packets, win)
	// Flow records: at least one per distinct flow, fewer than packets.
	flows := map[string]bool{}
	for _, p := range tr.Packets {
		flows[p.Flow().String()] = true
	}
	if msgs < len(flows) {
		t.Errorf("TurboFlow msgs %d < distinct flows %d", msgs, len(flows))
	}
	if msgs >= len(tr.Packets) {
		t.Errorf("TurboFlow msgs %d >= packets %d (should aggregate)", msgs, len(tr.Packets))
	}
}

func TestStarFlowBetweenFlowsAndPackets(t *testing.T) {
	tr := testTrace(2)
	sf := StarFlowMessages(tr.Packets, win)
	tf := TurboFlowMessages(tr.Packets, win)
	if sf < tf {
		t.Errorf("*Flow msgs %d < TurboFlow %d; GPVs are finer-grained than flow records", sf, tf)
	}
	if sf > len(tr.Packets) {
		t.Errorf("*Flow msgs %d > packets", sf)
	}
}

func TestFlowRadarAndScreamPerWindow(t *testing.T) {
	tr := testTrace(3)
	fr := FlowRadarMessages(tr.Packets, win)
	sc := ScreamMessages(tr.Packets, win)
	nw := int(tr.Packets[len(tr.Packets)-1].TS/win) + 1
	if fr%nw != 0 || sc%nw != 0 {
		t.Errorf("per-window exports not multiples of windows: %d %d over %d windows", fr, sc, nw)
	}
	if fr == 0 || sc == 0 {
		t.Error("zero export")
	}
	if FlowRadarMessages(nil, win) != 0 || ScreamMessages(nil, win) != 0 {
		t.Error("empty stream should export nothing")
	}
}

func TestSonataAccurateExportation(t *testing.T) {
	tr := testTrace(4)
	msgs := SonataMessages(query.Q1(40), tr.Packets)
	// One report per flagged key per window; the flood spans ~5 windows.
	if msgs == 0 {
		t.Fatal("Sonata exported nothing despite a flood")
	}
	if msgs > 50 {
		t.Errorf("Sonata msgs = %d; accurate exportation should be tiny", msgs)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The Fig. 12 shape: Newton/Sonata two orders of magnitude below the
	// generic exporters.
	tr := testTrace(5)
	n := len(tr.Packets)
	sonata := Overhead(SonataMessages(query.Q1(40), tr.Packets), n)
	turbo := Overhead(TurboFlowMessages(tr.Packets, win), n)
	star := Overhead(StarFlowMessages(tr.Packets, win), n)
	if sonata*50 > turbo {
		t.Errorf("Sonata %.5f not ≪ TurboFlow %.5f", sonata, turbo)
	}
	if star < turbo {
		t.Errorf("*Flow %.5f below TurboFlow %.5f", star, turbo)
	}
}

func TestOverheadDegenerate(t *testing.T) {
	if Overhead(5, 0) != 0 {
		t.Error("zero packets should give zero overhead")
	}
	if Overhead(5, 10) != 0.5 {
		t.Error("overhead arithmetic wrong")
	}
}

func TestTurboFlowEvictionUnderPressure(t *testing.T) {
	// More distinct flows than the table holds: evictions add messages.
	tr := trace.Generate(trace.Config{Seed: 6, Flows: 25000, Duration: 100 * time.Millisecond})
	msgs := TurboFlowMessages(tr.Packets, win)
	flows := map[interface{}]bool{}
	for _, p := range tr.Packets {
		flows[p.Flow()] = true
	}
	if len(flows) <= turboFlowTable {
		t.Skip("trace did not overflow the table")
	}
	if msgs < len(flows) {
		t.Errorf("evictions missing: %d msgs for %d flows", msgs, len(flows))
	}
}
