// Package netsim simulates a network of Newton-enabled programmable
// switches: every switch of a topology gets a pipeline with the module
// layout loaded, packets walk ECMP forwarding paths hop by hop, result
// snapshot headers carry cross-switch query state, register windows roll
// on a shared virtual clock, and switch outages (the Sonata reboot
// model) drop traffic for their duration.
package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/topology"
)

// Config sizes each switch in the network.
type Config struct {
	// Stages is the module stage count per pipeline (default 12, the
	// paper's Tofino).
	Stages int
	// ArraySize is each state bank's register count (default 4096).
	ArraySize uint32
	// Window is the query evaluation window (default 100 ms).
	Window time.Duration
	// Workers is the delivery worker (lane) count for DeliverBatch:
	// packets shard across lanes by symmetric flow hash, each lane
	// owning private engine state (dispatch cache, memos, counters).
	// 0 uses the package default (DefaultWorkers); 1 forces sequential
	// delivery.
	Workers int
	// PrivateBanks switches every engine to modules.BankPrivate:
	// shardable state-bank rows get worker-private shards merged at
	// epoch boundaries instead of shared CAS transactions. See the
	// BankMode docs for the exactness trade-off.
	PrivateBanks bool
}

func (c Config) withDefaults() Config {
	if c.Stages == 0 {
		c.Stages = dataplane.TofinoStages
	}
	if c.ArraySize == 0 {
		c.ArraySize = 4096
	}
	if c.Window == 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Workers > maxPoolWorkers {
		c.Workers = maxPoolWorkers
	}
	return c
}

// defaultWorkers is the process-wide lane count used when Config.Workers
// is zero. Read/written with atomics so bench harnesses can set it while
// other goroutines build networks.
var defaultWorkers int64

// DefaultWorkers returns the default delivery worker count: the last
// SetDefaultWorkers value, or GOMAXPROCS.
func DefaultWorkers() int {
	if w := atomic.LoadInt64(&defaultWorkers); w > 0 {
		return int(w)
	}
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// SetDefaultWorkers overrides the default delivery worker count for
// subsequently built networks (0 restores GOMAXPROCS).
func SetDefaultWorkers(n int) { atomic.StoreInt64(&defaultWorkers, int64(n)) }

// Node is one switch of the network: its data plane, module layout, and
// engine.
type Node struct {
	ID     int
	DP     *dataplane.Switch
	Layout *modules.Layout
	Eng    *modules.Engine
}

// Network is the simulated deployment.
type Network struct {
	Topo *topology.Topology
	Cfg  Config

	nodes map[int]*Node

	// nodesByID is the dense form of nodes (topology IDs are small
	// sequential ints): the per-hop switch lookup of the packet path is
	// an indexed load instead of a map probe.
	nodesByID []*Node

	clock     uint64
	nextEpoch uint64

	outageFrom, outageTo map[int]uint64

	// delivered/dropped count the rare non-lane paths (one-off Deliver
	// route misses, worker route misses) with shared atomics; the hot
	// delivery paths count into laneStats. Stats sums both.
	delivered, dropped uint64

	// workers is the delivery lane count, fixed at New; lanes holds each
	// worker's persistent delivery state and laneStats its padded
	// counters. runLane is the one closure handed to the worker pool
	// (allocated once so steady-state segments allocate nothing), with
	// segSrc/segDst carrying the current segment's endpoints to it.
	workers        int
	lanes          []*netLane
	laneStats      []laneStat
	runLane        func(lane int)
	segSrc, segDst int
	batchWG        sync.WaitGroup

	// Deferred, when set, receives packets that exit the network still
	// carrying a result snapshot — a query whose partitions outnumber
	// the path's Newton hops. The software analyzer continues the query
	// from the snapshot (§5.2); see analyzer.DeferredTail. The hook runs
	// before the snapshot is stripped.
	Deferred func(pkt *packet.Packet)

	// deferredMu serializes Deferred calls from batch workers.
	deferredMu sync.Mutex

	// batchReports accumulates the merged per-worker report buffers of
	// DeliverBatch until DrainReports.
	batchReports []dataplane.Report
}

// netLane is one delivery worker's persistent state: its execution
// context, report sink, resolved-path cache, and segment shard buffer.
// All of it is reused across segments and batches, so the steady-state
// parallel path allocates nothing.
type netLane struct {
	ctx  *dataplane.Context
	sink []dataplane.Report
	// cache memoizes resolved ECMP paths by flow seed; valid for the
	// (src, dst) endpoint pair it was filled under.
	cache    map[uint64]cachedPath
	src, dst int
	shard    []*packet.Packet
}

// laneStat is one lane's delivery counters, padded to a cacheline so
// parallel workers never false-share; single-writer, read atomically.
type laneStat struct {
	delivered, dropped uint64
	_                  [6]uint64
}

// bumpStat increments a single-writer counter without a LOCK prefix
// while keeping concurrent atomic readers exact.
func bumpStat(p *uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+1)
}

// New builds a network with a Newton switch per topology switch node.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	n := &Network{
		Topo: topo, Cfg: cfg,
		nodes:      map[int]*Node{},
		nextEpoch:  uint64(cfg.Window),
		outageFrom: map[int]uint64{}, outageTo: map[int]uint64{},
		workers: cfg.Workers,
	}
	for _, id := range topo.Switches() {
		layout, err := modules.NewLayout(modules.LayoutCompact, cfg.Stages, cfg.ArraySize)
		if err != nil {
			return nil, fmt.Errorf("netsim: switch %s: %w", topo.Node(id).Name, err)
		}
		eng := modules.NewEngine(layout)
		eng.SetWorkers(cfg.Workers)
		if cfg.PrivateBanks {
			eng.SetBankMode(modules.BankPrivate)
		}
		dp := dataplane.NewSwitch(topo.Node(id).Name, cfg.Stages, modules.StageCapacity())
		dp.SetLanes(cfg.Workers)
		if err := dp.AddRoute(0, 0, 1); err != nil {
			return nil, err
		}
		dp.Monitor = eng
		node := &Node{ID: id, DP: dp, Layout: layout, Eng: eng}
		n.nodes[id] = node
		if id >= len(n.nodesByID) {
			grown := make([]*Node, id+1)
			copy(grown, n.nodesByID)
			n.nodesByID = grown
		}
		n.nodesByID[id] = node
	}
	n.lanes = make([]*netLane, cfg.Workers)
	for w := range n.lanes {
		ln := &netLane{cache: map[uint64]cachedPath{}, src: -1, dst: -1}
		ln.ctx = dataplane.NewBatchContext(&ln.sink, w)
		n.lanes[w] = ln
	}
	n.laneStats = make([]laneStat, cfg.Workers)
	n.runLane = func(w int) {
		ln := n.lanes[w]
		src, dst := n.segSrc, n.segDst
		for _, pkt := range ln.shard {
			n.deliverCached(pkt, src, dst, ln.ctx, ln.cache)
		}
	}
	return n, nil
}

// Workers returns the delivery lane count the network was built with.
func (n *Network) Workers() int { return n.workers }

// Node returns the switch node with the given topology ID.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Nodes returns all switch nodes keyed by topology ID.
func (n *Network) Nodes() map[int]*Node { return n.nodes }

// Clock returns the current virtual time in nanoseconds.
func (n *Network) Clock() uint64 { return n.clock }

// AdvanceTo moves the virtual clock forward, rolling register windows at
// each boundary it crosses. The roll loop lives in its own method so
// AdvanceTo itself inlines into the per-packet delivery path.
func (n *Network) AdvanceTo(ts uint64) {
	if ts < n.clock {
		return
	}
	if ts >= n.nextEpoch {
		n.rollEpochs(ts)
	}
	n.clock = ts
}

func (n *Network) rollEpochs(ts uint64) {
	for ts >= n.nextEpoch {
		for _, node := range n.nodes {
			// RollEpoch folds worker-private bank shards into the
			// canonical arrays (BankPrivate) before rolling the register
			// epoch — the mandated roll entry point for sharded engines.
			node.Eng.RollEpoch()
		}
		n.nextEpoch += uint64(n.Cfg.Window)
	}
}

// SetOutage takes a switch down for [from, until) of virtual time — the
// Sonata reboot model's lever.
func (n *Network) SetOutage(sw int, from, until uint64) {
	n.outageFrom[sw] = from
	n.outageTo[sw] = until
}

func (n *Network) inOutage(sw int) bool {
	return n.inOutageAt(sw, n.clock)
}

// inOutageAt checks an outage against an explicit timestamp — the batch
// path evaluates outages per packet without moving the shared clock.
func (n *Network) inOutageAt(sw int, ts uint64) bool {
	to, ok := n.outageTo[sw]
	return ok && ts >= n.outageFrom[sw] && ts < to
}

// flowSeed derives the ECMP seed from the packet's 5-tuple. It is
// FNV-64a over the 13-byte key — computed inline so the per-packet path
// does not allocate a hash object.
func flowSeed(p *packet.Packet) uint64 {
	k := p.Flow()
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(k.Src>>24)) * prime64
	h = (h ^ uint64(k.Src>>16)&0xFF) * prime64
	h = (h ^ uint64(k.Src>>8)&0xFF) * prime64
	h = (h ^ uint64(k.Src)&0xFF) * prime64
	h = (h ^ uint64(k.Dst>>24)) * prime64
	h = (h ^ uint64(k.Dst>>16)&0xFF) * prime64
	h = (h ^ uint64(k.Dst>>8)&0xFF) * prime64
	h = (h ^ uint64(k.Dst)&0xFF) * prime64
	h = (h ^ uint64(k.SPort>>8)) * prime64
	h = (h ^ uint64(k.SPort)&0xFF) * prime64
	h = (h ^ uint64(k.DPort>>8)) * prime64
	h = (h ^ uint64(k.DPort)&0xFF) * prime64
	h = (h ^ uint64(k.Proto)) * prime64
	return h
}

// Deliver routes one packet from srcHost to dstHost along its ECMP path
// and processes it at every switch. It returns the switch path taken and
// whether the packet reached the destination. A switch in outage drops
// the packet.
func (n *Network) Deliver(pkt *packet.Packet, srcHost, dstHost int) ([]int, bool) {
	path := n.Topo.Path(srcHost, dstHost, flowSeed(pkt))
	if path == nil {
		atomic.AddUint64(&n.dropped, 1)
		return nil, false
	}
	sw := n.Topo.SwitchPath(path)
	ok := n.DeliverPath(pkt, sw)
	return sw, ok
}

// DeliverPath processes a packet along an explicit switch path.
func (n *Network) DeliverPath(pkt *packet.Packet, switches []int) bool {
	n.AdvanceTo(pkt.TS)
	return n.deliverOn(pkt, switches, nil)
}

// deliverOn walks a packet along a switch path without touching the
// shared clock. ctx, when non-nil, is the caller-owned (batch worker)
// execution context; nil uses each switch's sequential context.
//
// Delivery counters go to the context's lane slot: within a batch each
// lane is driven by exactly one worker, and the non-batch paths (nil
// ctx) are caller-serialized on lane 0, so every slot is single-writer.
func (n *Network) deliverOn(pkt *packet.Packet, switches []int, ctx *dataplane.Context) bool {
	st := &n.laneStats[0]
	if ctx != nil && ctx.Lane > 0 && ctx.Lane < len(n.laneStats) {
		st = &n.laneStats[ctx.Lane]
	}
	pkt.SP = nil // hosts never send result snapshots
	for _, id := range switches {
		var node *Node
		if id >= 0 && id < len(n.nodesByID) {
			node = n.nodesByID[id]
		}
		if node == nil {
			bumpStat(&st.dropped)
			return false
		}
		if len(n.outageTo) != 0 && n.inOutageAt(id, pkt.TS) {
			bumpStat(&st.dropped)
			return false
		}
		var forwarded bool
		if ctx != nil {
			_, forwarded = node.DP.ProcessCtx(pkt, ctx)
		} else {
			_, forwarded = node.DP.Process(pkt)
		}
		if !forwarded {
			bumpStat(&st.dropped)
			return false
		}
	}
	if pkt.SP != nil {
		// The last Newton hop normally strips the snapshot before the
		// host; a leftover means the query's tail never ran on this path
		// — §5.2's fallback hands the execution status to the software
		// analyzer before the header is removed.
		if n.Deferred != nil {
			n.deferredMu.Lock()
			n.Deferred(pkt)
			n.deferredMu.Unlock()
		}
		pkt.SP = nil
	}
	bumpStat(&st.delivered)
	return true
}

// minParallelSegment is the segment size below which DeliverBatch stays
// sequential (goroutine fan-out would cost more than it saves).
const minParallelSegment = 64

// DeliverBatch delivers a time-ordered packet batch from srcHost to
// dstHost, parallelized across flows. Packets are sharded over the
// network's delivery lanes (Config.Workers) by symmetric flow hash, so
// both directions of a flow stay in order on one lane while distinct
// flows proceed concurrently. Each lane mirrors reports into its own
// persistent sink (merged into DrainReports's output), and the batch is
// split at query-window boundaries: all packets of a window are
// processed, the lanes join at a barrier, worker-private bank shards
// merge, the register epochs roll, and the next window begins — exactly
// the epoch discipline of sequential delivery.
//
// Switch state stays exact under parallelism: tables are read through
// immutable copy-on-write snapshots and every register ALU transaction
// is a linearizable compare-and-swap (or a worker-private shard merged
// at the barrier), so windowed counts, delivery counters, and report
// volumes match sequential delivery. Query installs/removals must not
// run concurrently with a batch.
func (n *Network) DeliverBatch(pkts []*packet.Packet, srcHost, dstHost int) {
	workers := n.workers
	start := 0
	for start < len(pkts) {
		// Extend the segment until a packet crosses the next window
		// boundary; that packet starts the next segment after the rolls.
		end := start
		for end < len(pkts) && pkts[end].TS < n.nextEpoch {
			end++
		}
		if end == start {
			n.AdvanceTo(pkts[start].TS) // rolls every boundary crossed
			continue
		}
		n.deliverSegment(pkts[start:end], srcHost, dstHost, workers)
		if ts := pkts[end-1].TS; ts > n.clock {
			n.clock = ts
		}
		start = end
	}
}

// deliverSegment processes one window's worth of packets across the
// delivery lanes. Lane state (context, path cache, shard buffer, report
// sink) persists on the Network and the worker goroutines live in the
// process-wide pool, so the steady-state segment allocates nothing.
func (n *Network) deliverSegment(pkts []*packet.Packet, srcHost, dstHost, workers int) {
	if workers == 1 || len(pkts) < minParallelSegment {
		ln := n.lanes[0]
		n.laneCache(ln, srcHost, dstHost)
		for _, pkt := range pkts {
			n.deliverCached(pkt, srcHost, dstHost, ln.ctx, ln.cache)
		}
		n.collectSinks(n.lanes[:1])
		return
	}

	// Shard by symmetric flow hash: one lane owns all packets of a flow
	// (both directions), keeping per-flow order and lane-private engine
	// state coherent.
	lanes := n.lanes[:workers]
	for _, ln := range lanes {
		ln.shard = ln.shard[:0]
		n.laneCache(ln, srcHost, dstHost)
	}
	for _, pkt := range pkts {
		w := int(pkt.Flow().LaneHash() % uint64(workers))
		lanes[w].shard = append(lanes[w].shard, pkt)
	}
	n.segSrc, n.segDst = srcHost, dstHost
	poolDo(workers, &n.batchWG, n.runLane)
	n.collectSinks(lanes)
}

// laneCache readies a lane's ECMP path cache for the (src, dst) pair,
// flushing it when the endpoints change (entries are only valid for the
// pair they were resolved under).
func (n *Network) laneCache(ln *netLane, src, dst int) {
	if ln.src != src || ln.dst != dst {
		clear(ln.cache)
		ln.src, ln.dst = src, dst
	}
}

// collectSinks moves the lanes' mirrored reports into batchReports,
// keeping the sink backing arrays for reuse.
func (n *Network) collectSinks(lanes []*netLane) {
	for _, ln := range lanes {
		if len(ln.sink) != 0 {
			n.batchReports = append(n.batchReports, ln.sink...)
			ln.sink = ln.sink[:0]
		}
	}
}

// cachedPath is one resolved ECMP path; ok is false when the topology
// has no route for the flow.
type cachedPath struct {
	sw []int
	ok bool
}

// deliverCached delivers one packet, resolving its ECMP switch path
// through a per-caller cache keyed by flow seed (the seed fully
// determines the path for fixed endpoints).
func (n *Network) deliverCached(pkt *packet.Packet, srcHost, dstHost int, ctx *dataplane.Context, cache map[uint64]cachedPath) {
	seed := flowSeed(pkt)
	cp, hit := cache[seed]
	if !hit {
		if path := n.Topo.Path(srcHost, dstHost, seed); path != nil {
			cp = cachedPath{sw: n.Topo.SwitchPath(path), ok: true}
		}
		cache[seed] = cp
	}
	if !cp.ok {
		atomic.AddUint64(&n.dropped, 1)
		return
	}
	n.deliverOn(pkt, cp.sw, ctx)
}

// DrainReports collects and clears mirrored reports from every switch
// and from completed batches.
func (n *Network) DrainReports() []dataplane.Report {
	out := n.batchReports
	n.batchReports = nil
	for _, node := range n.nodes {
		out = append(out, node.DP.DrainReports()...)
	}
	return out
}

// DrainReportsAppend appends mirrored reports from completed batches and
// every switch to dst and clears them, reusing all internal buffers —
// the zero-allocation form of DrainReports for steady-state loops.
func (n *Network) DrainReportsAppend(dst []dataplane.Report) []dataplane.Report {
	dst = append(dst, n.batchReports...)
	n.batchReports = n.batchReports[:0]
	for _, node := range n.nodes {
		dst = node.DP.DrainReportsAppend(dst)
	}
	return dst
}

// Stats returns network-wide delivery counters: the shared slow-path
// atomics plus every lane's single-writer slot.
func (n *Network) Stats() (delivered, dropped uint64) {
	delivered = atomic.LoadUint64(&n.delivered)
	dropped = atomic.LoadUint64(&n.dropped)
	for i := range n.laneStats {
		delivered += atomic.LoadUint64(&n.laneStats[i].delivered)
		dropped += atomic.LoadUint64(&n.laneStats[i].dropped)
	}
	return delivered, dropped
}

// ResetStats zeroes the delivery counters (between experiment phases).
func (n *Network) ResetStats() {
	atomic.StoreUint64(&n.delivered, 0)
	atomic.StoreUint64(&n.dropped, 0)
	for i := range n.laneStats {
		atomic.StoreUint64(&n.laneStats[i].delivered, 0)
		atomic.StoreUint64(&n.laneStats[i].dropped, 0)
	}
}
