package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"github.com/newton-net/newton/internal/obs"
)

// runTop implements `newton-ctl top`: fetch the JSON metrics snapshot
// of a running daemon (agent, analyzer, or controller) and render the
// per-query resource accounting plus headline counters — the live view
// of the paper's §6 per-query cost tables.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9700", "observability address of the target process")
	watch := fs.Duration("watch", 0, "refresh interval (0 = print once and exit)")
	_ = fs.Parse(args)

	for {
		snap, err := fetchSnapshot(*addr)
		if err != nil {
			log.Fatalf("newton-ctl top: %v", err)
		}
		renderTop(os.Stdout, snap)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

func fetchSnapshot(addr string) (*obs.Snapshot, error) {
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics.json: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	return &snap, nil
}

// queryRow is one installed query's resource line, assembled from the
// newton_query_* gauge families.
type queryRow struct {
	qid     int
	query   string
	scope   string // the switch or mode label, whichever the publisher used
	stages  int64
	regs    int64
	hashes  int64
	salus   int64
	initR   int64
	resultR int64
	rules   int64
}

func renderTop(w *os.File, snap *obs.Snapshot) {
	rows := map[string]*queryRow{}
	rowFor := func(s *obs.Series) *queryRow {
		qid, _ := strconv.Atoi(s.Labels["qid"])
		scope := s.Labels["switch"]
		if scope == "" {
			scope = s.Labels["mode"]
		}
		key := s.Labels["qid"] + "\x00" + scope
		r := rows[key]
		if r == nil {
			r = &queryRow{qid: qid, query: s.Labels["query"], scope: scope}
			rows[key] = r
		}
		return r
	}
	assign := map[string]func(*queryRow, int64){
		"newton_query_stages":       func(r *queryRow, v int64) { r.stages = v },
		"newton_query_registers":    func(r *queryRow, v int64) { r.regs = v },
		"newton_query_hash_units":   func(r *queryRow, v int64) { r.hashes = v },
		"newton_query_salus":        func(r *queryRow, v int64) { r.salus = v },
		"newton_query_init_rules":   func(r *queryRow, v int64) { r.initR = v },
		"newton_query_result_rules": func(r *queryRow, v int64) { r.resultR = v },
		"newton_query_rules":        func(r *queryRow, v int64) { r.rules = v },
	}
	for name, set := range assign {
		f := snap.Get(name)
		if f == nil {
			continue
		}
		for i := range f.Series {
			s := &f.Series[i]
			set(rowFor(s), int64(s.Value))
		}
	}

	if len(rows) == 0 {
		fmt.Fprintln(w, "no per-query resource gauges (no queries installed, or the target does not publish them)")
	} else {
		sorted := make([]*queryRow, 0, len(rows))
		for _, r := range rows {
			sorted = append(sorted, r)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].qid != sorted[j].qid {
				return sorted[i].qid < sorted[j].qid
			}
			return sorted[i].scope < sorted[j].scope
		})
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "QID\tQUERY\tSCOPE\tSTAGES\tREGISTERS\tHASH\tSALU\tINIT\tR-RULES\tRULES")
		for _, r := range sorted {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				r.qid, r.query, r.scope, r.stages, r.regs, r.hashes, r.salus, r.initR, r.resultR, r.rules)
		}
		tw.Flush()
	}

	// Headline counters, whichever the target exposes.
	headline := []string{
		"newton_engine_packets_total",
		"newton_engine_dispatch_misses_total",
		"newton_rpc_agent_requests_total",
		"newton_rpc_client_calls_total",
		"newton_export_ring_depth",
		"newton_export_dropped_total",
		"newton_analyzer_reports_total",
		"newton_analyzer_partial_epochs_total",
		"newton_ctl_deploys_total",
	}
	printed := false
	for _, name := range headline {
		f := snap.Get(name)
		if f == nil || len(f.Series) == 0 {
			continue
		}
		if !printed {
			fmt.Fprintln(w)
			printed = true
		}
		for i := range f.Series {
			s := &f.Series[i]
			label := name
			for _, k := range []string{"switch", "peer", "result", "module"} {
				if v := s.Labels[k]; v != "" {
					label += "{" + k + "=" + v + "}"
				}
			}
			fmt.Fprintf(w, "%-50s %g\n", label, s.Value)
		}
	}
}
