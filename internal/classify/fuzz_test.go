package classify

import (
	"encoding/binary"
	"testing"
)

// rulesFromBytes decodes a rule set and probe keys from fuzz input. The
// decoder is biased toward compilable shapes (prefix masks, small dense
// masks, wildcards, full-width exact) with an occasional raw mask so
// the fallback decision is fuzzed too.
func rulesFromBytes(data []byte) (cols int, rules []Rule, keys [][]uint64) {
	if len(data) < 4 {
		return 0, nil, nil
	}
	next := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		var buf [8]byte
		n := copy(buf[:], data)
		data = data[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	cols = 1 + int(data[0]%3)
	nRules := 1 + int(data[1]%32)
	nKeys := 1 + int(data[2]%16)
	data = data[3:]

	maskFor := func(sel uint64) uint64 {
		switch sel % 8 {
		case 0:
			return 0
		case 1:
			return 0xFFFFFFFF
		case 2:
			return 0xFFFFFF00
		case 3:
			return 0xFFFF0000
		case 4:
			return 0xFF
		case 5:
			return sel >> 3 & 0xFFFF // arbitrary small mask: dense
		case 6:
			return ^uint64(0)
		default:
			return sel >> 3 // arbitrary wide mask: usually uncompilable
		}
	}
	for i := 0; i < nRules; i++ {
		vals := make([]uint64, cols)
		masks := make([]uint64, cols)
		for c := 0; c < cols; c++ {
			w := next()
			masks[c] = maskFor(w)
			vals[c] = next()
		}
		rules = append(rules, Rule{Values: vals, Masks: masks})
	}
	for i := 0; i < nKeys; i++ {
		vals := make([]uint64, cols)
		for c := 0; c < cols; c++ {
			vals[c] = next()
		}
		// Bias half the keys toward installed rule values so matches
		// (and nested matches) are common.
		if i%2 == 0 && len(rules) > 0 {
			r := rules[i%len(rules)]
			for c := 0; c < cols; c++ {
				vals[c] = r.Values[c] ^ (vals[c] & 0xFF)
			}
		}
		keys = append(keys, vals)
	}
	return cols, rules, keys
}

// FuzzCompiledEquivalence fuzzes the compiled classifier against the
// linear ternary-scan oracle: for every decoded rule set and key, the
// full match set — contents and order — must be identical. A nil
// compile (strategy or budget fallback) is legal: the caller keeps the
// oracle itself.
func FuzzCompiledEquivalence(f *testing.F) {
	// Seeded corpus: prefix nest, dense flags, wildcard default, mixed.
	f.Add([]byte{2, 8, 8, 1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{1, 16, 4, 2, 2, 2, 2, 4, 4, 4, 4, 0, 0, 0, 0, 9, 9})
	f.Add([]byte{3, 32, 16, 255, 254, 253, 252, 251, 250, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{2, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{1, 31, 15, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, rules, keys := rulesFromBytes(data)
		if cols == 0 || len(rules) == 0 {
			return
		}
		c := Compile(cols, rules, Config{MinRules: 1})
		if c == nil {
			return // fallback: the oracle itself serves lookups
		}
		for _, k := range keys {
			got := c.Lookup(k)
			want := scanOracle(rules, k)
			if !equalList(got, want) {
				t.Fatalf("compiled %v != oracle %v for key %v over %d rules",
					got, want, k, len(rules))
			}
		}
	})
}
