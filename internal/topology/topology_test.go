package topology

import (
	"testing"
)

func TestLinear(t *testing.T) {
	topo, h1, h2 := Linear(3)
	if topo.NumNodes() != 5 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	p := topo.Path(h1, h2, 0)
	if len(p) != 5 {
		t.Fatalf("path = %v", p)
	}
	sw := topo.SwitchPath(p)
	if len(sw) != 3 {
		t.Errorf("switch path = %v", sw)
	}
	if len(topo.EdgeSwitches()) != 3 || len(topo.Hosts()) != 2 {
		t.Error("node classification wrong")
	}
}

func TestLinearPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linear(0) should panic")
		}
	}()
	Linear(0)
}

func TestFatTreeGeometry(t *testing.T) {
	for _, k := range []int{4, 8} {
		topo := FatTree(k)
		wantSwitches := k*k/4 + k*k // (k/2)^2 core + k pods * (k/2 agg + k/2 edge)
		if got := len(topo.Switches()); got != wantSwitches {
			t.Errorf("k=%d: switches = %d, want %d", k, got, wantSwitches)
		}
		wantHosts := k * k * k / 4
		if got := len(topo.Hosts()); got != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d", k, got, wantHosts)
		}
		if got := len(topo.EdgeSwitches()); got != k*k/2 {
			t.Errorf("k=%d: edges = %d, want %d", k, got, k*k/2)
		}
	}
}

func TestFatTreePanicsOnOddArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd arity accepted")
		}
	}()
	FatTree(3)
}

func TestFatTreePathsCrossPods(t *testing.T) {
	topo := FatTree(4)
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1] // different pods
	p := topo.Path(src, dst, 7)
	if p == nil {
		t.Fatal("no path across pods")
	}
	// edge → agg → core → agg → edge = 5 switches, 7 nodes with hosts.
	if len(p) != 7 {
		t.Errorf("cross-pod path length %d, want 7: %v", len(p), p)
	}
	// Same-rack path stays at the edge switch.
	p2 := topo.Path(hosts[0], hosts[1], 7)
	if len(p2) != 3 {
		t.Errorf("same-rack path %v", p2)
	}
}

func TestECMPDeterministicAndSpreading(t *testing.T) {
	topo := FatTree(8)
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	a := topo.Path(src, dst, 123)
	b := topo.Path(src, dst, 123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ECMP not deterministic for the same flow")
		}
	}
	// Different flows should spread over distinct paths eventually.
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		p := topo.Path(src, dst, seed)
		key := ""
		for _, n := range p {
			key += topo.Node(n).Name + "/"
		}
		distinct[key] = true
	}
	if len(distinct) < 4 {
		t.Errorf("ECMP used only %d distinct paths over 64 flows", len(distinct))
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	topo := FatTree(4)
	hosts := topo.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	orig := topo.Path(src, dst, 5)
	if orig == nil {
		t.Fatal("no initial path")
	}
	// Fail the first switch-switch link on the path.
	if !topo.SetLink(orig[1], orig[2], false) {
		t.Fatal("SetLink failed")
	}
	re := topo.Path(src, dst, 5)
	if re == nil {
		t.Fatal("no path after single link failure (fat-tree is redundant)")
	}
	for i := 0; i+1 < len(re); i++ {
		if (re[i] == orig[1] && re[i+1] == orig[2]) || (re[i] == orig[2] && re[i+1] == orig[1]) {
			t.Fatal("rerouted path still uses the failed link")
		}
	}
	// Recovery.
	topo.SetLink(orig[1], orig[2], true)
	if p := topo.Path(src, dst, 5); len(p) != len(orig) {
		t.Error("path did not recover after link restore")
	}
	if topo.SetLink(0, 0xFFFF, false) {
		t.Error("SetLink on nonexistent link reported success")
	}
}

func TestUnreachable(t *testing.T) {
	topo := New()
	a := topo.AddNode("a", Host)
	b := topo.AddNode("b", Host)
	if topo.Path(a, b, 0) != nil {
		t.Error("path between disconnected nodes")
	}
	if got := topo.Path(a, a, 0); len(got) != 1 {
		t.Error("self path should be the node itself")
	}
}

func TestISPBackbone(t *testing.T) {
	topo := ISPBackbone()
	if topo.NumNodes() != 25 {
		t.Fatalf("nodes = %d, want 25", topo.NumNodes())
	}
	// Connected: every city reaches every other.
	ids := topo.Switches()
	for _, dst := range ids {
		if p := topo.Path(ids[0], dst, 1); p == nil {
			t.Fatalf("backbone disconnected: %s unreachable", topo.Node(dst).Name)
		}
	}
	ca := topo.NodeByName("SanFrancisco")
	ny := topo.NodeByName("NewYork")
	if ca < 0 || ny < 0 {
		t.Fatal("city lookup failed")
	}
	p := topo.Path(ca, ny, 3)
	if len(p) < 2 || len(p) > 8 {
		t.Errorf("transcontinental path implausible: %v", len(p))
	}
	if topo.NodeByName("Atlantis") != -1 {
		t.Error("NodeByName invented a city")
	}
}

func TestSwitchNeighborsExcludeHosts(t *testing.T) {
	topo, h1, _ := Linear(2)
	s1 := 1 // first switch
	ns := topo.SwitchNeighbors(s1)
	for _, n := range ns {
		if topo.Node(n).Kind == Host {
			t.Fatal("host leaked into switch neighbors")
		}
	}
	if len(ns) != 1 {
		t.Errorf("s1 switch neighbors = %v", ns)
	}
	_ = h1
}

func TestKindStrings(t *testing.T) {
	if Host.String() != "host" || Core.String() != "core" {
		t.Error("kind names wrong")
	}
}

func TestAddLinkSelfPanics(t *testing.T) {
	topo := New()
	a := topo.AddNode("a", Host)
	defer func() {
		if recover() == nil {
			t.Error("self link accepted")
		}
	}()
	topo.AddLink(a, a)
}

func TestRandomTopology(t *testing.T) {
	topo := Random(12, 8, 1)
	if len(topo.Switches()) != 12 {
		t.Fatalf("switches = %d", len(topo.Switches()))
	}
	// Connected by construction (ring backbone).
	for _, dst := range topo.Switches() {
		if topo.Path(0, dst, 0) == nil {
			t.Fatalf("node %d unreachable", dst)
		}
	}
	// Deterministic per seed.
	a, b := Random(10, 6, 7), Random(10, 6, 7)
	for id := 0; id < 10; id++ {
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatal("random topology not deterministic")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("tiny random graph should panic")
		}
	}()
	Random(2, 0, 0)
}
