package telemetry

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/rpc"
	"github.com/newton-net/newton/internal/wire"
)

// ExporterConfig parameterizes a switch-side exporter.
type ExporterConfig struct {
	// SwitchID names the switch in hello frames and report provenance.
	SwitchID string
	// RingSize bounds the export queue in reports (default 4096).
	RingSize int
	// BatchSize caps reports per frame (default 256). Batching amortizes
	// the per-frame encode and syscall over many reports.
	BatchSize int
	// Policy picks the overflow behavior when the ring fills.
	Policy Policy

	// Codec selects the stream encoding: CodecAuto (default) proposes
	// the binary wire protocol at hello time and falls back to JSON if
	// the peer never acks; CodecJSON forces the legacy framing;
	// CodecBinary fails construction against a non-acking peer.
	Codec Codec
	// NegotiateTimeout bounds how long a CodecAuto/CodecBinary hello
	// waits for the peer's hello-ack before deciding (default 2s).
	NegotiateTimeout time.Duration
	// KeyframeEvery is the snapshot keyframe cadence on binary streams:
	// every Nth snapshot frame carries full banks, the rest delta-encode
	// against the previous epoch (default wire.DefaultKeyframeEvery;
	// 1 disables delta encoding).
	KeyframeEvery int
	// CompressMin is the payload size in bytes from which binary frames
	// are flate-compressed (default 512; negative disables compression).
	CompressMin int

	// Redial, when set, enables auto-reconnect: after a stream error the
	// exporter keeps monitoring (reports are dropped and counted, never
	// blocked on), while a background loop redials with backoff. On
	// success it replays the hello and the latest epoch snapshot so the
	// analyzer resumes with current state. Dial sets this automatically.
	Redial func() (net.Conn, error)
	// ReconnectMin/Max bound the redial backoff (defaults 50ms / 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.NegotiateTimeout <= 0 {
		c.NegotiateTimeout = 2 * time.Second
	}
	if c.KeyframeEvery <= 0 {
		c.KeyframeEvery = wire.DefaultKeyframeEvery
	}
	if c.CompressMin == 0 {
		c.CompressMin = 512
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
	return c
}

// Exporter is the switch-side half of the telemetry plane: it accepts
// mirrored reports from the packet path, buffers them in a bounded
// ring, and pushes batched frames over a dedicated stream. A background
// writer goroutine owns the stream; the packet path only ever touches
// the ring, so a slow analyzer translates into ring pressure (block or
// drop-oldest, per policy), never into unbounded memory.
type Exporter struct {
	cfg  ExporterConfig
	conn net.Conn
	ring *ring

	writeMu sync.Mutex // serializes frames on the stream; guards conn swap
	// Stream codec state, guarded by writeMu alongside conn: whether
	// this stream negotiated the binary protocol, its snapshot delta
	// encoder (nil on JSON streams), and a reusable payload buffer.
	binary bool
	enc    *wire.SnapshotEncoder
	payBuf []byte
	lastDB uint64 // enc.DeltaBanks already folded into the mu counters
	lastKB uint64 // enc.FullBanks already folded into the mu counters

	mu           sync.Mutex
	idle         *sync.Cond
	enqueued     uint64 // reports offered to Export
	exported     uint64 // reports written to the stream
	lost         uint64 // reports lost to stream errors or late Export calls
	batches      uint64
	snapshots    uint64
	reconnects   uint64
	codecBinary  bool   // current stream negotiated the binary codec
	wireBytes    uint64 // bytes written to the stream, frame headers included
	payloadBytes uint64 // encoded bytes before compression (headers included)
	compressed   uint64 // frames the flate gate shrank
	deltaBanks   uint64 // snapshot banks sent as sparse deltas
	keyBanks     uint64 // snapshot banks sent in full
	encodeNs     uint64 // time spent encoding wire payloads
	writeErr     error
	closed       bool
	writerEnd    bool
	reconnecting bool

	// Latest epoch snapshot, cached for replay after a reconnect: the
	// analyzer's merge resumes from the switch's current state instead of
	// waiting a full window for the next roll.
	lastSnapEpoch uint32
	lastSnapBanks []modules.BankSnapshot
	hasSnap       bool

	// agent, when attached, serves this exporter's counters and epoch
	// hooks on the control channel; kept so Close (and construction
	// failures) can detach rather than leave the agent calling into a
	// dead exporter.
	agent *rpc.Agent

	closeCh chan struct{} // interrupts reconnect backoff
	wg      sync.WaitGroup
}

// NewExporter starts an exporter over an established connection (TCP to
// the analyzer, or one end of net.Pipe in tests). It sends the hello
// frame synchronously, completes the codec negotiation, and launches
// the stream writer.
func NewExporter(conn net.Conn, cfg ExporterConfig) (*Exporter, error) {
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:     cfg,
		conn:    conn,
		ring:    newRing(cfg.RingSize, cfg.Policy),
		closeCh: make(chan struct{}),
	}
	e.idle = sync.NewCond(&e.mu)
	binary, err := negotiate(conn, cfg)
	if err != nil {
		return nil, err
	}
	e.setCodec(binary)
	e.wg.Add(1)
	go e.writer()
	return e, nil
}

// negotiate opens a stream: it sends the hello (proposing the binary
// wire protocol unless cfg forces JSON) and resolves the codec. A
// hello-ack within NegotiateTimeout upgrades the stream; silence
// leaves it on JSON (CodecAuto) or fails it (CodecBinary). The read
// deadline is the only read an exporter ever performs on the stream.
func negotiate(conn net.Conn, cfg ExporterConfig) (binary bool, err error) {
	hello := &Frame{Type: FrameHello, SwitchID: cfg.SwitchID}
	if cfg.Codec != CodecJSON {
		hello.Wire = wire.Version1
	}
	if err := rpc.WriteFrame(conn, hello); err != nil {
		return false, fmt.Errorf("telemetry: hello: %w", err)
	}
	if cfg.Codec == CodecJSON {
		return false, nil
	}
	_ = conn.SetReadDeadline(time.Now().Add(cfg.NegotiateTimeout))
	var ack Frame
	ackErr := rpc.ReadFrame(conn, &ack)
	_ = conn.SetReadDeadline(time.Time{})
	granted := ackErr == nil && ack.Type == FrameHelloAck && ack.Wire >= wire.Version1
	if !granted && cfg.Codec == CodecBinary {
		if ackErr == nil {
			ackErr = fmt.Errorf("peer answered %q wire=%d", ack.Type, ack.Wire)
		}
		return false, fmt.Errorf("telemetry: binary codec required, negotiation failed: %w", ackErr)
	}
	return granted, nil
}

// setCodec installs the negotiated stream codec (writeMu side) and
// mirrors it into the stats counters (mu side).
func (e *Exporter) setCodec(binary bool) {
	e.writeMu.Lock()
	e.binary = binary
	if binary {
		e.enc = &wire.SnapshotEncoder{KeyframeEvery: e.cfg.KeyframeEvery}
		e.lastDB, e.lastKB = 0, 0
	} else {
		e.enc = nil
	}
	e.writeMu.Unlock()
	e.mu.Lock()
	e.codecBinary = binary
	e.mu.Unlock()
}

// Dial connects to an analyzer service and starts an exporter on the
// stream. The exporter auto-reconnects to addr after stream errors
// (cfg.Redial is filled in when unset).
func Dial(addr string, cfg ExporterConfig) (*Exporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: dialing analyzer: %w", err)
	}
	if cfg.Redial == nil {
		cfg.Redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	e, err := NewExporter(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return e, nil
}

// DialAttached dials an analyzer and wires the exporter into a control
// agent in one step; on any failure the agent's telemetry hooks are
// detached so it never calls into a half-built exporter.
func DialAttached(addr string, cfg ExporterConfig, a *rpc.Agent, eng *modules.Engine) (*Exporter, error) {
	e, err := Dial(addr, cfg)
	if err != nil {
		a.SetTelemetryHooks(nil, nil)
		return nil, err
	}
	e.AttachAgent(a, eng)
	return e, nil
}

// Export offers mirrored reports to the stream. Under PolicyBlock it
// blocks while the ring is full (lossless backpressure); under
// PolicyDropOldest it always returns promptly, evicting the stalest
// queued reports and counting every loss.
func (e *Exporter) Export(rs []dataplane.Report) {
	if len(rs) == 0 {
		return
	}
	accepted := e.ring.put(rs)
	e.mu.Lock()
	e.enqueued += uint64(len(rs))
	e.lost += uint64(len(rs) - accepted)
	e.idle.Broadcast()
	e.mu.Unlock()
}

// writer drains the ring and pushes report frames until the ring closes
// and empties. After a stream error it keeps draining — counting the
// undeliverable reports as lost — so block-policy producers never
// deadlock on a dead analyzer; if a redialer is configured the drops
// stop once the background reconnect restores the stream.
func (e *Exporter) writer() {
	defer e.wg.Done()
	buf := make([]dataplane.Report, 0, e.cfg.BatchSize)
	for {
		batch := e.ring.drainUpTo(e.cfg.BatchSize, buf)
		if batch == nil {
			break
		}
		var err error
		e.mu.Lock()
		dead := e.writeErr != nil
		e.mu.Unlock()
		if !dead {
			err = e.writeReports(batch)
		}
		e.mu.Lock()
		switch {
		case dead || err != nil:
			e.noteWriteErrLocked(err)
			e.lost += uint64(len(batch))
		default:
			e.exported += uint64(len(batch))
			e.batches++
		}
		e.idle.Broadcast()
		e.mu.Unlock()
	}
	e.mu.Lock()
	e.writerEnd = true
	e.idle.Broadcast()
	e.mu.Unlock()
}

// countWriter counts bytes on their way to the stream so the wire
// counters reflect what actually hit the socket, headers included.
type countWriter struct {
	w io.Writer
	n uint64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

// writeJSONLocked frames f with the legacy JSON encoding. Callers hold
// writeMu.
func (e *Exporter) writeJSONLocked(f *Frame) error {
	cw := &countWriter{w: e.conn}
	err := rpc.WriteFrame(cw, f)
	e.mu.Lock()
	e.wireBytes += cw.n
	e.payloadBytes += cw.n
	e.mu.Unlock()
	return err
}

// writeBinaryLocked compresses (size-gated) and frames one binary
// payload. encNs is the time the caller spent building the payload.
// Callers hold writeMu.
func (e *Exporter) writeBinaryLocked(kind wire.Kind, flags wire.Flags, payload []byte, encNs time.Duration) error {
	start := time.Now()
	wirePayload, zipped := wire.Compress(payload, e.cfg.CompressMin)
	if zipped {
		flags |= wire.FlagCompressed
	}
	encNs += time.Since(start)
	cw := &countWriter{w: e.conn}
	err := wire.WriteFrame(cw, kind, flags, wirePayload)
	e.mu.Lock()
	e.wireBytes += cw.n
	e.payloadBytes += uint64(len(payload)) + wire.HeaderSize
	if zipped {
		e.compressed++
	}
	e.encodeNs += uint64(encNs)
	e.mu.Unlock()
	return err
}

// writeReports pushes one report batch with the stream's codec.
func (e *Exporter) writeReports(batch []dataplane.Report) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.binary {
		return e.writeJSONLocked(&Frame{Type: FrameReports, SwitchID: e.cfg.SwitchID, Reports: batch})
	}
	start := time.Now()
	e.payBuf = wire.AppendReports(e.payBuf[:0], e.cfg.SwitchID, batch)
	return e.writeBinaryLocked(wire.KindReports, 0, e.payBuf, time.Since(start))
}

// writeSnapshotLocked pushes one epoch snapshot with the stream's
// codec. On binary streams the delta encoder commits its state at
// encode time, so any write failure resets it — the next frame after
// recovery is a keyframe the peer can ground on. Callers hold writeMu.
func (e *Exporter) writeSnapshotLocked(epoch uint32, banks []modules.BankSnapshot) error {
	if !e.binary {
		return e.writeJSONLocked(&Frame{
			Type: FrameSnapshot, SwitchID: e.cfg.SwitchID, Epoch: epoch, Snapshots: banks,
		})
	}
	start := time.Now()
	payload, flags := e.enc.Encode(e.payBuf[:0], epoch, banks)
	e.payBuf = payload
	err := e.writeBinaryLocked(wire.KindSnapshot, flags, payload, time.Since(start))
	if err != nil {
		e.enc.Reset()
	}
	db, kb := e.enc.DeltaBanks-e.lastDB, e.enc.FullBanks-e.lastKB
	e.lastDB, e.lastKB = e.enc.DeltaBanks, e.enc.FullBanks
	e.mu.Lock()
	e.deltaBanks += db
	e.keyBanks += kb
	e.mu.Unlock()
	return err
}

// writeBye sends the stream-closing stats frame with the stream's
// codec.
func (e *Exporter) writeBye(st rpc.ExportStats) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.binary {
		return e.writeJSONLocked(&Frame{Type: FrameBye, SwitchID: e.cfg.SwitchID, Stats: &st})
	}
	payload, err := wire.AppendBye(e.payBuf[:0], st)
	e.payBuf = payload
	if err != nil {
		return err
	}
	return e.writeBinaryLocked(wire.KindBye, 0, payload, 0)
}

// noteWriteErrLocked records a stream error (first one wins) and, when
// a redialer is configured, starts the background reconnect if one is
// not already running. Callers hold e.mu.
func (e *Exporter) noteWriteErrLocked(err error) {
	if err != nil && e.writeErr == nil {
		e.writeErr = err
	}
	if e.cfg.Redial == nil || e.reconnecting || e.closed {
		return
	}
	e.reconnecting = true
	e.wg.Add(1)
	go e.reconnectLoop()
}

// reconnectLoop redials the analyzer with capped exponential backoff.
// On success it sends a fresh hello, replays the latest cached epoch
// snapshot (so the analyzer's merge resumes from current state instead
// of waiting a full window), swaps the stream, and clears the error so
// the writer resumes exporting.
func (e *Exporter) reconnectLoop() {
	defer e.wg.Done()
	backoff := e.cfg.ReconnectMin
	for {
		select {
		case <-e.closeCh:
			e.mu.Lock()
			e.reconnecting = false
			e.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > e.cfg.ReconnectMax {
			backoff = e.cfg.ReconnectMax
		}
		conn, err := e.cfg.Redial()
		if err != nil {
			continue
		}
		e.mu.Lock()
		epoch, banks, replay := e.lastSnapEpoch, e.lastSnapBanks, e.hasSnap
		e.mu.Unlock()
		// Each stream negotiates its codec afresh: the analyzer may have
		// been replaced by an older (or newer) peer since the last one.
		binary, err := negotiate(conn, e.cfg)
		if err != nil {
			conn.Close()
			continue
		}
		// Swap the stream in before the replay: the writer stays parked on
		// writeErr until the replay lands, so nothing else writes. A fresh
		// delta encoder guarantees the replay is a keyframe — the new peer
		// has no state to delta against.
		e.writeMu.Lock()
		old := e.conn
		e.conn = conn
		e.binary = binary
		if binary {
			e.enc = &wire.SnapshotEncoder{KeyframeEvery: e.cfg.KeyframeEvery}
			e.lastDB, e.lastKB = 0, 0
		} else {
			e.enc = nil
		}
		e.writeMu.Unlock()
		old.Close()
		e.mu.Lock()
		e.codecBinary = binary
		e.mu.Unlock()
		if replay {
			e.writeMu.Lock()
			err := e.writeSnapshotLocked(epoch, banks)
			e.writeMu.Unlock()
			if err != nil {
				conn.Close()
				continue
			}
		}
		e.mu.Lock()
		e.writeErr = nil
		e.reconnecting = false
		e.reconnects++
		if replay {
			e.snapshots++
		}
		e.idle.Broadcast()
		e.mu.Unlock()
		return
	}
}

// ExportSnapshot pushes an epoch-boundary state-bank snapshot frame.
// Snapshots bypass the report ring: they are epoch-rate (one frame per
// window), must not be dropped (the analyzer's merge is only correct
// over complete epochs), and are written synchronously so the caller's
// epoch roll orders after the capture.
func (e *Exporter) ExportSnapshot(epoch uint32, banks []modules.BankSnapshot) error {
	// Cache first: if this write fails (or the stream is already down),
	// the reconnect replays the freshest state the switch had.
	e.mu.Lock()
	e.lastSnapEpoch, e.lastSnapBanks, e.hasSnap = epoch, banks, true
	degraded := e.writeErr
	e.mu.Unlock()
	if degraded != nil {
		return fmt.Errorf("telemetry: snapshot while stream down: %w", degraded)
	}
	e.writeMu.Lock()
	err := e.writeSnapshotLocked(epoch, banks)
	e.writeMu.Unlock()
	if err != nil {
		e.mu.Lock()
		e.noteWriteErrLocked(err)
		e.mu.Unlock()
		return fmt.Errorf("telemetry: snapshot: %w", err)
	}
	e.mu.Lock()
	e.snapshots++
	e.mu.Unlock()
	return nil
}

// ExportEpoch snapshots every installed query's state banks on eng and
// pushes them tagged with the current (ending) epoch. Call immediately
// before rolling the epoch — rolled banks read as zero.
func (e *Exporter) ExportEpoch(eng *modules.Engine) error {
	banks := eng.SnapshotBanks()
	if len(banks) == 0 {
		return nil
	}
	return e.ExportSnapshot(eng.Layout().Epoch(), banks)
}

// AttachAgent wires the exporter into a control-channel agent: epoch
// ticks from the controller snapshot-and-push the ending window's banks
// before rolling, and the agent serves the exporter's counters on the
// control channel's export_stats request. Close detaches the hooks.
func (e *Exporter) AttachAgent(a *rpc.Agent, eng *modules.Engine) {
	e.mu.Lock()
	e.agent = a
	e.mu.Unlock()
	a.SetTelemetryHooks(func() { _ = e.ExportEpoch(eng) }, e.Stats)
}

// Detach removes this exporter's hooks from the attached agent (if
// any), so epoch ticks no longer call into it.
func (e *Exporter) Detach() {
	e.mu.Lock()
	a := e.agent
	e.agent = nil
	e.mu.Unlock()
	if a != nil {
		a.SetTelemetryHooks(nil, nil)
	}
}

// Flush blocks until everything offered to Export so far has been
// written to the stream or accounted as lost/dropped.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		dropped, _ := e.ring.stats()
		if e.exported+e.lost+dropped >= e.enqueued || e.writerEnd {
			return e.writeErr
		}
		e.idle.Wait()
	}
}

// Stats returns the exporter's counter snapshot. Dropped aggregates
// ring evictions and stream-error losses; a zero Dropped under
// PolicyBlock certifies lossless export.
func (e *Exporter) Stats() rpc.ExportStats {
	dropped, overflows := e.ring.stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	codec := CodecJSON.String()
	if e.codecBinary {
		codec = CodecBinary.String()
	}
	return rpc.ExportStats{
		Enqueued:   e.enqueued,
		Exported:   e.exported,
		Dropped:    dropped + e.lost,
		Overflows:  overflows,
		Batches:    e.batches,
		Snapshots:  e.snapshots,
		Reconnects: e.reconnects,

		Codec:            codec,
		WireBytes:        e.wireBytes,
		PayloadBytes:     e.payloadBytes,
		CompressedFrames: e.compressed,
		DeltaBanks:       e.deltaBanks,
		KeyframeBanks:    e.keyBanks,
		EncodeNs:         e.encodeNs,
	}
}

// Err returns the first stream error, if any.
func (e *Exporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeErr
}

// Close detaches any agent hooks, drains the ring (flushing every
// queued report), sends a bye frame with final counters, and closes the
// stream. Under PolicyBlock nothing offered before Close is lost unless
// the stream itself died.
func (e *Exporter) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.Detach()
	close(e.closeCh) // stop any in-flight reconnect backoff

	e.ring.close()
	e.wg.Wait() // writer drains all pending reports; reconnector exits

	st := e.Stats()
	_ = e.writeBye(st)
	e.writeMu.Lock()
	err := e.conn.Close()
	e.writeMu.Unlock()
	e.mu.Lock()
	werr := e.writeErr
	e.mu.Unlock()
	if werr != nil {
		return werr
	}
	return err
}
