package rpc

import (
	"testing"
	"time"
)

// TestReplayCacheCappedUnderHammer hammers the dispatch path with far
// more distinct request IDs than the cache holds and asserts the cache
// never exceeds its cap — the regression this guards is unbounded
// per-request-ID growth under long-lived churn.
func TestReplayCacheCappedUnderHammer(t *testing.T) {
	agent, _ := testAgent(t)
	const hammer = 10 * replayCap
	for id := uint64(1); id <= hammer; id++ {
		resp := agent.dispatch(&Request{Type: typeStats, ID: id})
		if !resp.OK {
			t.Fatalf("stats %d: %+v", id, resp)
		}
		if n := agent.ReplayCacheLen(); n > replayCap {
			t.Fatalf("replay cache grew to %d entries (cap %d) after %d requests", n, replayCap, id)
		}
	}
	if n := agent.ReplayCacheLen(); n != replayCap {
		t.Fatalf("replay cache holds %d entries after hammer, want exactly %d", n, replayCap)
	}

	// The newest IDs must still replay (at-most-once survives eviction
	// of old entries), and evicted ones must re-execute without error.
	before := agent.ReplayHits()
	agent.dispatch(&Request{Type: typeStats, ID: hammer})
	if got := agent.ReplayHits(); got != before+1 {
		t.Fatalf("retransmit of newest ID missed the cache (hits %d -> %d)", before, got)
	}
	agent.dispatch(&Request{Type: typeStats, ID: 1})
	if got := agent.ReplayHits(); got != before+1 {
		t.Fatalf("evicted ID 1 still answered from cache")
	}
}

// TestReplayCacheAgesOut drives a fake clock past the TTL and asserts
// entries are evicted by age, not only by count — a low-rate agent must
// not pin replayCap responses forever.
func TestReplayCacheAgesOut(t *testing.T) {
	agent, _ := testAgent(t)
	now := time.Unix(1000, 0)
	agent.nowFn = func() time.Time { return now }

	for id := uint64(1); id <= 10; id++ {
		agent.dispatch(&Request{Type: typeStats, ID: id})
	}
	if n := agent.ReplayCacheLen(); n != 10 {
		t.Fatalf("cache holds %d entries, want 10", n)
	}

	// Within the TTL nothing ages out and retransmits still hit.
	now = now.Add(replayTTL)
	before := agent.ReplayHits()
	agent.dispatch(&Request{Type: typeStats, ID: 5})
	if got := agent.ReplayHits(); got != before+1 {
		t.Fatalf("in-TTL retransmit missed the cache")
	}

	// One tick past the TTL the old entries are gone; a new request
	// triggers the sweep.
	now = now.Add(replayTTL + time.Second)
	agent.dispatch(&Request{Type: typeStats, ID: 100})
	if n := agent.ReplayCacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries after TTL sweep, want 1 (the fresh request)", n)
	}
	before = agent.ReplayHits()
	agent.dispatch(&Request{Type: typeStats, ID: 5})
	if got := agent.ReplayHits(); got != before {
		t.Fatalf("aged-out ID 5 still answered from cache")
	}
}
