// Fleet health: the closed loop that turns the orchestrator's manual
// Drain/Undrain/Converge levers into a self-healing control plane. A
// Monitor consumes two signal classes per switch — an active control-
// channel probe (a Stats round trip through the hardened rpc client,
// so transient faults are already retried away) and the analyzer's
// passive telemetry liveness (when did this switch's stream last
// produce a frame) — and drives a debounced state machine:
//
//	healthy → suspect → down → recovering → healthy
//
// Consecutive bad evaluation rounds move a switch toward down
// (debounce: one failed probe is never a drain); on entering down the
// monitor marks the switch offline at the controller (so removes
// targeting it are deferred instead of hanging), drains it, and
// converges the fleet — re-placing its queries onto the live switches
// through the ordinary delta Apply, which re-pins the telemetry
// service's expected contributors so merged epochs keep honest
// Partial/Missing provenance throughout. Recovery is hysteretic: a
// down switch must hold RecoverAfter consecutive good rounds before it
// is re-admitted, and any bad round while recovering resets the count
// (a flapping switch stays out). On re-admission the controller first
// flushes the removes deferred while the switch was unreachable, so a
// partitioned-but-alive switch cannot rejoin holding stale programs.
package orchestrator

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// HealthState is one switch's position in the liveness state machine.
type HealthState int

const (
	// Healthy switches are in the plannable fleet and answering.
	Healthy HealthState = iota
	// Suspect switches failed recent checks but are not yet drained.
	Suspect
	// Down switches are drained out of the fleet.
	Down
	// Recovering switches are answering again but have not yet held
	// steady long enough to be re-admitted (hysteresis).
	Recovering
)

// String names the state as `newton-ctl status` prints it.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Fleet is the slice of the orchestrator the monitor drives. It is an
// interface so the state machine is testable against a fake; the real
// *Orchestrator satisfies it.
type Fleet interface {
	Drain(name string)
	Undrain(name string)
	Converge() (*Plan, Diff, error)
	Plan() (*Plan, Diff, error)
}

// HealthConfig parameterizes a Monitor. Probe is required; everything
// else defaults.
type HealthConfig struct {
	// Probe actively checks one switch's control channel (typically a
	// client.Stats round trip). A nil error is a good signal. The probe
	// should carry its own bounded timeout/retry budget — the monitor
	// runs probes concurrently but waits for all of them each round.
	Probe func(name string) error

	// Liveness, when set, is the passive telemetry signal — wired to
	// telemetry.Service.AgentLiveness. A switch whose stream has
	// produced no frame for more than MaxSilence counts as a bad round
	// even when its control channel still answers: monitoring data is
	// the product, and a switch that stopped exporting is not serving
	// its queries.
	Liveness func(name string) (lastSeen time.Time, connected bool, ok bool)
	// MaxSilence is the telemetry last-seen age beyond which a switch
	// counts as silent (0 disables the liveness signal even when
	// Liveness is set).
	MaxSilence time.Duration

	// Offline, when set, is called with true when a switch goes down
	// (before it is drained) and false when it is re-admitted (before
	// it is undrained) — wired to controller.Remote.SetOffline so the
	// delta Apply defers removes on the unreachable switch instead of
	// failing, and flushes them when it returns.
	Offline func(name string, offline bool) error

	// SuspectAfter is how many consecutive bad rounds move a healthy
	// switch to suspect (default 1). DownAfter is how many further bad
	// rounds move a suspect switch to down (default 2) — so with the
	// defaults a switch is drained on its third consecutive bad round.
	SuspectAfter int
	DownAfter    int
	// RecoverAfter is how many consecutive good rounds a down switch
	// must hold before re-admission (default 3). A single bad round
	// while recovering resets the count — the hysteresis that keeps a
	// flapping switch out of the fleet.
	RecoverAfter int

	// ForgetAfter, when > 0, fires OnForget once for a switch that has
	// stayed down this long — the hook for releasing per-switch
	// bookkeeping held elsewhere (telemetry.Service.ForgetAgent). The
	// switch stays in the state machine and can still recover.
	ForgetAfter time.Duration
	OnForget    func(name string)

	// OnTransition, when set, observes every state change.
	OnTransition func(ev HealthEvent)

	// Now overrides the clock (deterministic tests).
	Now func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// HealthEvent is one entry of the monitor's event log: a state
// transition or a fleet action taken because of one.
type HealthEvent struct {
	At       time.Time
	Switch   string
	From, To HealthState
	Action   string // "", "auto-drain", "auto-undrain", "forget"
	Reason   string
}

// String renders the event for logs and `newton-ctl status`.
func (ev HealthEvent) String() string {
	s := fmt.Sprintf("%-12s %s -> %s", ev.Switch, ev.From, ev.To)
	if ev.Action != "" {
		s += " [" + ev.Action + "]"
	}
	if ev.Reason != "" {
		s += " (" + ev.Reason + ")"
	}
	return s
}

// SwitchHealth is one switch's row in the fleet snapshot.
type SwitchHealth struct {
	Switch      string
	State       HealthState
	LastSeen    time.Time     // last good signal (probe or telemetry frame)
	LastSeenAge time.Duration // age of LastSeen at snapshot time
	LastErr     string        // most recent bad-signal reason
	DrainReason string        // why the monitor drained it (down/recovering only)
	DownSince   time.Time     // when it entered Down (zero if never)
	Flaps       int           // recoveries that collapsed back to down
	Forgotten   bool          // OnForget fired for the current outage
}

// FleetHealth is the monitor's snapshot API: per-switch state plus the
// fleet-level convergence picture.
type FleetHealth struct {
	Switches      []SwitchHealth // sorted by name
	PendingDeltas int            // diff entries a pure Plan reports right now
	PlanErr       string         // non-empty when the pending-delta plan failed
	AutoDrains    uint64
	AutoUndrains  uint64
	ConvergeErrs  uint64
	Events        []HealthEvent // most recent first-to-last, bounded
}

// String renders the snapshot as `newton-ctl status` prints it.
func (fh FleetHealth) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-11s %-12s %-8s %s\n", "SWITCH", "STATE", "LAST-SEEN", "FLAPS", "DRAIN-REASON")
	for _, sw := range fh.Switches {
		age := "never"
		if !sw.LastSeen.IsZero() {
			age = sw.LastSeenAge.Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(&b, "%-14s %-11s %-12s %-8d %s\n", sw.Switch, sw.State, age, sw.Flaps, sw.DrainReason)
	}
	fmt.Fprintf(&b, "pending deltas: %d", fh.PendingDeltas)
	if fh.PlanErr != "" {
		fmt.Fprintf(&b, " (plan error: %s)", fh.PlanErr)
	}
	fmt.Fprintf(&b, "  auto-drains: %d  auto-undrains: %d  converge errors: %d\n",
		fh.AutoDrains, fh.AutoUndrains, fh.ConvergeErrs)
	return b.String()
}

// swHealth is the per-switch state machine bookkeeping.
type swHealth struct {
	state       HealthState
	bad, good   int // consecutive bad/good rounds in the current state
	lastSeen    time.Time
	lastErr     string
	drainReason string
	downSince   time.Time
	flaps       int
	forgotten   bool
}

// eventLogCap bounds the monitor's in-memory event history.
const eventLogCap = 256

// TickReport summarizes one evaluation round.
type TickReport struct {
	Transitions []HealthEvent
	Drained     []string // switches auto-drained this round
	Undrained   []string // switches auto-undrained this round
	Converged   bool     // a converge ran and succeeded
	ConvergeErr error
	Deltas      int // diff entries the converge applied
}

// Monitor is the fleet health controller. Construct with NewMonitor,
// then either call Tick on your own cadence or Run a background loop.
type Monitor struct {
	fleet Fleet
	cfg   HealthConfig

	tickMu sync.Mutex // serializes evaluation rounds

	mu       sync.Mutex // guards everything below
	switches []string
	states   map[string]*swHealth
	events   []HealthEvent
	dirty    bool // a converge is owed (actions taken, or a prior one failed)

	autoDrains   uint64
	autoUndrains uint64
	convergeErrs uint64
	converges    uint64
	convergeNs   []int64 // per-converge wall time, for deploy-latency tails
}

// NewMonitor builds a health monitor over the named switches (for an
// *Orchestrator fleet, pass orch.Switches()).
func NewMonitor(fleet Fleet, switches []string, cfg HealthConfig) (*Monitor, error) {
	if fleet == nil {
		return nil, fmt.Errorf("health: nil fleet")
	}
	if cfg.Probe == nil {
		return nil, fmt.Errorf("health: nil probe")
	}
	if len(switches) == 0 {
		return nil, fmt.Errorf("health: empty switch set")
	}
	cfg = cfg.withDefaults()
	m := &Monitor{fleet: fleet, cfg: cfg, states: map[string]*swHealth{}}
	m.switches = append(m.switches, switches...)
	sort.Strings(m.switches)
	now := cfg.Now()
	for _, name := range m.switches {
		m.states[name] = &swHealth{state: Healthy, lastSeen: now}
	}
	return m, nil
}

// signal is one round's combined health verdict for a switch.
type signal struct {
	name    string
	bad     bool
	reason  string
	seenAt  time.Time // non-zero when a good signal carries a timestamp
	hasSeen bool
}

// collect probes every switch concurrently and folds in the telemetry
// liveness signal. No monitor lock is held: probes are network calls.
func (m *Monitor) collect(now time.Time, switches []string) []signal {
	sigs := make([]signal, len(switches))
	var wg sync.WaitGroup
	for i, name := range switches {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			s := signal{name: name}
			if err := m.cfg.Probe(name); err != nil {
				s.bad, s.reason = true, "probe: "+err.Error()
			} else {
				s.seenAt, s.hasSeen = now, true
			}
			if !s.bad && m.cfg.Liveness != nil && m.cfg.MaxSilence > 0 {
				if last, _, ok := m.cfg.Liveness(name); ok {
					if age := now.Sub(last); age > m.cfg.MaxSilence {
						s.bad = true
						s.reason = fmt.Sprintf("telemetry: silent for %v", age.Round(time.Millisecond))
					} else if last.After(s.seenAt) {
						s.seenAt, s.hasSeen = last, true
					}
				}
			}
			sigs[i] = s
		}(i, name)
	}
	wg.Wait()
	return sigs
}

// Tick runs one evaluation round: probe, advance every state machine,
// and — when any switch crossed a drain/undrain boundary (or a prior
// converge failed) — drive the fleet's delta machinery.
func (m *Monitor) Tick() TickReport {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	now := m.cfg.Now()
	m.mu.Lock()
	switches := append([]string(nil), m.switches...)
	m.mu.Unlock()
	sigs := m.collect(now, switches)

	var rep TickReport
	var forgets []string
	m.mu.Lock()
	for _, s := range sigs {
		st := m.states[s.name]
		if st == nil {
			continue
		}
		if s.hasSeen && s.seenAt.After(st.lastSeen) {
			st.lastSeen = s.seenAt
		}
		if s.bad {
			st.lastErr = s.reason
		}
		from := st.state
		var action string
		switch st.state {
		case Healthy:
			if s.bad {
				st.bad++
				st.good = 0
				if st.bad >= m.cfg.SuspectAfter {
					st.state, st.bad = Suspect, 0
				}
			} else {
				st.bad = 0
			}
		case Suspect:
			if s.bad {
				st.bad++
				if st.bad >= m.cfg.DownAfter {
					st.state = Down
					st.downSince, st.drainReason = now, s.reason
					st.bad, st.good, st.forgotten = 0, 0, false
					action = "auto-drain"
					rep.Drained = append(rep.Drained, s.name)
				}
			} else {
				// One good round clears suspicion: debounce, not hysteresis —
				// that is reserved for re-admission after a drain.
				st.state, st.bad, st.good = Healthy, 0, 0
			}
		case Down:
			if s.bad {
				if m.cfg.ForgetAfter > 0 && !st.forgotten && now.Sub(st.downSince) >= m.cfg.ForgetAfter {
					st.forgotten = true
					forgets = append(forgets, s.name)
				}
			} else {
				st.state, st.good = Recovering, 1
				if st.good >= m.cfg.RecoverAfter {
					st.state, st.good = Healthy, 0
					action = "auto-undrain"
					rep.Undrained = append(rep.Undrained, s.name)
				}
			}
		case Recovering:
			if s.bad {
				// Flap: back to down without re-draining (it never left).
				st.state, st.good = Down, 0
				st.flaps++
				st.drainReason = s.reason
			} else {
				st.good++
				if st.good >= m.cfg.RecoverAfter {
					st.state, st.good = Healthy, 0
					st.drainReason = ""
					action = "auto-undrain"
					rep.Undrained = append(rep.Undrained, s.name)
				}
			}
		}
		if st.state != from {
			ev := HealthEvent{At: now, Switch: s.name, From: from, To: st.state,
				Action: action, Reason: s.reason}
			if !s.bad && action == "" {
				ev.Reason = ""
			}
			rep.Transitions = append(rep.Transitions, ev)
			m.logLocked(ev)
		}
	}
	if len(rep.Drained)+len(rep.Undrained) > 0 {
		m.dirty = true
	}
	dirty := m.dirty
	m.mu.Unlock()

	for _, ev := range rep.Transitions {
		if m.cfg.OnTransition != nil {
			m.cfg.OnTransition(ev)
		}
	}
	for _, name := range forgets {
		ev := HealthEvent{At: now, Switch: name, From: Down, To: Down,
			Action: "forget", Reason: "down past ForgetAfter"}
		m.mu.Lock()
		m.logLocked(ev)
		m.mu.Unlock()
		if m.cfg.OnForget != nil {
			m.cfg.OnForget(name)
		}
	}

	// Fleet actions, outside m.mu: marking offline and converging can
	// take real time on the control channel.
	for _, name := range rep.Drained {
		if m.cfg.Offline != nil {
			_ = m.cfg.Offline(name, true)
		}
		m.fleet.Drain(name)
		m.bump(&m.autoDrains)
	}
	for _, name := range rep.Undrained {
		if m.cfg.Offline != nil {
			// A failed flush means the switch is flaky again; converge
			// below will surface it, and the probes will re-drain it.
			_ = m.cfg.Offline(name, false)
		}
		m.fleet.Undrain(name)
		m.bump(&m.autoUndrains)
	}
	if dirty {
		start := m.cfg.Now()
		_, d, err := m.fleet.Converge()
		elapsed := m.cfg.Now().Sub(start)
		m.mu.Lock()
		m.converges++
		m.convergeNs = append(m.convergeNs, elapsed.Nanoseconds())
		if err != nil {
			m.convergeErrs++
			rep.ConvergeErr = err
		} else {
			m.dirty = false
			rep.Converged = true
			rep.Deltas = len(d.Deltas)
		}
		m.mu.Unlock()
	}
	return rep
}

// bump increments a monitor counter under the state lock.
func (m *Monitor) bump(p *uint64) {
	m.mu.Lock()
	*p++
	m.mu.Unlock()
}

// logLocked appends to the bounded event log. Callers hold m.mu.
func (m *Monitor) logLocked(ev HealthEvent) {
	if len(m.events) >= eventLogCap {
		copy(m.events, m.events[len(m.events)-eventLogCap+1:])
		m.events = m.events[:eventLogCap-1]
	}
	m.events = append(m.events, ev)
}

// Run ticks the monitor every interval until stop closes. The caller
// owns the goroutine: `go mon.Run(500*time.Millisecond, stop)`.
func (m *Monitor) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// State returns one switch's current health state (Healthy, false when
// the switch is unknown).
func (m *Monitor) State(name string) (HealthState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[name]
	if !ok {
		return Healthy, false
	}
	return st.state, true
}

// ConvergeDurations returns the wall time of every converge the monitor
// drove, in order — the auto-heal deploy latencies the soak's p99 is
// computed over.
func (m *Monitor) ConvergeDurations() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]time.Duration, len(m.convergeNs))
	for i, ns := range m.convergeNs {
		out[i] = time.Duration(ns)
	}
	return out
}

// Events returns a copy of the bounded event log.
func (m *Monitor) Events() []HealthEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]HealthEvent(nil), m.events...)
}

// Snapshot assembles the fleet health view `newton-ctl status` renders:
// per-switch state with last-seen ages and drain reasons, plus the
// pending delta count from a pure (agent-free) Plan.
func (m *Monitor) Snapshot() FleetHealth {
	now := m.cfg.Now()
	m.mu.Lock()
	fh := FleetHealth{
		AutoDrains:   m.autoDrains,
		AutoUndrains: m.autoUndrains,
		ConvergeErrs: m.convergeErrs,
		Events:       append([]HealthEvent(nil), m.events...),
	}
	for _, name := range m.switches {
		st := m.states[name]
		fh.Switches = append(fh.Switches, SwitchHealth{
			Switch:      name,
			State:       st.state,
			LastSeen:    st.lastSeen,
			LastSeenAge: now.Sub(st.lastSeen),
			LastErr:     st.lastErr,
			DrainReason: st.drainReason,
			DownSince:   st.downSince,
			Flaps:       st.flaps,
			Forgotten:   st.forgotten,
		})
	}
	m.mu.Unlock()

	if _, d, err := m.fleet.Plan(); err != nil {
		fh.PlanErr = err.Error()
	} else {
		fh.PendingDeltas = len(d.Deltas)
	}
	return fh
}
