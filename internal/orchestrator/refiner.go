// Closed-loop adaptive accuracy (the feedback half of the intent
// pipeline): intents declare a tolerated error, the analyzer measures
// the error its merged sketches actually admit, and the Refiner drives
// the width ladder in reverse — widening queries whose observed bound
// exceeds tolerance and narrowing over-provisioned ones — through the
// controller's in-place resize, so the fleet converges to the cheapest
// geometry that honors every intent instead of provisioning for the
// worst case.
package orchestrator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/telemetry"
)

// RefineFleet is the orchestrator surface the refiner drives.
// *Orchestrator satisfies it; tests substitute fakes.
type RefineFleet interface {
	Intents() []Intent
	Deployed() map[string]QueryPlan
	QID(name string) int
	SetWidthCap(name string, w uint32)
	Converge() (*Plan, Diff, error)
}

// AccuracySource is the analyzer surface the refiner reads its error
// feedback from. *telemetry.Service satisfies it.
type AccuracySource interface {
	LatestSettledEpoch(qid int) (uint32, bool)
	ObservedAccuracy(qid int, epoch uint32, scale uint64) (telemetry.QueryAccuracy, bool)
}

// RefinerConfig tunes the hysteresis. Every epoch-valued knob counts
// SETTLED epochs — merges with every contributor present and no width
// transition — so wall-clock speed never changes the control behavior.
type RefinerConfig struct {
	// WidenAfter is how many consecutive settled epochs the observed
	// error must exceed tolerance before the refiner widens. Low: an
	// under-provisioned query is WRONG right now (widen-fast).
	WidenAfter int
	// NarrowAfter is how many consecutive settled epochs the query must
	// look over-provisioned before the refiner narrows. High: narrowing
	// merely saves memory, and a premature narrow flaps (narrow-slow).
	NarrowAfter int
	// NarrowMargin discounts the tolerance when judging a narrow: the
	// predicted error at the next rung down must stay within
	// NarrowMargin·MaxRelErr, leaving headroom for stream growth.
	NarrowMargin float64
	// CooldownEpochs is how many settled epochs after any resize the
	// refiner ignores a query — the first post-resize epochs measure a
	// half-filled sketch.
	CooldownEpochs int
	// FlapEpochs is the settled-epoch window within which a direction
	// reversal (widen after narrow or vice versa) counts as a flap.
	FlapEpochs int
	// RejectHold is how long a rung the admission planner refused stays
	// remembered: until it expires the refiner will not bid for that
	// rung (or above) again, so a rejected widen cannot retry-storm.
	RejectHold time.Duration
	// Clock supplies wall time (for RejectHold expiry and event
	// timestamps only — control decisions count epochs). Nil means
	// time.Now; tests inject a fake.
	Clock func() time.Time
}

func (c RefinerConfig) withDefaults() RefinerConfig {
	if c.WidenAfter <= 0 {
		c.WidenAfter = 2
	}
	if c.NarrowAfter <= 0 {
		c.NarrowAfter = 6
	}
	if c.NarrowMargin <= 0 || c.NarrowMargin >= 1 {
		c.NarrowMargin = 0.6
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 2
	}
	if c.FlapEpochs <= 0 {
		c.FlapEpochs = 4
	}
	if c.RejectHold <= 0 {
		c.RejectHold = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// RefineEvent is one control decision, for operators and tests.
type RefineEvent struct {
	Time     time.Time
	Query    string
	QID      int
	Epoch    uint32
	Action   string // "widen", "narrow", "reject", "flap"
	From, To uint32
	Observed float64
	Target   float64
}

func (e RefineEvent) String() string {
	return fmt.Sprintf("%-7s %s (qid %d, epoch %d) width %d -> %d (observed %.3g, target %.3g)",
		e.Action, e.Query, e.QID, e.Epoch, e.From, e.To, e.Observed, e.Target)
}

// QueryRefineState is one query's control-loop snapshot.
type QueryRefineState struct {
	Query    string
	QID      int
	Width    uint32
	Epoch    uint32
	Observed float64
	Target   float64
	InBand   bool

	OverRuns, UnderRuns      int
	Widens, Narrows, Resizes int
	Flaps                    int
	Rejected                 uint32 // remembered refused rung (0 when none)
	LastAction               string
}

// qState is the refiner's per-query hysteresis memory.
type qState struct {
	qid      int
	hasEpoch bool
	epoch    uint32 // last settled epoch processed
	seq      int    // settled epochs processed

	overRuns, underRuns int
	cooldownUntil       int // seq until which observations are ignored
	lastDir             int // +1 widen, -1 narrow
	lastDirSeq          int

	rejectedRung  uint32
	rejectedUntil time.Time

	widens, narrows, resizes, flaps int
	observed, target                float64
	width                           uint32
	inBand                          bool
	lastAction                      string
}

// Refiner closes the accuracy loop: Step reads each accuracy-enabled
// intent's newest settled error estimate and, with hysteresis, resizes
// the deployment through the fleet's width-cap + converge path.
type Refiner struct {
	cfg   RefinerConfig
	fleet RefineFleet
	src   AccuracySource

	mu     sync.Mutex
	states map[string]*qState
}

// NewRefiner builds the control loop over a fleet and its analyzer.
func NewRefiner(fleet RefineFleet, src AccuracySource, cfg RefinerConfig) *Refiner {
	return &Refiner{
		cfg: cfg.withDefaults(), fleet: fleet, src: src,
		states: map[string]*qState{},
	}
}

// StepReport summarizes one control pass.
type StepReport struct {
	Examined int // accuracy-enabled intents with a new settled epoch
	Events   []RefineEvent
}

// Step runs one control pass. Each accuracy-enabled, deployed intent is
// examined only when the analyzer has a NEW settled epoch for it —
// partial and width-transition epochs never drive a decision. Returns
// the decisions taken; a converge error aborts the pass.
func (r *Refiner) Step() (StepReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rep StepReport
	for _, in := range r.fleet.Intents() {
		if !in.Accuracy.Enabled() || in.Query == nil {
			continue
		}
		name := in.Query.Name
		qid := r.fleet.QID(name)
		if qid == 0 {
			continue // not deployed (rejected, or not yet applied)
		}
		st := r.states[name]
		if st == nil || st.qid != qid {
			st = &qState{qid: qid}
			r.states[name] = st
		}
		epoch, ok := r.src.LatestSettledEpoch(qid)
		if !ok || (st.hasEpoch && epoch <= st.epoch) {
			continue // no new settled evidence
		}
		scale := uint64(in.Query.Threshold())
		qa, ok := r.src.ObservedAccuracy(qid, epoch, scale)
		if !ok || qa.Partial || qa.Transition {
			continue
		}
		st.hasEpoch, st.epoch = true, epoch
		st.seq++
		rep.Examined++

		plan, deployed := r.fleet.Deployed()[name]
		if !deployed {
			continue
		}
		st.width = plan.Width
		st.target = in.Accuracy.MaxRelErr
		st.observed = qa.Observed()
		st.inBand = st.observed <= st.target
		if r.cfg.Clock().After(st.rejectedUntil) {
			st.rejectedRung = 0
		}
		if st.seq <= st.cooldownUntil {
			continue // sketch still refilling after the last resize
		}

		evs, err := r.controlLocked(st, in, name, qa, scale)
		rep.Events = append(rep.Events, evs...)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// controlLocked applies the hysteresis state machine to one query's
// fresh observation and performs at most one resize.
func (r *Refiner) controlLocked(st *qState, in Intent, name string, qa telemetry.QueryAccuracy, scale uint64) ([]RefineEvent, error) {
	tol := in.Accuracy.MaxRelErr
	w := st.width

	if !st.inBand {
		st.underRuns = 0
		st.overRuns++
		if st.overRuns < r.cfg.WidenAfter {
			return nil, nil
		}
		// Widen-fast: jump straight to the rung the measured stream
		// needs, never less than one rung up.
		want, err := scheduler.WidthForTarget(tol, qa.StreamTotal, scale)
		if err != nil {
			return nil, err
		}
		if want <= w {
			want = w * 2
		}
		want = scheduler.ClampToLadder(want, in.MinWidth, in.MaxWidth)
		if st.rejectedRung != 0 && want >= st.rejectedRung {
			// The planner refused this rung recently; bid just below it
			// until the hold expires.
			want = scheduler.ClampToLadder(st.rejectedRung/2, in.MinWidth, in.MaxWidth)
		}
		if want <= w {
			st.lastAction = "at-max"
			st.overRuns = 0 // nowhere to go; stop accumulating
			return nil, nil
		}
		return r.resizeLocked(st, name, w, want, +1, qa)
	}

	// In band: is the NEXT rung down still comfortably inside tolerance?
	st.overRuns = 0
	down := scheduler.ClampToLadder(w/2, in.MinWidth, in.MaxWidth)
	if down >= w || qa.PredictedAtWidth(down) > r.cfg.NarrowMargin*tol {
		st.underRuns = 0
		return nil, nil
	}
	st.underRuns++
	if st.underRuns < r.cfg.NarrowAfter {
		return nil, nil
	}
	// Narrow-slow: one rung at a time.
	return r.resizeLocked(st, name, w, down, -1, qa)
}

// resizeLocked commits one resize decision through the fleet: pin the
// width cap, converge, and read back what the planner actually granted.
// A grant below the bid is recorded as a rejection (with RejectHold) so
// the refiner stops bidding for capacity the fleet does not have.
func (r *Refiner) resizeLocked(st *qState, name string, from, want uint32, dir int, qa telemetry.QueryAccuracy) ([]RefineEvent, error) {
	now := r.cfg.Clock()
	var evs []RefineEvent
	ev := func(action string, to uint32) {
		evs = append(evs, RefineEvent{
			Time: now, Query: name, QID: st.qid, Epoch: st.epoch,
			Action: action, From: from, To: to,
			Observed: st.observed, Target: st.target,
		})
	}

	if st.lastDir != 0 && dir != st.lastDir && st.seq-st.lastDirSeq <= r.cfg.FlapEpochs {
		// Direction reversal inside the flap window: the hysteresis
		// failed to damp an oscillation. Count it loudly — the
		// convergence gate asserts zero — but still obey the controller.
		st.flaps++
		ev("flap", want)
	}

	r.fleet.SetWidthCap(name, want)
	if _, _, err := r.fleet.Converge(); err != nil {
		return evs, fmt.Errorf("refiner: converge %s to width %d: %w", name, want, err)
	}
	granted := want
	if plan, ok := r.fleet.Deployed()[name]; ok {
		granted = plan.Width
	}
	if granted != want {
		// The planner degraded (or refused) the bid: remember the rung
		// so the next pass does not retry it until the hold expires, and
		// pin the cap at what the fleet actually holds.
		st.rejectedRung = want
		st.rejectedUntil = now.Add(r.cfg.RejectHold)
		r.fleet.SetWidthCap(name, granted)
		ev("reject", granted)
	}
	if granted != from {
		st.resizes++
		if granted > from {
			st.widens++
			st.lastAction = "widen"
			ev("widen", granted)
		} else {
			st.narrows++
			st.lastAction = "narrow"
			ev("narrow", granted)
		}
		st.lastDir, st.lastDirSeq = dir, st.seq
		st.cooldownUntil = st.seq + r.cfg.CooldownEpochs
		st.width = granted
	}
	st.overRuns, st.underRuns = 0, 0
	return evs, nil
}

// Run drives Step on a fixed interval until stop closes.
func (r *Refiner) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			r.Step() // converge errors surface in the next operator Step
		}
	}
}

// States returns every tracked query's control-loop snapshot, sorted by
// query name.
func (r *Refiner) States() []QueryRefineState {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.states))
	for n := range r.states {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]QueryRefineState, 0, len(names))
	for _, n := range names {
		st := r.states[n]
		out = append(out, QueryRefineState{
			Query: n, QID: st.qid, Width: st.width, Epoch: st.epoch,
			Observed: st.observed, Target: st.target, InBand: st.inBand,
			OverRuns: st.overRuns, UnderRuns: st.underRuns,
			Widens: st.widens, Narrows: st.narrows, Resizes: st.resizes,
			Flaps: st.flaps, Rejected: st.rejectedRung, LastAction: st.lastAction,
		})
	}
	return out
}
