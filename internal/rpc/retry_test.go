package rpc

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"github.com/newton-net/newton/internal/faults"
	"github.com/newton-net/newton/internal/packet"
)

// agentOverTCP serves one agent on a loopback listener (optionally
// fault-wrapped) and returns its address.
func agentOverTCP(t *testing.T, a *Agent, inj *faults.Injector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := net.Listener(ln)
	if inj != nil {
		wrapped = inj.Listener(ln)
	}
	go a.Serve(wrapped)
	t.Cleanup(func() { a.Close() })
	return ln.Addr().String()
}

func TestClientRetriesThroughInjectedResets(t *testing.T) {
	agent, _ := testAgent(t)
	// ResetProb gates every low-level read and write, so a round trip
	// crosses several chances to die; keep the per-op rate modest and
	// the retry budget generous.
	inj := faults.New(faults.Config{Seed: 11, ResetProb: 0.08})
	addr := agentOverTCP(t, agent, inj)

	c, err := DialOptions(addr, Options{
		Timeout: 2 * time.Second, Retries: 16,
		BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Install(compileQ1(t, 1)); err != nil {
		t.Fatalf("Install under resets: %v", err)
	}
	for i := 0; i < 20; i++ {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("Stats %d under resets: %v", i, err)
		}
		if st.Installed != 1 {
			t.Fatalf("Stats %d = %+v, want 1 installed", i, st)
		}
	}
	if inj.Stats().Resets == 0 {
		t.Skip("seed produced no resets; nothing exercised")
	}
	if c.Counters().Redials == 0 {
		t.Error("resets occurred but the client never redialed")
	}
}

func TestRetriedInstallIsExactlyOnce(t *testing.T) {
	// An install whose response is lost must not fail its retry with
	// "already installed": the replay cache answers the retransmit.
	agent, _ := testAgent(t)
	inj := faults.New(faults.Config{Seed: 3}) // manual partition control
	addr := agentOverTCP(t, agent, inj)

	c, err := DialOptions(addr, Options{
		Timeout: 200 * time.Millisecond, Retries: 10,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stall after the request lands: the agent executes the install but
	// the response never reaches the client before its deadline.
	if err := c.Install(compileQ1(t, 1)); err != nil {
		t.Fatal(err)
	}
	inj.Stall()
	done := make(chan error, 1)
	go func() { done <- c.Install(compileQ1(t, 2)) }()
	time.Sleep(50 * time.Millisecond) // let the first attempt time out at least once
	inj.Unstall()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retried install: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("install never completed")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Installed != 2 {
		t.Errorf("Installed = %d, want 2", st.Installed)
	}
}

func TestCallTimeoutOnStalledAgent(t *testing.T) {
	agent, _ := testAgent(t)
	inj := faults.New(faults.Config{Seed: 9})
	addr := agentOverTCP(t, agent, inj)

	c, err := DialOptions(addr, Options{Timeout: 100 * time.Millisecond, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inj.Stall()
	defer inj.Unstall()

	start := time.Now()
	_, err = c.Stats()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Stats on a stalled agent succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("stalled call blocked %v, want ~100ms", elapsed)
	}
}

func TestCloseDuringInFlightIsTyped(t *testing.T) {
	agent, _ := testAgent(t)
	inj := faults.New(faults.Config{Seed: 13})
	addr := agentOverTCP(t, agent, inj)

	c, err := DialOptions(addr, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	inj.Stall() // the call hangs with no deadline configured
	defer inj.Unstall()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Stats()
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("in-flight err = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never returned after Close")
	}
	// Subsequent calls fail fast, without touching the dead conn.
	start := time.Now()
	if _, err := c.Stats(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("post-Close err = %v, want ErrClientClosed", err)
	}
	if time.Since(start) > time.Second {
		t.Error("post-Close call did not fail fast")
	}
}

func TestDrainCursorNeverDoubleDelivers(t *testing.T) {
	agent, sw := testAgent(t)
	server, client := net.Pipe()
	go agent.HandleConn(server)
	defer client.Close()

	install := compileQ1(t, 1)
	if err := WriteFrame(client, &Request{Type: typeInstall, Program: install, ID: 100}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(client, &resp); err != nil || !resp.OK {
		t.Fatalf("install: %+v %v", resp, err)
	}
	for i := 0; i < 10; i++ {
		sw.Process(&packet.Packet{
			TS: uint64(i), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: 42},
			TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
		})
	}

	drain := func(id, ack uint64) *Response {
		t.Helper()
		if err := WriteFrame(client, &Request{Type: typeDrain, ID: id, DrainAck: ack}); err != nil {
			t.Fatal(err)
		}
		var r Response
		if err := ReadFrame(client, &r); err != nil {
			t.Fatal(err)
		}
		return &r
	}

	// Fresh drain takes the pending report.
	r1 := drain(101, 0)
	if len(r1.Reports) != 1 || r1.Cursor != 1 {
		t.Fatalf("first drain = %d reports, cursor %d", len(r1.Reports), r1.Cursor)
	}
	// A retry that never saw r1 (distinct ID defeats the replay cache;
	// the ack still trails) re-delivers the same batch.
	r2 := drain(102, 0)
	if len(r2.Reports) != 1 || r2.Cursor != 1 {
		t.Fatalf("redelivery = %d reports, cursor %d", len(r2.Reports), r2.Cursor)
	}
	if r1.Reports[0].TS != r2.Reports[0].TS {
		t.Error("redelivered batch differs from the original")
	}
	// Acknowledging the cursor moves on: the batch is consumed exactly
	// once, and the next drain is empty.
	r3 := drain(103, 1)
	if len(r3.Reports) != 0 || r3.Cursor != 2 {
		t.Fatalf("post-ack drain = %d reports, cursor %d", len(r3.Reports), r3.Cursor)
	}
}

func TestClientDrainRetryAcrossReconnect(t *testing.T) {
	// End-to-end: reports drained while the transport is flaky arrive
	// exactly once at the client.
	agent, sw := testAgent(t)
	inj := faults.New(faults.Config{Seed: 21, ResetProb: 0.08})
	addr := agentOverTCP(t, agent, inj)

	c, err := DialOptions(addr, Options{
		Timeout: time.Second, Retries: 16,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Install(compileQ1(t, 1)); err != nil {
		t.Fatal(err)
	}

	total := 0
	for round := 0; round < 8; round++ {
		sw.Process(&packet.Packet{
			TS: uint64(round), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: uint32(100 + round)},
			TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
		})
		// Each round crosses the threshold for a fresh key after enough
		// SYNs; drive 10 packets to guarantee one report.
		for i := 0; i < 9; i++ {
			sw.Process(&packet.Packet{
				TS: uint64(round), IP: packet.IPv4{Proto: packet.ProtoTCP, Src: 9, Dst: uint32(100 + round)},
				TCP: &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN},
			})
		}
		rs, err := c.DrainReports()
		if err != nil {
			t.Fatalf("drain round %d: %v", round, err)
		}
		total += len(rs)
	}
	if rs, err := c.DrainReports(); err == nil {
		total += len(rs)
	}
	if total != 8 {
		t.Errorf("delivered %d reports across flaky drains, want exactly 8", total)
	}
}
