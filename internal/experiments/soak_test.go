package experiments

import (
	"testing"
)

// TestSoakSmoke is the CI-sized churn soak: an 8-switch fleet under
// multi-tenant intent churn, operator drains, and seeded kills,
// partitions, and stalls — with the health monitor (never a manual
// Reconverge) driving every drain and re-admission. The run's own
// Violations list carries the assertions: bounded heap growth,
// goroutine stability, every kill auto-drained and re-admitted, a fully
// reconverged end state, and zero cross-tenant provenance mixups.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run is seconds-long")
	}
	res := Soak(SoakConfig{Seed: faultSeed(t)})
	t.Logf("\n%s", res)

	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Kills == 0 {
		t.Error("churn schedule injected no kills; soak did not exercise self-healing")
	}
	if res.Converges == 0 {
		t.Error("soak never converged the fleet")
	}
}
