package telemetry

import (
	"reflect"
	"testing"

	"github.com/newton-net/newton/internal/modules"
)

// TestForgetAgentReleasesBookkeeping exercises the analyzer's answer to
// the per-ever-seen-switch leak: ForgetAgent drops the agents-map entry
// and unlearns the switch from learned expected-contributor sets, but
// refuses while a stream is open and never edits controller-pinned
// sets.
func TestForgetAgentReleasesBookkeeping(t *testing.T) {
	s := NewService(ServiceConfig{})

	// Two agents contribute snapshots to query 7 so the service learns
	// them both as expected contributors.
	snap := []modules.BankSnapshot{{QueryID: 7, Kind: modules.BankCMSRow, Width: 8, Values: make([]uint32, 8)}}
	for _, id := range []string{"s1", "s2"} {
		a := s.streamUp(id)
		s.ingestSnapshot(a, id, 1, snap)
		s.streamDown(a)
	}
	if got := s.TrackedAgents(); got != 2 {
		t.Fatalf("TrackedAgents = %d, want 2", got)
	}
	if got := s.Contributors(7); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Fatalf("Contributors(7) = %v, want [s1 s2]", got)
	}

	// A live agent cannot be forgotten.
	live := s.streamUp("s1")
	if s.ForgetAgent("s1") {
		t.Fatal("ForgetAgent succeeded on an agent with an open stream")
	}
	s.streamDown(live)

	if !s.ForgetAgent("s1") {
		t.Fatal("ForgetAgent failed on a disconnected agent")
	}
	if s.ForgetAgent("s1") {
		t.Fatal("ForgetAgent succeeded twice for the same agent")
	}
	if got := s.TrackedAgents(); got != 1 {
		t.Fatalf("TrackedAgents = %d after forget, want 1", got)
	}

	// The learned expected set no longer demands s1, so a fresh epoch
	// completed by s2 alone is not partial.
	a2 := s.registerAgent("s2")
	s.ingestSnapshot(a2, "s2", 2, snap)
	if partial, missing, _ := s.EpochStatus(7, 2); partial {
		t.Fatalf("epoch 2 partial after forgetting s1, missing %v", missing)
	}

	// Pinned sets stay under controller ownership: forgetting an agent
	// must not edit them.
	s.SetExpected(7, []string{"s2", "s3"})
	a3 := s.streamUp("s3")
	s.streamDown(a3)
	s.ForgetAgent("s3")
	s.ingestSnapshot(a2, "s2", 3, snap)
	if partial, missing, _ := s.EpochStatus(7, 3); !partial || len(missing) != 1 || missing[0] != "s3" {
		t.Fatalf("pinned expected set not honored after forget: partial=%v missing=%v", partial, missing)
	}
}
