// Package newton is an intent-driven network traffic monitoring system —
// a from-scratch Go reproduction of "Newton: Intent-Driven Network
// Traffic Monitoring" (CoNEXT 2020).
//
// Operators express monitoring intents as Spark-style stream queries
// over packets (filter, map, distinct, reduce). Newton compiles a query
// into table rules for a fixed layout of reconfigurable data-plane
// modules, so queries install, update, and remove at runtime without
// ever reloading the pipeline or disturbing forwarding:
//
//	q := newton.NewQuery("syn_flood").
//		Filter(newton.Eq(newton.FieldProto, newton.ProtoTCP),
//			newton.Eq(newton.FieldTCPFlags, newton.FlagSYN)).
//		Map(newton.FieldDstIP).
//		ReduceCount(newton.FieldDstIP).
//		FilterResultGt(40).
//		Build()
//
//	topo, h1, h2 := newton.LinearTopology(3)
//	net, _ := newton.NewNetwork(topo, newton.NetworkConfig{})
//	ctl := newton.NewController(net, 1)
//	dep, delay, _ := ctl.Install(newton.Deploy{Query: q})
//	// ... traffic flows; reports mirror to the analyzer ...
//	ctl.Remove(dep.QID)
//
// The package is a facade over the internal subsystems: the query
// language and the nine evaluation queries, the rule compiler
// (Algorithm 1 with Opt.1–3), the PISA data-plane simulator with the
// K/H/S/R module layout, cross-switch query execution with the 12-byte
// result snapshot header, resilient placement (Algorithm 2), the
// reference analyzer, and the experiment harness that regenerates every
// table and figure of the paper's evaluation.
package newton

import (
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/controller"
	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/placement"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/scheduler"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// Core query-language types.
type (
	// Query is a compiled-ready monitoring intent.
	Query = query.Query
	// QueryBuilder assembles queries fluently.
	QueryBuilder = query.Builder
	// Predicate is one filter comparison.
	Predicate = query.Predicate
	// FieldID names one field of the global header-field set.
	FieldID = fields.ID
	// FieldMask selects and derives operation keys.
	FieldMask = fields.Mask
)

// Data-plane and network types.
type (
	// Program is a compiled query: module configurations plus rules.
	Program = modules.Program
	// CompileOptions tunes compilation (optimizations, sketch geometry,
	// sharding).
	CompileOptions = compiler.Options
	// CompileStats summarizes a program's footprint.
	CompileStats = compiler.Stats
	// Report is one monitoring message mirrored to the analyzer.
	Report = dataplane.Report
	// Network is a simulated deployment of Newton switches.
	Network = netsim.Network
	// NetworkConfig sizes the switches.
	NetworkConfig = netsim.Config
	// Topology is the network graph.
	Topology = topology.Topology
	// Controller drives runtime query operations.
	Controller = controller.Newton
	// SonataController is the reboot-based baseline controller.
	SonataController = controller.Sonata
	// Deploy describes a deployment request.
	Deploy = controller.Spec
	// Deployment records an installed query.
	Deployment = controller.Deployment
	// Placement maps switches to query partitions.
	Placement = placement.Placement
	// Packet is the simulator's packet model.
	Packet = packet.Packet
	// Trace is a generated workload with ground truth.
	Trace = trace.Trace
	// TraceConfig parameterizes workload generation.
	TraceConfig = trace.Config
	// Collector consolidates mirrored reports.
	Collector = analyzer.Collector
	// ReferenceEngine evaluates queries exactly in software.
	ReferenceEngine = analyzer.Engine
	// Alert is one reference-engine detection.
	Alert = analyzer.Alert
)

// Deployment modes.
const (
	// ModeReplicate installs the whole query on every target switch.
	ModeReplicate = controller.Replicate
	// ModeShard key-shards state across switches (cross-switch
	// execution pooling their memory).
	ModeShard = controller.Shard
	// ModePartition slices the query over switches via resilient
	// placement.
	ModePartition = controller.Partition
)

// Global header fields usable in queries.
const (
	FieldTimestamp = fields.Timestamp
	FieldInPort    = fields.InPort
	FieldSrcIP     = fields.SrcIP
	FieldDstIP     = fields.DstIP
	FieldProto     = fields.Proto
	FieldSrcPort   = fields.SrcPort
	FieldDstPort   = fields.DstPort
	FieldTCPFlags  = fields.TCPFlags
	FieldPktLen    = fields.PktLen
	FieldTTL       = fields.TTL
)

// Protocol and TCP-flag constants.
const (
	ProtoTCP = packet.ProtoTCP
	ProtoUDP = packet.ProtoUDP
	FlagSYN  = packet.FlagSYN
	FlagACK  = packet.FlagACK
	FlagFIN  = packet.FlagFIN
	FlagRST  = packet.FlagRST
)

// NewQuery starts a query with the default 100 ms window.
func NewQuery(name string) *QueryBuilder { return query.New(name) }

// ParseQuery builds a query from the textual intent DSL, e.g.
//
//	newton.ParseQuery("ddos", "filter(proto == udp) | map(dip, sip) | "+
//		"distinct(dip, sip) | map(dip) | reduce(dip, sum) | filter(result > 40)")
func ParseQuery(name, src string) (*Query, error) { return query.Parse(name, src) }

// Predicate constructors.
var (
	// Eq builds field == v.
	Eq = query.Eq
	// Gt builds field > v.
	Gt = query.Gt
	// Lt builds field < v.
	Lt = query.Lt
	// MaskEq builds (field & mask) == v.
	MaskEq = query.MaskEq
)

// Result is the pseudo-field referencing the running query result.
const Result = query.Result

// KeepFields builds a mask selecting the given fields at full width.
func KeepFields(ids ...FieldID) FieldMask { return fields.Keep(ids...) }

// PrefixMask selects the top plen bits of one field as the operation key
// (e.g. a /16 of an address).
func PrefixMask(f FieldID, plen int) FieldMask {
	return FieldMask{}.WithBits(f, fields.Prefix(f, plen))
}

// The nine evaluation queries of the paper (Table 2), threshold-
// parameterized.
var (
	Q1 = query.Q1
	Q2 = query.Q2
	Q3 = query.Q3
	Q4 = query.Q4
	Q5 = query.Q5
	Q6 = query.Q6
	Q7 = query.Q7
	Q8 = query.Q8
	Q9 = query.Q9
)

// AllQueries returns Q1–Q9 at their default thresholds.
func AllQueries() []*Query { return query.All() }

// QueryByName returns one of the nine queries ("q1".."q9").
func QueryByName(name string) (*Query, error) { return query.ByName(name) }

// Compile lowers a query to module rules. DefaultCompileOptions enables
// every composition optimization.
func Compile(q *Query, o CompileOptions) (*Program, error) { return compiler.Compile(q, o) }

// DefaultCompileOptions enables Opt.1–3 with the evaluation's default
// sketch geometry.
func DefaultCompileOptions() CompileOptions { return compiler.AllOpts() }

// MeasureProgram reports a compiled program's primitives, modules,
// stages, and rules.
func MeasureProgram(q *Query, p *Program) CompileStats { return compiler.Measure(q, p) }

// NewNetwork builds a simulated network of Newton switches over a
// topology.
func NewNetwork(t *Topology, cfg NetworkConfig) (*Network, error) { return netsim.New(t, cfg) }

// NewController builds the Newton controller for a network; seed drives
// the latency jitter model.
func NewController(net *Network, seed int64) *Controller { return controller.NewNewton(net, seed) }

// NewSonataController builds the reboot-based baseline controller.
func NewSonataController(net *Network, seed int64) *SonataController {
	return controller.NewSonata(net, seed)
}

// Topology constructors.
var (
	// LinearTopology builds h1—s1—…—sN—h2 and returns the host IDs.
	LinearTopology = topology.Linear
	// FatTreeTopology builds a k-ary fat-tree.
	FatTreeTopology = topology.FatTree
	// ISPTopology builds the North-America backbone abstraction.
	ISPTopology = topology.ISPBackbone
)

// GenerateTrace synthesizes a workload with ground truth; overlays add
// attack traffic (see the trace package's overlay types re-exported
// below).
var GenerateTrace = trace.Generate

// Attack overlays for GenerateTrace.
type (
	// SYNFlood floods a victim with half-open connections.
	SYNFlood = trace.SYNFlood
	// UDPFlood floods a victim from many spoofed sources.
	UDPFlood = trace.UDPFlood
	// PortScan probes many ports on a victim.
	PortScan = trace.PortScan
	// SSHBrute hammers a victim's SSH port.
	SSHBrute = trace.SSHBrute
	// Slowloris opens many near-idle connections.
	Slowloris = trace.Slowloris
	// DNSNoTCP stages reflection targets.
	DNSNoTCP = trace.DNSNoTCP
	// SuperSpreader contacts many distinct destinations.
	SuperSpreader = trace.SuperSpreader
)

// NewCollector consolidates reports into per-window flagged keys.
func NewCollector(window time.Duration, keys FieldMask) *Collector {
	return analyzer.NewCollector(uint64(window), keys)
}

// NewReferenceEngine builds the exact software evaluator for a query
// (ground truth and deferred execution).
func NewReferenceEngine(q *Query) *ReferenceEngine { return analyzer.NewEngine(q) }

// PlaceResilient runs Algorithm 2: partition a query of totalStages over
// switches with stagesPerSwitch stages, covering all possible paths from
// the monitored edge switches.
func PlaceResilient(t *Topology, edges []int, totalStages, stagesPerSwitch int) (Placement, int, error) {
	return placement.Place(t, edges, totalStages, stagesPerSwitch)
}

// Scheduler types (the paper's stated future work: admission planning
// for concurrent queries under one device's resource envelope).
type (
	// ScheduleRequest is one prioritized query to admit.
	ScheduleRequest = scheduler.Request
	// ScheduleBudget is a device's resource envelope.
	ScheduleBudget = scheduler.Budget
	// ScheduleDecision is the per-query verdict.
	ScheduleDecision = scheduler.Decision
)

// PlanSchedule admits queries in priority order, degrading sketch widths
// before rejecting; the plan is sound against the real rule/register
// allocators.
func PlanSchedule(reqs []ScheduleRequest, b ScheduleBudget) []ScheduleDecision {
	return scheduler.Plan(reqs, b)
}

// ScheduleSummary renders a plan for operators.
func ScheduleSummary(ds []ScheduleDecision) string { return scheduler.Summary(ds) }
