// Package modules implements Newton's reconfigurable data-plane modules
// (§4.1): key selection (K), hash calculation (H), state bank (S), and
// result process (R), plus the newton_init classifier and the newton_fin
// result-snapshot table. Query primitives decompose into configurations
// of these modules, installed as table rules at runtime — never by
// reloading the pipeline.
package modules

import (
	"fmt"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/sketch"
)

// Kind identifies a module type.
type Kind int

const (
	// ModK is key selection.
	ModK Kind = iota
	// ModH is hash calculation.
	ModH
	// ModS is the state bank.
	ModS
	// ModR is result process.
	ModR
	// NumKinds is the number of module kinds in a suite.
	NumKinds
)

var kindNames = [NumKinds]string{"K", "H", "S", "R"}

// String names the module kind as the paper does.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("mod(%d)", int(k))
}

// NoField marks "no direct field" in hash configs.
const NoField fields.ID = 0xFF

// KConfig configures a key-selection module: the bit-mask over the
// global field set that derives the operation keys.
type KConfig struct {
	Mask fields.Mask
}

// HConfig configures a hash-calculation module.
type HConfig struct {
	// Algo and Seed select the hash function; Range folds the result
	// into [0, Range) and Offset shifts it into the query's register
	// allocation (the "adjustable range of the hash result" that gives S
	// flexible register allocation among queries).
	Algo   sketch.Algo
	Seed   uint32
	Range  uint32
	Offset uint32
	// Direct, when not NoField, bypasses hashing: the hash result is the
	// operation key's field value verbatim (the paper's direct mode).
	Direct fields.ID
}

// OperandKind selects what the state bank's ALU consumes.
type OperandKind int

const (
	// OperandConst uses SConfig.Const.
	OperandConst OperandKind = iota
	// OperandField uses the packet field SConfig.Field.
	OperandField
	// OperandHash uses the metadata set's hash result.
	OperandHash
)

// SConfig configures a state-bank module: which ALU runs over which
// register array, and with what operand.
type SConfig struct {
	ALU     dataplane.SALUOp
	Operand OperandKind
	Const   uint32
	Field   fields.ID

	// PassThrough short-circuits the bank: the state result is the hash
	// result itself (how filters and maps traverse S untouched).
	PassThrough bool

	// Owner implements key-sharded cross-switch execution (§5.1): the
	// module executes only when hash(key) mod OwnerCount == OwnerIndex,
	// so h switches along a path partition the key space and the query
	// uses all of their register memory. OwnerCount 0 or 1 disables
	// sharding.
	OwnerIndex, OwnerCount uint32

	// WidthHint is the register count the op wants from its bank; it
	// must equal the governing H module's Range. Zero defaults to the
	// compiler's register budget.
	WidthHint uint32

	// Row0 marks the state bank of a reduce's first sketch row — the
	// bank cross-branch merge reads target.
	Row0 bool

	// CrossRead makes this op read the Row0 bank of branch ReadBranch
	// instead of allocating its own registers (the cross-branch reads
	// that realize Fig. 6's result merging).
	CrossRead  bool
	ReadBranch int

	array         *dataplane.RegisterArray // bound at install time
	offset, width uint32                   // allocation, bound at install time

	// shardable (computed by prepareBranch) marks a bank that decomposes
	// exactly across worker-private shards: commutative ALU (Add/Or)
	// with no result process earlier in its chain. laneArrays, populated
	// under Engine BankPrivate mode, holds one private shard per lane
	// (slot 0 nil: lane 0 uses the canonical array); the shards merge
	// into the canonical bank at epoch boundaries.
	shardable  bool
	laneArrays []*dataplane.RegisterArray
}

// Offset returns the op's register allocation base (after install).
func (s *SConfig) Offset() uint32 { return s.offset }

// RActKind is one result-process action.
type RActKind int

const (
	// RActReport mirrors the metadata set to the analyzer.
	RActReport RActKind = iota
	// RActStop terminates the query for this packet.
	RActStop
	// RActSetGlobal writes the state result into the global result.
	RActSetGlobal
	// RActGlobalAdd adds Coeff × state result into the (signed) global
	// result.
	RActGlobalAdd
	// RActGlobalMin folds the global result with min(global, state).
	RActGlobalMin
	// RActGlobalScale multiplies the (signed) global result by Coeff.
	RActGlobalScale
)

// RAct is one action of a result-process entry.
type RAct struct {
	Kind  RActKind
	Coeff int64 // RActGlobalAdd only
}

// REntry is one ternary-match entry of a result-process module: if the
// matched value falls in [Lo, Hi], run the actions.
type REntry struct {
	Lo, Hi  int64
	Actions []RAct
}

// RConfig configures a result-process module.
type RConfig struct {
	// OnGlobal matches against the (signed) global result instead of the
	// metadata set's state result.
	OnGlobal bool
	Entries  []REntry
}

// Op is one module invocation in a compiled query chain: which module
// kind, which metadata set it reads/writes, its stage assignment from
// the composition algorithm, and its configuration.
type Op struct {
	Kind  Kind
	Set   int // metadata set index (0 or 1)
	Stage int // physical stage assigned by Algorithm 1

	K *KConfig
	H *HConfig
	S *SConfig
	R *RConfig

	ruleID int // rule installed in the module's table
	hIdx   int // ordinal of this H op within its branch (hash memoization)
}

// String renders the op for composition dumps, e.g. "K0@s1".
func (o Op) String() string {
	return fmt.Sprintf("%v%d@s%d", o.Kind, o.Set, o.Stage)
}

// Width returns the register width a state-bank op needs.
func (o *Op) Width() uint32 {
	if o.S != nil && o.S.WidthHint > 0 {
		return o.S.WidthHint
	}
	return 1024
}

// InitMatch is one newton_init classifier entry: ternary over the
// 5-tuple and TCP flags.
type InitMatch struct {
	Values [6]uint64 // sip, dip, proto, sport, dport, tcpflags
	Masks  [6]uint64
}

// MatchAllInit matches every packet.
func MatchAllInit() InitMatch { return InitMatch{} }

// BranchProgram is one branch's compiled form: its traffic class (the
// newton_init entry that dispatches to it) and its ops in execution
// order.
type BranchProgram struct {
	Init InitMatch
	Ops  []*Op

	initRuleID int

	// numH and hashPure are computed at install time: the number of H
	// ops in the chain, and whether every H input is a function of the
	// dispatch-key fields alone (so its result can be memoized per
	// flow). See Engine.prepareBranch.
	numH     int
	hashPure bool
}

// Program is a fully compiled query ready to install: one entry and op
// chain per branch. Stages beyond the device's stage count are executed
// by later partitions (cross-switch execution) or deferred to the
// software analyzer.
type Program struct {
	QID      int
	Name     string
	Branches []*BranchProgram

	// Part/TotalParts identify this program's slot in a cross-switch
	// execution (set by SliceProgram); TotalParts <= 1 means the whole
	// query runs on one switch.
	Part, TotalParts int
}

// NumOps counts module instances across branches (the "modules" axis of
// Fig. 15b).
func (p *Program) NumOps() int {
	n := 0
	for _, b := range p.Branches {
		n += len(b.Ops)
	}
	return n
}

// NumStages returns the highest stage any op is assigned to (the
// "stages" axis of Fig. 15c).
func (p *Program) NumStages() int {
	max := 0
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Stage > max {
				max = op.Stage
			}
		}
	}
	return max
}

// RuleCount is the total table entries the program installs: one per
// module op plus one newton_init entry per branch.
func (p *Program) RuleCount() int {
	return p.NumOps() + len(p.Branches)
}

// chainAction is the newton_init rule action dispatching to a branch.
type chainAction struct {
	prog   *Program
	branch *BranchProgram
}

// ActionName implements dataplane.Action.
func (chainAction) ActionName() string { return "run_chain" }

// moduleRuleAction is the per-module rule action carrying the op config.
type moduleRuleAction struct{ op *Op }

// ActionName implements dataplane.Action.
func (moduleRuleAction) ActionName() string { return "configure_module" }
