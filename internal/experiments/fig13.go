package experiments

import (
	"fmt"
	"time"

	"github.com/newton-net/newton/internal/analyzer"
	"github.com/newton-net/newton/internal/baselines"
	"github.com/newton-net/newton/internal/compiler"
	"github.com/newton-net/newton/internal/netsim"
	"github.com/newton-net/newton/internal/query"
	"github.com/newton-net/newton/internal/topology"
	"github.com/newton-net/newton/internal/trace"
)

// Fig13Row is one (hops, system) point of the network-wide overhead
// comparison for Q1.
type Fig13Row struct {
	Hops     int
	System   baselines.System
	Messages int
	Overhead float64
}

// Fig13Result reproduces Fig. 13: network-wide monitoring overhead of Q1
// versus forwarding-path length. The baselines treat every switch as an
// independent entity, so their message counts grow linearly with the hop
// count; Newton's cross-switch execution treats the path as one
// consolidated entity and reports once.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13CQEOverhead sweeps the hop count.
func Fig13CQEOverhead(maxHops int) *Fig13Result {
	if maxHops == 0 {
		maxHops = 5
	}
	tr := trace.Generate(trace.Config{Seed: 77, Flows: 1500, Duration: 300 * time.Millisecond},
		trace.SYNFlood{Victim: 0x0A0000AA, Packets: 500},
		trace.SYNFlood{Victim: 0x0A0000AB, Packets: 500})
	window := uint64(100 * time.Millisecond)
	n := len(tr.Packets)

	// Per-switch baseline message counts (independent of path position).
	perSwitch := map[baselines.System]int{
		baselines.Sonata:    baselines.SonataMessages(query.Q1(40), tr.Packets),
		baselines.TurboFlow: baselines.TurboFlowMessages(tr.Packets, window),
		baselines.StarFlow:  baselines.StarFlowMessages(tr.Packets, window),
		baselines.FlowRadar: baselines.FlowRadarMessages(tr.Packets, window),
		baselines.Scream:    baselines.ScreamMessages(tr.Packets, window),
	}

	res := &Fig13Result{}
	for h := 1; h <= maxHops; h++ {
		// Newton: Q1 key-sharded across the h switches of the path.
		newtonMsgs := measureShardedReports(tr, h, window)
		res.Rows = append(res.Rows, Fig13Row{
			Hops: h, System: baselines.Newton,
			Messages: newtonMsgs, Overhead: baselines.Overhead(newtonMsgs, n),
		})
		for _, sys := range []baselines.System{
			baselines.Sonata, baselines.TurboFlow, baselines.StarFlow,
			baselines.FlowRadar, baselines.Scream,
		} {
			msgs := perSwitch[sys] * h
			res.Rows = append(res.Rows, Fig13Row{
				Hops: h, System: sys,
				Messages: msgs, Overhead: baselines.Overhead(msgs, n),
			})
		}
	}
	return res
}

// measureShardedReports runs Q1 sharded over an h-switch line.
func measureShardedReports(tr *trace.Trace, hops int, window uint64) int {
	topo, h1, h2 := topology.Linear(hops)
	net, err := netsim.New(topo, netsim.Config{Stages: 12, ArraySize: 1 << 14})
	if err != nil {
		panic(err)
	}
	sws := topo.Switches()
	for i, id := range sws {
		o := compiler.AllOpts()
		o.QID = 1
		o.Width = 1 << 12
		o.ShardIndex, o.ShardCount = uint32(i), uint32(len(sws))
		p, err := compiler.Compile(query.Q1(40), o)
		if err != nil {
			panic(err)
		}
		if err := net.Node(id).Eng.Install(p); err != nil {
			panic(err)
		}
	}
	net.DeliverBatch(tr.Packets, h1, h2)
	col := analyzer.NewCollector(window, query.Q1(40).ReportKeys())
	col.AddAll(net.DrainReports())
	return col.Raw
}

// String renders the hop sweep grouped by system.
func (r *Fig13Result) String() string {
	t := &table{header: []string{"Hops", "System", "Messages", "Msgs/packet"}}
	for _, row := range r.Rows {
		t.add(i2s(row.Hops), row.System.String(), i2s(row.Messages), sci(row.Overhead))
	}
	return fmt.Sprintf("Fig. 13: network-wide overhead of Q1 vs path length (paper: Newton flat, others linear)\n%s", t.String())
}
