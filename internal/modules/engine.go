package modules

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/newton-net/newton/internal/dataplane"
	"github.com/newton-net/newton/internal/fields"
	"github.com/newton-net/newton/internal/obs"
	"github.com/newton-net/newton/internal/packet"
	"github.com/newton-net/newton/internal/sketch"
)

// Typed install/remove outcomes, so control planes retrying over lossy
// channels can recognize level-triggered states ("already there",
// "already gone") without string matching.
var (
	ErrAlreadyInstalled = errors.New("already installed")
	ErrNotInstalled     = errors.New("not installed")
)

// Engine executes the module layout over packets. It implements
// dataplane.Program, so a Layout plus an Engine is what "loading the
// Newton P4 program" yields; every query operation afterwards is a rule
// operation against the layout's tables.
type Engine struct {
	layout *Layout

	installed map[progKey]*Program

	dispatch dispatchCache

	// Execution counters follow the dataplane.Switch discipline: written
	// plainly in sequential mode, atomically in parallel mode (netsim
	// separates the phases with barriers), and always read with atomic
	// loads. Scrapes concurrent with *sequential* delivery are therefore
	// approximate by design — same as Switch.Counters.
	pkts           uint64
	dispatchMisses uint64
	modExecs       [NumKinds]uint64

	// execNS, when set via AttachObs, receives 1-in-execSampleEvery
	// sampled whole-Execute latencies. Nil when unobserved so the fast
	// path pays only a nil check.
	execNS *obs.Histogram

	// onChange fires after every successful Install/Remove — how the obs
	// adapter keeps per-query resource gauges current without scraping
	// engine maps concurrently with rule updates.
	onChange func()
}

// progKey identifies an installed program: a switch may host several
// partitions of one cross-switch query.
type progKey struct{ qid, part int }

// NewEngine builds an engine over a loaded layout.
func NewEngine(l *Layout) *Engine {
	return &Engine{layout: l, installed: map[progKey]*Program{}}
}

// Layout returns the engine's layout.
func (e *Engine) Layout() *Layout { return e.layout }

// Installed returns the installed program for qid (its first partition,
// if partitioned), or nil.
func (e *Engine) Installed(qid int) *Program {
	var best *Program
	for key, p := range e.installed {
		if key.qid != qid {
			continue
		}
		if best == nil || key.part < best.Part {
			best = p
		}
	}
	return best
}

// maxDispatchEntries bounds the dispatch cache; overflowing flushes it
// (a full rebuild costs one classifier scan per live flow).
const maxDispatchEntries = 1 << 15

// dispatchKey is the newton_init classifier input — the packet's
// 5-tuple plus TCP flags — packed into two words (the fields' natural
// widths sum to 112 bits), so the cache probe hashes 16 bytes instead
// of 48.
type dispatchKey [2]uint64

// hashUnset marks a not-yet-recorded slot in a dispatch entry's hash
// memo. Memoized hash results are at most 32 bits wide (hash engines
// produce uint32, and direct-mode keys are drawn from ≤32-bit fields),
// so the all-ones word can never be a real result.
const hashUnset = ^uint64(0)

// dispatchEntry is one memoized classification: the newton_init matches
// for a classifier input, plus — for branches whose hash inputs are a
// pure function of that input — the recorded per-flow hash results, so
// steady-state packets of a flow skip key serialization and CRC/FNV
// computation entirely. hashes[i] is nil when branch i is not
// memoizable (impure or has no H ops); otherwise it has one slot per H
// op, lazily filled the first time each op executes for this flow.
type dispatchEntry struct {
	matches []*dataplane.Rule
	hashes  [][]uint64
}

// dispatchCache memoizes the newton_init LookupAll result per classifier
// input. Entries are valid only while the classifier's rule-set version
// is unchanged: every query install/remove bumps the table version,
// invalidating the whole cache, so a cached chain can never outlive the
// rules that produced it. Reads take a shared lock (no allocation);
// misses recompute from the classifier's lock-free snapshot.
//
// The hash memo slices inside an entry are written without the lock:
// a slice belongs to exactly one classifier key, and packet delivery
// guarantees all packets of one flow are processed by one goroutine at
// a time (netsim shards batches by flow, with barriers between
// segments), so those writes are single-writer by construction.
type dispatchCache struct {
	mu      sync.RWMutex
	version uint64
	entries map[dispatchKey]*dispatchEntry
}

// lookup returns the cached entry for k at the given classifier version.
func (c *dispatchCache) lookup(version uint64, k *dispatchKey) *dispatchEntry {
	c.mu.RLock()
	if c.version != version || c.entries == nil {
		c.mu.RUnlock()
		return nil
	}
	e := c.entries[*k]
	c.mu.RUnlock()
	return e
}

// lookupSeq and storeSeq are the lock-free forms for sequential
// delivery: all cache mutation then happens on the calling goroutine,
// and netsim separates sequential and parallel delivery phases with
// barriers, so no lock is needed.
func (c *dispatchCache) lookupSeq(version uint64, k *dispatchKey) *dispatchEntry {
	if c.version != version || c.entries == nil {
		return nil
	}
	return c.entries[*k]
}

func (c *dispatchCache) storeSeq(version uint64, k *dispatchKey, e *dispatchEntry) {
	if c.version != version || c.entries == nil || len(c.entries) >= maxDispatchEntries {
		c.entries = make(map[dispatchKey]*dispatchEntry)
		c.version = version
	}
	c.entries[*k] = e
}

// store records the entry for k at the given classifier version.
func (c *dispatchCache) store(version uint64, k *dispatchKey, e *dispatchEntry) {
	c.mu.Lock()
	if c.version != version || c.entries == nil || len(c.entries) >= maxDispatchEntries {
		c.entries = make(map[dispatchKey]*dispatchEntry)
		c.version = version
	}
	c.entries[*k] = e
	c.mu.Unlock()
}

// InstalledCount returns how many programs are installed.
func (e *Engine) InstalledCount() int { return len(e.installed) }

// Programs returns every installed program (all partitions), in no
// particular order. Callers must not mutate the programs.
func (e *Engine) Programs() []*Program {
	out := make([]*Program, 0, len(e.installed))
	for _, p := range e.installed {
		out = append(out, p)
	}
	return out
}

// execSampleMask selects which packets get a timed Execute: 1 in 64,
// cheap enough that time.Now on the sampled packet dominates the cost.
const execSampleMask = 63

// Counters returns the engine's execution counters: packets executed,
// dispatch-cache misses, and per-module-kind op executions.
func (e *Engine) Counters() (pkts, dispatchMisses uint64, execs [NumKinds]uint64) {
	pkts = atomic.LoadUint64(&e.pkts)
	dispatchMisses = atomic.LoadUint64(&e.dispatchMisses)
	for k := range execs {
		execs[k] = atomic.LoadUint64(&e.modExecs[k])
	}
	return pkts, dispatchMisses, execs
}

// Install loads a compiled program: one newton_init entry per branch,
// one rule per module op, and register allocations for the stateful
// banks. On any failure the partial install is rolled back, leaving the
// data plane untouched — installs are all-or-nothing so a failed query
// can never disturb running ones.
func (e *Engine) Install(p *Program) (err error) {
	key := progKey{p.QID, p.Part}
	if _, dup := e.installed[key]; dup {
		return fmt.Errorf("modules: query %d part %d %w", p.QID, p.Part, ErrAlreadyInstalled)
	}
	defer func() {
		if err != nil {
			e.rollback(p)
		}
	}()
	for _, b := range p.Branches {
		prepareBranch(b)
	}
	// Pass 1: allocate registers for owning state banks.
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind != ModS || op.S == nil || op.S.PassThrough || op.S.CrossRead {
				continue
			}
			width := op.Width()
			off, aerr := e.layout.AllocRegisters(op.Stage, op.Set, width)
			if aerr != nil {
				return aerr
			}
			op.S.array = e.layout.ArrayAt(op.Stage, op.Set)
			op.S.offset, op.S.width = off, width
		}
	}
	// Pass 2: bind cross-branch reads to the Row0 banks they target.
	for bi, b := range p.Branches {
		for _, op := range b.Ops {
			if op.Kind != ModS || op.S == nil || !op.S.CrossRead {
				continue
			}
			target := e.findRow0(p, op.S.ReadBranch)
			if target == nil {
				return fmt.Errorf("modules: query %d branch %d reads Row0 of branch %d, which has none",
					p.QID, bi, op.S.ReadBranch)
			}
			op.S.array = target.array
			op.S.offset, op.S.width = target.offset, target.width
		}
	}
	// Pass 3: install rules.
	for bi, b := range p.Branches {
		opKeyBase := uint64(p.QID)<<20 | uint64(p.Part)<<16 | uint64(bi)<<8
		for oi, op := range b.Ops {
			t := e.layout.ModuleTable(op.Stage, op.Set, op.Kind)
			if t == nil {
				return fmt.Errorf("modules: layout has no %v module at stage %d suite %d", op.Kind, op.Stage, op.Set)
			}
			id, terr := t.AddRule([]uint64{opKeyBase | uint64(oi)}, nil, 0, moduleRuleAction{op: op})
			if terr != nil {
				return terr
			}
			op.ruleID = id
		}
		vals := b.Init.Values[:]
		masks := b.Init.Masks[:]
		id, ierr := e.layout.Init.AddRule(vals, masks, 0, chainAction{prog: p, branch: b})
		if ierr != nil {
			return ierr
		}
		b.initRuleID = id
	}
	if _, ferr := e.layout.Fin.AddRule([]uint64{uint64(p.QID)<<4 | uint64(p.Part)}, nil, 0, finAction{}); ferr != nil {
		return ferr
	}
	e.installed[key] = p
	if e.onChange != nil {
		e.onChange()
	}
	return nil
}

// Remove uninstalls a query at runtime: its rules leave the tables and
// its register allocations return to the banks. Forwarding is never
// touched.
func (e *Engine) Remove(qid int) error {
	found := false
	for key, p := range e.installed {
		if key.qid != qid {
			continue
		}
		e.rollback(p)
		delete(e.installed, key)
		found = true
	}
	if !found {
		return fmt.Errorf("modules: query %d %w", qid, ErrNotInstalled)
	}
	if e.onChange != nil {
		e.onChange()
	}
	return nil
}

// pureKeyMask reports whether a key-selection mask keeps only fields of
// the dispatch key (the newton_init classifier input). Operation keys
// derived through such a mask — including prefix sub-keys — are a pure
// function of the classifier input, so hashes over them are constant
// per flow.
func pureKeyMask(m *fields.Mask) bool {
	for id := fields.ID(0); id < fields.NumFields; id++ {
		if m[id] == 0 {
			continue
		}
		switch id {
		case fields.SrcIP, fields.DstIP, fields.Proto,
			fields.SrcPort, fields.DstPort, fields.TCPFlags:
		default:
			return false
		}
	}
	return true
}

// prepareBranch assigns each H op its memo ordinal and decides whether
// the branch's hash results may be memoized per flow. An H result is
// flow-pure only when a K op earlier in the same chain (same metadata
// set) has established the operation keys — so the H never reads keys
// left behind by another branch, whose execution prefix can vary with
// register state — and every such K mask keeps only dispatch-key
// fields.
func prepareBranch(b *BranchProgram) {
	b.numH = 0
	b.hashPure = true
	var seenK, pureK [2]bool
	pureK[0], pureK[1] = true, true
	for _, op := range b.Ops {
		set := op.Set & 1
		switch op.Kind {
		case ModK:
			seenK[set] = true
			if op.K == nil || !pureKeyMask(&op.K.Mask) {
				pureK[set] = false
			}
		case ModH:
			op.hIdx = b.numH
			b.numH++
			if !seenK[set] || !pureK[set] {
				b.hashPure = false
			}
		}
	}
}

// findRow0 locates the last reduce-row-0 state bank of a branch.
func (e *Engine) findRow0(p *Program, branch int) *SConfig {
	if branch < 0 || branch >= len(p.Branches) {
		return nil
	}
	var found *SConfig
	for _, op := range p.Branches[branch].Ops {
		if op.Kind == ModS && op.S != nil && op.S.Row0 && op.S.array != nil {
			found = op.S
		}
	}
	return found
}

// rollback removes whatever parts of p are currently installed.
func (e *Engine) rollback(p *Program) {
	for _, b := range p.Branches {
		for _, op := range b.Ops {
			if op.ruleID != 0 {
				if t := e.layout.ModuleTable(op.Stage, op.Set, op.Kind); t != nil {
					_ = t.RemoveRule(op.ruleID)
				}
				op.ruleID = 0
			}
			if op.Kind == ModS && op.S != nil && op.S.array != nil {
				if !op.S.CrossRead {
					e.layout.FreeRegisters(op.Stage, op.Set, op.S.offset, op.S.width)
				}
				op.S.array = nil
			}
		}
		if b.initRuleID != 0 {
			_ = e.layout.Init.RemoveRule(b.initRuleID)
			b.initRuleID = 0
		}
	}
	for _, r := range e.layout.Fin.Rules() {
		if r.Values[0] == uint64(p.QID)<<4|uint64(p.Part) {
			_ = e.layout.Fin.RemoveRule(r.ID)
		}
	}
}

type finAction struct{}

// ActionName implements dataplane.Action.
func (finAction) ActionName() string { return "snapshot" }

// Execute implements dataplane.Program: decode any inbound result
// snapshot, classify via newton_init, run every matching branch chain
// (partitioned programs run only at their partition cursor), and decide
// the outbound snapshot.
//
// Classification goes through the dispatch cache: newton_init's
// LookupAll result is memoized per classifier input and invalidated
// whenever the classifier's rule set changes, so the steady-state
// per-packet path does one map probe instead of a ternary scan — and
// allocates nothing.
func (e *Engine) Execute(ctx *dataplane.Context) {
	seq := ctx.Sequential()
	var nth uint64
	if seq {
		e.pkts++
		nth = e.pkts
	} else {
		nth = atomic.AddUint64(&e.pkts, 1)
	}
	var t0 time.Time
	timed := e.execNS != nil && nth&execSampleMask == 0
	if timed {
		t0 = time.Now()
	}
	// Per-packet op tally, packed as four 16-bit lanes (one per module
	// kind) in a single word: the per-op cost is one shift+add, and the
	// flush is at most NumKinds counter adds per packet.
	var execs uint64

	curPart := 0
	if sp := ctx.Pkt.SP; sp != nil {
		Restore(&ctx.PHV, sp)
		curPart = int(sp.Part)
	}
	v := &ctx.PHV.Fields
	key := dispatchKey{
		v.Get(fields.SrcIP)<<32 | v.Get(fields.DstIP),
		v.Get(fields.SrcPort)<<32 | v.Get(fields.DstPort)<<16 |
			v.Get(fields.Proto)<<8 | v.Get(fields.TCPFlags)}
	version := e.layout.Init.Version()
	var entry *dispatchEntry
	if seq {
		entry = e.dispatch.lookupSeq(version, &key)
	} else {
		entry = e.dispatch.lookup(version, &key)
	}
	if entry == nil {
		if seq {
			e.dispatchMisses++
		} else {
			atomic.AddUint64(&e.dispatchMisses, 1)
		}
		vals := [6]uint64{
			v.Get(fields.SrcIP), v.Get(fields.DstIP), v.Get(fields.Proto),
			v.Get(fields.SrcPort), v.Get(fields.DstPort), v.Get(fields.TCPFlags)}
		matches := e.layout.Init.LookupAllAppend(nil, vals[:])
		entry = &dispatchEntry{matches: matches}
		if len(matches) > 0 {
			entry.hashes = make([][]uint64, len(matches))
			for i, m := range matches {
				ca, ok := m.Action.(chainAction)
				if !ok || !ca.branch.hashPure || ca.branch.numH == 0 {
					continue
				}
				hs := make([]uint64, ca.branch.numH)
				for j := range hs {
					hs[j] = hashUnset
				}
				entry.hashes[i] = hs
			}
		}
		if seq {
			e.dispatch.storeSeq(version, &key, entry)
		} else {
			e.dispatch.store(version, &key, entry)
		}
	}
	var ranPart *Program
	stopped := false
	for i, m := range entry.matches {
		ca, ok := m.Action.(chainAction)
		if !ok {
			continue
		}
		if ca.prog.TotalParts > 1 {
			if ca.prog.Part != curPart {
				continue
			}
			if sp := ctx.Pkt.SP; sp != nil && int(sp.QID) != ca.prog.QID {
				continue
			}
			ranPart = ca.prog
		}
		ctx.PHV.QueryID = ca.prog.QID
		e.runBranch(ctx, ca.branch, entry.hashes[i], &execs)
		if ca.prog == ranPart {
			stopped = ctx.PHV.Stopped
		}
	}
	switch {
	case ranPart != nil && ranPart.Part+1 < ranPart.TotalParts && !stopped:
		ctx.OutSP = Snapshot(&ctx.PHV, ranPart.QID, ranPart.Part+1)
	case ranPart != nil:
		ctx.OutSP = nil // query completed (or stopped) here: strip
	default:
		ctx.OutSP = ctx.Pkt.SP // not our partition: forward untouched
	}
	if execs != 0 {
		for k := 0; k < int(NumKinds); k++ {
			n := (execs >> (uint(k) * 16)) & 0xFFFF
			if n == 0 {
				continue
			}
			if seq {
				e.modExecs[k] += n
			} else {
				atomic.AddUint64(&e.modExecs[k], n)
			}
		}
	}
	if timed {
		e.execNS.Observe(uint64(time.Since(t0)))
	}
}

// runBranch executes one branch chain over the packet. The PHV's
// metadata sets may arrive pre-seeded from a result-snapshot header
// (cross-switch execution); chains always run front to back in stage
// order, which the composition algorithm guarantees is dependency-safe.
// hashes, when non-nil, is the flow's memoized hash results (one slot
// per H op, hashUnset until first recorded); see dispatchEntry.
func (e *Engine) runBranch(ctx *dataplane.Context, b *BranchProgram, hashes []uint64, execs *uint64) {
	phv := &ctx.PHV
	seq := ctx.Sequential()
	phv.Stopped = false
	for _, op := range b.Ops {
		if phv.Stopped {
			return
		}
		*execs += 1 << (uint(op.Kind) * 16)
		set := &phv.Sets[op.Set&1]
		switch op.Kind {
		case ModK:
			set.OpKeyMask = op.K.Mask
			op.K.Mask.ApplyInto(&phv.Fields, &set.OpKeys)
		case ModH:
			if hashes != nil {
				if h := hashes[op.hIdx]; h != hashUnset {
					set.HashResult = h
				} else {
					e.execH(op.H, set, phv)
					hashes[op.hIdx] = set.HashResult
				}
			} else {
				e.execH(op.H, set, phv)
			}
		case ModS:
			e.execS(op.S, set, phv, seq)
		case ModR:
			e.execR(ctx, op.R, set, phv)
		}
	}
}

func (e *Engine) execH(h *HConfig, set *fields.MetadataSet, phv *fields.PHV) {
	if h.Direct != NoField {
		set.HashResult = set.OpKeys.Get(h.Direct)
		return
	}
	key := set.OpKeyMask.Bytes(&set.OpKeys, phv.KeyBuf[:0])
	raw := h.Algo.Sum(key, h.Seed)
	if h.Range > 0 {
		set.HashResult = uint64(sketch.Fold(raw, h.Range))
	} else {
		set.HashResult = uint64(raw)
	}
}

// ownerOf computes the key-sharding owner of the operation keys: a hash
// independent of the row hashes so every row of a multi-array sketch
// agrees on the owner.
func ownerOf(set *fields.MetadataSet, count uint32, phv *fields.PHV) uint32 {
	key := set.OpKeyMask.Bytes(&set.OpKeys, phv.KeyBuf[:0])
	return sketch.FNV1a.Sum(key, 0xBEEF) % count
}

func (e *Engine) execS(s *SConfig, set *fields.MetadataSet, phv *fields.PHV, seq bool) {
	if s.PassThrough {
		set.StateResult = set.HashResult
		return
	}
	if s.OwnerCount > 1 && ownerOf(set, s.OwnerCount, phv) != s.OwnerIndex {
		// Key-sharded cross-switch execution: another switch on the path
		// owns this key's state; this switch's monitoring of the packet
		// ends here and the owner reports instead.
		phv.Stopped = true
		return
	}
	if s.array == nil {
		panic(fmt.Sprintf("modules: state bank op executed before install (qid rule missing)"))
	}
	idx := s.offset + uint32(set.HashResult)%s.width
	var operand uint32
	switch s.Operand {
	case OperandConst:
		operand = s.Const
	case OperandField:
		operand = uint32(phv.Fields.Get(s.Field))
	case OperandHash:
		operand = uint32(set.HashResult)
	}
	if seq {
		set.StateResult = uint64(s.array.ExecSeq(s.ALU, idx, operand))
	} else {
		set.StateResult = uint64(s.array.Exec(s.ALU, idx, operand))
	}
}

func (e *Engine) execR(ctx *dataplane.Context, r *RConfig, set *fields.MetadataSet, phv *fields.PHV) {
	val := int64(set.StateResult)
	if r.OnGlobal {
		val = fields.GlobalSigned(phv.GlobalResult)
	}
	for _, entry := range r.Entries {
		if val < entry.Lo || val > entry.Hi {
			continue
		}
		for _, act := range entry.Actions {
			switch act.Kind {
			case RActReport:
				ctx.Mirror(dataplane.Report{
					QueryID: phv.QueryID,
					Keys:    set.OpKeys,
					KeyMask: set.OpKeyMask,
					State:   set.StateResult,
					Global:  phv.GlobalResult,
				})
			case RActStop:
				phv.Stopped = true
			case RActSetGlobal:
				phv.GlobalResult = uint64(int64(set.StateResult))
			case RActGlobalAdd:
				phv.GlobalResult = uint64(fields.GlobalSigned(phv.GlobalResult) + act.Coeff*int64(set.StateResult))
			case RActGlobalMin:
				if int64(set.StateResult) < fields.GlobalSigned(phv.GlobalResult) {
					phv.GlobalResult = uint64(int64(set.StateResult))
				}
			case RActGlobalScale:
				phv.GlobalResult = uint64(fields.GlobalSigned(phv.GlobalResult) * act.Coeff)
			}
		}
		return // first matching entry wins (ternary priority)
	}
	// No entry matched: the result process stops the query (the
	// default-deny of a threshold match).
	phv.Stopped = true
}

// Snapshot builds the result-snapshot header from the PHV for the next
// partition of a cross-switch query (§5.1). Only what downstream cannot
// rederive is carried: state results, the global result, and the
// partition cursor. 12 bytes on the wire.
func Snapshot(phv *fields.PHV, qid int, nextPart int) *packet.SPHeader {
	g := fields.GlobalSigned(phv.GlobalResult)
	if g > 32767 {
		g = 32767
	}
	if g < -32768 {
		g = -32768
	}
	return &packet.SPHeader{
		QID:    uint16(qid) & 0xFFF,
		Part:   uint8(nextPart) & 0x0F,
		State0: uint32(phv.Sets[0].StateResult),
		State1: uint32(phv.Sets[1].StateResult),
		Global: uint16(int16(g)),
	}
}

// Restore seeds a PHV's metadata from an inbound result-snapshot header
// before the next partition executes.
func Restore(phv *fields.PHV, sp *packet.SPHeader) {
	phv.Sets[0].StateResult = uint64(sp.State0)
	phv.Sets[1].StateResult = uint64(sp.State1)
	phv.GlobalResult = uint64(int64(int16(sp.Global)))
	phv.QueryID = int(sp.QID)
}
