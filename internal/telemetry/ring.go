package telemetry

import (
	"sync"

	"github.com/newton-net/newton/internal/dataplane"
)

// Policy decides what happens when the export ring is full.
type Policy int

const (
	// PolicyBlock applies backpressure: Put blocks until the writer
	// drains space. Nothing is ever lost; the data plane's drain loop
	// stalls instead (the lossless mode BenchmarkReportExport verifies).
	PolicyBlock Policy = iota
	// PolicyDropOldest evicts the oldest queued reports to admit new
	// ones, preferring fresh telemetry over stale when the analyzer or
	// the network falls behind. Every eviction is counted.
	PolicyDropOldest
)

// String names the policy as the -export-policy flag spells it.
func (p Policy) String() string {
	if p == PolicyDropOldest {
		return "drop-oldest"
	}
	return "block"
}

// ring is a bounded FIFO of reports with pluggable overflow policy. It
// is the buffer between the switch's packet path (producer) and the
// telemetry stream writer (consumer); its bound is what makes export
// memory predictable under report storms.
type ring struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond

	buf   []dataplane.Report
	head  int // index of oldest element
	count int

	closed      bool
	dropped     uint64 // reports evicted by PolicyDropOldest
	overflows   uint64 // full-ring events: one per burst, however many reports it blocks or evicts
	overflowing bool   // in an overflow burst; cleared when a drain frees space
	policy      Policy
}

func newRing(size int, policy Policy) *ring {
	if size <= 0 {
		size = 4096
	}
	r := &ring{buf: make([]dataplane.Report, size), policy: policy}
	r.notEmpty = sync.NewCond(&r.mu)
	r.notFull = sync.NewCond(&r.mu)
	return r
}

// put enqueues reports, applying the overflow policy when the ring
// fills. It reports how many were accepted (all of them under
// PolicyBlock, unless the ring closes mid-block).
func (r *ring) put(rs []dataplane.Report) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	accepted := 0
	for _, rep := range rs {
		if r.closed {
			break
		}
		if r.count == len(r.buf) {
			// One overflow per burst: consecutive full-ring hits without an
			// intervening drain are a single event, while `dropped` still
			// counts every evicted report.
			if !r.overflowing {
				r.overflowing = true
				r.overflows++
			}
			switch r.policy {
			case PolicyBlock:
				for r.count == len(r.buf) && !r.closed {
					r.notFull.Wait()
				}
				if r.closed {
					return accepted
				}
			case PolicyDropOldest:
				r.head = (r.head + 1) % len(r.buf)
				r.count--
				r.dropped++
			}
		}
		r.buf[(r.head+r.count)%len(r.buf)] = rep
		r.count++
		accepted++
		r.notEmpty.Signal()
	}
	return accepted
}

// drainUpTo blocks until at least one report is queued (or the ring is
// closed and empty, returning nil) and then dequeues up to max reports
// into dst.
func (r *ring) drainUpTo(max int, dst []dataplane.Report) []dataplane.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.count == 0 {
		return nil // closed and drained
	}
	n := r.count
	if n > max {
		n = max
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = dataplane.Report{} // release references
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.overflowing = false // space freed: the next full ring is a new burst
	r.notFull.Broadcast()
	return dst
}

// close wakes all waiters; pending reports remain drainable.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

func (r *ring) stats() (dropped, overflows uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped, r.overflows
}

func (r *ring) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
