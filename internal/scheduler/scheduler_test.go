package scheduler

import (
	"strings"
	"testing"

	"github.com/newton-net/newton/internal/modules"
	"github.com/newton-net/newton/internal/query"
)

func allRequests(prio func(i int) int) []Request {
	qs := query.All()
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = Request{Query: q, Priority: prio(i)}
	}
	return reqs
}

func TestPlanAdmitsEverythingWithAmpleBudget(t *testing.T) {
	b := Budget{Stages: 16, ArraySize: 1 << 20, RulesPerModule: 1024}
	ds := Plan(allRequests(func(i int) int { return 1 }), b)
	for i, d := range ds {
		if !d.Admitted {
			t.Errorf("Q%d rejected under ample budget: %s", i+1, d.Reason)
		}
		if d.Width != 4096 {
			t.Errorf("Q%d degraded to %d despite ample budget", i+1, d.Width)
		}
	}
}

func TestPlanDegradesWidthUnderRegisterPressure(t *testing.T) {
	// Banks too small for everyone at 4096: at least one lower-priority
	// query survives by taking a narrower sketch instead of rejection.
	b := Budget{Stages: 16, ArraySize: 10240, RulesPerModule: 1024}
	ds := Plan(allRequests(func(i int) int { return 9 - i }), b)
	admitted, degraded := 0, 0
	for _, d := range ds {
		if d.Admitted {
			admitted++
			if d.Width < 4096 {
				degraded++
			}
		}
	}
	if admitted < 3 {
		t.Errorf("only %d admitted under register pressure", admitted)
	}
	if degraded == 0 {
		t.Error("nothing degraded despite register pressure")
	}
	// More registers admit more queries (monotone in budget).
	ds2 := Plan(allRequests(func(i int) int { return 9 - i }), Budget{Stages: 16, ArraySize: 1 << 16, RulesPerModule: 1024})
	admitted2 := 0
	for _, d := range ds2 {
		if d.Admitted {
			admitted2++
		}
	}
	if admitted2 <= admitted {
		t.Errorf("bigger banks admitted %d <= %d", admitted2, admitted)
	}
	// The highest-priority query keeps the full width.
	if !ds[0].Admitted || ds[0].Width != 4096 {
		t.Errorf("top-priority query got %+v", ds[0])
	}
}

func TestPlanRespectsPriorityOrder(t *testing.T) {
	// Give Q6 (the largest) top priority under a tight budget: it must
	// be considered first and admitted.
	b := Budget{Stages: 16, ArraySize: 8192, RulesPerModule: 1024}
	prio := func(i int) int {
		if i == 5 {
			return 100
		}
		return 1
	}
	ds := Plan(allRequests(prio), b)
	if !ds[5].Admitted {
		t.Fatalf("top-priority Q6 rejected: %s", ds[5].Reason)
	}
}

func TestPlanRejectsOnStages(t *testing.T) {
	b := Budget{Stages: 6, ArraySize: 1 << 20, RulesPerModule: 1024}
	ds := Plan(allRequests(func(i int) int { return 1 }), b)
	if !ds[0].Admitted { // Q1 fits 6 stages
		t.Errorf("Q1 rejected: %s", ds[0].Reason)
	}
	if ds[5].Admitted { // Q6 needs ~10 stages
		t.Error("Q6 admitted into a 6-stage device")
	}
	if !strings.Contains(ds[5].Reason, "stages") {
		t.Errorf("rejection reason unhelpful: %q", ds[5].Reason)
	}
}

func TestPlanIsSound(t *testing.T) {
	// Whatever the plan admits must actually install into a real engine
	// with exactly the planned budget.
	b := Budget{Stages: 16, ArraySize: 16384, RulesPerModule: 256}
	ds := Plan(allRequests(func(i int) int { return 9 - i }), b)
	layout, err := modules.NewLayout(modules.LayoutCompact, b.Stages, b.ArraySize)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(ds, modules.NewEngine(layout)); err != nil {
		t.Fatalf("plan unsound: %v", err)
	}
	admitted := 0
	for _, d := range ds {
		if d.Admitted {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted — soundness vacuous")
	}
}

func TestPlanDefaultsAndSummary(t *testing.T) {
	ds := Plan(allRequests(func(i int) int { return 1 }), Budget{})
	s := Summary(ds)
	if !strings.Contains(s, "q1_new_tcp_connections") {
		t.Error("summary missing rows")
	}
	anyAdmitted := false
	for _, d := range ds {
		if d.Admitted {
			anyAdmitted = true
		}
	}
	if !anyAdmitted {
		t.Error("default budget admits nothing")
	}
}

func TestPlanWidthLadderBounds(t *testing.T) {
	reqs := []Request{{Query: query.Q1(40), Priority: 1, MinWidth: 2048, MaxWidth: 2048}}
	// Bank smaller than the only acceptable width: reject, don't degrade
	// below MinWidth.
	b := Budget{Stages: 16, ArraySize: 2047, RulesPerModule: 256}
	ds := Plan(reqs, b)
	if ds[0].Admitted {
		t.Error("admitted below the request's minimum width")
	}
	if ds[0].Reason == "" {
		t.Error("missing rejection reason")
	}
}

func TestPlanRejectsOnRuleCapacity(t *testing.T) {
	// The same query over and over stacks rules into the same module
	// tables; a tiny per-table capacity must eventually reject, and the
	// reason must say so (width degradation cannot fix rule pressure).
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, Request{Query: query.Q1(40), Priority: 1})
	}
	b := Budget{Stages: 16, ArraySize: 1 << 30, RulesPerModule: 8}
	ds := Plan(reqs, b)
	admitted, rejected := 0, 0
	for _, d := range ds {
		if d.Admitted {
			admitted++
			continue
		}
		rejected++
		if !strings.Contains(d.Reason, "rule capacity") {
			t.Fatalf("rejection reason %q, want rule-capacity mention", d.Reason)
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted — capacity test vacuous")
	}
	if rejected == 0 {
		t.Fatal("40 copies all fit into 8 rules per table — no rejection exercised")
	}
}

func TestApplyUnsoundPlan(t *testing.T) {
	// A plan made for a big device must fail loudly when applied to a
	// smaller one, rather than half-installing.
	b := Budget{Stages: 16, ArraySize: 1 << 20, RulesPerModule: 1024}
	ds := Plan([]Request{{Query: query.Q1(40), Priority: 1}}, b)
	if !ds[0].Admitted {
		t.Fatalf("Q1 rejected under ample budget: %s", ds[0].Reason)
	}
	layout, err := modules.NewLayout(modules.LayoutCompact, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	err = Apply(ds, modules.NewEngine(layout))
	if err == nil {
		t.Fatal("Apply succeeded on a device 1/2048th the planned size")
	}
	if !strings.Contains(err.Error(), "plan unsound") {
		t.Fatalf("Apply error %q, want 'plan unsound'", err)
	}
}

func TestWidthLadderRungs(t *testing.T) {
	// The pre-fix ladder halved from MaxWidth and stopped above MinWidth,
	// so MinWidth was only ever tried when it was exactly MaxWidth/2^k —
	// Min=300/Max=400 tried only 400 — and non-power-of-two MaxWidths
	// cascaded into non-power-of-two intermediate rungs.
	cases := []struct {
		name       string
		min, max   uint32
		want       []uint32
		wantErrSub string
	}{
		{name: "skipped rung: min not on the halving chain", min: 300, max: 400, want: []uint32{400, 300}},
		{name: "pow2 bounds walk the full chain", min: 256, max: 4096, want: []uint32{4096, 2048, 1024, 512, 256}},
		{name: "non-pow2 min gets a final attempt", min: 300, max: 2048, want: []uint32{2048, 1024, 512, 300}},
		{name: "non-pow2 max steps down to powers of two", min: 256, max: 1000, want: []uint32{1000, 512, 256}},
		{name: "equal bounds: single rung", min: 2048, max: 2048, want: []uint32{2048}},
		{name: "adjacent: max then min", min: 512, max: 1024, want: []uint32{1024, 512}},
		{name: "defaults applied", min: 0, max: 0, want: []uint32{4096, 2048, 1024, 512, 256}},
		{name: "inverted bounds rejected", min: 1024, max: 512, wantErrSub: "inverted width bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := WidthLadder(tc.min, tc.max)
			if tc.wantErrSub != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErrSub) {
					t.Fatalf("err = %v, want %q", err, tc.wantErrSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ladder = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ladder = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestPlanTriesMinWidthOffTheHalvingChain(t *testing.T) {
	// Min=300/Max=400 with banks that fit 300 but not 400: the pre-fix
	// ladder never tried 300 and rejected outright.
	reqs := []Request{{Query: query.Q1(40), Priority: 1, MinWidth: 300, MaxWidth: 400}}
	b := Budget{Stages: 16, ArraySize: 350, RulesPerModule: 256}
	ds := Plan(reqs, b)
	if !ds[0].Admitted {
		t.Fatalf("rejected despite MinWidth fitting: %s", ds[0].Reason)
	}
	if ds[0].Width != 300 {
		t.Fatalf("width = %d, want the MinWidth rung 300", ds[0].Width)
	}
	if !strings.Contains(ds[0].Reason, "degraded") {
		t.Errorf("degradation not surfaced: %q", ds[0].Reason)
	}
}

func TestPlanRejectsInvertedBoundsWithReason(t *testing.T) {
	reqs := []Request{{Query: query.Q1(40), Priority: 1, MinWidth: 1024, MaxWidth: 300}}
	ds := Plan(reqs, Budget{Stages: 16, ArraySize: 1 << 20, RulesPerModule: 1024})
	if ds[0].Admitted {
		t.Fatal("admitted with MaxWidth < MinWidth")
	}
	if !strings.Contains(ds[0].Reason, "inverted width bounds") {
		t.Fatalf("reason = %q, want an explicit inverted-bounds rejection", ds[0].Reason)
	}
}

func TestInitCapacityMatchesEngineTable(t *testing.T) {
	// The planner's newton_init accounting must mirror the allocator it
	// models: the engine's actual classifier capacity, not a drifting
	// hardcoded multiple.
	layout, err := modules.NewLayout(modules.LayoutCompact, 12, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := DefaultBudget().InitCapacity(), layout.Init.MaxEntries; got != want {
		t.Fatalf("scheduler init capacity %d != engine newton_init capacity %d", got, want)
	}
	b := Budget{Stages: 12, ArraySize: 4096, RulesPerModule: modules.DefaultRulesPerModule * 2}
	if got, want := b.InitCapacity(), b.RulesPerModule*modules.InitCapacityFactor; got != want {
		t.Fatalf("InitCapacity %d does not scale with the budget's rule capacity (want %d)", got, want)
	}
}

func TestPlanClassifierPredCapacity(t *testing.T) {
	// Measure one query's distinct predicate population from an ample
	// plan, then re-plan against exactly that cap: two identical queries
	// share every predicate, so both must fit — the tracker charges
	// distinct predicates, not entries.
	ample := Budget{Stages: 16, ArraySize: 1 << 30, RulesPerModule: 1024}
	ds := Plan([]Request{{Query: query.Q1(40), Priority: 1}}, ample)
	if !ds[0].Admitted {
		t.Fatalf("Q1 rejected under ample budget: %s", ds[0].Reason)
	}
	nPreds := ds[0].Program.Footprint().ClassifierPreds
	if nPreds == 0 {
		t.Fatal("Q1 contributes no classifier predicates — capacity test vacuous")
	}

	exact := ample
	exact.ClassifierPreds = nPreds
	ds = Plan([]Request{
		{Query: query.Q1(40), Priority: 2},
		{Query: query.Q1(40), Priority: 1},
	}, exact)
	for i, d := range ds {
		if !d.Admitted {
			t.Fatalf("copy %d rejected at exact predicate cap (%s) — dedupe broken", i, d.Reason)
		}
	}

	tight := ample
	tight.ClassifierPreds = nPreds - 1
	ds = Plan([]Request{{Query: query.Q1(40), Priority: 1}}, tight)
	if ds[0].Admitted {
		t.Fatal("Q1 admitted past the predicate cap")
	}
	if !strings.Contains(ds[0].Reason, "predicate capacity") {
		t.Fatalf("rejection reason %q, want predicate-capacity mention", ds[0].Reason)
	}
}

func TestTrackerClonePreds(t *testing.T) {
	b := Budget{Stages: 16, ArraySize: 1 << 30, RulesPerModule: 1024, ClassifierPreds: 64}
	ds := Plan([]Request{{Query: query.Q1(40), Priority: 1}}, b)
	tr := NewTracker(b)
	tr.Commit(ds[0].Program)
	clone := tr.Clone()
	if len(clone.preds) != len(tr.preds) {
		t.Fatalf("clone carries %d preds, tracker %d", len(clone.preds), len(tr.preds))
	}
	// Mutating the clone must not leak back.
	clone.preds[modules.InitPredKey{Col: 5, Val: 1, Mask: 1}] = struct{}{}
	if len(clone.preds) == len(tr.preds) {
		t.Fatal("clone shares the predicate set with its parent")
	}
}
